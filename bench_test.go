// Package repro_test holds the benchmark harness that regenerates every
// figure in the paper's evaluation (§7):
//
//   - BenchmarkFigure4Elle / BenchmarkFigure4Knossos: runtime vs history
//     length for various concurrencies (Figure 4). Run the full sweep
//     with `go run ./cmd/elleperf`; these benches cover the same grid at
//     benchmark-friendly sizes.
//   - BenchmarkCase*: the §7.1–§7.4 case-study campaigns (history
//     generation + checking).
//   - BenchmarkFigure2Explain: rendering a Figure 2-style counterexample.
//   - BenchmarkAblation*: costs of the design choices DESIGN.md calls
//     out — per-analyzer inference, cycle-search masks, and the
//     real-time transitive reduction.
package repro_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/casestudy"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/op"
	"repro/internal/perf"
	"repro/internal/rwregister"
	"repro/internal/serialcheck"
	"repro/internal/txngraph"
	"repro/internal/workload"
)

// BenchmarkFigure4Elle measures Elle's checking time across the Figure 4
// grid. Elle is near-linear in history length and effectively constant in
// concurrency.
func BenchmarkFigure4Elle(b *testing.B) {
	for _, c := range []int{1, 5, 10, 20, 40, 100} {
		for _, n := range []int{1000, 5000, 20000} {
			h := perf.GenerateHistory(n, c, 1)
			opts := core.OptsFor(core.ListAppend, consistency.StrictSerializable)
			b.Run(fmt.Sprintf("n=%d/c=%d", n, c), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := core.Check(h, opts)
					if !r.Valid {
						b.Fatalf("clean history invalid: %v", r.AnomalyTypes())
					}
				}
			})
		}
	}
}

// parallelismLevels is the worker-count series the parallel benchmarks
// sweep: 1 (the sequential baseline), 2, 4, and every available CPU.
func parallelismLevels() []int {
	ps := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		ps = append(ps, n)
	}
	return ps
}

// BenchmarkCheckParallel measures the parallel pipeline end to end: the
// same 100k-transaction list-append check (inference, graph build, extra
// orders, cycle search) at increasing worker counts. The p=1 case is the
// sequential baseline the speedup figures in README.md divide by.
func BenchmarkCheckParallel(b *testing.B) {
	h := perf.GenerateHistory(100000, 20, 1)
	for _, p := range parallelismLevels() {
		opts := core.OptsFor(core.ListAppend, consistency.StrictSerializable)
		opts.Parallelism = p
		b.Run(fmt.Sprintf("n=100000/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.Check(h, opts)
				if !r.Valid {
					b.Fatalf("clean history invalid: %v", r.AnomalyTypes())
				}
			}
		})
	}
}

// BenchmarkCheckParallelRegister is the same sweep through the register
// analyzer, whose per-key version-graph inference is the heaviest of the
// four.
func BenchmarkCheckParallelRegister(b *testing.B) {
	g := gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 100, MaxWritesPerKey: 100}, 1)
	h := memdb.Run(memdb.RunConfig{
		Clients: 20, Txns: 50000, Isolation: memdb.StrictSerializable,
		Source: g, Seed: 1, Workload: memdb.WorkloadRegister,
	})
	for _, p := range parallelismLevels() {
		opts := core.OptsFor(core.Register, consistency.StrictSerializable)
		opts.Parallelism = p
		b.Run(fmt.Sprintf("n=50000/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Check(h, opts)
			}
		})
	}
}

// BenchmarkCheckBank measures the bank analyzer end to end — invariant
// checks, overwrite-based inference, cycle search — on a 20k-transfer
// history, at increasing worker counts.
func BenchmarkCheckBank(b *testing.B) {
	info, ok := workload.Lookup(string(workload.Bank))
	if !ok {
		b.Fatal("bank workload not registered")
	}
	g := gen.New(gen.Config{Workload: info.Gen, ActiveKeys: 10}, 1)
	h := memdb.Run(memdb.RunConfig{
		Clients: 20, Txns: 20000, Isolation: memdb.StrictSerializable,
		Source: g, Seed: 1, Workload: info.DB,
	})
	for _, p := range parallelismLevels() {
		opts := core.OptsFor(core.Bank, consistency.StrictSerializable)
		opts.Parallelism = p
		b.Run(fmt.Sprintf("n=20000/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.Check(h, opts)
				if !r.Valid {
					b.Fatalf("clean bank history invalid: %v", r.AnomalyTypes())
				}
			}
		})
	}
}

// BenchmarkCheckStream measures the incremental checker end to end on
// the BenchmarkCheckParallel history: the full op sequence fed in
// 1000-op chunks through the streaming session (maintained indices,
// per-key edge caches, incremental SCCs), then Finish. The comparison
// against BenchmarkCheckParallel at the same p bounds the streaming
// overhead over a one-shot batch check.
func BenchmarkCheckStream(b *testing.B) {
	h := perf.GenerateHistory(100000, 20, 1)
	for _, p := range parallelismLevels() {
		opts := core.OptsFor(core.ListAppend, consistency.StrictSerializable)
		opts.Parallelism = p
		b.Run(fmt.Sprintf("n=100000/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := core.CheckStream(opts)
				ops := h.Ops
				for len(ops) > 0 {
					n := 1000
					if n > len(ops) {
						n = len(ops)
					}
					if _, err := st.Feed(ops[:n]); err != nil {
						b.Fatal(err)
					}
					ops = ops[n:]
				}
				r, err := st.Finish()
				if err != nil {
					b.Fatal(err)
				}
				if !r.Valid {
					b.Fatalf("clean history invalid: %v", r.AnomalyTypes())
				}
			}
		})
	}
}

// BenchmarkDecodeParallel measures streaming JSON-lines decoding of a
// 100k-transaction history at increasing parse worker counts.
func BenchmarkDecodeParallel(b *testing.B) {
	h := perf.GenerateHistory(100000, 20, 1)
	var buf bytes.Buffer
	if err := jsonhist.Encode(&buf, h); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	for _, p := range parallelismLevels() {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				if _, err := jsonhist.DecodeWith(bytes.NewReader(raw),
					jsonhist.DecodeOpts{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4Knossos measures the baseline on the same workloads.
// Note how runtime rises with concurrency at fixed n — the c! search
// space — where Elle's does not. Sizes are kept small so the benchmark
// suite terminates; the paper capped Knossos at 100 s and still saw
// timeouts at c ≥ 40.
func BenchmarkFigure4Knossos(b *testing.B) {
	for _, c := range []int{1, 5, 10} {
		for _, n := range []int{200, 1000} {
			h := perf.GenerateHistory(n, c, 1)
			b.Run(fmt.Sprintf("n=%d/c=%d", n, c), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := serialcheck.Check(h, serialcheck.Opts{Timeout: 30 * time.Second})
					if r.Outcome == serialcheck.NotSerializable {
						b.Fatal("clean history rejected")
					}
				}
			})
		}
	}
}

// BenchmarkCase* regenerate the four §7 campaigns end to end (workload
// execution with fault injection, then checking).
func benchmarkCase(b *testing.B, name string) {
	s, ok := casestudy.Find(name)
	if !ok {
		b.Fatalf("unknown scenario %s", name)
	}
	cfg := casestudy.Config{Clients: 10, Txns: 1000, Seed: 1}
	for i := 0; i < b.N; i++ {
		r := casestudy.Run(s, cfg)
		if !r.Reproduced {
			b.Fatalf("%s signature not reproduced: missing %v, forbidden %v",
				name, r.MissingExpected, r.FoundForbidden)
		}
	}
}

func BenchmarkCaseTiDB(b *testing.B)     { benchmarkCase(b, "tidb") }
func BenchmarkCaseYugaByte(b *testing.B) { benchmarkCase(b, "yugabyte") }
func BenchmarkCaseFauna(b *testing.B)    { benchmarkCase(b, "fauna") }
func BenchmarkCaseDgraph(b *testing.B)   { benchmarkCase(b, "dgraph") }

// BenchmarkFigure2Explain measures producing a Figure 2-style textual
// counterexample plus the Figure 3 DOT rendering for a detected cycle.
func BenchmarkFigure2Explain(b *testing.B) {
	h := figure2History()
	opts := core.OptsFor(core.ListAppend, consistency.Serializable)
	res := core.Check(h, opts)
	if res.Valid {
		b.Fatal("figure 2 history should have a cycle")
	}
	var cyc graph.Cycle
	for _, a := range res.Anomalies {
		if len(a.Cycle.Steps) > 0 {
			cyc = a.Cycle
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Explainer.Cycle(cyc)
		_ = res.Explainer.DOT(cyc)
	}
}

func figure2History() *history.History {
	return history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("253", 1), op.Append("253", 3), op.Append("253", 4)),
		op.Txn(1, 0, op.OK, op.Append("255", 2), op.Append("255", 3), op.Append("255", 4), op.Append("255", 5)),
		op.Txn(2, 0, op.OK, op.Append("256", 1), op.Append("256", 2)),
		op.Txn(10, 1, op.OK,
			op.Append("250", 10), op.ReadList("253", []int{1, 3, 4}),
			op.ReadList("255", []int{2, 3, 4, 5}), op.Append("256", 3)),
		op.Txn(11, 2, op.OK,
			op.Append("255", 8), op.ReadList("253", []int{1, 3, 4})),
		op.Txn(12, 3, op.OK,
			op.Append("256", 4), op.ReadList("255", []int{2, 3, 4, 5, 8}),
			op.ReadList("256", []int{1, 2, 4}), op.ReadList("253", []int{1, 3, 4})),
		op.Txn(13, 4, op.OK, op.ReadList("256", []int{1, 2, 4, 3})),
	})
}

// BenchmarkAblationWorkloads compares the cost of dependency inference
// per workload type on equal-size histories: list-append (traceable,
// full inference) vs registers (partial version orders).
func BenchmarkAblationWorkloads(b *testing.B) {
	const n, c = 5000, 10
	b.Run("list-append", func(b *testing.B) {
		g := gen.New(gen.Config{ActiveKeys: 20, MaxWritesPerKey: 100}, 1)
		h := memdb.Run(memdb.RunConfig{
			Clients: c, Txns: n, Isolation: memdb.StrictSerializable,
			Source: g, Seed: 1,
		})
		opts := core.OptsFor(core.ListAppend, consistency.StrictSerializable)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Check(h, opts)
		}
	})
	b.Run("rw-register", func(b *testing.B) {
		g := gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 20, MaxWritesPerKey: 100}, 1)
		h := memdb.Run(memdb.RunConfig{
			Clients: c, Txns: n, Isolation: memdb.StrictSerializable,
			Source: g, Seed: 1, Register: true,
		})
		opts := core.OptsFor(core.Register, consistency.StrictSerializable)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Check(h, opts)
		}
	})
}

// BenchmarkAblationCycleSearch isolates the §6 cycle searches on a large
// dependency graph with injected write skew, by search mask.
func BenchmarkAblationCycleSearch(b *testing.B) {
	g := gen.New(gen.Config{ActiveKeys: 10, MaxWritesPerKey: 100}, 3)
	h := memdb.Run(memdb.RunConfig{
		Clients: 20, Txns: 10000, Isolation: memdb.SnapshotIsolation,
		Source: g, Seed: 3,
	})
	res := core.Check(h, core.OptsFor(core.ListAppend, consistency.SnapshotIsolation))
	dep := res.Graph
	b.Run("G0-ww-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dep.FindCycles(graph.KSWW)
		}
	})
	b.Run("G1c-ww-wr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dep.FindCycles(graph.KSWWWR)
		}
	})
	b.Run("G-single-one-rw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dep.FindCyclesWithExactlyOne(graph.RW, graph.KSWWWR)
		}
	})
	b.Run("G2-at-least-one-rw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dep.FindCyclesWithAtLeastOne(graph.RW, graph.KSDep)
		}
	})
}

// BenchmarkAblationRealtimeReduction measures the O(n·p) transitive
// reduction of the real-time order (§5.1) on large histories.
func BenchmarkAblationRealtimeReduction(b *testing.B) {
	for _, c := range []int{10, 100} {
		h := perf.GenerateHistory(20000, c, 1)
		b.Run(fmt.Sprintf("n=20000/p=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				txngraph.RealtimeGraph(h)
			}
		})
	}
}

// BenchmarkAblationTarjan measures SCC computation alone on the
// dependency graph of a large history.
func BenchmarkAblationTarjan(b *testing.B) {
	h := perf.GenerateHistory(50000, 20, 1)
	res := core.Check(h, core.OptsFor(core.ListAppend, consistency.StrictSerializable))
	g := res.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SCCs(graph.KSDep | graph.KSOrders)
	}
}

// BenchmarkHistoryGeneration isolates the cost of the workload substrate
// itself (generator + engine + recorder), to separate it from checking
// time in the Figure 4 numbers.
func BenchmarkHistoryGeneration(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d/c=10", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				perf.GenerateHistory(n, 10, int64(i))
			}
		})
	}
}

// BenchmarkAblationWritesPerKey sweeps the paper's writes-per-object
// dimension (1 to 1024): narrow keys stress object creation; wide keys
// grow version histories and read values, which dominates checking cost.
func BenchmarkAblationWritesPerKey(b *testing.B) {
	for _, width := range []int{1, 10, 100, 1024} {
		g := gen.New(gen.Config{ActiveKeys: 5, MaxWritesPerKey: width}, 1)
		h := memdb.Run(memdb.RunConfig{
			Clients: 10, Txns: 5000, Isolation: memdb.StrictSerializable,
			Source: g, Seed: 1,
		})
		opts := core.OptsFor(core.ListAppend, consistency.StrictSerializable)
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Check(h, opts)
			}
		})
	}
}

// BenchmarkAblationRegisterRules isolates the cost of each §5.2 register
// inference rule on the same history.
func BenchmarkAblationRegisterRules(b *testing.B) {
	g := gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 10, MaxWritesPerKey: 50}, 2)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: 5000, Isolation: memdb.StrictSerializable,
		Source: g, Seed: 2, Workload: memdb.WorkloadRegister,
	})
	cases := []struct {
		name string
		opts workload.Opts
	}{
		{"init-only", workload.Opts{InitialState: true}},
		{"init+wfr", workload.Opts{InitialState: true, WritesFollowReads: true}},
		{"init+wfr+seq", workload.Opts{InitialState: true, WritesFollowReads: true, SequentialKeys: true}},
		{"all", workload.DefaultOpts()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rwregister.Analyze(h, c.opts)
			}
		})
	}
}
