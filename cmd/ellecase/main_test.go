package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/casestudy"
)

func TestSingleCampaign(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-db", "fauna", "-txns", "600", "-clients", "8"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"fauna", "§7.3", "internal", "reproduced"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAllCampaigns(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "800"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	for _, want := range []string{"tidb", "yugabyte", "fauna", "dgraph"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("campaign %q missing from output", want)
		}
	}
}

func TestVerboseExplanations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-db", "tidb", "-txns", "400", "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "--- anomaly") {
		t.Errorf("verbose output missing explanations:\n%s", out.String())
	}
}

func TestUnknownDatabase(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-db", "oracle"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown database") {
		t.Errorf("stderr = %q", errb.String())
	}
	// The offered campaign list is derived from the scenario table, not
	// hard-coded.
	for _, name := range casestudy.Names() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("error message missing campaign %q:\n%s", name, errb.String())
		}
	}
}
