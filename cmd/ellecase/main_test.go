package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/casestudy"
	"repro/internal/nemesis"
)

func TestSingleCampaign(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-db", "fauna", "-txns", "600", "-clients", "8"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"fauna", "§7.3", "internal", "reproduced"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAllCampaigns(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "800"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	for _, want := range []string{"tidb", "yugabyte", "fauna", "dgraph"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("campaign %q missing from output", want)
		}
	}
}

func TestVerboseExplanations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-db", "tidb", "-txns", "400", "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "--- anomaly") {
		t.Errorf("verbose output missing explanations:\n%s", out.String())
	}
}

func TestNemesisAllCampaigns(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-campaign", "all", "-txns", "600"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out.String(), errb.String())
	}
	for _, c := range nemesis.Campaigns() {
		if !strings.Contains(out.String(), c.Name) {
			t.Errorf("campaign %q missing from output:\n%s", c.Name, out.String())
		}
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("campaign table reports failures:\n%s", out.String())
	}
}

func TestNemesisJSONDeterministic(t *testing.T) {
	render := func() string {
		var out, errb bytes.Buffer
		code := run([]string{"-campaign", "all", "-txns", "600", "-json"}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit = %d\n%s", code, errb.String())
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed produced different verdict JSON:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{`"campaign"`, `"pass": true`, `"seed": 1`} {
		if !strings.Contains(a, want) {
			t.Errorf("JSON output missing %s:\n%s", want, a)
		}
	}
}

func TestNemesisList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, c := range nemesis.Campaigns() {
		if !strings.Contains(out.String(), c.Name) {
			t.Errorf("-list missing campaign %q", c.Name)
		}
	}
	for _, f := range nemesis.FaultCatalog() {
		if !strings.Contains(out.String(), f.Name) {
			t.Errorf("-list missing fault %q", f.Name)
		}
	}
}

func TestUnknownNemesisCampaign(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-campaign", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown campaign") {
		t.Errorf("stderr = %q", errb.String())
	}
	for _, name := range nemesis.Names() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("error message missing campaign %q:\n%s", name, errb.String())
		}
	}
}

func TestDBAndCampaignExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-db", "tidb", "-campaign", "g1a"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestUnknownDatabase(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-db", "oracle"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown database") {
		t.Errorf("stderr = %q", errb.String())
	}
	// The offered campaign list is derived from the scenario table, not
	// hard-coded.
	for _, name := range casestudy.Names() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("error message missing campaign %q:\n%s", name, errb.String())
		}
	}
}
