// Command ellecase runs fault campaigns against the in-memory database,
// checks the resulting histories with Elle, and reports whether each run
// matched its expected anomaly signature.
//
// It has two campaign tables:
//
//   - the paper's §7 case studies (-db): four database bug
//     reproductions, judged by the anomaly families the paper reports;
//   - the nemesis campaign table (-campaign): composable named faults
//     paired with every registered workload, judged by machine-checkable
//     verdicts — soundness campaigns must check clean, planted-bug
//     campaigns must surface their class and nothing unrelated.
//
// Both tables are derived from their packages (casestudy, nemesis) and
// the workload registry, so new scenarios, campaigns, faults, and
// workloads show up here with no CLI edits.
//
// Usage:
//
//	ellecase                       run every §7 case study
//	ellecase -db tidb              run one case study
//	ellecase -campaign all -json   run the nemesis table, JSON verdicts
//	ellecase -campaign k-atomicity -seed 7 -stream
//	ellecase -list                 list campaigns and faults
//
// Flags:
//
//	-db NAME       one case study (tidb, yugabyte, fauna, dgraph, …) or all
//	-campaign NAME one nemesis campaign, or all
//	-list          list nemesis campaigns and the fault catalog
//	-json          emit nemesis verdicts as JSON (deterministic per seed)
//	-stream        check through the incremental API instead of batch
//	-mem-budget N  cap the stream's resident completed ops (0 = unbounded);
//	               tiny budgets force retirement mid-campaign and must not
//	               change any verdict byte
//	-p N           checker parallelism (0 = one worker per CPU)
//	-clients N     concurrent client threads (default 10)
//	-txns N        transactions per campaign (default 2000)
//	-seed N        run seed (default 1)
//	-v             print every anomaly explanation (-db mode)
//
// Exit status: 0 if every selected campaign matched, 1 otherwise, 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/casestudy"
	"repro/internal/nemesis"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	names := casestudy.Names()
	fs := flag.NewFlagSet("ellecase", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "case study: "+strings.Join(names, ", ")+", or all")
	campaign := fs.String("campaign", "", "nemesis campaign: "+strings.Join(nemesis.Names(), ", ")+", or all")
	list := fs.Bool("list", false, "list nemesis campaigns and the fault catalog")
	jsonOut := fs.Bool("json", false, "emit nemesis verdicts as JSON")
	stream := fs.Bool("stream", false, "check through the incremental API")
	memBudget := fs.Int("mem-budget", 0, "stream resident completed-op cap (0 = unbounded)")
	par := fs.Int("p", 0, "checker parallelism (0 = one worker per CPU)")
	clients := fs.Int("clients", 10, "concurrent client threads")
	txns := fs.Int("txns", 2000, "transactions per campaign")
	seed := fs.Int64("seed", 1, "run seed")
	verbose := fs.Bool("v", false, "print every anomaly explanation")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "campaigns:")
		for _, c := range nemesis.Campaigns() {
			fmt.Fprintf(stdout, "  %-24s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintln(stdout, "faults:")
		for _, f := range nemesis.FaultCatalog() {
			fmt.Fprintf(stdout, "  %-24s %s\n", f.Name, f.Doc)
		}
		return 0
	}
	if *campaign != "" && *db != "" {
		fmt.Fprintln(stderr, "ellecase: -db and -campaign are mutually exclusive")
		return 2
	}
	if *campaign != "" {
		return runCampaigns(*campaign, nemesis.Config{
			Seed: *seed, Clients: *clients, Txns: *txns,
			Parallelism: *par, Stream: *stream, MemoryBudget: *memBudget,
		}, *jsonOut, stdout, stderr)
	}
	if *db == "" {
		*db = "all"
	}

	var scenarios []casestudy.Scenario
	if *db == "all" {
		scenarios = casestudy.Scenarios()
	} else {
		s, ok := casestudy.Find(*db)
		if !ok {
			fmt.Fprintf(stderr, "ellecase: unknown database %q (%s, all)\n",
				*db, strings.Join(names, ", "))
			return 2
		}
		scenarios = []casestudy.Scenario{s}
	}
	// Every scenario's analyzer must come from the live registry; a
	// scenario naming a workload nothing registered is a configuration
	// error worth a clear message, not a core panic.
	for _, s := range scenarios {
		if _, ok := workload.Lookup(string(s.Workload)); !ok {
			fmt.Fprintf(stderr, "ellecase: campaign %s needs workload %q, which is not registered (have: %s)\n",
				s.Name, s.Workload, workload.NameList())
			return 2
		}
	}

	cfg := casestudy.Config{Clients: *clients, Txns: *txns, Seed: *seed}
	allGood := true
	for _, s := range scenarios {
		r := casestudy.Run(s, cfg)
		fmt.Fprint(stdout, r.Report())
		if *verbose {
			for i, a := range r.Check.Anomalies {
				fmt.Fprintf(stdout, "\n--- anomaly %d: %s ---\n", i+1, a.Type)
				if a.Explanation != "" {
					fmt.Fprintln(stdout, a.Explanation)
				}
			}
		}
		fmt.Fprintln(stdout)
		if !r.Reproduced {
			allGood = false
		}
	}
	if !allGood {
		return 1
	}
	return 0
}

// runCampaigns executes nemesis campaigns and renders verdicts, either
// as a human-readable table or as a deterministic JSON array.
func runCampaigns(name string, cfg nemesis.Config, jsonOut bool, stdout, stderr io.Writer) int {
	var campaigns []nemesis.Campaign
	if name == "all" {
		campaigns = nemesis.Campaigns()
	} else {
		c, ok := nemesis.Find(name)
		if !ok {
			fmt.Fprintf(stderr, "ellecase: unknown campaign %q (%s, all)\n",
				name, strings.Join(nemesis.Names(), ", "))
			return 2
		}
		campaigns = []nemesis.Campaign{c}
	}

	verdicts := make([]*nemesis.Verdict, 0, len(campaigns))
	allGood := true
	for _, c := range campaigns {
		v, err := nemesis.Run(c, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "ellecase: campaign %s: %v\n", c.Name, err)
			return 2
		}
		verdicts = append(verdicts, v)
		if !v.Pass {
			allGood = false
		}
	}

	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdicts); err != nil {
			fmt.Fprintf(stderr, "ellecase: %v\n", err)
			return 2
		}
	} else {
		for _, v := range verdicts {
			status := "PASS"
			if !v.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(stdout, "%-4s %-24s seed=%d", status, v.Campaign, v.Seed)
			if len(v.Found) == 0 {
				fmt.Fprint(stdout, " clean")
			}
			for _, f := range v.Found {
				fmt.Fprintf(stdout, " %s×%d", f.Class, f.Count)
			}
			if len(v.Missing) > 0 {
				fmt.Fprintf(stdout, " MISSING=%v", v.Missing)
			}
			if len(v.MissingAny) > 0 {
				fmt.Fprintf(stdout, " MISSING-ANY=%v", v.MissingAny)
			}
			if len(v.Unexpected) > 0 {
				fmt.Fprintf(stdout, " UNEXPECTED=%v", v.Unexpected)
			}
			fmt.Fprintln(stdout)
		}
	}
	if !allGood {
		return 1
	}
	return 0
}
