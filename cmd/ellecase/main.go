// Command ellecase runs the paper's §7 case studies against the in-memory
// database with the corresponding fault injection, checks the resulting
// history with Elle, and reports whether the run reproduced the anomaly
// signature the paper documents for that system.
//
// The campaign list is derived from the casestudy scenario table and the
// analyzers from the workload registry, so neither is hard-coded here:
// a new scenario (or a scenario over a newly registered workload) shows
// up in -db and the usage text with no CLI edits.
//
// Usage:
//
//	ellecase                  run every campaign
//	ellecase -db tidb         run one campaign
//	ellecase -db tidb -v      ... and print each anomaly's explanation
//
// Flags:
//
//	-db NAME     one campaign (tidb, yugabyte, fauna, dgraph, …) or all
//	-clients N   concurrent client threads (default 10)
//	-txns N      transactions per campaign (default 2000)
//	-seed N      run seed (default 1)
//	-v           print every anomaly explanation
//
// Exit status: 0 if every selected campaign reproduced its signature,
// 1 otherwise, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/casestudy"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	names := casestudy.Names()
	fs := flag.NewFlagSet("ellecase", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "all", "campaign: "+strings.Join(names, ", ")+", or all")
	clients := fs.Int("clients", 10, "concurrent client threads")
	txns := fs.Int("txns", 2000, "transactions per campaign")
	seed := fs.Int64("seed", 1, "run seed")
	verbose := fs.Bool("v", false, "print every anomaly explanation")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var scenarios []casestudy.Scenario
	if *db == "all" {
		scenarios = casestudy.Scenarios()
	} else {
		s, ok := casestudy.Find(*db)
		if !ok {
			fmt.Fprintf(stderr, "ellecase: unknown database %q (%s, all)\n",
				*db, strings.Join(names, ", "))
			return 2
		}
		scenarios = []casestudy.Scenario{s}
	}
	// Every scenario's analyzer must come from the live registry; a
	// scenario naming a workload nothing registered is a configuration
	// error worth a clear message, not a core panic.
	for _, s := range scenarios {
		if _, ok := workload.Lookup(string(s.Workload)); !ok {
			fmt.Fprintf(stderr, "ellecase: campaign %s needs workload %q, which is not registered (have: %s)\n",
				s.Name, s.Workload, workload.NameList())
			return 2
		}
	}

	cfg := casestudy.Config{Clients: *clients, Txns: *txns, Seed: *seed}
	allGood := true
	for _, s := range scenarios {
		r := casestudy.Run(s, cfg)
		fmt.Fprint(stdout, r.Report())
		if *verbose {
			for i, a := range r.Check.Anomalies {
				fmt.Fprintf(stdout, "\n--- anomaly %d: %s ---\n", i+1, a.Type)
				if a.Explanation != "" {
					fmt.Fprintln(stdout, a.Explanation)
				}
			}
		}
		fmt.Fprintln(stdout)
		if !r.Reproduced {
			allGood = false
		}
	}
	if !allGood {
		return 1
	}
	return 0
}
