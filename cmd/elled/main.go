// Command elled runs the checker as a long-lived HTTP service: the
// deployable form of `elle`, for harnesses that stream histories as
// they produce them instead of invoking a CLI per check. Each job is an
// incremental checking session — create it, feed JSON-lines chunks,
// poll provisional findings, fetch a final report byte-identical to
// what `elle` would print for the same history and options.
//
// Usage:
//
//	elled [flags]
//
//	# then, from any HTTP client:
//	id=$(curl -s -X POST localhost:8866/v1/jobs \
//	       -d '{"workload":"bank","model":"serializable"}' | jq -r .id)
//	curl -s -X POST --data-binary @chunk1.jsonl localhost:8866/v1/jobs/$id/chunks
//	curl -s localhost:8866/v1/jobs/$id/report
//
// Flags:
//
//	-addr ADDR             listen address (default 127.0.0.1:8866)
//	-max-jobs N            resident-job cap; creation beyond it gets 429
//	                       (default 8)
//	-max-chunk-bytes N     per-chunk request body cap; larger uploads get
//	                       413 (default 8 MiB)
//	-job-idle DURATION     reap jobs untouched for this long (default 10m)
//	-finished-ttl DURATION reap done/failed jobs this long after they
//	                       finish, freeing their slot even when clients
//	                       poll but never delete them (default 1m)
//	-mem-spill DIR         spill directory for jobs created with a
//	                       memory_budget (default: OS temp dir)
//	-wal-dir DIR           journal every job to DIR/<id>.wal and replay
//	                       surviving journals on startup, so a killed
//	                       elled resumes its in-flight streams (default:
//	                       no journaling)
//	-wal-sync MODE         WAL fsync policy: always, interval, or none
//	                       (default always — acked chunks survive any
//	                       crash)
//	-shards N              inference shard count: the bound on chunks
//	                       decoding/feeding concurrently; any value gives
//	                       byte-identical reports (default: one per CPU)
//
// See docs/SERVICE.md for the endpoint reference and limit semantics.
// elled shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// finish, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run starts the service and blocks until a shutdown signal (or an
// optional test-injected shutdown channel) fires. started, when
// non-nil, receives the bound listen address once the server accepts
// connections.
func run(args []string, stderr io.Writer, started chan<- string) int {
	fs := flag.NewFlagSet("elled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8866", "listen address")
	maxJobs := fs.Int("max-jobs", 8, "resident-job cap; creation beyond it is refused with 429")
	maxChunk := fs.Int64("max-chunk-bytes", 8<<20, "per-chunk request body cap in bytes")
	jobIdle := fs.Duration("job-idle", 10*time.Minute, "reap jobs untouched for this long")
	finishedTTL := fs.Duration("finished-ttl", time.Minute,
		"reap done/failed jobs this long after they finish, freeing their slot")
	memSpill := fs.String("mem-spill", "",
		"spill directory for jobs created with a memory_budget (default: OS temp dir)")
	walDir := fs.String("wal-dir", "",
		"journal jobs to this directory and replay them on startup (default: no journaling)")
	walSync := fs.String("wal-sync", "always", "WAL fsync policy: always, interval, or none")
	shards := fs.Int("shards", 0, "inference shard count (default: one per CPU)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: elled [flags]")
		fs.PrintDefaults()
		return 2
	}

	svc, err := service.New(service.Config{
		MaxJobs:       *maxJobs,
		MaxChunkBytes: *maxChunk,
		IdleTimeout:   *jobIdle,
		FinishedTTL:   *finishedTTL,
		SpillDir:      *memSpill,
		Shards:        *shards,
		WALDir:        *walDir,
		WALSync:       *walSync,
	})
	if err != nil {
		fmt.Fprintf(stderr, "elled: %v\n", err)
		return 2
	}
	defer svc.Close()
	for _, p := range svc.SkippedWALs() {
		fmt.Fprintf(stderr, "elled: skipping unreadable journal %s\n", p)
	}
	if n := svc.Jobs(); n > 0 && *walDir != "" {
		fmt.Fprintf(stderr, "elled: resumed %d job(s) from %s\n", n, *walDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "elled: %v\n", err)
		return 2
	}
	srv := &http.Server{Handler: svc, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(stderr, "elled: listening on %s\n", ln.Addr())
	if started != nil {
		started <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "elled: %v\n", err)
		return 1
	case <-ctx.Done():
		stop()
		fmt.Fprintln(stderr, "elled: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "elled: shutdown: %v\n", err)
			return 1
		}
		<-errc // Serve has returned http.ErrServerClosed
		return 0
	}
}
