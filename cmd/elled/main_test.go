package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuf makes a bytes.Buffer safe for the test goroutine and run's
// server goroutine to share.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestElledServesAndShutsDown: elled binds, answers an end-to-end check
// over HTTP, and exits 0 on SIGINT (graceful shutdown).
func TestElledServesAndShutsDown(t *testing.T) {
	stderr := &lockedBuf{}
	started := make(chan string, 1)
	code := make(chan int, 1)
	go func() { code <- run([]string{"-addr", "127.0.0.1:0"}, stderr, started) }()

	var base string
	select {
	case addr := <-started:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatalf("server never started; stderr:\n%s", stderr.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// One end-to-end job through the real binary's server.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":"read-committed","parallelism":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, body)
	}
	id := string(body[bytes.Index(body, []byte(`"id": "`))+7:])
	id = id[:strings.Index(id, `"`)]

	hist := `{"index":0,"type":"fail","process":0,"value":[["append","x",1]]}` + "\n" +
		`{"index":1,"type":"ok","process":1,"value":[["r","x",[1]]]}` + "\n"
	resp, err = http.Post(base+"/v1/jobs/"+id+"/chunks", "application/octet-stream", strings.NewReader(hist))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(rep), "G1a") {
		t.Fatalf("report missing G1a:\n%s", rep)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit = %d, want 0; stderr:\n%s", c, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("no graceful exit; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "shutting down") {
		t.Errorf("stderr missing shutdown line:\n%s", stderr.String())
	}
}

// TestElledUsageErrors: bad flags and stray arguments exit 2.
func TestElledUsageErrors(t *testing.T) {
	if code := run([]string{"-nope"}, io.Discard, nil); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"stray"}, io.Discard, nil); code != 2 {
		t.Errorf("stray arg: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard, nil); code != 2 {
		t.Errorf("bad addr: exit %d, want 2", code)
	}
}
