package main

import (
	"io"
	"time"
)

// tailReader adapts a growing file to the streaming decoder: EOF from
// the underlying reader means "no more data yet", so reads poll until
// new bytes appear, and only report io.EOF once the source has been
// quiet for the idle window — the follow-mode heuristic for "the run is
// over". Stdin needs no such wrapper: a pipe blocks until data or
// close, so plain EOF is already definitive there.
type tailReader struct {
	r    io.Reader
	idle time.Duration // quiet period after which the stream is declared complete
	poll time.Duration // delay between retries at EOF
	last time.Time     // time of the last successful read
}

func newTailReader(r io.Reader, idle time.Duration) *tailReader {
	return &tailReader{r: r, idle: idle, poll: 25 * time.Millisecond, last: time.Now()}
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			t.last = time.Now()
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		if err == nil {
			continue
		}
		if time.Since(t.last) >= t.idle {
			return 0, io.EOF
		}
		time.Sleep(t.poll)
	}
}
