package main

import (
	"errors"
	"io"
	"os"
	"time"
)

// errTruncated reports that the followed file shrank below what the
// checker already consumed — a log rotation or truncation. The history
// on disk is no longer the history being checked, so the run fails
// loudly (exit status 3) instead of quietly reporting on a prefix.
var errTruncated = errors.New("followed file shrank (truncated or rotated?)")

// graceFactor stretches the idle window while the delivered tail is a
// partial line: a writer mid-line gets this many quiet windows to
// finish it before the fragment is treated as a final unterminated
// line.
const graceFactor = 4

// tailReader adapts a growing file to the streaming decoder: EOF from
// the underlying reader means "no more data yet", so reads poll until
// new bytes appear, and only report io.EOF once the source has been
// quiet for the idle window — the follow-mode heuristic for "the run is
// over". Stdin needs no such wrapper: a pipe blocks until data or
// close, so plain EOF is already definitive there.
//
// Two guards keep the heuristic honest:
//
//   - The idle window normally only ends the stream on a record
//     boundary. A writer paused between a partial JSON line and its
//     newline must not have the fragment handed to the decoder as if it
//     were final — that would turn a slow write into a spurious decode
//     error (or a silently mis-parsed op). While the delivered tail is
//     a partial line the reader keeps polling through graceFactor idle
//     windows; only after that extended quiet is the fragment passed on
//     as a final unterminated line, which the decoder accepts exactly
//     as a batch read of the same file would. "Partial line" is judged
//     by the last delivered byte being a newline; for ellebin streams —
//     where a newline byte means nothing — the follow path installs a
//     partial hook instead, asking the binary decoder whether it is
//     sitting mid-record.
//   - Every poll at EOF stats the file (when the source is statable):
//     if it shrank below the bytes already consumed, the stream fails
//     with errTruncated rather than ending in a short — wrong — report.
//     The guard is a size check, not a content check: a rotation whose
//     replacement regrows past the consumed offset before the next
//     no-data poll evades it. That needs a writer outrunning the
//     reader's 25ms poll from a standing start; the common rotation —
//     file shrinks, reader notices — is caught.
type tailReader struct {
	r    io.Reader
	size func() (int64, error) // current source size; nil when unknowable
	idle time.Duration         // quiet period after which the stream is declared complete
	poll time.Duration         // delay between retries when no data is available
	last time.Time             // time of the last successful read
	read int64                 // total bytes delivered downstream
	eol  bool                  // last delivered byte was '\n' (vacuously true before any data)

	// partial, when set, replaces the newline heuristic: it reports
	// whether the downstream decoder holds an incomplete record and so
	// deserves the extended grace window. The binary follow path wires
	// it to binhist.StreamDecoder.Pending — the decoder, not a byte
	// value, knows where ellebin record boundaries are.
	partial func() bool
}

func newTailReader(r io.Reader, idle time.Duration) *tailReader {
	t := &tailReader{r: r, idle: idle, poll: 25 * time.Millisecond, last: time.Now(), eol: true}
	if f, ok := r.(*os.File); ok {
		t.size = func() (int64, error) {
			fi, err := f.Stat()
			if err != nil {
				return 0, err
			}
			return fi.Size(), nil
		}
	}
	return t
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			t.read += int64(n)
			t.eol = p[n-1] == '\n'
			t.last = time.Now()
			return n, nil
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return 0, err
		}
		// No data, whether the reader said (0, io.EOF) or the
		// technically-legal (0, nil): both mean "nothing yet". Check for
		// truncation, see if the quiet window has elapsed, and poll —
		// sleeping on every no-data branch, so neither shape of "no
		// data" hot-spins a CPU.
		if t.size != nil {
			size, serr := t.size()
			if serr != nil {
				return 0, serr
			}
			if size < t.read {
				return 0, errTruncated
			}
		}
		midRecord := !t.eol
		if t.partial != nil {
			midRecord = t.partial()
		}
		quiet := t.idle
		if midRecord {
			quiet = graceFactor * t.idle
		}
		if time.Since(t.last) >= quiet {
			return 0, io.EOF
		}
		time.Sleep(t.poll)
	}
}
