package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
)

// encodeFaultedListHistory produces a JSON-lines list-append history
// with planted anomalies, the follow-mode acceptance fixture.
func encodeFaultedListHistory(t *testing.T, txns int) string {
	t.Helper()
	g := gen.New(gen.Config{Workload: gen.ListAppend, ActiveKeys: 5, MaxWritesPerKey: 40}, 11)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: txns, Isolation: memdb.SnapshotIsolation,
		Faults: memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1},
		Source: g, Seed: 11, Workload: memdb.WorkloadList, InfoProb: 0.02,
	})
	var buf bytes.Buffer
	if err := jsonhist.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFollowMatchesBatch is the follow-mode acceptance test: `elle
// -follow` on a file written in bursts emits, on stdout, exactly what a
// batch `elle` run on the completed file emits — at parallelism 1 and
// 8 — while surfacing provisional findings on stderr as the file grows.
func TestFollowMatchesBatch(t *testing.T) {
	content := encodeFaultedListHistory(t, 400)
	path := filepath.Join(t.TempDir(), "history.jsonl")

	var batch bytes.Buffer
	{
		full := write(t, content)
		var errb bytes.Buffer
		if code := run([]string{"-model", "serializable", full}, strings.NewReader(""), &batch, &errb); code != 1 {
			t.Fatalf("batch run: exit = %d, stderr: %s", code, errb.String())
		}
	}

	lines := strings.SplitAfter(strings.TrimSuffix(content, "\n"), "\n")
	for _, p := range []string{"1", "8"} {
		// Write the history in bursts while -follow tails it.
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer f.Close()
			for i := 0; i < len(lines); i += 100 {
				end := i + 100
				if end > len(lines) {
					end = len(lines)
				}
				if _, err := f.WriteString(strings.Join(lines[i:end], "")); err != nil {
					t.Error(err)
					return
				}
				if err := f.Sync(); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(30 * time.Millisecond)
			}
		}()

		var out, errb bytes.Buffer
		code := run([]string{"-follow", "-follow-idle", "500ms", "-model", "serializable", "-parallelism", p, path},
			strings.NewReader(""), &out, &errb)
		<-done
		if code != 1 {
			t.Fatalf("p=%s: exit = %d, want 1; stderr: %s", p, code, errb.String())
		}
		if out.String() != batch.String() {
			t.Fatalf("p=%s: follow stdout diverges from batch:\n--- batch ---\n%s\n--- follow ---\n%s",
				p, batch.String(), out.String())
		}
		if !strings.Contains(errb.String(), "stream complete") {
			t.Errorf("p=%s: stderr missing completion line:\n%s", p, errb.String())
		}
		if !strings.Contains(errb.String(), "provisional") {
			t.Errorf("p=%s: no provisional findings surfaced while following:\n%s", p, errb.String())
		}
	}
}

// TestFollowPartialLineIdle is the regression test for idle expiry
// landing mid-line: the writer emits the final line in two timed
// halves, with a pause longer than the idle window between them. The
// follow run must keep waiting for the newline — not hand the truncated
// fragment to the decoder as if it were final — and still produce the
// batch report.
func TestFollowPartialLineIdle(t *testing.T) {
	content := encodeFaultedListHistory(t, 60)
	path := filepath.Join(t.TempDir(), "history.jsonl")

	var batch bytes.Buffer
	{
		var errb bytes.Buffer
		if code := run([]string{"-model", "serializable", write(t, content)},
			strings.NewReader(""), &batch, &errb); code != 1 {
			t.Fatalf("batch run: exit = %d, stderr: %s", code, errb.String())
		}
	}

	lines := strings.SplitAfter(strings.TrimSuffix(content, "\n"), "\n")
	last := lines[len(lines)-1]
	head := strings.Join(lines[:len(lines)-1], "")
	half := len(last) / 2

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	const idle = 400 * time.Millisecond
	go func() {
		defer close(done)
		defer f.Close()
		// Everything but the final line's second half lands at once;
		// then the writer stalls mid-line for longer than the idle
		// window (but inside the partial-line grace). The old reader
		// declared the stream complete during that stall and fed the
		// fragment to the decoder.
		for _, part := range []string{head + last[:half], last[half:]} {
			if _, err := f.WriteString(part); err != nil {
				t.Error(err)
				return
			}
			if err := f.Sync(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * idle)
		}
	}()

	var out, errb bytes.Buffer
	code := run([]string{"-follow", "-follow-idle", idle.String(), "-model", "serializable", path},
		strings.NewReader(""), &out, &errb)
	<-done
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if out.String() != batch.String() {
		t.Fatalf("follow stdout diverges from batch:\n--- batch ---\n%s\n--- follow ---\n%s",
			batch.String(), out.String())
	}
}

// TestFollowTruncated: shrinking the followed file mid-run (log
// rotation) must fail loudly with exit status 3, not end the run with a
// short report.
func TestFollowTruncated(t *testing.T) {
	content := encodeFaultedListHistory(t, 100)
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Let the follow run consume the whole file, then rotate it out
		// from under the checker before the idle window can elapse.
		time.Sleep(400 * time.Millisecond)
		if err := os.Truncate(path, 10); err != nil {
			t.Error(err)
		}
	}()

	var out, errb bytes.Buffer
	code := run([]string{"-follow", "-follow-idle", "2s", "-model", "serializable", path},
		strings.NewReader(""), &out, &errb)
	<-done
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "shrank") {
		t.Errorf("stderr does not name the truncation:\n%s", errb.String())
	}
}

// TestFollowStdin: on stdin, follow mode streams to pipe EOF with no
// idle heuristic, and still matches the batch report.
func TestFollowStdin(t *testing.T) {
	var batch, out, errb bytes.Buffer
	if code := run([]string{"-model", "read-committed", write(t, g1aHistory)},
		strings.NewReader(""), &batch, &errb); code != 1 {
		t.Fatalf("batch: exit %d", code)
	}
	errb.Reset()
	code := run([]string{"-follow", "-model", "read-committed", "-"},
		strings.NewReader(g1aHistory), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if out.String() != batch.String() {
		t.Fatalf("follow stdout diverges from batch:\n%s\nvs\n%s", out.String(), batch.String())
	}
	if !strings.Contains(errb.String(), "G1a") {
		t.Errorf("G1a not surfaced mid-stream:\n%s", errb.String())
	}
}

// TestFollowMemBudget: `-follow -mem-budget` retires settled prefixes
// while streaming, reports the retirement counters at completion, and
// still renders the exact batch report — the bounded-memory mode's
// byte-identical contract, exercised through the CLI.
func TestFollowMemBudget(t *testing.T) {
	content := encodeFaultedListHistory(t, 400)

	var batch, errb bytes.Buffer
	if code := run([]string{"-model", "serializable", write(t, content)},
		strings.NewReader(""), &batch, &errb); code != 1 {
		t.Fatalf("batch run: exit = %d, stderr: %s", code, errb.String())
	}

	var out bytes.Buffer
	errb.Reset()
	code := run([]string{"-follow", "-model", "serializable",
		"-mem-budget", "64", "-mem-spill", t.TempDir(), "-"},
		strings.NewReader(content), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if out.String() != batch.String() {
		t.Fatalf("budgeted follow stdout diverges from batch:\n--- batch ---\n%s\n--- follow ---\n%s",
			batch.String(), out.String())
	}
	if !strings.Contains(errb.String(), "memory budget:") {
		t.Errorf("stderr missing retirement counters:\n%s", errb.String())
	}
}

// TestFollowMalformedInput: a bad line fails the stream with the usual
// decoder error and exit 2.
func TestFollowMalformedInput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-follow", "-"}, strings.NewReader("not json\n"), &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "line 1") {
		t.Errorf("error lacks line number:\n%s", errb.String())
	}
}
