package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/workload"
)

func write(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanHistory = `{"index":0,"type":"ok","process":0,"value":[["append","x",1]]}
{"index":1,"type":"ok","process":1,"value":[["append","x",2]]}
{"index":2,"type":"ok","process":2,"value":[["r","x",[1,2]]]}
`

const g1aHistory = `{"index":0,"type":"fail","process":0,"value":[["append","x",1]]}
{"index":1,"type":"ok","process":1,"value":[["r","x",[1]]]}
`

func TestCleanHistoryExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{write(t, cleanHistory)}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("output missing verdict:\n%s", out.String())
	}
}

func TestAnomalousHistoryExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-model", "read-committed", write(t, g1aHistory)},
		strings.NewReader(""), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "G1a") {
		t.Errorf("output missing G1a:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "aborted") {
		t.Errorf("output missing explanation:\n%s", out.String())
	}
}

func TestStdinInput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-"}, strings.NewReader(cleanHistory), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
}

func TestQuietSuppressesExplanations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-q", "-model", "read-committed", write(t, g1aHistory)},
		strings.NewReader(""), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out.String(), "--- anomaly") {
		t.Errorf("quiet mode printed explanations:\n%s", out.String())
	}
}

func TestDOTOutput(t *testing.T) {
	// A write-skew history whose cycle should render as DOT.
	h := `{"index":0,"type":"ok","process":0,"value":[["r","x",[]],["append","y",1]]}
{"index":1,"type":"ok","process":1,"value":[["r","y",[]],["append","x",1]]}
{"index":2,"type":"ok","process":2,"value":[["r","x",[1]],["r","y",[1]]]}
`
	var out, errb bytes.Buffer
	code := run([]string{"-dot", "-model", "serializable", write(t, h)},
		strings.NewReader(""), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "digraph elle") {
		t.Errorf("missing DOT output:\n%s", out.String())
	}
}

func TestRegisterWorkloadFlag(t *testing.T) {
	h := `{"index":0,"type":"ok","process":0,"value":[["w","x",2],["r","x",1]]}
{"index":1,"type":"ok","process":1,"value":[["w","x",1]]}
`
	var out, errb bytes.Buffer
	code := run([]string{"-workload", "register", "-model", "snapshot-isolation", write(t, h)},
		strings.NewReader(""), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "internal") {
		t.Errorf("register internal anomaly missing:\n%s", out.String())
	}
}

// writeBankHistory generates a bank history against the engine with the
// given faults and writes it as JSON lines, the way ellegen does.
func writeBankHistory(t *testing.T, faults memdb.Faults, iso memdb.Isolation, txns int) string {
	t.Helper()
	g := gen.New(gen.Config{Workload: gen.Bank, ActiveKeys: 5}, 7)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: txns, Isolation: iso, Faults: faults,
		Source: g, Seed: 7, Workload: memdb.WorkloadBank,
	})
	var buf bytes.Buffer
	if err := jsonhist.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	return write(t, buf.String())
}

// TestBankWorkloadClean: a clean serializable bank history checks OK
// through the CLI.
func TestBankWorkloadClean(t *testing.T) {
	path := writeBankHistory(t, memdb.Faults{}, memdb.StrictSerializable, 300)
	var out, errb bytes.Buffer
	code := run([]string{"-workload", "bank", path}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("output missing verdict:\n%s", out.String())
	}
}

// TestBankWorkloadFaultedDeterministic is the acceptance check for the
// bank seam: a faulted bank history reports at least one anomaly with
// an explanation, and the full report is byte-identical at
// parallelism 1 and 8.
func TestBankWorkloadFaultedDeterministic(t *testing.T) {
	path := writeBankHistory(t, memdb.Faults{StaleReadProb: 0.3}, memdb.SnapshotIsolation, 800)
	reports := map[string]string{}
	for _, p := range []string{"1", "8"} {
		var out, errb bytes.Buffer
		code := run([]string{"-workload", "bank", "-model", "snapshot-isolation", "-parallelism", p, path},
			strings.NewReader(""), &out, &errb)
		if code != 1 {
			t.Fatalf("p=%s: exit = %d, want 1; stderr: %s\n%s", p, code, errb.String(), out.String())
		}
		reports[p] = out.String()
	}
	if reports["1"] != reports["8"] {
		t.Fatalf("reports diverge between parallelism 1 and 8:\n--- p=1 ---\n%s\n--- p=8 ---\n%s",
			reports["1"], reports["8"])
	}
	if !strings.Contains(reports["1"], "--- anomaly 1:") {
		t.Errorf("no anomaly reported:\n%s", reports["1"])
	}
	if !strings.Contains(reports["1"], "total") && !strings.Contains(reports["1"], "because") {
		t.Errorf("anomaly lacks an explanation:\n%s", reports["1"])
	}
}

// TestUnknownWorkloadListsRegistry: a bad -workload prints every
// registered name.
func TestUnknownWorkloadListsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "bogus", "x.jsonl"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, name := range workload.Names() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("error message missing workload %q:\n%s", name, errb.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                // no file
		{"-workload", "bogus", "x.jsonl"}, // bad workload
		{"-model", "bogus", "x.jsonl"},    // bad model
		{"/nonexistent/path.jsonl"},       // missing file
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

func TestMalformedInputExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{write(t, "not json\n")}, strings.NewReader(""), &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestJSONReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-model", "read-committed", write(t, g1aHistory)},
		strings.NewReader(""), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), `"valid": false`) ||
		!strings.Contains(out.String(), `"G1a"`) {
		t.Errorf("JSON report wrong:\n%s", out.String())
	}
}

func TestStatsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-stats", write(t, cleanHistory)}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "attempts") {
		t.Errorf("stats missing:\n%s", out.String())
	}
}
