// Command elle checks a transaction history for isolation anomalies,
// in the spirit of the paper's checker: it infers an Adya-style
// dependency graph from the observation, searches it for cycles,
// reports every anomaly with a human-readable explanation, and states
// which isolation models the history rules out.
//
// Histories come in two formats, auto-detected from the first byte
// (see docs/FORMATS.md): JSON lines, and ellebin — the compact binary
// format ellegen writes with -format binary. Every mode — batch,
// -follow, -convert — accepts either.
//
// Usage:
//
//	elle [flags] history.jsonl
//	... | elle [flags] -
//	elle -follow history.jsonl     # tail a growing history
//	elle -convert binary h.jsonl   # re-encode instead of checking
//
// Flags:
//
//	-workload KIND            any registered workload: list-append,
//	                          rw-register, set-add, counter, bank, or an
//	                          alias (list, register, set); default list
//	-model MODEL              expected consistency model
//	                          (default strict-serializable)
//	-parallelism N            worker count for decoding and checking
//	                          (default 0 = one per CPU; 1 = sequential)
//	-follow                   check incrementally while the input grows:
//	                          provisional anomalies print to stderr as
//	                          chunks prove them; the final report (on
//	                          stdout) is byte-identical to a batch run
//	                          over the completed file
//	-follow-idle DURATION     in -follow mode, treat a file quiet for
//	                          this long as complete (default 2s; stdin
//	                          instead streams until EOF)
//	-mem-budget N             in -follow mode, bound resident memory to
//	                          roughly the last N completions: settled
//	                          prefixes are retired into compact segments
//	                          and key caches for quiescent keys released,
//	                          letting elle follow histories larger than
//	                          RAM (0 = keep everything; the final report
//	                          is byte-identical either way)
//	-mem-spill DIR            with -mem-budget, spill retired segments to
//	                          an unlinked temporary file in DIR (created
//	                          if missing) instead of holding their
//	                          encoded bytes in memory
//	-convert FORMAT           do not check: decode the input (either
//	                          format) and write it to stdout as FORMAT —
//	                          json or binary (-workload still selects
//	                          register-read decoding for JSON input)
//	-query PATTERN            after checking, evaluate a docs/QUERY.md
//	                          pattern query against the analysis and
//	                          print its rows instead of the report;
//	                          incompatible with -follow and -convert
//	-explain                  with -query, also print the checker's
//	                          explanation of every anomaly a result
//	                          variable binds (provenance)
//	-dot                      also print Graphviz DOT for each cycle witness
//	-q                        print only the verdict line
//	-json                     emit a machine-readable JSON report
//	-stats                    print history statistics
//
// Exit status: 0 if the history is consistent with the expected model
// (or, in -query mode, if the query evaluated), 1 if anomalies rule it
// out, 2 on usage or input errors — including malformed queries, which
// report the 1-based position of the fault — 3 if a
// followed history was truncated or rotated mid-run — the file shrank
// below what was already consumed, or (for ellebin input) the stream
// stopped framing correctly at the reader's offset, the signature of a
// rotation that regrew past it. Either way the report would have
// covered a history that is not the one on disk, so the run fails
// loudly instead.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/binhist"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/jsonhist"
	"repro/internal/op"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// output bundles the rendering flags shared by the batch and follow
// paths.
type output struct {
	dot, quiet, jsonOut, showStats bool
	stdout, stderr                 io.Writer
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elle", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloadFlag := fs.String("workload", "list",
		"workload analyzer: "+workload.NameList()+" (or an alias)")
	model := fs.String("model", string(consistency.StrictSerializable),
		"expected consistency model")
	parallelism := fs.Int("parallelism", 0,
		"worker count for decoding and checking (0 = one per CPU, 1 = sequential)")
	follow := fs.Bool("follow", false,
		"check incrementally while the input grows; anomalies print to stderr as they become provable")
	followIdle := fs.Duration("follow-idle", 2*time.Second,
		"in -follow mode, treat a file quiet for this long as complete")
	memBudget := fs.Int("mem-budget", 0,
		"in -follow mode, keep roughly this many recent completions resident, retiring settled prefixes (0 = keep everything)")
	memSpill := fs.String("mem-spill", "",
		"with -mem-budget, spill retired segments to an unlinked temp file in this directory")
	convert := fs.String("convert", "",
		"do not check: re-encode the input to stdout as this format (json or binary)")
	query := fs.String("query", "",
		"evaluate a docs/QUERY.md pattern query against the analysis and print its rows")
	explainQ := fs.Bool("explain", false,
		"with -query, print the explanation of every anomaly a result variable binds")
	dot := fs.Bool("dot", false, "print Graphviz DOT for each cycle witness")
	quiet := fs.Bool("q", false, "print only the verdict line")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report instead of prose")
	showStats := fs.Bool("stats", false, "print history statistics before the verdict")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: elle [flags] history.jsonl (or - for stdin)")
		fs.PrintDefaults()
		return 2
	}

	info, ok := workload.Lookup(*workloadFlag)
	if !ok {
		fmt.Fprintf(stderr, "elle: unknown workload %q; choose from:\n", *workloadFlag)
		for _, name := range workload.Names() {
			fmt.Fprintf(stderr, "  %s\n", name)
		}
		return 2
	}
	w := core.Workload(info.Name)
	m := consistency.Model(*model)
	if !consistency.Known(m) {
		fmt.Fprintf(stderr, "elle: unknown model %q; choose from:\n", *model)
		for _, k := range consistency.All {
			fmt.Fprintf(stderr, "  %s\n", k)
		}
		return 2
	}

	switch *convert {
	case "", "json", "binary", "ellebin":
	default:
		fmt.Fprintf(stderr, "elle: unknown convert format %q (json or binary)\n", *convert)
		return 2
	}
	if *query != "" && (*follow || *convert != "") {
		fmt.Fprintln(stderr, "elle: -query is incompatible with -follow and -convert")
		return 2
	}
	if *explainQ && *query == "" {
		fmt.Fprintln(stderr, "elle: -explain requires -query")
		return 2
	}

	in := stdin
	fromFile := false
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(stderr, "elle: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
		fromFile = true
	}

	opts := core.OptsFor(w, m)
	opts.Parallelism = *parallelism
	opts.MemoryBudget = *memBudget
	opts.SpillDir = *memSpill
	if *memSpill != "" {
		// Create it up front: a missing directory would otherwise degrade
		// every spill to in-memory segments, defeating the point of the flag.
		if err := os.MkdirAll(*memSpill, 0o700); err != nil {
			fmt.Fprintf(stderr, "elle: -mem-spill: %v\n", err)
			return 2
		}
	}
	out := output{dot: *dot, quiet: *quiet, jsonOut: *jsonOut, showStats: *showStats,
		stdout: stdout, stderr: stderr}

	if *follow {
		return runFollow(in, fromFile, *followIdle, info, opts, out)
	}

	// One peeked byte picks the format: 0xEB can never begin JSON text,
	// and ellebin streams always begin with it. An empty input is a
	// valid (empty) history in either reading; the JSON path handles it.
	br := bufio.NewReader(in)
	head, perr := br.Peek(1)
	if perr != nil && !errors.Is(perr, io.EOF) {
		fmt.Fprintf(stderr, "elle: %v\n", perr)
		return 2
	}
	binary := len(head) > 0 && binhist.IsMagic(head)

	var h *history.History
	var err error
	if binary {
		h, err = binhist.Decode(br)
	} else {
		h, err = jsonhist.DecodeWith(br, jsonhist.DecodeOpts{
			Register:    info.RegisterReads,
			Parallelism: *parallelism,
		})
	}
	if err != nil {
		fmt.Fprintf(stderr, "elle: %v\n", err)
		return 2
	}
	if *convert != "" {
		return runConvert(h, *convert, stdout, stderr)
	}
	if *query != "" {
		return runQuery(core.Check(h, opts), h, *query, *explainQ, stdout, stderr)
	}
	return render(core.Check(h, opts), h, w, out)
}

// runQuery evaluates one docs/QUERY.md pattern against the finished
// check and prints its canonical tab-separated rows; with provenance
// enabled, the checker's explanation of each anomaly a result variable
// binds follows the rows.
func runQuery(res *core.CheckResult, h *history.History, q string, provenance bool, stdout, stderr io.Writer) int {
	r, err := res.Query(h, q)
	if err != nil {
		fmt.Fprintf(stderr, "elle: %v\n", err)
		return 2
	}
	if _, err := r.WriteTo(stdout); err != nil {
		fmt.Fprintf(stderr, "elle: %v\n", err)
		return 2
	}
	if provenance {
		cat := res.Relations(h)
		for _, id := range r.AnomalyIDs() {
			a, ok := cat.AnomalyAt(id)
			if !ok {
				continue
			}
			fmt.Fprintf(stdout, "\n# anomaly %d: %s\n", id, a.Type)
			if exp := a.Explanation; exp != "" {
				fmt.Fprint(stdout, exp)
				if !strings.HasSuffix(exp, "\n") {
					fmt.Fprintln(stdout)
				}
			}
		}
	}
	return 0
}

// runConvert writes the decoded history to stdout in the requested
// format — the re-encoding half of `elle -convert`.
func runConvert(h *history.History, format string, stdout, stderr io.Writer) int {
	var err error
	switch format {
	case "json":
		err = jsonhist.Encode(stdout, h)
	default: // "binary" / "ellebin", validated by run
		err = binhist.Encode(stdout, h)
	}
	if err != nil {
		fmt.Fprintf(stderr, "elle: %v\n", err)
		return 2
	}
	return 0
}

// runFollow tails the input through the streaming decoder and the
// incremental checker: each decoded chunk feeds the stream, provisional
// findings print to stderr the moment a chunk proves them, and once the
// source is complete the definitive report — byte-identical to a batch
// run over the finished file — renders on stdout. The format is peeked
// from the first byte, exactly as in batch mode; the peek itself tails,
// so following a file that does not have its first byte yet works.
func runFollow(in io.Reader, fromFile bool, idle time.Duration, info workload.Info, opts core.Opts, out output) int {
	src := in
	var tail *tailReader
	if fromFile {
		// A file hitting EOF may just not have been written yet; stdin's
		// EOF (pipe close) is already definitive.
		tail = newTailReader(in, idle)
		src = tail
	}
	br := bufio.NewReader(src)
	head, perr := br.Peek(1)
	if perr != nil && !errors.Is(perr, io.EOF) {
		fmt.Fprintf(out.stderr, "elle: %v\n", perr)
		if errors.Is(perr, errTruncated) {
			return 3
		}
		return 2
	}
	var dec interface{ Next() ([]op.Op, error) }
	if len(head) > 0 && binhist.IsMagic(head) {
		bdec := binhist.NewStreamDecoder(br)
		if tail != nil {
			// An ellebin writer paused mid-record earns the same extended
			// grace a JSON writer paused mid-line does; the decoder knows
			// whether the delivered tail sits inside a record.
			tail.partial = func() bool { return bdec.Pending() > 0 }
		}
		dec = bdec
	} else {
		dec = jsonhist.NewStreamDecoder(br, jsonhist.DecodeOpts{
			Register:    info.RegisterReads,
			Parallelism: opts.Parallelism,
			Tail:        true,
		})
	}
	st := core.CheckStream(opts)
	for {
		ops, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintf(out.stderr, "elle: %v\n", err)
			if errors.Is(err, errTruncated) || errors.Is(err, binhist.ErrFraming) {
				// The file shrank under the reader — or, for ellebin, the
				// bytes at the reader's offset stopped being a well-formed
				// continuation of the stream: the signature of a rotation
				// that regrew past the consumed offset between size
				// checks. Either way the history on disk is not the one
				// being checked.
				return 3
			}
			return 2
		}
		d, err := st.Feed(ops)
		if err != nil {
			fmt.Fprintf(out.stderr, "elle: %v\n", err)
			return 2
		}
		for _, a := range d.Anomalies {
			fmt.Fprintf(out.stderr, "elle: provisional: %s\n", a)
		}
	}
	res, err := st.Finish()
	if err != nil {
		fmt.Fprintf(out.stderr, "elle: %v\n", err)
		return 2
	}
	fmt.Fprintf(out.stderr, "elle: stream complete: %d ops\n", st.Ops())
	if rs, ok := st.RetireStats(); ok && rs.Stream.RetiredOps > 0 {
		fmt.Fprintf(out.stderr,
			"elle: memory budget: %d ops resident, %d retired in %d segments (%d bytes encoded, %d spilled)\n",
			rs.Stream.ResidentOps, rs.Stream.RetiredOps, rs.Stream.Segments,
			rs.Stream.RetiredBytes, rs.Stream.SpilledBytes)
		if rs.Stream.Degraded != "" {
			fmt.Fprintf(out.stderr, "elle: memory budget degraded (segments held in memory): %s\n",
				rs.Stream.Degraded)
		}
	}
	return render(res, st.History(), core.Workload(info.Name), out)
}

// render writes the report — prose or JSON — and maps the verdict to
// the exit status. It is shared verbatim by the batch and follow paths,
// which is what makes `elle -follow`'s final stdout byte-identical to a
// batch run's.
func render(res *core.CheckResult, h *history.History, w core.Workload, out output) int {
	if out.jsonOut {
		if err := report.New(h, w, res).Write(out.stdout); err != nil {
			fmt.Fprintf(out.stderr, "elle: %v\n", err)
			return 2
		}
		if res.Valid {
			return 0
		}
		return 1
	}
	if out.showStats {
		fmt.Fprint(out.stdout, stats.Compute(h).String())
	}
	report.Prose(out.stdout, res, report.ProseOpts{Quiet: out.quiet, DOT: out.dot})
	if res.Valid {
		return 0
	}
	return 1
}
