// Command elle checks a JSON-lines transaction history for isolation
// anomalies, in the spirit of the paper's checker: it infers an
// Adya-style dependency graph from the observation, searches it for
// cycles, reports every anomaly with a human-readable explanation, and
// states which isolation models the history rules out.
//
// Usage:
//
//	elle [flags] history.jsonl
//	... | elle [flags] -
//	elle -follow history.jsonl     # tail a growing history
//
// Flags:
//
//	-workload KIND            any registered workload: list-append,
//	                          rw-register, set-add, counter, bank, or an
//	                          alias (list, register, set); default list
//	-model MODEL              expected consistency model
//	                          (default strict-serializable)
//	-parallelism N            worker count for decoding and checking
//	                          (default 0 = one per CPU; 1 = sequential)
//	-follow                   check incrementally while the input grows:
//	                          provisional anomalies print to stderr as
//	                          chunks prove them; the final report (on
//	                          stdout) is byte-identical to a batch run
//	                          over the completed file
//	-follow-idle DURATION     in -follow mode, treat a file quiet for
//	                          this long as complete (default 2s; stdin
//	                          instead streams until EOF)
//	-dot                      also print Graphviz DOT for each cycle witness
//	-q                        print only the verdict line
//	-json                     emit a machine-readable JSON report
//	-stats                    print history statistics
//
// Exit status: 0 if the history is consistent with the expected model,
// 1 if anomalies rule it out, 2 on usage or input errors, 3 if a
// followed file shrank mid-run (truncated or rotated — the report would
// have covered only a prefix of the real history).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/jsonhist"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// output bundles the rendering flags shared by the batch and follow
// paths.
type output struct {
	dot, quiet, jsonOut, showStats bool
	stdout, stderr                 io.Writer
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elle", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloadFlag := fs.String("workload", "list",
		"workload analyzer: "+workload.NameList()+" (or an alias)")
	model := fs.String("model", string(consistency.StrictSerializable),
		"expected consistency model")
	parallelism := fs.Int("parallelism", 0,
		"worker count for decoding and checking (0 = one per CPU, 1 = sequential)")
	follow := fs.Bool("follow", false,
		"check incrementally while the input grows; anomalies print to stderr as they become provable")
	followIdle := fs.Duration("follow-idle", 2*time.Second,
		"in -follow mode, treat a file quiet for this long as complete")
	dot := fs.Bool("dot", false, "print Graphviz DOT for each cycle witness")
	quiet := fs.Bool("q", false, "print only the verdict line")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report instead of prose")
	showStats := fs.Bool("stats", false, "print history statistics before the verdict")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: elle [flags] history.jsonl (or - for stdin)")
		fs.PrintDefaults()
		return 2
	}

	info, ok := workload.Lookup(*workloadFlag)
	if !ok {
		fmt.Fprintf(stderr, "elle: unknown workload %q; choose from:\n", *workloadFlag)
		for _, name := range workload.Names() {
			fmt.Fprintf(stderr, "  %s\n", name)
		}
		return 2
	}
	w := core.Workload(info.Name)
	m := consistency.Model(*model)
	if !consistency.Known(m) {
		fmt.Fprintf(stderr, "elle: unknown model %q; choose from:\n", *model)
		for _, k := range consistency.All {
			fmt.Fprintf(stderr, "  %s\n", k)
		}
		return 2
	}

	in := stdin
	fromFile := false
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(stderr, "elle: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
		fromFile = true
	}

	opts := core.OptsFor(w, m)
	opts.Parallelism = *parallelism
	out := output{dot: *dot, quiet: *quiet, jsonOut: *jsonOut, showStats: *showStats,
		stdout: stdout, stderr: stderr}

	if *follow {
		return runFollow(in, fromFile, *followIdle, info, opts, out)
	}

	h, err := jsonhist.DecodeWith(in, jsonhist.DecodeOpts{
		Register:    info.RegisterReads,
		Parallelism: *parallelism,
	})
	if err != nil {
		fmt.Fprintf(stderr, "elle: %v\n", err)
		return 2
	}
	return render(core.Check(h, opts), h, w, out)
}

// runFollow tails the input through the streaming decoder and the
// incremental checker: each decoded chunk feeds the stream, provisional
// findings print to stderr the moment a chunk proves them, and once the
// source is complete the definitive report — byte-identical to a batch
// run over the finished file — renders on stdout.
func runFollow(in io.Reader, fromFile bool, idle time.Duration, info workload.Info, opts core.Opts, out output) int {
	src := in
	if fromFile {
		// A file hitting EOF may just not have been written yet; stdin's
		// EOF (pipe close) is already definitive.
		src = newTailReader(in, idle)
	}
	dec := jsonhist.NewStreamDecoder(src, jsonhist.DecodeOpts{
		Register:    info.RegisterReads,
		Parallelism: opts.Parallelism,
		Tail:        true,
	})
	st := core.CheckStream(opts)
	for {
		ops, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintf(out.stderr, "elle: %v\n", err)
			if errors.Is(err, errTruncated) {
				return 3
			}
			return 2
		}
		d, err := st.Feed(ops)
		if err != nil {
			fmt.Fprintf(out.stderr, "elle: %v\n", err)
			return 2
		}
		for _, a := range d.Anomalies {
			fmt.Fprintf(out.stderr, "elle: provisional: %s\n", a)
		}
	}
	res, err := st.Finish()
	if err != nil {
		fmt.Fprintf(out.stderr, "elle: %v\n", err)
		return 2
	}
	fmt.Fprintf(out.stderr, "elle: stream complete: %d ops\n", st.Ops())
	return render(res, st.History(), core.Workload(info.Name), out)
}

// render writes the report — prose or JSON — and maps the verdict to
// the exit status. It is shared verbatim by the batch and follow paths,
// which is what makes `elle -follow`'s final stdout byte-identical to a
// batch run's.
func render(res *core.CheckResult, h *history.History, w core.Workload, out output) int {
	if out.jsonOut {
		if err := report.New(h, w, res).Write(out.stdout); err != nil {
			fmt.Fprintf(out.stderr, "elle: %v\n", err)
			return 2
		}
		if res.Valid {
			return 0
		}
		return 1
	}
	if out.showStats {
		fmt.Fprint(out.stdout, stats.Compute(h).String())
	}
	report.Prose(out.stdout, res, report.ProseOpts{Quiet: out.quiet, DOT: out.dot})
	if res.Valid {
		return 0
	}
	return 1
}
