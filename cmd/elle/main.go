// Command elle checks a JSON-lines transaction history for isolation
// anomalies, in the spirit of the paper's checker: it infers an
// Adya-style dependency graph from the observation, searches it for
// cycles, reports every anomaly with a human-readable explanation, and
// states which isolation models the history rules out.
//
// Usage:
//
//	elle [flags] history.jsonl
//	... | elle [flags] -
//
// Flags:
//
//	-workload KIND            any registered workload: list-append,
//	                          rw-register, set-add, counter, bank, or an
//	                          alias (list, register, set); default list
//	-model MODEL              expected consistency model
//	                          (default strict-serializable)
//	-parallelism N            worker count for decoding and checking
//	                          (default 0 = one per CPU; 1 = sequential)
//	-dot                      also print Graphviz DOT for each cycle witness
//	-q                        print only the verdict line
//	-json                     emit a machine-readable JSON report
//	-stats                    print history statistics
//
// Exit status: 0 if the history is consistent with the expected model,
// 1 if anomalies rule it out, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/jsonhist"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elle", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloadFlag := fs.String("workload", "list",
		"workload analyzer: "+workload.NameList()+" (or an alias)")
	model := fs.String("model", string(consistency.StrictSerializable),
		"expected consistency model")
	parallelism := fs.Int("parallelism", 0,
		"worker count for decoding and checking (0 = one per CPU, 1 = sequential)")
	dot := fs.Bool("dot", false, "print Graphviz DOT for each cycle witness")
	quiet := fs.Bool("q", false, "print only the verdict line")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report instead of prose")
	showStats := fs.Bool("stats", false, "print history statistics before the verdict")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: elle [flags] history.jsonl (or - for stdin)")
		fs.PrintDefaults()
		return 2
	}

	info, ok := workload.Lookup(*workloadFlag)
	if !ok {
		fmt.Fprintf(stderr, "elle: unknown workload %q; choose from:\n", *workloadFlag)
		for _, name := range workload.Names() {
			fmt.Fprintf(stderr, "  %s\n", name)
		}
		return 2
	}
	w := core.Workload(info.Name)
	m := consistency.Model(*model)
	known := false
	for _, k := range consistency.All {
		if k == m {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(stderr, "elle: unknown model %q; choose from:\n", *model)
		for _, k := range consistency.All {
			fmt.Fprintf(stderr, "  %s\n", k)
		}
		return 2
	}

	in := stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(stderr, "elle: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	h, err := jsonhist.DecodeWith(in, jsonhist.DecodeOpts{
		Register:    info.RegisterReads,
		Parallelism: *parallelism,
	})
	if err != nil {
		fmt.Fprintf(stderr, "elle: %v\n", err)
		return 2
	}

	opts := core.OptsFor(w, m)
	opts.Parallelism = *parallelism
	res := core.Check(h, opts)
	if *jsonOut {
		if err := report.New(h, w, res).Write(stdout); err != nil {
			fmt.Fprintf(stderr, "elle: %v\n", err)
			return 2
		}
		if res.Valid {
			return 0
		}
		return 1
	}
	if *showStats {
		fmt.Fprint(stdout, stats.Compute(h).String())
	}
	fmt.Fprint(stdout, res.Summary())
	if !*quiet {
		for i, a := range res.Anomalies {
			fmt.Fprintf(stdout, "\n--- anomaly %d: %s ---\n", i+1, a.Type)
			if a.Explanation != "" {
				fmt.Fprintln(stdout, a.Explanation)
			}
			if *dot && len(a.Cycle.Steps) > 0 {
				fmt.Fprintln(stdout, res.Explainer.DOT(a.Cycle))
			}
		}
	}
	if res.Valid {
		return 0
	}
	return 1
}
