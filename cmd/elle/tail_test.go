package main

import (
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// growBuf is an in-memory growing file: Read drains what has been
// written so far and then reports "no data yet" — (0, io.EOF) like a
// real file, or the technically-legal (0, nil) when zeroOnEmpty is set.
// Truncate shrinks it the way log rotation shrinks a file.
type growBuf struct {
	mu          sync.Mutex
	data        []byte
	off         int
	reads       int
	zeroOnEmpty bool
}

func (g *growBuf) Read(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reads++
	if g.off >= len(g.data) {
		if g.zeroOnEmpty {
			return 0, nil
		}
		return 0, io.EOF
	}
	n := copy(p, g.data[g.off:])
	g.off += n
	return n, nil
}

func (g *growBuf) append(s string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.data = append(g.data, s...)
}

func (g *growBuf) truncate(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.data = g.data[:n]
	if g.off > n {
		g.off = n
	}
}

func (g *growBuf) size() (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(len(g.data)), nil
}

func (g *growBuf) readCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reads
}

// event is one step of a scripted writer: wait, then append and/or
// truncate.
type event struct {
	after      time.Duration
	append     string
	truncateTo int // -1: no truncation
}

// TestTailReader drives tailReader over scripted writers: slow and
// bursty producers, zero-byte reads, a final line landing in two timed
// halves, and mid-run truncation.
func TestTailReader(t *testing.T) {
	const (
		idle = 80 * time.Millisecond
		poll = 2 * time.Millisecond
	)
	tests := []struct {
		name        string
		events      []event
		zeroOnEmpty bool
		statable    bool
		want        string
		wantErr     error
		// maxReads bounds the number of underlying Read calls: polling
		// at the poll interval stays in the hundreds, while a hot spin
		// on a no-data branch would run to the millions.
		maxReads int
	}{
		{
			name: "slow writer",
			events: []event{
				{after: 0, append: "a 1\n", truncateTo: -1},
				{after: 30 * time.Millisecond, append: "b 2\n", truncateTo: -1},
				{after: 30 * time.Millisecond, append: "c 3\n", truncateTo: -1},
			},
			statable: true,
			want:     "a 1\nb 2\nc 3\n",
			wantErr:  io.EOF,
			maxReads: 2000,
		},
		{
			name: "burst writer",
			events: []event{
				{after: 0, append: strings.Repeat("line of history\n", 200), truncateTo: -1},
				{after: 20 * time.Millisecond, append: strings.Repeat("second burst\n", 200), truncateTo: -1},
			},
			statable: true,
			want:     strings.Repeat("line of history\n", 200) + strings.Repeat("second burst\n", 200),
			wantErr:  io.EOF,
			maxReads: 2000,
		},
		{
			name: "zero-byte reads do not spin or stall",
			events: []event{
				{after: 0, append: "a 1\n", truncateTo: -1},
				{after: 30 * time.Millisecond, append: "b 2\n", truncateTo: -1},
			},
			zeroOnEmpty: true,
			want:        "a 1\nb 2\n",
			wantErr:     io.EOF,
			maxReads:    2000,
		},
		{
			name: "final line in two timed halves outlives the idle window",
			events: []event{
				{after: 0, append: "complete 1\n{\"half\":", truncateTo: -1},
				// The pause exceeds idle (but not the partial-line
				// grace): completion must wait for the newline, not hand
				// the fragment to the decoder.
				{after: idle * 2, append: "\"rest\"}\n", truncateTo: -1},
			},
			statable: true,
			want:     "complete 1\n{\"half\":\"rest\"}\n",
			wantErr:  io.EOF,
			maxReads: 2000,
		},
		{
			name: "unterminated final line completes after the extended grace",
			events: []event{
				{after: 0, append: "complete 1\nno trailing newline", truncateTo: -1},
			},
			statable: true,
			want:     "complete 1\nno trailing newline",
			wantErr:  io.EOF,
			maxReads: 2000,
		},
		{
			name: "truncation fails loudly",
			events: []event{
				{after: 0, append: "a 1\nb 2\n", truncateTo: -1},
				{after: 20 * time.Millisecond, append: "", truncateTo: 3},
			},
			statable: true,
			want:     "a 1\nb 2\n",
			wantErr:  errTruncated,
			maxReads: 2000,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := &growBuf{zeroOnEmpty: tc.zeroOnEmpty}
			tr := &tailReader{r: g, idle: idle, poll: poll, last: time.Now(), eol: true}
			if tc.statable {
				tr.size = g.size
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for _, ev := range tc.events {
					time.Sleep(ev.after)
					if ev.append != "" {
						g.append(ev.append)
					}
					if ev.truncateTo >= 0 {
						g.truncate(ev.truncateTo)
					}
				}
			}()

			var b strings.Builder
			buf := make([]byte, 64)
			var err error
			for err == nil {
				var n int
				n, err = tr.Read(buf)
				b.Write(buf[:n])
			}
			<-done
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("terminal error = %v, want %v", err, tc.wantErr)
			}
			if got := b.String(); got != tc.want {
				t.Errorf("delivered %q, want %q", got, tc.want)
			}
			if n := g.readCount(); n > tc.maxReads {
				t.Errorf("%d underlying reads; want <= %d (hot spin?)", n, tc.maxReads)
			}
		})
	}
}
