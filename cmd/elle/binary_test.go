package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/binhist"
	"repro/internal/jsonhist"
)

// binEncode re-encodes a JSON-lines history fixture as ellebin.
func binEncode(t *testing.T, jsonl string) []byte {
	t.Helper()
	h, err := jsonhist.Decode(strings.NewReader(jsonl), false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := binhist.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeBytes(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "history.ellebin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBinaryBatchMatchesJSON is the batch leg of the cross-format
// parity contract: the same history checked from its JSON-lines file
// and from its ellebin file — the format picked by the peeked first
// byte, no flag — produces byte-identical reports and exit codes, in
// prose and JSON renderings.
func TestBinaryBatchMatchesJSON(t *testing.T) {
	jsonl := encodeFaultedListHistory(t, 400)
	jsonPath := write(t, jsonl)
	binPath := writeBytes(t, binEncode(t, jsonl))

	for _, extra := range [][]string{nil, {"-json"}, {"-stats"}} {
		args := append(append([]string{"-model", "serializable"}, extra...), jsonPath)
		var jout, jerr bytes.Buffer
		jcode := run(args, strings.NewReader(""), &jout, &jerr)

		args = append(append([]string{"-model", "serializable"}, extra...), binPath)
		var bout, berr bytes.Buffer
		bcode := run(args, strings.NewReader(""), &bout, &berr)

		if jcode != bcode {
			t.Fatalf("%v: exit diverges: json %d, binary %d (stderr: %s)", extra, jcode, bcode, berr.String())
		}
		if jout.String() != bout.String() {
			t.Fatalf("%v: reports diverge:\n--- json ---\n%s\n--- binary ---\n%s",
				extra, jout.String(), bout.String())
		}
	}
}

// TestConvertRoundTrip: -convert re-encodes without checking, and the
// two directions are exact inverses — JSON → binary matches a direct
// binhist encode byte for byte, and binary → JSON restores the original
// JSON-lines file byte for byte.
func TestConvertRoundTrip(t *testing.T) {
	jsonl := encodeFaultedListHistory(t, 60)
	jsonPath := write(t, jsonl)
	bin := binEncode(t, jsonl)

	var out, errb bytes.Buffer
	if code := run([]string{"-convert", "binary", jsonPath}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("convert to binary: exit %d, stderr: %s", code, errb.String())
	}
	if !bytes.Equal(out.Bytes(), bin) {
		t.Fatalf("converted binary differs from direct encode (%d vs %d bytes)", out.Len(), len(bin))
	}

	binPath := writeBytes(t, out.Bytes())
	out.Reset()
	if code := run([]string{"-convert", "json", binPath}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("convert to json: exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != jsonl {
		t.Fatalf("binary → json did not restore the original file")
	}
}

// TestConvertBadFormat: an unknown -convert target is a usage error.
func TestConvertBadFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-convert", "yaml", "x.jsonl"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestBinaryMalformedExitsTwo: a corrupt ellebin file in batch mode is
// an ordinary input error.
func TestBinaryMalformedExitsTwo(t *testing.T) {
	bin := binEncode(t, encodeFaultedListHistory(t, 20))
	var out, errb bytes.Buffer
	code := run([]string{writeBytes(t, append(bin, "garbage"...))}, strings.NewReader(""), &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
}

// TestFollowBinaryMatchesBatch: follow mode on an ellebin file written
// in bursts that split records at arbitrary byte offsets emits, on
// stdout, exactly what a batch run on the completed file emits, with
// provisional findings surfacing on stderr along the way.
func TestFollowBinaryMatchesBatch(t *testing.T) {
	bin := binEncode(t, encodeFaultedListHistory(t, 400))
	path := filepath.Join(t.TempDir(), "history.ellebin")

	var batch bytes.Buffer
	{
		var errb bytes.Buffer
		if code := run([]string{"-model", "serializable", writeBytes(t, bin)},
			strings.NewReader(""), &batch, &errb); code != 1 {
			t.Fatalf("batch run: exit = %d, stderr: %s", code, errb.String())
		}
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer f.Close()
		// 997-byte bursts: prime-sized, so nearly every burst ends inside
		// a record and the decoder must carry partial records across
		// polls.
		for i := 0; i < len(bin); i += 997 {
			end := min(i+997, len(bin))
			if _, err := f.Write(bin[i:end]); err != nil {
				t.Error(err)
				return
			}
			if err := f.Sync(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	var out, errb bytes.Buffer
	code := run([]string{"-follow", "-follow-idle", "500ms", "-model", "serializable", path},
		strings.NewReader(""), &out, &errb)
	<-done
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if out.String() != batch.String() {
		t.Fatalf("follow stdout diverges from batch:\n--- batch ---\n%s\n--- follow ---\n%s",
			batch.String(), out.String())
	}
	if !strings.Contains(errb.String(), "provisional") {
		t.Errorf("no provisional findings surfaced while following:\n%s", errb.String())
	}
}

// TestFollowBinaryMidRecordIdle: idle expiry landing while the writer
// is paused inside an ellebin record must not end the stream — the
// partial-record grace that the JSON path gets from its newline
// heuristic comes from the binary decoder's own framing here.
func TestFollowBinaryMidRecordIdle(t *testing.T) {
	bin := binEncode(t, encodeFaultedListHistory(t, 60))
	path := filepath.Join(t.TempDir(), "history.ellebin")

	var batch bytes.Buffer
	{
		var errb bytes.Buffer
		if code := run([]string{"-model", "serializable", writeBytes(t, bin)},
			strings.NewReader(""), &batch, &errb); code != 1 {
			t.Fatalf("batch run: exit = %d, stderr: %s", code, errb.String())
		}
	}

	// Find a split point strictly inside the final record.
	cut := len(bin) - 1
	for ; cut > 0; cut-- {
		var c binhist.ChunkDecoder
		if _, err := c.Feed(bin[:cut]); err == nil && c.Pending() > 0 {
			break
		}
	}
	if cut == 0 {
		t.Fatal("no mid-record cut found")
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	const idle = 400 * time.Millisecond
	go func() {
		defer close(done)
		defer f.Close()
		// Everything up to mid-record lands at once; then the writer
		// stalls for longer than the idle window (but inside the
		// mid-record grace) before finishing the record.
		for _, part := range [][]byte{bin[:cut], bin[cut:]} {
			if _, err := f.Write(part); err != nil {
				t.Error(err)
				return
			}
			if err := f.Sync(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * idle)
		}
	}()

	var out, errb bytes.Buffer
	code := run([]string{"-follow", "-follow-idle", idle.String(), "-model", "serializable", path},
		strings.NewReader(""), &out, &errb)
	<-done
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if out.String() != batch.String() {
		t.Fatalf("follow stdout diverges from batch:\n--- batch ---\n%s\n--- follow ---\n%s",
			batch.String(), out.String())
	}
}

// TestFollowBinaryRotationRegrow is the regression test for the
// truncation guard's blind spot: a rotation whose replacement regrows
// past the reader's consumed offset before any poll observes the shrink
// evades the size check entirely. With ellebin input the framing layer
// catches what the size check cannot — the bytes at the reader's offset
// are not a valid continuation of the stream — and the run fails with
// exit 3 instead of feeding mis-parsed ops to the checker.
func TestFollowBinaryRotationRegrow(t *testing.T) {
	bin := binEncode(t, encodeFaultedListHistory(t, 100))
	other := binEncode(t, encodeFaultedListHistory(t, 300))
	if len(other) <= len(bin) {
		t.Fatal("replacement history must be larger for the regrow scenario")
	}
	path := filepath.Join(t.TempDir(), "history.ellebin")
	if err := os.WriteFile(path, bin, 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Let the follow run consume the whole file, then replace the
		// content in place with a larger history. The file never shrinks
		// — WriteAt from offset 0 only ever grows it — so the size check
		// that catches ordinary truncation sees nothing; the reader's
		// offset now points into the middle of an unrelated stream.
		time.Sleep(400 * time.Millisecond)
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		if _, err := f.WriteAt(other, 0); err != nil {
			t.Error(err)
		}
	}()

	var out, errb bytes.Buffer
	code := run([]string{"-follow", "-follow-idle", "2s", "-model", "serializable", path},
		strings.NewReader(""), &out, &errb)
	<-done
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "framing") {
		t.Errorf("stderr does not name the framing violation:\n%s", errb.String())
	}
}
