package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/report"
	"repro/internal/service"
)

// history generates a faulted list-append history and returns its
// JSON-lines encoding plus the batch report `elle` would print for it.
func history(t *testing.T, seed int64, txns int) (jsonl, batch string) {
	t.Helper()
	h := memdb.Run(memdb.RunConfig{
		Clients: 8, Txns: txns, Isolation: memdb.SnapshotIsolation, Seed: seed,
		Source:   gen.New(gen.Config{Workload: gen.ListAppend, ActiveKeys: 4, MaxWritesPerKey: 30}, seed),
		Workload: memdb.WorkloadList,
		Faults:   memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1},
	})
	var buf bytes.Buffer
	if err := jsonhist.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	report.Prose(&rep, core.Check(h, core.OptsFor(core.ListAppend, "serializable")), report.ProseOpts{})
	return buf.String(), rep.String()
}

// ellectl runs one CLI invocation against the test server and returns
// its stdout; any non-zero exit fails the test unless wantCode is set.
func ellectl(t *testing.T, addr string, stdin string, wantCode int, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(append([]string{"-addr", addr}, args...), strings.NewReader(stdin), &out, &errb)
	if code != wantCode {
		t.Fatalf("ellectl %v: exit %d (want %d)\nstderr: %s", args, code, wantCode, errb.String())
	}
	return out.String()
}

func TestCLILifecycle(t *testing.T) {
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	jsonl, batch := history(t, 11, 150)
	id := strings.TrimSpace(ellectl(t, srv.URL, "", 0,
		"create", "-model", "serializable", "-parallelism", "1"))
	if id == "" {
		t.Fatal("create printed no id")
	}

	fed := ellectl(t, srv.URL, jsonl, 0, "feed", "-job", id, "-lines", "40")
	if !strings.Contains(fed, "chunks") {
		t.Fatalf("feed output: %q", fed)
	}
	status := ellectl(t, srv.URL, "", 0, "status", "-job", id)
	if !strings.Contains(status, `"state": "accepting"`) {
		t.Fatalf("status: %s", status)
	}
	got := ellectl(t, srv.URL, "", 0, "report", "-job", id)
	if got != batch {
		t.Fatalf("CLI report diverges from batch:\n--- cli ---\n%s\n--- batch ---\n%s", got, batch)
	}
	listing := ellectl(t, srv.URL, "", 0, "list", "-state", "done")
	if !strings.Contains(listing, id+" done") {
		t.Fatalf("list: %q", listing)
	}
	ellectl(t, srv.URL, "", 0, "cancel", "-job", id)
	if out := ellectl(t, srv.URL, "", 1, "status", "-job", id); out != "" {
		t.Fatalf("status after cancel wrote stdout: %q", out)
	}
}

// TestCLIResume drives the crash-resume protocol end to end through
// the CLI: feed part of a history, kill the service, restart it on the
// same journal dir, then re-run the same feed with -resume and check
// the report matches batch.
func TestCLIResume(t *testing.T) {
	dir := t.TempDir()
	cfg := service.Config{WALDir: dir}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)

	jsonl, batch := history(t, 12, 150)
	lines := strings.SplitAfter(strings.TrimSuffix(jsonl, "\n"), "\n")
	half := strings.Join(lines[:len(lines)/2], "")

	id := strings.TrimSpace(ellectl(t, srv.URL, "", 0,
		"create", "-model", "serializable", "-parallelism", "1"))
	ellectl(t, srv.URL, half, 0, "feed", "-job", id, "-lines", "25")

	// Crash: drop the server and tear the journal's trailing record, as
	// a kill -9 mid-append would.
	srv.Close()
	svc.Close()
	walPath := filepath.Join(dir, id+".wal")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	srv2 := httptest.NewServer(svc2)
	defer srv2.Close()

	status := ellectl(t, srv2.URL, "", 0, "status", "-job", id)
	if !strings.Contains(status, `"resumed": true`) {
		t.Fatalf("restarted job not resumed: %s", status)
	}
	// Same chunking flags, full input, -resume: only the tail is sent.
	resumed := ellectl(t, srv2.URL, jsonl, 0, "feed", "-job", id, "-lines", "25", "-resume")
	if !strings.Contains(resumed, "resumed: sent") {
		t.Fatalf("resume output: %q", resumed)
	}
	got := ellectl(t, srv2.URL, "", 0, "report", "-job", id)
	if got != batch {
		t.Fatalf("resumed report diverges from batch:\n--- cli ---\n%s\n--- batch ---\n%s", got, batch)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	ellectl(t, srv.URL, "", 2)                                 // no command
	ellectl(t, srv.URL, "", 2, "bogus")                        // unknown command
	ellectl(t, srv.URL, "", 2, "feed")                         // missing -job
	ellectl(t, srv.URL, "", 2, "feed", "-job", "j1", "a", "b") // two files
	ellectl(t, srv.URL, "", 1, "report", "-job", "j999")       // typed 404
}
