// Command ellectl is the command-line client for elled, built on the
// elleclient package: the curl choreography from docs/SERVICE.md as one
// binary. It speaks the v1 API — typed error envelopes, Retry-After
// backoff, and the crash-resume protocol — so shell harnesses get the
// same semantics Go callers do.
//
// Usage:
//
//	ellectl [-addr URL] create [-workload W] [-model M] [-parallelism N] [-memory-budget N]
//	ellectl [-addr URL] feed -job ID [-lines N] [-bytes N] [-binary] [-resume] [FILE]
//	ellectl [-addr URL] status -job ID
//	ellectl [-addr URL] report -job ID [-json]
//	ellectl [-addr URL] query -job ID -q PATTERN
//	ellectl [-addr URL] cancel -job ID
//	ellectl [-addr URL] list [-state S] [-limit N]
//
// create prints the new job id on stdout. feed reads a history from
// FILE (or stdin), splits it into chunks — -lines N JSON lines per
// chunk, or -bytes N bytes per chunk with -binary — and uploads them
// in order; with -resume it first asks the job how many chunks it
// already holds (the journal replay count after an elled restart) and
// re-sends only the difference, so the same invocation works before
// and after a crash as long as the chunking flags match. report prints
// the final report on stdout, byte-identical to `elle` over the same
// history; -json prints the structured result instead. query evaluates
// a docs/QUERY.md pattern against the job's analysis (finalizing it on
// first use, like report) and prints the canonical rows, byte-identical
// to `elle -query PATTERN` over the same history; a malformed pattern
// surfaces the service's bad_query error with the parse position. list
// follows the pagination cursor and prints one `id state` line per job.
//
// Exit status: 0 on success, 1 on a service or transport error, 2 on
// usage errors. Typed service errors print as `ellectl: <message>
// (<code>)` on stderr.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/elleclient"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage: ellectl [-addr URL] <command> [flags]

commands:
  create   create a job, print its id
  feed     upload a history to a job in chunks
  status   print a job's status JSON
  report   print a job's final report
  query    evaluate a pattern query against a job's analysis
  cancel   delete a job and its journal
  list     list jobs, one "id state" line each`)
	return 2
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	global := flag.NewFlagSet("ellectl", flag.ContinueOnError)
	global.SetOutput(stderr)
	addr := global.String("addr", "http://127.0.0.1:8866", "elled base URL")
	if err := global.Parse(args); err != nil {
		return 2
	}
	if global.NArg() == 0 {
		return usage(stderr)
	}
	c := elleclient.New(*addr)
	cmd, rest := global.Arg(0), global.Args()[1:]
	ctx := context.Background()

	var err error
	switch cmd {
	case "create":
		err = runCreate(ctx, c, rest, stdout, stderr)
	case "feed":
		err = runFeed(ctx, c, rest, stdin, stdout, stderr)
	case "status":
		err = runStatus(ctx, c, rest, stdout, stderr)
	case "report":
		err = runReport(ctx, c, rest, stdout, stderr)
	case "query":
		err = runQuery(ctx, c, rest, stdout, stderr)
	case "cancel":
		err = runCancel(ctx, c, rest, stderr)
	case "list":
		err = runList(ctx, c, rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "ellectl: unknown command %q\n", cmd)
		return usage(stderr)
	}
	if err != nil {
		var bad badUsage
		if errors.As(err, &bad) {
			fmt.Fprintf(stderr, "ellectl: %v\n", err)
			return 2
		}
		var api *elleclient.APIError
		if errors.As(err, &api) && api.Code != "" {
			fmt.Fprintf(stderr, "ellectl: %s (%s)\n", api.Message, api.Code)
		} else {
			fmt.Fprintf(stderr, "ellectl: %v\n", err)
		}
		return 1
	}
	return 0
}

// badUsage marks flag/argument mistakes so run can exit 2, not 1.
type badUsage struct{ error }

func runCreate(ctx context.Context, c *elleclient.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ellectl create", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload analyzer (default list-append)")
	model := fs.String("model", "", "consistency model to check (default strict-serializable)")
	par := fs.Int("parallelism", 0, "decode/check workers (default: one per CPU)")
	budget := fs.Int("memory-budget", 0, "bound resident memory to roughly N completions")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return badUsage{fmt.Errorf("create takes flags only")}
	}
	job, err := c.Create(ctx, elleclient.CreateRequest{
		Workload: *workload, Model: *model,
		Parallelism: *par, MemoryBudget: *budget,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, job.ID)
	return nil
}

func runFeed(ctx context.Context, c *elleclient.Client, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ellectl feed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	job := fs.String("job", "", "job id (required)")
	lines := fs.Int("lines", 1000, "JSON lines per chunk")
	byteN := fs.Int("bytes", 1<<20, "bytes per chunk (binary mode)")
	binary := fs.Bool("binary", false, "input is ellebin, not JSON lines")
	resume := fs.Bool("resume", false,
		"skip chunks the job already journaled; chunking flags must match the original upload")
	if err := fs.Parse(args); err != nil {
		return badUsage{err}
	}
	if *job == "" {
		return badUsage{fmt.Errorf("feed requires -job ID")}
	}
	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return badUsage{fmt.Errorf("feed takes at most one input file")}
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}

	var chunks [][]byte
	if *binary {
		if *byteN < 1 {
			return badUsage{fmt.Errorf("-bytes must be positive")}
		}
		for off := 0; off < len(raw); off += *byteN {
			chunks = append(chunks, raw[off:min(off+*byteN, len(raw))])
		}
	} else {
		if *lines < 1 {
			return badUsage{fmt.Errorf("-lines must be positive")}
		}
		all := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
		for off := 0; off < len(all); off += *lines {
			chunk := strings.Join(all[off:min(off+*lines, len(all))], "")
			chunks = append(chunks, []byte(chunk))
		}
	}
	if len(raw) == 0 {
		chunks = nil
	}

	if *resume {
		sent, err := c.Resume(ctx, *job, chunks, *binary)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "resumed: sent %d of %d chunks\n", sent, len(chunks))
		return nil
	}
	var ops int
	for _, chunk := range chunks {
		var d *elleclient.Delta
		var err error
		if *binary {
			d, err = c.FeedBinary(ctx, *job, chunk)
		} else {
			d, err = c.Feed(ctx, *job, chunk)
		}
		if err != nil {
			return err
		}
		ops = d.Ops
	}
	fmt.Fprintf(stdout, "fed %d chunks, %d ops\n", len(chunks), ops)
	return nil
}

func runStatus(ctx context.Context, c *elleclient.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ellectl status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	job := fs.String("job", "", "job id (required)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return badUsage{fmt.Errorf("status takes -job ID")}
	}
	if *job == "" {
		return badUsage{fmt.Errorf("status requires -job ID")}
	}
	raw, err := c.StatusJSON(ctx, *job)
	if err != nil {
		return err
	}
	stdout.Write(append(bytes.TrimRight(raw, "\n"), '\n'))
	return nil
}

func runReport(ctx context.Context, c *elleclient.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ellectl report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	job := fs.String("job", "", "job id (required)")
	asJSON := fs.Bool("json", false, "print the structured result instead of prose")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return badUsage{fmt.Errorf("report takes -job ID [-json]")}
	}
	if *job == "" {
		return badUsage{fmt.Errorf("report requires -job ID")}
	}
	if *asJSON {
		raw, err := c.ReportJSON(ctx, *job)
		if err != nil {
			return err
		}
		stdout.Write(append(bytes.TrimRight(raw, "\n"), '\n'))
		return nil
	}
	rep, err := c.Report(ctx, *job)
	if err != nil {
		return err
	}
	stdout.Write(rep.Text)
	return nil
}

func runQuery(ctx context.Context, c *elleclient.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ellectl query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	job := fs.String("job", "", "job id (required)")
	q := fs.String("q", "", "docs/QUERY.md pattern query (required)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return badUsage{fmt.Errorf("query takes -job ID -q PATTERN")}
	}
	if *job == "" || *q == "" {
		return badUsage{fmt.Errorf("query requires -job ID and -q PATTERN")}
	}
	raw, err := c.Query(ctx, *job, *q)
	if err != nil {
		return err
	}
	stdout.Write(raw)
	return nil
}

func runCancel(ctx context.Context, c *elleclient.Client, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ellectl cancel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	job := fs.String("job", "", "job id (required)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return badUsage{fmt.Errorf("cancel takes -job ID")}
	}
	if *job == "" {
		return badUsage{fmt.Errorf("cancel requires -job ID")}
	}
	return c.Cancel(ctx, *job)
}

func runList(ctx context.Context, c *elleclient.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ellectl list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	state := fs.String("state", "", "filter by state: accepting, done, failed")
	limit := fs.Int("limit", 0, "page size (the cursor is followed either way)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return badUsage{fmt.Errorf("list takes flags only")}
	}
	next := ""
	for {
		jobs, cursor, err := c.List(ctx, elleclient.ListOpts{State: *state, Limit: *limit, Next: next})
		if err != nil {
			return err
		}
		for _, j := range jobs {
			fmt.Fprintf(stdout, "%s %s\n", j.ID, j.State)
		}
		if cursor == "" {
			return nil
		}
		next = cursor
	}
}
