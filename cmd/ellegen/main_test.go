package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/binhist"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/jsonhist"
	"repro/internal/workload"
)

func TestGenerateToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "50", "-clients", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	h, err := jsonhist.Decode(&out, false)
	if err != nil {
		t.Fatalf("output is not a valid history: %v", err)
	}
	if got := len(h.Completions()); got != 50 {
		t.Errorf("completions = %d", got)
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Error("no summary on stderr")
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "20", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("file empty")
	}
	if out.Len() != 0 {
		t.Error("wrote to stdout despite -o")
	}
}

func TestFaultCampaignsAccepted(t *testing.T) {
	for _, f := range []string{"none", "tidb", "yugabyte", "fauna", "dgraph", "retry", "stale", "nilreads", "dup"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-txns", "10", "-faults", f}, &out, &errb); code != 0 {
			t.Errorf("faults=%s: exit %d", f, code)
		}
	}
}

func TestWorkloadsAccepted(t *testing.T) {
	// Every registered workload and the legacy aliases must generate.
	names := append(workload.Names(), "list", "register", "set")
	for _, w := range names {
		var out, errb bytes.Buffer
		if code := run([]string{"-txns", "10", "-workload", w, "-iso", "si"}, &out, &errb); code != 0 {
			t.Errorf("workload=%s: exit %d", w, code)
		}
	}
}

// TestUnknownWorkloadListsRegistry: a bad -workload names every valid
// choice, so the help can never drift from the registered set.
func TestUnknownWorkloadListsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, name := range workload.Names() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("error message missing workload %q:\n%s", name, errb.String())
		}
	}
}

// TestBankRoundTrip is the record/check pipeline end to end for the
// bank workload: ellegen (generator + engine + JSON encode) feeds the
// checker, and a clean serializable run reports no anomalies.
func TestBankRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "400", "-workload", "bank", "-iso", "serializable", "-seed", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("generate failed: %s", errb.String())
	}
	h, err := jsonhist.Decode(&out, true)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(h, core.OptsFor(core.Bank, consistency.Serializable))
	if len(res.Anomalies) != 0 {
		t.Fatalf("clean bank run reported %v\n%s",
			res.AnomalyTypes(), res.Anomalies[0].Explanation)
	}
	if !res.Valid {
		t.Fatal("clean bank run ruled out serializability")
	}
}

// TestFormatBinary: -format binary writes an ellebin stream — tagged by
// the magic byte — that decodes to exactly the history the default JSON
// run encodes.
func TestFormatBinary(t *testing.T) {
	var jsonOut, binOut, errb bytes.Buffer
	if code := run([]string{"-txns", "80", "-seed", "9"}, &jsonOut, &errb); code != 0 {
		t.Fatalf("json run: exit %d: %s", code, errb.String())
	}
	if code := run([]string{"-txns", "80", "-seed", "9", "-format", "binary"}, &binOut, &errb); code != 0 {
		t.Fatalf("binary run: exit %d: %s", code, errb.String())
	}
	if !binhist.IsMagic(binOut.Bytes()) {
		t.Fatal("binary output does not start with the ellebin magic")
	}
	hj, err := jsonhist.Decode(bytes.NewReader(jsonOut.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := binhist.Decode(bytes.NewReader(binOut.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hj.Ops, hb.Ops) {
		t.Fatalf("histories diverge across formats: %d vs %d ops", len(hj.Ops), len(hb.Ops))
	}
}

func TestBadArguments(t *testing.T) {
	cases := [][]string{
		{"-workload", "bogus"},
		{"-iso", "bogus"},
		{"-faults", "bogus"},
		{"-format", "yaml"},
		{"-o", "/nonexistent/dir/x.jsonl", "-txns", "5"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// TestPipelineEndToEnd: ellegen output feeds the checker and the verdict
// matches the injected faults.
func TestPipelineEndToEnd(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "800", "-iso", "si", "-faults", "tidb", "-seed", "7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("generate failed: %s", errb.String())
	}
	h, err := jsonhist.Decode(&out, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.OKs()) == 0 {
		t.Fatal("no committed transactions")
	}
}
