package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jsonhist"
)

func TestGenerateToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "50", "-clients", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	h, err := jsonhist.Decode(&out, false)
	if err != nil {
		t.Fatalf("output is not a valid history: %v", err)
	}
	if got := len(h.Completions()); got != 50 {
		t.Errorf("completions = %d", got)
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Error("no summary on stderr")
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "20", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("file empty")
	}
	if out.Len() != 0 {
		t.Error("wrote to stdout despite -o")
	}
}

func TestFaultCampaignsAccepted(t *testing.T) {
	for _, f := range []string{"none", "tidb", "yugabyte", "fauna", "dgraph", "retry", "stale", "nilreads", "dup"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-txns", "10", "-faults", f}, &out, &errb); code != 0 {
			t.Errorf("faults=%s: exit %d", f, code)
		}
	}
}

func TestWorkloadsAccepted(t *testing.T) {
	for _, w := range []string{"list", "register", "set", "counter"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-txns", "10", "-workload", w, "-iso", "si"}, &out, &errb); code != 0 {
			t.Errorf("workload=%s: exit %d", w, code)
		}
	}
}

func TestBadArguments(t *testing.T) {
	cases := [][]string{
		{"-workload", "bogus"},
		{"-iso", "bogus"},
		{"-faults", "bogus"},
		{"-o", "/nonexistent/dir/x.jsonl", "-txns", "5"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// TestPipelineEndToEnd: ellegen output feeds the checker and the verdict
// matches the injected faults.
func TestPipelineEndToEnd(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-txns", "800", "-iso", "si", "-faults", "tidb", "-seed", "7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("generate failed: %s", errb.String())
	}
	h, err := jsonhist.Decode(&out, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.OKs()) == 0 {
		t.Fatal("no committed transactions")
	}
}
