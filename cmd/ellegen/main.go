// Command ellegen generates a transaction history against the in-memory
// engine and writes it as JSON lines (or, with -format binary, as an
// ellebin stream — see docs/FORMATS.md), ready for `elle` to check. It
// is the recording half of the record/check pipeline: pick an isolation
// level and (optionally) a named fault campaign, and pipe the result
// into the checker.
//
//	ellegen -iso snapshot-isolation -faults tidb -txns 2000 | elle -model snapshot-isolation -
//
// Flags:
//
//	-workload KIND   any registered workload: list-append (default),
//	                 rw-register, set-add, counter, bank, or an alias
//	-iso LEVEL       read-uncommitted, read-committed, snapshot-isolation,
//	                 serializable, strict-serializable (default)
//	-faults NAME     none (default), tidb, yugabyte, fauna, dgraph, retry,
//	                 stale, nilreads, dup
//	-clients N       concurrent client threads (default 10)
//	-txns N          transactions to run (default 1000)
//	-keys N          active keys (default 5)
//	-writes-per-key N  key retirement width (default 100)
//	-abort P         spontaneous abort probability (default 0)
//	-info P          lost-commit-ack probability (default 0)
//	-timestamps      expose engine timestamps in op times
//	-seed N          run seed (default 1)
//	-format FORMAT   output format: json (default) or binary (ellebin)
//	-o FILE          output path (default stdout)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/binhist"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/workload"

	// Populate the workload registry so -workload resolves every
	// built-in analyzer.
	_ "repro/internal/workload/all"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ellegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloadFlag := fs.String("workload", "list",
		"workload: "+workload.NameList()+" (or an alias)")
	iso := fs.String("iso", "strict-serializable", "engine isolation level")
	faults := fs.String("faults", "none", "fault campaign: none, tidb, yugabyte, fauna, dgraph, retry, stale, nilreads, dup")
	clients := fs.Int("clients", 10, "concurrent client threads")
	txns := fs.Int("txns", 1000, "transactions to run")
	keys := fs.Int("keys", 5, "active keys")
	width := fs.Int("writes-per-key", 100, "writes per key before retirement")
	abort := fs.Float64("abort", 0, "spontaneous abort probability")
	infoProb := fs.Float64("info", 0, "lost-commit-ack probability")
	timestamps := fs.Bool("timestamps", false, "expose engine timestamps in op times")
	seed := fs.Int64("seed", 1, "run seed")
	format := fs.String("format", "json", "output format: json or binary (ellebin)")
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var encode func(io.Writer, *history.History) error
	switch *format {
	case "json", "jsonl":
		encode = jsonhist.Encode
	case "binary", "ellebin":
		encode = binhist.Encode
	default:
		fmt.Fprintf(stderr, "ellegen: unknown format %q (json or binary)\n", *format)
		return 2
	}

	info, ok := workload.Lookup(*workloadFlag)
	if !ok {
		fmt.Fprintf(stderr, "ellegen: unknown workload %q; choose from:\n", *workloadFlag)
		for _, name := range workload.Names() {
			fmt.Fprintf(stderr, "  %s\n", name)
		}
		return 2
	}

	var level memdb.Isolation
	switch *iso {
	case "read-uncommitted":
		level = memdb.ReadUncommitted
	case "read-committed":
		level = memdb.ReadCommitted
	case "snapshot-isolation", "si":
		level = memdb.SnapshotIsolation
	case "serializable":
		level = memdb.Serializable
	case "strict-serializable":
		level = memdb.StrictSerializable
	default:
		fmt.Fprintf(stderr, "ellegen: unknown isolation %q\n", *iso)
		return 2
	}

	var f memdb.Faults
	switch *faults {
	case "none", "":
	case "tidb", "retry":
		f = memdb.Faults{RetryStompProb: 0.4, RetryRebaseProb: 1}
	case "yugabyte":
		f = memdb.Faults{SkipReadValidationProb: 0.3}
	case "fauna":
		f = memdb.Faults{SkipOwnWriteProb: 0.1}
	case "dgraph", "nilreads":
		f = memdb.Faults{NilReadProb: 0.08}
	case "stale":
		f = memdb.Faults{StaleReadProb: 0.3}
	case "dup":
		f = memdb.Faults{DuplicateAppendProb: 0.1}
	default:
		fmt.Fprintf(stderr, "ellegen: unknown fault campaign %q\n", *faults)
		return 2
	}

	g := gen.New(gen.Config{
		Workload: info.Gen, ActiveKeys: *keys, MaxWritesPerKey: *width,
	}, *seed)
	h := memdb.Run(memdb.RunConfig{
		Clients: *clients, Txns: *txns, Isolation: level, Faults: f,
		Source: g, Seed: *seed, Workload: info.DB,
		AbortProb: *abort, InfoProb: *infoProb, ExposeTimestamps: *timestamps,
	})

	w := stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "ellegen: %v\n", err)
			return 2
		}
		defer file.Close()
		w = file
	}
	if err := encode(w, h); err != nil {
		fmt.Fprintf(stderr, "ellegen: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "ellegen: wrote %d ops (%d transactions, %s, %s, faults=%s)\n",
		h.Len(), *txns, info.Name, level, *faults)
	return 0
}
