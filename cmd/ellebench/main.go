// Command ellebench runs the checker's stable benchmark suite and
// emits a machine-readable BENCH_*.json (schema elle-bench/v1): ns/op,
// allocs/op, B/op, and MB/s per benchmark plus host metadata. The CI
// perf-regression gate runs it with -baseline against the committed
// BENCH_*.json and fails on >20% ns/op or allocs/op regressions; the
// README bench table is refreshed from the same artifact.
//
// Usage:
//
//	ellebench [-runs N] [-bench substr] [-out BENCH.json]
//	          [-baseline BENCH_4.json] [-threshold 0.20] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	runs := flag.Int("runs", 3, "times to run each benchmark (the fastest run is kept)")
	match := flag.String("bench", "", "run only benchmarks whose name contains this substring")
	out := flag.String("out", "", "write the JSON result to this file (default stdout)")
	baseline := flag.String("baseline", "", "compare against this committed BENCH_*.json and fail on regression")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional growth in ns/op or allocs/op before failing")
	list := flag.Bool("list", false, "list benchmark names and exit")
	flag.Parse()

	cases := bench.Cases()
	if *match != "" {
		var kept []bench.Case
		for _, c := range cases {
			if strings.Contains(c.Name, *match) {
				kept = append(kept, c)
			}
		}
		cases = kept
	}
	if *list {
		for _, c := range cases {
			fmt.Println(c.Name)
		}
		return
	}
	if len(cases) == 0 {
		fmt.Fprintln(os.Stderr, "ellebench: no benchmarks match")
		os.Exit(2)
	}
	if *runs < 1 {
		*runs = 1
	}

	res := bench.Run(cases, *runs, os.Stderr)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := res.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	} else if err := res.Encode(os.Stdout); err != nil {
		fatal(err)
	}

	if *baseline == "" {
		return
	}
	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := bench.DecodeResult(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr)
	fmt.Fprint(os.Stderr, bench.Table(base, res))
	regs, missing := bench.Compare(base, res, *threshold)
	for _, m := range missing {
		fmt.Fprintln(os.Stderr, "ellebench: note:", m)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "ellebench: REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ellebench: no regression beyond %.0f%% against %s\n",
		*threshold*100, *baseline)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ellebench:", err)
	os.Exit(1)
}
