package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSmallSweep(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-lengths", "100,200",
		"-concurrencies", "1,2",
		"-cap", "2s",
		"-baseline-max-ops", "100",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header + (2 lengths × 2 concurrencies elle) + (1 length × 2 knossos).
	if len(lines) != 1+4+2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "checker,ops,concurrency") {
		t.Errorf("header = %q", lines[0])
	}
	elle, knossos := 0, 0
	for _, l := range lines[1:] {
		switch {
		case strings.HasPrefix(l, "elle,"):
			elle++
		case strings.HasPrefix(l, "knossos,"):
			knossos++
		default:
			t.Errorf("unexpected row %q", l)
		}
	}
	if elle != 4 || knossos != 2 {
		t.Errorf("elle=%d knossos=%d", elle, knossos)
	}
	// Progress goes to stderr.
	if !strings.Contains(errb.String(), "done:") {
		t.Error("no progress on stderr")
	}
}

func TestNoBaselineFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-lengths", "100", "-concurrencies", "1", "-no-baseline",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out.String(), "knossos") {
		t.Error("baseline ran despite -no-baseline")
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-lengths", "abc"},
		{"-lengths", "-5"},
		{"-concurrencies", ""},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Error("zero accepted")
	}
}
