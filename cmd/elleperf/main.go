// Command elleperf regenerates the paper's Figure 4: runtime versus
// history length for Elle and the Knossos-style baseline, across client
// concurrencies. It prints CSV (checker,ops,concurrency,seconds,outcome,
// anomalies) suitable for plotting, with progress on stderr.
//
// Usage:
//
//	elleperf [flags] > figure4.csv
//
// Flags:
//
//	-lengths 1000,2000,...    history lengths to sweep
//	-concurrencies 1,5,...    client counts to sweep
//	-cap 10s                  baseline search cap (paper: 100s)
//	-baseline-max-ops N       skip baseline beyond N ops (0 = no skip)
//	-seed N                   workload seed
//	-parallelism N            Elle worker count (0 = one per CPU,
//	                          1 = sequential)
//	-workload KIND            any registered workload (default
//	                          list-append; baseline runs only for
//	                          list-append)
//	-no-baseline              measure Elle only
//	-no-elle                  measure the baseline only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/perf"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elleperf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lengths := fs.String("lengths", "1000,2000,5000,10000,20000,50000,100000",
		"comma-separated history lengths")
	concs := fs.String("concurrencies", "1,5,10,20,40,100",
		"comma-separated client counts")
	cap_ := fs.Duration("cap", 10*time.Second, "baseline search cap")
	maxOps := fs.Int("baseline-max-ops", 5000, "skip baseline beyond this many ops (0 = never skip)")
	seed := fs.Int64("seed", 1, "workload seed")
	parallelism := fs.Int("parallelism", 0,
		"Elle worker count per check (0 = one per CPU, 1 = sequential)")
	workloadFlag := fs.String("workload", "list",
		"workload: "+workload.NameList()+" (or an alias)")
	noBaseline := fs.Bool("no-baseline", false, "measure Elle only")
	noElle := fs.Bool("no-elle", false, "measure the baseline only")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	info, ok := workload.Lookup(*workloadFlag)
	if !ok {
		fmt.Fprintf(stderr, "elleperf: unknown workload %q; choose from:\n", *workloadFlag)
		for _, name := range workload.Names() {
			fmt.Fprintf(stderr, "  %s\n", name)
		}
		return 2
	}

	ls, err := parseInts(*lengths)
	if err != nil {
		fmt.Fprintf(stderr, "elleperf: -lengths: %v\n", err)
		return 2
	}
	cs, err := parseInts(*concs)
	if err != nil {
		fmt.Fprintf(stderr, "elleperf: -concurrencies: %v\n", err)
		return 2
	}

	cfg := perf.Config{
		Lengths:        ls,
		Concurrencies:  cs,
		BaselineCap:    *cap_,
		BaselineMaxOps: *maxOps,
		Seed:           *seed,
		Elle:           !*noElle,
		Baseline:       !*noBaseline,
		Parallelism:    *parallelism,
		Workload:       string(info.Name),
	}
	fmt.Fprintln(stdout, "checker,ops,concurrency,seconds,outcome,anomalies,workload")
	perf.Sweep(cfg, func(p perf.Point) {
		fmt.Fprintf(stdout, "%s,%d,%d,%.6f,%s,%d,%s\n",
			p.Checker, p.Ops, p.Concurrency, p.Seconds, p.Outcome, p.Anomalies, p.Workload)
		fmt.Fprintf(stderr, "done: %s n=%d c=%d in %.3fs (%s)\n",
			p.Checker, p.Ops, p.Concurrency, p.Seconds, p.Outcome)
	})
	return 0
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("values must be positive, got %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return out, nil
}
