package anomaly

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/op"
)

func TestSeverityBuckets(t *testing.T) {
	cycles := []Type{G0, G1c, GSingle, G2Item, G0Realtime, GSingleProcess}
	for _, typ := range cycles {
		if typ.Severity() != SevCycle || !typ.IsCycle() {
			t.Errorf("%s should be a cycle anomaly", typ)
		}
	}
	dirty := []Type{G1a, G1b, DirtyUpdate, LostUpdate, IncompatibleOrder}
	for _, typ := range dirty {
		if typ.Severity() != SevDirty || typ.IsCycle() {
			t.Errorf("%s should be a dirty anomaly", typ)
		}
	}
	structural := []Type{GarbageRead, DuplicateElements, DuplicateAppends, Internal, CyclicVersionOrder}
	for _, typ := range structural {
		if typ.Severity() != SevStructural {
			t.Errorf("%s should be structural", typ)
		}
	}
}

func mkCycle(kinds ...graph.Kind) graph.Cycle {
	var steps []graph.Step
	for i, k := range kinds {
		steps = append(steps, graph.Step{From: i, To: (i + 1) % len(kinds), Via: k})
	}
	return graph.Cycle{Steps: steps}
}

func TestCycleTypeClassification(t *testing.T) {
	cases := []struct {
		kinds []graph.Kind
		want  Type
	}{
		{[]graph.Kind{graph.WW, graph.WW}, G0},
		{[]graph.Kind{graph.WW, graph.WR}, G1c},
		{[]graph.Kind{graph.WR, graph.WR}, G1c},
		{[]graph.Kind{graph.RW, graph.WW}, GSingle},
		{[]graph.Kind{graph.RW, graph.WR, graph.WW}, GSingle},
		{[]graph.Kind{graph.RW, graph.RW}, G2Item},
		{[]graph.Kind{graph.WW, graph.WW, graph.Process}, G0Process},
		{[]graph.Kind{graph.WR, graph.Process}, G1cProcess},
		{[]graph.Kind{graph.RW, graph.Process}, GSingleProcess},
		{[]graph.Kind{graph.RW, graph.RW, graph.Process}, G2ItemProcess},
		{[]graph.Kind{graph.WW, graph.Realtime}, G0Realtime},
		{[]graph.Kind{graph.WR, graph.Realtime}, G1cRealtime},
		{[]graph.Kind{graph.RW, graph.Realtime}, GSingleRealtime},
		{[]graph.Kind{graph.RW, graph.RW, graph.Realtime}, G2ItemRealtime},
		// Realtime dominates process in the variant name.
		{[]graph.Kind{graph.RW, graph.Process, graph.Realtime}, GSingleRealtime},
		// Timestamp variants, dominated by realtime but dominating process.
		{[]graph.Kind{graph.WW, graph.Timestamp}, G0Timestamp},
		{[]graph.Kind{graph.RW, graph.Timestamp}, GSingleTimestamp},
		{[]graph.Kind{graph.RW, graph.RW, graph.Timestamp}, G2ItemTimestamp},
		{[]graph.Kind{graph.WR, graph.Timestamp, graph.Process}, G1cTimestamp},
		{[]graph.Kind{graph.RW, graph.Timestamp, graph.Realtime}, GSingleRealtime},
	}
	for _, c := range cases {
		if got := CycleType(mkCycle(c.kinds...)); got != c.want {
			t.Errorf("CycleType(%v) = %s, want %s", c.kinds, got, c.want)
		}
	}
}

func TestAnomalyString(t *testing.T) {
	a := Anomaly{
		Type: G1a,
		Key:  "x",
		Ops: []op.Op{
			op.Txn(3, 0, op.OK, op.ReadList("x", []int{1})),
			op.Txn(1, 1, op.Fail, op.Append("x", 1)),
		},
	}
	s := a.String()
	for _, want := range []string{"G1a", "key x", "T3", "T1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %q", want, s)
		}
	}

	c := Anomaly{Type: GSingle, Cycle: mkCycle(graph.RW, graph.WW)}
	if !strings.Contains(c.String(), "-rw->") {
		t.Errorf("cycle anomaly string = %q", c.String())
	}
}
