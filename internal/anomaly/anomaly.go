// Package anomaly defines the catalogue of isolation anomalies Elle
// reports: Adya's G0/G1/G2 cycle phenomena, the non-cycle phenomena
// (aborted read, intermediate read, dirty update), and the additional
// real-world phenomena of §6.1 (garbage reads, duplicate writes, internal
// inconsistency), plus cyclic-version-order reports from the register
// analyzer (§7.4).
//
// docs/ANOMALIES.md is the human-readable index of this catalogue: every
// code with its paper definition, its position in the consistency
// lattice, and whether the streaming checker can surface it mid-stream.
package anomaly

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/op"
)

// Type names one anomaly family.
type Type string

// Cycle anomalies (§6). The -process and -realtime variants are cycles
// that require session or real-time edges to close, witnessing violations
// of strong-session and strict models respectively.
const (
	// G0 is a cycle comprised entirely of write-write edges
	// (write cycle / dirty write).
	G0 Type = "G0"
	// G1c is a cycle comprised of write-write and write-read edges
	// (circular information flow).
	G1c Type = "G1c"
	// GSingle is a cycle with exactly one read-write edge (read skew).
	GSingle Type = "G-single"
	// G2Item is a cycle with one or more read-write edges (write skew
	// and friends), over individual items.
	G2Item Type = "G2-item"

	G0Process      Type = "G0-process"
	G1cProcess     Type = "G1c-process"
	GSingleProcess Type = "G-single-process"
	G2ItemProcess  Type = "G2-item-process"

	G0Realtime      Type = "G0-realtime"
	G1cRealtime     Type = "G1c-realtime"
	GSingleRealtime Type = "G-single-realtime"
	G2ItemRealtime  Type = "G2-item-realtime"

	// -timestamp variants close their cycles through the database's own
	// exposed transaction timestamps (§5.1): the DB's claimed ordering
	// contradicts the observed reads, refuting snapshot isolation as the
	// database itself defines it.
	G0Timestamp      Type = "G0-timestamp"
	G1cTimestamp     Type = "G1c-timestamp"
	GSingleTimestamp Type = "G-single-timestamp"
	G2ItemTimestamp  Type = "G2-item-timestamp"
)

// Non-cycle anomalies (§4.3.1) and the additional phenomena of §6.1.
const (
	// G1a is an aborted read: a committed transaction read a version
	// written by an aborted transaction.
	G1a Type = "G1a"
	// G1b is an intermediate read: a committed transaction read a version
	// from the middle of another transaction.
	G1b Type = "G1b"
	// DirtyUpdate is a committed write acting on an uncommitted version:
	// information leaked from an aborted transaction into committed state.
	DirtyUpdate Type = "dirty-update"
	// LostUpdate is a committed write that vanished from the version
	// history observed by later reads.
	LostUpdate Type = "lost-update"
	// GarbageRead is a read observing a value that was never written.
	GarbageRead Type = "garbage-read"
	// DuplicateElements is a read whose value contains the same element
	// more than once: some write was applied twice.
	DuplicateElements Type = "duplicate-elements"
	// DuplicateAppends is a pair of writes of the same unique argument to
	// the same key, which destroys recoverability.
	DuplicateAppends Type = "duplicate-appends"
	// Internal is an internal inconsistency: a transaction read a value
	// incompatible with its own prior reads and writes.
	Internal Type = "internal"
	// IncompatibleOrder is an inconsistent observation: two committed
	// reads of the same object disagree about its version history
	// (neither is a prefix of the other), implying an aborted read in
	// every interpretation.
	IncompatibleOrder Type = "incompatible-order"
	// CyclicVersionOrder is a cycle in the inferred version order of a
	// single object, reported and discarded by the register analyzer so
	// it cannot seed trivial transaction cycles.
	CyclicVersionOrder Type = "cyclic-version-order"
	// NegativeBalance is a bank-workload invariant violation: a
	// transaction observed or installed an account balance below zero,
	// which no serial order of funded transfers can produce.
	NegativeBalance Type = "negative-balance"
	// TotalMismatch is a bank-workload invariant violation: a
	// transaction read every account in one transaction and the
	// balances did not sum to the invariant total, so the read was not
	// a consistent snapshot of any serial transfer order.
	TotalMismatch Type = "total-mismatch"
	// KAtomicViolation is a real-time atomicity violation on a
	// single-object register (katomic workload): no linearization of the
	// observed invocation/completion intervals serves every read one of
	// the k freshest values, for any k below the reported minimum
	// (Golab, Hurwitz & Li's zone-based test). The anomaly's K field
	// carries the certified minimal k.
	KAtomicViolation Type = "k-atomicity-violation"
)

// Class is an alias for Type used where anomaly families are named as
// expectation classes — the nemesis campaign tables declare what a
// planted fault must (and must not) produce in terms of Classes.
type Class = Type

// Severity buckets anomalies the way §4.3.2 discusses them: phenomena like
// aborted reads are informally "worse" than dependency cycles, and
// structural problems (garbage, duplicates) are worse still because they
// undermine the analysis itself.
type Severity int

const (
	// SevCycle marks dependency-cycle anomalies.
	SevCycle Severity = iota
	// SevDirty marks non-cycle isolation anomalies (aborted reads,
	// intermediate reads, dirty updates, lost updates).
	SevDirty
	// SevStructural marks observations no clean interpretation can
	// explain at all: garbage reads, duplicates, internal inconsistency.
	SevStructural
)

// Severity returns the severity bucket for t.
func (t Type) Severity() Severity {
	switch t {
	case G1a, G1b, DirtyUpdate, LostUpdate, IncompatibleOrder,
		NegativeBalance, TotalMismatch, KAtomicViolation:
		return SevDirty
	case GarbageRead, DuplicateElements, DuplicateAppends, Internal, CyclicVersionOrder:
		return SevStructural
	default:
		return SevCycle
	}
}

// IsCycle reports whether t is witnessed by a dependency cycle.
func (t Type) IsCycle() bool { return t.Severity() == SevCycle }

// CycleType classifies a cycle per §6, given which edge kinds were allowed
// in the search: a cycle of only ww edges is G0; adding wr makes it G1c;
// exactly one rw makes it G-single; more rw edges make it G2-item. If the
// cycle needed process or realtime edges to close, the variant reflects
// the strongest extra order used.
func CycleType(c graph.Cycle) Type {
	rw, wr, ww, process, realtime, ts := 0, 0, 0, 0, 0, 0
	for _, s := range c.Steps {
		switch s.Via {
		case graph.RW:
			rw++
		case graph.WR:
			wr++
		case graph.WW:
			ww++
		case graph.Process:
			process++
		case graph.Realtime:
			realtime++
		case graph.Timestamp:
			ts++
		}
	}
	var base Type
	switch {
	case rw == 1:
		base = GSingle
	case rw > 1:
		base = G2Item
	case wr > 0:
		base = G1c
	default:
		base = G0
	}
	switch {
	case realtime > 0:
		return base + "-realtime"
	case ts > 0:
		return base + "-timestamp"
	case process > 0:
		return base + "-process"
	default:
		return base
	}
}

// Anomaly is one detected phenomenon, with enough structure for both
// programmatic use and a human-readable report.
type Anomaly struct {
	Type Type
	// Cycle is the witness for cycle anomalies.
	Cycle graph.Cycle
	// Ops are the transactions involved, for non-cycle anomalies.
	Ops []op.Op
	// Key is the object involved, when the anomaly is key-local.
	Key string
	// K is the certified minimal k of a k-atomicity violation (the
	// history is k-atomic at K but provably not atomic); 0 for every
	// other anomaly type.
	K int
	// Explanation is the human-readable justification, in the style of
	// the paper's Figure 2.
	Explanation string
}

// String renders a one-line summary.
func (a Anomaly) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", a.Type)
	if a.Key != "" {
		fmt.Fprintf(&b, " on key %s", a.Key)
	}
	if len(a.Cycle.Steps) > 0 {
		fmt.Fprintf(&b, ": %s", a.Cycle.String())
	} else if len(a.Ops) > 0 {
		names := make([]string, len(a.Ops))
		for i, o := range a.Ops {
			names[i] = o.Name()
		}
		fmt.Fprintf(&b, ": %s", strings.Join(names, ", "))
	}
	return b.String()
}

// AppendGroups appends every group to dst in order: the ordered-collect
// step shared by the analyzers' parallel check phases (results arrive in
// index-addressed groups; concatenation order carries the report order).
func AppendGroups(dst []Anomaly, groups [][]Anomaly) []Anomaly {
	for _, g := range groups {
		dst = append(dst, g...)
	}
	return dst
}
