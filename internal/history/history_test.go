package history

import (
	"math/rand"
	"testing"

	"repro/internal/op"
)

func TestCompactHistory(t *testing.T) {
	h := MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.Fail, op.Append("x", 2)),
		op.Txn(2, 0, op.Info, op.Append("x", 3)),
	})
	if !h.Compact() {
		t.Error("history with no invokes should be compact")
	}
	if got := len(h.Completions()); got != 3 {
		t.Errorf("Completions() = %d ops", got)
	}
	if got := len(h.OKs()); got != 1 {
		t.Errorf("OKs() = %d ops", got)
	}
	inv, comp := h.Span(1)
	if inv != 1 || comp != 1 {
		t.Errorf("compact Span = (%d, %d)", inv, comp)
	}
	if h.MaxIndex() != 2 {
		t.Errorf("MaxIndex = %d", h.MaxIndex())
	}
}

func TestCompleteHistoryPairing(t *testing.T) {
	mops := []op.Mop{op.Append("x", 1)}
	h := MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke, Mops: mops},
		{Index: 1, Process: 1, Type: op.Invoke, Mops: mops[:0]},
		{Index: 2, Process: 0, Type: op.OK, Mops: mops},
		{Index: 3, Process: 1, Type: op.Info, Mops: nil},
	})
	if h.Compact() {
		t.Error("history with invokes should not be compact")
	}
	// Position 2 is process 0's OK; its invoke is index 0.
	inv, comp := h.Span(2)
	if inv != 0 || comp != 2 {
		t.Errorf("Span(2) = (%d, %d), want (0, 2)", inv, comp)
	}
	inv, comp = h.Span(3)
	if inv != 1 || comp != 3 {
		t.Errorf("Span(3) = (%d, %d), want (1, 3)", inv, comp)
	}
	if got := len(h.Completions()); got != 2 {
		t.Errorf("Completions() = %d", got)
	}
}

func TestDoubleInvokeRejected(t *testing.T) {
	_, err := New([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 0, Type: op.Invoke},
	})
	if err == nil {
		t.Fatal("expected error for double invoke")
	}
}

func TestOrphanCompletionRejected(t *testing.T) {
	_, err := New([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 1, Type: op.OK},
	})
	if err == nil {
		t.Fatal("expected error for completion with no invocation")
	}
}

func TestDuplicateIndexRejected(t *testing.T) {
	_, err := New([]op.Op{
		op.Txn(7, 0, op.OK),
		op.Txn(7, 1, op.OK),
	})
	if err == nil {
		t.Fatal("expected error for duplicate index")
	}
}

func TestUnpairedTailTolerated(t *testing.T) {
	// A crashed client may leave a dangling invoke at the end of the
	// history; that is tolerated.
	h, err := New([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 1, Type: op.Invoke},
		{Index: 2, Process: 0, Type: op.OK},
	})
	if err != nil {
		t.Fatalf("dangling invoke rejected: %v", err)
	}
	if got := len(h.Completions()); got != 1 {
		t.Errorf("Completions() = %d", got)
	}
}

func TestSortsOutOfOrderInput(t *testing.T) {
	h := MustNew([]op.Op{
		op.Txn(2, 0, op.OK),
		op.Txn(0, 1, op.OK),
		op.Txn(1, 2, op.OK),
	})
	for i, o := range h.Ops {
		if o.Index != i {
			t.Errorf("Ops[%d].Index = %d", i, o.Index)
		}
	}
}

func TestByProcess(t *testing.T) {
	h := MustNew([]op.Op{
		op.Txn(0, 0, op.OK),
		op.Txn(1, 1, op.OK),
		op.Txn(2, 0, op.Fail),
		op.Txn(3, 0, op.OK),
	})
	by := h.ByProcess()
	if len(by[0]) != 3 || len(by[1]) != 1 {
		t.Errorf("ByProcess sizes: %d, %d", len(by[0]), len(by[1]))
	}
	if by[0][2].Index != 3 {
		t.Error("per-process order should follow index order")
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder()
	mops := []op.Mop{op.Append("x", 1)}
	i0 := b.Invoke(5, mops)
	i1 := b.Complete(5, op.OK, mops)
	if i0 != 0 || i1 != 1 {
		t.Errorf("builder indices = %d, %d", i0, i1)
	}
	h := b.MustHistory()
	if h.Compact() {
		t.Error("builder history with invoke should be complete")
	}
	inv, comp := h.Span(1)
	if inv != 0 || comp != 1 {
		t.Errorf("Span = (%d, %d)", inv, comp)
	}
	if h.Ops[0].Time != 0 || h.Ops[1].Time != 1 {
		t.Errorf("builder times = %d, %d", h.Ops[0].Time, h.Ops[1].Time)
	}
}

func TestEmptyHistory(t *testing.T) {
	h := MustNew(nil)
	if h.Len() != 0 || h.MaxIndex() != -1 {
		t.Errorf("empty history: len=%d max=%d", h.Len(), h.MaxIndex())
	}
	if got := h.Completions(); len(got) != 0 {
		t.Errorf("Completions on empty = %v", got)
	}
}

// TestRandomWellFormedHistories drives the builder with random
// interleavings of p processes and verifies pairing invariants hold.
func TestRandomWellFormedHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		const procs = 5
		outstanding := map[int]bool{}
		for step := 0; step < 200; step++ {
			p := rng.Intn(procs)
			if outstanding[p] {
				types := []op.Type{op.OK, op.Fail, op.Info}
				b.Complete(p, types[rng.Intn(3)], nil)
				outstanding[p] = false
			} else {
				b.Invoke(p, nil)
				outstanding[p] = true
			}
		}
		h, err := b.History()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for pos, o := range h.Ops {
			if o.Type == op.Invoke {
				continue
			}
			inv, comp := h.Span(pos)
			if inv > comp {
				t.Fatalf("trial %d: invoke %d after completion %d", trial, inv, comp)
			}
			if h.Ops[inv].Type != op.Invoke && inv != comp {
				t.Fatalf("trial %d: span start %d is not an invoke", trial, inv)
			}
		}
	}
}
