package history

import (
	"sort"
	"testing"

	"repro/internal/op"
)

// opsFromBytes deterministically derives an op sequence from fuzz
// input: each 3-byte group becomes one op whose completion type,
// process, index spacing, and body are driven by the bytes. Index
// deltas of zero produce duplicate indices, odd process/type mixes
// produce pairing violations — exactly the error paths New and Stream
// must agree on.
func opsFromBytes(data []byte) []op.Op {
	var ops []op.Op
	index := 0
	elem := 0
	for i := 0; i+2 < len(data); i += 3 {
		t := op.Type(data[i] & 3)
		process := int(data[i] >> 2 & 3)
		index += int(data[i+1] & 3) // 0 keeps the previous index: a duplicate
		var mops []op.Mop
		switch data[i+2] & 3 {
		case 0:
			elem++
			mops = []op.Mop{op.Append("x", elem)}
		case 1:
			mops = []op.Mop{op.Read("y")}
		case 2:
			elem++
			mops = []op.Mop{op.Append("y", elem), op.Read("x")}
		}
		ops = append(ops, op.Op{Index: index, Process: process, Type: t, Mops: mops})
	}
	return ops
}

// FuzzHistoryNew: New must never panic, and Stream fed the same ops in
// sorted order must agree with it — same acceptance, same error, and
// the same validated history. This is the batch/stream parity contract
// the incremental checker rests on.
func FuzzHistoryNew(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 1, 1, 2, 1, 2})          // ok/ok/fail compact
	f.Add([]byte{0, 0, 0})                            // duplicate index
	f.Add([]byte{4, 1, 0, 1, 1, 1})                   // invoke then ok
	f.Add([]byte{1, 1, 0, 4, 1, 1, 1, 1, 2})          // completion before invoke
	f.Add([]byte{4, 1, 0, 4, 1, 1})                   // double invoke, one process
	f.Add([]byte{0, 1, 1, 4, 1, 0, 1, 1, 1, 2, 1, 2}) // compact turning complete

	f.Fuzz(func(t *testing.T, data []byte) {
		ops := opsFromBytes(data)
		h, err := New(ops)

		sorted := make([]op.Op, len(ops))
		copy(sorted, ops)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
		s := NewStream()
		var serr error
		for _, o := range sorted {
			if serr = s.Add(o); serr != nil {
				break
			}
		}

		if (err == nil) != (serr == nil) {
			t.Fatalf("parity broken: New err=%v, Stream err=%v", err, serr)
		}
		if err != nil {
			// Both reject. The messages may legitimately differ: New
			// validates in passes (all duplicate indices first), while a
			// stream must reject at the first offending op it sees.
			return
		}
		sh := s.History()
		if h.Len() != sh.Len() || h.Compact() != sh.Compact() {
			t.Fatalf("shape diverged: New len=%d compact=%v, Stream len=%d compact=%v",
				h.Len(), h.Compact(), sh.Len(), sh.Compact())
		}
		for pos := range h.Ops {
			if h.Ops[pos].Index != sh.Ops[pos].Index {
				t.Fatalf("op order diverged at position %d", pos)
			}
			hi, hc := h.Span(pos)
			si, sc := sh.Span(pos)
			if hi != si || hc != sc {
				t.Fatalf("span diverged at position %d: New [%d,%d], Stream [%d,%d]",
					pos, hi, hc, si, sc)
			}
		}
		// The interners must assign identical IDs: analyzers index
		// KeyID-keyed state interchangeably across batch and stream.
		if h.Keys().Len() != sh.Keys().Len() {
			t.Fatalf("interner diverged: %d vs %d keys", h.Keys().Len(), sh.Keys().Len())
		}
		for id := 0; id < h.Keys().Len(); id++ {
			if h.Keys().Key(KeyID(id)) != sh.Keys().Key(KeyID(id)) {
				t.Fatalf("key id %d diverged: %q vs %q",
					id, h.Keys().Key(KeyID(id)), sh.Keys().Key(KeyID(id)))
			}
		}
	})
}
