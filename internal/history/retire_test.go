package history_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/binhist"
	"repro/internal/history"
	"repro/internal/op"
)

// budget returns a retirement budget over the production codec.
func budget(window int, spillDir string) history.Budget {
	return history.Budget{Window: window, Codec: binhist.Segments{}, SpillDir: spillDir}
}

// compactOps builds n committed single-mop ops over rotating keys.
func compactOps(n int) []op.Op {
	out := make([]op.Op, n)
	for i := range out {
		key := fmt.Sprintf("k%d", i/10)
		out[i] = op.Op{Index: i, Process: i % 3, Time: int64(i), Type: op.OK,
			Mops: []op.Mop{{F: op.FAppend, Key: key, Arg: i}}}
	}
	return out
}

// pairedOps builds a complete (invoke/completion interleaved) history
// across nproc processes, staggering spans so some cross each other.
func pairedOps(nTxns, nproc int) []op.Op {
	var out []op.Op
	idx := 0
	add := func(p int, t op.Type, mops []op.Mop) {
		out = append(out, op.Op{Index: idx, Process: p, Time: int64(idx), Type: t, Mops: mops})
		idx++
	}
	for i := 0; i < nTxns; i += nproc {
		// Invoke a wave across every process, then complete them in
		// reverse so spans straddle each other.
		n := nproc
		if i+n > nTxns {
			n = nTxns - i
		}
		for p := 0; p < n; p++ {
			add(p, op.Invoke, []op.Mop{{F: op.FAppend, Key: fmt.Sprintf("k%d", (i+p)/8), Arg: i + p}})
		}
		for p := n - 1; p >= 0; p-- {
			add(p, op.OK, []op.Mop{{F: op.FAppend, Key: fmt.Sprintf("k%d", (i+p)/8), Arg: i + p}})
		}
	}
	return out
}

// mustEqualHistories asserts the budgeted stream rehydrates to exactly
// what New builds from the same ops: same op sequence, spans, views.
func mustEqualHistories(t *testing.T, got *history.History, ops []op.Op) {
	t.Helper()
	want := history.MustNew(ops)
	if !reflect.DeepEqual(got.Ops, want.Ops) {
		t.Fatalf("rehydrated ops differ: got %d ops, want %d", len(got.Ops), len(want.Ops))
	}
	if got.Compact() != want.Compact() {
		t.Fatalf("compact = %v, want %v", got.Compact(), want.Compact())
	}
	for pos := range want.Ops {
		gi, gc := got.Span(pos)
		wi, wc := want.Span(pos)
		if gi != wi || gc != wc {
			t.Fatalf("span(%d) = [%d %d], want [%d %d]", pos, gi, gc, wi, wc)
		}
	}
	if !reflect.DeepEqual(got.Completions(), want.Completions()) {
		t.Fatalf("completions differ")
	}
}

func TestStreamRetireRehydratesCompact(t *testing.T) {
	ops := compactOps(200)
	s := history.NewStream()
	s.SetBudget(budget(8, ""))
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	st := s.RetireStats()
	if st.RetiredOps == 0 || st.Segments == 0 {
		t.Fatalf("expected retirement at window 8 over 200 ops; stats %+v", st)
	}
	if st.ResidentOps+st.RetiredOps != len(ops) {
		t.Fatalf("resident %d + retired %d != %d", st.ResidentOps, st.RetiredOps, len(ops))
	}
	if st.ResidentOps > 3*8 {
		t.Fatalf("resident ops %d exceeds ~2x window", st.ResidentOps)
	}
	if s.Len() != len(ops) {
		t.Fatalf("Len() = %d, want %d", s.Len(), len(ops))
	}
	mustEqualHistories(t, s.History(), ops)
	// History is cached: a second call returns the same rehydration.
	if s.History() != s.History() {
		t.Fatal("rehydrated history not cached")
	}
}

func TestStreamRetireRehydratesPaired(t *testing.T) {
	ops := pairedOps(120, 5)
	s := history.NewStream()
	s.SetBudget(budget(6, ""))
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	if s.RetireStats().RetiredOps == 0 {
		t.Fatal("expected retirement")
	}
	mustEqualHistories(t, s.History(), ops)
}

func TestStreamRetirePinsOpenSpans(t *testing.T) {
	// Process 9 invokes once at the very start and never completes
	// until the end: nothing past its invoke may retire.
	var ops []op.Op
	idx := 0
	add := func(p int, ty op.Type, arg int) {
		ops = append(ops, op.Op{Index: idx, Process: p, Type: ty,
			Mops: []op.Mop{{F: op.FAppend, Key: "k", Arg: arg}}})
		idx++
	}
	add(9, op.Invoke, 999)
	for i := 0; i < 100; i++ {
		add(0, op.Invoke, i)
		add(0, op.OK, i)
	}
	s := history.NewStream()
	s.SetBudget(budget(4, ""))
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	if got := s.RetireStats().RetiredOps; got != 0 {
		t.Fatalf("retired %d ops past an outstanding invocation", got)
	}
	// Completing the pinned invoke un-pins the prefix.
	add(9, op.OK, 999)
	if err := s.Add(ops[len(ops)-1]); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 110; i++ { // push past the sweep threshold again
		add(0, op.Invoke, i)
		add(0, op.OK, i)
	}
	if err := s.AddAll(ops[len(ops)-20:]); err != nil {
		t.Fatal(err)
	}
	if got := s.RetireStats().RetiredOps; got == 0 {
		t.Fatal("expected retirement once the pinned span closed")
	}
	mustEqualHistories(t, s.History(), ops)
}

// pipelinedOps builds a history where nproc clients are busy at every
// moment — each invokes its next op immediately after completing the
// last — so some span straddles every possible cut point. This is the
// shape real concurrent recordings have.
func pipelinedOps(nTxns, nproc int) []op.Op {
	var ops []op.Op
	idx := 0
	add := func(p int, t op.Type, arg int) {
		ops = append(ops, op.Op{Index: idx, Process: p, Time: int64(idx), Type: t,
			Mops: []op.Mop{{F: op.FAppend, Key: fmt.Sprintf("k%d", arg/8), Arg: arg}}})
		idx++
	}
	for p := 0; p < nproc; p++ {
		add(p, op.Invoke, p)
	}
	for i := 0; i < nTxns; i++ {
		p := i % nproc
		add(p, op.OK, i)
		if next := i + nproc; next < nTxns {
			add(p, op.Invoke, next)
		}
	}
	return ops
}

func TestStreamRetirePipelined(t *testing.T) {
	// The whole-span trap: clients that are never all idle mean no
	// prefix consists solely of complete spans. Retirement must still
	// make progress — closed spans may straddle the boundary, since
	// rehydration re-pairs them from the replayed order.
	ops := pipelinedOps(300, 10)
	s := history.NewStream()
	s.SetBudget(budget(16, ""))
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	st := s.RetireStats()
	if st.RetiredOps == 0 {
		t.Fatalf("pipelined history never retired; stats %+v", st)
	}
	// Resident: ~2x window of completions plus their invokes, plus the
	// ~nproc open spans. 5x window of ops is a generous ceiling.
	if st.ResidentOps > 5*16 {
		t.Fatalf("resident ops %d not bounded by the window", st.ResidentOps)
	}
	mustEqualHistories(t, s.History(), ops)
}

func TestStreamRetireSpill(t *testing.T) {
	ops := compactOps(500)
	s := history.NewStream()
	s.SetBudget(budget(16, t.TempDir()))
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	st := s.RetireStats()
	if st.SpilledBytes == 0 {
		t.Fatalf("expected spilled segments; stats %+v", st)
	}
	if st.RetiredBytes != 0 {
		t.Fatalf("spilled stream still holds %d encoded bytes in memory", st.RetiredBytes)
	}
	if st.Degraded != "" {
		t.Fatalf("unexpected degradation: %s", st.Degraded)
	}
	mustEqualHistories(t, s.History(), ops)
}

func TestStreamRetireSpillDirFailure(t *testing.T) {
	ops := compactOps(200)
	s := history.NewStream()
	s.SetBudget(budget(8, "/nonexistent/spill/dir"))
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	st := s.RetireStats()
	if st.Degraded == "" {
		t.Fatal("expected degraded stats for an unusable spill dir")
	}
	if st.RetiredOps == 0 || st.RetiredBytes == 0 {
		t.Fatalf("expected in-memory fallback retirement; stats %+v", st)
	}
	mustEqualHistories(t, s.History(), ops)
}

func TestStreamReplay(t *testing.T) {
	ops := pairedOps(80, 3)
	s := history.NewStream()
	s.SetBudget(budget(5, ""))
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	var replayed []op.Op
	if err := s.Replay(func(o op.Op) error {
		replayed = append(replayed, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, ops) {
		t.Fatalf("replay produced %d ops, want %d (or contents differ)", len(replayed), len(ops))
	}
}

func TestStreamRetireSpanOfLiveTail(t *testing.T) {
	ops := pairedOps(100, 4)
	s := history.NewStream()
	s.SetBudget(budget(6, ""))
	want := history.MustNew(ops)
	for i, o := range ops {
		if err := s.Add(o); err != nil {
			t.Fatal(err)
		}
		if o.Type == op.Invoke {
			continue
		}
		wi, wc := want.Span(i)
		if sp := s.SpanOf(o.Index); sp != [2]int{wi, wc} {
			t.Fatalf("SpanOf(%d) = %v, want [%d %d]", o.Index, sp, wi, wc)
		}
	}
}

func TestStreamRetireRejectsRetroactivePairing(t *testing.T) {
	// Compact completions retire; a late invoke must still trip the
	// retroactive "stream was never compact" error even though the
	// first completion is long gone.
	s := history.NewStream()
	s.SetBudget(budget(4, ""))
	if err := s.AddAll(compactOps(50)); err != nil {
		t.Fatal(err)
	}
	if s.RetireStats().RetiredOps == 0 {
		t.Fatal("expected retirement")
	}
	err := s.Add(op.Op{Index: 1000, Process: 0, Type: op.Invoke,
		Mops: []op.Mop{{F: op.FAppend, Key: "k", Arg: 1}}})
	if err == nil || !strings.Contains(err.Error(), "no outstanding invocation") {
		t.Fatalf("err = %v, want retroactive pairing error", err)
	}
	// The accepted prefix is still a valid history.
	if got := s.History().Len(); got != 50 {
		t.Fatalf("history after error has %d ops, want 50", got)
	}
}

func TestStreamNoBudgetUnchanged(t *testing.T) {
	// Without a budget nothing retires and History stays the aliasing
	// fast path.
	ops := compactOps(300)
	s := history.NewStream()
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	st := s.RetireStats()
	if st.RetiredOps != 0 || st.Segments != 0 || st.ResidentOps != 300 {
		t.Fatalf("unbudgeted stream retired: %+v", st)
	}
	mustEqualHistories(t, s.History(), ops)
}
