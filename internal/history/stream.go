package history

import (
	"fmt"

	"repro/internal/op"
)

// Stream incrementally validates and accumulates an observation that
// arrives in chunks — the history-side half of the streaming checker.
// It enforces the same structural rules as New (index uniqueness,
// invoke/completion pairing, one outstanding invocation per process)
// as each op arrives, so a malformed stream fails at the offending
// chunk instead of at the end, and maintains the invoke/completion
// index spans analyzers need without re-walking the prefix.
//
// One streaming-only restriction applies: ops must arrive in strictly
// ascending Index order. New can sort a batch before validating;
// a stream cannot reorder what it has already analyzed.
//
// A Stream normally retains every accepted op. SetBudget bounds that:
// once a retirement window is configured, settled prefixes — ops whose
// invoke/completion spans are closed and fall behind the window — are
// encoded into compact immutable segments (optionally spilled to disk)
// and released from the live slices, making resident memory O(window)
// instead of O(history). History transparently rehydrates the segments.
type Stream struct {
	// ops is the live tail. The op at stream position p (0-based over
	// every accepted op) lives at ops[p-base]; positions below base have
	// been retired into segments. completion/invocation are aligned with
	// ops and store global positions.
	ops        []op.Op
	base       int
	completion []int
	invocation []int
	open       map[int]int    // process -> global position of outstanding invoke
	spans      map[int][2]int // completion op index -> [invoke index, completion index]

	keys *Interner

	hasInvoke     bool
	firstComp     int // op index of the first completion accepted in compact mode
	firstCompProc int // its process, for the retroactive pairing error
	lastIndex     int // Index of the most recently accepted op, -1 when none
	completions   int

	budget  Budget
	retired retired
	hist    *History // cached rehydration; only set once segments exist

	err error // sticky: a stream that errored stays errored
}

// NewStream returns an empty Stream.
func NewStream() *Stream {
	return &Stream{open: map[int]int{}, firstComp: -1, lastIndex: -1, keys: NewInterner()}
}

// Keys returns the stream's live key interner: every key of every
// accepted op, assigned dense KeyIDs in arrival order — the same IDs
// New assigns the same observation, since streams are index-ordered.
// It grows as ops are accepted; between Adds it is safe to read.
func (s *Stream) Keys() *Interner { return s.keys }

// Add validates and ingests one op. Errors are sticky: once Add fails,
// every later call returns the same error.
func (s *Stream) Add(o op.Op) error {
	if s.err != nil {
		return s.err
	}
	if err := s.add(o); err != nil {
		s.err = err
		return err
	}
	s.lastIndex = o.Index
	s.maybeRetire()
	return nil
}

// AddAll ingests ops in order, stopping at the first error.
func (s *Stream) AddAll(ops []op.Op) error {
	for _, o := range ops {
		if err := s.Add(o); err != nil {
			return err
		}
	}
	return nil
}

// add validates o fully before mutating any state, so a rejected op
// leaves no trace: History over a stream that errored contains only
// the ops accepted before the failure.
func (s *Stream) add(o op.Op) error {
	if s.base+len(s.ops) > 0 {
		if o.Index == s.lastIndex {
			return &Error{Index: o.Index, Msg: "duplicate index"}
		}
		if o.Index < s.lastIndex {
			return &Error{Index: o.Index,
				Msg: fmt.Sprintf("arrived after index %d: a stream must be index-ordered", s.lastIndex)}
		}
	}

	if o.Type == op.Invoke {
		if !s.hasInvoke && s.firstComp >= 0 {
			// The stream looked compact until now; New over the same ops
			// would have rejected its first completion.
			return &Error{Index: s.firstComp,
				Msg: fmt.Sprintf("completion for process %d with no outstanding invocation", s.firstCompProc)}
		}
		if prev, ok := s.open[o.Process]; ok {
			return &Error{Index: o.Index,
				Msg: fmt.Sprintf("process %d invoked while op index %d is outstanding", o.Process, s.ops[prev-s.base].Index)}
		}
		s.hasInvoke = true
		s.open[o.Process] = s.append(o)
		return nil
	}

	if !s.hasInvoke {
		// Compact so far: the op completes atomically at its own index.
		s.append(o)
		s.completions++
		if s.firstComp < 0 {
			s.firstComp = o.Index
			s.firstCompProc = o.Process
		}
		s.setSpan(o.Index, o.Index, o.Index)
		return nil
	}
	inv, ok := s.open[o.Process]
	if !ok {
		return &Error{Index: o.Index,
			Msg: fmt.Sprintf("completion for process %d with no outstanding invocation", o.Process)}
	}
	pos := s.append(o)
	s.completions++
	delete(s.open, o.Process)
	s.completion[inv-s.base] = pos
	s.invocation[pos-s.base] = inv
	s.setSpan(o.Index, s.ops[inv-s.base].Index, o.Index)
	return nil
}

// append accepts o at the next stream position (global: retirement does
// not renumber) and returns that position.
func (s *Stream) append(o op.Op) int {
	pos := s.base + len(s.ops)
	for _, m := range o.Mops {
		s.keys.Intern(m.Key)
	}
	s.ops = append(s.ops, o)
	s.completion = append(s.completion, -1)
	s.invocation = append(s.invocation, -1)
	return pos
}

func (s *Stream) setSpan(index, invoke, complete int) {
	if s.spans == nil {
		s.spans = map[int][2]int{}
	}
	s.spans[index] = [2]int{invoke, complete}
}

// Len returns the number of ops ingested (including invokes and ops
// already retired into segments).
func (s *Stream) Len() int { return s.base + len(s.ops) }

// Completions returns the number of completion ops ingested.
func (s *Stream) Completions() int { return s.completions }

// Err returns the sticky error, if any.
func (s *Stream) Err() error { return s.err }

// SpanOf returns the invoke and completion indices bounding the
// completion op with the given index, matching History.Span. It returns
// [index, index] for unknown indices, which is also the compact answer.
func (s *Stream) SpanOf(index int) [2]int {
	if sp, ok := s.spans[index]; ok {
		return sp
	}
	return [2]int{index, index}
}

// History returns the accumulated ops as a validated History. It is
// equivalent to New over the same ops (which a streaming caller must
// have delivered in index order), without re-validating the stream.
// The History aliases the stream's internal state: take it once, when
// the stream is complete, and do not Add afterwards.
//
// If retirement has released any prefix (see SetBudget), History
// rehydrates it: every segment is decoded back, the full op sequence is
// re-validated through New, and the result is cached — an O(history)
// operation in time and memory, paid once at finish rather than
// throughout the stream's life. It panics if a spilled segment can no
// longer be read (the spill file lives unlinked on local disk for
// exactly the stream's lifetime, so this indicates hardware-level I/O
// failure).
func (s *Stream) History() *History {
	if s.retired.ops == 0 {
		h := &History{Ops: s.ops, compact: !s.hasInvoke, keys: s.keys}
		if !h.compact {
			h.completion = s.completion
			h.invocation = s.invocation
		}
		return h
	}
	if s.hist != nil {
		return s.hist
	}
	ops := make([]op.Op, 0, s.retired.ops+len(s.ops))
	if err := s.Replay(func(o op.Op) error {
		ops = append(ops, o)
		return nil
	}); err != nil {
		panic(fmt.Sprintf("history: rehydrating retired segments: %v", err))
	}
	h, err := New(ops)
	if err != nil {
		// Every op was validated incrementally on the way in; a segment
		// that decodes to something New rejects is a codec bug.
		panic(fmt.Sprintf("history: rehydrated stream failed validation: %v", err))
	}
	s.hist = h
	s.retired.closeSpill()
	return h
}
