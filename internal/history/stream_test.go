package history

import (
	"testing"

	"repro/internal/op"
)

// TestStreamMatchesNew feeds valid complete and compact histories
// through the Stream and checks the result is indistinguishable from
// New over the same ops: same pairing, same spans, same derived views.
func TestStreamMatchesNew(t *testing.T) {
	complete := []op.Op{
		{Index: 0, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 1, Process: 1, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		{Index: 2, Process: 0, Type: op.OK, Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 3, Process: 1, Type: op.OK, Mops: []op.Mop{op.ReadList("x", []int{1})}},
		{Index: 4, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Append("x", 2)}},
		{Index: 5, Process: 0, Type: op.Fail, Mops: []op.Mop{op.Append("x", 2)}},
		{Index: 6, Process: 2, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		// Process 2 crashes: no completion.
	}
	compact := []op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
		op.Txn(2, 0, op.Fail, op.Append("x", 2)),
	}
	for name, ops := range map[string][]op.Op{"complete": complete, "compact": compact} {
		t.Run(name, func(t *testing.T) {
			want := MustNew(ops)
			s := NewStream()
			// Feed in two chunks to cross a chunk boundary mid-pairing.
			if err := s.AddAll(ops[:3]); err != nil {
				t.Fatal(err)
			}
			if err := s.AddAll(ops[3:]); err != nil {
				t.Fatal(err)
			}
			got := s.History()
			if got.Compact() != want.Compact() {
				t.Fatalf("compact = %v, want %v", got.Compact(), want.Compact())
			}
			if got.Len() != want.Len() {
				t.Fatalf("len = %d, want %d", got.Len(), want.Len())
			}
			for pos := range want.Ops {
				if want.Ops[pos].Type == op.Invoke {
					continue
				}
				wi, wc := want.Span(pos)
				gi, gc := got.Span(pos)
				if wi != gi || wc != gc {
					t.Fatalf("span at pos %d: stream (%d,%d), batch (%d,%d)", pos, gi, gc, wi, wc)
				}
				sp := s.SpanOf(want.Ops[pos].Index)
				if sp[0] != wi || sp[1] != wc {
					t.Fatalf("SpanOf(%d) = %v, batch (%d,%d)", want.Ops[pos].Index, sp, wi, wc)
				}
			}
			if len(got.Completions()) != len(want.Completions()) {
				t.Fatal("completions diverge")
			}
			if s.Completions() != len(want.Completions()) {
				t.Fatalf("Completions() = %d, want %d", s.Completions(), len(want.Completions()))
			}
		})
	}
}

// TestStreamErrors checks the structural rejections: each error matches
// what New reports for the same malformed batch, plus the
// streaming-only ordering rule, and errors are sticky.
func TestStreamErrors(t *testing.T) {
	invoke := func(idx, proc int) op.Op {
		return op.Op{Index: idx, Process: proc, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}}
	}
	okOp := func(idx, proc int) op.Op {
		return op.Op{Index: idx, Process: proc, Type: op.OK, Mops: []op.Mop{op.ReadNil("x")}}
	}

	t.Run("duplicate index", func(t *testing.T) {
		s := NewStream()
		if err := s.AddAll([]op.Op{okOp(0, 0), okOp(0, 1)}); err == nil {
			t.Fatal("expected duplicate-index error")
		}
	})
	t.Run("out of order", func(t *testing.T) {
		s := NewStream()
		if err := s.AddAll([]op.Op{okOp(5, 0), okOp(2, 1)}); err == nil {
			t.Fatal("expected ordering error")
		}
	})
	t.Run("double invocation", func(t *testing.T) {
		s := NewStream()
		err := s.AddAll([]op.Op{invoke(0, 3), invoke(1, 3)})
		if err == nil {
			t.Fatal("expected double-invocation error")
		}
		if _, werr := New([]op.Op{invoke(0, 3), invoke(1, 3)}); werr == nil || werr.Error() != err.Error() {
			t.Fatalf("stream error %q != batch error %q", err, werr)
		}
	})
	t.Run("completion without invocation", func(t *testing.T) {
		ops := []op.Op{invoke(0, 1), okOp(1, 1), okOp(2, 2)}
		s := NewStream()
		err := s.AddAll(ops)
		if err == nil {
			t.Fatal("expected pairing error")
		}
		if _, werr := New(ops); werr == nil || werr.Error() != err.Error() {
			t.Fatalf("stream error %q != batch error %q", err, werr)
		}
	})
	t.Run("retroactive compact violation", func(t *testing.T) {
		// A completion accepted in compact mode becomes invalid the
		// moment an invoke appears; New rejects the same batch.
		ops := []op.Op{okOp(0, 0), invoke(1, 1)}
		s := NewStream()
		err := s.AddAll(ops)
		if err == nil {
			t.Fatal("expected retroactive pairing error")
		}
		if _, werr := New(ops); werr == nil || werr.Error() != err.Error() {
			t.Fatalf("stream error %q != batch error %q", err, werr)
		}
	})
	t.Run("sticky", func(t *testing.T) {
		s := NewStream()
		first := s.AddAll([]op.Op{okOp(0, 0), okOp(0, 1)})
		if first == nil {
			t.Fatal("expected error")
		}
		if again := s.Add(okOp(9, 9)); again == nil || again.Error() != first.Error() {
			t.Fatalf("error not sticky: %v then %v", first, again)
		}
		if s.Err() == nil {
			t.Fatal("Err() should report the sticky error")
		}
	})
}
