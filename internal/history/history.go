// Package history models an observation (§4.2.1 of the Elle paper): the
// experimentally-accessible record of every transaction a set of client
// processes executed against a database.
//
// A history is a flat, index-ordered sequence of ops. Two layouts are
// supported:
//
//   - Complete histories interleave Invoke ops with their OK/Fail/Info
//     completions, exactly as a Jepsen run records them. Invoke/completion
//     pairs carry the same Process; a process has at most one outstanding
//     invocation, which is what makes real-time inference possible.
//
//   - Compact histories contain completions only (common in tests and
//     hand-built examples). Each op is treated as invoking and completing
//     atomically at its own index.
//
// The package validates structural well-formedness, pairs invocations with
// completions, and exposes the derived views every analyzer needs: the
// completion list, per-process sequences, and the invoke/complete index
// mapping used to build the real-time precedence order.
package history

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/op"
)

// History is a validated observation.
type History struct {
	// Ops is the full event sequence sorted by Index.
	Ops []op.Op

	// complete[i] holds, for the invoke op at Ops position i, the position
	// of its completion (or -1). For compact histories it is nil.
	completion []int
	invocation []int
	compact    bool

	keys     *Interner
	keysOnce sync.Once
}

// An Error describes a structural problem that makes an observation
// unusable, such as two concurrent invocations by one process.
type Error struct {
	Index int
	Msg   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("history: op index %d: %s", e.Index, e.Msg)
}

// New validates ops and builds a History. Ops may be given in any order;
// they are sorted by Index. If no op has type Invoke, the history is
// treated as compact.
//
// New returns an error if indices repeat, if a process has two outstanding
// invocations, or if a completion arrives for a process with no outstanding
// invocation.
func New(ops []op.Op) (*History, error) {
	sorted := make([]op.Op, len(ops))
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })

	hasInvoke := false
	for i := range sorted {
		if i > 0 && sorted[i].Index == sorted[i-1].Index {
			return nil, &Error{Index: sorted[i].Index, Msg: "duplicate index"}
		}
		if sorted[i].Type == op.Invoke {
			hasInvoke = true
		}
	}

	h := &History{Ops: sorted, compact: !hasInvoke, keys: internAll(sorted)}
	if h.compact {
		return h, nil
	}

	h.completion = make([]int, len(sorted))
	h.invocation = make([]int, len(sorted))
	for i := range h.completion {
		h.completion[i] = -1
		h.invocation[i] = -1
	}
	open := map[int]int{} // process -> position of outstanding invoke
	for i, o := range sorted {
		if o.Type == op.Invoke {
			if prev, ok := open[o.Process]; ok {
				return nil, &Error{Index: o.Index,
					Msg: fmt.Sprintf("process %d invoked while op index %d is outstanding", o.Process, sorted[prev].Index)}
			}
			open[o.Process] = i
			continue
		}
		inv, ok := open[o.Process]
		if !ok {
			return nil, &Error{Index: o.Index,
				Msg: fmt.Sprintf("completion for process %d with no outstanding invocation", o.Process)}
		}
		delete(open, o.Process)
		h.completion[inv] = i
		h.invocation[i] = inv
	}
	// Invocations still open at the end of the history are treated as
	// crashed clients; Jepsen records an Info for them, but we tolerate a
	// truncated tail.
	return h, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(ops []op.Op) *History {
	h, err := New(ops)
	if err != nil {
		panic(err)
	}
	return h
}

// internAll interns every mop key of ops, in op order — invocations
// included, since analyzers consult crashed clients' attempted writes.
func internAll(ops []op.Op) *Interner {
	in := NewInterner()
	for _, o := range ops {
		for _, m := range o.Mops {
			in.Intern(m.Key)
		}
	}
	return in
}

// Keys returns the history-wide key interner: every key any op touches,
// assigned dense KeyIDs in first-appearance (index) order. New and
// Stream build it during ingestion; a History assembled some other way
// gets one lazily on first call. The interner must be treated as
// read-only.
func (h *History) Keys() *Interner {
	h.keysOnce.Do(func() {
		if h.keys == nil {
			h.keys = internAll(h.Ops)
		}
	})
	return h.keys
}

// Compact reports whether the history contains completions only.
func (h *History) Compact() bool { return h.compact }

// Len returns the number of ops (including invokes).
func (h *History) Len() int { return len(h.Ops) }

// Completions returns the completion ops (OK, Fail, and Info), in index
// order. These are the units of analysis: each one is an observed
// transaction Tˆi.
func (h *History) Completions() []op.Op {
	out := make([]op.Op, 0, len(h.Ops))
	for _, o := range h.Ops {
		if o.Type != op.Invoke {
			out = append(out, o)
		}
	}
	return out
}

// OKs returns the committed transactions in index order.
func (h *History) OKs() []op.Op {
	var out []op.Op
	for _, o := range h.Ops {
		if o.Type == op.OK {
			out = append(out, o)
		}
	}
	return out
}

// Span returns the invoke and completion indices bounding the transaction
// completed at position pos within Ops. For compact histories (or
// unpaired ops) both bounds equal the op's own index.
func (h *History) Span(pos int) (invokeIdx, completeIdx int) {
	o := h.Ops[pos]
	if h.compact || o.Type == op.Invoke {
		return o.Index, o.Index
	}
	if inv := h.invocation[pos]; inv >= 0 {
		return h.Ops[inv].Index, o.Index
	}
	return o.Index, o.Index
}

// ByProcess groups completion ops by process, preserving index order
// within each process. The per-process sequences define the process
// (session) order of §5.1.
func (h *History) ByProcess() map[int][]op.Op {
	out := map[int][]op.Op{}
	for _, o := range h.Ops {
		if o.Type != op.Invoke {
			out[o.Process] = append(out[o.Process], o)
		}
	}
	return out
}

// MaxIndex returns the largest op index, or -1 for an empty history.
func (h *History) MaxIndex() int {
	if len(h.Ops) == 0 {
		return -1
	}
	return h.Ops[len(h.Ops)-1].Index
}

// Builder incrementally assembles a history, assigning indices and
// (logical) times automatically. It is safe for single-goroutine use; the
// memdb recorder wraps it with a mutex.
type Builder struct {
	ops  []op.Op
	next int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Append adds o with the next index and a logical time equal to that
// index, returning the assigned index.
func (b *Builder) Append(o op.Op) int {
	o.Index = b.next
	if o.Time == 0 {
		o.Time = int64(b.next)
	}
	b.next++
	b.ops = append(b.ops, o)
	return o.Index
}

// Invoke records an invocation for process with the given mops.
func (b *Builder) Invoke(process int, mops []op.Mop) int {
	return b.Append(op.Op{Process: process, Type: op.Invoke, Mops: mops})
}

// Complete records a completion of the given type for process.
func (b *Builder) Complete(process int, t op.Type, mops []op.Mop) int {
	return b.Append(op.Op{Process: process, Type: t, Mops: mops})
}

// History validates and returns the built history.
func (b *Builder) History() (*History, error) { return New(b.ops) }

// MustHistory is History but panics on error.
func (b *Builder) MustHistory() *History {
	h, err := b.History()
	if err != nil {
		panic(err)
	}
	return h
}
