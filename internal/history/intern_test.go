package history

import (
	"testing"

	"repro/internal/op"
)

func TestInternerAssignsDenseIDsInFirstAppearanceOrder(t *testing.T) {
	in := NewInterner()
	if got := in.Intern("b"); got != 0 {
		t.Fatalf("first key id = %d", got)
	}
	if got := in.Intern("a"); got != 1 {
		t.Fatalf("second key id = %d", got)
	}
	if got := in.Intern("b"); got != 0 {
		t.Fatalf("re-intern changed id: %d", got)
	}
	if in.Len() != 2 {
		t.Fatalf("len = %d", in.Len())
	}
	if in.Key(0) != "b" || in.Key(1) != "a" {
		t.Fatalf("key lookup: %q %q", in.Key(0), in.Key(1))
	}
	if id, ok := in.ID("a"); !ok || id != 1 {
		t.Fatalf("ID(a) = %d, %v", id, ok)
	}
	if _, ok := in.ID("missing"); ok {
		t.Fatal("ID invented a key")
	}
	if !in.Less(1, 0) {
		t.Fatal("Less must order by name, not id")
	}
	ids := in.SortedIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 0 {
		t.Fatalf("SortedIDs = %v", ids)
	}
}

func TestHistoryKeysMatchesStreamKeys(t *testing.T) {
	ops := []op.Op{
		op.Txn(0, 0, op.OK, op.Append("9", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("10", []int{}), op.Append("9", 2)),
		op.Txn(2, 0, op.OK, op.Append("2", 3)),
	}
	h := MustNew(ops)
	s := NewStream()
	if err := s.AddAll(ops); err != nil {
		t.Fatal(err)
	}
	hk, sk := h.Keys(), s.Keys()
	if hk.Len() != 3 || sk.Len() != 3 {
		t.Fatalf("interner sizes %d, %d", hk.Len(), sk.Len())
	}
	for id := KeyID(0); int(id) < hk.Len(); id++ {
		if hk.Key(id) != sk.Key(id) {
			t.Fatalf("id %d: %q vs %q", id, hk.Key(id), sk.Key(id))
		}
	}
	// First-appearance order, not name order.
	if hk.Key(0) != "9" || hk.Key(1) != "10" || hk.Key(2) != "2" {
		t.Fatalf("interning order: %q %q %q", hk.Key(0), hk.Key(1), hk.Key(2))
	}
}

func TestGrowKeyed(t *testing.T) {
	var s [][]int
	s = GrowKeyed(s, 3)
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	s[3] = []int{1}
	s = GrowKeyed(s, 1)
	if len(s) != 4 || s[3] == nil {
		t.Fatal("growing to a smaller id must not shrink or drop data")
	}
	s = GrowKeyed(s, 10)
	if len(s) != 11 || s[3] == nil {
		t.Fatal("regrow lost data")
	}
}

// TestInternerLookupAllocs pins the hot-path lookup to zero
// allocations: analyzers resolve every mop key through ID, so a single
// allocation here multiplies by every micro-op in the history.
func TestInternerLookupAllocs(t *testing.T) {
	in := NewInterner()
	keys := []string{"0", "1", "2", "3", "4", "5", "6", "7"}
	for _, k := range keys {
		in.Intern(k)
	}
	var sink KeyID
	allocs := testing.AllocsPerRun(1000, func() {
		for _, k := range keys {
			id, ok := in.ID(k)
			if !ok {
				t.Fatal("lost key")
			}
			sink += id
		}
	})
	if allocs != 0 {
		t.Fatalf("interner lookup allocates %.1f times per 8 lookups; budget is 0", allocs)
	}
	// Re-interning an existing key is also allocation-free.
	allocs = testing.AllocsPerRun(1000, func() {
		sink += in.Intern("3")
	})
	if allocs != 0 {
		t.Fatalf("re-intern allocates %.1f times; budget is 0", allocs)
	}
	_ = sink
}
