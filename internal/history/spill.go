package history

import (
	"fmt"
	"io"
	"os"
)

// A Spill is an append-only scratch file for retired segments. The
// backing file is unlinked the moment it is created, so it occupies
// directory namespace for microseconds and disk space for exactly the
// lifetime of the open descriptor — a crash, a kill, or plain garbage
// collection of the *os.File reclaims it without cleanup code.
type Spill struct {
	f   *os.File
	off int64
}

// SpillRef locates one extent in a Spill.
type SpillRef struct {
	Off int64
	Len int
}

// NewSpill creates an anonymous spill file in dir ("" means the
// system temporary directory).
func NewSpill(dir string) (*Spill, error) {
	f, err := os.CreateTemp(dir, "elle-retired-*.seg")
	if err != nil {
		return nil, fmt.Errorf("history: creating spill file: %w", err)
	}
	// Unlink immediately: the kernel keeps the inode alive while the
	// descriptor is open, and reclaims it unconditionally on close or
	// process death.
	os.Remove(f.Name())
	return &Spill{f: f}, nil
}

// Append writes b at the end of the spill and returns its extent.
func (sp *Spill) Append(b []byte) (SpillRef, error) {
	ref := SpillRef{Off: sp.off, Len: len(b)}
	if _, err := sp.f.WriteAt(b, sp.off); err != nil {
		return SpillRef{}, fmt.Errorf("history: spill write: %w", err)
	}
	sp.off += int64(len(b))
	return ref, nil
}

// Read returns the extent at ref, appending into buf (which may be
// nil) to let callers reuse one buffer across segments.
func (sp *Spill) Read(ref SpillRef, buf []byte) ([]byte, error) {
	if cap(buf) < ref.Len {
		buf = make([]byte, ref.Len)
	}
	buf = buf[:ref.Len]
	if _, err := sp.f.ReadAt(buf, ref.Off); err != nil && err != io.EOF {
		return nil, fmt.Errorf("history: spill read: %w", err)
	}
	return buf, nil
}

// Size returns the bytes written so far.
func (sp *Spill) Size() int64 { return sp.off }

// Close releases the descriptor (and with it the unlinked file's disk
// space). Reads after Close fail.
func (sp *Spill) Close() error { return sp.f.Close() }
