package history_test

import (
	"reflect"
	"testing"

	"repro/internal/history"
	"repro/internal/op"
)

// retireOpsFromBytes derives an op sequence from fuzz input, the same
// way FuzzHistoryNew does: 3-byte groups drive completion type, process,
// index spacing, and body, so the corpus explores compact and paired
// streams, pairing violations, duplicate indices, and mixed mop shapes.
// Ops are constructor-built (canonical field encodings), so a codec
// round-trip of a retired segment must reproduce them exactly.
func retireOpsFromBytes(data []byte) []op.Op {
	var ops []op.Op
	index := 0
	elem := 0
	for i := 0; i+2 < len(data); i += 3 {
		t := op.Type(data[i] & 3)
		if data[i]&16 != 0 {
			t = op.Invoke
		}
		process := int(data[i] >> 2 & 3)
		index += int(data[i+1] & 3)
		var mops []op.Mop
		switch data[i+2] & 3 {
		case 0:
			elem++
			mops = []op.Mop{op.Append("x", elem)}
		case 1:
			mops = []op.Mop{op.Read("y")}
		case 2:
			elem++
			mops = []op.Mop{op.Append("y", elem), op.Read("x")}
		}
		ops = append(ops, op.Op{Index: index, Process: process, Type: t, Mops: mops})
	}
	return ops
}

// FuzzStreamRetirement: a stream under a tiny retirement budget must be
// observationally identical to an unbudgeted stream fed the same ops —
// same acceptance or rejection at the same op, same rehydrated history
// (ops, spans, compactness), and a Replay that reproduces exactly the
// accepted sequence. The budget only changes where bytes live, never
// what the stream means.
func FuzzStreamRetirement(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 1, 0, 1, 1, 2, 1, 2, 3, 1, 0})            // compact mix
	f.Add([]byte{0, 16, 1, 0, 1, 1, 1, 16, 1, 0, 5, 1, 1})       // paired spans
	f.Add([]byte{2, 16, 1, 0, 20, 1, 1, 0, 1, 1, 16, 1, 2})      // interleaved processes
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0})                           // duplicate indices
	f.Add([]byte{3, 1, 1, 2, 16, 1, 0, 1, 1, 1, 16, 1, 0, 1, 1}) // compact turning complete

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		window := 1 + int(data[0]&3)
		spill := ""
		if data[0]&4 != 0 {
			spill = t.TempDir()
		}
		ops := retireOpsFromBytes(data[1:])

		plain := history.NewStream()
		var perr error
		accepted := 0
		for _, o := range ops {
			if perr = plain.Add(o); perr != nil {
				break
			}
			accepted++
		}

		budgeted := history.NewStream()
		budgeted.SetBudget(budget(window, spill))
		var berr error
		for _, o := range ops {
			if berr = budgeted.Add(o); berr != nil {
				break
			}
		}

		if (perr == nil) != (berr == nil) || (perr != nil && perr.Error() != berr.Error()) {
			t.Fatalf("acceptance diverged: plain err=%v, budgeted err=%v", perr, berr)
		}

		st := budgeted.RetireStats()
		if st.Degraded != "" {
			t.Fatalf("retirement degraded: %s", st.Degraded)
		}
		if st.ResidentOps+st.RetiredOps != accepted {
			t.Fatalf("resident %d + retired %d != accepted %d",
				st.ResidentOps, st.RetiredOps, accepted)
		}

		// Replay must reproduce exactly the accepted prefix, segment
		// decode included.
		var replayed []op.Op
		if err := budgeted.Replay(func(o op.Op) error {
			replayed = append(replayed, o)
			return nil
		}); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if !reflect.DeepEqual(replayed, ops[:accepted]) {
			t.Fatalf("replay diverged: %d ops, want %d (or contents differ)", len(replayed), accepted)
		}

		if perr != nil {
			return
		}
		ph, bh := plain.History(), budgeted.History()
		if !reflect.DeepEqual(ph.Ops, bh.Ops) {
			t.Fatalf("rehydrated ops diverged: %d vs %d", len(bh.Ops), len(ph.Ops))
		}
		if ph.Compact() != bh.Compact() {
			t.Fatalf("compactness diverged: plain %v, budgeted %v", ph.Compact(), bh.Compact())
		}
		for pos := range ph.Ops {
			pi, pc := ph.Span(pos)
			bi, bc := bh.Span(pos)
			if pi != bi || pc != bc {
				t.Fatalf("span(%d) diverged: plain [%d %d], budgeted [%d %d]", pos, pi, pc, bi, bc)
			}
		}
	})
}
