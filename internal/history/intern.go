package history

import "sort"

// KeyID is a dense, history-local identifier for an object key. The
// interner assigns IDs in first-appearance (index) order, so the same
// observation produces the same IDs whether it arrives as a batch (New)
// or as a stream (Stream) — which is what lets the streaming sessions'
// KeyID-indexed state line up byte-for-byte with the batch analyzers'.
type KeyID int32

// NoKey is the sentinel for "key not interned".
const NoKey KeyID = -1

// Interner maps string object keys to dense KeyIDs and back. Analyzers
// index their per-key state by KeyID — a slice index instead of a
// string-keyed map — so the hot inference loops never hash a key
// string.
//
// An Interner is safe for concurrent *readers* (ID, Key, Len,
// SortedIDs). Intern mutates and must be serialized with all other
// calls; in practice interning happens only on the single-goroutine
// ingestion paths (history.New, Stream.Add), after which analyzers
// treat the interner as read-only.
type Interner struct {
	ids  map[string]KeyID
	keys []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: map[string]KeyID{}}
}

// Intern returns k's KeyID, assigning the next dense ID on first sight.
func (in *Interner) Intern(k string) KeyID {
	if id, ok := in.ids[k]; ok {
		return id
	}
	id := KeyID(len(in.keys))
	in.ids[k] = id
	in.keys = append(in.keys, k)
	return id
}

// ID looks up k without interning. It allocates nothing.
func (in *Interner) ID(k string) (KeyID, bool) {
	id, ok := in.ids[k]
	return id, ok
}

// MustID looks up k, panicking on a miss. Analyzers resolve mop keys
// with it: every mop key of an ingested op was interned by history.New
// or Stream.Add, so a miss is a bug, not an input condition.
func (in *Interner) MustID(k string) KeyID {
	id, ok := in.ids[k]
	if !ok {
		panic("history: key not interned: " + k)
	}
	return id
}

// Key returns the string key for id. It panics on an ID the interner
// never issued, exactly like an out-of-range slice index.
func (in *Interner) Key(id KeyID) string { return in.keys[id] }

// Len returns the number of interned keys; IDs are 0..Len()-1.
func (in *Interner) Len() int { return len(in.keys) }

// Less orders two KeyIDs by their key strings — the report order every
// analyzer used when keys were strings, preserved so converting the
// indexes to KeyIDs changes no report bytes.
func (in *Interner) Less(a, b KeyID) bool { return in.keys[a] < in.keys[b] }

// SortKeyIDs sorts ids in place by key string.
func (in *Interner) SortKeyIDs(ids []KeyID) {
	sort.Slice(ids, func(i, j int) bool { return in.keys[ids[i]] < in.keys[ids[j]] })
}

// SortedIDs returns every interned KeyID, ordered by key string.
func (in *Interner) SortedIDs() []KeyID {
	out := make([]KeyID, len(in.keys))
	for i := range out {
		out[i] = KeyID(i)
	}
	in.SortKeyIDs(out)
	return out
}

// GrowKeyed extends s so that index id is valid, returning the grown
// slice. Per-key state kept in dense slices uses it when keys appear
// incrementally (streaming sessions); batch analyzers size their slices
// to Interner.Len() up front instead.
func GrowKeyed[T any](s []T, id KeyID) []T {
	if int(id) < len(s) {
		return s
	}
	if int(id) < cap(s) {
		return s[:id+1]
	}
	ns := make([]T, int(id)+1, 1+2*int(id))
	copy(ns, s)
	return ns
}
