package history

import (
	"repro/internal/op"
)

// A SegmentCodec (de)serializes retired op segments. The stream never
// interprets segment bytes itself, so the encoding is pluggable; the
// production codec is binhist.Segments, which writes each segment as a
// self-contained ellebin stream (own header and key dictionary), making
// the concatenation of every segment plus the live tail a valid ellebin
// file. The codec must round-trip exactly: Decode(Encode(ops)) yields
// ops unchanged, field for field.
//
// The codec is injected rather than imported because binhist sits above
// this package (it returns validated Histories).
type SegmentCodec interface {
	// AppendOps appends the encoding of ops to dst and returns the
	// grown slice.
	AppendOps(dst []byte, ops []op.Op) ([]byte, error)
	// Decode invokes fn for every op in one or more concatenated
	// segments, in order, stopping at fn's first error.
	Decode(b []byte, fn func(op.Op) error) error
}

// Budget configures settled-prefix retirement for a Stream.
type Budget struct {
	// Window is how many of the most recent completions stay fully
	// resident. Ops behind the window whose spans are closed are
	// retired. 0 disables retirement.
	Window int
	// Codec serializes retired segments; required when Window > 0.
	Codec SegmentCodec
	// SpillDir, when non-empty, is the directory where encoded segments
	// are spilled to an unlinked temporary file instead of being held
	// in memory, bounding resident memory by O(Window) regardless of
	// history length. Empty keeps segments in memory (still a large
	// constant-factor win: encoded ops cost a few bytes each).
	SpillDir string
}

// RetireStats describes how much of a stream has been retired.
type RetireStats struct {
	// ResidentOps is the live-tail length: ops still held decoded.
	ResidentOps int
	// RetiredOps / RetiredCompletions count ops released into segments.
	RetiredOps         int
	RetiredCompletions int
	// Segments is the retired segment count.
	Segments int
	// RetiredBytes is the encoded segment bytes held in memory;
	// SpilledBytes the encoded bytes written to the spill file.
	RetiredBytes int
	SpilledBytes int64
	// Degraded describes any fallback taken (spill I/O failure, codec
	// failure). Retirement degrades rather than corrupting: on spill
	// trouble segments stay in memory, on codec trouble retirement
	// stops and the stream simply grows.
	Degraded string
}

// segment is one retired prefix: nops ops (ncomps of them completions)
// encoded into either an in-memory byte slice or a spill-file extent.
type segment struct {
	data    []byte
	ref     SpillRef
	spilled bool
	nops    int
	ncomps  int
}

// retired is a Stream's retirement state.
type retired struct {
	segs  []segment
	ops   int
	comps int
	bytes int // in-memory encoded bytes

	spill    *Spill
	disabled bool // codec failed; no further retirement
	degraded string
}

func (r *retired) closeSpill() {
	if r.spill != nil {
		r.spill.Close()
	}
}

// SetBudget configures retirement. Call it before feeding ops;
// enabling it mid-stream affects only ops accepted afterwards (nothing
// already accepted is retroactively retired until the next sweep).
// A Window > 0 with a nil Codec disables retirement.
func (s *Stream) SetBudget(b Budget) {
	s.budget = b
}

// RetireStats reports the stream's current retirement counters.
func (s *Stream) RetireStats() RetireStats {
	st := RetireStats{
		ResidentOps:        len(s.ops),
		RetiredOps:         s.retired.ops,
		RetiredCompletions: s.retired.comps,
		Segments:           len(s.retired.segs),
		RetiredBytes:       s.retired.bytes,
		Degraded:           s.retired.degraded,
	}
	if s.retired.spill != nil {
		st.SpilledBytes = s.retired.spill.Size()
	}
	return st
}

// maybeRetire sweeps once the live tail holds at least twice the
// window's completions, so each sweep retires about a window's worth
// and the amortized cost per op is O(1).
func (s *Stream) maybeRetire() {
	w := s.budget.Window
	if w <= 0 || s.budget.Codec == nil || s.retired.disabled {
		return
	}
	live := s.completions - s.retired.comps
	if live < 2*w {
		return
	}
	s.retire(live - w)
}

// retire releases the prefix up to the drop'th live completion. The
// boundary honors one pin: it never passes an outstanding invocation
// (its completion has not arrived, so pairing state must stay live).
// Closed spans may straddle the boundary freely — an invoke whose
// completion survives in the live tail retires with its segment, and
// rehydration re-pairs them, because Replay preserves the original op
// order across segments and tail. Requiring whole spans would be fatal
// on continuously concurrent histories: with c busy clients some span
// crosses every candidate cut, and no prefix would ever retire.
func (s *Stream) retire(drop int) {
	// Candidate boundary: the position just past the drop'th live
	// completion.
	end, seen := 0, 0
	for end < len(s.ops) && seen < drop {
		if s.ops[end].Type != op.Invoke {
			seen++
		}
		end++
	}
	b := s.base + end
	for _, p := range s.open {
		if p < b {
			b = p
		}
	}
	n := b - s.base
	if n <= 0 {
		return
	}

	prefix := s.ops[:n]
	data, err := s.budget.Codec.AppendOps(nil, prefix)
	if err != nil {
		// A codec that cannot encode leaves the ops resident: the
		// stream grows but stays correct.
		s.retired.disabled = true
		s.retired.degraded = "segment codec failed: " + err.Error()
		return
	}
	seg := segment{nops: n}
	for _, o := range prefix {
		if o.Type != op.Invoke {
			seg.ncomps++
			delete(s.spans, o.Index)
		}
	}
	if s.budget.SpillDir != "" {
		seg.ref, seg.spilled = s.spillSegment(data)
	}
	if !seg.spilled {
		seg.data = data
		s.retired.bytes += len(data)
	}
	s.retired.segs = append(s.retired.segs, seg)
	s.retired.ops += seg.nops
	s.retired.comps += seg.ncomps

	// Copy the survivors into fresh backing so the retired prefix (and
	// whatever arena slabs its mops pin) is actually collectible.
	s.ops = append(make([]op.Op, 0, len(s.ops)-n), s.ops[n:]...)
	s.completion = append(make([]int, 0, len(s.completion)-n), s.completion[n:]...)
	s.invocation = append(make([]int, 0, len(s.invocation)-n), s.invocation[n:]...)
	s.base = b
}

// spillSegment writes one encoded segment to the spill file, opening it
// lazily. Any I/O failure downgrades to in-memory segments for the rest
// of the stream.
func (s *Stream) spillSegment(data []byte) (SpillRef, bool) {
	if s.retired.spill == nil {
		sp, err := NewSpill(s.budget.SpillDir)
		if err != nil {
			s.budget.SpillDir = ""
			s.retired.degraded = "spill disabled: " + err.Error()
			return SpillRef{}, false
		}
		s.retired.spill = sp
	}
	ref, err := s.retired.spill.Append(data)
	if err != nil {
		s.budget.SpillDir = ""
		s.retired.degraded = "spill disabled: " + err.Error()
		return SpillRef{}, false
	}
	return ref, true
}

// Replay invokes fn over every accepted op in order — retired segments
// decoded one at a time, then the live tail — without materializing
// the whole history. It is the bounded-memory way to walk a budgeted
// stream.
func (s *Stream) Replay(fn func(op.Op) error) error {
	var buf []byte
	for _, seg := range s.retired.segs {
		data := seg.data
		if seg.spilled {
			var err error
			buf, err = s.retired.spill.Read(seg.ref, buf[:0])
			if err != nil {
				return err
			}
			data = buf
		}
		if err := s.budget.Codec.Decode(data, fn); err != nil {
			return err
		}
	}
	for _, o := range s.ops {
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}
