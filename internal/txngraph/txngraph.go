// Package txngraph derives the transaction orderings of §5.1 that do not
// depend on object values: the per-process (session) order and the
// real-time precedence order.
//
// Process order encodes a constraint akin to sequential consistency: each
// single-threaded client should observe a logically monotonic view of the
// database. Real-time order is what strict serializability adds on top of
// serializability: if T1 completes before T2 begins, T2 must appear to take
// effect after T1.
package txngraph

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

// ProcessGraph links consecutive completions of each process with Process
// edges. Only ops that may have committed (OK or Info) participate:
// a definitely-aborted transaction imposes no session ordering on the
// versions other transactions observe.
func ProcessGraph(h *history.History) *graph.Graph {
	g := graph.New()
	for _, ops := range h.ByProcess() {
		var prev *op.Op
		for i := range ops {
			o := ops[i]
			if !o.MayHaveCommitted() {
				continue
			}
			if prev != nil {
				g.AddEdge(prev.Index, o.Index, graph.Process)
			}
			prev = &ops[i]
		}
	}
	return g
}

// TimestampGraph links transaction A to transaction B whenever the
// database's own exposed timestamps order them: A's completion carries a
// commit timestamp earlier than the start timestamp on B's invocation
// (§5.1: the time-precedes order of Adya's snapshot-isolation
// formalization). Timestamps ride in Op.Time; ops with equal timestamps
// are treated as concurrent. The same O(n·p) frontier reduction as
// RealtimeGraph applies, but over the claimed time order rather than the
// observed index order — the two differ exactly when the database's
// clock claims contradict reality.
func TimestampGraph(h *history.History) *graph.Graph {
	g := graph.New()
	type txn struct {
		opIndex int
		start   int64 // invoke op's Time: the claimed start timestamp
		commit  int64 // completion op's Time: the claimed commit timestamp
	}
	var txns []txn
	for pos, o := range h.Ops {
		if o.Type == op.Invoke || !o.MayHaveCommitted() {
			continue
		}
		invPos := -1
		inv, _ := h.Span(pos)
		// Locate the invoke op to read its Time. Spans return indices;
		// in well-formed histories the op at that index is the invoke.
		for p := pos; p >= 0; p-- {
			if h.Ops[p].Index == inv {
				invPos = p
				break
			}
		}
		start := o.Time
		if invPos >= 0 {
			start = h.Ops[invPos].Time
		}
		txns = append(txns, txn{opIndex: o.Index, start: start, commit: o.Time})
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i].start < txns[j].start })
	byCommit := make([]txn, len(txns))
	copy(byCommit, txns)
	sort.Slice(byCommit, func(i, j int) bool { return byCommit[i].commit < byCommit[j].commit })

	var frontier []txn
	ci := 0
	for _, t := range txns {
		for ci < len(byCommit) && byCommit[ci].commit < t.start {
			c := byCommit[ci]
			ci++
			kept := frontier[:0]
			for _, f := range frontier {
				if f.commit >= c.start {
					kept = append(kept, f)
				}
			}
			frontier = append(kept, c)
		}
		for _, f := range frontier {
			g.AddEdge(f.opIndex, t.opIndex, graph.Timestamp)
		}
		g.Ensure(t.opIndex)
	}
	return g
}

// RealtimeGraph links transaction A to transaction B whenever A's
// completion precedes B's invocation in the history, emitting (a
// transitive reduction of) the real-time precedence order. The sweep is
// O(n·p) for n ops and p concurrent processes, as in the paper: it
// maintains the frontier of completed transactions not yet transitively
// covered; each invocation depends on exactly the frontier, and each new
// completion evicts every frontier member that completed before the new
// transaction was invoked.
//
// Only OK and Info completions participate. Compact histories degenerate
// to a total order (every op completes before the next begins), which the
// reduction renders as a simple chain.
func RealtimeGraph(h *history.History) *graph.Graph {
	g := graph.New()
	type txn struct {
		opIndex  int // completion op index (node id)
		invoke   int // history index of invocation
		complete int // history index of completion
	}
	var txns []txn
	for pos, o := range h.Ops {
		if o.Type == op.Invoke || !o.MayHaveCommitted() {
			continue
		}
		inv, comp := h.Span(pos)
		txns = append(txns, txn{opIndex: o.Index, invoke: inv, complete: comp})
	}
	// Process events in time order: a txn "begins" at invoke and "ends" at
	// complete. Sorting by completion then sweeping invocations against
	// the frontier implements the reduction.
	sort.Slice(txns, func(i, j int) bool { return txns[i].invoke < txns[j].invoke })

	// frontier holds completed txns none of which is transitively covered
	// by a later one. Bounded by the number of concurrent processes.
	var frontier []txn
	// completions sorted by complete index, consumed as invocations pass.
	byComplete := make([]txn, len(txns))
	copy(byComplete, txns)
	sort.Slice(byComplete, func(i, j int) bool { return byComplete[i].complete < byComplete[j].complete })

	ci := 0
	for _, t := range txns {
		// Retire every txn that completed before t was invoked into the
		// frontier, evicting members it transitively covers.
		for ci < len(byComplete) && byComplete[ci].complete < t.invoke {
			c := byComplete[ci]
			ci++
			kept := frontier[:0]
			for _, f := range frontier {
				if f.complete >= c.invoke {
					kept = append(kept, f)
				}
			}
			frontier = append(kept, c)
		}
		for _, f := range frontier {
			g.AddEdge(f.opIndex, t.opIndex, graph.Realtime)
		}
		g.Ensure(t.opIndex)
	}
	return g
}
