package txngraph

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

func TestProcessGraphChainsPerProcess(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK),
		op.Txn(1, 1, op.OK),
		op.Txn(2, 0, op.OK),
		op.Txn(3, 0, op.OK),
	})
	g := ProcessGraph(h)
	if !g.Label(0, 2).Has(graph.Process) || !g.Label(2, 3).Has(graph.Process) {
		t.Error("process chain broken")
	}
	if g.Label(0, 3) != 0 {
		t.Error("process graph should be a reduction (no transitive edge)")
	}
	if g.Label(0, 1) != 0 {
		t.Error("edges must not cross processes")
	}
}

func TestProcessGraphSkipsAborted(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK),
		op.Txn(1, 0, op.Fail),
		op.Txn(2, 0, op.OK),
	})
	g := ProcessGraph(h)
	if !g.Label(0, 2).Has(graph.Process) {
		t.Error("aborted op should be skipped, chaining its neighbors")
	}
	if g.Label(0, 1) != 0 && g.Label(1, 2) != 0 {
		t.Error("aborted op should have no process edges")
	}
}

func TestRealtimeGraphCompactHistoryIsChain(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK),
		op.Txn(1, 1, op.OK),
		op.Txn(2, 2, op.OK),
	})
	g := RealtimeGraph(h)
	if !g.Label(0, 1).Has(graph.Realtime) || !g.Label(1, 2).Has(graph.Realtime) {
		t.Error("compact history should realtime-chain")
	}
	if g.Label(0, 2) != 0 {
		t.Error("transitive edge should be reduced away")
	}
}

func TestRealtimeGraphConcurrentOpsUnordered(t *testing.T) {
	// Two overlapping transactions: no realtime edge either way.
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 1, Type: op.Invoke},
		{Index: 2, Process: 0, Type: op.OK},
		{Index: 3, Process: 1, Type: op.OK},
	})
	g := RealtimeGraph(h)
	if g.Label(2, 3) != 0 || g.Label(3, 2) != 0 {
		t.Error("concurrent transactions must not be realtime-ordered")
	}
}

func TestRealtimeGraphSequentialOpsOrdered(t *testing.T) {
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 0, Type: op.OK},
		{Index: 2, Process: 1, Type: op.Invoke},
		{Index: 3, Process: 1, Type: op.OK},
	})
	g := RealtimeGraph(h)
	if !g.Label(1, 3).Has(graph.Realtime) {
		t.Error("sequential transactions must be realtime-ordered")
	}
}

func TestRealtimeGraphFrontierEviction(t *testing.T) {
	// A completes; B completes after A (B invoked after A completed);
	// C invoked after B completed should link only from B.
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 0, Type: op.OK}, // A
		{Index: 2, Process: 1, Type: op.Invoke},
		{Index: 3, Process: 1, Type: op.OK}, // B
		{Index: 4, Process: 2, Type: op.Invoke},
		{Index: 5, Process: 2, Type: op.OK}, // C
	})
	g := RealtimeGraph(h)
	if !g.Label(1, 3).Has(graph.Realtime) {
		t.Error("A -> B missing")
	}
	if !g.Label(3, 5).Has(graph.Realtime) {
		t.Error("B -> C missing")
	}
	if g.Label(1, 5) != 0 {
		t.Error("A -> C should be transitively reduced")
	}
}

func TestRealtimeGraphSkipsFailed(t *testing.T) {
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 0, Type: op.Fail},
		{Index: 2, Process: 1, Type: op.Invoke},
		{Index: 3, Process: 1, Type: op.OK},
	})
	g := RealtimeGraph(h)
	if g.Label(1, 3) != 0 {
		t.Error("failed transactions should not emit realtime edges")
	}
}

// TestRealtimeReductionCorrect cross-checks the frontier sweep against the
// full O(n²) realtime relation on random histories: the reduction must
// have exactly the same transitive closure.
func TestRealtimeReductionCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		b := history.NewBuilder()
		const procs = 4
		outstanding := map[int]bool{}
		for step := 0; step < 60; step++ {
			p := rng.Intn(procs)
			if outstanding[p] {
				b.Complete(p, op.OK, nil)
				outstanding[p] = false
			} else {
				b.Invoke(p, nil)
				outstanding[p] = true
			}
		}
		h := b.MustHistory()
		g := RealtimeGraph(h)

		// Full relation.
		type txn struct{ inv, comp int }
		var txns []txn
		for pos, o := range h.Ops {
			if o.Type == op.Invoke {
				continue
			}
			inv, comp := h.Span(pos)
			txns = append(txns, txn{inv, comp})
		}
		closure := reachability(g, h)
		for i, a := range txns {
			for j, c := range txns {
				if i == j {
					continue
				}
				want := a.comp < c.inv
				got := closure[[2]int{a.comp, c.comp}]
				if want != got {
					t.Fatalf("trial %d: realtime(%d -> %d): closure=%v, want %v",
						trial, a.comp, c.comp, got, want)
				}
			}
		}
	}
}

func reachability(g *graph.Graph, h *history.History) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, n := range g.Nodes() {
		stack := []int{n}
		seen := map[int]bool{n: true}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.Out(u, graph.Realtime.Mask(), func(v int, _ graph.KindSet) {
				if !seen[v] {
					seen[v] = true
					out[[2]int{n, v}] = true
					stack = append(stack, v)
				}
			})
		}
	}
	return out
}
