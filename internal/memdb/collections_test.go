package memdb

import (
	"sync"
	"testing"

	"repro/internal/op"
)

func TestSetBasics(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	t1 := db.Begin()
	t1.AddSet("s", 2)
	t1.AddSet("s", 1)
	if got := t1.ReadSet("s"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("own adds = %v", got)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	if got := t2.ReadSet("s"); len(got) != 2 {
		t.Fatalf("committed set = %v", got)
	}
}

func TestSetAddsCommute(t *testing.T) {
	// Two concurrent adders to the same set never conflict.
	db := New(SnapshotIsolation, Faults{}, 1)
	t1 := db.Begin()
	t2 := db.Begin()
	t1.AddSet("s", 1)
	t2.AddSet("s", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("commutative add conflicted: %v", err)
	}
	t3 := db.Begin()
	if got := t3.ReadSet("s"); len(got) != 2 {
		t.Fatalf("merged set = %v", got)
	}
}

func TestCounterBasics(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	t1 := db.Begin()
	t1.Inc("c", 3)
	t1.Inc("c", 4)
	if got := t1.ReadCounter("c"); got != 7 {
		t.Fatalf("own increments = %d", got)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	if got := t2.ReadCounter("c"); got != 7 {
		t.Fatalf("committed counter = %d", got)
	}
}

func TestCounterIncrementsCommute(t *testing.T) {
	db := New(SnapshotIsolation, Faults{}, 1)
	t1 := db.Begin()
	t2 := db.Begin()
	t1.Inc("c", 1)
	t2.Inc("c", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("commutative increment conflicted: %v", err)
	}
	t3 := db.Begin()
	if got := t3.ReadCounter("c"); got != 3 {
		t.Fatalf("merged counter = %d, want 3", got)
	}
}

func TestSerializableValidatesSetReads(t *testing.T) {
	// A transaction that read a set must abort if the set changed before
	// it commits (otherwise write skew leaks through sets even at
	// serializable).
	db := New(Serializable, Faults{}, 1)
	t1 := db.Begin()
	_ = t1.ReadSet("s")
	t2 := db.Begin()
	t2.AddSet("s", 1)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	t1.AddSet("other", 9)
	if err := t1.Commit(); err != ErrConflict {
		t.Fatalf("stale set read committed: %v", err)
	}
}

func TestSnapshotSetReads(t *testing.T) {
	db := New(SnapshotIsolation, Faults{}, 1)
	t1 := db.Begin()
	if got := t1.ReadSet("s"); len(got) != 0 {
		t.Fatalf("initial set = %v", got)
	}
	t2 := db.Begin()
	t2.AddSet("s", 1)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// t1's snapshot predates t2's commit.
	if got := t1.ReadSet("s"); len(got) != 0 {
		t.Fatalf("snapshot set read saw later commit: %v", got)
	}
}

// TestConcurrentGoroutineClients exercises the engine under real
// goroutine concurrency (the deterministic runner serializes steps; this
// test checks the DB's own locking).
func TestConcurrentGoroutineClients(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	const workers = 8
	const txnsEach = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsEach; i++ {
				tx := db.Begin()
				tx.Append("k", w*txnsEach+i)
				tx.Inc("c", 1)
				tx.AddSet("s", w*txnsEach+i)
				_ = tx.ReadList("k")
				_ = tx.Commit() // conflicts are fine; no torn state allowed
			}
		}(w)
	}
	wg.Wait()
	tx := db.Begin()
	list := tx.ReadList("k")
	ctr := tx.ReadCounter("c")
	set := tx.ReadSet("s")
	// Every commit appended exactly one element to each; all three
	// datatypes must agree on how many transactions committed... except
	// lists conflict under FCW while sets/counters commute, so list
	// commits ≤ set commits. Check internal consistency instead:
	seen := map[int]bool{}
	for _, e := range list {
		if seen[e] {
			t.Fatalf("duplicate element %d in list", e)
		}
		seen[e] = true
	}
	if ctr < len(list) {
		t.Fatalf("counter %d < list length %d", ctr, len(list))
	}
	if len(set) < len(list) {
		t.Fatalf("set size %d < list length %d", len(set), len(list))
	}
}

// TestRunnerSetWorkload drives the full runner with set mops.
func TestRunnerSetWorkload(t *testing.T) {
	src := &fixedSource{bodies: [][]op.Mop{
		{op.Add("s", 1), op.Read("s")},
		{op.Add("s", 2), op.Read("s")},
		{op.Read("s")},
	}}
	h := Run(RunConfig{
		Clients: 3, Txns: 3, Isolation: Serializable, Source: src,
		Seed: 4, Workload: WorkloadSet,
	})
	for _, o := range h.OKs() {
		for _, m := range o.Mops {
			if m.F == op.FRead && !m.ListKnown() {
				t.Fatalf("set read unknown in ok op: %v", o)
			}
		}
	}
}

// TestRunnerCounterWorkload drives the full runner with counter mops.
func TestRunnerCounterWorkload(t *testing.T) {
	src := &fixedSource{bodies: [][]op.Mop{
		{op.Increment("c", 2), op.Read("c")},
		{op.Read("c")},
	}}
	h := Run(RunConfig{
		Clients: 2, Txns: 4, Isolation: Serializable, Source: src,
		Seed: 4, Workload: WorkloadCounter,
	})
	for _, o := range h.OKs() {
		for _, m := range o.Mops {
			if m.F == op.FRead && !m.RegKnown {
				t.Fatalf("counter read unknown in ok op: %v", o)
			}
		}
	}
}
