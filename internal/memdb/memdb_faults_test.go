package memdb

// Tests pinning the granularity at which each fault knob fires — the
// contract documented on Faults. A knob documented per-operation must be
// able to mix faulty and clean operations inside one transaction; a
// per-transaction knob must hold one draw across every operation of the
// transaction.

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/op"
)

// seedVersions commits n successive writes of key, values 1..n, each in
// its own transaction, so the store has a version history to rewind.
func seedVersions(t *testing.T, db *DB, key string, n int) {
	t.Helper()
	for v := 1; v <= n; v++ {
		txn := db.Begin()
		txn.WriteReg(key, v)
		if err := txn.Commit(); err != nil {
			t.Fatalf("seed commit %d: %v", v, err)
		}
	}
}

func TestFaultGranularity(t *testing.T) {
	t.Run("skip-own-write-per-op", func(t *testing.T) {
		// One transaction appends, then reads the key many times. A
		// per-op draw at 0.5 must produce both faulty (missing own
		// append) and clean reads inside the single transaction.
		db := New(Serializable, Faults{SkipOwnWriteProb: 0.5}, 1)
		txn := db.Begin()
		txn.Append("x", 7)
		sawOwn, missedOwn := false, false
		for i := 0; i < 60; i++ {
			if len(txn.ReadList("x")) == 0 {
				missedOwn = true
			} else {
				sawOwn = true
			}
		}
		if !sawOwn || !missedOwn {
			t.Fatalf("per-op skip-own-write: sawOwn=%v missedOwn=%v; want both within one txn",
				sawOwn, missedOwn)
		}
	})

	t.Run("stale-read-per-txn", func(t *testing.T) {
		// The stale draw happens once at Begin: every read of a stale
		// transaction is rewound by the same number of commits. With
		// prob 0.5 over many transactions, both stale and fresh
		// transactions occur, but no transaction mixes values.
		db := New(Serializable, Faults{StaleReadProb: 0.5}, 1)
		seedVersions(t, db, "x", 10)
		stale, fresh := 0, 0
		for i := 0; i < 40; i++ {
			txn := db.Begin()
			first, _ := txn.ReadReg("x")
			for j := 0; j < 8; j++ {
				if v, _ := txn.ReadReg("x"); v != first {
					t.Fatalf("txn %d: reads %d and %d differ within one transaction", i, first, v)
				}
			}
			txn.Abort()
			if first == 10 {
				fresh++
			} else {
				stale++
			}
		}
		if stale == 0 || fresh == 0 {
			t.Fatalf("per-txn stale-read: stale=%d fresh=%d; want both across transactions", stale, fresh)
		}
	})

	t.Run("nil-read-per-op", func(t *testing.T) {
		db := New(Serializable, Faults{NilReadProb: 0.5}, 1)
		seedVersions(t, db, "x", 1)
		txn := db.Begin()
		sawNil, sawValue := false, false
		for i := 0; i < 60; i++ {
			if _, isNil := txn.ReadReg("x"); isNil {
				sawNil = true
			} else {
				sawValue = true
			}
		}
		if !sawNil || !sawValue {
			t.Fatalf("per-op nil-read: sawNil=%v sawValue=%v; want both within one txn", sawNil, sawValue)
		}
	})

	t.Run("duplicate-append-per-op", func(t *testing.T) {
		// Each append draws independently: with prob 0.5 over many
		// appends in one transaction, the committed list must contain
		// some doubled elements and some single ones.
		db := New(Serializable, Faults{DuplicateAppendProb: 0.5}, 1)
		txn := db.Begin()
		const n = 40
		for v := 1; v <= n; v++ {
			txn.Append("x", v)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		counts := map[int]int{}
		for _, v := range db.FinalLists()["x"] {
			counts[v]++
		}
		doubled, single := false, false
		for v := 1; v <= n; v++ {
			switch counts[v] {
			case 1:
				single = true
			case 2:
				doubled = true
			default:
				t.Fatalf("element %d appears %d times", v, counts[v])
			}
		}
		if !doubled || !single {
			t.Fatalf("per-op duplicate-append: doubled=%v single=%v; want both within one txn", doubled, single)
		}
	})

	t.Run("drop-write-per-key", func(t *testing.T) {
		// The partial-write fault draws once per key at commit: a
		// multi-key transaction can persist some keys and lose others,
		// while still reporting success.
		db := New(Serializable, Faults{DropWriteProb: 0.5}, 3)
		txn := db.Begin()
		const n = 20
		for v := 1; v <= n; v++ {
			txn.Append(key(v), v)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		installed := len(db.FinalLists())
		if installed == 0 || installed == n {
			t.Fatalf("per-key drop-write: %d of %d keys installed; want a strict subset", installed, n)
		}
	})
}

func key(v int) string {
	return string(rune('a'+v%26)) + string(rune('0'+v/26))
}

// TestDropWriteCertain: at probability 1 every committed write vanishes
// while the transaction still reports success.
func TestDropWriteCertain(t *testing.T) {
	db := New(Serializable, Faults{DropWriteProb: 1}, 1)
	txn := db.Begin()
	txn.Append("x", 1)
	txn.WriteReg("y", 2)
	txn.AddSet("s", 3)
	txn.Inc("c", 4)
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if lists := db.FinalLists(); len(lists) != 0 {
		t.Fatalf("lists installed despite drop: %v", lists)
	}
	if regs := db.FinalRegs(); len(regs) != 0 {
		t.Fatalf("registers installed despite drop: %v", regs)
	}
}

// TestDropWriteDeterministic: the per-key draws are independent of map
// iteration order — two identically seeded runs install the same keys.
func TestDropWriteDeterministic(t *testing.T) {
	run := func() map[string][]int {
		db := New(Serializable, Faults{DropWriteProb: 0.5}, 7)
		for i := 0; i < 10; i++ {
			txn := db.Begin()
			for v := 0; v < 12; v++ {
				txn.Append(key(v), i*100+v)
			}
			if err := txn.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
		}
		return db.FinalLists()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("drop-write draws depend on iteration order:\n%v\n%v", a, b)
	}
}

// TestCrashRestart: crashed clients record indeterminate ops and move to
// fresh processes; the engine rolls their transactions back, so the
// history stays valid and replayable.
func TestCrashRestart(t *testing.T) {
	mkcfg := func() RunConfig {
		return RunConfig{
			Clients: 4, Txns: 200, Isolation: Serializable,
			Source:    gen.New(gen.Config{}, 1),
			Seed:      1,
			CrashProb: 0.05,
		}
	}
	cfg := mkcfg()
	h := Run(cfg)
	infos, processes := 0, map[int]bool{}
	for _, o := range h.Ops {
		if o.Type == op.Info {
			infos++
		}
		processes[o.Process] = true
	}
	if infos == 0 {
		t.Fatal("no indeterminate ops recorded despite crashes")
	}
	if len(processes) <= cfg.Clients {
		t.Fatalf("%d processes for %d clients; crashed threads should restart as fresh processes",
			len(processes), cfg.Clients)
	}
	// Same seed, same history.
	if !reflect.DeepEqual(h.Ops, Run(mkcfg()).Ops) {
		t.Fatal("crash scheduling not reproducible")
	}
}

// TestClockSkew: skewed stamps diverge from the engine's commit order
// but stay positive, and the fault is reproducible.
func TestClockSkew(t *testing.T) {
	base := RunConfig{
		Clients: 4, Txns: 200, Isolation: Serializable,
		Source:           gen.New(gen.Config{}, 1),
		Seed:             1,
		ExposeTimestamps: true,
	}
	skewed := base
	skewed.Source = gen.New(gen.Config{}, 1)
	skewed.ClockSkewProb = 1
	skewed.ClockSkewMax = 5

	clean := Run(base)
	h := Run(skewed)
	if len(clean.Ops) != len(h.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(clean.Ops), len(h.Ops))
	}
	differs := false
	for i := range h.Ops {
		if h.Ops[i].Time < 1 {
			t.Fatalf("op %d stamped %d; skew must clamp to >= 1", i, h.Ops[i].Time)
		}
		if h.Ops[i].Time != clean.Ops[i].Time {
			differs = true
		}
	}
	if !differs {
		t.Fatal("skew at probability 1 left every timestamp unchanged")
	}
}
