package memdb

// This file adds the paper's two weaker datatypes (Figure 1) to the
// engine: grow-only sets and integer counters. Both are commutative:
// concurrent writes never conflict with each other (as in real databases
// with native set/counter types), so snapshot-isolation's
// first-committer-wins does not apply to them. Serializable read
// validation still covers keys read through them.
//
// They exist so the datatype-ablation experiments can run the same bug
// campaigns over registers, sets, counters, and lists and compare what
// each analyzer can detect — the paper's §3 argument made executable.

import (
	"sort"

	"repro/internal/history"
)

// AddSet adds an element to a set key (buffered until commit).
func (t *Txn) AddSet(key string, elem int) {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)
	if t.setAdds == nil {
		t.setAdds = map[history.KeyID][]int{}
	}
	t.setAdds[id] = append(t.setAdds[id], elem)
}

// ReadSet returns the observed set contents, sorted ascending.
func (t *Txn) ReadSet(key string) []int {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)
	t.readKeys[id] = true
	if db.faults.NilReadProb > 0 && db.rng.Float64() < db.faults.NilReadProb {
		return []int{}
	}
	base := db.visibleSet(id, t.readTS())
	merged := make(map[int]bool, len(base)+4)
	for _, e := range base {
		merged[e] = true
	}
	skipOwn := db.faults.SkipOwnWriteProb > 0 && db.rng.Float64() < db.faults.SkipOwnWriteProb
	if !skipOwn {
		for _, e := range t.setAdds[id] {
			merged[e] = true
		}
	}
	out := make([]int, 0, len(merged))
	for e := range merged {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// Inc adds delta to a counter key (buffered until commit).
func (t *Txn) Inc(key string, delta int) {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)
	if t.ctrIncs == nil {
		t.ctrIncs = map[history.KeyID]int{}
	}
	t.ctrIncs[id] += delta
}

// ReadCounter returns the observed counter value.
func (t *Txn) ReadCounter(key string) int {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)
	t.readKeys[id] = true
	if db.faults.NilReadProb > 0 && db.rng.Float64() < db.faults.NilReadProb {
		return 0
	}
	v := db.visibleCounter(id, t.readTS())
	skipOwn := db.faults.SkipOwnWriteProb > 0 && db.rng.Float64() < db.faults.SkipOwnWriteProb
	if !skipOwn {
		v += t.ctrIncs[id]
	}
	return v
}

// visibleSet returns the committed set contents at snapTS. Sets are
// stored as their cumulative sorted contents per version.
func (db *DB) visibleSet(key history.KeyID, snapTS int64) []int {
	vs := db.sets[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].ts <= snapTS {
			return vs[i].list
		}
	}
	return nil
}

// visibleCounter returns the committed counter value at snapTS.
func (db *DB) visibleCounter(key history.KeyID, snapTS int64) int {
	vs := db.counters[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].ts <= snapTS {
			return vs[i].reg
		}
	}
	return 0
}

// commitCollections installs buffered set adds and counter increments,
// skipping keys the partial-write fault dropped. Both datatypes are
// commutative, so they merge with the latest committed state rather
// than replacing it. Called with db.mu held, after ts increment.
func (t *Txn) commitCollections(now int64, dropped map[history.KeyID]bool) {
	db := t.db
	for key, elems := range t.setAdds {
		if dropped[key] {
			continue
		}
		cur := db.visibleSet(key, now)
		merged := make(map[int]bool, len(cur)+len(elems))
		for _, e := range cur {
			merged[e] = true
		}
		for _, e := range elems {
			merged[e] = true
		}
		out := make([]int, 0, len(merged))
		for e := range merged {
			out = append(out, e)
		}
		sort.Ints(out)
		db.sets[key] = append(db.sets[key], version{ts: now, list: out})
	}
	for key, delta := range t.ctrIncs {
		if dropped[key] {
			continue
		}
		cur := db.visibleCounter(key, now)
		db.counters[key] = append(db.counters[key], version{ts: now, reg: cur + delta})
	}
}
