package memdb

import (
	"sort"

	"repro/internal/history"
)

// Txn is one interactive transaction. Transactions are not safe for
// concurrent use by multiple goroutines; the DB itself is.
type Txn struct {
	db        *DB
	startTS   int64
	staleBack int64 // stale-read fault: reads rewound this many commits
	skipRead  bool  // YugaByte fault: commit skips read validation
	done      bool

	// Per-key list state. The read pin (what the client is shown) and
	// the write base (what commit installs under) are tracked separately
	// because the YugaByte fault (§7.2) makes the read path diverge from
	// the write path: stale reads must not rebase the transaction's
	// read-modify-writes, or every stale read would also be a lost
	// update, which is not that bug's signature.
	lists map[history.KeyID]*listState

	readKeys map[history.KeyID]bool // keys read, for serializable validation
	regBuf   map[history.KeyID]int
	regWrote map[history.KeyID]bool
	setAdds  map[history.KeyID][]int // buffered set adds (commutative)
	ctrIncs  map[history.KeyID]int   // buffered counter increments (commutative)
}

type listState struct {
	pin      []int // value shown to reads (possibly stale), sans own appends
	pinned   bool
	base     []int // true-snapshot value commit installs under
	based    bool
	appended []int // own appends, in order (duplicates included)
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := &Txn{
		db:       db,
		startTS:  db.ts,
		lists:    map[history.KeyID]*listState{},
		readKeys: map[history.KeyID]bool{},
		regBuf:   map[history.KeyID]int{},
		regWrote: map[history.KeyID]bool{},
	}
	if db.faults.StaleReadProb > 0 && db.rng.Float64() < db.faults.StaleReadProb {
		t.staleBack = int64(1 + db.rng.Intn(3))
	}
	if db.faults.SkipReadValidationProb > 0 && db.rng.Float64() < db.faults.SkipReadValidationProb {
		t.skipRead = true
	}
	return t
}

func (t *Txn) list(key history.KeyID) *listState {
	s, ok := t.lists[key]
	if !ok {
		s = &listState{}
		t.lists[key] = s
	}
	return s
}

// snapshotTS returns the timestamp writes base on: the start snapshot for
// SI and serializable levels, the current state otherwise. Called with
// db.mu held.
func (t *Txn) snapshotTS() int64 {
	switch t.db.iso {
	case SnapshotIsolation, Serializable, StrictSerializable:
		return t.startTS
	default:
		return t.db.ts
	}
}

// readTS returns the timestamp reads observe: the snapshot, possibly
// rewound by the YugaByte stale-timestamp fault. Called with db.mu held.
func (t *Txn) readTS() int64 {
	ts := t.snapshotTS() - t.staleBack
	if ts < 0 {
		return 0
	}
	return ts
}

// ReadList performs a list read mop.
func (t *Txn) ReadList(key string) []int {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)
	t.readKeys[id] = true

	if db.faults.NilReadProb > 0 && db.rng.Float64() < db.faults.NilReadProb {
		return nil
	}
	if db.iso == ReadUncommitted {
		// Shared state already contains everyone's writes.
		return cloneInts(db.visibleList(id, db.ts))
	}

	s := t.list(id)
	if len(s.appended) > 0 {
		// A read of a key this transaction already appended to is served
		// from the write path (as a SQL SELECT sees the transaction's own
		// uncommitted row version), never from a stale pin.
		if db.faults.SkipOwnWriteProb > 0 && db.rng.Float64() < db.faults.SkipOwnWriteProb {
			// FaunaDB (§7.3): the transaction's own appends are missing.
			return cloneInts(s.base)
		}
		return concat(s.base, s.appended)
	}
	if !s.pinned {
		// The pin may be stale (YugaByte, §7.2); the write base, set in
		// Append, never is.
		s.pin = cloneInts(db.visibleList(id, t.readTS()))
		s.pinned = true
	}
	if db.faults.SkipOwnWriteProb > 0 && db.rng.Float64() < db.faults.SkipOwnWriteProb {
		return cloneInts(s.pin)
	}
	return cloneInts(s.pin)
}

// Append performs a list-append mop: a read-modify-write on the whole
// list value, as the case-study databases implemented it.
func (t *Txn) Append(key string, elem int) {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)

	dup := db.faults.DuplicateAppendProb > 0 && db.rng.Float64() < db.faults.DuplicateAppendProb

	if db.iso == ReadUncommitted {
		if db.dropWrite() {
			return
		}
		// Apply immediately to shared state.
		cur := cloneInts(db.visibleList(id, db.ts))
		cur = append(cur, elem)
		if dup {
			cur = append(cur, elem)
		}
		db.ts++
		db.lists[id] = append(db.lists[id], version{ts: db.ts, list: cur})
		return
	}

	s := t.list(id)
	if !s.based {
		s.base = cloneInts(db.visibleList(id, t.snapshotTS()))
		s.based = true
	}
	s.appended = append(s.appended, elem)
	if dup {
		s.appended = append(s.appended, elem)
	}
}

// ReadReg performs a register read mop, returning (value, isNil).
func (t *Txn) ReadReg(key string) (int, bool) {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)
	t.readKeys[id] = true

	if db.faults.NilReadProb > 0 && db.rng.Float64() < db.faults.NilReadProb {
		return 0, true
	}
	if db.iso == ReadUncommitted {
		return db.visibleReg(id, db.ts)
	}
	skipOwn := db.faults.SkipOwnWriteProb > 0 && db.rng.Float64() < db.faults.SkipOwnWriteProb
	if t.regWrote[id] && !skipOwn {
		return t.regBuf[id], false
	}
	return db.visibleReg(id, t.readTS())
}

// WriteReg performs a blind register write mop.
func (t *Txn) WriteReg(key string, v int) {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.intern(key)

	if db.iso == ReadUncommitted {
		if db.dropWrite() {
			return
		}
		db.ts++
		db.regs[id] = append(db.regs[id], version{ts: db.ts, reg: v})
		return
	}
	t.regBuf[id] = v
	t.regWrote[id] = true
}

// Commit attempts to commit, applying the level's validation rules.
// On ErrConflict the transaction is finished and its effects (under
// buffered levels) discarded.
func (t *Txn) Commit() error {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if t.done {
		return nil
	}
	t.done = true

	if db.iso == ReadUncommitted {
		return nil // already applied
	}

	conflict := false
	switch db.iso {
	case SnapshotIsolation, Serializable, StrictSerializable:
		// First-committer-wins on the write set only; reads are
		// validated separately (and only) by the serializable levels,
		// which is what leaves write skew possible under SI.
		for key, s := range t.lists {
			if len(s.appended) > 0 && newerThan(db.lists[key], t.startTS) {
				conflict = true
			}
		}
		for key := range t.regWrote {
			if newerThan(db.regs[key], t.startTS) {
				conflict = true
			}
		}
	}
	if (db.iso == Serializable || db.iso == StrictSerializable) && !t.skipRead {
		for key := range t.readKeys {
			if newerThan(db.lists[key], t.startTS) || newerThan(db.regs[key], t.startTS) ||
				newerThan(db.sets[key], t.startTS) || newerThan(db.counters[key], t.startTS) {
				conflict = true
			}
		}
	}

	rebase := false
	if conflict {
		// TiDB's automatic retries (§7.1). A "stomp" re-applies the
		// buffered writes from the stale snapshot, erasing concurrent
		// updates (lost update). A "rebase" re-executes the writes on
		// top of the latest committed state while the client keeps its
		// original snapshot reads (read skew: G-single).
		switch {
		case db.faults.RetryStompProb > 0 && db.rng.Float64() < db.faults.RetryStompProb:
			// Install stale buffers below.
		case db.faults.RetryRebaseProb > 0 && db.rng.Float64() < db.faults.RetryRebaseProb:
			rebase = true
		default:
			return ErrConflict
		}
	}

	dropped := t.dropSet()
	db.ts++
	now := db.ts
	for key, s := range t.lists {
		if len(s.appended) == 0 || dropped[key] {
			continue
		}
		base := s.base
		if rebase {
			base = db.visibleList(key, db.ts-1)
		}
		db.lists[key] = append(db.lists[key], version{ts: now, list: concat(base, s.appended)})
	}
	for key := range t.regWrote {
		if dropped[key] {
			continue
		}
		db.regs[key] = append(db.regs[key], version{ts: now, reg: t.regBuf[key]})
	}
	t.commitCollections(now, dropped)
	return nil
}

// dropWrite draws the partial-write fault for one immediate write.
// Called with db.mu held.
func (db *DB) dropWrite() bool {
	return db.faults.DropWriteProb > 0 && db.rng.Float64() < db.faults.DropWriteProb
}

// dropSet draws the partial-write fault once per key this transaction's
// commit would install. Keys are visited in sorted order so the seeded
// RNG's draws do not depend on map iteration order. Returns nil when
// the fault is disabled. Called with db.mu held.
func (t *Txn) dropSet() map[history.KeyID]bool {
	db := t.db
	if db.faults.DropWriteProb == 0 {
		return nil
	}
	var ids []history.KeyID
	for key, s := range t.lists {
		if len(s.appended) > 0 {
			ids = append(ids, key)
		}
	}
	for key := range t.regWrote {
		ids = append(ids, key)
	}
	for key := range t.setAdds {
		ids = append(ids, key)
	}
	for key := range t.ctrIncs {
		ids = append(ids, key)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dropped := make(map[history.KeyID]bool, len(ids))
	for _, id := range ids {
		if db.rng.Float64() < db.faults.DropWriteProb {
			dropped[id] = true
		}
	}
	return dropped
}

// Abort abandons the transaction. Under read uncommitted the damage is
// already done — writes stay, simulating a database that fails to roll
// back (the source of G1a and dirty updates in the fault campaigns).
func (t *Txn) Abort() {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	t.done = true
}

func cloneInts(xs []int) []int {
	if xs == nil {
		return nil
	}
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}

func concat(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}
