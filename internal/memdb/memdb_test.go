package memdb

import (
	"testing"

	"repro/internal/gen"

	"repro/internal/op"
)

func TestSerializableBasicRMW(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	t1 := db.Begin()
	t1.Append("x", 1)
	if err := t1.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	t2 := db.Begin()
	if got := t2.ReadList("x"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("read = %v", got)
	}
	t2.Append("x", 2)
	if got := t2.ReadList("x"); len(got) != 2 {
		t.Fatalf("own append invisible: %v", got)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	t3 := db.Begin()
	if got := t3.ReadList("x"); len(got) != 2 || got[1] != 2 {
		t.Fatalf("final read = %v", got)
	}
}

func TestSnapshotReadsIgnoreLaterCommits(t *testing.T) {
	db := New(SnapshotIsolation, Faults{}, 1)
	t1 := db.Begin()
	// Pin x's snapshot before anyone writes.
	if got := t1.ReadList("x"); len(got) != 0 {
		t.Fatalf("initial read = %v", got)
	}
	t2 := db.Begin()
	t2.Append("x", 1)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// T1 still sees its snapshot.
	if got := t1.ReadList("x"); len(got) != 0 {
		t.Fatalf("snapshot read saw later commit: %v", got)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	db := New(SnapshotIsolation, Faults{}, 1)
	t1 := db.Begin()
	t2 := db.Begin()
	t1.Append("x", 1)
	t2.Append("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer should win: %v", err)
	}
	if err := t2.Commit(); err != ErrConflict {
		t.Fatalf("second committer should conflict, got %v", err)
	}
	t3 := db.Begin()
	if got := t3.ReadList("x"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("state after conflict = %v", got)
	}
}

func TestSnapshotIsolationAllowsWriteSkew(t *testing.T) {
	db := New(SnapshotIsolation, Faults{}, 1)
	t1 := db.Begin()
	t2 := db.Begin()
	_ = t1.ReadList("x")
	_ = t2.ReadList("y")
	t1.Append("y", 1)
	t2.Append("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("write skew must be allowed under SI: %v", err)
	}
}

func TestSerializableForbidsWriteSkew(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	// Seed both keys so the reads have something to validate against.
	t0 := db.Begin()
	t0.Append("x", 100)
	t0.Append("y", 200)
	if err := t0.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := db.Begin()
	t2 := db.Begin()
	_ = t1.ReadList("x")
	_ = t2.ReadList("y")
	t1.Append("y", 1)
	t2.Append("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := t2.Commit(); err != ErrConflict {
		t.Fatalf("serializable must reject write skew, got %v", err)
	}
}

func TestRetryOnConflictLosesUpdates(t *testing.T) {
	db := New(SnapshotIsolation, Faults{RetryStompProb: 1}, 1)
	t1 := db.Begin()
	t2 := db.Begin()
	t1.Append("x", 1)
	t2.Append("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("retry-on-conflict should commit anyway: %v", err)
	}
	t3 := db.Begin()
	got := t3.ReadList("x")
	// T2's stale buffer [2] overwrote [1]: the update was lost.
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("expected lost update [2], got %v", got)
	}
}

func TestReadCommittedSeesLatest(t *testing.T) {
	db := New(ReadCommitted, Faults{}, 1)
	t1 := db.Begin()
	t2 := db.Begin()
	t2.Append("x", 1)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Read committed sees the commit even though t1 began first.
	if got := t1.ReadList("x"); len(got) != 1 {
		t.Fatalf("read committed should see latest commit: %v", got)
	}
}

func TestReadUncommittedDirtyReads(t *testing.T) {
	db := New(ReadUncommitted, Faults{}, 1)
	t1 := db.Begin()
	t1.Append("x", 1)
	t2 := db.Begin()
	if got := t2.ReadList("x"); len(got) != 1 {
		t.Fatalf("dirty read missing: %v", got)
	}
	// Abort does not roll back: the aborted write stays visible.
	t1.Abort()
	t3 := db.Begin()
	if got := t3.ReadList("x"); len(got) != 1 {
		t.Fatalf("aborted write should remain visible under RU: %v", got)
	}
}

func TestRegisters(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	t1 := db.Begin()
	if _, isNil := t1.ReadReg("r"); !isNil {
		t.Fatal("unwritten register should read nil")
	}
	t1.WriteReg("r", 5)
	if v, isNil := t1.ReadReg("r"); isNil || v != 5 {
		t.Fatalf("own write invisible: %d, %v", v, isNil)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	if v, _ := t2.ReadReg("r"); v != 5 {
		t.Fatalf("committed register read = %d", v)
	}
}

func TestSkipOwnWriteFault(t *testing.T) {
	db := New(Serializable, Faults{SkipOwnWriteProb: 1}, 1)
	t1 := db.Begin()
	t1.Append("x", 1)
	if got := t1.ReadList("x"); len(got) != 0 {
		t.Fatalf("skip-own-write fault should hide the append, got %v", got)
	}
}

func TestNilReadFault(t *testing.T) {
	db := New(Serializable, Faults{NilReadProb: 1}, 1)
	t0 := db.Begin()
	t0.WriteReg("r", 9)
	if err := t0.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := db.Begin()
	if _, isNil := t1.ReadReg("r"); !isNil {
		t.Fatal("nil-read fault should return nil")
	}
}

func TestDuplicateAppendFault(t *testing.T) {
	db := New(Serializable, Faults{DuplicateAppendProb: 1}, 1)
	t1 := db.Begin()
	t1.Append("x", 7)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	got := t2.ReadList("x")
	if len(got) != 2 || got[0] != 7 || got[1] != 7 {
		t.Fatalf("expected duplicated element, got %v", got)
	}
}

func TestStaleReadFault(t *testing.T) {
	db := New(Serializable, Faults{StaleReadProb: 1}, 1)
	for i := 1; i <= 5; i++ {
		tx := db.Begin()
		tx.Append("x", i)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin()
	got := tx.ReadList("x")
	if len(got) >= 5 {
		t.Fatalf("stale read should miss recent commits, got %v", got)
	}
}

func TestIsolationStrings(t *testing.T) {
	want := map[Isolation]string{
		ReadUncommitted:    "read-uncommitted",
		ReadCommitted:      "read-committed",
		SnapshotIsolation:  "snapshot-isolation",
		Serializable:       "serializable",
		StrictSerializable: "strict-serializable",
	}
	for iso, s := range want {
		if iso.String() != s {
			t.Errorf("%d.String() = %q, want %q", iso, iso.String(), s)
		}
	}
}

func TestCommitIdempotent(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	t1 := db.Begin()
	t1.Append("x", 1)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("double commit should be a no-op: %v", err)
	}
	t2 := db.Begin()
	if got := t2.ReadList("x"); len(got) != 1 {
		t.Fatalf("double commit double-applied: %v", got)
	}
}

// fixedSource replays a fixed sequence of transaction bodies.
type fixedSource struct {
	bodies [][]op.Mop
	i      int
}

func (f *fixedSource) Next() []op.Mop {
	b := f.bodies[f.i%len(f.bodies)]
	f.i++
	return b
}

func TestRunProducesWellFormedHistory(t *testing.T) {
	src := &fixedSource{bodies: [][]op.Mop{
		{op.Append("x", 1), op.Read("x")},
		{op.Read("x"), op.Append("x", 2)},
		{op.Read("x")},
	}}
	h := Run(RunConfig{
		Clients: 3, Txns: 3, Isolation: Serializable, Source: src, Seed: 9,
	})
	if h.Compact() {
		t.Fatal("runner histories should have invoke/completion pairs")
	}
	comps := h.Completions()
	if len(comps) != 3 {
		t.Fatalf("expected 3 completions, got %d", len(comps))
	}
	for _, o := range comps {
		if o.Type == op.OK {
			for _, m := range o.Mops {
				if m.F == op.FRead && !m.ListKnown() {
					t.Errorf("ok op has unknown read: %v", o)
				}
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() *fixedSource {
		return &fixedSource{bodies: [][]op.Mop{
			{op.Append("x", 1), op.Read("y")},
			{op.Append("y", 2), op.Read("x")},
			{op.Read("x"), op.Append("x", 3)},
		}}
	}
	h1 := Run(RunConfig{Clients: 4, Txns: 9, Isolation: SnapshotIsolation, Source: mk(), Seed: 42})
	h2 := Run(RunConfig{Clients: 4, Txns: 9, Isolation: SnapshotIsolation, Source: mk(), Seed: 42})
	if len(h1.Ops) != len(h2.Ops) {
		t.Fatalf("lengths differ: %d vs %d", len(h1.Ops), len(h2.Ops))
	}
	for i := range h1.Ops {
		a, b := h1.Ops[i], h2.Ops[i]
		if a.Type != b.Type || a.Process != b.Process || len(a.Mops) != len(b.Mops) {
			t.Fatalf("op %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestRunInfoSpawnsNewProcess(t *testing.T) {
	src := &fixedSource{bodies: [][]op.Mop{{op.Append("x", 1)}}}
	h := Run(RunConfig{
		Clients: 1, Txns: 5, Isolation: Serializable, Source: src,
		Seed: 3, InfoProb: 1,
	})
	// Every attempt is an info; each one moves the client to a fresh
	// process, so we should see 5 distinct processes.
	procs := map[int]bool{}
	for _, o := range h.Completions() {
		if o.Type != op.Info {
			t.Fatalf("expected info, got %v", o.Type)
		}
		procs[o.Process] = true
	}
	if len(procs) != 5 {
		t.Errorf("expected 5 distinct processes, got %d", len(procs))
	}
}

func TestRunAbortProbProducesFails(t *testing.T) {
	src := &fixedSource{bodies: [][]op.Mop{{op.Append("x", 1)}}}
	h := Run(RunConfig{
		Clients: 1, Txns: 10, Isolation: Serializable, Source: src,
		Seed: 3, AbortProb: 1,
	})
	for _, o := range h.Completions() {
		if o.Type != op.Fail {
			t.Fatalf("expected fail, got %v", o.Type)
		}
	}
}

func TestSkipReadValidationFault(t *testing.T) {
	// With the YugaByte fault forced on, a serializable engine admits
	// write skew: both transactions' read sets go unvalidated.
	db := New(Serializable, Faults{SkipReadValidationProb: 1}, 1)
	t0 := db.Begin()
	t0.Append("x", 100)
	t0.Append("y", 200)
	if err := t0.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := db.Begin()
	t2 := db.Begin()
	_ = t1.ReadList("x")
	_ = t2.ReadList("y")
	t1.Append("y", 1)
	t2.Append("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("skip-read-validation should admit write skew: %v", err)
	}
}

func TestRetryRebasePreservesConcurrentAppends(t *testing.T) {
	// A rebased retry keeps the other transaction's element (read skew,
	// not lost update).
	db := New(SnapshotIsolation, Faults{RetryRebaseProb: 1}, 1)
	t1 := db.Begin()
	t2 := db.Begin()
	t1.Append("x", 1)
	t2.Append("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("rebase retry should commit: %v", err)
	}
	t3 := db.Begin()
	got := t3.ReadList("x")
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("rebased state = %v, want [1 2]", got)
	}
}

func TestFinalListsGroundTruth(t *testing.T) {
	db := New(Serializable, Faults{}, 1)
	tx := db.Begin()
	tx.Append("k", 1)
	tx.Append("k", 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	truth := db.FinalLists()
	if got := truth["k"]; len(got) != 2 || got[1] != 2 {
		t.Fatalf("FinalLists = %v", truth)
	}
	// The dump must be a copy, not an alias.
	truth["k"][0] = 99
	tx2 := db.Begin()
	if got := tx2.ReadList("k"); got[0] != 1 {
		t.Fatal("FinalLists aliased engine state")
	}
}

// TestBankRunConservesMoney: under the correct serializable engine the
// bank workload's ground truth holds — the opening deposit's total is
// conserved and no account ever ends negative — and the recorded
// history's committed writes are absolute balances, not deltas.
func TestBankRunConservesMoney(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.New(gen.Config{Workload: gen.Bank, ActiveKeys: 4}, seed)
		h, db := RunOnDB(RunConfig{
			Clients: 8, Txns: 300, Isolation: StrictSerializable,
			Source: g, Seed: seed, Workload: WorkloadBank,
		})
		regs := db.FinalRegs()
		total := 0
		for k, v := range regs {
			if v < 0 {
				t.Fatalf("seed %d: account %s ends at %d", seed, k, v)
			}
			total += v
		}
		if want := 4 * 100; total != want {
			t.Fatalf("seed %d: final total %d, want %d", seed, total, want)
		}
		for _, o := range h.OKs() {
			for _, m := range o.Mops {
				if m.F == op.FWrite && m.Arg < 0 {
					t.Fatalf("seed %d: committed %s recorded a delta, not a balance: %v",
						seed, o.Name(), m)
				}
			}
		}
	}
}
