package memdb

import (
	"math/rand"

	"repro/internal/history"
	"repro/internal/op"
)

// TxnSource supplies transaction bodies; satisfied by *gen.Gen.
type TxnSource interface {
	Next() []op.Mop
}

// Workload selects the read semantics the runner uses for read mops; it
// must match the TxnSource's write mops.
type Workload uint8

const (
	// WorkloadList reads append-only lists.
	WorkloadList Workload = iota
	// WorkloadRegister reads registers.
	WorkloadRegister
	// WorkloadSet reads grow-only sets.
	WorkloadSet
	// WorkloadCounter reads counters.
	WorkloadCounter
	// WorkloadBank executes bank transfers over register accounts. A
	// write mop's Arg is a signed *delta*: execution reads the account
	// inside the transaction and installs balance+delta, recording the
	// installed balance (not the delta) in the completed mop. A
	// transfer that would drive an account negative aborts, as a
	// correct banking client must — which is exactly what makes the
	// history self-checking: under sound isolation the total balance is
	// invariant and no balance goes negative.
	WorkloadBank
)

// bankInitialBalance is each account's opening deposit; Run installs it
// with a committed all-accounts write transaction recorded at the head
// of the history, so a black-box checker can recover both the account
// set and the invariant total from the observation itself.
const bankInitialBalance = 100

// RunConfig drives a simulated multi-client run against one DB.
type RunConfig struct {
	// Clients is the number of concurrent logical client threads
	// (the paper ran 10–30 client threads; Figure 4 sweeps 1–100).
	Clients int
	// Txns is the total number of transaction attempts across clients.
	Txns int
	// Isolation selects the engine's concurrency control.
	Isolation Isolation
	// Faults configures bug injection.
	Faults Faults
	// Source generates transaction bodies.
	Source TxnSource
	// Seed makes the whole run — scheduling, faults, outcomes —
	// reproducible.
	Seed int64
	// AbortProb makes a client abandon a transaction before commit.
	AbortProb float64
	// InfoProb simulates a lost commit acknowledgement: the client
	// records an indeterminate (info) result; the commit itself may or
	// may not have happened. As in Jepsen, the client thread then moves
	// to a fresh logical process, so logical concurrency grows over time.
	InfoProb float64
	// CrashProb makes a client process crash before each micro-op with
	// this probability: the engine's connection teardown discards the
	// transaction's buffered writes (under ReadUncommitted the
	// already-applied prefix stays), the op is recorded indeterminate —
	// the crashed client never learned an outcome — and the thread
	// restarts as a fresh logical process.
	CrashProb float64
	// ClockSkewProb perturbs each timestamp recorded under
	// ExposeTimestamps by ±[1, ClockSkewMax] ticks, simulating client
	// wall clocks drifting from the engine's commit order. Only
	// meaningful with ExposeTimestamps.
	ClockSkewProb float64
	// ClockSkewMax bounds the skew magnitude in ticks; 0 means 3.
	ClockSkewMax int64
	// ExposeTimestamps stamps invoke ops with the engine's timestamp at
	// transaction start and completion ops with the timestamp after
	// commit, simulating a database that exposes transaction timestamps
	// to clients (§5.1). Times are offset by one so the zero value never
	// collides with the builder's defaulting.
	ExposeTimestamps bool
	// Register selects register read semantics for read mops; a legacy
	// shorthand for Workload = WorkloadRegister.
	Register bool
	// Workload selects read semantics (default WorkloadList).
	Workload Workload
}

// Run simulates cfg.Clients single-threaded clients executing cfg.Txns
// transactions against a fresh DB, interleaving at micro-op granularity
// under a seeded scheduler, and returns the observed history (complete,
// with invoke/completion pairs).
//
// Determinism: every random choice (scheduling, fault firing, outcomes)
// flows from cfg.Seed, so a run is exactly reproducible — which the test
// suite and benchmarks rely on.
func Run(cfg RunConfig) *history.History {
	h, _ := RunOnDB(cfg)
	return h
}

// RunOnDB is Run but also returns the engine, so callers (tests,
// ground-truth comparisons) can inspect the final committed state.
func RunOnDB(cfg RunConfig) (*history.History, *DB) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Register {
		cfg.Workload = WorkloadRegister
	}
	db := New(cfg.Isolation, cfg.Faults, cfg.Seed+1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := history.NewBuilder()

	// stamp reads the client's wall clock: the engine timestamp, offset
	// by one so the zero value never collides with the builder's
	// defaulting, and — under the clock-skew fault — perturbed by a few
	// ticks in either direction (clamped to stay positive).
	stamp := func() int64 {
		t := db.CurrentTS() + 1
		if cfg.ClockSkewProb > 0 && rng.Float64() < cfg.ClockSkewProb {
			max := cfg.ClockSkewMax
			if max <= 0 {
				max = 3
			}
			d := 1 + rng.Int63n(max)
			if rng.Intn(2) == 0 {
				d = -d
			}
			if t += d; t < 1 {
				t = 1
			}
		}
		return t
	}

	if cfg.Workload == WorkloadBank {
		openBankAccounts(cfg, db, b)
	}

	type client struct {
		process int
		txn     *Txn
		mops    []op.Mop // template (reads unknown)
		results []op.Mop // filled as we execute
		step    int
	}
	clients := make([]*client, cfg.Clients)
	nextProcess := 0
	for i := range clients {
		clients[i] = &client{process: nextProcess}
		nextProcess++
	}

	started := 0
	active := 0
	for {
		// Pick a random client.
		c := clients[rng.Intn(len(clients))]
		if c.txn == nil {
			if started >= cfg.Txns {
				if active == 0 {
					break
				}
				continue
			}
			// Begin a new transaction.
			c.mops = cfg.Source.Next()
			c.results = make([]op.Mop, len(c.mops))
			copy(c.results, c.mops)
			c.step = 0
			if cfg.ExposeTimestamps {
				b.Append(op.Op{Process: c.process, Type: op.Invoke,
					Mops: c.mops, Time: stamp()})
			} else {
				b.Invoke(c.process, c.mops)
			}
			c.txn = db.Begin()
			started++
			active++
			continue
		}

		complete := func(t op.Type, mops []op.Mop) {
			if cfg.ExposeTimestamps {
				b.Append(op.Op{Process: c.process, Type: t,
					Mops: mops, Time: stamp()})
			} else {
				b.Complete(c.process, t, mops)
			}
		}

		if c.step < len(c.mops) {
			if cfg.CrashProb > 0 && rng.Float64() < cfg.CrashProb {
				// The client process crashes mid-transaction: the
				// connection teardown aborts the uncommitted transaction
				// engine-side, but the client never learns an outcome, so
				// the op is recorded indeterminate with its template mops
				// (results unknown) and the thread restarts as a fresh
				// process — Jepsen's recording of a crashed worker.
				active--
				c.txn.Abort()
				complete(op.Info, c.mops)
				c.process = nextProcess
				nextProcess++
				c.txn = nil
				continue
			}
			m := c.mops[c.step]
			res, insufficient := executeMop(c.txn, m, cfg.Workload)
			if insufficient {
				// A bank transfer found the source account short: the
				// client aborts rather than overdraw.
				active--
				c.txn.Abort()
				complete(op.Fail, c.mops)
				c.txn = nil
				continue
			}
			c.results[c.step] = res
			c.step++
			continue
		}

		// All mops done: decide the outcome.
		active--
		switch {
		case cfg.AbortProb > 0 && rng.Float64() < cfg.AbortProb:
			c.txn.Abort()
			complete(op.Fail, c.mops)
		case cfg.InfoProb > 0 && rng.Float64() < cfg.InfoProb:
			// The commit was sent but the acknowledgement lost.
			if rng.Intn(2) == 0 {
				_ = c.txn.Commit()
			} else {
				c.txn.Abort()
			}
			if cfg.Workload == WorkloadBank {
				// The client did execute its mops (only the commit ack
				// vanished), so it knows the balances its deltas
				// resolved to; record them, as a Jepsen client would.
				// Without this, indeterminate writes would be recorded
				// as deltas and the checker could not recover the
				// possibly-installed balances.
				complete(op.Info, c.results)
			} else {
				complete(op.Info, c.mops)
			}
			// The client thread abandons this process, as Jepsen does.
			c.process = nextProcess
			nextProcess++
		default:
			if err := c.txn.Commit(); err != nil {
				complete(op.Fail, c.mops)
			} else {
				complete(op.OK, c.results)
			}
		}
		c.txn = nil
	}
	return b.MustHistory(), db
}

// executeMop runs one micro-op against the transaction and returns the
// completed mop with its observed value filled in. The second result is
// true only for a bank write that would overdraw its account, asking
// the runner to abort the transaction.
func executeMop(t *Txn, m op.Mop, w Workload) (op.Mop, bool) {
	switch m.F {
	case op.FAppend:
		t.Append(m.Key, m.Arg)
		return m, false
	case op.FWrite:
		if w == WorkloadBank {
			// A bank write is a read-modify-write: resolve the signed
			// delta against the balance this transaction observes and
			// install (and record) the resulting absolute balance.
			v, isNil := t.ReadReg(m.Key)
			if isNil {
				v = 0
			}
			balance := v + m.Arg
			if balance < 0 {
				return m, true
			}
			t.WriteReg(m.Key, balance)
			return op.Write(m.Key, balance), false
		}
		t.WriteReg(m.Key, m.Arg)
		return m, false
	case op.FAdd:
		t.AddSet(m.Key, m.Arg)
		return m, false
	case op.FIncrement:
		t.Inc(m.Key, m.Arg)
		return m, false
	case op.FRead:
		switch w {
		case WorkloadRegister, WorkloadBank:
			v, isNil := t.ReadReg(m.Key)
			if isNil {
				return op.ReadNil(m.Key), false
			}
			return op.ReadReg(m.Key, v), false
		case WorkloadSet:
			return op.ReadList(m.Key, t.ReadSet(m.Key)), false
		case WorkloadCounter:
			return op.ReadReg(m.Key, t.ReadCounter(m.Key)), false
		default:
			v := t.ReadList(m.Key)
			if v == nil {
				v = []int{}
			}
			return op.ReadList(m.Key, v), false
		}
	default:
		return m, false
	}
}

// openBankAccounts runs the bank workload's opening deposit: one
// committed transaction writing every account's initial balance,
// recorded at the head of the history. It both seeds the engine and
// publishes the account set and invariant total to black-box checkers.
// The account list comes from the transaction source when it exposes
// one (gen.Gen does); without it no deposit is made and accounts open
// lazily at balance zero.
func openBankAccounts(cfg RunConfig, db *DB, b *history.Builder) {
	src, ok := cfg.Source.(interface{ Keys() []string })
	if !ok {
		return
	}
	accounts := src.Keys()
	if len(accounts) == 0 {
		return
	}
	mops := make([]op.Mop, len(accounts))
	for i, k := range accounts {
		mops[i] = op.Write(k, bankInitialBalance)
	}
	record := func(t op.Type) {
		if cfg.ExposeTimestamps {
			b.Append(op.Op{Process: 0, Type: t, Mops: mops, Time: db.CurrentTS() + 1})
		} else if t == op.Invoke {
			b.Invoke(0, mops)
		} else {
			b.Complete(0, t, mops)
		}
	}
	record(op.Invoke)
	t := db.Begin()
	for _, k := range accounts {
		t.WriteReg(k, bankInitialBalance)
	}
	_ = t.Commit() // nothing is concurrent with the deposit
	record(op.OK)
}
