// Package memdb is the system under test for this reproduction: an
// in-memory multi-version database with interactive transactions,
// pluggable isolation levels, and the fault injectors needed to reproduce
// the anomaly signatures of the paper's four case studies (§7.1–§7.4).
//
// Lists are stored the way the case-study databases actually stored them:
// as whole values rewritten by read-modify-write (the paper's systems
// encoded lists as CONCAT over TEXT columns). That choice is what makes
// TiDB-style retry-on-conflict lose updates: a retried transaction
// rewrites the whole list from a stale snapshot, erasing concurrent
// appends.
//
// Isolation levels:
//
//   - ReadUncommitted: writes are applied to shared state as they execute;
//     aborts leave them in place (dirty reads, aborted reads, G1b).
//   - ReadCommitted: each read sees the latest committed version; commits
//     apply blindly (lost updates, G-single).
//   - SnapshotIsolation: reads from the transaction's start snapshot;
//     first-committer-wins on write sets (write skew remains: G2).
//   - Serializable / StrictSerializable: snapshot reads plus read-set
//     validation at commit (OCC). Commit order equals real-time order, so
//     the engine is in fact strict-serializable; both names are accepted.
package memdb

import (
	"errors"
	"math/rand"
	"sync"

	"repro/internal/history"
)

// Isolation selects the concurrency-control discipline.
type Isolation uint8

const (
	// ReadUncommitted applies writes immediately and never rolls back.
	ReadUncommitted Isolation = iota
	// ReadCommitted reads the latest committed state at each operation.
	ReadCommitted
	// SnapshotIsolation reads from a start snapshot with
	// first-committer-wins writes.
	SnapshotIsolation
	// Serializable adds read-set validation to snapshot isolation.
	Serializable
	// StrictSerializable behaves identically to Serializable in this
	// engine: commits are serialized under a global lock, so the commit
	// order is the real-time order.
	StrictSerializable
)

// String names the isolation level.
func (i Isolation) String() string {
	switch i {
	case ReadUncommitted:
		return "read-uncommitted"
	case ReadCommitted:
		return "read-committed"
	case SnapshotIsolation:
		return "snapshot-isolation"
	case Serializable:
		return "serializable"
	case StrictSerializable:
		return "strict-serializable"
	default:
		return "isolation(?)"
	}
}

// Faults configures bug injection. Every probability draw uses the DB's
// seeded RNG, so runs are reproducible, but the knobs fire at different
// granularities (pinned by TestFaultGranularity in memdb_faults_test.go):
//
//   - per micro-operation: SkipOwnWriteProb, NilReadProb, and
//     DuplicateAppendProb draw independently at each read or append, so
//     one transaction can mix faulty and clean operations;
//   - per transaction: StaleReadProb and SkipReadValidationProb are
//     drawn once at Begin and govern the whole transaction — every read
//     of a stale transaction is rewound by the same number of commits;
//   - per conflicting commit: RetryStompProb and RetryRebaseProb are
//     consulted only when commit-time validation fails;
//   - per committed key write: DropWriteProb draws once for each key a
//     commit would install.
type Faults struct {
	// RetryStompProb reproduces half of TiDB's automatic transaction
	// retry (§7.1): a conflicting commit re-applies its buffered writes
	// from the stale snapshot, erasing concurrent updates (lost update).
	RetryStompProb float64
	// RetryRebaseProb reproduces the other half: a conflicting commit
	// re-executes its writes on top of the latest committed state while
	// the client keeps the reads from its original snapshot (read skew).
	RetryRebaseProb float64
	// SkipReadValidationProb reproduces YugaByte's stale read timestamps
	// (§7.2): with this probability a transaction on a serializable
	// engine commits without validating its read set — i.e. it ran at
	// snapshot isolation. Since SI still enforces first-committer-wins,
	// the resulting anomalies are exactly the paper's signature: G2
	// cycles with multiple anti-dependency edges and no G-single/G1/G0.
	SkipReadValidationProb float64
	// StaleReadProb rewinds a transaction's entire read snapshot a few
	// commits into the past (reads stay internally consistent; writes
	// still base and validate on the true snapshot). A blunter variant
	// of the YugaByte fault, kept for ablation benchmarks: it produces
	// G-single as well as G2.
	StaleReadProb float64
	// SkipOwnWriteProb reproduces FaunaDB's index bug (§7.3): a read
	// fails to observe the transaction's own buffered writes.
	SkipOwnWriteProb float64
	// NilReadProb reproduces Dgraph's shard-migration bug (§7.4): a read
	// returns the initial (empty/nil) state regardless of history.
	NilReadProb float64
	// DuplicateAppendProb applies an append twice at the storage layer,
	// as a client/storage retry would (§6.1, duplicate writes).
	DuplicateAppendProb float64
	// DropWriteProb reproduces a partial (torn) write: at commit, each
	// key's buffered mutation is silently discarded with this
	// probability while the transaction still reports success — a
	// dropped delta. Under ReadUncommitted, where writes apply
	// immediately, each write is dropped at apply time instead.
	DropWriteProb float64
}

// ErrConflict is returned by Commit when concurrency-control validation
// fails; the transaction has been rolled back.
var ErrConflict = errors.New("memdb: transaction conflict")

// version is one installed value of a key: a whole list or register state.
type version struct {
	ts   int64
	list []int // list keys
	reg  int   // register keys
	nil_ bool  // register initial state
}

// DB is the shared store. Keys are interned once into dense KeyIDs
// (shared across the four datatype stores), so version chains live in
// slices rather than string-keyed maps.
type DB struct {
	mu       sync.Mutex
	iso      Isolation
	faults   Faults
	rng      *rand.Rand
	ts       int64
	keys     *history.Interner
	lists    [][]version
	regs     [][]version
	sets     [][]version
	counters [][]version
}

// New creates a database at the given isolation level. Faults fire using
// the seeded RNG, making whole runs reproducible.
func New(iso Isolation, faults Faults, seed int64) *DB {
	return &DB{
		iso:    iso,
		faults: faults,
		rng:    rand.New(rand.NewSource(seed)),
		keys:   history.NewInterner(),
	}
}

// intern resolves key to its dense id, growing the four stores in
// lockstep. Called with db.mu held.
func (db *DB) intern(key string) history.KeyID {
	id := db.keys.Intern(key)
	if int(id) >= len(db.lists) {
		db.lists = history.GrowKeyed(db.lists, id)
		db.regs = history.GrowKeyed(db.regs, id)
		db.sets = history.GrowKeyed(db.sets, id)
		db.counters = history.GrowKeyed(db.counters, id)
	}
	return id
}

// Isolation returns the configured level.
func (db *DB) Isolation() Isolation { return db.iso }

// CurrentTS returns the engine's current commit timestamp counter; the
// runner exposes it to clients when RunConfig.ExposeTimestamps is set.
func (db *DB) CurrentTS() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ts
}

// FinalLists returns the final committed value of every list key: the
// engine's ground truth, for comparing against checker inferences.
func (db *DB) FinalLists() map[string][]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string][]int, len(db.lists))
	for k, vs := range db.lists {
		if len(vs) > 0 {
			v := vs[len(vs)-1].list
			cp := make([]int, len(v))
			copy(cp, v)
			out[db.keys.Key(history.KeyID(k))] = cp
		}
	}
	return out
}

// FinalRegs returns the final committed value of every register key
// (bank balances included): the engine's ground truth, for comparing
// against checker inferences and invariants.
func (db *DB) FinalRegs() map[string]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]int, len(db.regs))
	for k, vs := range db.regs {
		if len(vs) > 0 {
			out[db.keys.Key(history.KeyID(k))] = vs[len(vs)-1].reg
		}
	}
	return out
}

// visibleList returns the newest version of key with ts <= snapTS, or an
// empty value.
func (db *DB) visibleList(key history.KeyID, snapTS int64) []int {
	vs := db.lists[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].ts <= snapTS {
			return vs[i].list
		}
	}
	return nil
}

// visibleReg returns the newest register version with ts <= snapTS.
func (db *DB) visibleReg(key history.KeyID, snapTS int64) (int, bool) {
	vs := db.regs[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].ts <= snapTS {
			return vs[i].reg, false
		}
	}
	return 0, true
}

// newerThan reports whether key has any version with ts > since.
func newerThan(vs []version, since int64) bool {
	return len(vs) > 0 && vs[len(vs)-1].ts > since
}
