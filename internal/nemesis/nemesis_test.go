package nemesis_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/memdb"
	"repro/internal/nemesis"
	"repro/internal/workload"
	_ "repro/internal/workload/all"
)

// harnessTxns sizes the test runs: large enough that every planted
// fault fires many times, small enough for the full matrix.
const harnessTxns = 600

// modes is the full checking matrix every campaign must agree across.
// The mem64 mode runs the stream under a 64-completion memory budget —
// small enough that every campaign retires settled prefixes many times
// mid-run — and must match the unbounded modes anyway.
var modes = []struct {
	name        string
	stream      bool
	parallelism int
	memBudget   int
}{
	{"batch-p1", false, 1, 0},
	{"batch-p8", false, 8, 0},
	{"stream-p1", true, 1, 0},
	{"stream-p8", true, 8, 0},
	{"stream-p1-mem64", true, 1, 64},
}

// TestCampaignsWellFormed validates the campaign table itself: unique
// names, resolvable workloads and faults, and a coherent expectation
// (clean XOR expected classes).
func TestCampaignsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range nemesis.Campaigns() {
		if c.Name == "" {
			t.Fatalf("campaign with empty name: %+v", c)
		}
		if seen[c.Name] {
			t.Errorf("campaign %q appears twice", c.Name)
		}
		seen[c.Name] = true
		if _, ok := workload.Lookup(string(c.Workload)); !ok {
			t.Errorf("campaign %s: workload %q not registered", c.Name, c.Workload)
		}
		for _, f := range c.Faults {
			if _, ok := nemesis.LookupFault(f); !ok {
				t.Errorf("campaign %s: unknown fault %q", c.Name, f)
			}
		}
		hasExpect := len(c.Expect) > 0 || len(c.ExpectAny) > 0
		if c.ExpectClean == hasExpect {
			t.Errorf("campaign %s: want ExpectClean XOR expectations, got clean=%v expect=%v any=%v",
				c.Name, c.ExpectClean, c.Expect, c.ExpectAny)
		}
	}
	// The planted table must cover the classes the harness exists to
	// prove detectable.
	mustPlant := []anomaly.Class{
		anomaly.G1a, anomaly.GSingle, anomaly.LostUpdate,
		anomaly.TotalMismatch, anomaly.KAtomicViolation,
	}
	planted := map[anomaly.Class]bool{}
	for _, c := range nemesis.Campaigns() {
		for _, cl := range c.Expect {
			planted[cl] = true
		}
	}
	for _, cl := range mustPlant {
		if !planted[cl] {
			t.Errorf("no campaign plants %s", cl)
		}
	}
}

// TestCampaignSoundness is the false-positive gate: every registered
// workload, running clean on a strict-serializable engine, must check
// clean — at three seeds, batch and stream, sequential and parallel.
func TestCampaignSoundness(t *testing.T) {
	for _, info := range workload.All() {
		c, ok := nemesis.Find("clean-" + string(info.Name))
		if !ok {
			t.Fatalf("workload %s has no clean campaign", info.Name)
		}
		for seed := int64(1); seed <= 3; seed++ {
			for _, m := range modes {
				t.Run(fmt.Sprintf("%s/seed%d/%s", c.Name, seed, m.name), func(t *testing.T) {
					v, err := nemesis.Run(c, nemesis.Config{
						Seed: seed, Txns: harnessTxns,
						Stream: m.stream, Parallelism: m.parallelism, MemoryBudget: m.memBudget,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !v.Pass || len(v.Found) != 0 {
						t.Fatalf("false positive: %+v", v.Found)
					}
				})
			}
		}
	}
}

// TestCampaignCompleteness is the detection gate: each planted-bug
// campaign must surface its planted class and nothing outside its
// allowed co-signatures, in every checking mode.
func TestCampaignCompleteness(t *testing.T) {
	for _, c := range nemesis.Campaigns() {
		if strings.HasPrefix(c.Name, "clean-") {
			continue
		}
		for _, m := range modes {
			t.Run(c.Name+"/"+m.name, func(t *testing.T) {
				v, err := nemesis.Run(c, nemesis.Config{
					Seed: 1, Txns: harnessTxns,
					Stream: m.stream, Parallelism: m.parallelism, MemoryBudget: m.memBudget,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(v.Missing) > 0 {
					t.Errorf("planted classes missing: %v", v.Missing)
				}
				if len(v.MissingAny) > 0 {
					t.Errorf("none of the expected-any classes appeared: %v", v.MissingAny)
				}
				if len(v.Unexpected) > 0 {
					t.Errorf("unrelated classes appeared: %v (found %v)", v.Unexpected, v.Found)
				}
				if !v.Pass {
					t.Errorf("verdict failed: %+v", v)
				}
			})
		}
	}
}

// TestVerdictDeterminism: the same campaign at the same seed produces a
// byte-identical verdict JSON in every mode — stream vs batch,
// parallelism, and memory budget may not change a single byte beyond
// the mode flag itself.
func TestVerdictDeterminism(t *testing.T) {
	for _, name := range []string{"clean-list-append", "g1a", "k-atomicity", "clock-skew"} {
		c, ok := nemesis.Find(name)
		if !ok {
			t.Fatalf("campaign %q missing", name)
		}
		t.Run(name, func(t *testing.T) {
			encode := func(stream bool, p, budget int) []byte {
				v, err := nemesis.Run(c, nemesis.Config{
					Seed: 1, Txns: harnessTxns, Stream: stream, Parallelism: p,
					MemoryBudget: budget,
				})
				if err != nil {
					t.Fatal(err)
				}
				v.Stream = false // normalize the one field that names the mode
				b, err := json.Marshal(v)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			base := encode(false, 1, 0)
			if again := encode(false, 1, 0); string(again) != string(base) {
				t.Fatalf("rerun differs:\n%s\n%s", base, again)
			}
			if p8 := encode(false, 8, 0); string(p8) != string(base) {
				t.Fatalf("parallelism changed the verdict:\n%s\n%s", base, p8)
			}
			if st := encode(true, 1, 0); string(st) != string(base) {
				t.Fatalf("stream changed the verdict:\n%s\n%s", base, st)
			}
			if bd := encode(true, 1, 64); string(bd) != string(base) {
				t.Fatalf("memory budget changed the verdict:\n%s\n%s", base, bd)
			}
		})
	}
}

// TestSeedChangesHistory: different seeds genuinely produce different
// runs (guards against a seed being ignored somewhere in the pipeline).
func TestSeedChangesHistory(t *testing.T) {
	c, _ := nemesis.Find("g1a")
	v1, err := nemesis.Run(c, nemesis.Config{Seed: 1, Txns: harnessTxns})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := nemesis.Run(c, nemesis.Config{Seed: 2, Txns: harnessTxns})
	if err != nil {
		t.Fatal(err)
	}
	v1.Seed = v2.Seed
	if reflect.DeepEqual(v1, v2) {
		t.Fatal("seeds 1 and 2 produced identical verdicts")
	}
}

// TestVerdictMismatch: a campaign whose expectation cannot be met must
// fail with the missing class named — the verdict logic itself is under
// test, not just the happy path.
func TestVerdictMismatch(t *testing.T) {
	bogus := nemesis.Campaign{
		Name:      "bogus-expect",
		Workload:  workload.ListAppend,
		Isolation: memdb.StrictSerializable,
		Model:     consistency.StrictSerializable,
		Expect:    []anomaly.Class{anomaly.G1a},
	}
	v, err := nemesis.Run(bogus, nemesis.Config{Seed: 1, Txns: 200})
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("clean run passed a campaign expecting G1a")
	}
	if len(v.Missing) != 1 || v.Missing[0] != anomaly.G1a {
		t.Fatalf("missing = %v, want [G1a]", v.Missing)
	}

	// And the inverse: a clean expectation over a faulty run fails with
	// the intruding classes named.
	dirty := nemesis.Campaign{
		Name:        "bogus-clean",
		Workload:    workload.ListAppend,
		Isolation:   memdb.ReadUncommitted,
		Model:       consistency.ReadCommitted,
		Faults:      []string{"abort"},
		ExpectClean: true,
	}
	v, err = nemesis.Run(dirty, nemesis.Config{Seed: 1, Txns: 200})
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass || len(v.Unexpected) == 0 {
		t.Fatalf("faulty run passed a clean expectation: %+v", v)
	}
}

// TestUnknownFault: composing an unregistered fault is an error, not a
// silent no-op.
func TestUnknownFault(t *testing.T) {
	c := nemesis.Campaign{
		Name:        "bad-fault",
		Workload:    workload.ListAppend,
		Isolation:   memdb.StrictSerializable,
		Faults:      []string{"power-loss"},
		ExpectClean: true,
	}
	if _, err := nemesis.Run(c, nemesis.Config{Seed: 1, Txns: 100}); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if _, err := nemesis.NewPlan([]string{"power-loss"}); err == nil {
		t.Fatal("NewPlan accepted an unknown fault")
	}
}

// TestFaultCatalogWellFormed: sorted, documented, no duplicates.
func TestFaultCatalogWellFormed(t *testing.T) {
	cat := nemesis.FaultCatalog()
	for i, f := range cat {
		if f.Name == "" || f.Doc == "" || f.Apply == nil {
			t.Errorf("fault %d incomplete: %+v", i, f)
		}
		if i > 0 && cat[i-1].Name >= f.Name {
			t.Errorf("catalog not sorted at %q", f.Name)
		}
		var p nemesis.Plan
		f.Apply(&p)
		if reflect.DeepEqual(p, nemesis.Plan{}) {
			t.Errorf("fault %q applies no change", f.Name)
		}
	}
}
