// Package nemesis is the fault-campaign engine: it composes named
// failure modes (fault.go) with any registered workload, runs the mix
// against the in-memory engine under a single seed, checks the observed
// history, and renders a machine-checkable verdict — which anomaly
// classes the campaign expected, which appeared, and whether that
// matches.
//
// The package exists to make the checker's two obligations executable
// as tests:
//
//   - soundness: a clean strict-serializable run must check clean for
//     every workload — no false positives, ever;
//   - completeness: a campaign that plants a bug must surface the
//     planted anomaly class, and nothing outside the classes that
//     fault legitimately produces.
//
// Campaigns are deterministic end to end: the same campaign at the same
// seed produces the same history, the same anomalies, and a
// byte-identical verdict JSON, at every parallelism, batch or stream.
package nemesis

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/memdb"
	"repro/internal/workload"
)

// Campaign pairs a workload with a set of named faults and the anomaly
// classes the combination is expected to produce.
type Campaign struct {
	// Name identifies the campaign on the CLI and in verdicts.
	Name string
	// Doc is a one-line description of what the campaign plants.
	Doc string
	// Workload selects the registered analyzer (and its generator and
	// engine semantics).
	Workload workload.Name
	// Isolation is the engine's concurrency control for the run.
	Isolation memdb.Isolation
	// Model is the consistency model the check asserts; empty means
	// strict-serializable.
	Model consistency.Model
	// Faults names the composed failure modes (see FaultCatalog).
	Faults []string
	// Expect lists anomaly classes that must all appear.
	Expect []anomaly.Class
	// ExpectAny lists classes of which at least one must appear (used
	// where the exact cycle flavor depends on scheduling).
	ExpectAny []anomaly.Class
	// Allow lists additional classes the faults legitimately produce;
	// anything found outside Expect ∪ ExpectAny ∪ Allow fails the run.
	Allow []anomaly.Class
	// ExpectClean asserts the run checks completely clean; it is
	// mutually exclusive with Expect/ExpectAny.
	ExpectClean bool
	// NoReadAfterWrite shapes the workload so transactions never read a
	// key they already wrote.
	NoReadAfterWrite bool
	// Clients and Txns override the run size; 0 means the Config's.
	Clients, Txns int
}

// Config sizes and shapes a campaign run.
type Config struct {
	// Seed drives the entire run; same seed, same verdict.
	Seed int64
	// Clients and Txns size the run (defaults 10 and 1000).
	Clients, Txns int
	// Parallelism caps the checker's worker pools; results are
	// byte-identical at every setting.
	Parallelism int
	// Stream checks the history through the incremental API in chunks
	// instead of one batch call. The verdict must not change.
	Stream bool
	// MemoryBudget caps the stream session's resident completed ops; a
	// tiny budget forces settled prefixes to retire mid-campaign. Like
	// Parallelism it is checker mechanics, not campaign shape: verdicts
	// are byte-identical at every setting, so it is deliberately absent
	// from the Verdict. Ignored in batch mode.
	MemoryBudget int
}

// streamChunk is the feed size Stream mode uses.
const streamChunk = 64

// FoundClass is one observed anomaly class and its count.
type FoundClass struct {
	Class anomaly.Class `json:"class"`
	Count int           `json:"count"`
}

// Verdict is a campaign run's machine-checkable outcome. All slices are
// sorted, so encoding a Verdict is deterministic.
type Verdict struct {
	Campaign    string          `json:"campaign"`
	Workload    string          `json:"workload"`
	Isolation   string          `json:"isolation"`
	Model       string          `json:"model"`
	Faults      []string        `json:"faults"`
	Seed        int64           `json:"seed"`
	Clients     int             `json:"clients"`
	Txns        int             `json:"txns"`
	Stream      bool            `json:"stream"`
	ExpectClean bool            `json:"expect_clean,omitempty"`
	Expect      []anomaly.Class `json:"expect,omitempty"`
	ExpectAny   []anomaly.Class `json:"expect_any,omitempty"`
	Allow       []anomaly.Class `json:"allow,omitempty"`
	// Found is every observed anomaly class with its count, sorted.
	Found []FoundClass `json:"found"`
	// Missing lists Expect classes that did not appear; MissingAny is
	// set when ExpectAny is non-empty and none of its classes appeared.
	Missing    []anomaly.Class `json:"missing,omitempty"`
	MissingAny []anomaly.Class `json:"missing_any,omitempty"`
	// Unexpected lists found classes outside Expect ∪ ExpectAny ∪ Allow
	// (for ExpectClean campaigns: everything found).
	Unexpected []anomaly.Class `json:"unexpected,omitempty"`
	Pass       bool            `json:"pass"`
}

// Run executes one campaign under one seed and evaluates its verdict.
func Run(c Campaign, cfg Config) (*Verdict, error) {
	info, ok := workload.Lookup(string(c.Workload))
	if !ok {
		return nil, fmt.Errorf("nemesis: workload %q not registered (registered: %s)",
			c.Workload, workload.NameList())
	}
	plan, err := NewPlan(c.Faults)
	if err != nil {
		return nil, err
	}
	model := c.Model
	if model == "" {
		model = consistency.StrictSerializable
	}
	clients := cfg.Clients
	if c.Clients > 0 {
		clients = c.Clients
	}
	if clients <= 0 {
		clients = 10
	}
	txns := cfg.Txns
	if c.Txns > 0 {
		txns = c.Txns
	}
	if txns <= 0 {
		txns = 1000
	}

	g := gen.New(gen.Config{
		Workload: info.Gen, ActiveKeys: 5, MaxWritesPerKey: 60, MinOps: 1, MaxOps: 5,
		NoReadAfterWrite: c.NoReadAfterWrite,
	}, cfg.Seed)
	h := memdb.Run(memdb.RunConfig{
		Clients: clients, Txns: txns,
		Isolation: c.Isolation, Faults: plan.Faults,
		Source: g, Seed: cfg.Seed,
		AbortProb: plan.AbortProb, InfoProb: plan.InfoProb, CrashProb: plan.CrashProb,
		ClockSkewProb: plan.ClockSkewProb, ClockSkewMax: plan.ClockSkewMax,
		ExposeTimestamps: plan.Timestamps,
		Workload:         info.DB,
	})

	opts := core.OptsFor(c.Workload, model)
	opts.Parallelism = cfg.Parallelism
	opts.MemoryBudget = cfg.MemoryBudget
	opts.TimestampEdges = plan.Timestamps

	var res *core.CheckResult
	if cfg.Stream {
		s := core.CheckStream(opts)
		ops := h.Ops
		for len(ops) > 0 {
			n := streamChunk
			if n > len(ops) {
				n = len(ops)
			}
			if _, err := s.Feed(ops[:n]); err != nil {
				return nil, fmt.Errorf("nemesis: stream feed: %w", err)
			}
			ops = ops[n:]
		}
		res, err = s.Finish()
		if err != nil {
			return nil, fmt.Errorf("nemesis: stream finish: %w", err)
		}
	} else {
		res = core.Check(h, opts)
	}

	v := &Verdict{
		Campaign:    c.Name,
		Workload:    string(c.Workload),
		Isolation:   c.Isolation.String(),
		Model:       string(model),
		Faults:      append([]string{}, c.Faults...),
		Seed:        cfg.Seed,
		Clients:     clients,
		Txns:        txns,
		Stream:      cfg.Stream,
		ExpectClean: c.ExpectClean,
		Expect:      sortedClasses(c.Expect),
		ExpectAny:   sortedClasses(c.ExpectAny),
		Allow:       sortedClasses(c.Allow),
	}
	sort.Strings(v.Faults)

	counts := map[anomaly.Class]int{}
	for _, a := range res.Anomalies {
		counts[a.Type]++
	}
	for class, n := range counts {
		v.Found = append(v.Found, FoundClass{Class: class, Count: n})
	}
	sort.Slice(v.Found, func(i, j int) bool { return v.Found[i].Class < v.Found[j].Class })

	if c.ExpectClean {
		for _, f := range v.Found {
			v.Unexpected = append(v.Unexpected, f.Class)
		}
		v.Pass = len(v.Found) == 0
		return v, nil
	}

	allowed := map[anomaly.Class]bool{}
	for _, cl := range c.Expect {
		allowed[cl] = true
	}
	for _, cl := range c.ExpectAny {
		allowed[cl] = true
	}
	for _, cl := range c.Allow {
		allowed[cl] = true
	}
	for _, cl := range v.Expect {
		if counts[cl] == 0 {
			v.Missing = append(v.Missing, cl)
		}
	}
	if len(c.ExpectAny) > 0 {
		anyFound := false
		for _, cl := range c.ExpectAny {
			if counts[cl] > 0 {
				anyFound = true
			}
		}
		if !anyFound {
			v.MissingAny = v.ExpectAny
		}
	}
	for _, f := range v.Found {
		if !allowed[f.Class] {
			v.Unexpected = append(v.Unexpected, f.Class)
		}
	}
	v.Pass = len(v.Missing) == 0 && len(v.MissingAny) == 0 && len(v.Unexpected) == 0
	return v, nil
}

func sortedClasses(in []anomaly.Class) []anomaly.Class {
	if len(in) == 0 {
		return nil
	}
	out := append([]anomaly.Class{}, in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Campaigns returns the full campaign table: one clean soundness
// campaign per registered workload, then the planted-bug completeness
// campaigns. The table is the executable statement of what the checker
// must and must not report; TestCampaignSoundness and
// TestCampaignCompleteness run it across seeds, parallelism, and
// batch/stream modes, and the CI campaign-smoke job runs it through the
// ellecase binary.
func Campaigns() []Campaign {
	var out []Campaign
	// Soundness: a clean strict-serializable engine must check clean
	// under every registered workload — the checker never invents an
	// anomaly.
	for _, info := range workload.All() {
		out = append(out, Campaign{
			Name:        "clean-" + string(info.Name),
			Doc:         fmt.Sprintf("clean strict-serializable run of the %s workload; any finding is a false positive", info.Name),
			Workload:    info.Name,
			Isolation:   memdb.StrictSerializable,
			Model:       consistency.StrictSerializable,
			ExpectClean: true,
		})
	}
	// Completeness: planted bugs whose classes must surface.
	out = append(out,
		Campaign{
			Name:      "g1a",
			Doc:       "aborted writes stay visible (no rollback): aborted reads",
			Workload:  workload.ListAppend,
			Isolation: memdb.ReadUncommitted,
			Model:     consistency.ReadCommitted,
			Faults:    []string{"abort"},
			Expect:    []anomaly.Class{anomaly.G1a},
			Allow: []anomaly.Class{
				anomaly.DirtyUpdate, anomaly.G1b, anomaly.G1c, anomaly.G0,
				anomaly.GSingle, anomaly.G2Item, anomaly.LostUpdate,
				anomaly.Internal,
			},
		},
		Campaign{
			Name:      "g-single",
			Doc:       "stale read snapshots under SI: read skew",
			Workload:  workload.ListAppend,
			Isolation: memdb.SnapshotIsolation,
			Model:     consistency.SnapshotIsolation,
			Faults:    []string{"stale-read"},
			Expect:    []anomaly.Class{anomaly.GSingle},
			// A transaction that reads, appends, and re-reads a key sees
			// its stale pin diverge from the true write base: internal.
			Allow: []anomaly.Class{anomaly.G2Item, anomaly.G1c, anomaly.Internal},
		},
		Campaign{
			Name:             "lost-update",
			Doc:              "commits silently drop one key's delta: committed appends vanish",
			Workload:         workload.ListAppend,
			Isolation:        memdb.StrictSerializable,
			Model:            consistency.StrictSerializable,
			Faults:           []string{"drop-delta"},
			NoReadAfterWrite: true,
			Expect:           []anomaly.Class{anomaly.LostUpdate},
			Allow: []anomaly.Class{
				anomaly.GSingleRealtime, anomaly.G2ItemRealtime,
				anomaly.GSingleProcess, anomaly.G2ItemProcess,
				anomaly.GSingle, anomaly.G2Item,
			},
		},
		Campaign{
			Name:      "total-mismatch",
			Doc:       "stale read snapshots under a bank workload: money appears or vanishes",
			Workload:  workload.Bank,
			Isolation: memdb.SnapshotIsolation,
			Model:     consistency.SnapshotIsolation,
			Faults:    []string{"stale-read"},
			Expect:    []anomaly.Class{anomaly.TotalMismatch},
			Allow: []anomaly.Class{
				anomaly.GSingle, anomaly.G2Item, anomaly.G1c,
				anomaly.NegativeBalance, anomaly.Internal, anomaly.CyclicVersionOrder,
			},
		},
		Campaign{
			Name:      "k-atomicity",
			Doc:       "stale register reads violate single-object atomicity in real time",
			Workload:  workload.KAtomic,
			Isolation: memdb.Serializable,
			Model:     consistency.StrictSerializable,
			Faults:    []string{"stale-read"},
			Expect:    []anomaly.Class{anomaly.KAtomicViolation},
		},
		Campaign{
			Name:      "dup-delta",
			Doc:       "storage-level append retries: duplicate list elements",
			Workload:  workload.ListAppend,
			Isolation: memdb.StrictSerializable,
			Model:     consistency.StrictSerializable,
			Faults:    []string{"dup-delta"},
			Expect:    []anomaly.Class{anomaly.DuplicateElements},
			// A doubled append also corrupts the writer's own read-back
			// (mops claim one append, the read shows two): internal.
			Allow: []anomaly.Class{anomaly.DuplicateAppends, anomaly.Internal},
		},
		Campaign{
			Name:      "clock-skew",
			Doc:       "drifting recorded timestamps contradict the true commit order",
			Workload:  workload.ListAppend,
			Isolation: memdb.StrictSerializable,
			Model:     consistency.StrictSerializable,
			Faults:    []string{"clock-skew"},
			// Skewed clocks poison both edge families derived from
			// recorded times: the database's claimed timestamps and the
			// wall-clock real-time order.
			ExpectAny: []anomaly.Class{
				anomaly.G0Timestamp, anomaly.G1cTimestamp,
				anomaly.GSingleTimestamp, anomaly.G2ItemTimestamp,
				anomaly.G0Realtime, anomaly.G1cRealtime,
				anomaly.GSingleRealtime, anomaly.G2ItemRealtime,
			},
		},
		Campaign{
			Name:        "crash-restart-clean",
			Doc:         "crashes with engine-side rollback are not bugs; the checker must stay quiet",
			Workload:    workload.ListAppend,
			Isolation:   memdb.StrictSerializable,
			Model:       consistency.StrictSerializable,
			Faults:      []string{"crash-restart"},
			ExpectClean: true,
		},
	)
	return out
}

// Find returns the campaign with the given name.
func Find(name string) (Campaign, bool) {
	for _, c := range Campaigns() {
		if c.Name == name {
			return c, true
		}
	}
	return Campaign{}, false
}

// Names returns every campaign name in table order.
func Names() []string {
	cs := Campaigns()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}
