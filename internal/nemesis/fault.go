package nemesis

import (
	"fmt"
	"sort"

	"repro/internal/memdb"
)

// Plan is the fully-resolved fault configuration a campaign hands the
// engine and runner: the union of every named fault's knobs. The zero
// Plan is a clean run.
type Plan struct {
	// Faults configures the engine-side injectors.
	Faults memdb.Faults
	// AbortProb, InfoProb, and CrashProb configure client-side outcomes
	// (see memdb.RunConfig).
	AbortProb float64
	InfoProb  float64
	CrashProb float64
	// ClockSkewProb and ClockSkewMax perturb recorded timestamps;
	// Timestamps turns timestamp recording on so the skew has something
	// to corrupt.
	ClockSkewProb float64
	ClockSkewMax  int64
	Timestamps    bool
}

// Fault is one named, composable failure mode. Apply folds its knobs
// into a Plan; composing faults is applying each in turn.
type Fault struct {
	// Name identifies the fault in campaign tables and on the CLI.
	Name string
	// Doc is a one-line description.
	Doc string
	// Apply folds the fault into the plan.
	Apply func(*Plan)
}

// faults is the catalog of named failure modes. Probabilities are tuned
// so a ~1000-transaction campaign reliably produces each fault's
// signature without drowning the history in noise.
var faults = []Fault{
	{
		Name: "clock-skew",
		Doc:  "recorded transaction timestamps drift from the engine's commit order",
		Apply: func(p *Plan) {
			p.Timestamps = true
			p.ClockSkewProb = 0.3
			p.ClockSkewMax = 5
		},
	},
	{
		Name:  "crash-restart",
		Doc:   "client processes crash mid-transaction and restart as fresh processes",
		Apply: func(p *Plan) { p.CrashProb = 0.03 },
	},
	{
		Name:  "dup-delta",
		Doc:   "storage applies an append twice, as a blind client retry would",
		Apply: func(p *Plan) { p.Faults.DuplicateAppendProb = 0.15 },
	},
	{
		Name:  "drop-delta",
		Doc:   "a commit silently drops one key's buffered mutation (partial write)",
		Apply: func(p *Plan) { p.Faults.DropWriteProb = 0.15 },
	},
	{
		Name:  "stale-read",
		Doc:   "a transaction's read snapshot is rewound a few commits into the past",
		Apply: func(p *Plan) { p.Faults.StaleReadProb = 0.3 },
	},
	{
		Name:  "nil-read",
		Doc:   "a read returns the initial nil state regardless of history",
		Apply: func(p *Plan) { p.Faults.NilReadProb = 0.08 },
	},
	{
		Name:  "retry-stomp",
		Doc:   "a conflicting commit re-applies its writes from the stale snapshot",
		Apply: func(p *Plan) { p.Faults.RetryStompProb = 0.5 },
	},
	{
		Name:  "retry-rebase",
		Doc:   "a conflicting commit rebases its writes onto the latest state",
		Apply: func(p *Plan) { p.Faults.RetryRebaseProb = 1 },
	},
	{
		Name:  "skip-own-write",
		Doc:   "a read misses the transaction's own buffered writes",
		Apply: func(p *Plan) { p.Faults.SkipOwnWriteProb = 0.1 },
	},
	{
		Name:  "skip-read-validation",
		Doc:   "a serializable commit skips read-set validation (runs at SI)",
		Apply: func(p *Plan) { p.Faults.SkipReadValidationProb = 0.3 },
	},
	{
		Name:  "abort",
		Doc:   "clients abandon transactions just before commit",
		Apply: func(p *Plan) { p.AbortProb = 0.2 },
	},
	{
		Name:  "lost-ack",
		Doc:   "commit acknowledgements vanish: outcomes recorded indeterminate",
		Apply: func(p *Plan) { p.InfoProb = 0.15 },
	},
}

// FaultCatalog returns every named fault, sorted by name.
func FaultCatalog() []Fault {
	out := make([]Fault, len(faults))
	copy(out, faults)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupFault resolves a fault by name.
func LookupFault(name string) (Fault, bool) {
	for _, f := range faults {
		if f.Name == name {
			return f, true
		}
	}
	return Fault{}, false
}

// NewPlan composes the named faults into one Plan. Unknown names are an
// error — campaign tables are validated against the catalog.
func NewPlan(names []string) (Plan, error) {
	var p Plan
	for _, n := range names {
		f, ok := LookupFault(n)
		if !ok {
			return Plan{}, fmt.Errorf("nemesis: unknown fault %q", n)
		}
		f.Apply(&p)
	}
	return p, nil
}
