// Package casestudy reproduces §7 of the paper: four database bug
// campaigns, each pairing a workload with the fault injection that
// reproduces the client-visible signature of the real system's bug, plus
// the anomaly families the paper reports Elle finding there.
//
//   - tidb (§7.1): snapshot isolation with the automatic
//     retry-on-conflict mechanism enabled. Expected: G-single, lost
//     updates, inconsistent observations (incompatible orders implying
//     aborted reads).
//   - yugabyte (§7.2): serializable engine whose reads sometimes come
//     from stale timestamps after leader elections. Expected: G2 cycles
//     with multiple anti-dependency edges, and no G-single/G1/G0.
//   - fauna (§7.3): strict-serializable engine whose reads sometimes
//     miss the transaction's own prior writes. Expected: internal
//     inconsistencies (and inferred G2 from the polluted reads).
//   - dgraph (§7.4): snapshot-isolated register store whose reads
//     sometimes return nil after shard migration. Expected: internal
//     anomalies, cyclic version orders (reported and discarded), and
//     read skew.
package casestudy

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/workload"
)

// Scenario describes one campaign.
type Scenario struct {
	// Name is the campaign's identifier: tidb, yugabyte, fauna, dgraph.
	Name string
	// Paper is the section reproduced.
	Paper string
	// Claimed is the model the real database claimed.
	Claimed consistency.Model
	// Workload picks the analyzer.
	Workload core.Workload
	// Isolation and Faults configure the engine.
	Isolation memdb.Isolation
	Faults    memdb.Faults
	// Expected lists anomaly families the paper reports for this system.
	// A run reproduces the case study when every family appears.
	Expected []anomaly.Type
	// Forbidden lists families the paper explicitly reports NOT seeing.
	Forbidden []anomaly.Type
	// DetectLostUpdates mirrors the paper's use of real-time knowledge
	// for the TiDB lost-update reports.
	DetectLostUpdates bool
	// LinearizableKeys enables per-key real-time version inference for
	// register workloads (Dgraph claimed per-key linearizability, §7.4).
	LinearizableKeys bool
	// NoReadAfterWrite shapes the workload so transactions never read a
	// key they already wrote (see gen.Config.NoReadAfterWrite).
	NoReadAfterWrite bool
}

// Scenarios returns the four campaigns in paper order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:      "tidb",
			Paper:     "§7.1",
			Claimed:   consistency.SnapshotIsolation,
			Workload:  core.ListAppend,
			Isolation: memdb.SnapshotIsolation,
			Faults:    memdb.Faults{RetryStompProb: 0.4, RetryRebaseProb: 1},
			Expected: []anomaly.Type{
				anomaly.GSingle, anomaly.LostUpdate, anomaly.IncompatibleOrder,
			},
			DetectLostUpdates: true,
		},
		{
			Name:      "yugabyte",
			Paper:     "§7.2",
			Claimed:   consistency.Serializable,
			Workload:  core.ListAppend,
			Isolation: memdb.Serializable,
			Faults:    memdb.Faults{SkipReadValidationProb: 0.3},
			Expected:  []anomaly.Type{anomaly.G2Item},
			Forbidden: []anomaly.Type{
				anomaly.GSingle, anomaly.G1a, anomaly.G1b, anomaly.G1c, anomaly.G0,
			},
		},
		{
			Name:      "fauna",
			Paper:     "§7.3",
			Claimed:   consistency.StrictSerializable,
			Workload:  core.ListAppend,
			Isolation: memdb.StrictSerializable,
			Faults:    memdb.Faults{SkipOwnWriteProb: 0.1},
			Expected:  []anomaly.Type{anomaly.Internal},
		},
		{
			Name:      "dgraph",
			Paper:     "§7.4",
			Claimed:   consistency.SnapshotIsolation,
			Workload:  core.Register,
			Isolation: memdb.SnapshotIsolation,
			Faults:    memdb.Faults{NilReadProb: 0.08},
			Expected: []anomaly.Type{
				anomaly.Internal, anomaly.CyclicVersionOrder, anomaly.GSingle,
			},
			LinearizableKeys: true,
		},
	}
}

// Names returns every campaign name in paper order — what the CLI
// offers on its -db flag and prints for an unknown name.
func Names() []string {
	scenarios := Scenarios()
	out := make([]string, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s.Name)
	}
	return out
}

// Find returns the scenario with the given name.
func Find(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// RunResult is the outcome of one campaign run.
type RunResult struct {
	Scenario Scenario
	History  *history.History
	Check    *core.CheckResult
	// Reproduced reports whether every expected family appeared and no
	// forbidden family did.
	Reproduced bool
	// MissingExpected and FoundForbidden explain a non-reproduction.
	MissingExpected []anomaly.Type
	FoundForbidden  []anomaly.Type
}

// Config sizes a campaign run.
type Config struct {
	Clients int
	Txns    int
	Seed    int64
}

// DefaultConfig mirrors the paper's test dimensions at laptop scale:
// 10 client threads, a few thousand transactions.
func DefaultConfig() Config { return Config{Clients: 10, Txns: 2000, Seed: 1} }

// Run executes one campaign and checks its history.
func Run(s Scenario, cfg Config) *RunResult {
	if cfg.Clients <= 0 {
		cfg = DefaultConfig()
	}
	info, ok := workload.Lookup(string(s.Workload))
	if !ok {
		panic(fmt.Sprintf("casestudy: workload %q not registered (registered: %s)",
			s.Workload, workload.NameList()))
	}
	g := gen.New(gen.Config{
		Workload: info.Gen, ActiveKeys: 5, MaxWritesPerKey: 60, MinOps: 1, MaxOps: 5,
		NoReadAfterWrite: s.NoReadAfterWrite,
	}, cfg.Seed)
	h := memdb.Run(memdb.RunConfig{
		Clients: cfg.Clients, Txns: cfg.Txns,
		Isolation: s.Isolation, Faults: s.Faults,
		Source: g, Seed: cfg.Seed, Workload: info.DB,
	})
	opts := core.OptsFor(s.Workload, s.Claimed)
	opts.DetectLostUpdates = s.DetectLostUpdates
	if s.LinearizableKeys {
		opts.LinearizableKeys = true
	}
	res := core.Check(h, opts)

	found := map[anomaly.Type]bool{}
	for _, typ := range res.AnomalyTypes() {
		found[typ] = true
	}
	out := &RunResult{Scenario: s, History: h, Check: res, Reproduced: true}
	for _, want := range s.Expected {
		if !found[want] {
			out.MissingExpected = append(out.MissingExpected, want)
			out.Reproduced = false
		}
	}
	for _, bad := range s.Forbidden {
		if found[bad] {
			out.FoundForbidden = append(out.FoundForbidden, bad)
			out.Reproduced = false
		}
	}
	return out
}

// Report renders a human-readable campaign summary.
func (r *RunResult) Report() string {
	s := r.Scenario
	out := fmt.Sprintf("=== %s (%s) — claimed %s, engine %s ===\n",
		s.Name, s.Paper, s.Claimed, s.Isolation)
	out += fmt.Sprintf("history: %d ops (%d committed)\n",
		len(r.History.Completions()), len(r.History.OKs()))
	counts := map[anomaly.Type]int{}
	for _, a := range r.Check.Anomalies {
		counts[a.Type]++
	}
	var types []string
	for typ := range counts {
		types = append(types, string(typ))
	}
	sort.Strings(types)
	out += "anomalies:\n"
	if len(types) == 0 {
		out += "  (none)\n"
	}
	for _, typ := range types {
		out += fmt.Sprintf("  %-22s × %d\n", typ, counts[anomaly.Type(typ)])
	}
	if r.Reproduced {
		out += fmt.Sprintf("reproduced the %s signature: expected families all present", s.Paper)
		if len(s.Forbidden) > 0 {
			out += ", forbidden families absent"
		}
		out += "\n"
	} else {
		if len(r.MissingExpected) > 0 {
			out += fmt.Sprintf("MISSING expected families: %v\n", r.MissingExpected)
		}
		if len(r.FoundForbidden) > 0 {
			out += fmt.Sprintf("FOUND forbidden families: %v\n", r.FoundForbidden)
		}
	}
	return out
}
