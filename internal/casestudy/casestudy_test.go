package casestudy

import (
	"strings"
	"testing"

	"repro/internal/anomaly"
)

// Each campaign must reproduce its paper section's anomaly signature.
// Seeds and sizes are fixed, so these tests are deterministic.

func runByName(t *testing.T, name string, cfg Config) *RunResult {
	t.Helper()
	s, ok := Find(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	r := Run(s, cfg)
	if !r.Reproduced {
		t.Fatalf("%s not reproduced: missing %v, forbidden %v\n%s\ntypes: %v",
			name, r.MissingExpected, r.FoundForbidden, r.Report(), r.Check.AnomalyTypes())
	}
	return r
}

func TestTiDBCampaign(t *testing.T) {
	r := runByName(t, "tidb", Config{Clients: 10, Txns: 1500, Seed: 1})
	// TiDB claimed SI; the check must refute it.
	if r.Check.Valid {
		t.Error("tidb campaign passed its claimed SI level")
	}
}

func TestYugaByteCampaign(t *testing.T) {
	r := runByName(t, "yugabyte", Config{Clients: 10, Txns: 1500, Seed: 3})
	if r.Check.Valid {
		t.Error("yugabyte campaign passed its claimed serializable level")
	}
	// The paper: every cycle involved multiple anti-dependencies.
	for _, a := range r.Check.Anomalies {
		if a.Type == anomaly.G2Item && len(a.Cycle.Steps) > 0 {
			rw := a.Cycle.CountVia(2 /* graph.RW */)
			if rw < 2 {
				t.Errorf("G2 witness with %d rw edges; expected ≥ 2", rw)
			}
		}
	}
}

func TestFaunaCampaign(t *testing.T) {
	r := runByName(t, "fauna", Config{Clients: 10, Txns: 1200, Seed: 2})
	if r.Check.Valid {
		t.Error("fauna campaign passed its claimed strict-serializable level")
	}
}

func TestDgraphCampaign(t *testing.T) {
	r := runByName(t, "dgraph", Config{Clients: 10, Txns: 1500, Seed: 2})
	if r.Check.Valid {
		t.Error("dgraph campaign passed its claimed SI level")
	}
}

func TestScenarioLookup(t *testing.T) {
	for _, want := range []string{"tidb", "yugabyte", "fauna", "dgraph"} {
		if _, ok := Find(want); !ok {
			t.Errorf("scenario %s missing", want)
		}
	}
	if _, ok := Find("oracle"); ok {
		t.Error("unknown scenario found")
	}
	if got := len(Scenarios()); got != 4 {
		t.Errorf("scenario count = %d", got)
	}
}

func TestReportRendering(t *testing.T) {
	s, _ := Find("tidb")
	r := Run(s, Config{Clients: 6, Txns: 400, Seed: 1})
	rep := r.Report()
	for _, want := range []string{"tidb", "§7.1", "anomalies:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNonReproducedReporting(t *testing.T) {
	// A scenario whose expectations cannot be met (forbidding an anomaly
	// the fault guarantees) must report the discrepancy rather than
	// claiming success.
	s, _ := Find("tidb")
	s.Expected = []anomaly.Type{anomaly.G0} // retry faults never produce G0
	s.Forbidden = []anomaly.Type{anomaly.LostUpdate}
	r := Run(s, Config{Clients: 8, Txns: 600, Seed: 1})
	if r.Reproduced {
		t.Fatal("impossible expectations reported as reproduced")
	}
	if len(r.MissingExpected) != 1 || r.MissingExpected[0] != anomaly.G0 {
		t.Errorf("MissingExpected = %v", r.MissingExpected)
	}
	if len(r.FoundForbidden) != 1 || r.FoundForbidden[0] != anomaly.LostUpdate {
		t.Errorf("FoundForbidden = %v", r.FoundForbidden)
	}
	rep := r.Report()
	if !strings.Contains(rep, "MISSING") || !strings.Contains(rep, "FOUND forbidden") {
		t.Errorf("report hides the failure:\n%s", rep)
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Clients != 10 || cfg.Txns != 2000 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	// A zero config must fall back to defaults rather than running nothing.
	s, _ := Find("fauna")
	r := Run(s, Config{})
	if got := len(r.History.Completions()); got != cfg.Txns {
		t.Errorf("zero config ran %d txns, want %d", got, cfg.Txns)
	}
}
