package katomic

import (
	"repro/internal/explain"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/workload"
)

func init() {
	workload.Register(workload.Info{
		Name:          workload.KAtomic,
		Aliases:       []string{"k-atomic", "katomic-register"},
		RegisterReads: true,
		Gen:           gen.KAtomic,
		DB:            memdb.WorkloadRegister,
		Analyzer: workload.AnalyzerFunc(func(h *history.History, opts workload.Opts) workload.Analysis {
			an := Analyze(h, opts)
			// The k-atomicity test is a real-time interval analysis, not a
			// dependency inference: there are no ww/wr/rw edges to hand the
			// cycle search, so the graph is empty and the verdict flows out
			// entirely through anomalies (KAtomicViolation carries the
			// certified minimal k).
			return workload.Analysis{
				Graph:     graph.New(),
				Anomalies: an.Anomalies,
				Explainer: &explain.Explainer{Ops: an.Ops},
			}
		}),
	})
}
