// Package katomic implements the real-time register analysis of the
// katomic workload: atomicity and k-atomicity checking of single-object
// read/write registers ordered by invocation/completion intervals,
// after Golab, Hurwitz & Li, "On the k-Atomicity-Verification Problem"
// (see PAPERS.md), whose zone-based test generalizes Gibbons & Korach's
// classic atomicity verification.
//
// This is the one workload whose model is real time, not dependency
// graphs: instead of inferring ww/wr/rw edges from version orders, the
// analysis asks whether some linearization of the observed intervals
// serves every read an acceptably fresh value. Transactions are single
// operations (one read or one blind write of a unique value), so an
// op's interval is its transaction's interval.
//
// Model. Each write of value v opens a cluster C_v = {w_v} ∪ {committed
// reads returning v}; reads of the initial nil state join a virtual
// cluster whose write precedes the history. A cluster's zone is
// (t_min, t_max): t_min the earliest completion and t_max the latest
// invocation among its ops. After well-formedness (unique writes, no
// reads of unwritten values, no read completing before its value's
// write was invoked), the history is atomic — 1-atomic — iff no two
// zones conflict, where zones u ≠ v conflict when
//
//	t_min(u) < t_max(v)  and  t_min(v) < t_max(u).
//
// (For two "forward" zones this is interval overlap; the symmetric form
// also catches conflicts involving backward zones, and a short
// telescoping argument shows any longer cycle of the t_min/t_max
// relation implies such a 2-cycle, so the pairwise test is exact.)
//
// For non-atomic histories exact minimal-k verification is open for
// k >= 3, so the analyzer reports a certified value instead: an
// explicit witness linearization — every op placed at the earliest
// completion among its cluster's ops, writes before reads on ties,
// which is provably a linear extension of real-time precedence —
// certifies the history k-atomic for the schedule's worst read
// staleness, and the maximum number of pairwise-overlapping stale
// intervals [write completion, last read invocation] proves a lower
// bound. The reported K is the certified (witnessed) value; the true
// minimum lies in [LowerBound, K].
//
// Writes whose outcome is unknown (info ops, crashed invocations) may
// have committed at any later time: they enter their cluster with an
// unbounded completion, which keeps the analysis sound — an unread
// indeterminate write constrains nothing, and one whose value was read
// is pinned by its readers.
package katomic

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/anomaly"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

const (
	negInf = math.MinInt64 / 4 // the virtual initial write's interval
	posInf = math.MaxInt64 / 4 // completion of indeterminate writes
)

// KeyResult is the per-register outcome.
type KeyResult struct {
	Key string
	// Writes counts the committed and indeterminate writes analyzed;
	// Reads the committed reads (nil observations included).
	Writes, Reads int
	// K is the certified minimal k: 1 means atomic, k >= 2 means the
	// witness schedule serves every read within the k freshest values
	// and the zone test proves no schedule achieves 1. 0 means the
	// analysis was skipped (see Skipped).
	K int
	// LowerBound is the proven lower bound on the true minimal k.
	LowerBound int
	// Conflicts counts the conflicting zone pairs.
	Conflicts int
	// Skipped reports that duplicate writes destroyed recoverability
	// for this key, so no k claim is made.
	Skipped bool
}

// Analysis is the result of k-atomicity checking.
type Analysis struct {
	// K is the largest certified minimal k across keys: 1 means every
	// analyzed register is atomic, 0 means no register data was
	// analyzed (or every key was skipped). Meaningful only when no
	// structural anomalies were reported.
	K int
	// PerKey holds each analyzed register's result.
	PerKey map[string]KeyResult
	// Anomalies in deterministic report order.
	Anomalies []anomaly.Anomaly
	// Ops indexes analyzed completion ops by index, for explanations.
	Ops map[int]op.Op
}

// AtomicAt reports whether the analysis certified every register
// k-atomic at the given k. It is monotone: AtomicAt(k) implies
// AtomicAt(k+1).
func (a *Analysis) AtomicAt(k int) bool { return a.K <= k }

// obs is one committed read observation.
type obs struct {
	start, end int64
	o          op.Op
}

// cluster is one value's write plus the reads returning it.
type cluster struct {
	value        int
	isNil        bool
	hasW         bool
	wStart, wEnd int64
	w            op.Op
	dup          []op.Op // every writer, when more than one wrote value
	reads        []obs
	tMin, tMax   int64
	placed       int // 1-based write position in the witness schedule
}

func (c *cluster) valueName() string {
	if c.isNil {
		return "nil"
	}
	return strconv.Itoa(c.value)
}

// keyAgg accumulates one register's ops in history order.
type keyAgg struct {
	clusters map[int]*cluster
	order    []*cluster
	nilReads []obs
	aborted  map[int]op.Op // value -> first known-aborted writer
	writes   int
	reads    int
}

func (a *keyAgg) cluster(v int) *cluster {
	c, ok := a.clusters[v]
	if !ok {
		c = &cluster{value: v}
		a.clusters[v] = c
		a.order = append(a.order, c)
	}
	return c
}

func (a *keyAgg) addWrite(v int, start, end int64, o op.Op) {
	a.writes++
	c := a.cluster(v)
	if c.hasW {
		if len(c.dup) == 0 {
			c.dup = append(c.dup, c.w)
		}
		c.dup = append(c.dup, o)
		return
	}
	c.hasW = true
	c.w = o
	c.wStart, c.wEnd = start, end
}

func (a *keyAgg) addRead(v int, start, end int64, o op.Op) {
	a.reads++
	c := a.cluster(v)
	c.reads = append(c.reads, obs{start: start, end: end, o: o})
}

// Analyze checks a register history for atomicity and k-atomicity. The
// analysis is sequential and deterministic; of the shared options none
// apply (Parallelism is honored trivially).
func Analyze(h *history.History, opts workload.Opts) *Analysis {
	in := h.Keys()
	aggs := make([]*keyAgg, in.Len())
	ops := map[int]op.Op{}
	agg := func(id history.KeyID) *keyAgg {
		if aggs[id] == nil {
			aggs[id] = &keyAgg{clusters: map[int]*cluster{}, aborted: map[int]op.Op{}}
		}
		return aggs[id]
	}
	kid := in.MustID

	// Open invocations at the end of the history are crashed clients:
	// their writes may have committed, so they must join their clusters
	// as indeterminate rather than vanish.
	open := map[int]int{} // process -> position of outstanding invoke
	for pos, o := range h.Ops {
		if o.Type == op.Invoke {
			open[o.Process] = pos
			continue
		}
		delete(open, o.Process)
		ops[o.Index] = o
		start64, end64 := spanOf(h, pos)
		switch o.Type {
		case op.OK:
			for _, m := range o.Mops {
				switch {
				case m.F == op.FWrite:
					agg(kid(m.Key)).addWrite(m.Arg, start64, end64, o)
				case m.F == op.FRead && m.RegKnown && m.RegNil:
					a := agg(kid(m.Key))
					a.reads++
					a.nilReads = append(a.nilReads, obs{start: start64, end: end64, o: o})
				case m.F == op.FRead && m.RegKnown:
					agg(kid(m.Key)).addRead(m.Reg, start64, end64, o)
				}
			}
		case op.Info:
			for _, m := range o.Mops {
				if m.F == op.FWrite {
					agg(kid(m.Key)).addWrite(m.Arg, start64, posInf, o)
				}
			}
		case op.Fail:
			for _, m := range o.Mops {
				if m.F == op.FWrite {
					a := agg(kid(m.Key))
					if _, seen := a.aborted[m.Arg]; !seen {
						a.aborted[m.Arg] = o
					}
				}
			}
		}
	}
	crashed := make([]int, 0, len(open))
	for _, pos := range open {
		crashed = append(crashed, pos)
	}
	sort.Ints(crashed)
	for _, pos := range crashed {
		o := h.Ops[pos]
		for _, m := range o.Mops {
			if m.F == op.FWrite {
				agg(kid(m.Key)).addWrite(m.Arg, int64(o.Index), posInf, o)
			}
		}
	}

	out := &Analysis{PerKey: map[string]KeyResult{}, Ops: ops}
	for _, id := range in.SortedIDs() {
		a := aggs[id]
		if a == nil {
			continue
		}
		kr, anoms := analyzeKey(in.Key(id), a)
		out.PerKey[kr.Key] = kr
		out.Anomalies = append(out.Anomalies, anoms...)
		if kr.K > out.K {
			out.K = kr.K
		}
	}
	return out
}

// spanOf returns the invoke/completion indices of the completion at
// position pos as int64 times.
func spanOf(h *history.History, pos int) (int64, int64) {
	s, e := h.Span(pos)
	return int64(s), int64(e)
}

// analyzeKey runs the zone test over one register's accumulated ops.
func analyzeKey(key string, a *keyAgg) (KeyResult, []anomaly.Anomaly) {
	var anoms []anomaly.Anomaly
	res := KeyResult{Key: key, Writes: a.writes, Reads: a.reads}

	// Well-formedness: reads of unwritten values are aborted reads when
	// the only known writer aborted, garbage otherwise; reads completing
	// before their value's write was invoked cannot have come from it.
	var zones []*cluster
	skipped := false
	for _, c := range a.order {
		if !c.hasW {
			for _, r := range c.reads {
				if ab, ok := a.aborted[c.value]; ok {
					anoms = append(anoms, anomaly.Anomaly{
						Type: anomaly.G1a, Key: key, Ops: []op.Op{ab, r.o},
						Explanation: fmt.Sprintf(
							"%s read %s = %d, a value written only by %s, which aborted",
							r.o.Name(), key, c.value, ab.Name()),
					})
					continue
				}
				anoms = append(anoms, anomaly.Anomaly{
					Type: anomaly.GarbageRead, Key: key, Ops: []op.Op{r.o},
					Explanation: fmt.Sprintf(
						"%s read %s = %d, a value no transaction wrote",
						r.o.Name(), key, c.value),
				})
			}
			continue
		}
		if len(c.dup) > 0 {
			writers := make([]string, len(c.dup))
			for i, w := range c.dup {
				writers[i] = w.Name()
			}
			anoms = append(anoms, anomaly.Anomaly{
				Type: anomaly.DuplicateAppends, Key: key, Ops: c.dup,
				Explanation: fmt.Sprintf(
					"value %d of register %s was written by %d transactions (%s); unique write arguments are what make value clusters recoverable, so the k-atomicity analysis is skipped for this key",
					c.value, key, len(c.dup), joinNames(writers)),
			})
			skipped = true
			continue
		}
		kept := c.reads[:0:0]
		for _, r := range c.reads {
			if r.end < c.wStart {
				anoms = append(anoms, anomaly.Anomaly{
					Type: anomaly.GarbageRead, Key: key, Ops: []op.Op{r.o, c.w},
					Explanation: fmt.Sprintf(
						"%s read %s = %d and completed before %s, the only write of that value, was invoked — the value cannot have come from it",
						r.o.Name(), key, c.value, c.w.Name()),
				})
				continue
			}
			kept = append(kept, r)
		}
		c.reads = kept
		zones = append(zones, c)
	}
	if skipped {
		res.Skipped = true
		return res, anoms
	}
	if len(a.nilReads) > 0 {
		nilC := &cluster{isNil: true, hasW: true, wStart: negInf, wEnd: negInf, reads: a.nilReads}
		zones = append([]*cluster{nilC}, zones...)
	}

	// Zones and the pairwise conflict test.
	for _, c := range zones {
		c.tMin, c.tMax = c.wEnd, c.wStart
		for _, r := range c.reads {
			if r.end < c.tMin {
				c.tMin = r.end
			}
			if r.start > c.tMax {
				c.tMax = r.start
			}
		}
	}
	conflicts := 0
	var witU, witV *cluster
	for i := 0; i < len(zones); i++ {
		for j := i + 1; j < len(zones); j++ {
			u, v := zones[i], zones[j]
			if u.tMin < v.tMax && v.tMin < u.tMax {
				if conflicts == 0 {
					witU, witV = u, v
				}
				conflicts++
			}
		}
	}
	res.Conflicts = conflicts
	if conflicts == 0 {
		res.K, res.LowerBound = 1, 1
		return res, anoms
	}

	// Witness schedule: every cluster op placed at the earliest
	// completion among the cluster's ops (which is a linear extension of
	// real-time precedence; writes first on ties), certifying the
	// schedule's worst read staleness as an achieved k.
	type item struct {
		key   int64
		write bool
		idx   int
		c     *cluster
		r     obs
	}
	var items []item
	for _, c := range zones {
		k := c.wEnd
		for _, r := range c.reads {
			if r.end < k {
				k = r.end
			}
		}
		wIdx := -1
		if !c.isNil {
			wIdx = c.w.Index
		}
		items = append(items, item{key: k, write: true, idx: wIdx, c: c})
		for _, r := range c.reads {
			items = append(items, item{key: r.end, idx: r.o.Index, c: c, r: r})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].key != items[j].key {
			return items[i].key < items[j].key
		}
		if items[i].write != items[j].write {
			return items[i].write
		}
		return items[i].idx < items[j].idx
	})
	writeCount, kUp := 0, 1
	var witRead obs
	var witCl *cluster
	for _, it := range items {
		if it.write {
			writeCount++
			it.c.placed = writeCount
			continue
		}
		if kr := writeCount - it.c.placed + 1; kr > kUp {
			kUp, witRead, witCl = kr, it.r, it.c
		}
	}

	// Lower bound: d pairwise-overlapping intervals [write completion,
	// last read invocation] of distinct values mean d completed writes
	// all real-time-precede d reads of d distinct values; in any
	// linearization the earliest-placed of those values is read at
	// staleness >= d. Any zone conflict independently proves k >= 2.
	type ev struct {
		t int64
		d int
	}
	var evs []ev
	for _, c := range zones {
		last := int64(negInf)
		for _, r := range c.reads {
			if r.start > last {
				last = r.start
			}
		}
		if len(c.reads) == 0 || last < c.wEnd {
			continue
		}
		evs = append(evs, ev{c.wEnd, +1}, ev{last, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d > evs[j].d
	})
	depth, kLo := 0, 2
	for _, e := range evs {
		depth += e.d
		if depth > kLo {
			kLo = depth
		}
	}
	res.LowerBound = kLo
	res.K = kUp
	if res.K < kLo {
		res.K = kLo
	}

	witOps := []op.Op{witRead.o}
	if witCl != nil && !witCl.isNil {
		witOps = append(witOps, witCl.w)
	}
	anoms = append(anoms, anomaly.Anomaly{
		Type: anomaly.KAtomicViolation, Key: key, K: res.K, Ops: witOps,
		Explanation: fmt.Sprintf(
			"register %s is not atomic but is %d-atomic: %d conflicting zone pair(s) among %d value(s), e.g. the zones of %s and %s overlap in real time; witness: %s observed %s = %s, %d write(s) stale in the certifying schedule; proven lower bound: k >= %d",
			key, res.K, conflicts, len(zones), witU.valueName(), witV.valueName(),
			witRead.o.Name(), key, witCl.valueName(), kUp-1, kLo),
	})
	return res, anoms
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
