package katomic

import (
	"reflect"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
	"repro/internal/workload"
)

func analyze(t *testing.T, ops ...op.Op) *Analysis {
	t.Helper()
	return Analyze(history.MustNew(ops), workload.Opts{})
}

func hasAnomaly(a *Analysis, typ anomaly.Type) bool {
	for _, an := range a.Anomalies {
		if an.Type == typ {
			return true
		}
	}
	return false
}

// TestAtomicSequential: strictly sequential register traffic is atomic.
func TestAtomicSequential(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 1)),
		op.Txn(2, 0, op.OK, op.Write("x", 2)),
		op.Txn(3, 1, op.OK, op.ReadReg("x", 2)),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	if a.K != 1 || !a.AtomicAt(1) {
		t.Fatalf("K = %d, want 1", a.K)
	}
	kr := a.PerKey["x"]
	if kr.K != 1 || kr.Conflicts != 0 || kr.Writes != 2 || kr.Reads != 2 {
		t.Fatalf("per-key result %+v", kr)
	}
}

// TestStaleReadK2: a read returning the previous value after a newer
// write completed is exactly 2-atomic.
func TestStaleReadK2(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 0, op.OK, op.Write("x", 2)),
		op.Txn(2, 1, op.OK, op.ReadReg("x", 1)),
	)
	if !hasAnomaly(a, anomaly.KAtomicViolation) {
		t.Fatalf("expected %s, got %v", anomaly.KAtomicViolation, a.Anomalies)
	}
	if a.K != 2 {
		t.Fatalf("K = %d, want 2", a.K)
	}
	kr := a.PerKey["x"]
	if kr.K != 2 || kr.LowerBound != 2 || kr.Conflicts == 0 {
		t.Fatalf("per-key result %+v", kr)
	}
	if a.Anomalies[0].K != 2 {
		t.Fatalf("anomaly K = %d, want 2", a.Anomalies[0].K)
	}
	if a.AtomicAt(1) || !a.AtomicAt(2) || !a.AtomicAt(3) {
		t.Fatalf("AtomicAt not monotone around K=2")
	}
}

// TestThreeDeepK3: in a compact (totally ordered) history the only
// linear extension is index order, so a read three writes back is
// exactly 3-atomic.
func TestThreeDeepK3(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 0, op.OK, op.Write("x", 2)),
		op.Txn(2, 0, op.OK, op.Write("x", 3)),
		op.Txn(3, 1, op.OK, op.ReadReg("x", 1)),
	)
	if a.K != 3 {
		t.Fatalf("K = %d, want 3", a.K)
	}
}

// TestNilStaleK2: reading the initial nil state strictly after a write
// completed is a violation — the virtual initial write's backward zone
// conflicts with the real write's.
func TestNilStaleK2(t *testing.T) {
	a := analyze(t,
		op.Op{Index: 0, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Write("x", 5)}},
		op.Op{Index: 1, Process: 0, Type: op.OK, Mops: []op.Mop{op.Write("x", 5)}},
		op.Op{Index: 2, Process: 1, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		op.Op{Index: 3, Process: 1, Type: op.OK, Mops: []op.Mop{op.ReadNil("x")}},
	)
	if !hasAnomaly(a, anomaly.KAtomicViolation) || a.K != 2 {
		t.Fatalf("K = %d, anomalies %v; want K=2 with a violation", a.K, a.Anomalies)
	}
}

// TestConcurrentNilReadClean: a nil read concurrent with the first
// write is legal — the read may linearize before the write.
func TestConcurrentNilReadClean(t *testing.T) {
	a := analyze(t,
		op.Op{Index: 0, Process: 1, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		op.Op{Index: 1, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Write("x", 5)}},
		op.Op{Index: 2, Process: 1, Type: op.OK, Mops: []op.Mop{op.ReadNil("x")}},
		op.Op{Index: 3, Process: 0, Type: op.OK, Mops: []op.Mop{op.Write("x", 5)}},
	)
	if len(a.Anomalies) != 0 || a.K != 1 {
		t.Fatalf("K = %d, anomalies %v; want clean K=1", a.K, a.Anomalies)
	}
}

// TestConcurrentStaleReadClean: a read overlapping both a write and its
// successor may return either value — no violation.
func TestConcurrentStaleReadClean(t *testing.T) {
	a := analyze(t,
		op.Op{Index: 0, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Write("x", 1)}},
		op.Op{Index: 1, Process: 0, Type: op.OK, Mops: []op.Mop{op.Write("x", 1)}},
		op.Op{Index: 2, Process: 1, Type: op.Invoke, Mops: []op.Mop{op.Write("x", 2)}},
		op.Op{Index: 3, Process: 2, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		op.Op{Index: 4, Process: 1, Type: op.OK, Mops: []op.Mop{op.Write("x", 2)}},
		op.Op{Index: 5, Process: 2, Type: op.OK, Mops: []op.Mop{op.ReadReg("x", 1)}},
	)
	if len(a.Anomalies) != 0 || a.K != 1 {
		t.Fatalf("K = %d, anomalies %v; want clean K=1", a.K, a.Anomalies)
	}
}

// TestInfoWriteReadClean: an indeterminate write whose value a later
// read observes joins its cluster with an unbounded completion; the
// reader pins it and nothing conflicts.
func TestInfoWriteReadClean(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.Info, op.Write("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 1)),
		op.Txn(2, 2, op.OK, op.Write("x", 2)),
	)
	if len(a.Anomalies) != 0 || a.K != 1 {
		t.Fatalf("K = %d, anomalies %v; want clean K=1", a.K, a.Anomalies)
	}
}

// TestCrashedWriterRead: a crashed client's open write invocation may
// have committed; a read observing its value is not garbage.
func TestCrashedWriterRead(t *testing.T) {
	a := analyze(t,
		op.Op{Index: 0, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Write("x", 1)}},
		op.Op{Index: 1, Process: 1, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		op.Op{Index: 2, Process: 1, Type: op.OK, Mops: []op.Mop{op.ReadReg("x", 1)}},
	)
	if len(a.Anomalies) != 0 || a.K != 1 {
		t.Fatalf("K = %d, anomalies %v; want clean K=1", a.K, a.Anomalies)
	}
}

// TestGarbageRead: a value nobody wrote.
func TestGarbageRead(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.ReadReg("x", 99)),
	)
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("expected %s, got %v", anomaly.GarbageRead, a.Anomalies)
	}
	if a.K != 1 {
		t.Fatalf("K = %d, want 1 (no zones to conflict)", a.K)
	}
}

// TestFutureRead: a read that completed before its value's only write
// was invoked cannot have come from it — reported and excluded.
func TestFutureRead(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 1, op.OK, op.ReadReg("x", 1)),
		op.Txn(1, 0, op.OK, op.Write("x", 1)),
	)
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("expected %s, got %v", anomaly.GarbageRead, a.Anomalies)
	}
	if a.K != 1 {
		t.Fatalf("K = %d, want 1 after excluding the impossible read", a.K)
	}
}

// TestAbortedRead: reading a value whose only writer aborted is G1a.
func TestAbortedRead(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.Fail, op.Write("x", 7)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 7)),
	)
	if !hasAnomaly(a, anomaly.G1a) {
		t.Fatalf("expected %s, got %v", anomaly.G1a, a.Anomalies)
	}
}

// TestDuplicateWrite: two committed writes of the same value destroy
// cluster recoverability; the key's k analysis is skipped.
func TestDuplicateWrite(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 1, op.OK, op.Write("x", 1)),
	)
	if !hasAnomaly(a, anomaly.DuplicateAppends) {
		t.Fatalf("expected %s, got %v", anomaly.DuplicateAppends, a.Anomalies)
	}
	kr := a.PerKey["x"]
	if !kr.Skipped || kr.K != 0 {
		t.Fatalf("per-key result %+v, want skipped", kr)
	}
}

// TestMultiKey: keys are independent; Analysis.K is the worst key.
func TestMultiKey(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 0, op.OK, op.Write("y", 1)),
		op.Txn(2, 0, op.OK, op.Write("x", 2)),
		op.Txn(3, 1, op.OK, op.ReadReg("x", 1)),
		op.Txn(4, 1, op.OK, op.ReadReg("y", 1)),
	)
	if a.PerKey["y"].K != 1 || a.PerKey["x"].K != 2 || a.K != 2 {
		t.Fatalf("per-key x=%+v y=%+v K=%d", a.PerKey["x"], a.PerKey["y"], a.K)
	}
}

// TestEmptyHistory honors the analyzer contract: non-nil result, no
// anomalies.
func TestEmptyHistory(t *testing.T) {
	a := analyze(t)
	if a.K != 0 || len(a.Anomalies) != 0 || !a.AtomicAt(1) {
		t.Fatalf("empty history: %+v", a)
	}
}

// TestDeterminism: identical inputs produce identical analyses.
func TestDeterminism(t *testing.T) {
	ops := []op.Op{
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 0, op.OK, op.Write("x", 2)),
		op.Txn(2, 1, op.OK, op.ReadReg("x", 1)),
		op.Txn(3, 2, op.OK, op.ReadReg("x", 99)),
	}
	a := Analyze(history.MustNew(ops), workload.Opts{})
	b := Analyze(history.MustNew(ops), workload.Opts{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic analysis:\n%+v\n%+v", a, b)
	}
}

// engineHistory runs the katomic workload against the in-memory engine.
func engineHistory(t *testing.T, iso memdb.Isolation, faults memdb.Faults, seed int64) *history.History {
	t.Helper()
	return memdb.Run(memdb.RunConfig{
		Clients:   8,
		Txns:      400,
		Isolation: iso,
		Faults:    faults,
		Source:    gen.New(gen.Config{Workload: gen.KAtomic}, seed),
		Seed:      seed,
		Workload:  memdb.WorkloadRegister,
	})
}

// TestEngineCleanSerializable: the engine's serializable level commits
// in real-time order, so clean runs must be atomic at every seed.
func TestEngineCleanSerializable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		h := engineHistory(t, memdb.Serializable, memdb.Faults{}, seed)
		a := Analyze(h, workload.Opts{})
		if len(a.Anomalies) != 0 || a.K > 1 {
			t.Fatalf("seed %d: K = %d, anomalies %v; want clean", seed, a.K, a.Anomalies)
		}
	}
}

// TestEngineStaleReads: the stale-read fault rewinds read snapshots a
// few commits back; real-time analysis must convict it.
func TestEngineStaleReads(t *testing.T) {
	h := engineHistory(t, memdb.Serializable, memdb.Faults{StaleReadProb: 0.5}, 1)
	a := Analyze(h, workload.Opts{})
	if !hasAnomaly(a, anomaly.KAtomicViolation) {
		t.Fatalf("expected %s, got %v", anomaly.KAtomicViolation, a.Anomalies)
	}
	if a.K < 2 {
		t.Fatalf("K = %d, want >= 2", a.K)
	}
}
