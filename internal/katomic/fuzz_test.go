package katomic

import (
	"reflect"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

// decodeFuzzHistory turns raw bytes into a well-formed (possibly
// truncated) register history over one key and four processes. Each
// byte pair is one event: if the selected process has no outstanding
// invocation the pair invokes a read or a write, otherwise it completes
// the outstanding op with an OK/Fail/Info outcome. Values are folded
// into a small space so duplicate writes, garbage reads, and nil
// observations all occur; invocations left open at the end model
// crashed clients.
func decodeFuzzHistory(data []byte) []op.Op {
	const procs = 4
	type pending struct {
		active bool
		write  bool
		val    int
	}
	var open [procs]pending
	var ops []op.Op
	idx := 0
	for i := 0; i+1 < len(data); i += 2 {
		b, v := data[i], int(data[i+1]%6)
		p := int(b % procs)
		if !open[p].active {
			m := op.Read("x")
			if b&4 != 0 {
				m = op.Write("x", v)
			}
			ops = append(ops, op.Op{Index: idx, Process: p, Type: op.Invoke, Mops: []op.Mop{m}})
			open[p] = pending{active: true, write: b&4 != 0, val: v}
			idx++
			continue
		}
		var typ op.Type
		switch (b >> 3) % 4 {
		case 2:
			typ = op.Fail
		case 3:
			typ = op.Info
		default:
			typ = op.OK
		}
		var m op.Mop
		switch {
		case open[p].write:
			m = op.Write("x", open[p].val)
		case v == 0:
			m = op.ReadNil("x")
		default:
			m = op.ReadReg("x", v)
		}
		ops = append(ops, op.Op{Index: idx, Process: p, Type: typ, Mops: []op.Mop{m}})
		open[p] = pending{}
		idx++
	}
	return ops
}

// FuzzKAtomicCheck drives the zone analysis with arbitrary histories
// and checks its invariants: no panics, determinism, the lower bound
// never exceeds the certified K, K >= 2 exactly when a violation is
// reported (per key, with the anomaly carrying that K), and AtomicAt
// is monotone.
func FuzzKAtomicCheck(f *testing.F) {
	f.Add([]byte{})
	// Sequential write 1, write 2, then a stale read of 1.
	f.Add([]byte{0x04, 0x01, 0x00, 0x00, 0x04, 0x02, 0x00, 0x00, 0x01, 0x00, 0x01, 0x01})
	// Two committed writes of the same value.
	f.Add([]byte{0x04, 0x01, 0x00, 0x00, 0x04, 0x01, 0x00, 0x00})
	// A nil read strictly after a committed write.
	f.Add([]byte{0x04, 0x01, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00})
	// A crashed writer whose value a later read observes.
	f.Add([]byte{0x04, 0x01, 0x01, 0x00, 0x01, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzHistory(data)
		h := history.MustNew(ops)
		a := Analyze(h, workload.Opts{})
		b := Analyze(history.MustNew(ops), workload.Opts{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("nondeterministic analysis:\n%+v\n%+v", a, b)
		}

		violations := map[string]int{} // key -> reported K
		for _, an := range a.Anomalies {
			if an.Type == anomaly.KAtomicViolation {
				if _, dup := violations[an.Key]; dup {
					t.Fatalf("two violations for key %s", an.Key)
				}
				if an.K < 2 {
					t.Fatalf("violation with K = %d", an.K)
				}
				violations[an.Key] = an.K
			}
		}

		maxK := 0
		for key, kr := range a.PerKey {
			if kr.Skipped {
				if kr.K != 0 {
					t.Fatalf("key %s skipped but K = %d", key, kr.K)
				}
				if _, has := violations[key]; has {
					t.Fatalf("key %s skipped yet reported a violation", key)
				}
				continue
			}
			if kr.K < 1 || kr.LowerBound < 1 || kr.LowerBound > kr.K {
				t.Fatalf("key %s bounds out of order: %+v", key, kr)
			}
			vk, has := violations[key]
			if (kr.K >= 2) != has {
				t.Fatalf("key %s K = %d but violation reported = %v", key, kr.K, has)
			}
			if has && vk != kr.K {
				t.Fatalf("key %s anomaly K %d != result K %d", key, vk, kr.K)
			}
			if kr.K > maxK {
				maxK = kr.K
			}
		}
		if a.K != maxK {
			t.Fatalf("Analysis.K = %d, want max per-key %d", a.K, maxK)
		}
		for k := 0; k < 8; k++ {
			if a.AtomicAt(k) && !a.AtomicAt(k+1) {
				t.Fatalf("AtomicAt not monotone at %d", k)
			}
		}
	})
}
