package serialcheck

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
)

func TestSequentialHistorySerializable(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 0, op.OK, op.Append("x", 2)),
		op.Txn(2, 0, op.OK, op.ReadList("x", []int{1, 2})),
	})
	r := Check(h, Opts{})
	if r.Outcome != Serializable {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if len(r.Order) != 3 {
		t.Errorf("witness order = %v", r.Order)
	}
}

func TestReorderingAcrossConcurrency(t *testing.T) {
	// Two concurrent transactions whose reads force the opposite of their
	// index order: still serializable.
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 1, Type: op.Invoke},
		// T2 (completing first) observed T3's append: T3 must come first.
		{Index: 2, Process: 0, Type: op.OK, Mops: []op.Mop{op.ReadList("x", []int{7})}},
		{Index: 3, Process: 1, Type: op.OK, Mops: []op.Mop{op.Append("x", 7)}},
	})
	r := Check(h, Opts{})
	if r.Outcome != Serializable {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if len(r.Order) != 2 || r.Order[0] != 3 || r.Order[1] != 2 {
		t.Errorf("witness order = %v, want [3 2]", r.Order)
	}
}

func TestRealtimeViolationRejected(t *testing.T) {
	// T0 completes before T1 begins, but T1 doesn't see T0's append:
	// not strict-serializable.
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 0, Type: op.OK, Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 2, Process: 1, Type: op.Invoke},
		{Index: 3, Process: 1, Type: op.OK, Mops: []op.Mop{op.ReadList("x", []int{})}},
	})
	r := Check(h, Opts{})
	if r.Outcome != NotSerializable {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestWriteSkewRejected(t *testing.T) {
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 1, Type: op.Invoke},
		{Index: 2, Process: 0, Type: op.OK, Mops: []op.Mop{
			op.ReadList("x", []int{}), op.Append("y", 1)}},
		{Index: 3, Process: 1, Type: op.OK, Mops: []op.Mop{
			op.ReadList("y", []int{}), op.Append("x", 1)}},
		{Index: 4, Process: 2, Type: op.Invoke},
		{Index: 5, Process: 2, Type: op.OK, Mops: []op.Mop{
			op.ReadList("x", []int{1}), op.ReadList("y", []int{1})}},
	})
	r := Check(h, Opts{})
	if r.Outcome != NotSerializable {
		t.Fatalf("write skew accepted: %v", r.Outcome)
	}
}

func TestInfoTransactionsOptional(t *testing.T) {
	// An indeterminate append that nobody observed: fine either way.
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.Info, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{})),
	})
	r := Check(h, Opts{})
	if r.Outcome != Serializable {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	// An indeterminate append that *was* observed must be schedulable.
	h2 := history.MustNew([]op.Op{
		op.Txn(0, 0, op.Info, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
	})
	r2 := Check(h2, Opts{})
	if r2.Outcome != Serializable {
		t.Fatalf("observed info append: %v", r2.Outcome)
	}
}

func TestFailedTransactionsExcluded(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{})),
	})
	r := Check(h, Opts{})
	if r.Outcome != Serializable {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestTimeout(t *testing.T) {
	// A large concurrent history with an unsatisfiable read forces an
	// exhaustive search; a tiny timeout must trip.
	var ops []op.Op
	idx := 0
	const c = 12
	for p := 0; p < c; p++ {
		ops = append(ops, op.Op{Index: idx, Process: p, Type: op.Invoke})
		idx++
	}
	for p := 0; p < c; p++ {
		ops = append(ops, op.Op{Index: idx, Process: p, Type: op.OK,
			Mops: []op.Mop{op.Append("x", p)}})
		idx++
	}
	ops = append(ops,
		op.Op{Index: idx, Process: c, Type: op.Invoke},
		op.Op{Index: idx + 1, Process: c, Type: op.OK,
			Mops: []op.Mop{op.ReadList("x", []int{99})}})
	h := history.MustNew(ops)
	r := Check(h, Opts{Timeout: time.Millisecond})
	if r.Outcome == Serializable {
		t.Fatalf("garbage read accepted")
	}
	// Either it finishes fast (NotSerializable) or times out; both are
	// acceptable, but with 12! permutations the timeout path is expected.
	if r.Outcome == NotSerializable && r.Elapsed > time.Second {
		t.Errorf("search took too long despite timeout: %v", r.Elapsed)
	}
}

// TestAgreesWithEngine: histories from the serializable engine check out;
// the checker and the engine agree on what serializable means.
func TestAgreesWithEngine(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.New(gen.Config{ActiveKeys: 3, MaxWritesPerKey: 20, MaxOps: 3}, seed)
		h := memdb.Run(memdb.RunConfig{
			Clients: 3, Txns: 40, Isolation: memdb.StrictSerializable,
			Source: g, Seed: seed,
		})
		r := Check(h, Opts{Timeout: 30 * time.Second})
		if r.Outcome != Serializable {
			t.Fatalf("seed %d: engine history not serializable: %v (visited %d)",
				seed, r.Outcome, r.Visited)
		}
	}
}

// TestRejectsRetryAnomalies: the TiDB-style retry fault produces
// non-serializable histories the baseline also rejects (when it finishes).
func TestRejectsRetryAnomalies(t *testing.T) {
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		g := gen.New(gen.Config{ActiveKeys: 2, MaxWritesPerKey: 30, MaxOps: 3}, seed)
		h := memdb.Run(memdb.RunConfig{
			Clients: 4, Txns: 60, Isolation: memdb.SnapshotIsolation,
			Faults: memdb.Faults{RetryStompProb: 1},
			Source: g, Seed: seed,
		})
		r := Check(h, Opts{Timeout: 10 * time.Second})
		if r.Outcome == NotSerializable {
			found = true
		}
	}
	if !found {
		t.Fatal("no retry run was rejected")
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Serializable.String() != "serializable" ||
		NotSerializable.String() != "not-serializable" ||
		Unknown.String() != "unknown" {
		t.Error("outcome names wrong")
	}
}

func TestWitnessOrderRespectsRealtime(t *testing.T) {
	g := gen.New(gen.Config{ActiveKeys: 3, MaxWritesPerKey: 20, MaxOps: 3}, 5)
	h := memdb.Run(memdb.RunConfig{
		Clients: 3, Txns: 30, Isolation: memdb.StrictSerializable,
		Source: g, Seed: 5,
	})
	r := Check(h, Opts{Timeout: 30 * time.Second})
	if r.Outcome != Serializable {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	// Positions in the witness order.
	pos := map[int]int{}
	for i, id := range r.Order {
		pos[id] = i
	}
	// For each pair with a realtime constraint (complete < invoke), the
	// witness must preserve it.
	type span struct{ id, inv, comp int }
	var spans []span
	for p, o := range h.Ops {
		if o.Type != op.OK {
			continue
		}
		inv, comp := h.Span(p)
		spans = append(spans, span{o.Index, inv, comp})
	}
	for _, a := range spans {
		for _, b := range spans {
			if a.comp < b.inv && pos[a.id] > pos[b.id] {
				t.Fatalf("witness order violates realtime: T%d after T%d", a.id, b.id)
			}
		}
	}
}
