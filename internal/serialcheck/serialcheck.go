// Package serialcheck is the reproduction's stand-in for Knossos
// (Jepsen's linearizability checker), the baseline Elle is compared
// against in the paper's Figure 4.
//
// Strict serializability of a transactional history is equivalent to
// linearizability where each operation is a whole transaction and the
// linearizable object is a map of keys to lists (§1). This checker uses
// the Wing & Gong search strategy: depth-first exploration of every
// permutation of transactions that respects the real-time precedence
// order, replaying each prefix against a model state and pruning branches
// whose reads don't match. Memoizing visited (applied-set, state) pairs
// prunes re-derivations, but the search remains exponential in the number
// of concurrent transactions — with c concurrent transactions there are
// c! candidate interleavings — which is exactly the behavior Figure 4
// documents for Knossos.
package serialcheck

import (
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/txngraph"
)

// Outcome reports a verdict.
type Outcome int

const (
	// Serializable: some legal transaction order explains every read.
	Serializable Outcome = iota
	// NotSerializable: the search space was exhausted without finding one.
	NotSerializable
	// Unknown: the time budget expired first (the paper capped Knossos
	// runs at 100 seconds).
	Unknown
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Serializable:
		return "serializable"
	case NotSerializable:
		return "not-serializable"
	default:
		return "unknown"
	}
}

// Result carries the verdict and search statistics.
type Result struct {
	Outcome Outcome
	// Visited counts search nodes expanded.
	Visited int64
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// Order, when serializable, is one witness order of op indices.
	Order []int
}

// Opts bounds the search.
type Opts struct {
	// Timeout caps the search; zero means no cap.
	Timeout time.Duration
}

type txn struct {
	id    int // op index
	mops  []op.Mop
	preds []int32 // dense ids of realtime predecessors
	info  bool    // indeterminate: may be skipped
}

// Check searches for a strict-serializable explanation of a list-append
// history. Fail ops are excluded; info ops may appear anywhere in the
// order or not at all.
func Check(h *history.History, opts Opts) *Result {
	start := time.Now()
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}

	// Collect transactions and the (reduced) realtime order between them.
	rt := txngraph.RealtimeGraph(h)
	var txns []txn
	id2dense := map[int]int32{}
	for _, o := range h.Completions() {
		switch o.Type {
		case op.OK:
			id2dense[o.Index] = int32(len(txns))
			txns = append(txns, txn{id: o.Index, mops: o.Mops})
		case op.Info:
			id2dense[o.Index] = int32(len(txns))
			txns = append(txns, txn{id: o.Index, mops: o.Mops, info: true})
		}
	}
	// Incoming realtime edges are predecessors. RealtimeGraph emits
	// forward edges, so gather by scanning all nodes' out-edges once.
	for _, a := range rt.Nodes() {
		ai, ok := id2dense[a]
		if !ok {
			continue
		}
		rt.Out(a, graph.Realtime.Mask(), func(b int, _ graph.KindSet) {
			if bi, ok := id2dense[b]; ok {
				txns[bi].preds = append(txns[bi].preds, ai)
			}
		})
	}
	for i := range txns {
		sort.Slice(txns[i].preds, func(a, b int) bool { return txns[i].preds[a] < txns[i].preds[b] })
	}

	s := &searcher{
		txns:     txns,
		deadline: deadline,
		memo:     map[uint64]bool{},
		applied:  make([]bool, len(txns)),
		state:    newModelState(len(txns)),
	}
	ok := s.dfs()
	res := &Result{Visited: s.visited, Elapsed: time.Since(start)}
	switch {
	case s.timedOut:
		res.Outcome = Unknown
	case ok:
		res.Outcome = Serializable
		res.Order = s.witness
	default:
		res.Outcome = NotSerializable
	}
	return res
}

type searcher struct {
	txns     []txn
	deadline time.Time
	memo     map[uint64]bool // states proven fruitless
	applied  []bool
	nApplied int
	nOKLeft  int
	state    *modelState
	visited  int64
	timedOut bool
	witness  []int
	order    []int
}

func (s *searcher) dfs() bool {
	// Count required (ok) transactions once.
	s.nOKLeft = 0
	for _, t := range s.txns {
		if !t.info {
			s.nOKLeft++
		}
	}
	return s.step()
}

// step explores extensions of the current prefix. Returns true if a full
// explanation was found.
func (s *searcher) step() bool {
	if s.nOKLeft == 0 {
		s.witness = append([]int(nil), s.order...)
		return true
	}
	s.visited++
	if s.visited&1023 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.timedOut = true
		return false
	}
	key := s.state.fingerprint()
	if s.memo[key] {
		return false
	}

	for i := range s.txns {
		t := &s.txns[i]
		if s.applied[i] || !s.ready(t) {
			continue
		}
		nPushed, ok := s.apply(t)
		if ok {
			s.applied[i] = true
			s.state.toggle(i)
			s.nApplied++
			if !t.info {
				s.nOKLeft--
			}
			s.order = append(s.order, t.id)
			if s.step() {
				return true
			}
			if s.timedOut {
				return false
			}
			s.order = s.order[:len(s.order)-1]
			if !t.info {
				s.nOKLeft++
			}
			s.nApplied--
			s.state.toggle(i)
			s.applied[i] = false
		}
		s.undo(t, nPushed)
	}
	s.memo[key] = true
	return false
}

// ready reports whether all realtime predecessors of t are applied.
// An info transaction that is skipped never blocks its successors: since
// skipping is modeled by simply not applying it, a successor is ready
// only when every predecessor is applied — so info predecessors must be
// decided first. To keep the model faithful (an unacknowledged
// transaction may simply never have executed), info transactions are
// exempt from being required as predecessors.
func (s *searcher) ready(t *txn) bool {
	for _, p := range t.preds {
		if !s.applied[p] && !s.txns[p].info {
			return false
		}
	}
	return true
}

// apply replays t against the model state, returning how many appends
// were pushed (for undo) and whether every read matched.
func (s *searcher) apply(t *txn) (int, bool) {
	pushed := 0
	for _, m := range t.mops {
		switch m.F {
		case op.FAppend:
			s.state.push(m.Key, m.Arg)
			pushed++
		case op.FRead:
			if !m.ListKnown() {
				continue // unknown read constrains nothing
			}
			if !equal(s.state.value(m.Key), m.List) {
				return pushed, false
			}
		}
	}
	return pushed, true
}

// undo reverses the first nPushed appends of t (they were pushed in
// forward mop order, so they pop in reverse).
func (s *searcher) undo(t *txn, nPushed int) {
	var keys []string
	for _, m := range t.mops {
		if len(keys) == nPushed {
			break
		}
		if m.F == op.FAppend {
			keys = append(keys, m.Key)
		}
	}
	for i := len(keys) - 1; i >= 0; i-- {
		s.state.pop(keys[i])
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
