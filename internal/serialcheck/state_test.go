package serialcheck

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPushPopRestoresFingerprint(t *testing.T) {
	s := newModelState(4)
	base := s.fingerprint()
	s.push("x", 1)
	mid := s.fingerprint()
	if mid == base {
		t.Error("push did not change fingerprint")
	}
	s.push("x", 2)
	s.push("y", 9)
	s.pop("y")
	s.pop("x")
	s.pop("x")
	if got := s.fingerprint(); got != base {
		t.Errorf("fingerprint not restored: %x != %x", got, base)
	}
}

func TestFingerprintDependsOnOrder(t *testing.T) {
	a := newModelState(0)
	a.push("x", 1)
	a.push("x", 2)
	b := newModelState(0)
	b.push("x", 2)
	b.push("x", 1)
	if a.fingerprint() == b.fingerprint() {
		t.Error("different list contents share a fingerprint")
	}
}

func TestFingerprintKeyIndependence(t *testing.T) {
	// The same elements under different keys must hash differently.
	a := newModelState(0)
	a.push("x", 1)
	b := newModelState(0)
	b.push("y", 1)
	if a.fingerprint() == b.fingerprint() {
		t.Error("keys not distinguished")
	}
}

func TestToggleIsInvolution(t *testing.T) {
	s := newModelState(8)
	base := s.fingerprint()
	s.toggle(3)
	if s.fingerprint() == base {
		t.Error("toggle did not change fingerprint")
	}
	s.toggle(3)
	if s.fingerprint() != base {
		t.Error("double toggle did not restore fingerprint")
	}
}

func TestAppliedSetOrderIndependent(t *testing.T) {
	a := newModelState(8)
	a.toggle(1)
	a.toggle(5)
	b := newModelState(8)
	b.toggle(5)
	b.toggle(1)
	if a.fingerprint() != b.fingerprint() {
		t.Error("applied-set hash depends on toggle order")
	}
}

// TestRandomWalkUndoProperty: any sequence of pushes fully undone by pops
// returns the fingerprint to its starting value, and equal state contents
// give equal fingerprints regardless of the interleaving across keys.
func TestRandomWalkUndoProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newModelState(4)
		base := s.fingerprint()
		keys := []string{"a", "b", "c"}
		type rec struct{ key string }
		var stack []rec
		for i := 0; i < 50; i++ {
			if rng.Intn(2) == 0 || len(stack) == 0 {
				k := keys[rng.Intn(len(keys))]
				s.push(k, rng.Intn(100))
				stack = append(stack, rec{k})
			} else {
				// Pop most recent push of some key: to keep per-key LIFO,
				// pop the most recent overall.
				r := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				s.pop(r.key)
			}
		}
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.pop(r.key)
		}
		return s.fingerprint() == base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEqualContentsEqualFingerprints: two states built by different
// push/pop routes to the same contents agree.
func TestEqualContentsEqualFingerprints(t *testing.T) {
	a := newModelState(0)
	a.push("x", 1)
	a.push("x", 99)
	a.pop("x")
	a.push("x", 2)

	b := newModelState(0)
	b.push("x", 1)
	b.push("x", 2)
	if a.fingerprint() != b.fingerprint() {
		t.Error("same contents, different fingerprints")
	}
	if len(a.value("x")) != 2 || a.value("x")[1] != 2 {
		t.Errorf("state contents wrong: %v", a.value("x"))
	}
}

func TestLength(t *testing.T) {
	s := newModelState(0)
	if s.length("x") != 0 {
		t.Error("fresh key should be empty")
	}
	s.push("x", 1)
	if s.length("x") != 1 {
		t.Error("length after push")
	}
}
