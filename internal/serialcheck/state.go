package serialcheck

// Incremental search-state fingerprinting. The searcher memoizes
// (applied-set, model-state) pairs; recomputing a hash over the whole
// state at every node would dominate the search, so both components are
// maintained incrementally:
//
//   - the applied set as an XOR of one random token per transaction
//     (order-independent, toggles on apply/undo);
//   - the model state as a wrapping sum over keys of a term derived from
//     the key and a rolling hash of its list contents; appends push a new
//     rolling hash, undos pop it, and the sum is adjusted by the term
//     delta.
//
// A collision would prune a viable branch (an unsound "not
// serializable"); with 64-bit mixing over search frontiers of ~10^7
// nodes the chance is negligible for a benchmark baseline, and the tests
// cross-check verdicts against Elle and the engine.

const fnvPrime = 1099511628211

// splitmix64 generates the per-transaction tokens.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// modelState is the replay state with incremental fingerprinting.
type modelState struct {
	lists  map[string][]int
	rolls  map[string][]uint64 // rolling content hashes, one per length
	keyH   map[string]uint64
	sum    uint64 // Σ term(key); term folds key hash and content hash
	tokens []uint64
	setH   uint64
}

func newModelState(n int) *modelState {
	s := &modelState{
		lists:  map[string][]int{},
		rolls:  map[string][]uint64{},
		keyH:   map[string]uint64{},
		tokens: make([]uint64, n),
	}
	for i := range s.tokens {
		s.tokens[i] = splitmix64(uint64(i) + 0x1234)
	}
	return s
}

func (s *modelState) keyHash(k string) uint64 {
	h, ok := s.keyH[k]
	if !ok {
		h = hashString(k)
		s.keyH[k] = h
	}
	return h
}

func (s *modelState) term(k string) uint64 {
	rs := s.rolls[k]
	var top uint64
	if len(rs) > 0 {
		top = rs[len(rs)-1]
	}
	return splitmix64(s.keyHash(k) ^ top ^ (uint64(len(rs)) << 32))
}

// push appends elem to key's list, updating the fingerprint.
func (s *modelState) push(k string, elem int) {
	old := s.term(k)
	rs := s.rolls[k]
	var prev uint64
	if len(rs) > 0 {
		prev = rs[len(rs)-1]
	}
	s.rolls[k] = append(rs, prev*fnvPrime+splitmix64(uint64(elem)+0x9e37))
	s.lists[k] = append(s.lists[k], elem)
	s.sum += s.term(k) - old
}

// pop removes the last element of key's list.
func (s *modelState) pop(k string) {
	old := s.term(k)
	s.rolls[k] = s.rolls[k][:len(s.rolls[k])-1]
	s.lists[k] = s.lists[k][:len(s.lists[k])-1]
	s.sum += s.term(k) - old
}

// toggle flips transaction i in the applied-set hash.
func (s *modelState) toggle(i int) { s.setH ^= s.tokens[i] }

// fingerprint combines the applied set and the model state.
func (s *modelState) fingerprint() uint64 {
	return splitmix64(s.setH ^ s.sum)
}

// value returns key's current list.
func (s *modelState) value(k string) []int { return s.lists[k] }

// length returns key's current list length.
func (s *modelState) length(k string) int { return len(s.lists[k]) }
