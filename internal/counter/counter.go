// Package counter implements Elle's (deliberately weak) analysis for
// increment-only counters (§3 of the paper). Counters are traceable in
// the trivial sense that their version history is (0, 1, 2, ...) under
// unit increments, but they are *not recoverable*: no read can tell which
// increment produced a given value, so no write-read, write-write, or
// read-write dependencies can be inferred. What remains checkable:
//
//   - Bounds: every committed read must lie between the sum of definitely
//     committed increments visible in some interpretation and the sum of
//     all possibly-committed increments. Reads outside those bounds are
//     impossible in every interpretation.
//   - Session monotonicity: with only non-negative increments, a single
//     process must never observe the counter go backwards.
//
// These checks find real bugs (stale or garbage reads) but cannot
// discriminate cycle anomalies — which is exactly the paper's argument
// for richer datatypes.
package counter

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/workload"
)

// Analysis is the result of counter checking.
type Analysis struct {
	// Anomalies found (garbage reads, non-monotonic session reads).
	Anomalies []anomaly.Anomaly
	// Bounds per key: the [lo, hi] envelope of possible counter values
	// over the whole history.
	Bounds map[string][2]int
	// Ops indexes analyzed completion ops by index, for explanations.
	Ops map[int]op.Op
}

// Analyze checks a counter history. Of the shared options only
// Parallelism applies.
func Analyze(h *history.History, opts workload.Opts) *Analysis {
	// Possible value envelope per key, over all interpretations: an
	// increment by a committed or indeterminate transaction may or may
	// not be visible to any given read (we have no ordering), so the
	// envelope spans from the sum of negative deltas to the sum of
	// positive deltas among possibly-committed increments. All per-key
	// state is dense, indexed by the history interner's KeyIDs.
	in := h.Keys()
	n := in.Len()
	lo := make([]int, n)
	hi := make([]int, n)
	incremented := make([]bool, n)
	nonNegative := make([]bool, n)
	ops := map[int]op.Op{}
	kid := in.MustID
	for _, o := range h.Completions() {
		ops[o.Index] = o
		for _, m := range o.Mops {
			if m.F != op.FIncrement {
				continue
			}
			k := kid(m.Key)
			if !incremented[k] {
				incremented[k] = true
				nonNegative[k] = true
			}
			if m.Arg < 0 {
				nonNegative[k] = false
			}
			if !o.MayHaveCommitted() {
				continue
			}
			if m.Arg >= 0 {
				hi[k] += m.Arg
			} else {
				lo[k] += m.Arg
			}
		}
	}

	a := &Analysis{Bounds: map[string][2]int{}, Ops: ops}
	for _, k := range in.SortedIDs() {
		if incremented[k] {
			a.Bounds[in.Key(k)] = [2]int{lo[k], hi[k]}
		}
	}

	// Bounds check on every committed read; each transaction is
	// independent, so fan out with ordered collection.
	oks := h.OKs()
	a.Anomalies = anomaly.AppendGroups(a.Anomalies, par.Map(opts.Parallelism, len(oks), func(i int) []anomaly.Anomaly {
		o := oks[i]
		var out []anomaly.Anomaly
		for _, m := range o.Mops {
			if m.F != op.FRead || !m.RegKnown {
				continue
			}
			v := 0
			if !m.RegNil {
				v = m.Reg
			}
			k := kid(m.Key)
			l, hb := lo[k], hi[k]
			if v < l || v > hb {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.GarbageRead,
					Ops:  []op.Op{o},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s read counter %s = %d, outside the possible envelope [%d, %d] of all attempted increments",
						o.Name(), m.Key, v, l, hb),
				})
			}
		}
		return out
	}))

	// Session monotonicity for non-negative counters: a process's
	// successive observations must not decrease. Sessions are independent
	// per process; walk them in sorted process order so reports don't
	// inherit map iteration order.
	byProcess := h.ByProcess()
	procs := make([]int, 0, len(byProcess))
	for p := range byProcess {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	a.Anomalies = anomaly.AppendGroups(a.Anomalies, par.Map(opts.Parallelism, len(procs), func(i int) []anomaly.Anomaly {
		var out []anomaly.Anomaly
		last := map[history.KeyID]int{}
		lastOp := map[history.KeyID]op.Op{}
		for _, o := range byProcess[procs[i]] {
			if o.Type != op.OK {
				continue
			}
			for _, m := range o.Mops {
				if m.F != op.FRead || !m.RegKnown {
					continue
				}
				k := kid(m.Key)
				if !incremented[k] || !nonNegative[k] {
					continue
				}
				v := 0
				if !m.RegNil {
					v = m.Reg
				}
				if prev, seen := last[k]; seen && v < prev {
					out = append(out, anomaly.Anomaly{
						Type: anomaly.Internal,
						Ops:  []op.Op{lastOp[k], o},
						Key:  m.Key,
						Explanation: fmt.Sprintf(
							"process %d observed counter %s fall from %d (%s) to %d (%s) despite only non-negative increments: a non-monotonic session read",
							o.Process, m.Key, prev, lastOp[k].Name(), v, o.Name()),
					})
				}
				last[k] = v
				lastOp[k] = o
			}
		}
		return out
	}))
	return a
}
