package counter

import (
	"repro/internal/explain"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/workload"
)

func init() {
	workload.Register(workload.Info{
		Name:          workload.Counter,
		RegisterReads: true,
		Gen:           gen.Counter,
		DB:            memdb.WorkloadCounter,
		Analyzer: workload.AnalyzerFunc(func(h *history.History, opts workload.Opts) workload.Analysis {
			an := Analyze(h, opts)
			// Counters are unrecoverable (§3): no dependencies can be
			// inferred, so the graph is empty and only the bounds and
			// session checks' anomalies flow out.
			return workload.Analysis{
				Graph:     graph.New(),
				Anomalies: an.Anomalies,
				Explainer: &explain.Explainer{Ops: an.Ops},
			}
		}),
	})
}
