package counter

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

func hasAnomaly(a *Analysis, typ anomaly.Type) bool {
	for _, an := range a.Anomalies {
		if an.Type == typ {
			return true
		}
	}
	return false
}

func TestCleanCounterHistory(t *testing.T) {
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Increment("c", 1)),
		op.Txn(1, 0, op.OK, op.Increment("c", 2)),
		op.Txn(2, 0, op.OK, op.ReadReg("c", 3)),
	}), workload.Opts{})
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
	if b := a.Bounds["c"]; b[0] != 0 || b[1] != 3 {
		t.Errorf("bounds = %v", b)
	}
}

func TestReadAboveEnvelope(t *testing.T) {
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Increment("c", 1)),
		op.Txn(1, 1, op.OK, op.ReadReg("c", 5)),
	}), workload.Opts{})
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("expected garbage read, got %v", a.Anomalies)
	}
}

func TestReadBelowEnvelope(t *testing.T) {
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Increment("c", -2)),
		op.Txn(1, 1, op.OK, op.ReadReg("c", -5)),
	}), workload.Opts{})
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("expected garbage read, got %v", a.Anomalies)
	}
}

func TestAbortedIncrementsExcluded(t *testing.T) {
	// A failed increment never counts toward the envelope.
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.Fail, op.Increment("c", 10)),
		op.Txn(1, 1, op.OK, op.ReadReg("c", 10)),
	}), workload.Opts{})
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("aborted increment should not justify the read: %v", a.Anomalies)
	}
}

func TestIndeterminateIncrementsIncluded(t *testing.T) {
	// An info increment may have committed; reads including it are fine.
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.Info, op.Increment("c", 10)),
		op.Txn(1, 1, op.OK, op.ReadReg("c", 10)),
	}), workload.Opts{})
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
}

func TestSessionMonotonicity(t *testing.T) {
	// A single process observing 5 then 3 with only positive increments.
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Increment("c", 5)),
		op.Txn(1, 1, op.OK, op.ReadReg("c", 5)),
		op.Txn(2, 1, op.OK, op.ReadReg("c", 3)),
	}), workload.Opts{})
	if !hasAnomaly(a, anomaly.Internal) {
		t.Fatalf("expected non-monotonic session read, got %v", a.Anomalies)
	}
}

func TestMonotonicityNotAppliedAcrossProcesses(t *testing.T) {
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Increment("c", 5)),
		op.Txn(1, 1, op.OK, op.ReadReg("c", 5)),
		op.Txn(2, 2, op.OK, op.ReadReg("c", 3)),
	}), workload.Opts{})
	// Different processes: no session constraint. The read of 3 is within
	// the envelope [0, 5].
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
}

func TestMonotonicitySkippedWithNegativeIncrements(t *testing.T) {
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Increment("c", 5), op.Increment("c", -1)),
		op.Txn(1, 1, op.OK, op.ReadReg("c", 5)),
		op.Txn(2, 1, op.OK, op.ReadReg("c", 4)),
	}), workload.Opts{})
	if len(a.Anomalies) != 0 {
		t.Fatalf("decrements make non-monotonic reads legal: %v", a.Anomalies)
	}
}

func TestNilReadIsZero(t *testing.T) {
	// Counters start at 0; a nil read is treated as 0.
	a := Analyze(history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Increment("c", 1)),
		op.Txn(1, 1, op.OK, op.ReadNil("c")),
	}), workload.Opts{})
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
}
