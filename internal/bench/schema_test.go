package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sample() Result {
	return Result{
		Schema: SchemaVersion, GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		CPUs: 1, Runs: 3,
		Benchmarks: []Point{
			{Name: "check-parallel/n=100000/p=1", Iterations: 2, NsPerOp: 1e9, AllocsPerOp: 2_000_000, BytesPerOp: 4e8},
			{Name: "decode/n=100000/p=1", Iterations: 3, NsPerOp: 5e8, AllocsPerOp: 1_000_000, BytesPerOp: 2e8, MBPerS: 40},
		},
	}
}

func TestResultRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 2 || back.Benchmarks[0].AllocsPerOp != 2_000_000 {
		t.Fatalf("round trip mangled result: %+v", back)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := DecodeResult(strings.NewReader(`{"schema":"something-else"}`)); err == nil {
		t.Fatal("expected schema error")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := sample()
	cur := sample()
	// 25% slower and 25% more allocations on the first bench: both gate.
	cur.Benchmarks[0].NsPerOp *= 1.25
	cur.Benchmarks[0].AllocsPerOp = 2_500_000
	// 10% slower on the second: within the 20% threshold.
	cur.Benchmarks[1].NsPerOp *= 1.10

	regs, missing := Compare(base, cur, 0.20)
	if len(missing) != 0 {
		t.Fatalf("unexpected missing: %v", missing)
	}
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	for _, r := range regs {
		if r.Name != "check-parallel/n=100000/p=1" {
			t.Errorf("regression on wrong bench: %v", r)
		}
		if s := r.String(); !strings.Contains(s, "regressed") {
			t.Errorf("unhelpful rendering %q", s)
		}
	}
}

func TestCompareImprovementsPass(t *testing.T) {
	base := sample()
	cur := sample()
	cur.Benchmarks[0].NsPerOp *= 0.5
	cur.Benchmarks[0].AllocsPerOp /= 2
	regs, _ := Compare(base, cur, 0.20)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareReportsMissing(t *testing.T) {
	base := sample()
	cur := sample()
	cur.Benchmarks = cur.Benchmarks[:1]
	cur.Benchmarks = append(cur.Benchmarks, Point{Name: "brand-new-case", NsPerOp: 1})
	regs, missing := Compare(base, cur, 0.20)
	if len(regs) != 0 {
		t.Fatalf("missing cases must not gate: %v", regs)
	}
	if len(missing) != 2 {
		t.Fatalf("want 2 missing notes, got %v", missing)
	}
}

func TestTableRendersEveryBench(t *testing.T) {
	tb := Table(sample(), sample())
	for _, want := range []string{"check-parallel/n=100000/p=1", "decode/n=100000/p=1", "+0.0%"} {
		if !strings.Contains(tb, want) {
			t.Errorf("table missing %q:\n%s", want, tb)
		}
	}
}

func TestCasesAreNamedAndFindable(t *testing.T) {
	cases := Cases()
	if len(cases) < 5 {
		t.Fatalf("suite shrank to %d cases", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if c.Name == "" || c.F == nil {
			t.Fatalf("malformed case %+v", c)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate case name %s", c.Name)
		}
		seen[c.Name] = true
		if _, ok := Find(c.Name); !ok {
			t.Fatalf("Find(%s) failed", c.Name)
		}
	}
	if _, ok := Find("no-such-case"); ok {
		t.Fatal("Find invented a case")
	}
}
