// Package bench defines the checker's stable benchmark suite and the
// machine-readable result format consumed by the CI perf-regression
// gate (see cmd/ellebench and docs/BENCHMARKS.md).
//
// The cases cover the hot path end to end at p=1 — batch check,
// streaming check, register and bank inference, JSON-lines decode —
// so a regression in allocation behavior or single-core throughput
// anywhere in the pipeline moves at least one number. Parallel speedup
// is deliberately not gated: it depends on the runner's core count,
// where ns/op at p=1 and allocs/op at any p are stable properties of
// the code.
package bench

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/binhist"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/perf"
	"repro/internal/service"
	"repro/internal/workload"
)

// Case is one named benchmark the harness can run.
type Case struct {
	// Name identifies the case in BENCH_*.json; it is stable across
	// releases so baselines stay comparable.
	Name string
	// F is the benchmark body, in testing.Benchmark form.
	F func(b *testing.B)
}

// Histories are generated once per process, not once per testing.B
// calibration round.
var (
	listHistory = sync.OnceValue(func() *history.History {
		return perf.GenerateHistory(100000, 20, 1)
	})
	listEncoded = sync.OnceValue(func() []byte {
		var buf bytes.Buffer
		if err := jsonhist.Encode(&buf, listHistory()); err != nil {
			panic(err)
		}
		return buf.Bytes()
	})
	listBinEncoded = sync.OnceValue(func() []byte {
		var buf bytes.Buffer
		if err := binhist.Encode(&buf, listHistory()); err != nil {
			panic(err)
		}
		return buf.Bytes()
	})
	registerHistory = sync.OnceValue(func() *history.History {
		g := gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 100, MaxWritesPerKey: 100}, 1)
		return memdb.Run(memdb.RunConfig{
			Clients: 20, Txns: 50000, Isolation: memdb.StrictSerializable,
			Source: g, Seed: 1, Workload: memdb.WorkloadRegister,
		})
	})
	// listChunks is listEncoded pre-split into 1000-line uploads, the
	// shape the service benchmark feeds.
	listChunks = sync.OnceValue(func() [][]byte {
		lines := bytes.SplitAfter(bytes.TrimSuffix(listEncoded(), []byte("\n")), []byte("\n"))
		var chunks [][]byte
		for i := 0; i < len(lines); i += 1000 {
			end := min(i+1000, len(lines))
			chunks = append(chunks, bytes.Join(lines[i:end], nil))
		}
		return chunks
	})
	// faultedListHistory plants retry-stomp and stale-read faults so the
	// analysis carries cycles for the query benchmark to find.
	faultedListHistory = sync.OnceValue(func() *history.History {
		g := gen.New(gen.Config{ActiveKeys: 10, MaxWritesPerKey: 50}, 1)
		return memdb.Run(memdb.RunConfig{
			Clients: 20, Txns: 20000, Isolation: memdb.SnapshotIsolation,
			Faults: memdb.Faults{RetryStompProb: 0.5, StaleReadProb: 0.3},
			Source: g, Seed: 1, Workload: memdb.WorkloadList,
		})
	})
	bankHistory = sync.OnceValue(func() *history.History {
		info, ok := workload.Lookup(string(workload.Bank))
		if !ok {
			panic("bench: bank workload not registered")
		}
		g := gen.New(gen.Config{Workload: info.Gen, ActiveKeys: 10}, 1)
		return memdb.Run(memdb.RunConfig{
			Clients: 20, Txns: 20000, Isolation: memdb.StrictSerializable,
			Source: g, Seed: 1, Workload: info.DB,
		})
	})
)

func checkOpts(w core.Workload) core.Opts {
	opts := core.OptsFor(w, consistency.StrictSerializable)
	opts.Parallelism = 1
	return opts
}

// Cases returns the benchmark suite in its canonical order.
func Cases() []Case {
	return []Case{
		{Name: "check-parallel/n=100000/p=1", F: func(b *testing.B) {
			h := listHistory()
			opts := checkOpts(core.ListAppend)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := core.Check(h, opts)
				if !r.Valid {
					b.Fatalf("clean history invalid: %v", r.AnomalyTypes())
				}
			}
		}},
		{Name: "check-stream/n=100000/p=1", F: func(b *testing.B) {
			h := listHistory()
			opts := checkOpts(core.ListAppend)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := core.CheckStream(opts)
				ops := h.Ops
				for len(ops) > 0 {
					n := 1000
					if n > len(ops) {
						n = len(ops)
					}
					if _, err := st.Feed(ops[:n]); err != nil {
						b.Fatal(err)
					}
					ops = ops[n:]
				}
				r, err := st.Finish()
				if err != nil {
					b.Fatal(err)
				}
				if !r.Valid {
					b.Fatalf("clean history invalid: %v", r.AnomalyTypes())
				}
			}
		}},
		{Name: "check-stream-bounded/n=100000/w=4096/p=1", F: func(b *testing.B) {
			// The streaming check under a memory budget: settled prefixes
			// retire to encoded segments as the stream is fed, and Finish
			// rehydrates them. Gates the whole retire/rehydrate cycle —
			// encode, sweep, freeze, decode — on top of the plain
			// streaming cost.
			h := listHistory()
			opts := checkOpts(core.ListAppend)
			opts.MemoryBudget = 4096
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := core.CheckStream(opts)
				ops := h.Ops
				for len(ops) > 0 {
					n := 1000
					if n > len(ops) {
						n = len(ops)
					}
					if _, err := st.Feed(ops[:n]); err != nil {
						b.Fatal(err)
					}
					ops = ops[n:]
				}
				r, err := st.Finish()
				if err != nil {
					b.Fatal(err)
				}
				if !r.Valid {
					b.Fatalf("clean history invalid: %v", r.AnomalyTypes())
				}
			}
		}},
		{Name: "check-register/n=50000/p=1", F: func(b *testing.B) {
			h := registerHistory()
			opts := checkOpts(core.Register)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Check(h, opts)
			}
		}},
		{Name: "check-bank/n=20000/p=1", F: func(b *testing.B) {
			h := bankHistory()
			opts := checkOpts(core.Bank)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := core.Check(h, opts)
				if !r.Valid {
					b.Fatalf("clean bank history invalid: %v", r.AnomalyTypes())
				}
			}
		}},
		{Name: "check-service-shard/n=100000/s=4/p=1", F: func(b *testing.B) {
			// The full elled request path in-process: create a job, feed
			// the history as 1000-line chunk uploads through the sharded
			// inference pool, fetch the report, delete. Gates the service
			// overhead on top of the raw streaming check — routing, chunk
			// draining, shard dispatch, decode, feed.
			chunks := listChunks()
			svc, err := service.New(service.Config{Shards: 4, MaxJobs: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			b.SetBytes(int64(len(listEncoded())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				svc.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs",
					bytes.NewReader([]byte(`{"parallelism":1}`))))
				if rec.Code != 201 {
					b.Fatalf("create: %d: %s", rec.Code, rec.Body)
				}
				var job struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
					b.Fatal(err)
				}
				for _, chunk := range chunks {
					rec = httptest.NewRecorder()
					svc.ServeHTTP(rec, httptest.NewRequest("POST",
						"/v1/jobs/"+job.ID+"/chunks", bytes.NewReader(chunk)))
					if rec.Code != 200 {
						b.Fatalf("chunk: %d: %s", rec.Code, rec.Body)
					}
				}
				rec = httptest.NewRecorder()
				svc.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+job.ID+"/report", nil))
				if rec.Code != 200 || rec.Header().Get("X-Elle-Valid") != "true" {
					b.Fatalf("report: %d valid=%q", rec.Code, rec.Header().Get("X-Elle-Valid"))
				}
				rec = httptest.NewRecorder()
				svc.ServeHTTP(rec, httptest.NewRequest("DELETE", "/v1/jobs/"+job.ID, nil))
				if rec.Code != 204 {
					b.Fatalf("delete: %d", rec.Code)
				}
			}
		}},
		{Name: "query-cycles/n=20000/p=1", F: func(b *testing.B) {
			// The relational layer end to end: derive the catalog from a
			// faulted analysis and evaluate the docs/QUERY.md join of
			// cycle participants against their outgoing anti-dependency
			// edges — a full dep scan plus the σ/⋈/sort pipeline. Gates
			// the query engine's throughput and allocation behavior.
			h := faultedListHistory()
			res := core.Check(h, checkOpts(core.ListAppend))
			const q = `(cycle ?c _ ?t _) (dep ?t ?u rw)`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := res.Query(h, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Rows) == 0 {
					b.Fatal("faulted history yielded no cycle rows")
				}
			}
		}},
		{Name: "decode/n=100000/p=1", F: func(b *testing.B) {
			raw := listEncoded()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := jsonhist.DecodeWith(bytes.NewReader(raw),
					jsonhist.DecodeOpts{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "decode-binary/n=100000", F: func(b *testing.B) {
			raw := listBinEncoded()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := binhist.Decode(bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "tarjan/n=100000", F: func(b *testing.B) {
			res := core.Check(listHistory(), checkOpts(core.ListAppend))
			g := res.Graph
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.SCCs(graph.KSDep | graph.KSOrders)
			}
		}},
	}
}

// Find returns the named case.
func Find(name string) (Case, bool) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}
