package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// SchemaVersion identifies the BENCH_*.json format.
const SchemaVersion = "elle-bench/v1"

// Point is one benchmark's measured result: the minimum ns/op across
// runs (the least-noisy estimator on shared CI runners) and the
// allocation figures, which are effectively deterministic at p=1.
type Point struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// Result is the machine-readable output of one harness invocation —
// the schema of BENCH_*.json. Previous optionally carries points from
// before a change for the PR record; the gate ignores it.
type Result struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPUs       int     `json:"cpus"`
	Runs       int     `json:"runs"`
	Date       string  `json:"date,omitempty"`
	Benchmarks []Point `json:"benchmarks"`
	Previous   []Point `json:"previous,omitempty"`
}

// Run executes each case runs times via testing.Benchmark, keeping the
// fastest run per case (allocation figures likewise take the minimum:
// one-off runtime growth in early runs is noise, not workload cost).
func Run(cases []Case, runs int, log io.Writer) Result {
	res := Result{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Runs:      runs,
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		var best Point
		for r := 0; r < runs; r++ {
			br := testing.Benchmark(c.F)
			p := Point{
				Name:        c.Name,
				Iterations:  br.N,
				NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
				AllocsPerOp: br.AllocsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
			}
			if br.Bytes > 0 && br.T > 0 {
				p.MBPerS = (float64(br.Bytes) * float64(br.N) / 1e6) / br.T.Seconds()
			}
			if r == 0 {
				best = p
				continue
			}
			if p.NsPerOp < best.NsPerOp {
				best.NsPerOp, best.Iterations, best.MBPerS = p.NsPerOp, p.Iterations, p.MBPerS
			}
			if p.AllocsPerOp < best.AllocsPerOp {
				best.AllocsPerOp = p.AllocsPerOp
			}
			if p.BytesPerOp < best.BytesPerOp {
				best.BytesPerOp = p.BytesPerOp
			}
		}
		if log != nil {
			fmt.Fprintf(log, "%-32s %12.0f ns/op %10d B/op %9d allocs/op\n",
				best.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
		}
		res.Benchmarks = append(res.Benchmarks, best)
	}
	return res
}

// Encode writes r as indented JSON.
func (r Result) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeResult reads a BENCH_*.json.
func DecodeResult(r io.Reader) (Result, error) {
	var out Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return Result{}, err
	}
	if out.Schema != SchemaVersion {
		return Result{}, fmt.Errorf("bench: unsupported schema %q (want %q)", out.Schema, SchemaVersion)
	}
	return out, nil
}

// Regression is one gate violation.
type Regression struct {
	Name   string
	Metric string // "ns/op" or "allocs/op"
	Base   float64
	New    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.0f -> %.0f (%+.1f%%)",
		r.Name, r.Metric, r.Base, r.New, 100*(r.New-r.Base)/r.Base)
}

// Compare gates cur against base: any benchmark present in both whose
// ns/op or allocs/op grew by more than threshold (0.20 = 20%) is a
// regression. Benchmarks present only on one side are reported in
// missing (gate-neutral: the suite may gain cases before the baseline
// is refreshed).
func Compare(base, cur Result, threshold float64) (regs []Regression, missing []string) {
	baseBy := map[string]Point{}
	for _, p := range base.Benchmarks {
		baseBy[p.Name] = p
	}
	seen := map[string]bool{}
	for _, p := range cur.Benchmarks {
		seen[p.Name] = true
		b, ok := baseBy[p.Name]
		if !ok {
			missing = append(missing, "baseline lacks "+p.Name)
			continue
		}
		if b.NsPerOp > 0 && p.NsPerOp > b.NsPerOp*(1+threshold) {
			regs = append(regs, Regression{Name: p.Name, Metric: "ns/op", Base: b.NsPerOp, New: p.NsPerOp})
		}
		if b.AllocsPerOp > 0 && float64(p.AllocsPerOp) > float64(b.AllocsPerOp)*(1+threshold) {
			regs = append(regs, Regression{
				Name: p.Name, Metric: "allocs/op",
				Base: float64(b.AllocsPerOp), New: float64(p.AllocsPerOp),
			})
		}
	}
	for name := range baseBy {
		if !seen[name] {
			missing = append(missing, "run lacks "+name)
		}
	}
	sort.Strings(missing)
	return regs, missing
}

// Table renders the comparison side by side for the CI log.
func Table(base, cur Result) string {
	baseBy := map[string]Point{}
	for _, p := range base.Benchmarks {
		baseBy[p.Name] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %14s %14s %8s | %12s %12s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "Δ", "base allocs", "new allocs", "Δ")
	for _, p := range cur.Benchmarks {
		bp, ok := baseBy[p.Name]
		if !ok {
			fmt.Fprintf(&b, "%-32s %14s %14.0f %8s | %12s %12d %8s\n",
				p.Name, "-", p.NsPerOp, "-", "-", p.AllocsPerOp, "-")
			continue
		}
		fmt.Fprintf(&b, "%-32s %14.0f %14.0f %+7.1f%% | %12d %12d %+7.1f%%\n",
			p.Name, bp.NsPerOp, p.NsPerOp, 100*(p.NsPerOp-bp.NsPerOp)/bp.NsPerOp,
			bp.AllocsPerOp, p.AllocsPerOp,
			100*float64(p.AllocsPerOp-bp.AllocsPerOp)/float64(bp.AllocsPerOp))
	}
	return b.String()
}
