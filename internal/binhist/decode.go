package binhist

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/history"
	"repro/internal/op"
)

// decoder holds the cross-record decode state: the key dictionary and
// whether the current stream segment's header has been consumed. Mop
// and list slices are carved out of slab arenas — the slices retain
// their slab, so nothing is copied out, but a million-op decode makes
// hundreds of slice allocations instead of millions.
type decoder struct {
	keys   []string
	opened bool

	mopArena []op.Mop
	intArena []int
}

const arenaSlab = 4096

// allocMops returns a zeroed n-mop slice carved from the arena,
// capacity-clipped so a later append can never bleed into a neighbor.
func (d *decoder) allocMops(n int) []op.Mop {
	if cap(d.mopArena)-len(d.mopArena) < n {
		d.mopArena = make([]op.Mop, 0, max(arenaSlab, n))
	}
	start := len(d.mopArena)
	d.mopArena = d.mopArena[:start+n]
	// Every region is carved exactly once from a fresh slab, so the
	// mops are already zero.
	return d.mopArena[start : start+n : start+n]
}

// emptyInts backs every observed-empty list read: a shared non-nil
// zero-length slice is indistinguishable from a fresh one.
var emptyInts = make([]int, 0)

// allocInts returns an n-int slice carved from the arena.
func (d *decoder) allocInts(n int) []int {
	if n == 0 {
		return emptyInts
	}
	if cap(d.intArena)-len(d.intArena) < n {
		d.intArena = make([]int, 0, max(arenaSlab, n))
	}
	start := len(d.intArena)
	d.intArena = d.intArena[:start+n]
	return d.intArena[start : start+n : start+n]
}

// decodeAll consumes every complete record in buf, appending decoded
// ops to dst. It returns the grown slice and the number of bytes
// consumed; a partial trailing record (or header, or length prefix) is
// left unconsumed for the caller to retry with more bytes.
func (d *decoder) decodeAll(buf []byte, dst []op.Op) ([]op.Op, int, error) {
	pos := 0
	for {
		// A header is expected at stream start and accepted at any record
		// boundary (a fresh segment: concatenated files, standalone
		// chunks) — within a segment the dictionary persists. After the
		// first header, a record boundary byte equal to magic[0] is
		// ambiguous (0xEB is also a legal length-prefix byte), so the
		// header path is taken only while every available byte keeps
		// matching the magic; one mismatch falls through to record
		// framing, which rejects the impostor on its own terms.
		if !d.opened || (pos < len(buf) && IsMagic(buf[pos:])) {
			if len(buf)-pos < headerLen {
				if !d.opened && pos < len(buf) && !IsMagic(buf[pos:]) {
					return dst, pos, framingErr("bad magic")
				}
				return dst, pos, nil // partial header: wait for more
			}
			if !IsMagic(buf[pos : pos+7]) {
				return dst, pos, framingErr("bad magic")
			}
			if v := buf[pos+7]; v != Version {
				return dst, pos, framingErr("unsupported version %d (have %d)", v, Version)
			}
			pos += headerLen
			d.opened = true
			d.keys = d.keys[:0]
			continue
		}
		if pos == len(buf) {
			return dst, pos, nil
		}
		n, w := binary.Uvarint(buf[pos:])
		if w == 0 {
			return dst, pos, nil // partial length prefix
		}
		if w < 0 || n > maxRecordBytes {
			return dst, pos, framingErr("record length %d exceeds the %d-byte bound", n, maxRecordBytes)
		}
		if n == 0 {
			return dst, pos, framingErr("empty record")
		}
		if len(buf)-pos-w < int(n) {
			return dst, pos, nil // partial payload
		}
		payload := buf[pos+w : pos+w+int(n)]
		switch payload[0] {
		case recDict:
			// Copy: payload aliases the caller's (reused) buffer.
			d.keys = append(d.keys, string(payload[1:]))
		case recOp:
			o, err := d.decodeOp(payload[1:])
			if err != nil {
				return dst, pos, err
			}
			dst = append(dst, o)
		default:
			return dst, pos, framingErr("unknown record kind 0x%02x", payload[0])
		}
		pos += w + int(n)
	}
}

// decodeOp decodes one op record payload (the bytes after the kind
// byte). The payload must be consumed exactly: leftover or missing
// bytes are framing violations.
func (d *decoder) decodeOp(b []byte) (op.Op, error) {
	var o op.Op
	index, b, err := uvarint(b)
	if err != nil {
		return o, err
	}
	process, b, err := uvarint(b)
	if err != nil {
		return o, err
	}
	time, b, err := uvarint(b)
	if err != nil {
		return o, err
	}
	if len(b) == 0 {
		return o, framingErr("op record ends before type byte")
	}
	if b[0] > byte(op.Info) {
		return o, framingErr("unknown op type 0x%02x", b[0])
	}
	o.Index = int(unzigzag(index))
	o.Process = int(unzigzag(process))
	o.Time = unzigzag(time)
	o.Type = op.Type(b[0])
	b = b[1:]
	nmops, b, err := uvarint(b)
	if err != nil {
		return o, err
	}
	if nmops > uint64(len(b)) {
		// Each mop costs at least two bytes; a count beyond the payload
		// is corrupt, and guarding here bounds the Mops allocation.
		return o, framingErr("mop count %d exceeds record size", nmops)
	}
	if nmops > 0 {
		o.Mops = d.allocMops(int(nmops))
	}
	for i := uint64(0); i < nmops; i++ {
		m := &o.Mops[i]
		if len(b) == 0 {
			return o, framingErr("mop %d: record ends before tag", i)
		}
		tag := b[0]
		b = b[1:]
		fun := op.Fun(tag & 0x07)
		if fun > op.FIncrement || tag>>5 != 0 {
			return o, framingErr("mop %d: invalid tag 0x%02x", i, tag)
		}
		kid, rest, err := uvarint(b)
		if err != nil {
			return o, err
		}
		b = rest
		if kid >= uint64(len(d.keys)) {
			return o, framingErr("mop %d: key id %d has no dictionary entry (%d known)", i, kid, len(d.keys))
		}
		m.F = fun
		m.Key = d.keys[kid]
		kind := (tag >> 3) & 0x03
		switch {
		case fun != op.FRead:
			if kind != readUnknown {
				return o, framingErr("mop %d: read-value kind on a write tag 0x%02x", i, tag)
			}
			arg, rest, err := uvarint(b)
			if err != nil {
				return o, err
			}
			b = rest
			m.Arg = int(unzigzag(arg))
		case kind == readNil:
			m.RegKnown, m.RegNil = true, true
		case kind == readReg:
			v, rest, err := uvarint(b)
			if err != nil {
				return o, err
			}
			b = rest
			m.Reg, m.RegKnown = int(unzigzag(v)), true
		case kind == readList:
			n, rest, err := uvarint(b)
			if err != nil {
				return o, err
			}
			b = rest
			if n > uint64(len(b)) {
				// Elements cost at least one byte each (n==0 is the
				// legitimate observed-empty list).
				return o, framingErr("mop %d: list length %d exceeds record size", i, n)
			}
			list := d.allocInts(int(n))
			for j := range list {
				v, rest, err := uvarint(b)
				if err != nil {
					return o, err
				}
				b = rest
				list[j] = int(unzigzag(v))
			}
			m.List = list
		}
	}
	if len(b) != 0 {
		return o, framingErr("op record has %d trailing bytes", len(b))
	}
	return o, nil
}

// uvarint reads one varint from b, returning the remainder. The
// single-byte case — almost every field in a real history — inlines.
func uvarint(b []byte) (uint64, []byte, error) {
	if len(b) > 0 && b[0] < 0x80 {
		return uint64(b[0]), b[1:], nil
	}
	return uvarintSlow(b)
}

func uvarintSlow(b []byte) (uint64, []byte, error) {
	v, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, b, framingErr("truncated or overlong varint")
	}
	return v, b[w:], nil
}

// A ChunkDecoder decodes an ellebin stream delivered as discrete byte
// chunks split at arbitrary offsets — HTTP chunk uploads, tail reads.
// The dictionary persists across feeds; a partial trailing record is
// buffered until the next feed completes it. The zero value is ready
// to use.
type ChunkDecoder struct {
	d   decoder
	rem []byte
}

// Feed decodes every record completed by p, in order. Errors are
// terminal for the stream: the decoder's state is unspecified after
// one.
func (c *ChunkDecoder) Feed(p []byte) ([]op.Op, error) {
	return c.feedInto(p, nil)
}

// feedInto is Feed appending into dst, so a batch caller can decode
// straight into its accumulating slice with no per-feed batch garbage.
func (c *ChunkDecoder) feedInto(p []byte, dst []op.Op) ([]op.Op, error) {
	buf := p
	if len(c.rem) > 0 {
		buf = append(c.rem, p...)
	}
	ops, consumed, err := c.d.decodeAll(buf, dst)
	if err != nil {
		return ops, err
	}
	c.rem = append(c.rem[:0], buf[consumed:]...)
	return ops, nil
}

// Pending returns how many bytes of an incomplete trailing record are
// buffered. A cleanly terminated stream leaves zero; anything else at
// end of input means the final record was cut off.
func (c *ChunkDecoder) Pending() int { return len(c.rem) }

// Close verifies the stream ended on a record boundary.
func (c *ChunkDecoder) Close() error {
	if len(c.rem) != 0 {
		return framingErr("stream ends %d bytes into a record", len(c.rem))
	}
	return nil
}

// StreamDecoder incrementally decodes an ellebin stream from a reader,
// yielding ops as bytes arrive — the binary counterpart of
// jsonhist.StreamDecoder, with the same Next contract: io.EOF at clean
// exhaustion, any other error terminal and sticky. A source that ends
// mid-record (truncation, rotation past a tail reader's offset) fails
// with an ErrFraming-wrapped error rather than returning a silently
// short history.
type StreamDecoder struct {
	r        io.Reader
	c        ChunkDecoder
	buf      []byte
	fed      int
	sizeHint int
	err      error
}

// NewStreamDecoder returns a decoder reading from r.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	d := &StreamDecoder{r: r, buf: make([]byte, 1<<16)}
	// In-memory sources report their size; Decode presizes its
	// collected ops slice from it.
	if l, ok := r.(interface{ Len() int }); ok {
		d.sizeHint = l.Len()
	}
	return d
}

// sizeEstimate projects the stream's total op count from the source's
// size (when known) and the ops-per-byte ratio observed so far. Zero
// means no estimate.
func (d *StreamDecoder) sizeEstimate(decoded int) int {
	if d.sizeHint <= 0 || d.fed <= 0 || decoded <= 0 {
		return 0
	}
	return int(int64(decoded)*int64(d.sizeHint)/int64(d.fed)) + 1
}

// Pending returns how many bytes of an incomplete trailing record are
// buffered — nonzero exactly when the stream, if it ended now, would
// end mid-record. Tail readers use it to tell "writer paused inside a
// record" from "stream complete".
func (d *StreamDecoder) Pending() int { return d.c.Pending() }

// Next returns the next batch of decoded ops.
func (d *StreamDecoder) Next() ([]op.Op, error) {
	if d.err != nil {
		return nil, d.err
	}
	for {
		n, rerr := d.r.Read(d.buf)
		var ops []op.Op
		if n > 0 {
			d.fed += n
			var err error
			ops, err = d.c.Feed(d.buf[:n])
			if err != nil {
				d.err = err
				return nil, d.err
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				d.err = fmt.Errorf("binhist: %w", rerr)
			} else if err := d.c.Close(); err != nil {
				d.err = err
			} else {
				d.err = io.EOF
			}
			if len(ops) > 0 {
				return ops, nil
			}
			return nil, d.err
		}
		if len(ops) > 0 {
			return ops, nil
		}
	}
}

// Decode reads a complete ellebin history from r. Unlike driving a
// StreamDecoder, ops decode straight out of one read buffer into one
// collected slice — presized from the source's size when it reports
// one — so batch decoding re-copies no stream bytes and produces no
// per-batch garbage.
func Decode(r io.Reader) (*history.History, error) {
	var d decoder
	var ops []op.Op
	sizeHint := 0
	if l, ok := r.(interface{ Len() int }); ok {
		sizeHint = l.Len()
	}
	buf := make([]byte, 1<<18)
	filled, fed := 0, 0
	presized := false
	for {
		n, rerr := r.Read(buf[filled:])
		if n > 0 {
			fed += n
			filled += n
			var consumed int
			var err error
			ops, consumed, err = d.decodeAll(buf[:filled], ops)
			if err != nil {
				return nil, err
			}
			filled = copy(buf, buf[consumed:filled])
			if !presized && len(ops) > 0 {
				presized = true
				if sizeHint > fed {
					est := int(int64(len(ops))*int64(sizeHint)/int64(fed)) + 1
					if est > cap(ops) {
						grown := make([]op.Op, len(ops), est)
						copy(grown, ops)
						ops = grown
					}
				}
			}
			if filled == len(buf) {
				// One record larger than the buffer: grow. decodeAll's
				// maxRecordBytes check bounds the growth.
				grown := make([]byte, 2*len(buf))
				copy(grown, buf[:filled])
				buf = grown
			}
		}
		if rerr == io.EOF {
			if filled != 0 {
				return nil, framingErr("stream ends %d bytes into a record", filled)
			}
			break
		}
		if rerr != nil {
			return nil, fmt.Errorf("binhist: %w", rerr)
		}
	}
	return history.New(ops)
}
