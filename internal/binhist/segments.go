package binhist

import (
	"bytes"

	"repro/internal/history"
	"repro/internal/op"
)

// Segments implements history.SegmentCodec over the ellebin encoding:
// each retired segment is a self-contained ellebin stream with its own
// header and key dictionary, so segments are individually decodable,
// and the concatenation of a stream's segments is itself a valid
// ellebin file (a second header at a record boundary starts a fresh
// dictionary — see the package comment).
type Segments struct{}

var _ history.SegmentCodec = Segments{}

// AppendOps appends the ellebin encoding of ops to dst.
func (Segments) AppendOps(dst []byte, ops []op.Op) ([]byte, error) {
	buf := bytes.NewBuffer(dst)
	e := NewEncoder(buf)
	for _, o := range ops {
		if err := e.WriteOp(o); err != nil {
			return nil, err
		}
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode invokes fn for every op in b, which may hold one segment or
// any concatenation of segments.
func (Segments) Decode(b []byte, fn func(op.Op) error) error {
	var c ChunkDecoder
	ops, err := c.Feed(b)
	if err != nil {
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	for _, o := range ops {
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}
