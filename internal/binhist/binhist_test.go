package binhist

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
)

// testHistories covers every mop shape the format must carry: list
// appends and reads, register writes/reads/nil-reads, set adds, counter
// increments, unknown read results, info/fail completions, negative
// and large values, empty lists, and an empty history.
func testHistories(t testing.TB) map[string]*history.History {
	t.Helper()
	// The list history is generated inline (not via internal/perf, whose
	// workload-registry dependency would close an import cycle through
	// this package's segment codec).
	lst := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: 2000, Isolation: memdb.StrictSerializable,
		Source: gen.New(gen.Config{ActiveKeys: 100, MaxWritesPerKey: 100, MinOps: 1, MaxOps: 5}, 1),
		Seed:   1,
	})
	g := gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 7, MaxWritesPerKey: 20}, 3)
	reg := memdb.Run(memdb.RunConfig{
		Clients: 5, Txns: 500, Isolation: memdb.SnapshotIsolation,
		Source: g, Seed: 3, Workload: memdb.WorkloadRegister, InfoProb: 0.05,
	})
	hand := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.ReadList("x", []int{1})),
		op.Txn(1, 2, op.Fail, op.Write("reg key with spaces", -42)),
		op.Txn(2, 1, op.Info, op.Read("x"), op.Increment("ctr", -7)),
		op.Txn(5, 0, op.OK, op.ReadNil("r"), op.ReadReg("r", 1<<40), op.Add("s", 9)),
		op.Txn(9, 3, op.OK, op.ReadList("empty", []int{})),
		{Index: 12, Process: -1, Time: -123456789, Type: op.OK,
			Mops: []op.Mop{op.Append("x", 2)}},
	})
	return map[string]*history.History{
		"list":     lst,
		"register": reg,
		"hand":     hand,
		"empty":    history.MustNew(nil),
	}
}

func encode(t testing.TB, h *history.History) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for name, h := range testHistories(t) {
		raw := encode(t, h)
		if !IsMagic(raw) {
			t.Fatalf("%s: encoded stream does not start with the magic", name)
		}
		got, err := Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got.Ops, h.Ops) {
			t.Fatalf("%s: ops diverged after round trip", name)
		}
	}
}

// TestChunkDecoderArbitrarySplits feeds the same stream split at every
// small chunk size: the dictionary and partial records must carry
// across feed boundaries byte-for-byte.
func TestChunkDecoderArbitrarySplits(t *testing.T) {
	h := testHistories(t)["hand"]
	raw := encode(t, h)
	for _, size := range []int{1, 2, 3, 7, 16, len(raw) / 2, len(raw), len(raw) + 10} {
		var c ChunkDecoder
		var ops []op.Op
		for off := 0; off < len(raw); off += size {
			end := off + size
			if end > len(raw) {
				end = len(raw)
			}
			batch, err := c.Feed(raw[off:end])
			if err != nil {
				t.Fatalf("size %d: feed at %d: %v", size, off, err)
			}
			ops = append(ops, batch...)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("size %d: close: %v", size, err)
		}
		if !reflect.DeepEqual(ops, h.Ops) {
			t.Fatalf("size %d: ops diverged", size)
		}
	}
}

// TestConcatenatedStreams: a second header at a record boundary starts
// a fresh segment, so `cat a.ellebin b.ellebin` decodes as one history
// (indices permitting).
func TestConcatenatedStreams(t *testing.T) {
	a := history.MustNew([]op.Op{op.Txn(0, 0, op.OK, op.Append("x", 1))})
	b := history.MustNew([]op.Op{op.Txn(1, 0, op.OK, op.ReadList("y", []int{}))})
	raw := append(encode(t, a), encode(t, b)...)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]op.Op{}, a.Ops...), b.Ops...)
	if !reflect.DeepEqual(got.Ops, want) {
		t.Fatalf("concatenated decode diverged: %v", got.Ops)
	}
}

func TestFramingErrors(t *testing.T) {
	h := testHistories(t)["hand"]
	raw := encode(t, h)
	cases := map[string][]byte{
		"bad magic":        []byte("\xebllebim\x01rest"),
		"not ellebin":      []byte(`{"index":0}` + "\n"),
		"bad version":      append(append([]byte{}, raw[:7]...), 0x7f),
		"truncated record": raw[:len(raw)-3],
		"unknown kind":     append(append([]byte{}, raw[:headerLen]...), 0x02, 0x7f, 0x00),
		"mid-record start": raw[headerLen+3:],
	}
	for name, input := range cases {
		_, err := Decode(bytes.NewReader(input))
		if err == nil {
			t.Fatalf("%s: decode accepted corrupt input", name)
		}
		if !errors.Is(err, ErrFraming) {
			t.Fatalf("%s: error %v does not wrap ErrFraming", name, err)
		}
	}
}

// TestTailCorruptionDetected is the shrink-and-regrow scenario the JSON
// size-only guard cannot see: a reader mid-stream whose remaining bytes
// come from a different file lands inside a record and must fail with a
// framing error, not decode garbage.
func TestTailCorruptionDetected(t *testing.T) {
	h := testHistories(t)["list"]
	raw := encode(t, h)
	// Consume a prefix, then splice in unrelated bytes at a non-boundary
	// offset, as a rotated-and-regrown file would present them.
	cut := len(raw)/2 + 1
	spliced := append(append([]byte{}, raw[:cut]...), []byte(strings.Repeat("rotated!", 64))...)
	d := NewStreamDecoder(bytes.NewReader(spliced))
	var err error
	for err == nil {
		_, err = d.Next()
	}
	if err == io.EOF || !errors.Is(err, ErrFraming) {
		t.Fatalf("corrupt tail ended with %v; want an ErrFraming error", err)
	}
}

func TestEncoderEmptyStreamIsTagged(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != headerLen || !IsMagic(buf.Bytes()) {
		t.Fatalf("empty stream = %x; want just the header", buf.Bytes())
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty stream decoded %d ops", got.Len())
	}
}

func TestChunkDecoderCloseMidRecord(t *testing.T) {
	raw := encode(t, testHistories(t)["hand"])
	var c ChunkDecoder
	if _, err := c.Feed(raw[:len(raw)-2]); err != nil {
		t.Fatal(err)
	}
	if c.Pending() == 0 {
		t.Fatal("expected pending bytes mid-record")
	}
	if err := c.Close(); !errors.Is(err, ErrFraming) {
		t.Fatalf("close mid-record: %v; want ErrFraming", err)
	}
}

// TestDecodeAllocs pins the streaming decode path to its allocation
// budget: mops and list elements come from slab arenas and key strings
// from the dictionary, so the per-op cost is a small fraction of an
// allocation (slabs and the batch slice, amortized). A breach means a
// per-op or per-mop allocation crept into the hot path.
func TestDecodeAllocs(t *testing.T) {
	h := testHistories(t)["list"]
	raw := encode(t, h)
	ops := len(h.Ops)
	const budget = 0.25 // per op
	allocs := testing.AllocsPerRun(10, func() {
		var c ChunkDecoder
		if _, err := c.Feed(raw); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	})
	perOp := allocs / float64(ops)
	t.Logf("decode allocations per op: %.3f over %d ops (budget %.2f)", perOp, ops, budget)
	if perOp > budget {
		t.Fatalf("per-op decode allocates %.3f; budget is %.2f", perOp, budget)
	}
}

// TestStreamDecoderSmallReads drives Next through a one-byte-at-a-time
// reader: op batches must still come out in order and the stream must
// end with a clean io.EOF.
func TestStreamDecoderSmallReads(t *testing.T) {
	h := testHistories(t)["hand"]
	raw := encode(t, h)
	d := NewStreamDecoder(iotest{r: bytes.NewReader(raw)})
	var ops []op.Op
	for {
		batch, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, batch...)
	}
	if !reflect.DeepEqual(ops, h.Ops) {
		t.Fatal("ops diverged under one-byte reads")
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next = %v; want sticky io.EOF", err)
	}
}

// iotest delivers one byte per read.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}
