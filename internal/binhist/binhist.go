// Package binhist reads and writes histories in ellebin, the checker's
// compact binary wire format. Where jsonhist re-parses every key string
// and field name per op, ellebin puts the in-memory layout on the wire:
// object keys are interned once into an inline dictionary and referenced
// by dense varint IDs (the same scheme history.Interner uses in memory),
// integers are varints, and every record is length-prefixed so a reader
// can frame the stream without touching payload bytes.
//
// Layout (see docs/FORMATS.md for the full reference):
//
//	header:  8 bytes  EB 6C 6C 65 62 69 6E vv   (0xEB "llebin" + version)
//	record:  uvarint payload length, then payload
//	payload: kind byte, then kind-specific fields
//
// Two record kinds exist in version 1:
//
//	dict (0x01): the raw key bytes; implicitly assigns the next KeyID
//	op   (0x02): zigzag index, process, time; type byte; uvarint mop
//	             count; then per mop a tag byte (fun + read-value kind),
//	             uvarint KeyID, and the value varints
//
// A dictionary entry always precedes the first op referencing it, so the
// stream is decodable in one pass with no read-ahead. A second header at
// a record boundary starts a fresh stream segment (the dictionary
// resets), which makes concatenated ellebin files a valid stream and
// lets chunked producers re-send a standalone header per chunk.
//
// The framing is also the format's integrity story: a reader dropped at
// any byte offset other than a record boundary — a truncated file, a
// rotation that regrew past a tail reader's offset — sees a length,
// kind, type, or KeyID violation within one record and fails with an
// error wrapping ErrFraming instead of mis-parsing silently.
package binhist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/history"
	"repro/internal/op"
)

// Version is the current ellebin format version, written as the
// header's final byte. Decoders reject versions they do not know.
const Version = 1

// ContentType is the MIME type for ellebin chunk uploads to elled.
const ContentType = "application/x-ellebin"

// headerLen is the byte length of the stream header: 7 magic bytes plus
// the version byte.
const headerLen = 8

// magic is the 7-byte stream tag. The leading 0xEB ("Elle Binary") can
// never begin a JSON-lines history — JSON text starts with ASCII — so
// one peeked byte tells the two formats apart.
var magic = [7]byte{0xEB, 'l', 'l', 'e', 'b', 'i', 'n'}

// IsMagic reports whether b begins with the ellebin magic (any
// version). One byte is enough to distinguish ellebin from JSON lines;
// longer prefixes are matched as far as they go.
func IsMagic(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	n := len(b)
	if n > len(magic) {
		n = len(magic)
	}
	for i := 0; i < n; i++ {
		if b[i] != magic[i] {
			return false
		}
	}
	return true
}

// Record kinds.
const (
	recDict = 0x01 // payload: raw key bytes; assigns the next KeyID
	recOp   = 0x02 // payload: one op
)

// Read-value kinds, stored in a read mop's tag bits 3-4.
const (
	readUnknown = 0 // result unknown (invoke, fail, info)
	readNil     = 1 // observed the initial nil version (registers)
	readReg     = 2 // observed a register/counter value
	readList    = 3 // observed a list/set value (possibly empty)
)

// maxRecordBytes bounds one record's payload. Far above any real op —
// a million-element list read is ~5 MB — it exists so a corrupt or
// adversarial length prefix cannot demand a gigabyte allocation.
const maxRecordBytes = 1 << 26

// ErrFraming tags every record-structure violation: bad magic, an
// unknown version or record kind, a length prefix that doesn't match
// its payload, a KeyID with no dictionary entry, a stream ending
// mid-record. Callers use errors.Is(err, ErrFraming) to distinguish
// "this is not (or no longer) a well-formed ellebin stream" — the
// signature of truncation or rotation under a tail reader — from
// ordinary I/O errors.
var ErrFraming = errors.New("invalid ellebin framing")

func framingErr(format string, args ...any) error {
	return fmt.Errorf("binhist: %w: %s", ErrFraming, fmt.Sprintf(format, args...))
}

// zigzag folds signed integers into unsigned varint-friendly form.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// An Encoder writes ops as an ellebin stream, interning keys into the
// inline dictionary as they first appear. The header is written before
// the first record; Flush must be called (or Encode used) to drain the
// underlying buffered writer.
type Encoder struct {
	w      *bufio.Writer
	ids    map[string]uint64
	buf    []byte // payload scratch, reused across records
	opened bool
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), ids: make(map[string]uint64)}
}

// WriteOp appends one op to the stream, preceded by dictionary records
// for any keys it introduces.
func (e *Encoder) WriteOp(o op.Op) error {
	if !e.opened {
		e.opened = true
		if _, err := e.w.Write(magic[:]); err != nil {
			return err
		}
		if err := e.w.WriteByte(Version); err != nil {
			return err
		}
	}
	for _, m := range o.Mops {
		if _, ok := e.ids[m.Key]; !ok {
			e.ids[m.Key] = uint64(len(e.ids))
			e.buf = append(e.buf[:0], recDict)
			e.buf = append(e.buf, m.Key...)
			if err := e.writeRecord(e.buf); err != nil {
				return err
			}
		}
	}
	b := append(e.buf[:0], recOp)
	b = binary.AppendUvarint(b, zigzag(int64(o.Index)))
	b = binary.AppendUvarint(b, zigzag(int64(o.Process)))
	b = binary.AppendUvarint(b, zigzag(o.Time))
	b = append(b, byte(o.Type))
	b = binary.AppendUvarint(b, uint64(len(o.Mops)))
	for _, m := range o.Mops {
		tag := byte(m.F)
		if m.F == op.FRead {
			switch {
			case m.List != nil:
				tag |= readList << 3
			case m.RegKnown && m.RegNil:
				tag |= readNil << 3
			case m.RegKnown:
				tag |= readReg << 3
			}
		}
		b = append(b, tag)
		b = binary.AppendUvarint(b, e.ids[m.Key])
		switch {
		case m.F != op.FRead:
			b = binary.AppendUvarint(b, zigzag(int64(m.Arg)))
		case m.List != nil:
			b = binary.AppendUvarint(b, uint64(len(m.List)))
			for _, v := range m.List {
				b = binary.AppendUvarint(b, zigzag(int64(v)))
			}
		case m.RegKnown && !m.RegNil:
			b = binary.AppendUvarint(b, zigzag(int64(m.Reg)))
		}
	}
	e.buf = b
	return e.writeRecord(b)
}

func (e *Encoder) writeRecord(payload []byte) error {
	var lp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lp[:], uint64(len(payload)))
	if _, err := e.w.Write(lp[:n]); err != nil {
		return err
	}
	_, err := e.w.Write(payload)
	return err
}

// Flush writes the header if no op has been written yet (an empty
// stream is still a valid, tagged stream) and drains the buffer.
func (e *Encoder) Flush() error {
	if !e.opened {
		e.opened = true
		if _, err := e.w.Write(magic[:]); err != nil {
			return err
		}
		if err := e.w.WriteByte(Version); err != nil {
			return err
		}
	}
	return e.w.Flush()
}

// Encode writes h to w as one ellebin stream.
func Encode(w io.Writer, h *history.History) error {
	e := NewEncoder(w)
	for _, o := range h.Ops {
		if err := e.WriteOp(o); err != nil {
			return err
		}
	}
	return e.Flush()
}
