package binhist

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/op"
)

// opsFromBytes deterministically builds a slice of structurally valid
// ops from fuzz bytes, exercising every mop shape and the full signed
// ranges of index/process/time/args.
func opsFromBytes(data []byte) []op.Op {
	var ops []op.Op
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	keys := []string{"x", "y", "a longer key", "", "k\x00\xffbin"}
	for i := 0; pos < len(data) && i < 256; i++ {
		o := op.Op{
			Index:   i * (1 + int(next())),
			Process: int(int8(next())),
			Time:    int64(int8(next())) << (next() % 48),
			Type:    op.Type(next() % 4),
		}
		nm := int(next() % 4)
		for j := 0; j < nm; j++ {
			key := keys[int(next())%len(keys)]
			switch next() % 7 {
			case 0:
				o.Mops = append(o.Mops, op.Append(key, int(int8(next()))))
			case 1:
				o.Mops = append(o.Mops, op.Add(key, int(next())))
			case 2:
				o.Mops = append(o.Mops, op.Increment(key, -int(next())))
			case 3:
				o.Mops = append(o.Mops, op.Write(key, int(int8(next()))<<(next()%32)))
			case 4:
				o.Mops = append(o.Mops, op.Read(key))
			case 5:
				o.Mops = append(o.Mops, op.ReadNil(key), op.ReadReg(key, int(next())))
			default:
				list := make([]int, int(next()%5))
				for k := range list {
					list[k] = int(int8(next()))
				}
				o.Mops = append(o.Mops, op.ReadList(key, list))
			}
		}
		ops = append(ops, o)
	}
	return ops
}

// FuzzBinHistRoundTrip holds the format's two core promises under
// fuzzing: (1) encode→decode is the identity on arbitrary valid
// histories — through Decode and through every chunk split the input
// bytes suggest; (2) the decoder never panics on arbitrary bytes (the
// same data fed raw), it only errors.
func FuzzBinHistRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xEB, 'l', 'l', 'e', 'b', 'i', 'n', 0x01})
	f.Add([]byte("\x01\x02\x03\x04\x05\x06\x07\x08\x09garbage"))
	f.Add(bytes.Repeat([]byte{0xEB}, 40))
	f.Add([]byte{9, 1, 2, 250, 251, 252, 253, 254, 255, 128, 0, 64, 32, 7, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		// (2) arbitrary bytes: must not panic, in either decode surface.
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			// Acceptance itself is fine (valid streams exist); only
			// panics are bugs.
			_ = err
		}
		var raw ChunkDecoder
		for off := 0; off < len(data); off += 9 {
			end := off + 9
			if end > len(data) {
				end = len(data)
			}
			if _, err := raw.Feed(data[off:end]); err != nil {
				break
			}
		}

		// (1) valid histories: byte-driven ops round-trip exactly.
		ops := opsFromBytes(data)
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		for _, o := range ops {
			if err := e.WriteOp(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		encoded := buf.Bytes()

		d := NewStreamDecoder(bytes.NewReader(encoded))
		var got []op.Op
		for {
			batch, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("decode of a freshly encoded stream failed: %v", err)
			}
			got = append(got, batch...)
		}
		if len(ops) != len(got) || (len(ops) > 0 && !reflect.DeepEqual(ops, got)) {
			t.Fatalf("round trip diverged: encoded %d ops, decoded %d", len(ops), len(got))
		}

		// And through an arbitrary chunk split.
		split := 1 + int(len(data)%13)
		var c ChunkDecoder
		var chunked []op.Op
		for off := 0; off < len(encoded); off += split {
			end := off + split
			if end > len(encoded) {
				end = len(encoded)
			}
			batch, err := c.Feed(encoded[off:end])
			if err != nil {
				t.Fatalf("chunked decode failed: %v", err)
			}
			chunked = append(chunked, batch...)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if len(chunked) != len(got) || (len(got) > 0 && !reflect.DeepEqual(chunked, got)) {
			t.Fatalf("chunked decode diverged: %d vs %d ops", len(chunked), len(got))
		}
	})
}
