package rwregister

import (
	"math/rand"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/op"
	"repro/internal/workload"
)

// Tests for the §5.2 sequential-keys rule: a single process's successive
// observations of one key order its versions, even without real-time
// information.

func TestSequentialKeysOrdersVersions(t *testing.T) {
	opts := workload.Opts{SequentialKeys: true}
	// Process 7 wrote 1, then later (different txn) wrote 2; a reader
	// saw 2. Session order gives 1 <x 2 without wfr or realtime.
	a := analyze(t, opts,
		op.Txn(0, 7, op.OK, op.Write("x", 1)),
		op.Txn(1, 7, op.OK, op.Write("x", 2)),
		op.Txn(2, 3, op.OK, op.ReadReg("x", 2)),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
	if !a.Graph.Label(0, 1).Has(graph.WW) {
		t.Error("sequential-keys should order same-process writes as ww")
	}
}

func TestSequentialKeysCrossProcessNoEdge(t *testing.T) {
	opts := workload.Opts{SequentialKeys: true}
	a := analyze(t, opts,
		op.Txn(0, 1, op.OK, op.Write("x", 1)),
		op.Txn(1, 2, op.OK, op.Write("x", 2)),
	)
	if a.Graph.Label(0, 1) != 0 && a.Graph.Label(1, 0) != 0 {
		t.Error("sequential-keys must not order writes across processes")
	}
}

func TestSequentialKeysDetectsSessionRegression(t *testing.T) {
	// Process 5 read 2, then later read 1 — with the writers recoverable
	// and wfr linking 1 -> 2, the session edge 2 -> 1 closes a cyclic
	// version order.
	opts := workload.Opts{InitialState: true, WritesFollowReads: true, SequentialKeys: true}
	a := analyze(t, opts,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 1), op.Write("x", 2)),
		op.Txn(2, 5, op.OK, op.ReadReg("x", 2)),
		op.Txn(3, 5, op.OK, op.ReadReg("x", 1)),
	)
	found := false
	for _, an := range a.Anomalies {
		if an.Type == anomaly.CyclicVersionOrder {
			found = true
		}
	}
	if !found {
		t.Fatalf("session regression not detected: %v", a.Anomalies)
	}
}

func TestSequentialKeysRespectsAbortedTxns(t *testing.T) {
	// A failed transaction contributes no session edges.
	opts := workload.Opts{SequentialKeys: true}
	a := analyze(t, opts,
		op.Txn(0, 7, op.Fail, op.Write("x", 1)),
		op.Txn(1, 7, op.OK, op.Write("x", 2)),
	)
	if a.Graph.Label(0, 1) != 0 {
		t.Error("failed transaction seeded a session version edge")
	}
}

func TestDefaultOptsEnableEverything(t *testing.T) {
	o := workload.DefaultOpts()
	if !o.InitialState || !o.WritesFollowReads || !o.LinearizableKeys || !o.SequentialKeys {
		t.Errorf("DefaultOpts = %+v", o)
	}
}

// TestReductionPreservesReachability: the transitive reduction used
// before edge explosion must keep exactly the original reachability.
func TestReductionPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		// Random DAG over n nodes: edges only from lower to higher ids.
		n := 2 + rng.Intn(8)
		vg := map[int]map[int]bool{}
		for i := 0; i < n; i++ {
			vg[i] = map[int]bool{}
		}
		for e := 0; e < rng.Intn(20); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a < b {
				vg[a][b] = true
			}
		}
		before := reachabilityMatrix(vg, n)
		reduce(vg)
		after := reachabilityMatrix(vg, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if before[i][j] != after[i][j] {
					t.Fatalf("trial %d: reduction changed reachability %d->%d", trial, i, j)
				}
			}
		}
		// And it must be minimal: removing any remaining edge changes
		// reachability.
		for u, outs := range vg {
			for v := range outs {
				delete(vg[u], v)
				broken := !reachable(vg, u, v)
				vg[u][v] = true
				if !broken {
					t.Fatalf("trial %d: edge %d->%d survives but is redundant", trial, u, v)
				}
			}
		}
	}
}

func reachabilityMatrix(vg map[int]map[int]bool, n int) [][]bool {
	m := make([][]bool, n)
	for i := 0; i < n; i++ {
		m[i] = make([]bool, n)
		stack := []int{i}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := range vg[u] {
				if !m[i][v] {
					m[i][v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return m
}

func reachable(vg map[int]map[int]bool, from, to int) bool {
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range vg[u] {
			if v == to {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}
