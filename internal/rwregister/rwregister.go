// Package rwregister implements Elle's analysis for read-write registers
// (§5.2 and the Dgraph case study, §7.4 of the paper).
//
// Blind register writes destroy history: a read of x=3 says nothing about
// which versions preceded 3. The analyzer therefore infers a *partial*
// version order per key from small, independent assumptions:
//
//   - Initial state: the initial version nil is never reachable via any
//     write, so nil <x v for every other observed version v.
//   - Writes follow reads: if a transaction reads x=v and later writes
//     x=v', then v <x v' (and consecutive writes in one transaction order
//     their versions likewise).
//   - Per-key linearizability (optional): if the database claims each key
//     is independently linearizable, then when transaction A finishes
//     reading or writing x at vi before transaction B begins and observes
//     vj, we infer vi <x vj from the real-time order.
//
// Inferred per-key version orders can be cyclic when the database
// misbehaves (Dgraph returned nil for keys written seconds earlier). Such
// keys are reported as cyclic-version-order anomalies and discarded, so
// they cannot seed trivial transaction cycles — exactly the behavior the
// paper describes. Acyclic orders are transitively reduced and exploded
// into ww / wr / rw transaction dependencies using recoverability (every
// written value unique).
package rwregister

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/rel"
	"repro/internal/workload"
)

// nilVer encodes the initial version in per-key version graphs.
const nilVer = math.MinInt64

// Analysis is the result of register dependency inference.
type Analysis struct {
	// Graph holds inferred ww, wr, and rw transaction dependencies.
	Graph *graph.Graph
	// Anomalies are non-cycle anomalies found during inference.
	Anomalies []anomaly.Anomaly
	// Keys is the history's key interner; VersionOrders is indexed by
	// its KeyIDs.
	Keys *history.Interner
	// VersionOrders holds, per KeyID, the direct edges of the reduced
	// version order actually used for inference (nil encoded as "nil");
	// keys with a cyclic or empty order have a nil entry.
	VersionOrders [][][2]string
	// Ops indexes analyzed completion ops by index.
	Ops map[int]op.Op
}

// VersionOrder returns the direct version edges inferred for key, or
// nil.
func (a *Analysis) VersionOrder(key string) [][2]string {
	id, ok := a.Keys.ID(key)
	if !ok || int(id) >= len(a.VersionOrders) {
		return nil
	}
	return a.VersionOrders[id]
}

type verKey struct {
	key history.KeyID
	val int
}

type analyzer struct {
	opts workload.Opts
	h    *history.History
	in   *history.Interner

	ops          map[int]op.Op
	oks          []op.Op
	byKey        [][]op.Op // committed ops touching each key, in index order
	spanOf       map[int][2]int
	writer       map[verKey]int // recoverable committed/indeterminate writer
	failedWriter map[verKey]int
	writeCount   map[verKey]int
	readers      map[verKey][]int // ok transactions that read (key, val)
	anomalies    []anomaly.Anomaly

	// failedIx indexes failed_write(key, value, writer) tuples — the
	// build side of the relational G1a scan, which probes it in one
	// lookup join over the whole history. It is constructed once
	// (buildRelIndexes), after ingestion, and is immutable from then
	// on.
	failedIx *rel.Index

	// windowed marks a memory-budgeted streaming session: oks is not
	// accumulated (the budgeted Finish re-analyzes the rehydrated
	// history instead of reading it).
	windowed bool
}

// newAnalyzer returns an analyzer with empty indices over the given
// interner; the history is attached by Analyze (batch) or at Finish
// (streaming sessions).
func newAnalyzer(opts workload.Opts, in *history.Interner) *analyzer {
	return &analyzer{
		opts:         opts,
		in:           in,
		ops:          map[int]op.Op{},
		spanOf:       map[int][2]int{},
		writer:       map[verKey]int{},
		failedWriter: map[verKey]int{},
		writeCount:   map[verKey]int{},
		readers:      map[verKey][]int{},
	}
}

// kid resolves an interned key (see history.Interner.MustID).
func (a *analyzer) kid(k string) history.KeyID { return a.in.MustID(k) }

// byKeyAt reads the KeyID-indexed op grouping, which streaming sessions
// grow on demand.
func (a *analyzer) byKeyAt(k history.KeyID) []op.Op {
	if int(k) < len(a.byKey) {
		return a.byKey[k]
	}
	return nil
}

// Analyze infers dependencies and anomalies for a register history. Of
// the shared options it consumes Parallelism and the four version-order
// inference rules (InitialState, WritesFollowReads, LinearizableKeys,
// SequentialKeys); workload.DefaultOpts enables every rule, matching
// the paper's Dgraph analysis.
func Analyze(h *history.History, opts workload.Opts) *Analysis {
	a := newAnalyzer(opts, h.Keys())
	a.h = h
	for pos, o := range h.Ops {
		if o.Type == op.Invoke {
			continue
		}
		inv, comp := h.Span(pos)
		a.addOp(o, [2]int{inv, comp})
	}
	p := opts.Parallelism
	a.anomalies = append(a.anomalies, a.duplicateWriteAnomalies()...)

	// Per-transaction checks are independent per committed op; fan them
	// out with ordered collection so the report order matches the
	// sequential one.
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.internalAnomalies(a.oks[i])
	}))
	a.buildRelIndexes()
	a.anomalies = append(a.anomalies, a.abortedReadAnomalies()...)
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.readAnomalies(a.oks[i])
	}))

	g := graph.New()
	for _, o := range a.oks {
		g.Ensure(o.Index)
	}
	// Per-key version-graph inference — building, cycle-checking,
	// reducing, and exploding each key's version order into transaction
	// dependencies — is independent per key. Workers produce edge lists;
	// the merge walks keys in sorted order so the graph and anomaly list
	// are identical at every parallelism level.
	keys := a.keys()
	perKey := par.Map(p, len(keys), func(i int) keyResult {
		return a.analyzeKey(keys[i], a.byKeyAt(keys[i]))
	})
	orders := make([][][2]string, a.in.Len())
	for i, k := range keys {
		r := perKey[i]
		if r.cyclic != nil {
			a.report(cvoAnomaly(a.in.Key(k), r.cyclic))
			continue
		}
		orders[k] = r.verEdges
		g.AddEdges(r.edges)
	}
	a.emitWR(g)
	return &Analysis{Graph: g, Anomalies: a.anomalies, Keys: a.in, VersionOrders: orders, Ops: a.ops}
}

// keyResult is one key's inference outcome: either a cyclic-version-order
// witness, or the reduced version order plus the dependency edges it
// implies.
type keyResult struct {
	cyclic   []int
	verEdges [][2]string
	edges    []graph.Edge
}

// analyzeKey runs the whole per-key pipeline for key k: build the version
// graph from the enabled rules, reject it if cyclic, otherwise reduce it
// and explode it into transaction dependencies. oks is the key's own
// committed-op list (analyzer.byKey), maintained identically by the
// batch ingestion loop and the streaming sessions; the rules filter by
// key, so scanning only the ops that touch it changes nothing but cost.
func (a *analyzer) analyzeKey(k history.KeyID, oks []op.Op) keyResult {
	vg := a.versionGraph(k, oks)
	if cyc := cyclicWitness(vg); cyc != nil {
		return keyResult{cyclic: cyc}
	}
	reduce(vg)
	verEdges, edges := a.emitEdges(k, vg, oks)
	return keyResult{verEdges: verEdges, edges: edges}
}

func (a *analyzer) collect(groups [][]anomaly.Anomaly) {
	a.anomalies = anomaly.AppendGroups(a.anomalies, groups)
}

// addOp indexes one completion op: the op and span maps, the per-value
// write index with its recoverability transitions (first write claims
// the writer slot, a second write evicts it), and the reader index.
// Ops must be added in ascending index order.
func (a *analyzer) addOp(o op.Op, span [2]int) {
	a.ops[o.Index] = o
	a.spanOf[o.Index] = span
	if o.Type == op.OK && !a.windowed {
		a.oks = append(a.oks, o)
	}
	for _, m := range o.Mops {
		k := a.in.Intern(m.Key)
		if o.Type == op.OK {
			// Group the op under each distinct key it touches, in index
			// order — the per-key work lists analyzeKey scans. Ops arrive
			// in ascending index order, so a trailing-element check
			// dedupes repeated keys within one transaction.
			a.byKey = history.GrowKeyed(a.byKey, k)
			if n := len(a.byKey[k]); n == 0 || a.byKey[k][n-1].Index != o.Index {
				a.byKey[k] = append(a.byKey[k], o)
			}
		}
		switch {
		case m.F == op.FWrite:
			vk := verKey{k, m.Arg}
			a.writeCount[vk]++
			switch a.writeCount[vk] {
			case 1:
				if o.Type == op.Fail {
					a.failedWriter[vk] = o.Index
				} else {
					a.writer[vk] = o.Index
				}
			case 2:
				delete(a.writer, vk)
				delete(a.failedWriter, vk)
			}
		case m.F == op.FRead && o.Type == op.OK && m.RegKnown && !m.RegNil:
			vk := verKey{k, m.Reg}
			a.readers[vk] = append(a.readers[vk], o.Index)
		}
	}
}

// duplicateWriteAnomalies reports every value written more than once,
// in sorted (key, value) order.
func (a *analyzer) duplicateWriteAnomalies() []anomaly.Anomaly {
	var vks []verKey
	for vk, n := range a.writeCount {
		if n > 1 {
			vks = append(vks, vk)
		}
	}
	sort.Slice(vks, func(i, j int) bool {
		if vks[i].key != vks[j].key {
			return a.in.Less(vks[i].key, vks[j].key)
		}
		return vks[i].val < vks[j].val
	})
	var out []anomaly.Anomaly
	for _, vk := range vks {
		kname := a.in.Key(vk.key)
		out = append(out, anomaly.Anomaly{
			Type: anomaly.DuplicateAppends,
			Key:  kname,
			Explanation: fmt.Sprintf(
				"value %d was written to key %s by %d transactions; writes must be unique for versions to be recoverable",
				vk.val, kname, a.writeCount[vk]),
		})
	}
	return out
}

// cvoAnomaly renders one cyclic-version-order finding; the streaming
// session uses the same rendering for mid-stream surfacing.
func cvoAnomaly(k string, cyc []int) anomaly.Anomaly {
	return anomaly.Anomaly{
		Type: anomaly.CyclicVersionOrder,
		Key:  k,
		Explanation: fmt.Sprintf(
			"the inferred version order for key %s is cyclic (%s); its version edges are discarded to avoid trivial transaction cycles",
			k, formatVersionCycle(cyc)),
	}
}

// buildRelIndexes prepares the immutable relational indexes the G1a
// scan probes; both the batch analyzer and streaming Finish call it
// once, after ingestion and before abortedReadAnomalies.
func (a *analyzer) buildRelIndexes() {
	a.failedIx = rel.BuildIndex(a.failedWrites(), "key", "value")
}

// failedWrites is the relation failed_write(key, value, writer): one
// tuple per recoverable value whose only writer aborted. Build order
// over the map is arbitrary, but every (key, value) bucket holds
// exactly one tuple, so index probes are deterministic regardless.
func (a *analyzer) failedWrites() rel.Relation {
	fw := a.failedWriter
	return rel.NewRelation([]string{"key", "value", "writer"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 3)
		for vk, w := range fw {
			t[0], t[1], t[2] = rel.Int(int(vk.key)), rel.Int(vk.val), rel.Int(w)
			if !yield(t) {
				return
			}
		}
	})
}

// allReadRegs is the relation read_reg(key, value, txn, mop) over
// every committed transaction: every known non-nil register read, in
// transaction and program order — the probe side of the relational
// G1a scan. One relation spans the whole history so the join pipeline
// is constructed once per analysis, not once per transaction.
func (a *analyzer) allReadRegs() rel.Relation {
	return rel.NewRelation([]string{"key", "value", "txn", "mop"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 4)
		for oi, o := range a.oks {
			for pos, m := range o.Mops {
				if m.F != op.FRead || !m.RegKnown || m.RegNil {
					continue
				}
				t[0], t[1], t[2], t[3] = rel.Int(int(a.kid(m.Key))), rel.Int(m.Reg), rel.Int(oi), rel.Int(pos)
				if !yield(t) {
					return
				}
			}
		}
	})
}

// abortedReadAnomalies finds G1a — reads of values written by aborted
// transactions — in one relational pass over the whole history:
// read_reg(key, value, txn, mop) ⋈ the prebuilt failed_write(key,
// value, writer) index, each joined row one aborted read. The lookup
// join streams reads in transaction-then-program order, exactly the
// order the old per-transaction scans merged to, so the report is
// unchanged; evaluating the pipeline once instead of per transaction
// keeps its setup cost off the hot path.
func (a *analyzer) abortedReadAnomalies() []anomaly.Anomaly {
	if a.failedIx.Len() == 0 {
		// A lookup join against an empty failed_write index is empty
		// by definition.
		return nil
	}
	var out []anomaly.Anomaly
	a.allReadRegs().LookupJoin(a.failedIx).Each(func(t rel.Tuple) bool {
		o := a.oks[t[2].Num()]
		m := o.Mops[t[3].Num()]
		out = append(out, g1aAnomaly(o, m.Key, m.Reg, a.ops[int(t[4].Num())]))
		return true
	})
	return out
}

// readAnomalies detects garbage reads (values never written) and G1b
// (intermediate values) in one committed transaction. Its sibling G1a
// scan runs once for the whole history in abortedReadAnomalies; a
// garbage-read value has no writer at all, failed or otherwise, so
// that join cannot produce a G1a row for it, and the final report
// survives the split because classification stable-sorts by
// (severity, type), separating garbage reads, G1a, and G1b however
// they interleave in the raw list.
func (a *analyzer) readAnomalies(o op.Op) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	for _, m := range o.Mops {
		if m.F != op.FRead || !m.RegKnown || m.RegNil {
			continue
		}
		vk := verKey{a.kid(m.Key), m.Reg}
		if a.writeCount[vk] == 0 {
			out = append(out, anomaly.Anomaly{
				Type: anomaly.GarbageRead,
				Ops:  []op.Op{o},
				Key:  m.Key,
				Explanation: fmt.Sprintf(
					"%s read key %s = %d, but no transaction ever wrote %d to %s",
					o.Name(), m.Key, m.Reg, m.Reg, m.Key),
			})
			continue
		}
		if w, ok := a.writer[vk]; ok && w != o.Index {
			wo := a.ops[w]
			if fin, has := finalWrite(wo, m.Key); has && fin != m.Reg {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.G1b,
					Ops:  []op.Op{o, wo},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s read key %s = %d, an intermediate write of %s (whose final write was %d): an intermediate read",
						o.Name(), m.Key, m.Reg, wo.Name(), fin),
				})
			}
		}
	}
	return out
}

// internalAnomalies verifies register semantics within one transaction:
// after writing v, reads of the key must return v; after reading v,
// subsequent reads must return v until overwritten.
func (a *analyzer) internalAnomalies(o op.Op) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	type state struct {
		known bool
		nil_  bool
		val   int
	}
	views := map[history.KeyID]*state{}
	for _, m := range o.Mops {
		k := a.kid(m.Key)
		s, ok := views[k]
		if !ok {
			s = &state{}
			views[k] = s
		}
		switch m.F {
		case op.FWrite:
			s.known, s.nil_, s.val = true, false, m.Arg
		case op.FRead:
			if !m.RegKnown {
				continue
			}
			if s.known && (s.nil_ != m.RegNil || (!s.nil_ && s.val != m.Reg)) {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.Internal,
					Ops:  []op.Op{o},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s read key %s = %s, but its own prior operations imply the value must be %s: an internal inconsistency",
						o.Name(), m.Key, regString(m.RegNil, m.Reg), regString(s.nil_, s.val)),
				})
			}
			s.known, s.nil_, s.val = true, m.RegNil, m.Reg
		}
	}
	return out
}

// g1aAnomaly renders one aborted-read finding: reader observed value v
// of key, written by the aborted writer. The streaming session uses the
// same rendering for mid-stream surfacing.
func g1aAnomaly(reader op.Op, key string, v int, writer op.Op) anomaly.Anomaly {
	return anomaly.Anomaly{
		Type: anomaly.G1a,
		Ops:  []op.Op{reader, writer},
		Key:  key,
		Explanation: fmt.Sprintf(
			"%s read key %s = %d, which was written by %s, which aborted: an aborted read",
			reader.Name(), key, v, writer.Name()),
	}
}

func regString(isNil bool, v int) string {
	if isNil {
		return "nil"
	}
	return fmt.Sprintf("%d", v)
}

// finalWrite returns the last value o wrote to key.
func finalWrite(o op.Op, key string) (int, bool) {
	v, has := 0, false
	for _, m := range o.Mops {
		if m.F == op.FWrite && m.Key == key {
			v, has = m.Arg, true
		}
	}
	return v, has
}
