package rwregister

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/explain"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/workload"
)

// scanEvery is how many completions a session ingests between per-key
// inference refreshes. Per-op anomalies (internal inconsistencies,
// aborted reads, duplicate writes) surface on the feed that proves
// them; cyclic version orders surface at the next refresh.
const scanEvery = 128

// session is the native incremental analysis for rw-register histories
// (workload.Session). Register inference is per-key and the rules are
// monotone — version graphs only gain edges as the history grows — so
// the session maintains the batch analyzer's indices (op/span maps,
// per-value write and reader indices) plus a per-key cache of the full
// inference pipeline (version graph, cyclicity, reduction, dependency
// explosion), recomputed only for keys the last chunk touched. At
// Finish, every untouched key's cached result is exactly what the batch
// analyzer would compute, so the Analysis is byte-identical.
type session struct {
	a  *analyzer
	hs *history.Stream

	keySet map[history.KeyID]bool

	cache     map[history.KeyID]keyResult
	touched   map[history.KeyID]bool
	emitted   map[string]bool
	sinceScan int
	done      bool

	// rt tracks key quiescence under a memory budget (nil without one);
	// see retire.go.
	rt *workload.KeyTracker
}

func beginSession(opts workload.Opts) workload.Session {
	hs := history.NewStream()
	s := &session{
		a:       newAnalyzer(opts, hs.Keys()),
		hs:      hs,
		keySet:  map[history.KeyID]bool{},
		cache:   map[history.KeyID]keyResult{},
		touched: map[history.KeyID]bool{},
		emitted: map[string]bool{},
	}
	if opts.MemoryBudget > 0 {
		hs.SetBudget(workload.StreamBudget(opts))
		s.rt = workload.NewKeyTracker(opts.MemoryBudget)
		s.a.windowed = true
	}
	return s
}

// Feed ingests one chunk, updating the maintained indices, and returns
// the anomalies the chunk made provable.
func (s *session) Feed(ops []op.Op) (workload.Delta, error) {
	if s.done {
		return workload.Delta{}, workload.ErrSessionFinished
	}
	var d workload.Delta
	for _, o := range ops {
		if err := s.hs.Add(o); err != nil {
			return workload.Delta{}, err
		}
		if o.Type == op.Invoke {
			continue
		}
		s.sinceScan++
		s.ingest(o, &d)
	}
	if s.sinceScan >= scanEvery {
		s.scan(&d)
		if s.rt != nil {
			// Sweep after the scan so retiring keys' last refresh has
			// already surfaced their findings.
			s.sweep()
		}
	}
	d.Ops = s.hs.Completions()
	return d, nil
}

func (s *session) ingest(o op.Op, d *workload.Delta) {
	a := s.a
	a.addOp(o, s.hs.SpanOf(o.Index))
	s.note(o)

	for _, m := range o.Mops {
		if m.F != op.FWrite {
			continue
		}
		k := a.kid(m.Key)
		s.mark(k)
		vk := verKey{k, m.Arg}
		switch a.writeCount[vk] {
		case 1:
			if o.Type == op.Fail {
				// Readers that already observed this value read state
				// that is now known to be aborted.
				for _, r := range a.readers[vk] {
					s.emit(d, fmt.Sprintf("g1a|%d|%d|%d|%d", vk.key, vk.val, r, o.Index),
						g1aAnomaly(a.ops[r], m.Key, vk.val, o))
				}
			}
		case 2:
			s.emit(d, fmt.Sprintf("dup|%d|%d", vk.key, vk.val), anomaly.Anomaly{
				Type: anomaly.DuplicateAppends,
				Key:  m.Key,
				Explanation: fmt.Sprintf(
					"value %d was written to key %s by %d transactions; writes must be unique for versions to be recoverable",
					vk.val, m.Key, a.writeCount[vk]),
			})
		}
	}
	if o.Type != op.OK {
		return
	}
	for _, m := range o.Mops {
		// addOp already grouped the op under each key; marking keeps the
		// touched/key sets in step (repeated marks are cheap).
		k := a.kid(m.Key)
		s.mark(k)
		if m.F == op.FRead && m.RegKnown && !m.RegNil {
			if w, ok := a.failedWriter[verKey{k, m.Reg}]; ok {
				s.emit(d, fmt.Sprintf("g1a|%d|%d|%d|%d", k, m.Reg, o.Index, w),
					g1aAnomaly(o, m.Key, m.Reg, a.ops[w]))
			}
		}
	}
	d.Anomalies = append(d.Anomalies, a.internalAnomalies(o)...)
}

func (s *session) mark(k history.KeyID) {
	s.keySet[k] = true
	s.touched[k] = true
}

// scan refreshes the per-key inference of every touched key, surfacing
// newly cyclic version orders.
func (s *session) scan(d *workload.Delta) {
	s.sinceScan = 0
	keys := make([]history.KeyID, 0, len(s.touched))
	for k := range s.touched {
		keys = append(keys, k)
	}
	s.a.in.SortKeyIDs(keys)
	s.touched = map[history.KeyID]bool{}
	results := par.Map(s.a.opts.Parallelism, len(keys), func(i int) keyResult {
		return s.a.analyzeKey(keys[i], s.a.byKeyAt(keys[i]))
	})
	for i, k := range keys {
		s.cache[k] = results[i]
		if results[i].cyclic != nil {
			kname := s.a.in.Key(k)
			s.emit(d, "cvo|"+kname, cvoAnomaly(kname, results[i].cyclic))
		}
	}
}

// History returns the session's validated accumulation; call after
// Finish (it aliases live state).
func (s *session) History() *history.History { return s.hs.History() }

// emit surfaces one finding unless an earlier feed already did.
func (s *session) emit(d *workload.Delta, key string, an anomaly.Anomaly) {
	if s.emitted[key] {
		return
	}
	s.emitted[key] = true
	d.Anomalies = append(d.Anomalies, an)
}

// Finish completes the stream: it refreshes the keys still pending
// since the last scan, then assembles the canonical analysis in the
// batch phase order over the maintained indices and per-key caches.
func (s *session) Finish() (workload.Analysis, error) {
	if s.done {
		return workload.Analysis{}, workload.ErrSessionFinished
	}
	s.done = true
	if err := s.hs.Err(); err != nil {
		// A chunk was rejected; finishing anyway would bless a history
		// the batch validator refuses.
		return workload.Analysis{}, err
	}
	if s.rt != nil {
		// Budgeted sessions retired per-key state along the way; the
		// caches are windows, not the whole history. Rehydrate the stream
		// and run the batch analyzer — byte-identical to batch by
		// construction, at the documented O(history) finish cost.
		an := Analyze(s.hs.History(), s.a.opts)
		return workload.Analysis{
			Graph:     an.Graph,
			Anomalies: an.Anomalies,
			Explainer: &explain.Explainer{Ops: an.Ops, Keys: an.Keys, RegOrders: an.VersionOrders},
		}, nil
	}
	a := s.a
	a.h = s.hs.History()
	p := a.opts.Parallelism

	pending := make([]history.KeyID, 0, len(s.touched))
	for k := range s.touched {
		pending = append(pending, k)
	}
	a.in.SortKeyIDs(pending)
	results := par.Map(p, len(pending), func(i int) keyResult {
		return a.analyzeKey(pending[i], a.byKeyAt(pending[i]))
	})
	for i, k := range pending {
		s.cache[k] = results[i]
	}

	a.anomalies = append(a.anomalies, a.duplicateWriteAnomalies()...)
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.internalAnomalies(a.oks[i])
	}))
	a.buildRelIndexes()
	a.anomalies = append(a.anomalies, a.abortedReadAnomalies()...)
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.readAnomalies(a.oks[i])
	}))

	g := graph.New()
	for _, o := range a.oks {
		g.Ensure(o.Index)
	}
	keys := make([]history.KeyID, 0, len(s.keySet))
	for k := range s.keySet {
		keys = append(keys, k)
	}
	a.in.SortKeyIDs(keys)
	orders := make([][][2]string, a.in.Len())
	for _, k := range keys {
		r := s.cache[k]
		if r.cyclic != nil {
			a.report(cvoAnomaly(a.in.Key(k), r.cyclic))
			continue
		}
		orders[k] = r.verEdges
		g.AddEdges(r.edges)
	}
	a.emitWR(g)
	return workload.Analysis{
		Graph:     g,
		Anomalies: a.anomalies,
		Explainer: &explain.Explainer{Ops: a.ops, Keys: a.in, RegOrders: orders},
	}, nil
}
