package rwregister

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

func analyze(t *testing.T, opts workload.Opts, ops ...op.Op) *Analysis {
	t.Helper()
	return Analyze(history.MustNew(ops), opts)
}

func hasAnomaly(a *Analysis, typ anomaly.Type) bool {
	for _, an := range a.Anomalies {
		if an.Type == typ {
			return true
		}
	}
	return false
}

// TestDgraphInternalInconsistency reproduces §7.4: a transaction sets key
// 10 to 2, then reads an earlier value 1.
func TestDgraphInternalInconsistency(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		op.Txn(0, 0, op.OK, op.Write("1", 1)), // writer of 1, so the read isn't garbage
		op.Txn(1, 1, op.OK, op.Write("10", 2), op.ReadReg("10", 1)),
		op.Txn(2, 2, op.OK, op.Write("10", 1)),
	)
	if !hasAnomaly(a, anomaly.Internal) {
		t.Fatalf("expected internal anomaly, got %v", a.Anomalies)
	}
}

// TestDgraphReadSkew reproduces the §7.4 read-skew trio:
//
//	T1: r(2432, 10), r(2434, nil)
//	T2: w(2434, 10)
//	T3: w(2432, 10), r(2434, 10)
//
// With init-state inference alone: T1 -rw-> T2 (read nil, T2 wrote its
// successor), T2 -wr-> T3, T3 -wr-> T1: a G-single cycle.
func TestDgraphReadSkew(t *testing.T) {
	// Distinct write values per key keep recoverability; the paper's keys
	// map values 10 to separate registers.
	opts := workload.Opts{InitialState: true, WritesFollowReads: true}
	a := analyze(t, opts,
		op.Txn(1, 1, op.OK, op.ReadReg("2432", 10), op.ReadNil("2434")),
		op.Txn(2, 2, op.OK, op.Write("2434", 10)),
		op.Txn(3, 3, op.OK, op.Write("2432", 10), op.ReadReg("2434", 10)),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	if !a.Graph.Label(1, 2).Has(graph.RW) {
		t.Error("T1 (read 2434=nil) should rw-depend on T2")
	}
	if !a.Graph.Label(2, 3).Has(graph.WR) {
		t.Error("T3 observed T2's write: wr edge missing")
	}
	if !a.Graph.Label(3, 1).Has(graph.WR) {
		t.Error("T1 observed T3's write of 2432: wr edge missing")
	}
	cycles := a.Graph.FindCyclesWithExactlyOne(graph.RW, graph.KSWWWR)
	if len(cycles) != 1 {
		t.Fatalf("expected G-single, found %d cycles", len(cycles))
	}
}

// TestDgraphCyclicVersionOrder reproduces the §7.4 stale-nil example: T1
// finished writing key 540 before T2 began, yet T2 read nil. Per-key
// linearizability then infers 2 < nil while initial-state infers nil < 2:
// a cyclic version order, reported and discarded.
func TestDgraphCyclicVersionOrder(t *testing.T) {
	b := history.NewBuilder()
	m1 := []op.Mop{op.ReadNil("541"), op.Write("540", 2)}
	b.Invoke(1, m1)
	b.Complete(1, op.OK, m1)
	m2 := []op.Mop{op.ReadNil("540"), op.Write("544", 1)}
	b.Invoke(2, m2)
	b.Complete(2, op.OK, m2)
	h := b.MustHistory()

	a := Analyze(h, workload.DefaultOpts())
	if !hasAnomaly(a, anomaly.CyclicVersionOrder) {
		t.Fatalf("expected cyclic version order, got %v", a.Anomalies)
	}
	// The cyclic key's edges are discarded: no transaction cycle follows.
	if cycles := a.Graph.FindCycles(graph.KSDep); len(cycles) != 0 {
		t.Fatalf("discarded version order still seeded cycles: %v", cycles)
	}
}

func TestWritesFollowReadsOrdersVersions(t *testing.T) {
	opts := workload.Opts{WritesFollowReads: true}
	a := analyze(t, opts,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 1), op.Write("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadReg("x", 2)),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	if !a.Graph.Label(0, 1).Has(graph.WW) {
		t.Error("wfr should give ww edge T0 -> T1")
	}
	if !a.Graph.Label(1, 2).Has(graph.WR) {
		t.Error("missing wr edge T1 -> T2")
	}
	// T0's version 1 precedes version 2; a reader of 1 anti-depends on T1.
	a2 := analyze(t, opts,
		op.Txn(0, 0, op.OK, op.Write("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 1), op.Write("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadReg("x", 1)),
	)
	if !a2.Graph.Label(2, 1).Has(graph.RW) {
		t.Error("reader of 1 should rw-depend on writer of 2")
	}
}

func TestG1aRegister(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		op.Txn(0, 0, op.Fail, op.Write("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 1)),
	)
	if !hasAnomaly(a, anomaly.G1a) {
		t.Fatalf("expected G1a, got %v", a.Anomalies)
	}
}

func TestG1bRegister(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		op.Txn(0, 0, op.OK, op.Write("x", 1), op.Write("x", 2)),
		op.Txn(1, 1, op.OK, op.ReadReg("x", 1)),
	)
	if !hasAnomaly(a, anomaly.G1b) {
		t.Fatalf("expected G1b, got %v", a.Anomalies)
	}
}

func TestGarbageReadRegister(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		op.Txn(0, 0, op.OK, op.ReadReg("x", 42)),
	)
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("expected garbage read, got %v", a.Anomalies)
	}
}

func TestDuplicateWritesRegister(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		op.Txn(0, 0, op.OK, op.Write("x", 7)),
		op.Txn(1, 1, op.OK, op.Write("x", 7)),
	)
	if !hasAnomaly(a, anomaly.DuplicateAppends) {
		t.Fatalf("expected duplicate writes, got %v", a.Anomalies)
	}
	// Unrecoverable values seed no wr edges.
	a2 := analyze(t, workload.DefaultOpts(),
		op.Txn(0, 0, op.OK, op.Write("x", 7)),
		op.Txn(1, 1, op.OK, op.Write("x", 7)),
		op.Txn(2, 2, op.OK, op.ReadReg("x", 7)),
	)
	if a2.Graph.Label(0, 2) != 0 || a2.Graph.Label(1, 2) != 0 {
		t.Error("duplicate writes must not be recovered to a writer")
	}
}

func TestLinearizableKeysRealtimeInference(t *testing.T) {
	// T0 writes x=1 and completes; then T1 writes x=2; then T2 reads 2.
	// Per-key linearizability gives 1 < 2 even with wfr disabled.
	b := history.NewBuilder()
	m0 := []op.Mop{op.Write("x", 1)}
	b.Invoke(0, m0)
	b.Complete(0, op.OK, m0)
	m1 := []op.Mop{op.Write("x", 2)}
	b.Invoke(1, m1)
	b.Complete(1, op.OK, m1)
	m2 := []op.Mop{op.ReadReg("x", 2)}
	b.Invoke(2, []op.Mop{op.Read("x")})
	b.Complete(2, op.OK, m2)
	h := b.MustHistory()

	a := Analyze(h, workload.Opts{LinearizableKeys: true})
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	// Completion indices are 1 and 3 for the two writers.
	if !a.Graph.Label(1, 3).Has(graph.WW) {
		t.Error("linearizable-keys should order the writes as ww")
	}
}

func TestStaleNilReadMakesCycleWithLinearizableKeys(t *testing.T) {
	// T0 writes x=1 and completes; T1 then reads x=nil. Initial-state
	// says nil < 1; linearizability says 1 < nil: cyclic version order.
	b := history.NewBuilder()
	m0 := []op.Mop{op.Write("x", 1)}
	b.Invoke(0, m0)
	b.Complete(0, op.OK, m0)
	m1 := []op.Mop{op.ReadNil("x")}
	b.Invoke(1, []op.Mop{op.Read("x")})
	b.Complete(1, op.OK, m1)
	h := b.MustHistory()

	a := Analyze(h, workload.DefaultOpts())
	if !hasAnomaly(a, anomaly.CyclicVersionOrder) {
		t.Fatalf("expected cyclic version order, got %v", a.Anomalies)
	}
}

func TestCleanRegisterHistoryNoAnomalies(t *testing.T) {
	b := history.NewBuilder()
	seq := [][]op.Mop{
		{op.Write("x", 1)},
		{op.ReadReg("x", 1), op.Write("x", 2)},
		{op.ReadReg("x", 2), op.Write("y", 1)},
		{op.ReadReg("y", 1), op.ReadReg("x", 2)},
	}
	for i, mops := range seq {
		b.Invoke(i, mops)
		b.Complete(i, op.OK, mops)
	}
	a := Analyze(b.MustHistory(), workload.DefaultOpts())
	if len(a.Anomalies) != 0 {
		t.Fatalf("clean history produced anomalies: %v", a.Anomalies)
	}
	if cycles := a.Graph.FindCycles(graph.KSDep); len(cycles) != 0 {
		t.Fatalf("clean history produced cycles: %v", cycles)
	}
}

func TestVersionOrdersReported(t *testing.T) {
	a := analyze(t, workload.Opts{InitialState: true},
		op.Txn(0, 0, op.OK, op.Write("x", 5)),
	)
	edges := a.VersionOrder("x")
	if len(edges) != 1 {
		t.Fatalf("version order edges = %v", edges)
	}
	if edges[0][0] != "nil" || edges[0][1] != "5" {
		t.Errorf("edge = %v, want nil -> 5", edges[0])
	}
}
