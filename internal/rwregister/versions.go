package rwregister

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

// versionGraph builds the per-key partial version order for key k from
// the enabled inference rules. Nodes are written/observed values, with
// nilVer standing in for the initial version.
func (a *analyzer) versionGraph(k history.KeyID, oks []op.Op) map[int]map[int]bool {
	vg := map[int]map[int]bool{}
	addVer := func(v int) {
		if vg[v] == nil {
			vg[v] = map[int]bool{}
		}
	}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		addVer(u)
		addVer(v)
		vg[u][v] = true
	}
	addVer(nilVer)

	versions := a.versionsOf(k)
	for _, v := range versions {
		addVer(v)
		if a.opts.InitialState {
			addEdge(nilVer, v)
		}
	}

	if a.opts.WritesFollowReads {
		kname := a.in.Key(k)
		for _, o := range oks {
			cur, haveCur := nilVer, false
			for _, m := range o.Mops {
				if m.Key != kname {
					continue
				}
				switch m.F {
				case op.FRead:
					if !m.RegKnown {
						continue
					}
					if m.RegNil {
						cur, haveCur = nilVer, true
					} else {
						cur, haveCur = m.Reg, true
					}
				case op.FWrite:
					if haveCur {
						addEdge(cur, m.Arg)
					}
					cur, haveCur = m.Arg, true
				}
			}
		}
	}

	if a.opts.LinearizableKeys {
		a.linearizableEdges(k, oks, addEdge)
	}
	if a.opts.SequentialKeys {
		a.sequentialEdges(k, oks, addEdge)
	}
	return vg
}

// sequentialEdges infers vi <x vj whenever one committed process touched
// key k at version vi in one transaction and at vj in a later one: the
// session's view of a sequentially consistent key must be monotone.
func (a *analyzer) sequentialEdges(k history.KeyID, oks []op.Op, addEdge func(u, v int)) {
	kname := a.in.Key(k)
	type touch struct {
		process     int
		index       int
		first, last int
		ok          bool
	}
	byProcess := map[int]touch{}
	// oks is in index order, so per-process iteration follows the
	// session order.
	for _, o := range oks {
		first, last, have := nilVer, nilVer, false
		for _, m := range o.Mops {
			if m.Key != kname {
				continue
			}
			var v int
			switch {
			case m.F == op.FWrite:
				v = m.Arg
			case m.F == op.FRead && m.RegKnown && m.RegNil:
				v = nilVer
			case m.F == op.FRead && m.RegKnown:
				v = m.Reg
			default:
				continue
			}
			if !have {
				first, have = v, true
			}
			last = v
		}
		if !have {
			continue
		}
		if prev, ok := byProcess[o.Process]; ok && prev.ok {
			addEdge(prev.last, first)
		}
		byProcess[o.Process] = touch{process: o.Process, index: o.Index, first: first, last: last, ok: true}
	}
}

// versionsOf lists every value observed or written for key k, in
// ascending order, excluding nil.
func (a *analyzer) versionsOf(k history.KeyID) []int {
	set := map[int]bool{}
	for vk := range a.writeCount {
		if vk.key == k {
			set[vk.val] = true
		}
	}
	for vk := range a.readers {
		if vk.key == k {
			set[vk.val] = true
		}
	}
	var out []int
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// linearizableEdges infers vi <x vj whenever a committed transaction A
// finished touching k at version vi strictly before a committed
// transaction B began and first touched k at version vj. The sweep
// mirrors the real-time transitive reduction: it maintains the frontier
// of completed transactions not yet transitively covered.
func (a *analyzer) linearizableEdges(k history.KeyID, oks []op.Op, addEdge func(u, v int)) {
	kname := a.in.Key(k)
	type span struct {
		invoke, complete int
		first, last      int // versions; nilVer possible
		hasFirst         bool
	}
	var spans []span
	for _, o := range oks {
		first, last, have := nilVer, nilVer, false
		for _, m := range o.Mops {
			if m.Key != kname {
				continue
			}
			var v int
			switch {
			case m.F == op.FWrite:
				v = m.Arg
			case m.F == op.FRead && m.RegKnown && m.RegNil:
				v = nilVer
			case m.F == op.FRead && m.RegKnown:
				v = m.Reg
			default:
				continue
			}
			if !have {
				first, have = v, true
			}
			last = v
		}
		if !have {
			continue
		}
		sp := a.spanOf[o.Index]
		spans = append(spans, span{invoke: sp[0], complete: sp[1], first: first, last: last, hasFirst: true})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].invoke < spans[j].invoke })
	byComplete := make([]span, len(spans))
	copy(byComplete, spans)
	sort.Slice(byComplete, func(i, j int) bool { return byComplete[i].complete < byComplete[j].complete })

	var frontier []span
	ci := 0
	for _, t := range spans {
		for ci < len(byComplete) && byComplete[ci].complete < t.invoke {
			c := byComplete[ci]
			ci++
			kept := frontier[:0]
			for _, f := range frontier {
				if f.complete >= c.invoke {
					kept = append(kept, f)
				}
			}
			frontier = append(kept, c)
		}
		for _, f := range frontier {
			addEdge(f.last, t.first)
		}
	}
}

// cyclicWitness returns a cycle of versions if the version graph has one,
// or nil if the graph is acyclic. Uses iterative DFS with colors.
func cyclicWitness(vg map[int]map[int]bool) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	parent := map[int]int{}
	var nodes []int
	for v := range vg {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)

	for _, root := range nodes {
		if color[root] != white {
			continue
		}
		type frame struct {
			v    int
			next []int
			i    int
		}
		stack := []frame{{v: root, next: sortedTargets(vg[root])}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(f.next) {
				w := f.next[f.i]
				f.i++
				switch color[w] {
				case white:
					color[w] = gray
					parent[w] = f.v
					stack = append(stack, frame{v: w, next: sortedTargets(vg[w])})
				case gray:
					// Found a back edge f.v -> w: reconstruct the cycle.
					cyc := []int{w}
					for at := f.v; at != w; at = parent[at] {
						cyc = append(cyc, at)
					}
					// Reverse into forward order.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
				continue
			}
			color[f.v] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

func sortedTargets(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// reduce removes transitively implied edges from an acyclic version graph
// in place, so that direct edges mean "next version".
func reduce(vg map[int]map[int]bool) {
	for u, outs := range vg {
		for v := range outs {
			if reachableAvoiding(vg, u, v) {
				delete(outs, v)
			}
		}
	}
}

// reachableAvoiding reports whether v is reachable from u without using
// the direct edge u->v.
func reachableAvoiding(vg map[int]map[int]bool, u, v int) bool {
	visited := map[int]bool{u: true}
	stack := []int{}
	for w := range vg[u] {
		if w != v && !visited[w] {
			visited[w] = true
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		for w := range vg[x] {
			if !visited[w] {
				visited[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// emitEdges explodes key k's reduced version order into ww and rw
// transaction dependencies, returning the direct version edges for
// reporting alongside the dependency edges.
func (a *analyzer) emitEdges(k history.KeyID, vg map[int]map[int]bool, oks []op.Op) ([][2]string, []graph.Edge) {
	var edges [][2]string
	var deps []graph.Edge
	for _, u := range sortedTargets(allNodes(vg)) {
		for _, v := range sortedTargets(vg[u]) {
			edges = append(edges, [2]string{verName(u), verName(v)})
			// ww: writer of u installed the version v's writer replaced.
			if u != nilVer {
				if wu, ok := a.writer[verKey{k, u}]; ok {
					if wv, ok := a.writer[verKey{k, v}]; ok {
						deps = append(deps, graph.Edge{From: wu, To: wv, Kind: graph.WW})
					}
				}
			}
			// rw: every reader of u anti-depends on the writer of its
			// successor v.
			if wv, ok := a.writer[verKey{k, v}]; ok {
				for _, r := range a.readersOf(k, u, oks) {
					deps = append(deps, graph.Edge{From: r, To: wv, Kind: graph.RW})
				}
			}
		}
	}
	return edges, deps
}

// readersOf returns ok transactions that read version v of key k; v may
// be nilVer.
func (a *analyzer) readersOf(k history.KeyID, v int, oks []op.Op) []int {
	if v != nilVer {
		return a.readers[verKey{k, v}]
	}
	kname := a.in.Key(k)
	var out []int
	for _, o := range oks {
		for _, m := range o.Mops {
			if m.F == op.FRead && m.Key == kname && m.RegKnown && m.RegNil {
				out = append(out, o.Index)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// emitWR adds write-read dependencies, which need no version order: a
// reader of value v depends on v's unique writer.
func (a *analyzer) emitWR(g *graph.Graph) {
	var vks []verKey
	for vk := range a.readers {
		vks = append(vks, vk)
	}
	sort.Slice(vks, func(i, j int) bool {
		if vks[i].key != vks[j].key {
			return a.in.Less(vks[i].key, vks[j].key)
		}
		return vks[i].val < vks[j].val
	})
	for _, vk := range vks {
		w, ok := a.writer[vk]
		if !ok {
			continue
		}
		for _, r := range a.readers[vk] {
			g.AddEdge(w, r, graph.WR)
		}
	}
}

func allNodes(vg map[int]map[int]bool) map[int]bool {
	out := make(map[int]bool, len(vg))
	for v := range vg {
		out[v] = true
	}
	return out
}

func verName(v int) string {
	if v == nilVer {
		return "nil"
	}
	return fmt.Sprintf("%d", v)
}

func formatVersionCycle(cyc []int) string {
	parts := make([]string, 0, len(cyc)+1)
	for _, v := range cyc {
		parts = append(parts, verName(v))
	}
	parts = append(parts, verName(cyc[0]))
	return strings.Join(parts, " < ")
}

func (a *analyzer) keys() []history.KeyID {
	seen := make([]bool, a.in.Len())
	for vk := range a.writeCount {
		seen[vk.key] = true
	}
	for vk := range a.readers {
		seen[vk.key] = true
	}
	for k := range a.byKey {
		if len(a.byKey[k]) > 0 {
			seen[k] = true
		}
	}
	var out []history.KeyID
	for k, s := range seen {
		if s {
			out = append(out, history.KeyID(k))
		}
	}
	a.in.SortKeyIDs(out)
	return out
}

func (a *analyzer) report(an anomaly.Anomaly) {
	a.anomalies = append(a.anomalies, an)
}
