package rwregister

import (
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

// This file is the register session's memory-budget half: with a budget
// configured (workload.Opts.MemoryBudget), per-key inference caches are
// kept only for keys touched within the window. Register inference has
// no cross-key graph to freeze — dependencies are exploded per key — so
// retirement here is purely map and slice eviction; the op stream's own
// segment retirement (history.Stream) bounds op storage. Mid-stream
// findings from a budgeted session are a subset of the unbudgeted
// session's; the definitive analysis is Finish's full re-analysis of
// the rehydrated stream.

// note records one completion with the key tracker. Ops touching no
// keys are unpinned immediately: nothing can ever cite them.
func (s *session) note(o op.Op) {
	if s.rt == nil {
		return
	}
	keys := make([]history.KeyID, 0, len(o.Mops))
	for _, m := range o.Mops {
		keys = append(keys, s.a.kid(m.Key))
	}
	if len(keys) == 0 {
		delete(s.a.ops, o.Index)
		delete(s.a.spanOf, o.Index)
		return
	}
	s.rt.NoteOp(o.Index, keys)
}

// sweep retires every key quiescent for a full window: its op grouping,
// cached inference result, per-value write and reader indices, and —
// once no live key pins them — its ops. A retired key seen again is
// re-analyzed as brand new.
func (s *session) sweep() {
	dead, deadOps := s.rt.Sweep()
	if len(dead) == 0 && len(deadOps) == 0 {
		return
	}
	a := s.a
	deadSet := make(map[history.KeyID]bool, len(dead))
	for _, k := range dead {
		deadSet[k] = true
		if int(k) < len(a.byKey) {
			a.byKey[k] = nil
		}
		delete(s.cache, k)
		delete(s.keySet, k)
	}
	if len(dead) > 0 {
		// The per-value maps are keyed by (key, value); one full
		// iteration per sweep frees every entry of every dead key.
		for vk := range a.writer {
			if deadSet[vk.key] {
				delete(a.writer, vk)
			}
		}
		for vk := range a.failedWriter {
			if deadSet[vk.key] {
				delete(a.failedWriter, vk)
			}
		}
		for vk := range a.writeCount {
			if deadSet[vk.key] {
				delete(a.writeCount, vk)
			}
		}
		for vk := range a.readers {
			if deadSet[vk.key] {
				delete(a.readers, vk)
			}
		}
	}
	for _, i := range deadOps {
		delete(a.ops, i)
		delete(a.spanOf, i)
	}
}

// RetireStats implements workload.Retirer.
func (s *session) RetireStats() workload.RetireStats {
	st := workload.RetireStats{Stream: s.hs.RetireStats()}
	if s.rt != nil {
		st.RetiredKeys = s.rt.RetiredKeys()
	}
	return st
}
