package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestProcs(t *testing.T) {
	if got := Procs(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Procs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Procs(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Procs(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Procs(7); got != 7 {
		t.Errorf("Procs(7) = %d", got)
	}
}

func TestDoCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 1000} {
			counts := make([]atomic.Int32, n)
			Do(p, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("p=%d n=%d: index %d ran %d times", p, n, i, got)
				}
			}
		}
	}
}

func TestMapOrder(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		out := Map(p, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("p=%d: out[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}
