// Package par provides the small fan-out primitives the checker's
// parallel paths share: running n independent work items across a worker
// pool and collecting results into index-addressed slots, so that output
// order — and therefore every report the checker renders — is identical
// no matter how many workers ran or how the scheduler interleaved them.
//
// Work is distributed dynamically (an atomic cursor, not static striping)
// because the checker's work items are heavily skewed: one hot key can
// carry most of a history's appends, and one strongly connected component
// can contain most of its transactions.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Procs resolves a parallelism request: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)), matching the checker's default.
func Procs(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Do runs f(i) for every i in [0, n), spread across up to p workers
// (p <= 0 meaning Procs(0)). With one worker — or one item — it runs
// inline on the calling goroutine, so sequential checking allocates
// nothing and appears in profiles undisturbed. f must be safe to call
// concurrently for distinct i.
func Do(p, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	p = Procs(p)
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs f over [0, n) with Do and returns the results in index order:
// out[i] == f(i) regardless of which worker computed it.
func Map[T any](p, n int, f func(i int) T) []T {
	out := make([]T, n)
	Do(p, n, func(i int) { out[i] = f(i) })
	return out
}
