package bank

import (
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/explain"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

func analyze(t *testing.T, opts workload.Opts, ops ...op.Op) *Analysis {
	t.Helper()
	return Analyze(history.MustNew(ops), opts)
}

func hasType(a *Analysis, typ anomaly.Type) bool {
	for _, an := range a.Anomalies {
		if an.Type == typ {
			return true
		}
	}
	return false
}

func hasEdge(g *graph.Graph, from, to int, kind graph.Kind) bool {
	return g.Label(from, to)&kind.Mask() != 0
}

// deposit is the opening transaction: 100 in each of a and b.
func deposit(index int) op.Op {
	return op.Txn(index, 0, op.OK, op.Write("a", 100), op.Write("b", 100))
}

func TestCleanTransferHistory(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		deposit(0),
		// Transfer 5 from a to b.
		op.Txn(1, 1, op.OK,
			op.ReadReg("a", 100), op.ReadReg("b", 100),
			op.Write("a", 95), op.Write("b", 105)),
		// Read-all snapshot after the transfer.
		op.Txn(2, 2, op.OK, op.ReadReg("a", 95), op.ReadReg("b", 105)),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("clean history produced %v", a.Anomalies)
	}
	if !a.TotalKnown || a.Total != 200 {
		t.Fatalf("total = %d known=%v, want 200", a.Total, a.TotalKnown)
	}
	if got := a.Accounts; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("accounts = %v", got)
	}
	// wr: T1 read the deposit's balances; T2 read T1's.
	if !hasEdge(a.Graph, 0, 1, graph.WR) || !hasEdge(a.Graph, 1, 2, graph.WR) {
		t.Error("missing wr edges")
	}
	// ww: T1 directly overwrote the deposit's versions.
	if !hasEdge(a.Graph, 0, 1, graph.WW) {
		t.Error("missing ww edge deposit -> transfer")
	}
}

func TestTotalMismatchAndReadSkew(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		deposit(0),
		op.Txn(1, 1, op.OK,
			op.ReadReg("a", 100), op.ReadReg("b", 100),
			op.Write("a", 95), op.Write("b", 105)),
		// Torn observation: a after the transfer, b before it.
		op.Txn(2, 2, op.OK, op.ReadReg("a", 95), op.ReadReg("b", 100)),
	)
	if !hasType(a, anomaly.TotalMismatch) {
		t.Fatalf("no total-mismatch in %v", a.Anomalies)
	}
	// The torn read also anti-depends on the transfer that overwrote
	// b=100 while depending on its write of a=95: a G-single seed.
	if !hasEdge(a.Graph, 2, 1, graph.RW) || !hasEdge(a.Graph, 1, 2, graph.WR) {
		t.Error("missing rw/wr witness edges for the torn read")
	}
}

func TestNegativeBalance(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		deposit(0),
		op.Txn(1, 1, op.OK,
			op.ReadReg("a", 100), op.ReadReg("b", 100),
			op.Write("a", -3), op.Write("b", 203)),
	)
	if !hasType(a, anomaly.NegativeBalance) {
		t.Fatalf("no negative-balance in %v", a.Anomalies)
	}
}

func TestGarbageBalance(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		deposit(0),
		op.Txn(1, 1, op.OK, op.ReadReg("a", 42), op.ReadReg("b", 100)),
	)
	if !hasType(a, anomaly.GarbageRead) {
		t.Fatalf("no garbage-read in %v", a.Anomalies)
	}
}

func TestInternalInconsistency(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		deposit(0),
		op.Txn(1, 1, op.OK, op.ReadReg("a", 100), op.ReadReg("a", 95)),
	)
	if !hasType(a, anomaly.Internal) {
		t.Fatalf("no internal anomaly in %v", a.Anomalies)
	}
}

func TestBankTotalOverride(t *testing.T) {
	opts := workload.DefaultOpts()
	opts.BankTotal = 200
	// No opening deposit in the history; the invariant comes from opts.
	a := analyze(t, opts,
		op.Txn(0, 0, op.OK, op.Write("a", 150), op.Write("b", 40), op.ReadReg("a", 150)),
		op.Txn(1, 1, op.OK, op.ReadReg("a", 150), op.ReadReg("b", 40)),
	)
	if !a.TotalKnown || a.Total != 200 {
		t.Fatalf("total = %d known=%v, want 200 from opts", a.Total, a.TotalKnown)
	}
	if !hasType(a, anomaly.TotalMismatch) {
		t.Fatalf("no total-mismatch in %v", a.Anomalies)
	}
}

// TestDuplicateBalancesStayQuiet: repeated balance values are normal in
// bank histories (a random walk revisits values); they must disable
// inference for those versions, not raise duplicate-write anomalies.
func TestDuplicateBalancesStayQuiet(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		deposit(0),
		// a: 100 -> 95 -> 100 — balance 100 written twice overall.
		op.Txn(1, 1, op.OK,
			op.ReadReg("a", 100), op.ReadReg("b", 100),
			op.Write("a", 95), op.Write("b", 105)),
		op.Txn(2, 1, op.OK,
			op.ReadReg("b", 105), op.ReadReg("a", 95),
			op.Write("b", 100), op.Write("a", 100)),
		op.Txn(3, 2, op.OK, op.ReadReg("a", 100), op.ReadReg("b", 100)),
	)
	if hasType(a, anomaly.DuplicateAppends) {
		t.Fatalf("duplicate balances reported as anomalies: %v", a.Anomalies)
	}
	for _, an := range a.Anomalies {
		t.Fatalf("unexpected anomaly %v", an)
	}
}

// TestFailedTransfersIgnored: a failed transfer's write mops carry
// unresolved deltas; they must not be indexed as balances.
func TestFailedTransfersIgnored(t *testing.T) {
	a := analyze(t, workload.DefaultOpts(),
		deposit(0),
		// A failed transfer whose template delta (+3) collides with a
		// plausible balance value.
		op.Txn(1, 1, op.Fail, op.Read("a"), op.Read("b"), op.Write("a", -3), op.Write("b", 3)),
		op.Txn(2, 2, op.OK, op.ReadReg("a", 100), op.ReadReg("b", 100)),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("failed transfer leaked into analysis: %v", a.Anomalies)
	}
}

// TestExplainerRendersBankCycle: a lost-update pair produces a cycle the
// explainer can justify with balance witnesses.
func TestExplainerRendersBankCycle(t *testing.T) {
	an := analyze(t, workload.DefaultOpts(),
		deposit(0),
		// Two transfers both resolve against the deposit's a=100: the
		// second erases the first (lost update).
		op.Txn(1, 1, op.OK,
			op.ReadReg("a", 100), op.ReadReg("b", 100),
			op.Write("a", 95), op.Write("b", 105)),
		op.Txn(2, 2, op.OK,
			op.ReadReg("a", 100), op.ReadReg("b", 105),
			op.Write("a", 97), op.Write("b", 108)),
	)
	// T1 read a=100 which T2 overwrote, and vice versa: rw both ways.
	if !hasEdge(an.Graph, 1, 2, graph.RW) || !hasEdge(an.Graph, 2, 1, graph.RW) {
		t.Fatalf("missing rw edges for the lost update")
	}
	if len(an.VersionOrder("a")) == 0 {
		t.Fatal("no version edges recorded for account a")
	}
	expl := &explain.Explainer{Ops: an.Ops, Keys: an.Keys, RegOrders: an.VersionOrders}
	text := expl.Cycle(graph.Cycle{Steps: []graph.Step{
		{From: 1, To: 2, Via: graph.RW},
		{From: 2, To: 1, Via: graph.RW},
	}})
	if !strings.Contains(text, "overwrote") && !strings.Contains(text, "wrote") {
		t.Errorf("explanation lacks balance witness:\n%s", text)
	}
}
