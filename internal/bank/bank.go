// Package bank implements the checker's fifth workload: transfer
// transactions over a fixed set of accounts whose balances must always
// sum to an invariant total — Jepsen's classic self-checking workload,
// here fed through the same dependency-graph/cycle-search core as every
// other analyzer (the pluggability argument of the paper's §3 made
// concrete).
//
// A bank history interleaves two transaction shapes:
//
//	transfer: r(from, v), r(to, u), w(from, v-amt), w(to, u+amt)
//	read-all: r(a0, v0), r(a1, v1), ..., r(an, vn)
//
// Balances are register values, so inference is register-style — but
// balances, unlike the unique arguments of the other workloads, repeat.
// A repeated value is unrecoverable (no unique writer), so the analyzer
// gates every dependency edge on value uniqueness instead of reporting
// duplicate-write anomalies the way the rw-register analyzer does:
//
//   - wr: a committed read of balance v depends on v's unique writer.
//   - ww: a transfer that read v and wrote v' directly overwrote
//     version v, so it depends on v's unique writer.
//   - rw: every other committed reader of v anti-depends on the
//     transfer that overwrote v.
//
// The overwrite relation is the writes-follow-reads rule applied
// per-transaction: no global version order is built, because balance
// values legitimately recur (a balance random-walk revisits values),
// which would make any value-keyed version graph cyclic on correct
// histories.
//
// On top of the graph, two invariant checks make the workload
// self-checking even where inference is blind: every committed
// observation of all accounts must sum to the invariant total
// (TotalMismatch), and no balance may ever be negative
// (NegativeBalance). The account set and total are recovered from the
// history itself — the opening deposit the runner records as its first
// committed transaction — or supplied via Opts.BankTotal.
//
// Failed transactions are ignored entirely: a failed transfer's write
// mops carry unresolved deltas, not balances, so indexing them would
// fabricate values. The cost is that bank histories cannot witness G1a.
package bank

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/workload"
)

// nilVer stands in for the initial (nil) version of an account.
const nilVer = math.MinInt64

// Analysis is the result of bank dependency inference.
type Analysis struct {
	// Graph holds the inferred ww, wr, and rw transaction dependencies.
	Graph *graph.Graph
	// Anomalies are the non-cycle anomalies found during inference.
	Anomalies []anomaly.Anomaly
	// Keys is the history's key interner; VersionOrders is indexed by
	// its KeyIDs.
	Keys *history.Interner
	// VersionOrders holds, per account KeyID, the direct balance-version
	// edges observed through overwrites, in explain.RegOrders format
	// ("nil" encodes the initial version).
	VersionOrders [][][2]string
	// Ops indexes analyzed completion ops by index.
	Ops map[int]op.Op
	// Accounts is the recovered account set, sorted.
	Accounts []string
	// Total is the invariant total balance; valid when TotalKnown.
	Total      int
	TotalKnown bool
}

// VersionOrder returns the direct version edges observed for account
// key, or nil.
func (a *Analysis) VersionOrder(key string) [][2]string {
	id, ok := a.Keys.ID(key)
	if !ok || int(id) >= len(a.VersionOrders) {
		return nil
	}
	return a.VersionOrders[id]
}

type verKey struct {
	key history.KeyID
	val int
}

// overwrite is one observed direct version transition: txn read prev
// and then wrote next to the same account.
type overwrite struct {
	prev, next int // prev may be nilVer
	txn        int
}

type analyzer struct {
	opts workload.Opts
	in   *history.Interner

	ops        map[int]op.Op
	oks        []op.Op
	writeCount map[verKey]int   // writes by may-have-committed txns
	writer     map[verKey]int   // unique such writer (writeCount == 1)
	readers    map[verKey][]int // committed readers of (key, val)
	nilReaders [][]int          // committed readers of each key's nil version, by KeyID
	overwrites [][]overwrite    // observed direct version transitions, by KeyID
	accounts   []string
	total      int
	totalKnown bool
	anomalies  []anomaly.Anomaly
}

// kid resolves an interned key (see history.Interner.MustID).
func (a *analyzer) kid(k string) history.KeyID { return a.in.MustID(k) }

// Analyze infers dependencies and checks invariants for a bank history.
// Of the shared options it consumes Parallelism, WritesFollowReads
// (gating overwrite-derived ww/rw edges), and BankTotal.
func Analyze(h *history.History, opts workload.Opts) *Analysis {
	a := &analyzer{
		opts:       opts,
		in:         h.Keys(),
		ops:        map[int]op.Op{},
		writeCount: map[verKey]int{},
		writer:     map[verKey]int{},
		readers:    map[verKey][]int{},
		nilReaders: make([][]int, h.Keys().Len()),
		overwrites: make([][]overwrite, h.Keys().Len()),
	}
	for _, o := range h.Completions() {
		a.ops[o.Index] = o
		if o.Type == op.OK {
			a.oks = append(a.oks, o)
		}
	}
	a.index()
	a.inferInvariant()

	p := opts.Parallelism
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.checkOp(a.oks[i])
	}))

	g := graph.New()
	for _, o := range a.oks {
		g.Ensure(o.Index)
	}
	keys := a.keys()
	type keyResult struct {
		verEdges [][2]string
		edges    []graph.Edge
	}
	perKey := par.Map(p, len(keys), func(i int) keyResult {
		k := keys[i]
		verEdges, edges := a.keyEdges(k)
		return keyResult{verEdges: verEdges, edges: edges}
	})
	orders := make([][][2]string, a.in.Len())
	for i, k := range keys {
		if len(perKey[i].verEdges) > 0 {
			orders[k] = perKey[i].verEdges
		}
		g.AddEdges(perKey[i].edges)
	}
	a.emitWR(g)

	return &Analysis{
		Graph:         g,
		Anomalies:     a.anomalies,
		Keys:          a.in,
		VersionOrders: orders,
		Ops:           a.ops,
		Accounts:      a.accounts,
		Total:         a.total,
		TotalKnown:    a.totalKnown,
	}
}

func (a *analyzer) collect(groups [][]anomaly.Anomaly) {
	a.anomalies = anomaly.AppendGroups(a.anomalies, groups)
}

// index builds the writer, reader, and overwrite indices. Only ops that
// may have committed contribute writes; only committed ops contribute
// reads. Failed ops are skipped entirely (their write mops carry
// unresolved deltas).
func (a *analyzer) index() {
	idxs := make([]int, 0, len(a.ops))
	for i := range a.ops {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		o := a.ops[i]
		if !o.MayHaveCommitted() {
			continue
		}
		// cur tracks the last balance this transaction knows per key —
		// the writes-follow-reads state machine.
		cur := map[history.KeyID]int{}
		have := map[history.KeyID]bool{}
		for _, m := range o.Mops {
			k := a.kid(m.Key)
			switch m.F {
			case op.FWrite:
				vk := verKey{k, m.Arg}
				a.writeCount[vk]++
				if a.writeCount[vk] == 1 {
					a.writer[vk] = o.Index
				} else {
					delete(a.writer, vk)
				}
				if have[k] && cur[k] != m.Arg {
					a.overwrites[k] = append(a.overwrites[k],
						overwrite{prev: cur[k], next: m.Arg, txn: o.Index})
				}
				cur[k], have[k] = m.Arg, true
			case op.FRead:
				if !m.RegKnown {
					continue
				}
				v := nilVer
				if !m.RegNil {
					v = m.Reg
					if o.Type == op.OK {
						a.readers[verKey{k, m.Reg}] = append(a.readers[verKey{k, m.Reg}], o.Index)
					}
				} else if o.Type == op.OK {
					a.nilReaders[k] = append(a.nilReaders[k], o.Index)
				}
				cur[k], have[k] = v, true
			}
		}
	}
}

// inferInvariant recovers the account set and the invariant total:
// from Opts.BankTotal when set, otherwise from the opening deposit —
// the first committed transaction consisting solely of writes to two or
// more distinct accounts. Without either, total checks are skipped and
// the account set falls back to every key observed.
func (a *analyzer) inferInvariant() {
	set := map[string]bool{}
	for _, o := range a.ops {
		for _, m := range o.Mops {
			set[m.Key] = true
		}
	}
	allKeys := make([]string, 0, len(set))
	for k := range set {
		allKeys = append(allKeys, k)
	}
	sort.Strings(allKeys)

	if a.opts.BankTotal > 0 {
		a.accounts, a.total, a.totalKnown = allKeys, a.opts.BankTotal, true
		return
	}
	for _, o := range a.oks {
		if len(o.Mops) < 2 {
			continue
		}
		deposit := true
		seen := map[string]bool{}
		sum := 0
		for _, m := range o.Mops {
			if m.F != op.FWrite || m.Arg < 0 || seen[m.Key] {
				deposit = false
				break
			}
			seen[m.Key] = true
			sum += m.Arg
		}
		if !deposit {
			continue
		}
		accounts := make([]string, 0, len(seen))
		for k := range seen {
			accounts = append(accounts, k)
		}
		sort.Strings(accounts)
		a.accounts, a.total, a.totalKnown = accounts, sum, true
		return
	}
	a.accounts = allKeys
}

// checkOp runs the per-transaction checks on one committed op: internal
// register consistency, negative balances, garbage balances, and the
// total invariant.
func (a *analyzer) checkOp(o op.Op) []anomaly.Anomaly {
	var out []anomaly.Anomaly

	// Internal consistency: within the transaction, a read must agree
	// with the value its own prior mops established.
	type state struct {
		known bool
		nil_  bool
		val   int
	}
	views := map[string]*state{}
	view := func(k string) *state {
		s, ok := views[k]
		if !ok {
			s = &state{}
			views[k] = s
		}
		return s
	}
	firstRead := map[string]int{}
	readAll := true
	for _, m := range o.Mops {
		switch m.F {
		case op.FWrite:
			if m.Arg < 0 {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.NegativeBalance,
					Ops:  []op.Op{o},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s wrote balance %d to account %s; balances must never be negative",
						o.Name(), m.Arg, m.Key),
				})
			}
			s := view(m.Key)
			s.known, s.nil_, s.val = true, false, m.Arg
		case op.FRead:
			if !m.RegKnown {
				continue
			}
			if !m.RegNil && m.Reg < 0 {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.NegativeBalance,
					Ops:  []op.Op{o},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s read balance %d on account %s; balances must never be negative",
						o.Name(), m.Reg, m.Key),
				})
			}
			if !m.RegNil && a.writeCount[verKey{a.kid(m.Key), m.Reg}] == 0 {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.GarbageRead,
					Ops:  []op.Op{o},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s read balance %d on account %s, but no transaction that may have committed ever wrote that balance",
						o.Name(), m.Reg, m.Key),
				})
			}
			s := view(m.Key)
			if s.known && (s.nil_ != m.RegNil || (!s.nil_ && s.val != m.Reg)) {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.Internal,
					Ops:  []op.Op{o},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s read account %s = %s, but its own prior operations imply the balance must be %s: an internal inconsistency",
						o.Name(), m.Key, balString(m.RegNil, m.Reg), balString(s.nil_, s.val)),
				})
			}
			s.known, s.nil_, s.val = true, m.RegNil, m.Reg
			if _, seen := firstRead[m.Key]; !seen {
				v := 0
				if !m.RegNil {
					v = m.Reg
				}
				firstRead[m.Key] = v
			}
		}
	}

	// Total invariant: an op whose reads cover every account observed a
	// full snapshot; its balances must sum to the invariant total.
	if a.totalKnown && len(a.accounts) > 0 {
		sum := 0
		for _, k := range a.accounts {
			v, ok := firstRead[k]
			if !ok {
				readAll = false
				break
			}
			sum += v
		}
		if readAll && sum != a.total {
			out = append(out, anomaly.Anomaly{
				Type: anomaly.TotalMismatch,
				Ops:  []op.Op{o},
				Explanation: fmt.Sprintf(
					"%s read every account and the balances sum to %d, not the invariant total %d: the observation is not a snapshot of any serial transfer order",
					o.Name(), sum, a.total),
			})
		}
	}
	return out
}

// keyEdges explodes account k's observed overwrites into ww and rw
// dependencies, gated on recoverability and certainty: the overwritten
// balance must have a unique may-have-committed writer (or be the
// initial version), and the overwriting transaction must have committed
// in every interpretation — either it returned ok, or some committed
// read observed the balance it installed (a unique write that was read
// must have happened). Without that gate, an indeterminate transfer
// whose commit actually failed would collect anti-dependency edges that
// hold in no interpretation, seeding false cycles. It also returns the
// version edges for explanations.
func (a *analyzer) keyEdges(k history.KeyID) ([][2]string, []graph.Edge) {
	var verEdges [][2]string
	var deps []graph.Edge
	seenVer := map[[2]string]bool{}
	for _, ow := range a.overwrites[k] {
		ve := [2]string{balName(ow.prev), balName(ow.next)}
		if !seenVer[ve] {
			seenVer[ve] = true
			verEdges = append(verEdges, ve)
		}
		if !a.opts.WritesFollowReads {
			continue
		}
		if !a.provenCommitted(k, ow) {
			continue
		}
		// ww: the overwriter directly succeeds prev's unique writer.
		if ow.prev != nilVer {
			w, ok := a.writer[verKey{k, ow.prev}]
			if !ok {
				// prev was written more than once (or never): which
				// instance this transfer overwrote is unrecoverable, so
				// neither its writer nor its readers can be linked.
				continue
			}
			if w != ow.txn {
				deps = append(deps, graph.Edge{From: w, To: ow.txn, Kind: graph.WW})
			}
		}
		// rw: every other committed reader of prev anti-depends on the
		// transaction that overwrote it.
		var rs []int
		if ow.prev == nilVer {
			rs = a.nilReaders[k]
		} else {
			rs = a.readers[verKey{k, ow.prev}]
		}
		for _, r := range rs {
			if r != ow.txn {
				deps = append(deps, graph.Edge{From: r, To: ow.txn, Kind: graph.RW})
			}
		}
	}
	return verEdges, deps
}

// provenCommitted reports whether the overwriting transaction is known
// to have committed in every interpretation: it returned ok, or it is
// the unique writer of the installed balance and a committed
// transaction read that balance.
func (a *analyzer) provenCommitted(k history.KeyID, ow overwrite) bool {
	if a.ops[ow.txn].Type == op.OK {
		return true
	}
	vk := verKey{k, ow.next}
	w, unique := a.writer[vk]
	return unique && w == ow.txn && len(a.readers[vk]) > 0
}

// emitWR adds write-read dependencies: a committed reader of balance v
// depends on v's unique writer.
func (a *analyzer) emitWR(g *graph.Graph) {
	vks := make([]verKey, 0, len(a.readers))
	for vk := range a.readers {
		vks = append(vks, vk)
	}
	sort.Slice(vks, func(i, j int) bool {
		if vks[i].key != vks[j].key {
			return a.in.Less(vks[i].key, vks[j].key)
		}
		return vks[i].val < vks[j].val
	})
	for _, vk := range vks {
		w, ok := a.writer[vk]
		if !ok {
			continue
		}
		for _, r := range a.readers[vk] {
			if r != w {
				g.AddEdge(w, r, graph.WR)
			}
		}
	}
}

// keys returns every account that contributed an index entry, sorted
// by name.
func (a *analyzer) keys() []history.KeyID {
	seen := make([]bool, a.in.Len())
	for vk := range a.writeCount {
		seen[vk.key] = true
	}
	for vk := range a.readers {
		seen[vk.key] = true
	}
	for k := range a.nilReaders {
		if len(a.nilReaders[k]) > 0 {
			seen[k] = true
		}
	}
	for k := range a.overwrites {
		if len(a.overwrites[k]) > 0 {
			seen[k] = true
		}
	}
	out := make([]history.KeyID, 0, len(seen))
	for k, ok := range seen {
		if ok {
			out = append(out, history.KeyID(k))
		}
	}
	a.in.SortKeyIDs(out)
	return out
}

func balString(isNil bool, v int) string {
	if isNil {
		return "nil"
	}
	return fmt.Sprintf("%d", v)
}

func balName(v int) string {
	if v == nilVer {
		return "nil"
	}
	return fmt.Sprintf("%d", v)
}
