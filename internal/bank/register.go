package bank

import (
	"repro/internal/explain"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/workload"
)

func init() {
	workload.Register(workload.Info{
		Name:          workload.Bank,
		RegisterReads: true,
		Gen:           gen.Bank,
		DB:            memdb.WorkloadBank,
		Analyzer: workload.AnalyzerFunc(func(h *history.History, opts workload.Opts) workload.Analysis {
			an := Analyze(h, opts)
			return workload.Analysis{
				Graph:     an.Graph,
				Anomalies: an.Anomalies,
				Explainer: &explain.Explainer{Ops: an.Ops, Keys: an.Keys, RegOrders: an.VersionOrders},
			}
		}),
	})
}
