package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testMeta(id string, seq int) Meta {
	return Meta{
		ID: id, Seq: seq,
		Workload: "list-append", Model: "serializable",
		Parallelism: 1, CreatedAt: time.Unix(1700000000, 0).UTC(),
	}
}

// write creates a journal with the given chunks and closes it.
func write(t *testing.T, dir, id string, seq int, chunks ...[]byte) string {
	t.Helper()
	j, err := Create(dir, Options{Mode: SyncAlways}, testMeta(id, seq))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := j.AppendChunk(FormatJSON, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return j.Path()
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	chunks := [][]byte{[]byte("line one\n"), []byte("line two\nline three\n"), {}}
	path := write(t, dir, "j7", 7, chunks...)

	r, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta != testMeta("j7", 7) {
		t.Fatalf("meta = %+v", r.Meta)
	}
	if r.Torn != 0 {
		t.Fatalf("clean journal reports %d torn bytes", r.Torn)
	}
	if len(r.Chunks) != len(chunks) {
		t.Fatalf("replayed %d chunks, want %d", len(r.Chunks), len(chunks))
	}
	for i, c := range r.Chunks {
		if c.Format != FormatJSON || !bytes.Equal(c.Body, chunks[i]) {
			t.Fatalf("chunk %d = %q (format %c), want %q", i, c.Body, c.Format, chunks[i])
		}
	}
}

func TestBinaryFormatByte(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, Options{Mode: SyncNone}, testMeta("j1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendChunk(FormatBinary, []byte{0xEB, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	r, err := ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Chunks) != 1 || r.Chunks[0].Format != FormatBinary {
		t.Fatalf("chunks = %+v", r.Chunks)
	}
}

// TestTornTail: every truncation point inside the final record drops
// exactly that record, keeps every earlier one, and OpenAppend resumes
// at the frame boundary.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "j3", 3, []byte("first\n"), []byte("second\n"))
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := clean.valid - int64(len("second\n")+3) // len prefix + kind + format

	for cut := lastStart + 1; cut < int64(len(whole)); cut++ {
		p := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := ReadFile(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(r.Chunks) != 1 || string(r.Chunks[0].Body) != "first\n" {
			t.Fatalf("cut %d: chunks %+v", cut, r.Chunks)
		}
		if r.Torn != cut-lastStart {
			t.Fatalf("cut %d: torn %d, want %d", cut, r.Torn, cut-lastStart)
		}

		// Appending after replay truncates the tear and lands the new
		// record on the boundary: a re-read sees both chunks intact.
		j, err := r.OpenAppend(Options{Mode: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.AppendChunk(FormatJSON, []byte("second again\n")); err != nil {
			t.Fatal(err)
		}
		j.Close()
		again, err := ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Chunks) != 2 || string(again.Chunks[1].Body) != "second again\n" || again.Torn != 0 {
			t.Fatalf("cut %d: after resume-append: %+v", cut, again.Chunks)
		}
	}
}

func TestCorruptHeaderAndMeta(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty":       {},
		"short":       {0xEA, 'l', 'l'},
		"bad-magic":   []byte("not a journal, eight+ bytes"),
		"bad-version": append(append([]byte{}, magic[:]...), 99),
		// A valid header whose first record is not parseable meta.
		"no-meta": append(append(append([]byte{}, magic[:]...), Version), 0x02, recMeta, '{'),
	}
	for name, raw := range cases {
		p := filepath.Join(dir, name+".wal")
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestReplayDir(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "j10", 10, []byte("ten\n"))
	write(t, dir, "j2", 2, []byte("two\n"))
	// A mangled file must be skipped, not abort the replay.
	if err := os.WriteFile(filepath.Join(dir, "junk.wal"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-journal files are ignored outright.
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)

	jobs, skipped, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Meta.ID != "j2" || jobs[1].Meta.ID != "j10" {
		t.Fatalf("jobs = %+v", jobs)
	}
	if len(skipped) != 1 || filepath.Base(skipped[0]) != "junk.wal" {
		t.Fatalf("skipped = %v", skipped)
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, Options{Mode: SyncAlways}, testMeta("j1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(j.Path()); !os.IsNotExist(err) {
		t.Fatalf("journal still on disk: %v", err)
	}
}

func TestSyncModes(t *testing.T) {
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("ParseSyncMode accepted junk")
	}
	for s, want := range map[string]SyncMode{
		"always": SyncAlways, "": SyncAlways,
		"interval": SyncInterval,
		"none":     SyncNone, "never": SyncNone,
	} {
		got, err := ParseSyncMode(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", s, got, err)
		}
	}

	// SyncAlways observes one fsync per append (plus creation and close).
	var syncs int
	j, err := Create(t.TempDir(), Options{
		Mode:    SyncAlways,
		OnFsync: func(time.Duration) { syncs++ },
	}, testMeta("j1", 1))
	if err != nil {
		t.Fatal(err)
	}
	base := syncs
	for i := 0; i < 3; i++ {
		if err := j.AppendChunk(FormatJSON, []byte("x\n")); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != base+3 {
		t.Errorf("SyncAlways: %d fsyncs for 3 appends", syncs-base)
	}
	j.Close()

	// SyncInterval with a huge interval never fsyncs mid-stream, but
	// Close still flushes.
	syncs = 0
	j2, err := Create(t.TempDir(), Options{
		Mode: SyncInterval, Interval: time.Hour,
		OnFsync: func(time.Duration) { syncs++ },
	}, testMeta("j2", 2))
	if err != nil {
		t.Fatal(err)
	}
	mid := syncs
	for i := 0; i < 5; i++ {
		if err := j2.AppendChunk(FormatJSON, []byte("x\n")); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != mid {
		t.Errorf("SyncInterval(1h): %d mid-stream fsyncs", syncs-mid)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs != mid+1 {
		t.Errorf("Close under SyncInterval did not fsync")
	}
}

func TestSizeTracksBytes(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, Options{Mode: SyncNone}, testMeta("j5", 5))
	if err != nil {
		t.Fatal(err)
	}
	j.AppendChunk(FormatJSON, bytes.Repeat([]byte("y"), 1000))
	j.Close()
	fi, err := os.Stat(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != fi.Size() {
		t.Fatalf("Size() = %d, file is %d", j.Size(), fi.Size())
	}
}
