// Package wal persists the checking service's jobs as per-job
// append-only journals, so a killed elled resumes its in-flight streams
// on restart instead of 404-ing every client. One job owns one file
// under the WAL directory — <id>.wal — holding the job's create
// parameters followed by every accepted chunk, byte for byte as it was
// uploaded. The journal is written before the job's session sees the
// chunk: what the client got a 200 for is what replay re-feeds.
//
// The framing is ellebin's (internal/binhist, docs/FORMATS.md): an
// 8-byte magic header, then uvarint length-prefixed records, each
// payload led by a kind byte —
//
//	header: 8 bytes  EA 6C 6C 65 77 61 6C vv  (0xEA "llewal" + version)
//	meta  (0x01): JSON-encoded Meta — the job's create parameters
//	chunk (0x02): one format byte ('j' JSON lines | 'b' ellebin),
//	              then the chunk body exactly as uploaded
//
// As in ellebin, the framing is the integrity story: a journal cut off
// mid-record by a crash — a torn trailing record — parses cleanly up to
// the last valid frame, and replay truncates the tear so appends resume
// at a record boundary. A client that never heard the 200 for the torn
// chunk re-sends it; the resume protocol in docs/SERVICE.md is built on
// exactly this property.
//
// Durability is configurable (SyncMode): fsync on every append, fsync
// at most once per interval, or never (the OS flushes). Whatever the
// mode, replay never yields a half-chunk — the length prefix sees to
// that — so a weaker mode trades *how many* acked chunks a crash can
// lose, never whether the survivors are intact.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Version is the journal format version, the header's final byte.
const Version = 1

// magic tags a journal file. The leading 0xEA cannot begin JSON and is
// distinct from ellebin's 0xEB, so the three formats never mis-identify.
var magic = [7]byte{0xEA, 'l', 'l', 'e', 'w', 'a', 'l'}

const headerLen = 8

// Record kinds.
const (
	recMeta  = 0x01 // JSON-encoded Meta
	recChunk = 0x02 // format byte + raw chunk body
)

// Chunk format bytes, matching the two upload formats elled accepts.
const (
	FormatJSON   = byte('j') // JSON lines
	FormatBinary = byte('b') // ellebin
)

// maxRecordBytes bounds one record's payload so a corrupt length prefix
// cannot demand an absurd allocation. Chunk bodies are capped far lower
// by the service's MaxChunkBytes.
const maxRecordBytes = 1 << 30

// ErrCorrupt tags journals whose header or meta record is unreadable —
// the file is not (or no longer) a journal this package understands.
// Torn trailing records are NOT corruption; they are truncated silently.
var ErrCorrupt = errors.New("corrupt wal journal")

// Meta is a job's create-time identity and parameters, journaled as the
// first record so replay can reconstruct the job before re-feeding its
// chunks.
type Meta struct {
	// ID is the job's public identifier; the journal file is named
	// after it. Seq is the numeric suffix the service allocates IDs
	// from; replay seeds the allocator past the highest survivor.
	ID  string `json:"id"`
	Seq int    `json:"seq"`

	Workload     string    `json:"workload"`
	Model        string    `json:"model"`
	Parallelism  int       `json:"parallelism,omitempty"`
	MemoryBudget int       `json:"memory_budget,omitempty"`
	CreatedAt    time.Time `json:"created_at"`
}

// SyncMode selects when a journal fsyncs.
type SyncMode int

const (
	// SyncAlways fsyncs after every append: an acked chunk survives any
	// crash. The default, and the mode the resume acceptance test runs.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs at most once per interval, piggybacked on
	// appends (and always on Close): a crash loses at most the last
	// interval's acked chunks, which clients re-send via the resume
	// protocol.
	SyncInterval
	// SyncNone never fsyncs; the OS flushes when it pleases. Fastest,
	// and still crash-consistent — replay just sees fewer chunks.
	SyncNone
)

// ParseSyncMode maps the -wal-sync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none", "never":
		return SyncNone, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown sync mode %q (always, interval, none)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return "always"
}

// Options configures a Journal's durability and instrumentation.
type Options struct {
	Mode SyncMode
	// Interval bounds how stale the file can be under SyncInterval.
	// Zero means 100ms.
	Interval time.Duration
	// OnFsync, when set, observes each fsync's wall-clock latency —
	// the service's wal_fsync_seconds histogram.
	OnFsync func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// A Journal is one job's open write handle. Methods are safe for a
// single writer; the service serializes appends per job anyway.
type Journal struct {
	path     string
	f        *os.File
	opts     Options
	size     int64
	lastSync time.Time
	buf      []byte // record scratch, reused across appends
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the bytes written so far (including any replayed prefix
// when the journal was reopened for append).
func (j *Journal) Size() int64 { return j.size }

// Create opens a fresh journal for meta under dir, writing the header
// and meta record. The directory entry is fsynced so the journal
// survives a crash immediately after creation.
func Create(dir string, opts Options, meta Meta) (*Journal, error) {
	path := filepath.Join(dir, meta.ID+".wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, opts: opts.withDefaults()}
	mj, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	hdr := append(append([]byte{}, magic[:]...), Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	j.size = int64(len(hdr))
	if err := j.appendRecord(recMeta, 0, mj); err != nil {
		f.Close()
		return nil, err
	}
	if opts.Mode != SyncNone {
		if err := j.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		syncDir(dir)
	}
	return j, nil
}

// AppendChunk journals one accepted chunk body in its upload format,
// fsyncing per the journal's mode. It must be called before the chunk
// is fed to the job's session: the durability contract is "acked ⇒
// journaled", and feeding first would invert it.
func (j *Journal) AppendChunk(format byte, body []byte) error {
	if err := j.appendRecord(recChunk, format, body); err != nil {
		return err
	}
	switch j.opts.Mode {
	case SyncAlways:
		return j.Sync()
	case SyncInterval:
		if time.Since(j.lastSync) >= j.opts.Interval {
			return j.Sync()
		}
	}
	return nil
}

// appendRecord writes one length-prefixed record. format is prepended
// to the payload for chunk records only (recMeta passes 0).
func (j *Journal) appendRecord(kind, format byte, payload []byte) error {
	n := 1 + len(payload)
	if kind == recChunk {
		n++
	}
	b := j.buf[:0]
	b = binary.AppendUvarint(b, uint64(n))
	b = append(b, kind)
	if kind == recChunk {
		b = append(b, format)
	}
	b = append(b, payload...)
	j.buf = b[:0]
	w, err := j.f.Write(b)
	j.size += int64(w)
	return err
}

// Sync fsyncs the journal, observing the latency when instrumented.
func (j *Journal) Sync() error {
	start := time.Now()
	err := j.f.Sync()
	j.lastSync = time.Now()
	if j.opts.OnFsync != nil {
		j.opts.OnFsync(j.lastSync.Sub(start))
	}
	return err
}

// Close fsyncs (except under SyncNone) and closes the file. The journal
// stays on disk for replay.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	var err error
	if j.opts.Mode != SyncNone {
		err = j.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Remove closes the journal and deletes its file — the job was
// cancelled, reaped, or finished, and has nothing left to resume.
func (j *Journal) Remove() error {
	j.Close()
	err := os.Remove(j.path)
	syncDir(filepath.Dir(j.path))
	return err
}

// syncDir fsyncs a directory so entry creation/removal is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Chunk is one replayed chunk record: the body exactly as the client
// uploaded it, plus its format byte.
type Chunk struct {
	Format byte
	Body   []byte
}

// Replayed is one journal parsed back from disk: the job's meta, every
// intact chunk, and how many trailing bytes were torn off mid-record by
// the crash (0 for a cleanly synced journal).
type Replayed struct {
	Path   string
	Meta   Meta
	Chunks []Chunk
	// Torn is the length of the invalid tail past the last valid frame.
	// ReadFile does not modify the file; OpenAppend truncates the tear
	// before appending resumes.
	Torn int64

	valid int64 // file offset of the last valid frame's end
}

// ReadFile parses one journal. Torn trailing bytes — a record cut off
// mid-write — are dropped, not an error: the final intact frame ends
// the replay. A file whose header or meta record is unreadable returns
// ErrCorrupt: it is not a resumable journal at all.
func ReadFile(path string) (*Replayed, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerLen {
		return nil, fmt.Errorf("wal: %w: %s: short header", ErrCorrupt, path)
	}
	for i := range magic {
		if raw[i] != magic[i] {
			return nil, fmt.Errorf("wal: %w: %s: bad magic", ErrCorrupt, path)
		}
	}
	if raw[7] != Version {
		return nil, fmt.Errorf("wal: %w: %s: unsupported version %d", ErrCorrupt, path, raw[7])
	}
	r := &Replayed{Path: path, valid: headerLen}
	pos := int64(headerLen)
	sawMeta := false
	for {
		n, w := binary.Uvarint(raw[pos:])
		if w <= 0 || n == 0 || n > maxRecordBytes || pos+int64(w)+int64(n) > int64(len(raw)) {
			break // torn (or absent) trailing record: stop at the last valid frame
		}
		payload := raw[pos+int64(w) : pos+int64(w)+int64(n)]
		switch payload[0] {
		case recMeta:
			var m Meta
			if err := json.Unmarshal(payload[1:], &m); err != nil || m.ID == "" {
				if !sawMeta {
					return nil, fmt.Errorf("wal: %w: %s: unreadable meta record", ErrCorrupt, path)
				}
				return r.tear(int64(len(raw))), nil
			}
			r.Meta = m
			sawMeta = true
		case recChunk:
			if n < 2 || (payload[1] != FormatJSON && payload[1] != FormatBinary) {
				return r.tear(int64(len(raw))), nil
			}
			r.Chunks = append(r.Chunks, Chunk{Format: payload[1], Body: payload[2:]})
		default:
			// An unknown kind means the frame stream has derailed; keep
			// the valid prefix.
			return r.tear(int64(len(raw))), nil
		}
		pos += int64(w) + int64(n)
		r.valid = pos
	}
	if !sawMeta {
		return nil, fmt.Errorf("wal: %w: %s: no meta record", ErrCorrupt, path)
	}
	return r.tear(int64(len(raw))), nil
}

func (r *Replayed) tear(fileLen int64) *Replayed {
	r.Torn = fileLen - r.valid
	return r
}

// OpenAppend reopens a replayed journal for appending: the torn tail
// (if any) is truncated so the next record lands on a frame boundary,
// and the returned Journal continues where the crash left off.
func (r *Replayed) OpenAppend(opts Options) (*Journal, error) {
	if r.Torn > 0 {
		if err := os.Truncate(r.Path, r.valid); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(r.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{path: r.Path, f: f, opts: opts.withDefaults(), size: r.valid}, nil
}

// ReplayDir parses every *.wal journal under dir, in job-sequence
// order. Journals that are not readable at all (ErrCorrupt, I/O) are
// returned in skipped by path rather than aborting the replay: one
// mangled file must not take down every other job's resume.
func ReplayDir(dir string) (jobs []*Replayed, skipped []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		r, err := ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			skipped = append(skipped, filepath.Join(dir, e.Name()))
			continue
		}
		jobs = append(jobs, r)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Meta.Seq != jobs[k].Meta.Seq {
			return jobs[i].Meta.Seq < jobs[k].Meta.Seq
		}
		return jobs[i].Meta.ID < jobs[k].Meta.ID
	})
	return jobs, skipped, nil
}
