package graph

import "sort"

// Incr maintains the strongly connected components of a growing
// dependency graph under append-only edge insertion — the graph half of
// the streaming checker. Instead of re-running Tarjan over the whole
// graph after every chunk, it keeps three structures in lockstep:
//
//   - a union-find partition of the nodes into components,
//   - the condensation (the DAG of components) with adjacency in both
//     directions, and
//   - a topological order of the condensation, maintained with the
//     Pearce-Kelly dynamic topological-sort algorithm.
//
// The order is what bounds the work. An inserted edge a -> b whose
// components already satisfy ord(a) < ord(b) cannot create a cycle and
// costs O(1). Only an order-violating edge triggers searches, and those
// are restricted to the affected region — the components whose order
// lies between b's and a's — after which either the region is locally
// reordered (still acyclic) or the components on the new cycle collapse
// into one. Either way, untouched parts of the graph are never visited.
//
// DirtySCCs drains the components touched since the last call, which is
// exactly the work-list for limited cycle recomputation: the caller
// re-runs the (parallel) cycle searches on the induced subgraph of the
// dirty components only, reusing the same machinery as the batch path.
type Incr struct {
	g    *Graph
	mask KindSet

	parent []int32
	rank   []int32
	ord    []int64 // topological position; meaningful for roots only

	nextOrd int64
	members map[int32][]int32        // root -> member dense ids (only for size >= 2)
	out     map[int32]map[int32]bool // condensation out-edges between roots
	in      map[int32]map[int32]bool // condensation in-edges between roots
	dirty   map[int32]bool           // roots whose components changed since the last drain
}

// NewIncr returns an empty incremental SCC maintainer over edges whose
// kind intersects mask.
func NewIncr(mask KindSet) *Incr {
	return &Incr{
		g:       New(),
		mask:    mask,
		members: map[int32][]int32{},
		out:     map[int32]map[int32]bool{},
		in:      map[int32]map[int32]bool{},
		dirty:   map[int32]bool{},
	}
}

// Graph returns the underlying graph. It grows monotonically: the
// caller may read it (searches, subgraphs) but must add edges through
// Incr so the component index stays consistent.
func (x *Incr) Graph() *Graph { return x.g }

// Ensure adds node n if absent.
func (x *Incr) Ensure(n int) {
	x.ensure(n)
}

func (x *Incr) ensure(n int) int32 {
	id := x.g.Ensure(n)
	for int(id) >= len(x.parent) {
		x.parent = append(x.parent, int32(len(x.parent)))
		x.rank = append(x.rank, 0)
		x.ord = append(x.ord, x.nextOrd)
		x.nextOrd++
	}
	return id
}

func (x *Incr) find(v int32) int32 {
	for x.parent[v] != v {
		x.parent[v] = x.parent[x.parent[v]] // path halving
		v = x.parent[v]
	}
	return v
}

// AddEdges inserts every edge in order.
func (x *Incr) AddEdges(edges []Edge) {
	for _, e := range edges {
		x.AddEdge(e.From, e.To, e.Kind)
	}
}

// AddEdge inserts one edge, updating the component partition. Edges the
// graph already holds are no-ops, so re-feeding a recomputed edge list
// is cheap and idempotent.
func (x *Incr) AddEdge(a, b int, k Kind) {
	ai, bi := x.ensure(a), x.ensure(b)
	if a == b {
		return
	}
	if !x.g.addKindDense(ai, bi, k) {
		return // the graph already held this edge kind
	}
	if !x.mask.Has(k) {
		return
	}
	ra, rb := x.find(ai), x.find(bi)
	if ra == rb {
		// A new edge inside a cyclic component: structure unchanged, but
		// new witnesses may exist.
		x.dirty[ra] = true
		return
	}
	if x.out[ra][rb] {
		return // the condensation already has this edge
	}
	x.link(ra, rb)
	if x.ord[ra] < x.ord[rb] {
		return // topological order undisturbed: no cycle possible
	}
	x.restore(ra, rb)
}

func (x *Incr) link(ra, rb int32) {
	if x.out[ra] == nil {
		x.out[ra] = map[int32]bool{}
	}
	x.out[ra][rb] = true
	if x.in[rb] == nil {
		x.in[rb] = map[int32]bool{}
	}
	x.in[rb][ra] = true
}

// restore repairs the topological order after inserting the
// order-violating condensation edge from -> to (ord[to] < ord[from]),
// following Pearce & Kelly: search forward from "to" and backward from
// "from", both restricted to the affected window of the order; if the
// searches meet, the components on the new cycle collapse into one;
// either way the affected components are reassigned the same order
// slots so every condensation edge points forward again.
func (x *Incr) restore(from, to int32) {
	lb, ub := x.ord[to], x.ord[from]

	// Forward from "to", visiting only components ordered before "from".
	seenF := map[int32]bool{to: true}
	deltaF := []int32{to}
	cycle := false
	stack := []int32{to}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range x.out[c] {
			if nb == from {
				cycle = true
				continue
			}
			if !seenF[nb] && x.ord[nb] < ub {
				seenF[nb] = true
				deltaF = append(deltaF, nb)
				stack = append(stack, nb)
			}
		}
	}
	// Backward from "from", visiting only components ordered after "to".
	seenB := map[int32]bool{from: true}
	deltaB := []int32{from}
	stack = append(stack[:0], from)
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range x.in[c] {
			if !seenB[nb] && x.ord[nb] > lb {
				seenB[nb] = true
				deltaB = append(deltaB, nb)
				stack = append(stack, nb)
			}
		}
	}

	// The affected components' order slots, redistributed below. A
	// component can appear in both searches only when there is a cycle;
	// collect slots from the union.
	var slots []int64
	for c := range seenF {
		slots = append(slots, x.ord[c])
	}
	for c := range seenB {
		if !seenF[c] {
			slots = append(slots, x.ord[c])
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	byOrd := func(list []int32) {
		sort.Slice(list, func(i, j int) bool { return x.ord[list[i]] < x.ord[list[j]] })
	}

	if !cycle {
		// Everything reaching "from" moves before everything reachable
		// from "to", each side keeping its internal order.
		byOrd(deltaB)
		byOrd(deltaF)
		i := 0
		for _, c := range deltaB {
			x.ord[c] = slots[i]
			i++
		}
		for _, c := range deltaF {
			x.ord[c] = slots[i]
			i++
		}
		return
	}

	// A cycle: every component both reachable from "to" and reaching
	// "from" (the searches' intersection, plus the endpoints) collapses.
	inS := map[int32]bool{from: true, to: true}
	for _, c := range deltaF {
		if seenB[c] {
			inS[c] = true
		}
	}
	var bSide, fSide []int32
	for _, c := range deltaB {
		if !inS[c] {
			bSide = append(bSide, c)
		}
	}
	for _, c := range deltaF {
		if !inS[c] {
			fSide = append(fSide, c)
		}
	}
	byOrd(bSide)
	byOrd(fSide)
	roots := make([]int32, 0, len(inS))
	for c := range inS {
		roots = append(roots, c)
	}
	nr := x.merge(roots)
	// Backward side keeps the bottom slots (components only ever move
	// down), forward side the top slots (only ever up) — exactly as in
	// the acyclic reorder — and the merged component takes a slot
	// strictly between the blocks; the >= 2 collapsed components
	// guarantee one exists. Compacting instead would drag forward-side
	// components below unaffected ones.
	i := 0
	for _, c := range bSide {
		x.ord[c] = slots[i]
		i++
	}
	x.ord[nr] = slots[i]
	top := len(slots) - len(fSide)
	for j, c := range fSide {
		x.ord[c] = slots[top+j]
	}
}

// merge collapses the given component roots into one, rewiring the
// condensation and marking the survivor dirty. It returns the survivor.
func (x *Incr) merge(roots []int32) int32 {
	// Pick the highest-rank root as the survivor.
	nr := roots[0]
	for _, r := range roots[1:] {
		if x.rank[r] > x.rank[nr] {
			nr = r
		}
	}
	x.rank[nr]++
	merged := map[int32]bool{}
	for _, r := range roots {
		merged[r] = true
	}
	// Collect members and external adjacency of the merged components.
	var ms []int32
	outs := map[int32]bool{}
	ins := map[int32]bool{}
	for _, r := range roots {
		if mem := x.members[r]; mem != nil {
			ms = append(ms, mem...)
			delete(x.members, r)
		} else {
			ms = append(ms, r)
		}
		for nb := range x.out[r] {
			if !merged[nb] {
				outs[nb] = true
			}
		}
		for nb := range x.in[r] {
			if !merged[nb] {
				ins[nb] = true
			}
		}
		delete(x.out, r)
		delete(x.in, r)
		delete(x.dirty, r)
		x.parent[r] = nr
	}
	x.parent[nr] = nr
	x.members[nr] = ms
	// Rewire neighbors: their edges to any merged root now point at nr.
	for nb := range outs {
		x.link(nr, nb)
		for _, r := range roots {
			if r != nr {
				delete(x.in[nb], r)
			}
		}
	}
	for nb := range ins {
		x.link(nb, nr)
		for _, r := range roots {
			if r != nr {
				delete(x.out[nb], r)
			}
		}
	}
	x.dirty[nr] = true
	return nr
}

// SCCs returns every current component of size >= 2 as sorted node
// slices in sorted order, without touching the dirty set — the full
// partition, for inspection and for differential tests against the
// batch Tarjan.
func (x *Incr) SCCs() [][]int {
	var out [][]int
	for r, mem := range x.members {
		if x.find(r) != r || len(mem) < 2 {
			continue
		}
		scc := make([]int, len(mem))
		for i, m := range mem {
			scc[i] = x.g.nodes[m]
		}
		sort.Ints(scc)
		out = append(out, scc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// DirtySCCs drains and returns the components (of size >= 2, the only
// ones that can contain a cycle) touched since the last call: each as a
// sorted slice of external node ids, the slices sorted by first node.
// This is the work-list for limited cycle recomputation after a chunk
// of edge insertions.
func (x *Incr) DirtySCCs() [][]int {
	if len(x.dirty) == 0 {
		return nil
	}
	var out [][]int
	for r := range x.dirty {
		mem := x.members[r]
		if len(mem) < 2 {
			continue
		}
		scc := make([]int, len(mem))
		for i, m := range mem {
			scc[i] = x.g.nodes[m]
		}
		sort.Ints(scc)
		out = append(out, scc)
	}
	x.dirty = map[int32]bool{}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Subgraph returns the subgraph of g induced by the given nodes,
// preserving every edge kind among them. Nodes absent from g are
// ignored. The streaming checker searches induced subgraphs of dirty
// components: any cycle found there is a cycle of the full graph.
func (g *Graph) Subgraph(nodes []int) *Graph {
	out := New()
	in := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		if g.HasNode(n) {
			in[n] = true
			out.Ensure(n)
		}
	}
	for _, n := range nodes {
		ai, ok := g.ids[n]
		if !ok {
			continue
		}
		for _, e := range g.adj[ai] {
			b := g.nodes[e.to]
			if !in[b] {
				continue
			}
			out.addMask(n, b, e.ks)
		}
	}
	return out
}
