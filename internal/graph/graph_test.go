package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindSet(t *testing.T) {
	s := WW.Mask().Union(RW.Mask())
	if !s.Has(WW) || !s.Has(RW) || s.Has(WR) {
		t.Errorf("KindSet membership wrong: %v", s)
	}
	if s.String() != "ww|rw" {
		t.Errorf("KindSet.String() = %q", s.String())
	}
	if !s.Intersects(RW.Mask()) || s.Intersects(Process.Mask()) {
		t.Error("Intersects wrong")
	}
	kinds := s.Kinds()
	if len(kinds) != 2 || kinds[0] != WW || kinds[1] != RW {
		t.Errorf("Kinds() = %v", kinds)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		WW: "ww", WR: "wr", RW: "rw",
		Process: "process", Realtime: "rt", Version: "version",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestAddEdgeAndLabels(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(1, 2, WR)
	g.AddEdge(2, 3, RW)
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d (parallel kinds should merge)", g.NumEdges())
	}
	if l := g.Label(1, 2); !l.Has(WW) || !l.Has(WR) {
		t.Errorf("Label(1,2) = %v", l)
	}
	if l := g.Label(3, 1); l != 0 {
		t.Errorf("Label(3,1) = %v, want empty", l)
	}
}

func TestSelfEdgesIgnored(t *testing.T) {
	g := New()
	g.AddEdge(1, 1, WW)
	if g.NumEdges() != 0 {
		t.Error("self edges must be ignored")
	}
	if g.NumNodes() != 1 {
		t.Error("self edge should still ensure the node")
	}
}

func TestOutFiltering(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(1, 3, RW)
	var got []int
	g.OutSorted(1, WW.Mask(), func(b int, _ KindSet) { got = append(got, b) })
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Out(ww) = %v", got)
	}
	got = nil
	g.OutSorted(1, KSDep, func(b int, _ KindSet) { got = append(got, b) })
	if len(got) != 2 {
		t.Errorf("Out(all) = %v", got)
	}
	// Unknown node: no callbacks, no panic.
	g.Out(99, KSDep, func(int, KindSet) { t.Error("unexpected callback") })
}

func TestFilter(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 3, RW)
	g.AddEdge(3, 1, WR)
	f := g.Filter(KSWWWR)
	if f.NumEdges() != 2 {
		t.Errorf("filtered edges = %d", f.NumEdges())
	}
	if f.NumNodes() != 3 {
		t.Errorf("filter should keep all nodes, got %d", f.NumNodes())
	}
	if f.Label(2, 3) != 0 {
		t.Error("rw edge should be gone")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.AddEdge(1, 2, WW)
	b := New()
	b.AddEdge(2, 3, Process)
	b.AddEdge(1, 2, RW)
	b.Ensure(9)
	a.Merge(b)
	if !a.Label(1, 2).Has(RW) || !a.Label(1, 2).Has(WW) {
		t.Error("merge should union labels")
	}
	if !a.Label(2, 3).Has(Process) {
		t.Error("merge should carry new edges")
	}
	if !a.HasNode(9) {
		t.Error("merge should carry isolated nodes")
	}
}

func TestSCCsSimple(t *testing.T) {
	g := New()
	// Cycle 1-2-3, plus a tail 3->4.
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 3, WW)
	g.AddEdge(3, 1, WW)
	g.AddEdge(3, 4, WW)
	sccs := g.SCCs(KSWW)
	if len(sccs) != 1 {
		t.Fatalf("SCCs = %v", sccs)
	}
	got := sccs[0]
	sort.Ints(got)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("SCC = %v", got)
	}
}

func TestSCCsRespectMask(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 1, RW) // cycle only if rw edges allowed
	if sccs := g.SCCs(KSWW); len(sccs) != 0 {
		t.Errorf("ww-only SCCs = %v", sccs)
	}
	if sccs := g.SCCs(KSDep); len(sccs) != 1 {
		t.Errorf("full SCCs = %v", sccs)
	}
}

func TestSCCsLargeChainNoOverflow(t *testing.T) {
	// A 200k-node cycle exercises the iterative Tarjan; a recursive
	// implementation would blow the stack.
	g := New()
	const n = 200000
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, WW)
	}
	sccs := g.SCCs(KSWW)
	if len(sccs) != 1 || len(sccs[0]) != n {
		t.Fatalf("giant cycle not found: %d components", len(sccs))
	}
}

func TestFindCyclesWW(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 1, WW)
	g.AddEdge(5, 6, WW) // acyclic part
	cycles := g.FindCycles(KSWW)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	c := cycles[0]
	if len(c.Steps) != 2 {
		t.Errorf("cycle length = %d", len(c.Steps))
	}
	for _, s := range c.Steps {
		if s.Via != WW {
			t.Errorf("step via %v", s.Via)
		}
	}
	// The cycle must be closed.
	if c.Steps[len(c.Steps)-1].To != c.Steps[0].From {
		t.Error("cycle not closed")
	}
}

func TestFindCyclesFindsShortWitness(t *testing.T) {
	g := New()
	// Big cycle 1..5, with a chord making a short cycle 1-2-1.
	for i := 1; i <= 5; i++ {
		g.AddEdge(i, i%5+1, WW)
	}
	g.AddEdge(2, 1, WW)
	cycles := g.FindCycles(KSWW)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	if len(cycles[0].Steps) != 2 {
		t.Errorf("expected the short witness, got %d steps", len(cycles[0].Steps))
	}
}

func TestFindCyclesWithExactlyOne(t *testing.T) {
	g := New()
	// G-single shape: 1 -rw-> 2 -ww-> 1.
	g.AddEdge(1, 2, RW)
	g.AddEdge(2, 1, WW)
	cycles := g.FindCyclesWithExactlyOne(RW, KSWWWR)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	c := cycles[0]
	if c.CountVia(RW) != 1 {
		t.Errorf("rw steps = %d", c.CountVia(RW))
	}
}

func TestFindCyclesWithExactlyOneRejectsTwoRW(t *testing.T) {
	g := New()
	// Write-skew shape: both edges are rw; no cycle uses exactly one.
	g.AddEdge(1, 2, RW)
	g.AddEdge(2, 1, RW)
	if cycles := g.FindCyclesWithExactlyOne(RW, KSWWWR); len(cycles) != 0 {
		t.Errorf("found %d cycles, want 0", len(cycles))
	}
	// But the at-least-one search must find it.
	cycles := g.FindCyclesWithAtLeastOne(RW, KSDep)
	if len(cycles) != 1 {
		t.Fatalf("at-least-one found %d", len(cycles))
	}
	if cycles[0].CountVia(RW) != 2 {
		t.Errorf("rw steps = %d, want 2", cycles[0].CountVia(RW))
	}
}

func TestFindCyclesWithExactlyOnePrefersLongWayRound(t *testing.T) {
	g := New()
	// 1 -rw-> 2 -wr-> 3 -ww-> 1 : exactly one rw in a 3-cycle.
	g.AddEdge(1, 2, RW)
	g.AddEdge(2, 3, WR)
	g.AddEdge(3, 1, WW)
	cycles := g.FindCyclesWithExactlyOne(RW, KSWWWR)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	c := cycles[0]
	if len(c.Steps) != 3 || c.CountVia(RW) != 1 {
		t.Errorf("cycle = %v", c)
	}
}

func TestCycleString(t *testing.T) {
	g := New()
	g.AddEdge(3, 7, RW)
	g.AddEdge(7, 3, WW)
	c := g.FindCyclesWithExactlyOne(RW, KSWW)[0]
	want := "T3 -rw-> T7 -ww-> T3"
	if got := c.String(); got != want {
		t.Errorf("Cycle.String() = %q, want %q", got, want)
	}
}

func TestCycleNodes(t *testing.T) {
	c := Cycle{Steps: []Step{
		{From: 1, To: 2, Via: WW},
		{From: 2, To: 1, Via: WW},
	}}
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 2 {
		t.Errorf("Nodes() = %v", nodes)
	}
}

// TestCycleClosureProperty: every cycle any search returns is genuinely
// closed, uses only permitted kinds, and every step corresponds to a real
// edge of the graph.
func TestCycleClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		g := New()
		n := 2 + rng.Intn(20)
		edges := 1 + rng.Intn(60)
		for i := 0; i < edges; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			k := Kind(rng.Intn(3)) // ww, wr, rw
			g.AddEdge(a, b, k)
		}
		checkCycles := func(cs []Cycle, mask KindSet) {
			for _, c := range cs {
				if len(c.Steps) < 2 {
					t.Fatalf("trial %d: degenerate cycle %v", trial, c)
				}
				for i, s := range c.Steps {
					if !g.Label(s.From, s.To).Has(s.Via) {
						t.Fatalf("trial %d: phantom edge %v", trial, s)
					}
					if !mask.Has(s.Via) {
						t.Fatalf("trial %d: kind %v outside mask %v", trial, s.Via, mask)
					}
					next := c.Steps[(i+1)%len(c.Steps)]
					if s.To != next.From {
						t.Fatalf("trial %d: cycle not closed at step %d", trial, i)
					}
				}
			}
		}
		checkCycles(g.FindCycles(KSWW), KSWW)
		checkCycles(g.FindCycles(KSWWWR), KSWWWR)
		checkCycles(g.FindCycles(KSDep), KSDep)
		for _, c := range g.FindCyclesWithExactlyOne(RW, KSWWWR) {
			if c.CountVia(RW) != 1 {
				t.Fatalf("trial %d: exactly-one returned %d rw steps", trial, c.CountVia(RW))
			}
		}
		checkCycles(g.FindCyclesWithExactlyOne(RW, KSWWWR), KSDep)
		for _, c := range g.FindCyclesWithAtLeastOne(RW, KSDep) {
			if c.CountVia(RW) < 1 {
				t.Fatalf("trial %d: at-least-one returned no rw step", trial)
			}
		}
	}
}

// TestSCCAgainstNaive cross-checks Tarjan against a reachability-based
// SCC computation on small random graphs.
func TestSCCAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g := New()
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			g.Ensure(i)
		}
		for e := 0; e < rng.Intn(30); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), WW)
		}
		want := naiveSCCs(g, n)
		got := map[string]bool{}
		for _, scc := range g.SCCs(KSWW) {
			sort.Ints(scc)
			got[fmtInts(scc)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d sccs, want %d", trial, len(got), len(want))
		}
		for sig := range want {
			if !got[sig] {
				t.Fatalf("trial %d: missing scc %s", trial, sig)
			}
		}
	}
}

func naiveSCCs(g *Graph, n int) map[string]bool {
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		// DFS from i.
		stack := []int{i}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.Out(u, KSWW, func(v int, _ KindSet) {
				if !reach[i][v] {
					reach[i][v] = true
					stack = append(stack, v)
				}
			})
		}
	}
	comps := map[string]bool{}
	assigned := make([]bool, n)
	for i := 0; i < n; i++ {
		if assigned[i] {
			continue
		}
		var comp []int
		for j := 0; j < n; j++ {
			if i == j || (reach[i][j] && reach[j][i]) {
				comp = append(comp, j)
			}
		}
		keep := comp[:0]
		for _, j := range comp {
			if j == i || (reach[i][j] && reach[j][i]) {
				keep = append(keep, j)
				assigned[j] = true
			}
		}
		if len(keep) >= 2 {
			sort.Ints(keep)
			comps[fmtInts(keep)] = true
		}
	}
	return comps
}

func fmtInts(xs []int) string {
	out := ""
	for _, x := range xs {
		out += itoa(x) + ","
	}
	return out
}

func TestItoa(t *testing.T) {
	prop := func(n int) bool {
		want := fmtStd(n)
		return itoa(n) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func fmtStd(n int) string {
	// strconv-free reference for itoa.
	if n == 0 {
		return "0"
	}
	neg := n < 0
	u := n
	if neg {
		u = -u
	}
	s := ""
	for u > 0 {
		s = string(rune('0'+u%10)) + s
		u /= 10
	}
	if neg {
		s = "-" + s
	}
	return s
}

// TestFilterMergeProperties: filtering to the full mask is the identity;
// merging a graph into an empty graph reproduces it; merge is idempotent.
func TestFilterMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	allKinds := KSDep | KSOrders | Version.Mask() | Timestamp.Mask()
	for trial := 0; trial < 40; trial++ {
		g := New()
		n := 2 + rng.Intn(10)
		for e := 0; e < rng.Intn(40); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), Kind(rng.Intn(int(numKinds))))
		}
		same := func(a, b *Graph) bool {
			if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
				return false
			}
			for _, u := range a.Nodes() {
				ok := true
				a.Out(u, allKinds, func(v int, ks KindSet) {
					if b.Label(u, v) != ks {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
			return true
		}
		if f := g.Filter(allKinds); !same(g, f) {
			t.Fatalf("trial %d: Filter(all) is not the identity", trial)
		}
		m := New()
		m.Merge(g)
		if !same(g, m) {
			t.Fatalf("trial %d: Merge into empty differs", trial)
		}
		m.Merge(g)
		if !same(g, m) {
			t.Fatalf("trial %d: Merge is not idempotent", trial)
		}
	}
}
