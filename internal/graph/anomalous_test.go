package graph

import (
	"testing"
)

// sigCycle builds a cycle visiting the given nodes in order (closing
// back to the first), all via WW.
func sigCycle(nodes ...int) Cycle {
	var c Cycle
	for i, n := range nodes {
		to := nodes[(i+1)%len(nodes)]
		c.Steps = append(c.Steps, Step{From: n, To: to, Label: WW.Mask(), Via: WW})
	}
	return c
}

func TestSigOfMatchesCycleKey(t *testing.T) {
	cases := [][]int{
		{1},
		{1, 2},
		{3, 1, 2},
		{9, 8, 7, 6, 5, 4, 3, 2},    // exactly 8: inline
		{9, 8, 7, 6, 5, 4, 3, 2, 1}, // 9: spills
		{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
	}
	seenSig := map[cycleSig]int{}
	seenKey := map[string]int{}
	for i, nodes := range cases {
		seenSig[sigOf(sigCycle(nodes...))] = i
		seenKey[CycleKey(sigCycle(nodes...))] = i
	}
	if len(seenSig) != len(seenKey) {
		t.Fatalf("cycleSig dedup (%d) disagrees with CycleKey dedup (%d)", len(seenSig), len(seenKey))
	}
	// Same node set in a different rotation must collide under both.
	if sigOf(sigCycle(3, 1, 2)) != sigOf(sigCycle(1, 2, 3)) {
		t.Fatal("rotations of one cycle got distinct signatures")
	}
	if sigOf(sigCycle(1, 2)) == sigOf(sigCycle(1, 3)) {
		t.Fatal("distinct node sets collided")
	}
	// A spilled signature must never collide with an inline one.
	if sigOf(sigCycle(9, 8, 7, 6, 5, 4, 3, 2, 1)).n != -1 {
		t.Fatal("9-step cycle did not spill")
	}
}

// TestSigOfAllocs pins the hot-path guarantee: deduplicating a cycle of
// up to eight steps allocates nothing, where the string CycleKey form
// builds a fresh key per candidate.
func TestSigOfAllocs(t *testing.T) {
	c := sigCycle(5, 3, 8, 1, 6, 2, 7, 4)
	seen := map[cycleSig]bool{}
	seen[sigOf(c)] = true
	if allocs := testing.AllocsPerRun(1000, func() {
		if !seen[sigOf(c)] {
			t.Error("signature not found")
		}
	}); allocs != 0 {
		t.Fatalf("sigOf dedup allocates %v per run, want 0", allocs)
	}
}
