package graph

import (
	"sort"
	"strings"

	"repro/internal/par"
)

// Step is one edge of a cycle witness: From depends-on... To via the kinds
// in Label; Via is the single kind the search actually used, which is what
// classification and explanation report.
type Step struct {
	From, To int
	Label    KindSet
	Via      Kind
}

// Cycle is a closed walk witnessing an anomaly: Steps[i].To ==
// Steps[i+1].From and the last step returns to Steps[0].From.
type Cycle struct {
	Steps []Step
}

// Nodes returns the transaction ids around the cycle, starting at
// Steps[0].From, without repeating the first node at the end.
func (c Cycle) Nodes() []int {
	out := make([]int, len(c.Steps))
	for i, s := range c.Steps {
		out[i] = s.From
	}
	return out
}

// CountVia returns how many steps were traversed via kind k.
func (c Cycle) CountVia(k Kind) int {
	n := 0
	for _, s := range c.Steps {
		if s.Via == k {
			n++
		}
	}
	return n
}

// String renders the cycle as "T1 -ww-> T2 -rw-> T1".
func (c Cycle) String() string {
	if len(c.Steps) == 0 {
		return "(empty cycle)"
	}
	var b strings.Builder
	for _, s := range c.Steps {
		b.WriteString("T")
		b.WriteString(itoa(s.From))
		b.WriteString(" -")
		b.WriteString(s.Via.String())
		b.WriteString("-> ")
	}
	b.WriteString("T")
	b.WriteString(itoa(c.Steps[0].From))
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// FindCycles searches the subgraph of edges intersecting mask and returns
// one short cycle per strongly connected component, found by breadth-first
// search from that component's smallest node. This implements the plain
// cycle searches of §6 (G0 with mask=ww; G1c with mask=ww|wr; G2 candidates
// with the full mask).
func (g *Graph) FindCycles(mask KindSet) []Cycle {
	return g.FindCyclesP(mask, 1)
}

// FindCyclesP is FindCycles with the per-SCC searches fanned out across p
// workers (p <= 0 meaning one per CPU). Components are independent, so
// each search runs in isolation; results are collected in sorted-SCC
// order, making the output identical at every parallelism level.
func (g *Graph) FindCyclesP(mask KindSet, p int) []Cycle {
	sccs := g.sortedSCCs(mask)
	return gatherCycles(par.Map(p, len(sccs), func(i int) foundCycle {
		scc := sccs[i]
		c, ok := g.bfsCycle(scc[0], scc[0], mask, memberSet(scc), Step{})
		return foundCycle{c, ok}
	}))
}

// foundCycle is one per-SCC search outcome; gatherCycles keeps the hits
// in component order.
type foundCycle struct {
	c  Cycle
	ok bool
}

func gatherCycles(found []foundCycle) []Cycle {
	var out []Cycle
	for _, f := range found {
		if f.ok {
			out = append(out, f.c)
		}
	}
	return out
}

// FindCyclesWithExactlyOne returns, per SCC, a cycle containing exactly one
// edge traversed via kind one, with every other step traversed via rest.
// This is the paper's G-single search: partition the graph, follow exactly
// one read-write edge, then complete the cycle using only write-write and
// write-read edges.
func (g *Graph) FindCyclesWithExactlyOne(one Kind, rest KindSet) []Cycle {
	return g.FindCyclesWithExactlyOneP(one, rest, 1)
}

// FindCyclesWithExactlyOneP is FindCyclesWithExactlyOne with per-SCC
// searches fanned out across p workers; see FindCyclesP.
func (g *Graph) FindCyclesWithExactlyOneP(one Kind, rest KindSet, p int) []Cycle {
	full := one.Mask() | rest
	sccs := g.sortedSCCs(full)
	return gatherCycles(par.Map(p, len(sccs), func(i int) foundCycle {
		scc := sccs[i]
		c, ok := g.cycleWithOne(scc, memberSet(scc), one, rest)
		return foundCycle{c, ok}
	}))
}

func (g *Graph) cycleWithOne(scc []int, in map[int]bool, one Kind, rest KindSet) (Cycle, bool) {
	for _, u := range scc {
		var found Cycle
		ok := false
		g.OutSorted(u, one.Mask(), func(v int, label KindSet) {
			if ok || !in[v] {
				return
			}
			first := Step{From: u, To: v, Label: label, Via: one}
			if v == u {
				return // self-edges are never stored, but be safe
			}
			if c, hit := g.bfsCycle(v, u, rest, in, first); hit {
				found, ok = c, true
			}
		})
		if ok {
			return found, true
		}
	}
	return Cycle{}, false
}

// FindCyclesWithAtLeastOne returns, per SCC of the masked graph, a cycle
// containing at least one edge of kind req (the G2 search: one or more
// anti-dependency edges, with any other dependencies completing the cycle).
func (g *Graph) FindCyclesWithAtLeastOne(req Kind, mask KindSet) []Cycle {
	return g.FindCyclesWithAtLeastOneP(req, mask, 1)
}

// FindCyclesWithAtLeastOneP is FindCyclesWithAtLeastOne with per-SCC
// searches fanned out across p workers; see FindCyclesP.
func (g *Graph) FindCyclesWithAtLeastOneP(req Kind, mask KindSet, p int) []Cycle {
	full := req.Mask() | mask
	sccs := g.sortedSCCs(full)
	return gatherCycles(par.Map(p, len(sccs), func(i int) foundCycle {
		scc := sccs[i]
		in := memberSet(scc)
		var out foundCycle
		for _, u := range scc {
			if out.ok {
				break
			}
			g.OutSorted(u, req.Mask(), func(v int, label KindSet) {
				if out.ok || !in[v] {
					return
				}
				first := Step{From: u, To: v, Label: label, Via: req}
				if c, hit := g.bfsCycle(v, u, full, in, first); hit {
					out = foundCycle{c, true}
				}
			})
		}
		return out
	}))
}

// bfsCycle finds a shortest path from start to goal using edges
// intersecting mask and restricted to nodes in the member set, then closes
// it into a cycle. If prefix is a non-zero Step, it is prepended (its From
// must be goal and its To must be start). When start == goal the search
// looks for a non-trivial loop back to goal.
func (g *Graph) bfsCycle(start, goal int, mask KindSet, in map[int]bool, prefix Step) (Cycle, bool) {
	type cameFrom struct {
		prev int
		via  Kind
		lab  KindSet
	}
	parent := map[int]cameFrom{}
	queue := []int{start}
	visited := map[int]bool{start: true}
	reached := false
	for len(queue) > 0 && !reached {
		u := queue[0]
		queue = queue[1:]
		g.OutSorted(u, mask, func(v int, label KindSet) {
			if reached || !in[v] {
				return
			}
			if v == goal {
				parent[goal] = cameFrom{prev: u, via: firstKind(label, mask), lab: label}
				reached = true
				return
			}
			if !visited[v] {
				visited[v] = true
				parent[v] = cameFrom{prev: u, via: firstKind(label, mask), lab: label}
				queue = append(queue, v)
			}
		})
	}
	if !reached {
		return Cycle{}, false
	}
	// Reconstruct goal <- ... <- start.
	var rev []Step
	at := goal
	for {
		cf := parent[at]
		rev = append(rev, Step{From: cf.prev, To: at, Label: cf.lab, Via: cf.via})
		at = cf.prev
		if at == start {
			break
		}
	}
	steps := make([]Step, 0, len(rev)+1)
	if prefix.From != prefix.To || prefix.Label != 0 {
		steps = append(steps, prefix)
	}
	for i := len(rev) - 1; i >= 0; i-- {
		steps = append(steps, rev[i])
	}
	return Cycle{Steps: steps}, true
}

// firstKind picks the lowest-numbered kind present in both label and mask.
// Dependency kinds are declared before ordering kinds, so explanations
// prefer ww/wr/rw labels over process/realtime when an edge carries both.
func firstKind(label, mask KindSet) Kind {
	for k := Kind(0); k < numKinds; k++ {
		if label.Has(k) && mask.Has(k) {
			return k
		}
	}
	return 0
}

func (g *Graph) sortedSCCs(mask KindSet) [][]int {
	sccs := g.SCCs(mask)
	for _, scc := range sccs {
		sort.Ints(scc)
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

func memberSet(nodes []int) map[int]bool {
	in := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	return in
}
