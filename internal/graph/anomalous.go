package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/par"
)

// AnomalousCycles runs the §6 searches, from most to least specific,
// deduplicating cycles that multiple searches find: G0 over ww edges,
// G1c over ww+wr, G-single with exactly one rw, and G2 with one or more
// rw. Extra ordering edges (process, realtime, timestamp) participate
// in every search; anomaly classification downgrades cycles that need
// them to the -process / -realtime / -timestamp variants.
//
// The four searches are independent reads of the finished graph, so
// they run concurrently (each additionally fanning out per SCC);
// deduplication walks the results in fixed search order, keeping the
// report identical at every parallelism level. The worker budget is
// split across the two levels — outer searches × inner per-SCC workers
// <= p — so the search never runs more goroutines than p allows.
//
// Both the batch checker and the streaming sessions call this: the
// batch path over the whole graph, the streaming path over the induced
// subgraph of the components a chunk dirtied.
func (g *Graph) AnomalousCycles(extra KindSet, p int) []Cycle {
	budget := par.Procs(p)
	outer := budget
	if outer > 4 {
		outer = 4
	}
	inner := budget / outer
	if inner < 1 {
		inner = 1
	}
	searches := []func() []Cycle{
		func() []Cycle { return g.FindCyclesP(KSWW|extra, inner) },
		func() []Cycle { return g.FindCyclesP(KSWWWR|extra, inner) },
		func() []Cycle { return g.FindCyclesWithExactlyOneP(RW, KSWWWR|extra, inner) },
		func() []Cycle { return g.FindCyclesWithAtLeastOneP(RW, KSDep|extra, inner) },
	}
	found := par.Map(outer, len(searches), func(i int) []Cycle { return searches[i]() })

	seen := map[string]bool{}
	var out []Cycle
	for _, cs := range found {
		for _, c := range cs {
			sig := CycleKey(c)
			if !seen[sig] {
				seen[sig] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// CycleKey canonicalizes a cycle by its sorted node set; two witnesses
// over the same transactions are considered the same finding, both by
// the batch deduplication above and by the streaming sessions' "already
// surfaced" bookkeeping.
func CycleKey(c Cycle) string {
	nodes := c.Nodes()
	sort.Ints(nodes)
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "%d,", n)
	}
	return b.String()
}
