package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/par"
)

// AnomalousCycles runs the §6 searches, from most to least specific,
// deduplicating cycles that multiple searches find: G0 over ww edges,
// G1c over ww+wr, G-single with exactly one rw, and G2 with one or more
// rw. Extra ordering edges (process, realtime, timestamp) participate
// in every search; anomaly classification downgrades cycles that need
// them to the -process / -realtime / -timestamp variants.
//
// The four searches are independent reads of the finished graph, so
// they run concurrently (each additionally fanning out per SCC);
// deduplication walks the results in fixed search order, keeping the
// report identical at every parallelism level. The worker budget is
// split across the two levels — outer searches × inner per-SCC workers
// <= p — so the search never runs more goroutines than p allows.
//
// Both the batch checker and the streaming sessions call this: the
// batch path over the whole graph, the streaming path over the induced
// subgraph of the components a chunk dirtied.
func (g *Graph) AnomalousCycles(extra KindSet, p int) []Cycle {
	budget := par.Procs(p)
	outer := budget
	if outer > 4 {
		outer = 4
	}
	inner := budget / outer
	if inner < 1 {
		inner = 1
	}
	searches := []func() []Cycle{
		func() []Cycle { return g.FindCyclesP(KSWW|extra, inner) },
		func() []Cycle { return g.FindCyclesP(KSWWWR|extra, inner) },
		func() []Cycle { return g.FindCyclesWithExactlyOneP(RW, KSWWWR|extra, inner) },
		func() []Cycle { return g.FindCyclesWithAtLeastOneP(RW, KSDep|extra, inner) },
	}
	found := par.Map(outer, len(searches), func(i int) []Cycle { return searches[i]() })

	seen := map[cycleSig]bool{}
	var out []Cycle
	for _, cs := range found {
		for _, c := range cs {
			sig := sigOf(c)
			if !seen[sig] {
				seen[sig] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// cycleSig is a comparable canonical signature of a cycle's node set:
// the sorted nodes inline for cycles of up to eight steps, the string
// CycleKey as a spill otherwise. A struct key keeps the dedup on the
// SCC search hot path allocation-free, where CycleKey builds a string
// per candidate cycle.
type cycleSig struct {
	n     int
	nodes [8]int64
	spill string
}

// sigOf computes the comparable signature of c without allocating:
// each step's From node is insertion-sorted into the inline array,
// avoiding the slice Cycle.Nodes would allocate. Cycles longer than
// eight steps (rare: the searches return shortest witnesses) fall back
// to the spill string; n = -1 keeps spilled signatures from colliding
// with inline ones.
func sigOf(c Cycle) cycleSig {
	var s cycleSig
	if len(c.Steps) > len(s.nodes) {
		return cycleSig{n: -1, spill: CycleKey(c)}
	}
	s.n = len(c.Steps)
	for i, st := range c.Steps {
		v := int64(st.From)
		j := i
		for ; j > 0 && s.nodes[j-1] > v; j-- {
			s.nodes[j] = s.nodes[j-1]
		}
		s.nodes[j] = v
	}
	return s
}

// CycleKey canonicalizes a cycle by its sorted node set as a string;
// two witnesses over the same transactions are considered the same
// finding. The batch deduplication above uses the comparable cycleSig
// form of the same identity; the string form remains for the streaming
// sessions' "already surfaced" bookkeeping, whose keys mix cycle and
// non-cycle findings in one table.
func CycleKey(c Cycle) string {
	nodes := c.Nodes()
	sort.Ints(nodes)
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "%d,", n)
	}
	return b.String()
}
