package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// sccSetsEqual compares two component partitions (each a list of sorted
// node slices) as sets of sets.
func sccSetsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(scc []int) string {
		s := ""
		for _, n := range scc {
			s += fmt.Sprintf("%d,", n)
		}
		return s
	}
	set := map[string]bool{}
	for _, scc := range a {
		set[key(scc)] = true
	}
	for _, scc := range b {
		if !set[key(scc)] {
			return false
		}
	}
	return true
}

// checkOrder verifies the maintained topological invariant: every
// condensation edge points from a lower-ordered root to a higher one.
func checkOrder(t *testing.T, x *Incr) {
	t.Helper()
	for r, outs := range x.out {
		if x.find(r) != r {
			t.Fatalf("condensation adjacency keyed by non-root %d", r)
		}
		for nb := range outs {
			if x.find(nb) != nb {
				t.Fatalf("condensation edge %d->%d targets non-root", r, nb)
			}
			if x.ord[r] >= x.ord[nb] {
				t.Fatalf("order violated: edge %d->%d but ord %d >= %d", r, nb, x.ord[r], x.ord[nb])
			}
		}
	}
}

// TestIncrMatchesTarjan inserts random edges one at a time and checks
// the incrementally maintained partition against a fresh Tarjan run —
// and the Pearce-Kelly order invariant — after every insertion. Sparse
// and dense regimes both: the sparse one exercises long merge chains,
// the dense one repeated intra-component insertion.
func TestIncrMatchesTarjan(t *testing.T) {
	for _, nodes := range []int{20, 60, 200} {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			x := NewIncr(KSDep)
			for i := 0; i < 500; i++ {
				a, b := rng.Intn(nodes), rng.Intn(nodes)
				k := Kind(rng.Intn(3)) // WW, WR, RW
				x.AddEdge(a, b, k)
				got := x.SCCs()
				want := x.Graph().sortedSCCs(KSDep)
				if !sccSetsEqual(got, want) {
					t.Fatalf("nodes %d seed %d, after %d edges (+%d->%d): incr %v, tarjan %v",
						nodes, seed, i+1, a, b, got, want)
				}
				checkOrder(t, x)
			}
		}
	}
}

// TestIncrDirtyTracking checks that DirtySCCs reports exactly the
// components new edges touched, and drains.
func TestIncrDirtyTracking(t *testing.T) {
	x := NewIncr(KSDep)
	x.AddEdge(1, 2, WW)
	x.AddEdge(2, 1, WW)
	dirty := x.DirtySCCs()
	if len(dirty) != 1 || len(dirty[0]) != 2 {
		t.Fatalf("expected one dirty 2-cycle, got %v", dirty)
	}
	if d := x.DirtySCCs(); d != nil {
		t.Fatalf("dirty set should drain, got %v", d)
	}
	// An unrelated acyclic edge dirties nothing.
	x.AddEdge(3, 4, WR)
	if d := x.DirtySCCs(); d != nil {
		t.Fatalf("acyclic insertion should not dirty, got %v", d)
	}
	// Re-adding an existing edge is a no-op.
	x.AddEdge(1, 2, WW)
	if d := x.DirtySCCs(); d != nil {
		t.Fatalf("idempotent insertion should not dirty, got %v", d)
	}
	// A new edge kind inside the cyclic component re-dirties it.
	x.AddEdge(1, 2, RW)
	if d := x.DirtySCCs(); len(d) != 1 {
		t.Fatalf("intra-component edge should dirty its component, got %v", d)
	}
	// Closing a long path merges every component on it.
	x.AddEdge(4, 5, WW)
	x.AddEdge(5, 6, WW)
	x.AddEdge(6, 3, WW)
	dirty = x.DirtySCCs()
	if len(dirty) != 1 || len(dirty[0]) != 4 {
		t.Fatalf("expected merged 4-node component, got %v", dirty)
	}
}

// TestIncrMergesThroughIntermediates exercises the condensation
// reachability: closing a cycle through components that are themselves
// multi-node must swallow them all.
func TestIncrMergesThroughIntermediates(t *testing.T) {
	x := NewIncr(KSDep)
	// Two 2-cycles linked by a path, then close the loop.
	x.AddEdge(0, 1, WW)
	x.AddEdge(1, 0, WW)
	x.AddEdge(10, 11, WW)
	x.AddEdge(11, 10, WW)
	x.AddEdge(1, 10, WR)
	x.DirtySCCs()
	x.AddEdge(11, 0, RW)
	sccs := x.SCCs()
	if len(sccs) != 1 || len(sccs[0]) != 4 {
		t.Fatalf("expected one 4-node component, got %v", sccs)
	}
	want := x.Graph().sortedSCCs(KSDep)
	if !sccSetsEqual(sccs, want) {
		t.Fatalf("incr %v != tarjan %v", sccs, want)
	}
}

// TestSubgraph checks the induced subgraph keeps exactly the internal
// edges with their kinds.
func TestSubgraph(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 3, WR)
	g.AddEdge(3, 1, RW)
	g.AddEdge(1, 9, WW) // leaves the subgraph
	sub := g.Subgraph([]int{1, 2, 3, 99})
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", sub.NumEdges())
	}
	if !sub.Label(1, 2).Has(WW) || !sub.Label(2, 3).Has(WR) || !sub.Label(3, 1).Has(RW) {
		t.Fatal("subgraph lost edge labels")
	}
	if sub.Label(1, 9) != 0 {
		t.Fatal("subgraph kept an external edge")
	}
}
