package graph

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// A Frozen is an immutable compressed-sparse-row snapshot of a settled
// region of a dependency graph. Once a streaming session determines a
// set of transactions can no longer gain edges (their keys retired, no
// open spans can reach them), Incr.Retire condenses their induced
// subgraph into a Frozen: node ids in one sorted array, adjacency in
// CSR rows with columns ascending, every edge carrying its KindSet.
// No further inserts are possible, so cycle-search results over the
// region are memoized per edge-kind mask, and the whole structure
// serializes to a compact varint form (Encode / DecodeFrozen) suitable
// for the same spill machinery retired history segments use.
type Frozen struct {
	nodes    []int     // sorted external node ids
	rowStart []int32   // rowStart[i]..rowStart[i+1] index to/ks for node i
	to       []int32   // column: index into nodes
	ks       []KindSet // edge labels, parallel to to

	mu   sync.Mutex
	memo map[KindSet][]Cycle
}

// NewFrozen snapshots the subgraph of g induced by nodes. Ids absent
// from g are ignored; duplicates collapse. The input graph is not
// modified or retained.
func NewFrozen(g *Graph, nodes []int) *Frozen {
	sorted := make([]int, 0, len(nodes))
	for _, n := range nodes {
		if g.HasNode(n) {
			sorted = append(sorted, n)
		}
	}
	sort.Ints(sorted)
	sorted = compactInts(sorted)

	col := make(map[int]int32, len(sorted))
	for i, n := range sorted {
		col[n] = int32(i)
	}
	f := &Frozen{
		nodes:    sorted,
		rowStart: make([]int32, len(sorted)+1),
	}
	for i, n := range sorted {
		f.rowStart[i] = int32(len(f.to))
		ai := g.ids[n]
		// Adjacency is sorted by dense id (insertion order); re-sort the
		// surviving entries by frozen column, i.e. by external id.
		start := len(f.to)
		for _, e := range g.adj[ai] {
			if j, ok := col[g.nodes[e.to]]; ok {
				f.to = append(f.to, j)
				f.ks = append(f.ks, e.ks)
			}
		}
		sortRow(f.to[start:], f.ks[start:])
	}
	f.rowStart[len(sorted)] = int32(len(f.to))
	return f
}

func compactInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func sortRow(to []int32, ks []KindSet) {
	sort.Sort(&rowSorter{to, ks})
}

type rowSorter struct {
	to []int32
	ks []KindSet
}

func (r *rowSorter) Len() int           { return len(r.to) }
func (r *rowSorter) Less(i, j int) bool { return r.to[i] < r.to[j] }
func (r *rowSorter) Swap(i, j int) {
	r.to[i], r.to[j] = r.to[j], r.to[i]
	r.ks[i], r.ks[j] = r.ks[j], r.ks[i]
}

// NumNodes returns the frozen node count.
func (f *Frozen) NumNodes() int { return len(f.nodes) }

// NumEdges returns the frozen edge count (distinct ordered pairs).
func (f *Frozen) NumEdges() int { return len(f.to) }

// Nodes returns the frozen node ids, sorted ascending.
func (f *Frozen) Nodes() []int {
	out := make([]int, len(f.nodes))
	copy(out, f.nodes)
	return out
}

// Edges lists every frozen edge, expanded per kind, in (from, to, kind)
// order — the same shape analyzers feed AddEdges, so a Frozen can be
// replayed into any graph.
func (f *Frozen) Edges() []Edge {
	out := make([]Edge, 0, len(f.to))
	for i, n := range f.nodes {
		for p := f.rowStart[i]; p < f.rowStart[i+1]; p++ {
			for _, k := range f.ks[p].Kinds() {
				out = append(out, Edge{From: n, To: f.nodes[f.to[p]], Kind: k})
			}
		}
	}
	return out
}

// graph materializes the frozen region as a mutable Graph for the cycle
// searches. Nodes enter in sorted order, so dense ids are deterministic.
func (f *Frozen) graph() *Graph {
	g := New()
	for _, n := range f.nodes {
		g.Ensure(n)
	}
	for i, n := range f.nodes {
		for p := f.rowStart[i]; p < f.rowStart[i+1]; p++ {
			g.addMask(n, f.nodes[f.to[p]], f.ks[p])
		}
	}
	return g
}

// Cycles runs AnomalousCycles over the frozen region with the given
// extra-order mask, memoizing per mask: the region cannot change, so the
// second query for a mask is a map lookup. Results are shared slices —
// callers must not mutate them. Safe for concurrent use.
func (f *Frozen) Cycles(extra KindSet, p int) []Cycle {
	f.mu.Lock()
	if cs, ok := f.memo[extra]; ok {
		f.mu.Unlock()
		return cs
	}
	f.mu.Unlock()
	// Search outside the lock: concurrent first queries for the same mask
	// duplicate work once, never block each other behind a long search.
	cs := f.graph().AnomalousCycles(extra, p)
	f.mu.Lock()
	if f.memo == nil {
		f.memo = map[KindSet][]Cycle{}
	}
	f.memo[extra] = cs
	f.mu.Unlock()
	return cs
}

// frozenMagic guards serialized Frozen segments: "Fz" plus a version.
var frozenMagic = [3]byte{0xF5, 'z', 1}

// Encode appends a compact varint serialization of f to dst: the sorted
// node array delta-encoded, then each CSR row as a length followed by
// delta-encoded columns with a label byte each. Memoized cycle results
// are not serialized — they are derived data, recomputed on demand.
func (f *Frozen) Encode(dst []byte) []byte {
	dst = append(dst, frozenMagic[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(f.nodes)))
	prev := 0
	for i, n := range f.nodes {
		if i == 0 {
			dst = binary.AppendVarint(dst, int64(n))
		} else {
			dst = binary.AppendUvarint(dst, uint64(n-prev)) // sorted: non-negative
		}
		prev = n
	}
	for i := range f.nodes {
		row := f.to[f.rowStart[i]:f.rowStart[i+1]]
		lab := f.ks[f.rowStart[i]:f.rowStart[i+1]]
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		prevCol := int32(0)
		for j, c := range row {
			if j == 0 {
				dst = binary.AppendUvarint(dst, uint64(c))
			} else {
				dst = binary.AppendUvarint(dst, uint64(c-prevCol))
			}
			prevCol = c
			dst = append(dst, byte(lab[j]))
		}
	}
	return dst
}

// DecodeFrozen parses one Encode result (exactly; trailing bytes are an
// error so corrupted segment boundaries are caught, not skipped).
func DecodeFrozen(b []byte) (*Frozen, error) {
	if len(b) < len(frozenMagic) || b[0] != frozenMagic[0] || b[1] != frozenMagic[1] || b[2] != frozenMagic[2] {
		return nil, fmt.Errorf("graph: frozen segment: bad magic")
	}
	b = b[len(frozenMagic):]
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("graph: frozen segment: truncated varint")
		}
		b = b[n:]
		return v, nil
	}
	nn, err := uv()
	if err != nil {
		return nil, err
	}
	f := &Frozen{nodes: make([]int, nn), rowStart: make([]int32, nn+1)}
	prev := int64(0)
	for i := range f.nodes {
		if i == 0 {
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, fmt.Errorf("graph: frozen segment: truncated varint")
			}
			b = b[n:]
			prev = v
		} else {
			d, err := uv()
			if err != nil {
				return nil, err
			}
			prev += int64(d)
		}
		f.nodes[i] = int(prev)
	}
	for i := 0; i < int(nn); i++ {
		f.rowStart[i] = int32(len(f.to))
		rl, err := uv()
		if err != nil {
			return nil, err
		}
		prevCol := uint64(0)
		for j := uint64(0); j < rl; j++ {
			d, err := uv()
			if err != nil {
				return nil, err
			}
			if j == 0 {
				prevCol = d
			} else {
				prevCol += d
			}
			if prevCol >= nn {
				return nil, fmt.Errorf("graph: frozen segment: column %d out of range", prevCol)
			}
			if len(b) == 0 {
				return nil, fmt.Errorf("graph: frozen segment: missing label byte")
			}
			f.to = append(f.to, int32(prevCol))
			f.ks = append(f.ks, KindSet(b[0]))
			b = b[1:]
		}
	}
	f.rowStart[nn] = int32(len(f.to))
	if len(b) != 0 {
		return nil, fmt.Errorf("graph: frozen segment: %d trailing bytes", len(b))
	}
	return f, nil
}

// Retire splits the incremental graph at a settlement boundary: nodes
// for which keep returns false are frozen — their induced subgraph
// snapshotted into the returned Frozen — and the Incr is rebuilt in
// place over the survivors only, in deterministic dense-id order.
// Edges crossing the boundary are discarded; callers choose the keep
// predicate so that can't lose findings (a retired transaction's edges
// to live ones would only matter for cycles through the live region,
// and sessions only retire nodes whose keys can gain no further edges,
// making such cycles impossible by the time Retire runs — any that did
// exist were searched and surfaced before retirement).
func (x *Incr) Retire(keep func(int) bool) *Frozen {
	old := x.g
	var dead []int
	// Survivors re-enter in the old topological order of their
	// components (ties broken by dense id, which keeps each old SCC
	// contiguous). Re-fed that way, every cross-component edge is
	// order-respecting — an O(1) insert for Pearce-Kelly — and only
	// within-SCC edges pay for restoration, which re-merges exactly the
	// components that must collapse anyway. Feeding in dense-id order
	// instead makes the rebuild quadratic-ish in practice: dense ids
	// are arrival order, not topological order, so a large share of
	// edges lands order-violating and triggers region reorderings.
	type survivor struct {
		ai  int32
		ord int64
	}
	var survivors []survivor
	for ai, n := range old.nodes {
		if !keep(n) {
			dead = append(dead, n)
			continue
		}
		survivors = append(survivors, survivor{int32(ai), x.ord[x.find(int32(ai))]})
	}
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].ord != survivors[j].ord {
			return survivors[i].ord < survivors[j].ord
		}
		return survivors[i].ai < survivors[j].ai
	})
	fz := NewFrozen(old, dead)

	x.g = New()
	x.parent = x.parent[:0]
	x.rank = x.rank[:0]
	x.ord = x.ord[:0]
	x.nextOrd = 0
	x.members = map[int32][]int32{}
	x.out = map[int32]map[int32]bool{}
	x.in = map[int32]map[int32]bool{}
	x.dirty = map[int32]bool{}

	for _, s := range survivors {
		x.ensure(old.nodes[s.ai]) // survivors keep their nodes even when isolated
	}
	for _, s := range survivors {
		a := old.nodes[s.ai]
		for _, e := range old.adj[s.ai] {
			b := old.nodes[e.to]
			if !keep(b) {
				continue
			}
			for _, k := range e.ks.Kinds() {
				x.AddEdge(a, b, k)
			}
		}
	}
	return fz
}
