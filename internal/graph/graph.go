// Package graph provides the labeled dependency-graph substrate Elle
// searches for anomalies (§6 of the paper): a directed multigraph over
// observed transactions whose edges carry dependency kinds (ww, wr, rw,
// process, realtime, version), strongly connected components via an
// iterative Tarjan, and breadth-first searches for short cycles with
// particular edge-kind properties.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is a single dependency relationship between two transactions.
type Kind uint8

const (
	// WW: Tj installed the version of some object following Ti's (§4.1.4).
	WW Kind = iota
	// WR: Tj read a version Ti installed.
	WR
	// RW: Ti read a version and Tj installed its successor
	// (an anti-dependency).
	RW
	// Process: Ti and Tj were executed, in that order, by the same
	// single-threaded client process (§5.1).
	Process
	// Realtime: Ti completed before Tj was invoked (§5.1).
	Realtime
	// Version: an object-version ordering edge used by the register
	// analyzer's version graphs (§5.2), not a transaction dependency.
	Version
	// Timestamp: the database's own claimed transaction ordering — Ti's
	// exposed commit timestamp preceded Tj's start timestamp (§5.1,
	// the time-precedes order of Adya's snapshot-isolation
	// formalization).
	Timestamp
	numKinds = 7
)

// String returns the short edge label used in explanations and DOT output.
func (k Kind) String() string {
	switch k {
	case WW:
		return "ww"
	case WR:
		return "wr"
	case RW:
		return "rw"
	case Process:
		return "process"
	case Realtime:
		return "rt"
	case Version:
		return "version"
	case Timestamp:
		return "ts"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindSet is a bitmask of Kinds.
type KindSet uint8

// Mask returns the singleton set {k}.
func (k Kind) Mask() KindSet { return 1 << k }

// Union returns s ∪ t.
func (s KindSet) Union(t KindSet) KindSet { return s | t }

// Has reports whether k ∈ s.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// Intersects reports whether s ∩ t is non-empty.
func (s KindSet) Intersects(t KindSet) bool { return s&t != 0 }

// Kinds lists the members of s in declaration order.
func (s KindSet) Kinds() []Kind {
	var out []Kind
	for k := Kind(0); k < numKinds; k++ {
		if s.Has(k) {
			out = append(out, k)
		}
	}
	return out
}

// String renders s as "ww|rw".
func (s KindSet) String() string {
	parts := make([]string, 0, numKinds)
	for _, k := range s.Kinds() {
		parts = append(parts, k.String())
	}
	return strings.Join(parts, "|")
}

// Dependency edge-set shorthands used by the anomaly definitions of §6.
var (
	// KSWW is the G0 search mask: write dependencies only.
	KSWW = WW.Mask()
	// KSWWWR is the G1c search mask: write and read dependencies.
	KSWWWR = WW.Mask() | WR.Mask()
	// KSDep is the full Adya dependency mask.
	KSDep = WW.Mask() | WR.Mask() | RW.Mask()
	// KSOrders is the additional-orders mask (§5.1).
	KSOrders = Process.Mask() | Realtime.Mask()
)

// Graph is a directed multigraph over int-identified nodes (transaction
// indices). Parallel edges of different kinds between the same pair are
// merged into one adjacency entry with a KindSet label.
type Graph struct {
	ids   map[int]int32 // external node id -> dense id
	nodes []int         // dense id -> external node id
	adj   []map[int32]KindSet
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{ids: map[int]int32{}}
}

// Ensure adds node n if absent and returns its dense id.
func (g *Graph) Ensure(n int) int32 {
	if id, ok := g.ids[n]; ok {
		return id
	}
	id := int32(len(g.nodes))
	g.ids[n] = id
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	return id
}

// Edge is one labeled edge. Analyzers assemble per-shard []Edge lists in
// parallel and merge them with AddEdges in a deterministic shard order.
type Edge struct {
	From, To int
	Kind     Kind
}

// AddEdges records every edge in order.
func (g *Graph) AddEdges(edges []Edge) {
	for _, e := range edges {
		g.AddEdge(e.From, e.To, e.Kind)
	}
}

// AddEdge records a dependency of the given kind from node a to node b,
// creating the nodes as needed. Self-edges are ignored: per Adya's
// footnote, a transaction never depends on itself in a serialization graph.
func (g *Graph) AddEdge(a, b int, k Kind) {
	if a == b {
		g.Ensure(a)
		return
	}
	ai, bi := g.Ensure(a), g.Ensure(b)
	if g.adj[ai] == nil {
		g.adj[ai] = map[int32]KindSet{}
	}
	prev, existed := g.adj[ai][bi]
	g.adj[ai][bi] = prev | k.Mask()
	if !existed {
		g.edges++
	}
}

// Merge adds every node and edge of o into g.
func (g *Graph) Merge(o *Graph) {
	for ai, out := range o.adj {
		a := o.nodes[ai]
		g.Ensure(a)
		for bi, ks := range out {
			b := o.nodes[bi]
			for _, k := range ks.Kinds() {
				g.AddEdge(a, b, k)
			}
		}
	}
	for _, n := range o.nodes {
		g.Ensure(n)
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the count of distinct (a, b) adjacencies.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns the external node ids in insertion order.
func (g *Graph) Nodes() []int {
	out := make([]int, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// HasNode reports whether n is in the graph.
func (g *Graph) HasNode(n int) bool {
	_, ok := g.ids[n]
	return ok
}

// Label returns the kind set on edge a→b, or 0 if absent.
func (g *Graph) Label(a, b int) KindSet {
	ai, ok := g.ids[a]
	if !ok {
		return 0
	}
	bi, ok := g.ids[b]
	if !ok {
		return 0
	}
	return g.adj[ai][bi]
}

// Out calls f for every out-edge of node a whose label intersects mask.
// Iteration order is unspecified.
func (g *Graph) Out(a int, mask KindSet, f func(b int, label KindSet)) {
	ai, ok := g.ids[a]
	if !ok {
		return
	}
	for bi, ks := range g.adj[ai] {
		if ks.Intersects(mask) {
			f(g.nodes[bi], ks)
		}
	}
}

// OutSorted is Out with callbacks in ascending node order; used where
// deterministic traversal matters (explanations, tests).
func (g *Graph) OutSorted(a int, mask KindSet, f func(b int, label KindSet)) {
	ai, ok := g.ids[a]
	if !ok {
		return
	}
	targets := make([]int32, 0, len(g.adj[ai]))
	for bi, ks := range g.adj[ai] {
		if ks.Intersects(mask) {
			targets = append(targets, bi)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return g.nodes[targets[i]] < g.nodes[targets[j]] })
	for _, bi := range targets {
		f(g.nodes[bi], g.adj[ai][bi])
	}
}

// Filter returns a new graph containing only edges whose label intersects
// mask (labels are narrowed to the intersection). All nodes are preserved.
func (g *Graph) Filter(mask KindSet) *Graph {
	out := New()
	for _, n := range g.nodes {
		out.Ensure(n)
	}
	for ai, adj := range g.adj {
		a := g.nodes[ai]
		for bi, ks := range adj {
			if inter := ks & mask; inter != 0 {
				b := g.nodes[bi]
				for _, k := range inter.Kinds() {
					out.AddEdge(a, b, k)
				}
			}
		}
	}
	return out
}
