// Package graph provides the labeled dependency-graph substrate Elle
// searches for anomalies (§6 of the paper): a directed multigraph over
// observed transactions whose edges carry dependency kinds (ww, wr, rw,
// process, realtime, version), strongly connected components via an
// iterative Tarjan, and breadth-first searches for short cycles with
// particular edge-kind properties.
package graph

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"sync"
)

// Kind is a single dependency relationship between two transactions.
type Kind uint8

const (
	// WW: Tj installed the version of some object following Ti's (§4.1.4).
	WW Kind = iota
	// WR: Tj read a version Ti installed.
	WR
	// RW: Ti read a version and Tj installed its successor
	// (an anti-dependency).
	RW
	// Process: Ti and Tj were executed, in that order, by the same
	// single-threaded client process (§5.1).
	Process
	// Realtime: Ti completed before Tj was invoked (§5.1).
	Realtime
	// Version: an object-version ordering edge used by the register
	// analyzer's version graphs (§5.2), not a transaction dependency.
	Version
	// Timestamp: the database's own claimed transaction ordering — Ti's
	// exposed commit timestamp preceded Tj's start timestamp (§5.1,
	// the time-precedes order of Adya's snapshot-isolation
	// formalization).
	Timestamp
	numKinds = 7
)

// String returns the short edge label used in explanations and DOT output.
func (k Kind) String() string {
	switch k {
	case WW:
		return "ww"
	case WR:
		return "wr"
	case RW:
		return "rw"
	case Process:
		return "process"
	case Realtime:
		return "rt"
	case Version:
		return "version"
	case Timestamp:
		return "ts"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindSet is a bitmask of Kinds.
type KindSet uint8

// Mask returns the singleton set {k}.
func (k Kind) Mask() KindSet { return 1 << k }

// Union returns s ∪ t.
func (s KindSet) Union(t KindSet) KindSet { return s | t }

// Has reports whether k ∈ s.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// Intersects reports whether s ∩ t is non-empty.
func (s KindSet) Intersects(t KindSet) bool { return s&t != 0 }

// Kinds lists the members of s in declaration order.
func (s KindSet) Kinds() []Kind {
	var out []Kind
	for k := Kind(0); k < numKinds; k++ {
		if s.Has(k) {
			out = append(out, k)
		}
	}
	return out
}

// String renders s as "ww|rw".
func (s KindSet) String() string {
	parts := make([]string, 0, numKinds)
	for _, k := range s.Kinds() {
		parts = append(parts, k.String())
	}
	return strings.Join(parts, "|")
}

// Dependency edge-set shorthands used by the anomaly definitions of §6.
var (
	// KSWW is the G0 search mask: write dependencies only.
	KSWW = WW.Mask()
	// KSWWWR is the G1c search mask: write and read dependencies.
	KSWWWR = WW.Mask() | WR.Mask()
	// KSDep is the full Adya dependency mask.
	KSDep = WW.Mask() | WR.Mask() | RW.Mask()
	// KSOrders is the additional-orders mask (§5.1).
	KSOrders = Process.Mask() | Realtime.Mask()
)

// halfEdge is one adjacency entry: the target's dense id plus the set
// of kinds the edge carries. Per-node adjacency is a slice of these,
// sorted by target id — a compact CSR-style layout that replaces the
// map-per-node representation, eliminating a map allocation per node
// and hashing on every edge visit.
type halfEdge struct {
	to int32
	ks KindSet
}

// Graph is a directed multigraph over int-identified nodes (transaction
// indices). Parallel edges of different kinds between the same pair are
// merged into one adjacency entry with a KindSet label.
type Graph struct {
	ids   map[int]int32 // external node id -> dense id
	nodes []int         // dense id -> external node id
	adj   [][]halfEdge  // per-node out-edges, sorted by target dense id
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{ids: map[int]int32{}}
}

// searchHalf returns the position of to in out, or the insertion point
// keeping out sorted if absent.
func searchHalf(out []halfEdge, to int32) int {
	lo, hi := 0, len(out)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if out[mid].to < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Ensure adds node n if absent and returns its dense id.
func (g *Graph) Ensure(n int) int32 {
	if id, ok := g.ids[n]; ok {
		return id
	}
	id := int32(len(g.nodes))
	g.ids[n] = id
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	return id
}

// Edge is one labeled edge. Analyzers assemble per-shard []Edge lists in
// parallel and merge them with AddEdges in a deterministic shard order.
type Edge struct {
	From, To int
	Kind     Kind
}

// AddEdges records every edge in order.
func (g *Graph) AddEdges(edges []Edge) {
	for _, e := range edges {
		g.AddEdge(e.From, e.To, e.Kind)
	}
}

// AddEdge records a dependency of the given kind from node a to node b,
// creating the nodes as needed. Self-edges are ignored: per Adya's
// footnote, a transaction never depends on itself in a serialization graph.
func (g *Graph) AddEdge(a, b int, k Kind) { g.addMask(a, b, k.Mask()) }

// addMask records an edge carrying every kind in ks at once.
func (g *Graph) addMask(a, b int, ks KindSet) {
	if a == b {
		g.Ensure(a)
		return
	}
	ai, bi := g.Ensure(a), g.Ensure(b)
	out := g.adj[ai]
	i := searchHalf(out, bi)
	if i < len(out) && out[i].to == bi {
		out[i].ks |= ks
		return
	}
	out = append(out, halfEdge{})
	copy(out[i+1:], out[i:])
	out[i] = halfEdge{to: bi, ks: ks}
	g.adj[ai] = out
	g.edges++
}

// addKindDense records kind k on edge ai→bi (dense ids, ai != bi),
// reporting whether k was newly added — the fused lookup-or-insert
// graph.Incr drives, which re-feeds mostly-present edge lists after
// every streaming scan.
func (g *Graph) addKindDense(ai, bi int32, k Kind) bool {
	out := g.adj[ai]
	i := searchHalf(out, bi)
	if i < len(out) && out[i].to == bi {
		if out[i].ks.Has(k) {
			return false
		}
		out[i].ks |= k.Mask()
		return true
	}
	out = append(out, halfEdge{})
	copy(out[i+1:], out[i:])
	out[i] = halfEdge{to: bi, ks: k.Mask()}
	g.adj[ai] = out
	g.edges++
	return true
}

// Merge adds every node and edge of o into g.
func (g *Graph) Merge(o *Graph) {
	for ai, out := range o.adj {
		a := o.nodes[ai]
		g.Ensure(a)
		for _, e := range out {
			g.addMask(a, o.nodes[e.to], e.ks)
		}
	}
	for _, n := range o.nodes {
		g.Ensure(n)
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the count of distinct (a, b) adjacencies.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns the external node ids in insertion order.
func (g *Graph) Nodes() []int {
	out := make([]int, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// HasNode reports whether n is in the graph.
func (g *Graph) HasNode(n int) bool {
	_, ok := g.ids[n]
	return ok
}

// Label returns the kind set on edge a→b, or 0 if absent.
func (g *Graph) Label(a, b int) KindSet {
	ai, ok := g.ids[a]
	if !ok {
		return 0
	}
	bi, ok := g.ids[b]
	if !ok {
		return 0
	}
	out := g.adj[ai]
	if i := searchHalf(out, bi); i < len(out) && out[i].to == bi {
		return out[i].ks
	}
	return 0
}

// Out calls f for every out-edge of node a whose label intersects mask.
// Iteration order is unspecified.
func (g *Graph) Out(a int, mask KindSet, f func(b int, label KindSet)) {
	ai, ok := g.ids[a]
	if !ok {
		return
	}
	for _, e := range g.adj[ai] {
		if e.ks.Intersects(mask) {
			f(g.nodes[e.to], e.ks)
		}
	}
}

// scratchPool recycles the per-call target buffers of OutSorted, the
// innermost loop of every BFS cycle search; without it each visit of a
// node allocates a fresh slice.
var scratchPool = sync.Pool{New: func() any { return new([]halfEdge) }}

// OutSorted is Out with callbacks in ascending node order; used where
// deterministic traversal matters (cycle searches, explanations, tests).
// The callback may re-enter OutSorted (nested searches each draw their
// own scratch buffer from the pool).
func (g *Graph) OutSorted(a int, mask KindSet, f func(b int, label KindSet)) {
	ai, ok := g.ids[a]
	if !ok {
		return
	}
	bufp := scratchPool.Get().(*[]halfEdge)
	targets := (*bufp)[:0]
	for _, e := range g.adj[ai] {
		if e.ks.Intersects(mask) {
			targets = append(targets, e)
		}
	}
	slices.SortFunc(targets, func(x, y halfEdge) int {
		return cmp.Compare(g.nodes[x.to], g.nodes[y.to])
	})
	for _, e := range targets {
		f(g.nodes[e.to], e.ks)
	}
	*bufp = targets[:0]
	scratchPool.Put(bufp)
}

// Filter returns a new graph containing only edges whose label intersects
// mask (labels are narrowed to the intersection). All nodes are preserved.
func (g *Graph) Filter(mask KindSet) *Graph {
	out := New()
	for _, n := range g.nodes {
		out.Ensure(n)
	}
	for ai, adj := range g.adj {
		a := g.nodes[ai]
		for _, e := range adj {
			if inter := e.ks & mask; inter != 0 {
				out.addMask(a, g.nodes[e.to], inter)
			}
		}
	}
	return out
}
