package graph

// SCCs computes the strongly connected components of the subgraph induced
// by edges whose label intersects mask, using an iterative Tarjan so that
// histories of hundreds of thousands of transactions don't overflow the
// goroutine stack. Components are returned as slices of external node ids;
// only components that can contain a cycle (size ≥ 2) are returned, since
// self-edges are never stored.
//
// Tarjan's algorithm runs in O(nodes + edges) time (§2 of the paper cites
// this as the reason cycle detection is tractable).
func (g *Graph) SCCs(mask KindSet) [][]int {
	n := len(g.nodes)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		next    int32
		stack   []int32 // Tarjan's component stack
		sccs    [][]int
		callers []frame // explicit DFS stack
	)

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callers = callers[:0]
		callers = append(callers, frame{v: int32(root)})
		for len(callers) > 0 {
			f := &callers[len(callers)-1]
			v := f.v
			if !f.started {
				// First visit. The frame walks the node's adjacency slice
				// directly, filtering by mask inline — no neighbor list is
				// materialized.
				f.started = true
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
				f.out = g.adj[v]
			}
			descended := false
			for f.i < len(f.out) {
				e := f.out[f.i]
				f.i++
				if !e.ks.Intersects(mask) {
					continue
				}
				w := e.to
				if index[w] == unvisited {
					// Descend; the append may relocate callers, so f must
					// not be touched again this iteration.
					callers = append(callers, frame{v: w})
					descended = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if descended {
				continue
			}
			// All neighbors done: maybe emit a component, then return.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, g.nodes[w])
					if w == v {
						break
					}
				}
				if len(comp) >= 2 {
					sccs = append(sccs, comp)
				}
			}
			callers = callers[:len(callers)-1]
			if len(callers) > 0 {
				p := callers[len(callers)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccs
}

type frame struct {
	v       int32
	out     []halfEdge
	i       int
	started bool
}
