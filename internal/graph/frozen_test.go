package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomEdges builds a reproducible random edge list over n nodes.
func randomEdges(r *rand.Rand, n, m int) []Edge {
	out := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		out = append(out, Edge{From: a, To: b, Kind: Kind(r.Intn(3))}) // ww/wr/rw
	}
	return out
}

// sortedEdges canonicalizes an edge list for comparison.
func sortedEdges(es []Edge) []Edge {
	out := append([]Edge(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// graphEdges extracts g's edges restricted to the given node set.
func graphEdges(g *Graph, in map[int]bool) []Edge {
	var out []Edge
	for _, a := range g.Nodes() {
		if !in[a] {
			continue
		}
		g.Out(a, ^KindSet(0), func(b int, label KindSet) {
			if !in[b] {
				return
			}
			for _, k := range label.Kinds() {
				out = append(out, Edge{From: a, To: b, Kind: k})
			}
		})
	}
	return sortedEdges(out)
}

func TestFrozenMatchesSubgraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := New()
		g.AddEdges(randomEdges(r, 30, 120))
		var sub []int
		in := map[int]bool{}
		for n := 0; n < 30; n += 2 {
			if g.HasNode(n) {
				sub = append(sub, n)
				in[n] = true
			}
		}
		f := NewFrozen(g, sub)
		want := g.Subgraph(sub)
		if f.NumNodes() != want.NumNodes() {
			t.Fatalf("trial %d: frozen has %d nodes, subgraph %d", trial, f.NumNodes(), want.NumNodes())
		}
		if got, w := sortedEdges(f.Edges()), graphEdges(want, in); !reflect.DeepEqual(got, w) {
			t.Fatalf("trial %d: frozen edges differ\n got %v\nwant %v", trial, got, w)
		}
		// Cycle search over the frozen region matches the mutable subgraph.
		got := f.Cycles(0, 1)
		wantCycles := want.AnomalousCycles(0, 1)
		if len(got) != len(wantCycles) {
			t.Fatalf("trial %d: %d frozen cycles, want %d", trial, len(got), len(wantCycles))
		}
		for i := range got {
			if CycleKey(got[i]) != CycleKey(wantCycles[i]) {
				t.Fatalf("trial %d: cycle %d = %v, want %v", trial, i, got[i], wantCycles[i])
			}
		}
	}
}

func TestFrozenDedupsAndIgnoresUnknownNodes(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 1, WW)
	f := NewFrozen(g, []int{2, 1, 2, 99})
	if !reflect.DeepEqual(f.Nodes(), []int{1, 2}) {
		t.Fatalf("nodes = %v, want [1 2]", f.Nodes())
	}
	if f.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", f.NumEdges())
	}
}

func TestFrozenCyclesMemoized(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 1, WW)
	g.AddEdge(2, 3, Realtime)
	g.AddEdge(3, 1, Realtime)
	f := NewFrozen(g, []int{1, 2, 3})
	a := f.Cycles(KSOrders, 2)
	if len(a) == 0 {
		t.Fatal("expected a cycle")
	}
	b := f.Cycles(KSOrders, 2)
	if &a[0] != &b[0] {
		t.Fatal("second query did not return the memoized slice")
	}
	if len(f.memo) != 1 {
		t.Fatalf("memo holds %d masks, want 1", len(f.memo))
	}
	// A different mask is its own entry.
	f.Cycles(0, 1)
	if len(f.memo) != 2 {
		t.Fatalf("memo holds %d masks, want 2", len(f.memo))
	}
}

func TestFrozenEncodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := New()
		g.AddEdges(randomEdges(r, 40, 150))
		// Non-contiguous, including negative-looking large ids.
		var sub []int
		for _, n := range g.Nodes() {
			if n%3 != 1 {
				sub = append(sub, n*1000)
				g.AddEdge(n, n*1000, Process)
			}
		}
		for _, n := range g.Nodes() {
			sub = append(sub, n)
		}
		f := NewFrozen(g, sub)
		enc := f.Encode(nil)
		got, err := DecodeFrozen(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(got.Nodes(), f.Nodes()) {
			t.Fatalf("trial %d: nodes differ after round trip", trial)
		}
		if !reflect.DeepEqual(sortedEdges(got.Edges()), sortedEdges(f.Edges())) {
			t.Fatalf("trial %d: edges differ after round trip", trial)
		}
	}
}

func TestFrozenEncodeEmpty(t *testing.T) {
	f := NewFrozen(New(), nil)
	got, err := DecodeFrozen(f.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Fatalf("round-tripped empty frozen has %d nodes, %d edges", got.NumNodes(), got.NumEdges())
	}
}

func TestDecodeFrozenErrors(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WW)
	g.AddEdge(2, 1, RW)
	enc := NewFrozen(g, []int{1, 2}).Encode(nil)
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": {1, 2, 3, 4},
		"truncated": enc[:len(enc)-2],
		"trailing":  append(append([]byte(nil), enc...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeFrozen(b); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestIncrRetire(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		before := randomEdges(r, 24, 80)
		after := randomEdges(r, 24, 60)
		keep := func(n int) bool { return n >= 8 }

		x := NewIncr(KSDep)
		x.AddEdges(before)
		x.DirtySCCs() // drain, as a session would before retiring
		fz := x.Retire(keep)

		// The frozen region is exactly the dead induced subgraph.
		full := New()
		full.AddEdges(before)
		in := map[int]bool{}
		var dead []int
		for _, n := range full.Nodes() {
			if !keep(n) {
				in[n] = true
				dead = append(dead, n)
			}
		}
		if !reflect.DeepEqual(sortedEdges(fz.Edges()), graphEdges(full, in)) {
			t.Fatalf("trial %d: frozen edges are not the dead induced subgraph", trial)
		}
		sort.Ints(dead)
		if !reflect.DeepEqual(fz.Nodes(), dead) {
			t.Fatalf("trial %d: frozen nodes = %v, want %v", trial, fz.Nodes(), dead)
		}

		// The rebuilt incr behaves like a fresh one fed only live edges,
		// both immediately and after further insertions.
		fresh := NewIncr(KSDep)
		for _, e := range before {
			if keep(e.From) && keep(e.To) {
				fresh.AddEdge(e.From, e.To, e.Kind)
			}
		}
		for _, e := range after {
			if keep(e.From) && keep(e.To) {
				x.AddEdge(e.From, e.To, e.Kind)
				fresh.AddEdge(e.From, e.To, e.Kind)
			}
		}
		if !sccSetsEqual(x.SCCs(), fresh.SCCs()) {
			t.Fatalf("trial %d: retired incr SCCs diverge from fresh rebuild", trial)
		}
		for _, n := range full.Nodes() {
			if !keep(n) && x.Graph().HasNode(n) {
				t.Fatalf("trial %d: retired node %d still in live graph", trial, n)
			}
		}
	}
}
