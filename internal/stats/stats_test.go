package stats

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
)

func TestComputeCompact(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Read("x")),
		op.Txn(1, 1, op.Fail, op.Append("y", 2)),
		op.Txn(2, 0, op.Info, op.Append("x", 3)),
	})
	s := Compute(h)
	if s.Ops != 3 || s.Attempts != 3 {
		t.Errorf("ops=%d attempts=%d", s.Ops, s.Attempts)
	}
	if s.Committed != 1 || s.Aborted != 1 || s.Indeterminate != 1 {
		t.Errorf("outcomes: %d/%d/%d", s.Committed, s.Aborted, s.Indeterminate)
	}
	if s.Processes != 2 || s.Keys != 2 {
		t.Errorf("procs=%d keys=%d", s.Processes, s.Keys)
	}
	if s.Reads != 1 || s.Writes != 3 {
		t.Errorf("reads=%d writes=%d", s.Reads, s.Writes)
	}
	if s.MinTxnLen != 1 || s.MaxTxnLen != 2 {
		t.Errorf("txn len %d–%d", s.MinTxnLen, s.MaxTxnLen)
	}
	if s.MaxConcurrent != 1 {
		t.Errorf("compact concurrency = %d", s.MaxConcurrent)
	}
}

func TestComputeConcurrency(t *testing.T) {
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke},
		{Index: 1, Process: 1, Type: op.Invoke},
		{Index: 2, Process: 2, Type: op.Invoke},
		{Index: 3, Process: 0, Type: op.OK},
		{Index: 4, Process: 1, Type: op.OK},
		{Index: 5, Process: 2, Type: op.OK},
	})
	s := Compute(h)
	if s.MaxConcurrent != 3 {
		t.Errorf("peak concurrency = %d, want 3", s.MaxConcurrent)
	}
}

func TestComputeEmptyHistory(t *testing.T) {
	s := Compute(history.MustNew(nil))
	if s.Ops != 0 || s.MinTxnLen != 0 || s.MaxConcurrent != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestComputeGeneratedRun(t *testing.T) {
	g := gen.New(gen.Config{MinOps: 2, MaxOps: 4}, 6)
	h := memdb.Run(memdb.RunConfig{
		Clients: 7, Txns: 300, Isolation: memdb.Serializable,
		Source: g, Seed: 6, AbortProb: 0.1, InfoProb: 0.1,
	})
	s := Compute(h)
	if s.Attempts != 300 {
		t.Errorf("attempts = %d", s.Attempts)
	}
	if s.Committed+s.Aborted+s.Indeterminate != 300 {
		t.Error("outcome counts don't sum")
	}
	if s.MaxConcurrent < 2 || s.MaxConcurrent > 7 {
		t.Errorf("peak concurrency = %d, want within [2, 7]", s.MaxConcurrent)
	}
	if s.MinTxnLen < 2 || s.MaxTxnLen > 4 {
		t.Errorf("txn length %d–%d outside generator bounds", s.MinTxnLen, s.MaxTxnLen)
	}
	// Crashed clients mint fresh process ids, so processes ≥ clients.
	if s.Processes < 7 {
		t.Errorf("processes = %d", s.Processes)
	}
}

func TestStringRendering(t *testing.T) {
	h := history.MustNew([]op.Op{op.Txn(0, 0, op.OK, op.Append("x", 1))})
	out := Compute(h).String()
	for _, want := range []string{"attempts", "processes", "micro-ops"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string missing %q:\n%s", want, out)
		}
	}
}
