// Package stats computes descriptive statistics of an observation: op
// counts by outcome, process and key counts, micro-op mix, and the
// concurrency profile over time. The §7 methodology points all live
// here: tests ran 10–30 client threads, crashed clients raise logical
// concurrency over time, and transactions carry 1–10 micro-ops — this
// package is how the CLI and the test suite verify a history actually
// has the shape an experiment claims.
package stats

import (
	"fmt"
	"strings"

	"repro/internal/history"
	"repro/internal/op"
)

// Stats summarizes one history.
type Stats struct {
	// Ops counts all events, including invokes.
	Ops int
	// Attempts counts transactions (completions of any type).
	Attempts int
	// Committed, Aborted, Indeterminate break Attempts down.
	Committed, Aborted, Indeterminate int
	// Processes counts distinct logical processes.
	Processes int
	// Keys counts distinct keys touched.
	Keys int
	// Mops counts micro-operations in completed transactions, by kind.
	Reads, Writes int
	// MinTxnLen and MaxTxnLen bound transaction sizes.
	MinTxnLen, MaxTxnLen int
	// MaxConcurrent is the peak number of simultaneously open
	// transactions (complete histories only; 1 for compact).
	MaxConcurrent int
}

// Compute gathers statistics for h.
func Compute(h *history.History) Stats {
	s := Stats{Ops: h.Len(), MinTxnLen: -1}
	procs := map[int]bool{}
	keys := map[string]bool{}
	open := 0
	for _, o := range h.Ops {
		procs[o.Process] = true
		for _, m := range o.Mops {
			keys[m.Key] = true
		}
		switch o.Type {
		case op.Invoke:
			open++
			if open > s.MaxConcurrent {
				s.MaxConcurrent = open
			}
			continue
		case op.OK:
			s.Committed++
		case op.Fail:
			s.Aborted++
		case op.Info:
			s.Indeterminate++
		}
		if open > 0 {
			open--
		}
		s.Attempts++
		n := len(o.Mops)
		if s.MinTxnLen < 0 || n < s.MinTxnLen {
			s.MinTxnLen = n
		}
		if n > s.MaxTxnLen {
			s.MaxTxnLen = n
		}
		for _, m := range o.Mops {
			if m.IsRead() {
				s.Reads++
			} else {
				s.Writes++
			}
		}
	}
	if s.MinTxnLen < 0 {
		s.MinTxnLen = 0
	}
	if h.Compact() && s.Attempts > 0 {
		s.MaxConcurrent = 1
	}
	s.Processes = len(procs)
	s.Keys = len(keys)
	return s
}

// String renders a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops: %d (%d attempts: %d ok, %d failed, %d indeterminate)\n",
		s.Ops, s.Attempts, s.Committed, s.Aborted, s.Indeterminate)
	fmt.Fprintf(&b, "processes: %d, keys: %d, peak concurrency: %d\n",
		s.Processes, s.Keys, s.MaxConcurrent)
	fmt.Fprintf(&b, "micro-ops: %d reads, %d writes; txn length %d–%d\n",
		s.Reads, s.Writes, s.MinTxnLen, s.MaxTxnLen)
	return b.String()
}
