package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/op"
)

func TestReportShape(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
	})
	res := core.Check(h, core.OptsFor(core.ListAppend, consistency.ReadCommitted))
	r := New(h, core.ListAppend, res)

	if r.Valid {
		t.Error("G1a history reported valid")
	}
	if r.Expected != "read-committed" || r.Workload != "list-append" {
		t.Errorf("expected=%q workload=%q", r.Expected, r.Workload)
	}
	if len(r.Anomalies) == 0 {
		t.Fatal("no anomalies in report")
	}
	found := false
	for _, a := range r.Anomalies {
		if a.Type == "G1a" {
			found = true
			if len(a.Txns) == 0 || a.Explanation == "" {
				t.Errorf("G1a entry incomplete: %+v", a)
			}
		}
	}
	if !found {
		t.Error("G1a missing from report")
	}
	if r.History.Attempts != 2 || r.History.Committed != 1 || r.History.Aborted != 1 {
		t.Errorf("history stats: %+v", r.History)
	}
	if len(r.Violated) == 0 || len(r.Strongest) == 0 {
		t.Error("model lists empty")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	h := history.MustNew([]op.Op{
		// Write skew: cycle witness should serialize.
		op.Txn(0, 0, op.OK, op.ReadList("x", []int{}), op.Append("y", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("y", []int{}), op.Append("x", 1)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1}), op.ReadList("y", []int{1})),
	})
	res := core.Check(h, core.OptsFor(core.ListAppend, consistency.Serializable))
	var buf bytes.Buffer
	if err := New(h, core.ListAppend, res).Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Valid {
		t.Error("write skew reported valid")
	}
	hasCycle := false
	for _, a := range back.Anomalies {
		if a.Cycle != "" && len(a.Txns) >= 2 {
			hasCycle = true
		}
	}
	if !hasCycle {
		t.Errorf("cycle witness missing: %s", buf.String())
	}
	if back.Graph.Nodes != 3 {
		t.Errorf("graph nodes = %d", back.Graph.Nodes)
	}
}

func TestCleanReport(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
	})
	res := core.Check(h, core.OptsFor(core.ListAppend, consistency.StrictSerializable))
	r := New(h, core.ListAppend, res)
	if !r.Valid || len(r.Anomalies) != 0 {
		t.Errorf("clean report: %+v", r)
	}
	if len(r.Strongest) != 1 || r.Strongest[0] != "strict-serializable" {
		t.Errorf("strongest = %v", r.Strongest)
	}
}
