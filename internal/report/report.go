// Package report renders check results for machines and humans: the
// JSON shape CI pipelines consume, and the canonical prose rendering
// shared by `elle` and `elled` — one function, so a streamed service
// report is byte-identical to a batch CLI run by construction.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/stats"
)

// Report is the JSON shape of one check.
type Report struct {
	Valid    bool     `json:"valid"`
	Expected string   `json:"expected_model"`
	Workload string   `json:"workload"`
	Violated []string `json:"violated_models"`
	// Strongest lists the maximal models the observation may satisfy.
	Strongest []string  `json:"strongest_models"`
	Anomalies []Anomaly `json:"anomalies"`
	History   History   `json:"history"`
	Graph     Graph     `json:"graph"`
}

// Anomaly is one finding.
type Anomaly struct {
	Type string `json:"type"`
	Key  string `json:"key,omitempty"`
	// Txns lists the transactions involved (cycle nodes or directly
	// implicated ops), by op index.
	Txns []int `json:"txns,omitempty"`
	// Cycle renders the witness as "T1 -rw-> T2 -ww-> T1" when present.
	Cycle string `json:"cycle,omitempty"`
	// K is the certified minimal k of a k-atomicity violation.
	K           int    `json:"k,omitempty"`
	Explanation string `json:"explanation,omitempty"`
}

// History carries the history statistics.
type History struct {
	Ops           int `json:"ops"`
	Attempts      int `json:"attempts"`
	Committed     int `json:"committed"`
	Aborted       int `json:"aborted"`
	Indeterminate int `json:"indeterminate"`
	Processes     int `json:"processes"`
	Keys          int `json:"keys"`
	MaxConcurrent int `json:"max_concurrent"`
}

// Graph carries the dependency-graph statistics.
type Graph struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	SCCs  int `json:"cyclic_components"`
}

// New assembles a Report from a check result and its history.
func New(h *history.History, workload core.Workload, res *core.CheckResult) Report {
	st := stats.Compute(h)
	r := Report{
		Valid:    res.Valid,
		Expected: string(res.Expected),
		Workload: workload.String(),
		History: History{
			Ops:           st.Ops,
			Attempts:      st.Attempts,
			Committed:     st.Committed,
			Aborted:       st.Aborted,
			Indeterminate: st.Indeterminate,
			Processes:     st.Processes,
			Keys:          st.Keys,
			MaxConcurrent: st.MaxConcurrent,
		},
		Graph: Graph{
			Nodes: res.Stats.Nodes,
			Edges: res.Stats.Edges,
			SCCs:  res.Stats.SCCs,
		},
	}
	for _, m := range res.Violated {
		r.Violated = append(r.Violated, string(m))
	}
	for _, m := range res.Strongest {
		r.Strongest = append(r.Strongest, string(m))
	}
	for _, a := range res.Anomalies {
		r.Anomalies = append(r.Anomalies, FromAnomaly(a))
	}
	return r
}

// FromAnomaly converts one detected anomaly to its JSON shape — shared
// by the full Report and by elled's status endpoint, which exposes
// provisional mid-stream findings in the same form.
func FromAnomaly(a anomaly.Anomaly) Anomaly {
	ra := Anomaly{
		Type:        string(a.Type),
		Key:         a.Key,
		K:           a.K,
		Explanation: a.Explanation,
	}
	if len(a.Cycle.Steps) > 0 {
		ra.Cycle = a.Cycle.String()
		ra.Txns = a.Cycle.Nodes()
	} else {
		for _, o := range a.Ops {
			ra.Txns = append(ra.Txns, o.Index)
		}
	}
	return ra
}

// ProseOpts tunes the human-readable rendering.
type ProseOpts struct {
	// Quiet prints only the verdict summary, no anomaly sections.
	Quiet bool
	// DOT appends a Graphviz rendering to each cycle witness.
	DOT bool
}

// Prose writes the human-readable report: the verdict summary followed
// by one section per anomaly with its explanation. It is the single
// rendering used by `elle` (batch and -follow) and `elled`'s report
// endpoint, which is what makes their outputs byte-identical for the
// same history and options.
func Prose(w io.Writer, res *core.CheckResult, o ProseOpts) {
	fmt.Fprint(w, res.Summary())
	if o.Quiet {
		return
	}
	for i, a := range res.Anomalies {
		fmt.Fprintf(w, "\n--- anomaly %d: %s ---\n", i+1, a.Type)
		if a.Explanation != "" {
			fmt.Fprintln(w, a.Explanation)
		}
		if o.DOT && len(a.Cycle.Steps) > 0 {
			fmt.Fprintln(w, res.Explainer.DOT(a.Cycle))
		}
	}
}

// Write emits the report as indented JSON.
func (r Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
