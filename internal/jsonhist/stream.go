package jsonhist

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/op"
	"repro/internal/par"
)

// StreamDecoder incrementally parses a JSON-lines history, yielding ops
// chunk by chunk — the bridge between a (possibly still growing) byte
// stream and the incremental checker's Feed calls.
//
// In the default (batch) tuning it behaves exactly like DecodeWith's
// internals: whole lines are gathered into ~1 MB chunks, a round of up
// to Parallelism chunks parses across the worker pool while the next
// round is read from the stream, and Next returns each round's ops in
// input order, reporting the first malformed line (in line order) just
// as the sequential decoder would.
//
// With Opts.Tail set it trades throughput for latency: one line per
// chunk, one chunk per round, no read-ahead — every line is delivered
// the moment it parses, so a paused producer (a live test run writing
// its history) never delays ops that have already arrived.
type StreamDecoder struct {
	opts DecodeOpts
	p    int
	br   *bufio.Reader

	line      int
	bytesRead int
	sizeHint  int
	readErr   error
	readDone  bool
	pending   chan []parsed
	err       error // sticky terminal state, io.EOF included
}

// NewStreamDecoder returns a decoder reading from r under opts.
func NewStreamDecoder(r io.Reader, opts DecodeOpts) *StreamDecoder {
	bufSize := 1 << 20
	if opts.Tail {
		// A tailing reader delivers small bursts; a huge buffer only
		// adds copy slack.
		bufSize = 1 << 16
	}
	d := &StreamDecoder{
		opts: opts,
		p:    par.Procs(opts.Parallelism),
		br:   bufio.NewReaderSize(r, bufSize),
	}
	// In-memory sources report their size; DecodeWith presizes its
	// collected ops slice from it.
	if l, ok := r.(interface{ Len() int }); ok {
		d.sizeHint = l.Len()
	}
	return d
}

// sizeEstimate projects the total line count of the stream from the
// source's size (when known) and the bytes-per-line ratio observed so
// far. Zero means no estimate.
func (d *StreamDecoder) sizeEstimate() int {
	if d.sizeHint <= 0 || d.bytesRead <= 0 || d.line <= 0 {
		return 0
	}
	return int(int64(d.line)*int64(d.sizeHint)/int64(d.bytesRead)) + 1
}

// Next returns the next chunk of decoded ops, in input order. It
// returns io.EOF when the stream is exhausted; any other error (a
// malformed line, a failed read) is terminal and sticky.
func (d *StreamDecoder) Next() ([]op.Op, error) {
	if d.err != nil {
		return nil, d.err
	}
	for {
		if d.pending == nil {
			round := d.readRound()
			if len(round) == 0 {
				return nil, d.terminate()
			}
			d.launch(round)
		}
		// Read the next round while the pending one parses — unless
		// tailing, where waiting for more input must never delay ops
		// already in flight.
		var next []*chunk
		if !d.opts.Tail {
			next = d.readRound()
		}
		results := <-d.pending
		d.pending = nil
		if len(next) > 0 {
			d.launch(next)
		}
		var ops []op.Op
		for _, res := range results {
			if res.err != nil {
				d.err = res.err
				return nil, d.err
			}
			ops = append(ops, res.ops...)
		}
		if len(ops) > 0 {
			return ops, nil
		}
		// A round of blank lines only: keep going.
	}
}

// terminate resolves the end of the stream into the sticky error state.
func (d *StreamDecoder) terminate() error {
	if d.readErr != nil {
		d.err = fmt.Errorf("jsonhist: %w", d.readErr)
	} else {
		d.err = io.EOF
	}
	return d.err
}

// chunkBytes resolves the per-chunk byte target.
func (d *StreamDecoder) chunkBytes() int {
	if d.opts.Tail {
		return 1 // any positive size: one line per chunk
	}
	if d.opts.ChunkBytes > 0 {
		return d.opts.ChunkBytes
	}
	return chunkTarget
}

// nextChunk gathers whole lines (of any length — long lines are
// reassembled across buffer refills) until the chunk target. Lines are
// copied into the chunk's pooled contiguous buffer as they are read, so
// the chunk never aliases the bufio window and a chunk of n lines costs
// no per-line allocations.
func (d *StreamDecoder) nextChunk() (*chunk, bool) {
	c := chunkPool.Get().(*chunk)
	c.firstLine = d.line + 1
	c.buf = c.buf[:0]
	c.ends = c.ends[:0]
	target := d.chunkBytes()
	for len(c.buf) < target && !d.readDone {
		lineStart := len(c.buf)
		var err error
		for {
			var frag []byte
			frag, err = d.br.ReadSlice('\n')
			c.buf = append(c.buf, frag...)
			if err != bufio.ErrBufferFull {
				break
			}
			// A line longer than the read buffer: keep accumulating it.
		}
		if err != nil {
			if err == io.EOF {
				// A final unterminated line is still a line.
				if len(c.buf) > lineStart {
					d.line++
					c.ends = append(c.ends, len(c.buf))
				}
			} else {
				// Drop the truncated fragment: the read failure is the
				// real error, and parsing the fragment would mask it
				// with a phantom syntax error.
				d.readErr = err
				c.buf = c.buf[:lineStart]
			}
			d.readDone = true
			break
		}
		d.line++
		c.ends = append(c.ends, len(c.buf))
	}
	if len(c.ends) == 0 {
		chunkPool.Put(c)
		return nil, false
	}
	d.bytesRead += len(c.buf)
	return c, true
}

// readRound gathers up to one worker's worth of chunks (one chunk when
// tailing).
func (d *StreamDecoder) readRound() []*chunk {
	width := d.p
	if d.opts.Tail {
		width = 1
	}
	var round []*chunk
	for len(round) < width && !d.readDone {
		if c, ok := d.nextChunk(); ok {
			round = append(round, c)
		}
	}
	return round
}

// launch starts parsing a round: inline for sequential or single-chunk
// rounds, across the worker pool otherwise.
func (d *StreamDecoder) launch(round []*chunk) {
	ch := make(chan []parsed, 1)
	if d.p <= 1 || len(round) == 1 {
		ch <- []parsed{d.parseRoundInline(round)}
	} else {
		go func(rd []*chunk) {
			ch <- par.Map(d.p, len(rd), func(i int) parsed { return d.parseChunk(rd[i]) })
		}(round)
	}
	d.pending = ch
}

func (d *StreamDecoder) parseRoundInline(round []*chunk) parsed {
	var all parsed
	for _, c := range round {
		res := d.parseChunk(c)
		if res.err != nil {
			return res
		}
		all.ops = append(all.ops, res.ops...)
	}
	return all
}

// parseChunk decodes one chunk's lines with the chunk's own scan-first
// parser (scan.go), returning its buffers to the pool when done:
// nothing the parser produces aliases the chunk buffer (keys are
// interned copies, mop slices are copied out of scratch).
func (d *StreamDecoder) parseChunk(c *chunk) parsed {
	defer chunkPool.Put(c)
	if c.parser == nil {
		c.parser = new(lineParser)
	}
	out := make([]op.Op, 0, len(c.ends))
	start := 0
	for j, end := range c.ends {
		text := c.buf[start:end]
		start = end
		if len(trimSpace(text)) == 0 {
			continue
		}
		o, err := c.parser.parse(text, d.opts.Register)
		if err != nil {
			return parsed{err: fmt.Errorf("jsonhist: line %d: %w", c.firstLine+j, err)}
		}
		out = append(out, o)
	}
	return parsed{ops: out}
}
