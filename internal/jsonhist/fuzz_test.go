package jsonhist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
)

// FuzzDecode: arbitrary input must never panic the decoder, and anything
// it accepts must survive an encode/decode round trip and a checker run.
func FuzzDecode(f *testing.F) {
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["append","x",1]]}`)
	f.Add(`{"index":0,"type":"invoke","process":0,"value":[["r","x",null]]}
{"index":1,"type":"ok","process":0,"value":[["r","x",[1,2]]]}`)
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["w",10,2],["r",10,null]]}`)
	f.Add(`{"index":0,"type":"fail","process":3,"value":[["add","s",9],["increment","c",2]]}`)
	f.Add(``)
	f.Add(`garbage`)
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["r","x",{"bad":1}]]}`)

	f.Fuzz(func(t *testing.T, input string) {
		h, err := Decode(strings.NewReader(input), false)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, h); err != nil {
			t.Fatalf("accepted history failed to encode: %v", err)
		}
		back, err := Decode(&buf, false)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != h.Len() {
			t.Fatalf("round trip changed length %d -> %d", h.Len(), back.Len())
		}
		// The checker must tolerate anything the decoder accepts.
		core.Check(h, core.OptsFor(core.ListAppend, consistency.Serializable))
		core.Check(h, core.OptsFor(core.Register, consistency.SnapshotIsolation))
	})
}
