package jsonhist

import (
	"bytes"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/op"
)

// This file is the scan-first line parser: a hand-rolled JSON scanner
// that decodes one history line straight into an op.Op with no
// intermediate rawOp, no json.RawMessage copies, and no reflection.
// It accepts exactly the lines the previous encoding/json-based decoder
// accepted (pinned by the differential fuzz target against the oracle
// in oracle_test.go); only the error *text* for rejected lines is its
// own.
//
// The envelope pass walks the object once, validating syntax and
// recording the byte span of each element of the "value" array; the mop
// pass then re-parses just those spans semantically. Member names are
// matched with the same Unicode simple folding encoding/json uses, null
// member values are no-ops, duplicate members last-win, and unknown
// members are skipped after full structural validation.

// maxNestingDepth mirrors encoding/json's composite-value depth cap so
// the scanner accepts exactly the nesting the stdlib decoder accepted.
const maxNestingDepth = 10000

// maxKeyCache bounds the per-parser interned-key cache. Real histories
// have tens of active keys; the cap only matters for adversarial
// inputs, where the cache resets rather than growing without bound.
const maxKeyCache = 4096

var (
	nameIndex   = []byte("index")
	nameType    = []byte("type")
	nameProcess = []byte("process")
	nameTime    = []byte("time")
	nameValue   = []byte("value")
)

// lineParser carries the per-chunk scratch space. One parser serves all
// lines of a chunk sequentially, so every line after the first parses
// with (amortized) zero scratch allocations. It recycles with its chunk
// through chunkPool.
type lineParser struct {
	buf      []byte
	pos      int
	depth    int
	register bool

	mops  []op.Mop          // mop scratch, copied out per op
	elems [][2]int          // "value" element spans
	ints  []int             // list-read scratch, copied out per mop
	str   []byte            // string unquote scratch
	keys  map[string]string // interned key cache

	// Copied-out Mops and list slices are carved from slab arenas: the
	// slices retain their slab, so nothing is copied twice, but a
	// million-op decode makes hundreds of slice allocations instead of
	// millions. Regions are carved exactly once from fresh slabs, so a
	// slab may serve ops of several histories without overlap.
	mopArena []op.Mop
	intArena []int
}

const arenaSlab = 4096

func (p *lineParser) allocMops(n int) []op.Mop {
	if cap(p.mopArena)-len(p.mopArena) < n {
		p.mopArena = make([]op.Mop, 0, max(arenaSlab, n))
	}
	start := len(p.mopArena)
	p.mopArena = p.mopArena[:start+n]
	return p.mopArena[start : start+n : start+n]
}

// emptyInts backs every observed-empty list read.
var emptyInts = make([]int, 0)

func (p *lineParser) allocInts(n int) []int {
	if n == 0 {
		return emptyInts
	}
	if cap(p.intArena)-len(p.intArena) < n {
		p.intArena = make([]int, 0, max(arenaSlab, n))
	}
	start := len(p.intArena)
	p.intArena = p.intArena[:start+n]
	return p.intArena[start : start+n : start+n]
}

// envelope is the decoded top-level object, the scanner's stand-in for
// rawOp. The op type is resolved eagerly per assignment (last wins, so
// an earlier bad value is forgiven by a later good one, as with the
// stdlib decoder); typeBad keeps the offending string for the error.
type envelope struct {
	index, process int64
	time           int64
	typ            op.Type
	typeSet        bool
	typeOK         bool
	typeBad        string
}

// parse decodes one line. text must be non-blank (the caller skips
// blank lines).
func (p *lineParser) parse(text []byte, register bool) (op.Op, error) {
	p.buf, p.pos, p.depth, p.register = text, 0, 0, register
	p.elems = p.elems[:0]
	var env envelope
	p.skipWS()
	if p.pos >= len(p.buf) {
		return op.Op{}, p.errUnexpectedEnd()
	}
	switch p.buf[p.pos] {
	case '{':
		if err := p.parseEnvelope(&env); err != nil {
			return op.Op{}, err
		}
	case 'n':
		// A top-level null unmarshals to the zero op, which then fails
		// the type check below — the stdlib decoder's behavior.
		if err := p.literal("null"); err != nil {
			return op.Op{}, err
		}
	default:
		return op.Op{}, p.errSyntax("history op must be a JSON object")
	}
	p.skipWS()
	if p.pos != len(p.buf) {
		return op.Op{}, p.errSyntax("trailing data after op")
	}
	return p.buildOp(&env)
}

// parseEnvelope scans the top-level object, assigning known members and
// structurally skipping unknown ones.
func (p *lineParser) parseEnvelope(env *envelope) error {
	p.pos++ // '{'
	if err := p.push(); err != nil {
		return err
	}
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == '}' {
		p.pos++
		p.depth--
		return nil
	}
	for {
		if p.pos >= len(p.buf) || p.buf[p.pos] != '"' {
			return p.errSyntax("expected object member name")
		}
		name, err := p.scanString()
		if err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) || p.buf[p.pos] != ':' {
			return p.errSyntax("expected ':' after member name")
		}
		p.pos++
		p.skipWS()
		// Member names fold-match like encoding/json field names; the
		// scratch-backed name is consumed before the next string scan.
		switch {
		case bytes.EqualFold(name, nameIndex):
			err = p.memberInt(&env.index)
		case bytes.EqualFold(name, nameType):
			err = p.memberType(env)
		case bytes.EqualFold(name, nameProcess):
			err = p.memberInt(&env.process)
		case bytes.EqualFold(name, nameTime):
			err = p.memberInt(&env.time)
		case bytes.EqualFold(name, nameValue):
			err = p.memberValue()
		default:
			err = p.skipValue()
		}
		if err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) {
			return p.errUnexpectedEnd()
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
			p.skipWS()
		case '}':
			p.pos++
			p.depth--
			return nil
		default:
			return p.errSyntax("expected ',' or '}' in object")
		}
	}
}

// memberInt assigns an integer member; null is a no-op.
func (p *lineParser) memberInt(dst *int64) error {
	if p.pos < len(p.buf) && p.buf[p.pos] == 'n' {
		return p.literal("null")
	}
	n, _, err := p.scanInt()
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

// memberType assigns the "type" member, resolving the op type in place
// so no copy of the string survives the scratch buffer (except on the
// error path).
func (p *lineParser) memberType(env *envelope) error {
	if p.pos >= len(p.buf) {
		return p.errUnexpectedEnd()
	}
	if p.buf[p.pos] == 'n' {
		return p.literal("null")
	}
	if p.buf[p.pos] != '"' {
		return p.errSyntax("op type must be a string")
	}
	s, err := p.scanString()
	if err != nil {
		return err
	}
	env.typeSet = true
	env.typeOK = true
	switch string(s) {
	case "invoke":
		env.typ = op.Invoke
	case "ok":
		env.typ = op.OK
	case "fail":
		env.typ = op.Fail
	case "info":
		env.typ = op.Info
	default:
		env.typeOK = false
		env.typeBad = string(s)
	}
	return nil
}

// memberValue records the span of each element of the "value" array; a
// repeated member last-wins. Unlike the scalar members, null is not a
// no-op here: unmarshaling null into a slice sets it to nil.
func (p *lineParser) memberValue() error {
	if p.pos >= len(p.buf) {
		return p.errUnexpectedEnd()
	}
	switch p.buf[p.pos] {
	case 'n':
		p.elems = p.elems[:0]
		return p.literal("null")
	case '[':
	default:
		return p.errSyntax("op value must be an array")
	}
	p.pos++
	if err := p.push(); err != nil {
		return err
	}
	p.elems = p.elems[:0]
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == ']' {
		p.pos++
		p.depth--
		return nil
	}
	for {
		start := p.pos
		if err := p.skipValue(); err != nil {
			return err
		}
		p.elems = append(p.elems, [2]int{start, p.pos})
		p.skipWS()
		if p.pos >= len(p.buf) {
			return p.errUnexpectedEnd()
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
			p.skipWS()
		case ']':
			p.pos++
			p.depth--
			return nil
		default:
			return p.errSyntax("expected ',' or ']' in array")
		}
	}
}

// buildOp resolves the envelope and parses the recorded mop spans.
func (p *lineParser) buildOp(env *envelope) (op.Op, error) {
	if !env.typeSet {
		return op.Op{}, fmt.Errorf("unknown op type %q", "")
	}
	if !env.typeOK {
		return op.Op{}, fmt.Errorf("unknown op type %q", env.typeBad)
	}
	o := op.Op{
		Index:   int(env.index),
		Process: int(env.process),
		Time:    env.time,
		Type:    env.typ,
	}
	if len(p.elems) == 0 {
		return o, nil
	}
	p.mops = p.mops[:0]
	for i, span := range p.elems {
		m, err := p.parseMop(span, env.typ)
		if err != nil {
			return op.Op{}, fmt.Errorf("mop %d: %w", i, err)
		}
		p.mops = append(p.mops, m)
	}
	o.Mops = p.allocMops(len(p.mops))
	copy(o.Mops, p.mops)
	return o, nil
}

// parseMop semantically parses one already-validated element span as a
// [fun, key, value] micro-op.
func (p *lineParser) parseMop(span [2]int, t op.Type) (op.Mop, error) {
	p.pos, p.depth = span[0], 0
	if p.buf[p.pos] != '[' {
		return op.Mop{}, fmt.Errorf("micro-op must be a 3-element array")
	}
	// Count elements and keep the first three spans; the count appears
	// in the arity error, so all elements are walked.
	p.pos++
	p.skipWS()
	var parts [3][2]int
	n := 0
	if p.buf[p.pos] != ']' {
		for {
			start := p.pos
			if err := p.skipValue(); err != nil {
				return op.Mop{}, err
			}
			if n < 3 {
				parts[n] = [2]int{start, p.pos}
			}
			n++
			p.skipWS()
			if p.buf[p.pos] == ']' {
				break
			}
			p.pos++ // ',' — the span was validated by the envelope pass
			p.skipWS()
		}
	}
	if n != 3 {
		return op.Mop{}, fmt.Errorf("micro-op must have 3 elements, has %d", n)
	}

	p.pos = parts[0][0]
	if p.buf[p.pos] != '"' {
		return op.Mop{}, fmt.Errorf("fun: micro-op fun must be a string")
	}
	fun, err := p.scanString()
	if err != nil {
		return op.Mop{}, fmt.Errorf("fun: %w", err)
	}
	// The fun scratch must outlive the key's string scan; the five
	// valid funs resolve to a constant before that.
	var f op.Fun
	known := true
	switch string(fun) {
	case "append":
		f = op.FAppend
	case "add":
		f = op.FAdd
	case "increment":
		f = op.FIncrement
	case "w":
		f = op.FWrite
	case "r":
		f = op.FRead
	default:
		known = false
	}

	key, err := p.parseKey(parts[1])
	if err != nil {
		return op.Mop{}, err
	}
	if !known {
		return op.Mop{}, fmt.Errorf("unknown micro-op fun %q", fun)
	}

	p.pos = parts[2][0]
	if f != op.FRead {
		if p.buf[p.pos] == 'n' {
			// A null write argument decodes as 0 (unmarshal no-op).
			return op.Mop{F: f, Key: key}, nil
		}
		arg, err := p.parseInt()
		if err != nil {
			return op.Mop{}, fmt.Errorf("write argument: %w", err)
		}
		return op.Mop{F: f, Key: key, Arg: int(arg)}, nil
	}
	if p.buf[p.pos] == 'n' {
		// A null register read in a completed (ok) op means the read
		// observed the initial nil version; anywhere else the result
		// is simply unknown. Null list reads are always unknown — an
		// observed empty list is encoded as [].
		if p.register && t == op.OK {
			return op.ReadNil(key), nil
		}
		return op.Read(key), nil
	}
	if p.register {
		v, err := p.parseInt()
		if err != nil {
			return op.Mop{}, fmt.Errorf("register read value: %w", err)
		}
		return op.ReadReg(key, int(v)), nil
	}
	if p.buf[p.pos] != '[' {
		return op.Mop{}, fmt.Errorf("list read value: must be an array of integers")
	}
	p.pos++
	p.skipWS()
	p.ints = p.ints[:0]
	if p.buf[p.pos] != ']' {
		for {
			if p.buf[p.pos] == 'n' {
				// A null element decodes as 0 (unmarshal no-op).
				p.pos += 4
				p.ints = append(p.ints, 0)
			} else {
				v, err := p.parseInt()
				if err != nil {
					return op.Mop{}, fmt.Errorf("list read value: %w", err)
				}
				p.ints = append(p.ints, int(v))
			}
			p.skipWS()
			if p.buf[p.pos] == ']' {
				break
			}
			p.pos++ // ','
			p.skipWS()
		}
	}
	list := p.allocInts(len(p.ints))
	copy(list, p.ints)
	return op.ReadList(key, list), nil
}

// parseKey decodes a mop key span: a string, or an integer rendered in
// canonical decimal (so numeric keys match their string spellings).
func (p *lineParser) parseKey(span [2]int) (string, error) {
	p.pos = span[0]
	c := p.buf[p.pos]
	if c == '"' {
		s, err := p.scanString()
		if err != nil {
			return "", fmt.Errorf("key: %w", err)
		}
		return p.intern(s), nil
	}
	if c == '-' || (c >= '0' && c <= '9') {
		if _, tok, err := p.scanInt(); err == nil {
			if string(tok) == "-0" {
				tok = tok[1:]
			}
			return p.intern(tok), nil
		}
	}
	raw := p.buf[span[0]:span[1]]
	return "", fmt.Errorf("key: key must be a string or integer: %s", raw)
}

// parseInt parses an integral number token at pos.
func (p *lineParser) parseInt() (int64, error) {
	c := p.buf[p.pos]
	if c != '-' && (c < '0' || c > '9') {
		return 0, fmt.Errorf("not an integer")
	}
	n, _, err := p.scanInt()
	return n, err
}

// scanInt parses a JSON number token that must be integral and fit in
// int64, accumulating the value during the digit scan (no second pass
// through strconv on the hot path). It also returns the raw token,
// which for an accepted value is canonical decimal except for "-0".
func (p *lineParser) scanInt() (int64, []byte, error) {
	b, i := p.buf, p.pos
	start := i
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	digits := i
	var u uint64
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			u = u*10 + uint64(b[i]-'0')
			i++
		}
	default:
		return 0, nil, p.errSyntax("invalid number")
	}
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, nil, p.errSyntax("number is not an integer")
	}
	tok := b[start:i]
	if i-digits > 18 {
		// 19+ digits may wrap uint64; resolve exactly, rejecting
		// overflow as the stdlib decoder did.
		n, err := strconv.ParseInt(string(tok), 10, 64)
		if err != nil {
			return 0, nil, p.errSyntax("integer %s overflows", tok)
		}
		p.pos = i
		return n, tok, nil
	}
	p.pos = i
	if neg {
		return -int64(u), tok, nil
	}
	return int64(u), tok, nil
}

// intern returns b as a cached string, allocating only on first sight
// of a key.
func (p *lineParser) intern(b []byte) string {
	if s, ok := p.keys[string(b)]; ok {
		return s
	}
	if p.keys == nil {
		p.keys = make(map[string]string, 64)
	} else if len(p.keys) >= maxKeyCache {
		clear(p.keys)
	}
	s := string(b)
	p.keys[s] = s
	return s
}

// skipValue structurally validates one JSON value of any shape.
func (p *lineParser) skipValue() error {
	if p.pos >= len(p.buf) {
		return p.errUnexpectedEnd()
	}
	switch c := p.buf[p.pos]; {
	case c == '{':
		return p.skipObject()
	case c == '[':
		return p.skipArray()
	case c == '"':
		return p.validateString()
	case c == '-' || (c >= '0' && c <= '9'):
		_, _, err := p.scanNumber()
		return err
	case c == 't':
		return p.literal("true")
	case c == 'f':
		return p.literal("false")
	case c == 'n':
		return p.literal("null")
	default:
		return p.errSyntax("unexpected character %q", c)
	}
}

func (p *lineParser) skipObject() error {
	p.pos++
	if err := p.push(); err != nil {
		return err
	}
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == '}' {
		p.pos++
		p.depth--
		return nil
	}
	for {
		if p.pos >= len(p.buf) || p.buf[p.pos] != '"' {
			return p.errSyntax("expected object member name")
		}
		if err := p.validateString(); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) || p.buf[p.pos] != ':' {
			return p.errSyntax("expected ':' after member name")
		}
		p.pos++
		p.skipWS()
		if err := p.skipValue(); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) {
			return p.errUnexpectedEnd()
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
			p.skipWS()
		case '}':
			p.pos++
			p.depth--
			return nil
		default:
			return p.errSyntax("expected ',' or '}' in object")
		}
	}
}

func (p *lineParser) skipArray() error {
	p.pos++
	if err := p.push(); err != nil {
		return err
	}
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == ']' {
		p.pos++
		p.depth--
		return nil
	}
	for {
		if err := p.skipValue(); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) {
			return p.errUnexpectedEnd()
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
			p.skipWS()
		case ']':
			p.pos++
			p.depth--
			return nil
		default:
			return p.errSyntax("expected ',' or ']' in array")
		}
	}
}

// scanString decodes the string starting at p.buf[p.pos] (which must be
// '"'). The result aliases the input when escape-free and valid UTF-8,
// and the parser's scratch otherwise; either way it is only valid until
// the next scanString call.
func (p *lineParser) scanString() ([]byte, error) {
	b := p.buf
	i := p.pos + 1
	start := i
	for i < len(b) {
		c := b[i]
		if c == '"' {
			p.pos = i + 1
			return b[start:i], nil
		}
		if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
			break
		}
		i++
	}
	// Slow path: escapes, control characters, or non-ASCII bytes.
	s := append(p.str[:0], b[start:i]...)
	for i < len(b) {
		switch c := b[i]; {
		case c == '"':
			p.pos = i + 1
			p.str = s
			return s, nil
		case c < 0x20:
			return nil, p.errSyntax("control character %#02x in string", c)
		case c == '\\':
			i++
			if i >= len(b) {
				return nil, p.errUnexpectedEnd()
			}
			switch b[i] {
			case '"', '\\', '/':
				s = append(s, b[i])
				i++
			case 'b':
				s, i = append(s, '\b'), i+1
			case 'f':
				s, i = append(s, '\f'), i+1
			case 'n':
				s, i = append(s, '\n'), i+1
			case 'r':
				s, i = append(s, '\r'), i+1
			case 't':
				s, i = append(s, '\t'), i+1
			case 'u':
				r := getu4(b[i+1:])
				if r < 0 {
					return nil, p.errSyntax("invalid \\u escape in string")
				}
				i += 5
				if utf16.IsSurrogate(r) {
					// A \u-escaped low surrogate may follow to complete
					// the pair; anything else (including a malformed
					// escape, left for the next iteration) decodes the
					// lone surrogate as U+FFFD — stdlib behavior.
					var r2 rune = -1
					if i+1 < len(b) && b[i] == '\\' && b[i+1] == 'u' {
						r2 = getu4(b[i+2:])
					}
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						i += 6
						r = dec
					} else {
						r = utf8.RuneError
					}
				}
				s = utf8.AppendRune(s, r)
			default:
				return nil, p.errSyntax("invalid escape character %q in string", b[i])
			}
		case c >= utf8.RuneSelf:
			r, size := utf8.DecodeRune(b[i:])
			if r == utf8.RuneError && size == 1 {
				// Invalid UTF-8 decodes byte-by-byte to U+FFFD.
				s = utf8.AppendRune(s, utf8.RuneError)
				i++
			} else {
				s = append(s, b[i:i+size]...)
				i += size
			}
		default:
			s = append(s, c)
			i++
		}
	}
	return nil, p.errUnexpectedEnd()
}

// validateString checks string syntax without building the value:
// escapes must be well-formed and control characters are rejected, but
// raw non-ASCII bytes pass through untouched (invalid UTF-8 is accepted
// here, replaced only when a value is built).
func (p *lineParser) validateString() error {
	b := p.buf
	i := p.pos + 1
	for i < len(b) {
		switch c := b[i]; {
		case c == '"':
			p.pos = i + 1
			return nil
		case c < 0x20:
			return p.errSyntax("control character %#02x in string", c)
		case c == '\\':
			i++
			if i >= len(b) {
				return p.errUnexpectedEnd()
			}
			switch b[i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i++
			case 'u':
				if getu4(b[i+1:]) < 0 {
					return p.errSyntax("invalid \\u escape in string")
				}
				i += 5
			default:
				return p.errSyntax("invalid escape character %q in string", b[i])
			}
		default:
			i++
		}
	}
	return p.errUnexpectedEnd()
}

// getu4 decodes four hex digits, or -1.
func getu4(b []byte) rune {
	if len(b) < 4 {
		return -1
	}
	var r rune
	for _, c := range b[:4] {
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c -= 'a' - 10
		case c >= 'A' && c <= 'F':
			c -= 'A' - 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// scanNumber validates one JSON number token at pos, reporting whether
// it is integral (no fraction or exponent).
func (p *lineParser) scanNumber() (tok []byte, integral bool, err error) {
	b, i := p.buf, p.pos
	start := i
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, false, p.errSyntax("invalid number")
	}
	integral = true
	if i < len(b) && b[i] == '.' {
		integral = false
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, false, p.errSyntax("invalid number")
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		integral = false
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, false, p.errSyntax("invalid number")
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	p.pos = i
	return b[start:i], integral, nil
}

// literal consumes an exact keyword.
func (p *lineParser) literal(lit string) error {
	if len(p.buf)-p.pos < len(lit) || string(p.buf[p.pos:p.pos+len(lit)]) != lit {
		return p.errSyntax("invalid literal")
	}
	p.pos += len(lit)
	return nil
}

// push enters one composite value, enforcing the depth cap.
func (p *lineParser) push() error {
	p.depth++
	if p.depth > maxNestingDepth {
		return p.errSyntax("exceeded max depth")
	}
	return nil
}

func (p *lineParser) skipWS() {
	b := p.buf
	i := p.pos
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r' || b[i] == '\n') {
		i++
	}
	p.pos = i
}

func (p *lineParser) errSyntax(format string, args ...any) error {
	return fmt.Errorf("invalid JSON at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *lineParser) errUnexpectedEnd() error {
	return fmt.Errorf("invalid JSON at offset %d: unexpected end of input", p.pos)
}
