package jsonhist

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/op"
)

// drain collects every op a StreamDecoder yields plus its terminal
// error (io.EOF mapped to nil).
func drain(d *StreamDecoder) ([]op.Op, error) {
	var ops []op.Op
	for {
		chunk, err := d.Next()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, chunk...)
	}
}

// FuzzStreamDecoder: the streaming decoder must never panic on
// arbitrary input, and every tuning — sequential, tiny parallel
// chunks, tail mode — must decode the same ops and report the same
// first error as the plain sequential decode.
func FuzzStreamDecoder(f *testing.F) {
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["append","x",1]]}`)
	f.Add(`{"index":0,"type":"invoke","process":0,"value":[["r","x",null]]}
{"index":1,"type":"ok","process":0,"value":[["r","x",[1,2]]]}`)
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["w",10,2],["r",10,null]]}`)
	f.Add("garbage\n" + `{"index":1,"type":"ok","process":0,"value":[]}`)
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["r","x",{"bad":1}]]}`)
	f.Add(strings.Repeat(`{"index":0,"type":"ok","process":0,"value":[]}`+"\n", 4))

	f.Fuzz(func(t *testing.T, input string) {
		for _, register := range []bool{false, true} {
			base, baseErr := drain(NewStreamDecoder(strings.NewReader(input),
				DecodeOpts{Register: register, Parallelism: 1}))
			tunings := []DecodeOpts{
				{Register: register, Parallelism: 2, ChunkBytes: 7},
				{Register: register, Parallelism: 4, ChunkBytes: 64},
				{Register: register, Parallelism: 1, Tail: true},
			}
			for _, opts := range tunings {
				got, err := drain(NewStreamDecoder(strings.NewReader(input), opts))
				if (err == nil) != (baseErr == nil) {
					t.Fatalf("opts %+v: error presence diverged: %v vs %v", opts, err, baseErr)
				}
				if err != nil {
					if err.Error() != baseErr.Error() {
						t.Fatalf("opts %+v: error text diverged:\n  got:  %v\n  want: %v",
							opts, err, baseErr)
					}
					continue
				}
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("opts %+v: decoded %d ops, want %d (first divergence matters)",
						opts, len(got), len(base))
				}
			}
		}
	})
}
