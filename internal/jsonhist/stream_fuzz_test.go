package jsonhist

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/op"
)

// oracleDecode decodes input line by line with the preserved
// encoding/json oracle (oracle_test.go), returning the ops, the
// 1-based number of the first bad line (0 if none), and its error.
func oracleDecode(input string, register bool) ([]op.Op, int, error) {
	var ops []op.Op
	lines := strings.Split(input, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1] // a trailing newline does not open a new line
	}
	for i, line := range lines {
		if len(trimSpace([]byte(line))) == 0 {
			continue
		}
		o, err := oracleParseLine([]byte(line), register)
		if err != nil {
			return nil, i + 1, err
		}
		ops = append(ops, o)
	}
	return ops, 0, nil
}

// drain collects every op a StreamDecoder yields plus its terminal
// error (io.EOF mapped to nil).
func drain(d *StreamDecoder) ([]op.Op, error) {
	var ops []op.Op
	for {
		chunk, err := d.Next()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, chunk...)
	}
}

// FuzzStreamDecoder holds two differential properties on arbitrary
// input: (1) every tuning — sequential, tiny parallel chunks, tail
// mode — decodes the same ops and reports the same first error as the
// plain sequential decode; (2) the scan-first parser agrees with the
// preserved encoding/json oracle on acceptance, on the decoded ops,
// and on which line is the first bad one (error *text* is the
// scanner's own and is not compared).
func FuzzStreamDecoder(f *testing.F) {
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["append","x",1]]}`)
	f.Add(`{"index":0,"type":"invoke","process":0,"value":[["r","x",null]]}
{"index":1,"type":"ok","process":0,"value":[["r","x",[1,2]]]}`)
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["w",10,2],["r",10,null]]}`)
	f.Add("garbage\n" + `{"index":1,"type":"ok","process":0,"value":[]}`)
	f.Add(`{"index":0,"type":"ok","process":0,"value":[["r","x",{"bad":1}]]}`)
	f.Add(strings.Repeat(`{"index":0,"type":"ok","process":0,"value":[]}`+"\n", 4))

	f.Fuzz(func(t *testing.T, input string) {
		for _, register := range []bool{false, true} {
			base, baseErr := drain(NewStreamDecoder(strings.NewReader(input),
				DecodeOpts{Register: register, Parallelism: 1}))

			oracleOps, oracleLine, oracleErr := oracleDecode(input, register)
			if (baseErr == nil) != (oracleErr == nil) {
				t.Fatalf("acceptance diverged from oracle: scanner err %v, oracle err %v",
					baseErr, oracleErr)
			}
			if baseErr != nil {
				var gotLine int
				if _, err := fmt.Sscanf(baseErr.Error(), "jsonhist: line %d:", &gotLine); err != nil {
					t.Fatalf("unparseable decode error %q", baseErr)
				}
				if gotLine != oracleLine {
					t.Fatalf("first bad line diverged: scanner %d (%v), oracle %d (%v)",
						gotLine, baseErr, oracleLine, oracleErr)
				}
			} else if !reflect.DeepEqual(base, oracleOps) {
				t.Fatalf("decoded ops diverged from oracle: %d vs %d ops",
					len(base), len(oracleOps))
			}
			tunings := []DecodeOpts{
				{Register: register, Parallelism: 2, ChunkBytes: 7},
				{Register: register, Parallelism: 4, ChunkBytes: 64},
				{Register: register, Parallelism: 1, Tail: true},
			}
			for _, opts := range tunings {
				got, err := drain(NewStreamDecoder(strings.NewReader(input), opts))
				if (err == nil) != (baseErr == nil) {
					t.Fatalf("opts %+v: error presence diverged: %v vs %v", opts, err, baseErr)
				}
				if err != nil {
					if err.Error() != baseErr.Error() {
						t.Fatalf("opts %+v: error text diverged:\n  got:  %v\n  want: %v",
							opts, err, baseErr)
					}
					continue
				}
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("opts %+v: decoded %d ops, want %d (first divergence matters)",
						opts, len(got), len(base))
				}
			}
		}
	})
}
