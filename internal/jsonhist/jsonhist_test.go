package jsonhist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
)

func TestDecodeListHistory(t *testing.T) {
	in := `
{"index":0,"type":"invoke","process":0,"value":[["append",3,1],["r",4,null]]}
{"index":1,"type":"ok","process":0,"value":[["append",3,1],["r",4,[1,2]]]}
{"index":2,"type":"invoke","process":1,"value":[["append",3,2]]}
{"index":3,"type":"fail","process":1,"value":[["append",3,2]]}
`
	h, err := Decode(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 4 || h.Compact() {
		t.Fatalf("len=%d compact=%v", h.Len(), h.Compact())
	}
	ok := h.Ops[1]
	if ok.Type != op.OK || len(ok.Mops) != 2 {
		t.Fatalf("op 1 = %v", ok)
	}
	if ok.Mops[0].F != op.FAppend || ok.Mops[0].Key != "3" || ok.Mops[0].Arg != 1 {
		t.Errorf("append mop = %+v", ok.Mops[0])
	}
	if !ok.Mops[1].ListKnown() || len(ok.Mops[1].List) != 2 {
		t.Errorf("read mop = %+v", ok.Mops[1])
	}
	// The invoke's read is unknown.
	if h.Ops[0].Mops[1].ListKnown() {
		t.Error("invoke read should be unknown")
	}
}

func TestDecodeRegisterHistory(t *testing.T) {
	in := `{"index":0,"type":"ok","process":0,"value":[["w",10,2],["r",10,null],["r",11,5]]}`
	h, err := Decode(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	m := h.Ops[0].Mops
	if m[0].F != op.FWrite || m[0].Arg != 2 {
		t.Errorf("write = %+v", m[0])
	}
	if !m[1].RegKnown || !m[1].RegNil {
		t.Errorf("null read in ok op should be nil: %+v", m[1])
	}
	if !m[2].RegKnown || m[2].Reg != 5 {
		t.Errorf("value read = %+v", m[2])
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`{"index":0,"type":"bogus","process":0,"value":[]}`,
		`{"index":0,"type":"ok","process":0,"value":[["append",3]]}`,
		`{"index":0,"type":"ok","process":0,"value":[["frob",3,1]]}`,
		`{"index":0,"type":"ok","process":0,"value":[["append",{},1]]}`,
		`not json at all`,
	}
	for _, in := range cases {
		if _, err := Decode(strings.NewReader(in), false); err == nil {
			t.Errorf("decode accepted %q", in)
		}
	}
}

func TestEmptyLinesSkipped(t *testing.T) {
	in := "\n\n{\"index\":0,\"type\":\"ok\",\"process\":0,\"value\":[]}\n\n"
	h, err := Decode(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Errorf("len = %d", h.Len())
	}
}

func TestRoundTripList(t *testing.T) {
	orig := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.ReadList("y", []int{})),
		op.Txn(1, 1, op.Fail, op.Append("x", 2)),
		op.Txn(2, 2, op.Info, op.Append("x", 3), op.Read("y")),
	})
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), orig.Len())
	}
	for i := range orig.Ops {
		a, b := orig.Ops[i], back.Ops[i]
		if a.Type != b.Type || a.Process != b.Process || len(a.Mops) != len(b.Mops) {
			t.Fatalf("op %d: %v != %v", i, a, b)
		}
		for j := range a.Mops {
			if a.Mops[j].String() != b.Mops[j].String() {
				t.Fatalf("mop %d/%d: %v != %v", i, j, a.Mops[j], b.Mops[j])
			}
		}
	}
}

func TestRoundTripRegister(t *testing.T) {
	orig := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Write("r", 1), op.ReadNil("s"), op.ReadReg("r", 1)),
	})
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	m := back.Ops[0].Mops
	if !m[1].RegNil || !m[1].RegKnown {
		t.Errorf("nil read lost: %+v", m[1])
	}
	if m[2].Reg != 1 {
		t.Errorf("value read lost: %+v", m[2])
	}
}

func TestRoundTripGeneratedRun(t *testing.T) {
	g := gen.New(gen.Config{}, 3)
	h := memdb.Run(memdb.RunConfig{
		Clients: 5, Txns: 200, Isolation: memdb.Serializable,
		Source: g, Seed: 3, InfoProb: 0.1, AbortProb: 0.1,
	})
	var buf bytes.Buffer
	if err := Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("length %d != %d", back.Len(), h.Len())
	}
	for i := range h.Ops {
		if h.Ops[i].String() != back.Ops[i].String() {
			t.Fatalf("op %d: %v != %v", i, h.Ops[i], back.Ops[i])
		}
	}
}

func TestNumericKeys(t *testing.T) {
	in := `{"index":0,"type":"ok","process":0,"value":[["append",42,1]]}`
	h, err := Decode(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if h.Ops[0].Mops[0].Key != "42" {
		t.Errorf("numeric key = %q", h.Ops[0].Mops[0].Key)
	}
}
