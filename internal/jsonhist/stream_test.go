package jsonhist

import (
	"io"
	"strings"
	"testing"

	"repro/internal/op"
)

func TestStreamDecoderMatchesDecode(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 500; i++ {
		b.WriteString(`{"index":`)
		b.WriteString(itoa(i))
		b.WriteString(`,"type":"ok","process":0,"value":[["append",1,`)
		b.WriteString(itoa(i))
		b.WriteString(`]]}` + "\n")
	}
	input := b.String()
	want, err := Decode(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []DecodeOpts{
		{Parallelism: 1},
		{Parallelism: 4, ChunkBytes: 128},
		{Parallelism: 4, Tail: true},
	} {
		d := NewStreamDecoder(strings.NewReader(input), opts)
		var ops []op.Op
		chunks := 0
		for {
			c, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%+v: %v", opts, err)
			}
			chunks++
			ops = append(ops, c...)
		}
		if len(ops) != len(want.Ops) {
			t.Fatalf("%+v: got %d ops, want %d", opts, len(ops), len(want.Ops))
		}
		for i := range ops {
			if ops[i].Index != want.Ops[i].Index {
				t.Fatalf("%+v: op %d has index %d, want %d", opts, i, ops[i].Index, want.Ops[i].Index)
			}
		}
		if opts.Tail && chunks != 500 {
			t.Fatalf("tail mode delivered %d chunks, want one per line", chunks)
		}
		if opts.ChunkBytes == 128 && chunks < 10 {
			t.Fatalf("small chunks delivered only %d Next calls", chunks)
		}
		// The terminal state is sticky.
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("after EOF: %v", err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestStreamDecoderErrorOrder(t *testing.T) {
	// The malformed line must be reported with its line number, and the
	// error must be sticky, exactly like the batch decoder.
	input := `{"index":0,"type":"ok","process":0,"value":[]}
not json
{"index":2,"type":"ok","process":0,"value":[]}
`
	_, werr := Decode(strings.NewReader(input), false)
	if werr == nil {
		t.Fatal("batch decode should fail")
	}
	d := NewStreamDecoder(strings.NewReader(input), DecodeOpts{Parallelism: 4})
	var got error
	for {
		_, err := d.Next()
		if err != nil {
			got = err
			break
		}
	}
	if got == io.EOF || got == nil {
		t.Fatal("stream decode should fail")
	}
	if got.Error() != werr.Error() {
		t.Fatalf("stream error %q != batch error %q", got, werr)
	}
	if _, err := d.Next(); err == nil || err.Error() != got.Error() {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestStreamDecoderBlankAndUnterminated(t *testing.T) {
	input := "\n\n" + `{"index":0,"type":"ok","process":0,"value":[["r","x",null]]}` // no trailing newline
	d := NewStreamDecoder(strings.NewReader(input), DecodeOpts{Parallelism: 2})
	ops, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Index != 0 {
		t.Fatalf("ops = %+v", ops)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
