// Package jsonhist reads and writes histories as JSON lines, one op per
// line, in a format close to Jepsen's EDN histories:
//
//	{"index":0,"type":"invoke","process":0,"value":[["append",3,1],["r",4,null]]}
//	{"index":1,"type":"ok","process":0,"value":[["append",3,1],["r",4,[1,2]]]}
//
// Micro-ops are 3-element arrays [fun, key, value]. For reads, the value
// is null (unknown), a list of ints (list read), or an int / null-marker
// for register reads; for writes it is the written int. Keys may be
// strings or numbers.
//
// Decoding uses a hand-rolled structural scanner (scan.go) rather than
// encoding/json: ~an order of magnitude fewer allocations and several
// times the throughput, while accepting exactly the same lines (pinned
// by the differential oracle in oracle_test.go). See docs/FORMATS.md;
// for a binary format that is faster still, see package binhist.
package jsonhist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro/internal/history"
	"repro/internal/op"
)

// DecodeOpts configures decoding.
type DecodeOpts struct {
	// Register selects register read decoding (value is an int or null)
	// over list read decoding (value is an array or null).
	Register bool
	// Parallelism caps the workers parsing chunks of lines: <= 0 means
	// one per CPU, 1 parses sequentially. The decoded history is
	// identical at every setting.
	Parallelism int
	// ChunkBytes is how many raw history bytes one parse unit carries;
	// <= 0 means ~1 MB, which amortizes fan-out against JSON parsing
	// for batch decoding.
	ChunkBytes int
	// Tail tunes the streaming decoder for following a live source:
	// every line is emitted as soon as it parses — no chunk batching,
	// no read-ahead — so a paused producer never delays delivery of
	// what has already arrived. Batch decoding ignores it.
	Tail bool
}

// Decode reads a JSON-lines history. Blank lines are skipped. The
// register flag selects register read decoding (value is an int or null)
// over list read decoding (value is an array or null).
func Decode(r io.Reader, register bool) (*history.History, error) {
	return DecodeWith(r, DecodeOpts{Register: register, Parallelism: 1})
}

// chunkTarget is how many raw history bytes one parse unit carries. Big
// enough that fan-out overhead vanishes against JSON parsing; small
// enough that a round of chunks never approaches the history's size.
const chunkTarget = 1 << 20

// chunk is one parse unit: a run of consecutive lines, copied out of the
// read buffer so decoding never retains the underlying stream. Lines are
// packed back to back in one contiguous buffer with recorded end
// offsets — one allocation per chunk rather than one per line — and the
// buffers (and the parser's scratch space) recycle through chunkPool
// once parsed.
type chunk struct {
	firstLine int
	buf       []byte // line bytes, concatenated (newlines included)
	ends      []int  // end offset of each line within buf
	parser    *lineParser
}

// chunkPool recycles chunk buffers between reads; a decode of an n-line
// history reuses a handful of chunk buffers instead of allocating n
// line slices.
var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// parsed is one chunk's decode result.
type parsed struct {
	ops []op.Op
	err error
}

// DecodeWith reads a JSON-lines history, streaming the input in ~1 MB
// chunks of whole lines and parsing chunks across a worker pool. Raw
// bytes are dropped as soon as their chunk is parsed, so multi-million-op
// histories never live in memory twice; ops are collected in input order,
// and the first malformed line (in line order) is reported just as the
// sequential decoder would. Reading and parsing are pipelined: while one
// round of chunks parses, the next round is read from the stream.
//
// DecodeWith is NewStreamDecoder + collect-everything; callers that
// want the ops as they parse (the incremental checker) drive the
// StreamDecoder directly. When the source reports its size (bytes and
// strings readers do), the collected slice is presized from the
// observed bytes-per-line ratio instead of growing by doubling.
func DecodeWith(r io.Reader, opts DecodeOpts) (*history.History, error) {
	d := NewStreamDecoder(r, opts)
	var ops []op.Op
	for {
		chunk, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ops == nil {
			if est := d.sizeEstimate(); est > len(chunk) {
				ops = make([]op.Op, 0, est)
			}
		}
		ops = append(ops, chunk...)
	}
	return history.New(ops)
}

func trimSpace(b []byte) []byte {
	start, end := 0, len(b)
	for start < end && (b[start] == ' ' || b[start] == '\t' || b[start] == '\r' || b[start] == '\n') {
		start++
	}
	for end > start && (b[end-1] == ' ' || b[end-1] == '\t' || b[end-1] == '\r' || b[end-1] == '\n') {
		end--
	}
	return b[start:end]
}

// Encode writes h as JSON lines. Lines are built with appenders into
// one reused buffer — no reflection, no per-op allocations — and are
// byte-identical to what encoding/json produced for the same history
// (member order, omitted zero time, HTML-escaped strings; pinned
// against the oracle encoder in oracle_test.go).
func Encode(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range h.Ops {
		var err error
		buf, err = appendOp(buf[:0], &h.Ops[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendOp appends one encoded op line, newline included.
func appendOp(dst []byte, o *op.Op) ([]byte, error) {
	dst = append(dst, `{"index":`...)
	dst = strconv.AppendInt(dst, int64(o.Index), 10)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, o.Type.String())
	dst = append(dst, `,"process":`...)
	dst = strconv.AppendInt(dst, int64(o.Process), 10)
	if o.Time != 0 {
		dst = append(dst, `,"time":`...)
		dst = strconv.AppendInt(dst, o.Time, 10)
	}
	dst = append(dst, `,"value":`...)
	if len(o.Mops) == 0 {
		return append(dst, "null}\n"...), nil
	}
	dst = append(dst, '[')
	for i := range o.Mops {
		if i > 0 {
			dst = append(dst, ',')
		}
		var err error
		dst, err = appendMop(dst, o.Mops[i])
		if err != nil {
			return dst, err
		}
	}
	return append(dst, "]}\n"...), nil
}

// appendMop appends one encoded [fun, key, value] micro-op.
func appendMop(dst []byte, m op.Mop) ([]byte, error) {
	var fun string
	switch m.F {
	case op.FAppend:
		fun = "append"
	case op.FAdd:
		fun = "add"
	case op.FIncrement:
		fun = "increment"
	case op.FWrite:
		fun = "w"
	case op.FRead:
		fun = "r"
	default:
		return dst, fmt.Errorf("jsonhist: cannot encode fun %v", m.F)
	}
	dst = append(dst, '[', '"')
	dst = append(dst, fun...)
	dst = append(dst, '"', ',')
	dst = appendJSONString(dst, m.Key)
	dst = append(dst, ',')
	switch {
	case m.F != op.FRead:
		dst = strconv.AppendInt(dst, int64(m.Arg), 10)
	case m.List != nil:
		dst = append(dst, '[')
		for i, v := range m.List {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(v), 10)
		}
		dst = append(dst, ']')
	case m.RegKnown && !m.RegNil:
		dst = strconv.AppendInt(dst, int64(m.Reg), 10)
	default:
		dst = append(dst, "null"...)
	}
	return append(dst, ']'), nil
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s quoted and escaped exactly as
// encoding/json does with its default HTML escaping: control
// characters, quotes, backslashes, <, >, &, U+2028/U+2029 escaped, and
// invalid UTF-8 replaced with �.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"', '\\':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control characters, plus <, >, and & (HTML
				// escaping), render as \u00xx.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
