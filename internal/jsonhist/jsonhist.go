// Package jsonhist reads and writes histories as JSON lines, one op per
// line, in a format close to Jepsen's EDN histories:
//
//	{"index":0,"type":"invoke","process":0,"value":[["append",3,1],["r",4,null]]}
//	{"index":1,"type":"ok","process":0,"value":[["append",3,1],["r",4,[1,2]]]}
//
// Micro-ops are 3-element arrays [fun, key, value]. For reads, the value
// is null (unknown), a list of ints (list read), or an int / null-marker
// for register reads; for writes it is the written int. Keys may be
// strings or numbers.
package jsonhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/history"
	"repro/internal/op"
)

// rawOp is the wire form of one op.
type rawOp struct {
	Index   int               `json:"index"`
	Type    string            `json:"type"`
	Process int               `json:"process"`
	Time    int64             `json:"time,omitempty"`
	Value   []json.RawMessage `json:"value"`
}

// DecodeOpts configures decoding.
type DecodeOpts struct {
	// Register selects register read decoding (value is an int or null)
	// over list read decoding (value is an array or null).
	Register bool
	// Parallelism caps the workers parsing chunks of lines: <= 0 means
	// one per CPU, 1 parses sequentially. The decoded history is
	// identical at every setting.
	Parallelism int
	// ChunkBytes is how many raw history bytes one parse unit carries;
	// <= 0 means ~1 MB, which amortizes fan-out against JSON parsing
	// for batch decoding.
	ChunkBytes int
	// Tail tunes the streaming decoder for following a live source:
	// every line is emitted as soon as it parses — no chunk batching,
	// no read-ahead — so a paused producer never delays delivery of
	// what has already arrived. Batch decoding ignores it.
	Tail bool
}

// Decode reads a JSON-lines history. Blank lines are skipped. The
// register flag selects register read decoding (value is an int or null)
// over list read decoding (value is an array or null).
func Decode(r io.Reader, register bool) (*history.History, error) {
	return DecodeWith(r, DecodeOpts{Register: register, Parallelism: 1})
}

// chunkTarget is how many raw history bytes one parse unit carries. Big
// enough that fan-out overhead vanishes against JSON parsing; small
// enough that a round of chunks never approaches the history's size.
const chunkTarget = 1 << 20

// chunk is one parse unit: a run of consecutive lines, copied out of the
// read buffer so decoding never retains the underlying stream. Lines are
// packed back to back in one contiguous buffer with recorded end
// offsets — one allocation per chunk rather than one per line — and the
// buffers recycle through chunkPool once parsed.
type chunk struct {
	firstLine int
	buf       []byte // line bytes, concatenated (newlines included)
	ends      []int  // end offset of each line within buf
}

// chunkPool recycles chunk buffers between reads; a decode of an n-line
// history reuses a handful of chunk buffers instead of allocating n
// line slices.
var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// parsed is one chunk's decode result.
type parsed struct {
	ops []op.Op
	err error
}

// DecodeWith reads a JSON-lines history, streaming the input in ~1 MB
// chunks of whole lines and parsing chunks across a worker pool. Raw
// bytes are dropped as soon as their chunk is parsed, so multi-million-op
// histories never live in memory twice; ops are collected in input order,
// and the first malformed line (in line order) is reported just as the
// sequential decoder would. Reading and parsing are pipelined: while one
// round of chunks parses, the next round is read from the stream.
//
// DecodeWith is NewStreamDecoder + collect-everything; callers that
// want the ops as they parse (the incremental checker) drive the
// StreamDecoder directly.
func DecodeWith(r io.Reader, opts DecodeOpts) (*history.History, error) {
	d := NewStreamDecoder(r, opts)
	var ops []op.Op
	for {
		chunk, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ops = append(ops, chunk...)
	}
	return history.New(ops)
}

func decodeOp(raw rawOp, register bool) (op.Op, error) {
	var t op.Type
	switch raw.Type {
	case "invoke":
		t = op.Invoke
	case "ok":
		t = op.OK
	case "fail":
		t = op.Fail
	case "info":
		t = op.Info
	default:
		return op.Op{}, fmt.Errorf("unknown op type %q", raw.Type)
	}
	o := op.Op{Index: raw.Index, Process: raw.Process, Time: raw.Time, Type: t}
	for i, rm := range raw.Value {
		m, err := decodeMop(rm, register, t)
		if err != nil {
			return op.Op{}, fmt.Errorf("mop %d: %w", i, err)
		}
		o.Mops = append(o.Mops, m)
	}
	return o, nil
}

func decodeMop(rm json.RawMessage, register bool, t op.Type) (op.Mop, error) {
	var parts []json.RawMessage
	if err := json.Unmarshal(rm, &parts); err != nil {
		return op.Mop{}, err
	}
	if len(parts) != 3 {
		return op.Mop{}, fmt.Errorf("micro-op must have 3 elements, has %d", len(parts))
	}
	var fun string
	if err := json.Unmarshal(parts[0], &fun); err != nil {
		return op.Mop{}, fmt.Errorf("fun: %w", err)
	}
	key, err := decodeKey(parts[1])
	if err != nil {
		return op.Mop{}, fmt.Errorf("key: %w", err)
	}
	switch fun {
	case "append", "add", "increment", "w":
		var arg int
		if err := json.Unmarshal(parts[2], &arg); err != nil {
			return op.Mop{}, fmt.Errorf("write argument: %w", err)
		}
		switch fun {
		case "append":
			return op.Append(key, arg), nil
		case "add":
			return op.Add(key, arg), nil
		case "increment":
			return op.Increment(key, arg), nil
		default:
			return op.Write(key, arg), nil
		}
	case "r":
		if isNull(parts[2]) {
			// A null register read in a completed (ok) op means the read
			// observed the initial nil version; anywhere else the result
			// is simply unknown. Null list reads are always unknown —
			// an observed empty list is encoded as [].
			if register && t == op.OK {
				return op.ReadNil(key), nil
			}
			return op.Read(key), nil
		}
		if register {
			var v int
			if err := json.Unmarshal(parts[2], &v); err != nil {
				return op.Mop{}, fmt.Errorf("register read value: %w", err)
			}
			return op.ReadReg(key, v), nil
		}
		var list []int
		if err := json.Unmarshal(parts[2], &list); err != nil {
			return op.Mop{}, fmt.Errorf("list read value: %w", err)
		}
		return op.ReadList(key, list), nil
	default:
		return op.Mop{}, fmt.Errorf("unknown micro-op fun %q", fun)
	}
}

func decodeKey(rm json.RawMessage) (string, error) {
	var s string
	if err := json.Unmarshal(rm, &s); err == nil {
		return s, nil
	}
	var n int64
	if err := json.Unmarshal(rm, &n); err == nil {
		return strconv.FormatInt(n, 10), nil
	}
	return "", fmt.Errorf("key must be a string or integer: %s", string(rm))
}

func isNull(rm json.RawMessage) bool {
	t := trimSpace(rm)
	return string(t) == "null"
}

func trimSpace(b []byte) []byte {
	start, end := 0, len(b)
	for start < end && (b[start] == ' ' || b[start] == '\t' || b[start] == '\r' || b[start] == '\n') {
		start++
	}
	for end > start && (b[end-1] == ' ' || b[end-1] == '\t' || b[end-1] == '\r' || b[end-1] == '\n') {
		end--
	}
	return b[start:end]
}

// Encode writes h as JSON lines.
func Encode(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	for _, o := range h.Ops {
		raw := rawOp{
			Index:   o.Index,
			Process: o.Process,
			Time:    o.Time,
			Type:    o.Type.String(),
		}
		for _, m := range o.Mops {
			rm, err := encodeMop(m, o.Type)
			if err != nil {
				return err
			}
			raw.Value = append(raw.Value, rm)
		}
		line, err := json.Marshal(raw)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeMop(m op.Mop, t op.Type) (json.RawMessage, error) {
	var fun string
	var val any
	switch m.F {
	case op.FAppend:
		fun, val = "append", m.Arg
	case op.FAdd:
		fun, val = "add", m.Arg
	case op.FIncrement:
		fun, val = "increment", m.Arg
	case op.FWrite:
		fun, val = "w", m.Arg
	case op.FRead:
		fun = "r"
		switch {
		case m.List != nil:
			val = m.List
		case m.RegKnown && !m.RegNil:
			val = m.Reg
		default:
			val = nil
		}
	default:
		return nil, fmt.Errorf("jsonhist: cannot encode fun %v", m.F)
	}
	return json.Marshal([]any{fun, m.Key, val})
}
