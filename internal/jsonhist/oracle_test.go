package jsonhist

// This file preserves the package's previous encoding/json-based
// decoder and encoder, verbatim, as a differential oracle for the
// scan-first parser (scan.go) and the appender encoder (jsonhist.go):
//
//   - the scanner must accept exactly the lines the oracle accepts,
//     and decode accepted lines to identical ops (error *text* for
//     rejected lines is the scanner's own);
//   - Encode must produce byte-identical output to the oracle encoder.
//
// TestScannerMatchesOracle pins a corpus of tricky lines here;
// FuzzStreamDecoder (stream_fuzz_test.go) extends the comparison to
// arbitrary inputs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/op"
)

// rawOp is the wire form of one op, as the stdlib decoder saw it.
type rawOp struct {
	Index   int               `json:"index"`
	Type    string            `json:"type"`
	Process int               `json:"process"`
	Time    int64             `json:"time,omitempty"`
	Value   []json.RawMessage `json:"value"`
}

// oracleParseLine is the old per-line decode path: json.Unmarshal into
// rawOp, then oracleDecodeOp.
func oracleParseLine(text []byte, register bool) (op.Op, error) {
	var raw rawOp
	if err := json.Unmarshal(text, &raw); err != nil {
		return op.Op{}, err
	}
	return oracleDecodeOp(raw, register)
}

func oracleDecodeOp(raw rawOp, register bool) (op.Op, error) {
	var t op.Type
	switch raw.Type {
	case "invoke":
		t = op.Invoke
	case "ok":
		t = op.OK
	case "fail":
		t = op.Fail
	case "info":
		t = op.Info
	default:
		return op.Op{}, fmt.Errorf("unknown op type %q", raw.Type)
	}
	o := op.Op{Index: raw.Index, Process: raw.Process, Time: raw.Time, Type: t}
	for i, rm := range raw.Value {
		m, err := oracleDecodeMop(rm, register, t)
		if err != nil {
			return op.Op{}, fmt.Errorf("mop %d: %w", i, err)
		}
		o.Mops = append(o.Mops, m)
	}
	return o, nil
}

func oracleDecodeMop(rm json.RawMessage, register bool, t op.Type) (op.Mop, error) {
	var parts []json.RawMessage
	if err := json.Unmarshal(rm, &parts); err != nil {
		return op.Mop{}, err
	}
	if len(parts) != 3 {
		return op.Mop{}, fmt.Errorf("micro-op must have 3 elements, has %d", len(parts))
	}
	var fun string
	if err := json.Unmarshal(parts[0], &fun); err != nil {
		return op.Mop{}, fmt.Errorf("fun: %w", err)
	}
	key, err := oracleDecodeKey(parts[1])
	if err != nil {
		return op.Mop{}, fmt.Errorf("key: %w", err)
	}
	switch fun {
	case "append", "add", "increment", "w":
		var arg int
		if err := json.Unmarshal(parts[2], &arg); err != nil {
			return op.Mop{}, fmt.Errorf("write argument: %w", err)
		}
		switch fun {
		case "append":
			return op.Append(key, arg), nil
		case "add":
			return op.Add(key, arg), nil
		case "increment":
			return op.Increment(key, arg), nil
		default:
			return op.Write(key, arg), nil
		}
	case "r":
		if string(trimSpace(parts[2])) == "null" {
			if register && t == op.OK {
				return op.ReadNil(key), nil
			}
			return op.Read(key), nil
		}
		if register {
			var v int
			if err := json.Unmarshal(parts[2], &v); err != nil {
				return op.Mop{}, fmt.Errorf("register read value: %w", err)
			}
			return op.ReadReg(key, v), nil
		}
		var list []int
		if err := json.Unmarshal(parts[2], &list); err != nil {
			return op.Mop{}, fmt.Errorf("list read value: %w", err)
		}
		return op.ReadList(key, list), nil
	default:
		return op.Mop{}, fmt.Errorf("unknown micro-op fun %q", fun)
	}
}

func oracleDecodeKey(rm json.RawMessage) (string, error) {
	var s string
	if err := json.Unmarshal(rm, &s); err == nil {
		return s, nil
	}
	var n int64
	if err := json.Unmarshal(rm, &n); err == nil {
		return strconv.FormatInt(n, 10), nil
	}
	return "", fmt.Errorf("key must be a string or integer: %s", string(rm))
}

// oracleEncode is the old reflection-based encoder.
func oracleEncode(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	for _, o := range h.Ops {
		raw := rawOp{
			Index:   o.Index,
			Process: o.Process,
			Time:    o.Time,
			Type:    o.Type.String(),
		}
		for _, m := range o.Mops {
			rm, err := oracleEncodeMop(m)
			if err != nil {
				return err
			}
			raw.Value = append(raw.Value, rm)
		}
		line, err := json.Marshal(raw)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func oracleEncodeMop(m op.Mop) (json.RawMessage, error) {
	var fun string
	var val any
	switch m.F {
	case op.FAppend:
		fun, val = "append", m.Arg
	case op.FAdd:
		fun, val = "add", m.Arg
	case op.FIncrement:
		fun, val = "increment", m.Arg
	case op.FWrite:
		fun, val = "w", m.Arg
	case op.FRead:
		fun = "r"
		switch {
		case m.List != nil:
			val = m.List
		case m.RegKnown && !m.RegNil:
			val = m.Reg
		default:
			val = nil
		}
	default:
		return nil, fmt.Errorf("jsonhist: cannot encode fun %v", m.F)
	}
	return json.Marshal([]any{fun, m.Key, val})
}

// scannerLines is a corpus of lines chosen to probe every known
// divergence risk between a hand-rolled scanner and encoding/json.
var scannerLines = []string{
	// Plain valid lines.
	`{"index":0,"type":"invoke","process":0,"value":[["append","x",1],["r","y",null]]}`,
	`{"index":1,"type":"ok","process":0,"time":5,"value":[["append","x",1],["r","y",[1,2]]]}`,
	`{"index":2,"type":"fail","process":-3,"value":null}`,
	`{"index":3,"type":"info","process":0,"value":[]}`,
	`{"index":4,"type":"ok","process":0,"value":[["r",7,[]]]}`,
	// Whitespace, member order, unknown members.
	` { "value" : [["w", "k", 3]] , "type" : "ok" , "index" : 9 } `,
	"\t{\"type\":\"ok\",\"extra\":{\"deep\":[1,{\"a\":null}]},\"index\":1}\r",
	// Fold-matched member names, duplicates (last wins), null no-ops.
	`{"INDEX":7,"Type":"ok","pRoCeSs":2}`,
	`{"index":1,"index":2,"type":"fail","type":"ok"}`,
	`{"index":5,"type":null,"value":null}`,
	`{"type":"bogus","type":"ok","index":1}`,
	`{"value":[["r","x",null]],"value":null,"type":"ok"}`,
	`{"value":[["nope"]],"value":[["r","x",null]],"type":"ok"}`,
	`{"proceſs":4,"type":"ok"}`, // long s folds to "process"
	// Numbers: limits, zeros, rejects.
	`{"index":9223372036854775807,"type":"ok","process":-9223372036854775808}`,
	`{"index":-0,"type":"ok"}`,
	`{"index":01,"type":"ok"}`,
	`{"index":1.5,"type":"ok"}`,
	`{"index":1e3,"type":"ok"}`,
	`{"index":9223372036854775808,"type":"ok"}`,
	`{"index": +1,"type":"ok"}`,
	`{"time":1e999,"type":"ok"}`,
	`{"unknown":1e999,"type":"ok"}`,
	`{"unknown":0.5e+10,"type":"ok"}`,
	// Strings: escapes, surrogates, raw and invalid UTF-8, controls.
	`{"type":"ok","value":[["w","\u0078\t\"quoted\"",1]]}`,
	`{"type":"ok","value":[["w","\ud83d\ude00",1]]}`,
	`{"type":"ok","value":[["w","\ud800 lone",1]]}`,
	`{"type":"ok","value":[["w","\udc00\ud800",1]]}`,
	`{"type":"ok","value":[["w","\ud800\ud83d\ude00",1]]}`,
	"{\"type\":\"ok\",\"value\":[[\"w\",\"raw\xffbyte\",1]]}",
	"{\"type\":\"ok\",\"value\":[[\"w\",\"ctrl\x01\",1]]}",
	`{"type":"ok","value":[["w","bad\q",1]]}`,
	`{"type":"ok","value":[["w","bad\u12G4",1]]}`,
	`{"type":"ok","value":[["w","unterminated`,
	// Top level shapes.
	`null`,
	`nullx`,
	`{}`,
	`[]`,
	`42`,
	`"op"`,
	`{"type":"ok"} trailing`,
	`{"type":"ok"}{"type":"ok"}`,
	// Mop shapes: arity, funs, keys, values.
	`{"type":"ok","value":[["r"]]}`,
	`{"type":"ok","value":[["r","x",null,4]]}`,
	`{"type":"ok","value":[[null,"x",1]]}`,
	`{"type":"ok","value":[["frob","x",1]]}`,
	`{"type":"ok","value":[["frob",{},1]]}`,
	`{"type":"ok","value":[["w",true,1]]}`,
	`{"type":"ok","value":[["w",-0,1]]}`,
	`{"type":"ok","value":[["w",007,1]]}`,
	`{"type":"ok","value":[["w",1.25,1]]}`,
	`{"type":"ok","value":[["w","x",null]]}`,
	`{"type":"ok","value":[["w","x","5"]]}`,
	`{"type":"ok","value":[["w","x",1.5]]}`,
	`{"type":"ok","value":[["append","x",9223372036854775808]]}`,
	`{"type":"ok","value":[["r","x",[1,null,-3]]]}`,
	`{"type":"ok","value":[["r","x",[1,[2]]]]}`,
	`{"type":"ok","value":[["r","x",{"a":1}]]}`,
	`{"type":"ok","value":[["r","x",5]]}`,
	`{"type":"ok","value":[["r","x", null ]]}`,
	`{"type":"invoke","value":[["r","x",null]]}`,
	`{"type":"ok","value":"mops"}`,
	`{"type":"ok","value":[17]}`,
	// Syntax probes.
	`{"type":"ok",}`,
	`{"type" "ok"}`,
	`{"type":}`,
	`{"a":1 "b":2}`,
	`{"a":tru}`,
	`{"a":truely}`,
	`{"a":nan}`,
	// Deep nesting around the stdlib's 10000 cap.
	`{"deep":` + strings.Repeat("[", 9998) + strings.Repeat("]", 9998) + `,"type":"ok"}`,
	`{"deep":` + strings.Repeat("[", 10001) + strings.Repeat("]", 10001) + `,"type":"ok"}`,
}

// TestScannerMatchesOracle pins scanner/oracle agreement — acceptance
// and decoded ops — across the corpus, under both read modes.
func TestScannerMatchesOracle(t *testing.T) {
	p := new(lineParser)
	for _, line := range scannerLines {
		for _, register := range []bool{false, true} {
			want, werr := oracleParseLine([]byte(line), register)
			got, gerr := p.parse([]byte(line), register)
			if (werr == nil) != (gerr == nil) {
				t.Errorf("register=%v line %q:\n  oracle err:  %v\n  scanner err: %v",
					register, line, werr, gerr)
				continue
			}
			if werr == nil && !reflect.DeepEqual(got, want) {
				t.Errorf("register=%v line %q:\n  oracle:  %+v\n  scanner: %+v",
					register, line, want, got)
			}
		}
	}
}

// TestEncodeMatchesOracle pins byte-identical encoding on a history
// that exercises every string-escaping and value shape.
func TestEncodeMatchesOracle(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Read("x")),
		op.Txn(1, 0, op.OK, op.Append("x", -12), op.ReadList("x", []int{1, -2, 3})),
		op.Txn(2, 1, op.Fail, op.Write("key \"quoted\" \\slash\t\n", 7)),
		op.Txn(3, 2, op.Info, op.ReadList("empty", []int{})),
		{Index: 4, Process: -1, Time: -99, Type: op.OK, Mops: []op.Mop{
			op.ReadNil("reg"), op.ReadReg("reg", 1<<50),
			op.Add("html <&> key", 0), op.Increment("ctrl\x01\x1f", -1),
			op.Write("uni \u2028\u2029 \U0001F600 sep", 2),
			op.Write("bad utf8 \xff\xfe", 3),
		}},
		op.Txn(5, 0, op.OK),
	})
	var got, want bytes.Buffer
	if err := Encode(&got, h); err != nil {
		t.Fatal(err)
	}
	if err := oracleEncode(&want, h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("encodings diverge:\n got: %q\nwant: %q", got.Bytes(), want.Bytes())
	}
	// The fixture mixes register and list reads, so a whole-history
	// re-decode is only checked for scanner/oracle agreement per line.
	p := new(lineParser)
	for _, line := range bytes.Split(got.Bytes(), []byte("\n")) {
		if len(trimSpace(line)) == 0 {
			continue
		}
		for _, register := range []bool{false, true} {
			want, werr := oracleParseLine(line, register)
			got, gerr := p.parse(line, register)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("register=%v re-decode of %q: oracle err %v, scanner err %v",
					register, line, werr, gerr)
			}
			if werr == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("register=%v re-decode of %q diverged", register, line)
			}
		}
	}
}
