package jsonhist

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/memdb"
)

// TestDecodeWithMatchesSequential round-trips a generated history and
// checks the chunked parallel decoder reproduces the sequential decode
// exactly, across worker counts and for histories spanning many chunks.
func TestDecodeWithMatchesSequential(t *testing.T) {
	g := gen.New(gen.Config{ActiveKeys: 10, MaxWritesPerKey: 50}, 3)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: 3000, Isolation: memdb.Serializable,
		Source: g, Seed: 3, InfoProb: 0.05,
	})
	var buf bytes.Buffer
	if err := Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	base, err := Decode(bytes.NewReader(raw), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1, 2, 3, 8} {
		got, err := DecodeWith(bytes.NewReader(raw), DecodeOpts{Parallelism: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if got.Len() != base.Len() {
			t.Fatalf("p=%d: %d ops, want %d", p, got.Len(), base.Len())
		}
		for i := range got.Ops {
			if !reflect.DeepEqual(got.Ops[i], base.Ops[i]) {
				t.Fatalf("p=%d: op %d = %+v, want %+v", p, i, got.Ops[i], base.Ops[i])
			}
		}
	}
}

// TestDecodeWithLongLines checks the chunked reader reassembles lines
// longer than the read buffer (which the old Scanner capped at 16 MB).
func TestDecodeWithLongLines(t *testing.T) {
	// One op whose read value is a very long list: the encoded line
	// exceeds the 1 MB chunk target several times over.
	var list strings.Builder
	list.WriteString("[")
	for i := 0; i < 1<<19; i++ {
		if i > 0 {
			list.WriteString(",")
		}
		fmt.Fprintf(&list, "%d", i+1)
	}
	list.WriteString("]")
	line := fmt.Sprintf(`{"index":0,"type":"ok","process":0,"value":[["r",0,%s]]}`, list.String())

	h, err := DecodeWith(strings.NewReader(line), DecodeOpts{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 || len(h.Ops[0].Mops[0].List) != 1<<19 {
		t.Fatalf("long line decoded wrong: %d ops", h.Len())
	}
}

// TestDecodeWithFirstErrorWins checks that with several malformed lines
// across chunks, the reported error is the first one in line order, as
// the sequential decoder reports it.
func TestDecodeWithFirstErrorWins(t *testing.T) {
	// Enough lines to span several 1 MB chunks, so the two bad lines
	// land in different parse units.
	var b strings.Builder
	for i := 0; i < 40000; i++ {
		fmt.Fprintf(&b, `{"index":%d,"type":"ok","process":0,"value":[["append",0,%d]]}`+"\n", i, i+1)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	lines[12000] = `{"index":12000,"type":"bogus"}`
	lines[35000] = `not json`
	in := strings.Join(lines, "\n")

	_, err := DecodeWith(strings.NewReader(in), DecodeOpts{Parallelism: 8})
	if err == nil || !strings.Contains(err.Error(), "line 12001") {
		t.Fatalf("err = %v, want first error at line 12001", err)
	}
}

// failingReader yields its data, then a non-EOF error — a disk or
// network fault mid-stream.
type failingReader struct {
	data []byte
	err  error
	off  int
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestDecodeWithReadErrorNotMasked checks a mid-stream I/O error is
// reported as itself, not as a phantom parse error of the line it
// truncated.
func TestDecodeWithReadErrorNotMasked(t *testing.T) {
	data := []byte(`{"index":0,"type":"ok","process":0,"value":[["append",0,1]]}
{"index":1,"type":"ok","process":0,"value":[["append",0,2]]}
{"index":2,"type":"ok","proc`)
	boom := errors.New("disk exploded")
	for _, p := range []int{1, 4} {
		_, err := DecodeWith(&failingReader{data: data, err: boom}, DecodeOpts{Parallelism: p})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("p=%d: err = %v, want wrapped %v", p, err, boom)
		}
	}
}
