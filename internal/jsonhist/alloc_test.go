package jsonhist

import (
	"bytes"
	"strings"
	"testing"
)

// TestDecodeAllocsPerLine pins sequential per-line decode to its
// allocation budget. With the scan-first parser the measured cost of
// this 3-mop line is ~2 allocations — the exact-size Mops copy and the
// list-read copy; keys hit the parser's interned cache, scratch
// buffers recycle with the chunk, and the chunked reader contributes
// nothing per line. A breach means a per-line allocation crept back
// into the decode hot path (the budget leaves headroom for runtime
// drift, not for new per-line work; the stdlib decoder this replaced
// measured ~79 here).
func TestDecodeAllocsPerLine(t *testing.T) {
	line := `{"index":0,"type":"ok","process":3,"value":[["append",8,117],["r",9,[1,2,3,4,5]],["append",8,118]]}`
	const lines = 500
	const budget = 5.0 // per line
	input := []byte(strings.Repeat(line+"\n", lines))
	allocs := testing.AllocsPerRun(20, func() {
		d := NewStreamDecoder(bytes.NewReader(input), DecodeOpts{Parallelism: 1})
		if _, err := drain(d); err != nil {
			t.Fatal(err)
		}
	})
	perLine := allocs / lines
	t.Logf("decode allocations per line: %.2f (budget %.0f)", perLine, budget)
	if perLine > budget {
		t.Fatalf("per-line decode allocates %.2f; budget is %.0f", perLine, budget)
	}
}

// TestDecodeChunkingAllocsAmortize pins the chunk machinery itself:
// decoding the same input as one chunk or as many small chunks must
// cost nearly the same, proving chunk buffers recycle instead of
// allocating per chunk boundary.
func TestDecodeChunkingAllocsAmortize(t *testing.T) {
	line := `{"index":0,"type":"ok","process":3,"value":[["append",8,1]]}`
	const lines = 400
	input := []byte(strings.Repeat(line+"\n", lines))
	measure := func(chunkBytes int) float64 {
		return testing.AllocsPerRun(20, func() {
			d := NewStreamDecoder(bytes.NewReader(input),
				DecodeOpts{Parallelism: 1, ChunkBytes: chunkBytes})
			if _, err := drain(d); err != nil {
				t.Fatal(err)
			}
		})
	}
	one := measure(1 << 20)        // whole input in one chunk
	many := measure(len(line) * 4) // ~100 chunks
	perExtraChunk := (many - one) / 100
	t.Logf("allocs one-chunk=%.0f many-chunks=%.0f (+%.2f per extra chunk)", one, many, perExtraChunk)
	// ~7 today: the round channel and result slices; crucially O(1) per
	// chunk, independent of the lines inside it.
	if perExtraChunk > 12 {
		t.Fatalf("each chunk boundary costs %.2f allocations; want O(1) per chunk (<= 12)", perExtraChunk)
	}
}
