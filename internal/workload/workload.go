// Package workload is the pluggable-analyzer seam of the checker: it
// defines the one interface every workload analyzer implements, the one
// options struct they all consume, and a name-keyed registry the core
// checker and the CLIs drive instead of hard-coded workload enums.
//
// The paper's architecture (§3–§5) treats workloads — list-append,
// rw-register, set-add, counter, bank — as interchangeable sources of
// version-order inference feeding a single dependency-graph/cycle-search
// core. This package makes that interchangeability literal: an analyzer
// turns a history into a dependency graph, a list of non-cycle
// anomalies, and an explainer for rendering cycle witnesses; the core
// neither knows nor cares which datatype produced them.
//
// Adding a workload is a one-package change: implement Analyzer, call
// Register from an init function, and blank-import the package from
// internal/workload/all. Registration carries the hooks the tooling
// needs alongside the analyzer itself — which generator and engine
// semantics produce histories for the workload, and how its JSON reads
// decode — so `elle`, `ellegen`, and the test harnesses all discover
// new workloads without edits.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/anomaly"
	"repro/internal/explain"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/memdb"
)

// Name identifies a registered workload. The canonical names of the
// built-in analyzers are exported below for convenience; third-party
// workloads need no constant here — any Name a package registers under
// is immediately checkable.
type Name string

// Canonical names of the built-in workloads.
const (
	ListAppend Name = "list-append"
	RWRegister Name = "rw-register"
	SetAdd     Name = "set-add"
	Counter    Name = "counter"
	Bank       Name = "bank"
	KAtomic    Name = "katomic"
)

// String returns the canonical name.
func (n Name) String() string { return string(n) }

// Opts is the single options struct shared by every analyzer. Each
// analyzer consumes the fields that apply to its datatype and ignores
// the rest, so one value configures a check regardless of workload.
type Opts struct {
	// Parallelism caps the worker pool used for per-key inference and
	// per-transaction checks: <= 0 means one worker per CPU, 1 runs
	// fully sequentially. Every analyzer is byte-identical at every
	// setting.
	Parallelism int

	// DetectLostUpdates enables the real-time lost-update inference for
	// list-append histories: a committed append missing from a longest
	// read invoked after the append's transaction completed. Sound only
	// against databases claiming a real-time-consistent model.
	DetectLostUpdates bool

	// InitialState infers nil <x v for every non-initial register
	// version v (rw-register).
	InitialState bool
	// WritesFollowReads infers v <x v' when one transaction reads v and
	// then writes v' to the same key (rw-register, bank).
	WritesFollowReads bool
	// LinearizableKeys infers version orders from the real-time order
	// of transactions touching a key, as per-key linearizability
	// permits (rw-register).
	LinearizableKeys bool
	// SequentialKeys infers version orders from each process's own
	// session order (rw-register).
	SequentialKeys bool

	// BankTotal is the expected total balance across all accounts of a
	// bank history. 0 means infer it from the history's opening
	// deposit (the first committed all-write transaction).
	BankTotal int

	// MemoryBudget, when > 0, bounds a streaming session's resident
	// memory: roughly the last MemoryBudget completions stay fully
	// resident, while settled prefixes — closed spans behind the window,
	// quiescent keys' caches, frozen graph regions — are retired into
	// compact encoded segments. Finish still returns an Analysis
	// byte-identical to the batch analyzer (it rehydrates the retired
	// segments), so the budget trades finish-time work for feed-phase
	// memory. Batch analyzers ignore it.
	MemoryBudget int
	// SpillDir, when non-empty and MemoryBudget > 0, spills retired
	// segments to an unlinked temporary file in that directory instead
	// of holding their encoded bytes in memory. Empty keeps segments in
	// memory.
	SpillDir string
}

// DefaultOpts enables every inference rule, matching the paper's most
// thorough (Dgraph, §7.4) configuration. Callers checking weaker models
// should disable LinearizableKeys; core.OptsFor does.
func DefaultOpts() Opts {
	return Opts{
		InitialState:      true,
		WritesFollowReads: true,
		LinearizableKeys:  true,
		SequentialKeys:    true,
	}
}

// Analysis is what every analyzer produces: the inferred dependency
// graph, the non-cycle anomalies discovered during inference, and the
// explainer that renders cycle witnesses found later by the core's
// cycle search.
type Analysis struct {
	// Graph holds the inferred ww, wr, and rw transaction
	// dependencies. Analyzers that cannot infer dependencies (counter)
	// return an empty graph, never nil.
	Graph *graph.Graph
	// Anomalies are the non-cycle anomalies found during inference, in
	// the analyzer's deterministic report order.
	Anomalies []anomaly.Anomaly
	// Explainer renders cycles against this analysis's ops and version
	// orders.
	Explainer *explain.Explainer
}

// Analyzer turns one observed history into an Analysis. Implementations
// must be deterministic: the same history and options produce the same
// Analysis (graph, anomaly order, explanations) at every Parallelism.
type Analyzer interface {
	Analyze(h *history.History, opts Opts) Analysis
}

// AnalyzerFunc adapts a function to the Analyzer interface.
type AnalyzerFunc func(h *history.History, opts Opts) Analysis

// Analyze calls f.
func (f AnalyzerFunc) Analyze(h *history.History, opts Opts) Analysis { return f(h, opts) }

// Info is one registry entry: the analyzer plus the hooks the
// surrounding tooling (generator, engine runner, JSON decoder, CLIs)
// uses to produce and parse histories for the workload.
type Info struct {
	// Name is the canonical workload name, e.g. "list-append".
	Name Name
	// Aliases are accepted alternative spellings on CLI flags, e.g.
	// "list".
	Aliases []string
	// Analyzer performs dependency inference for the workload.
	Analyzer Analyzer
	// Incremental, when non-nil, supplies native streaming sessions for
	// the workload (see BeginSession). Workloads without one stream
	// through the generic buffer-then-batch adapter.
	Incremental Incremental
	// RegisterReads selects register decoding for JSON read values
	// (scalar rather than list observations).
	RegisterReads bool
	// Gen selects the generator semantics that produce transaction
	// bodies for this workload.
	Gen gen.Workload
	// DB selects the engine read/execution semantics for this workload.
	DB memdb.Workload
}

var (
	mu       sync.RWMutex
	registry = map[string]Info{}
	byAlias  = map[string]Name{}
)

// Register adds a workload to the registry. It panics on a duplicate
// name or alias, or a nil analyzer: registration happens in package
// init functions, where a conflict is a programming error.
func Register(info Info) {
	mu.Lock()
	defer mu.Unlock()
	if info.Name == "" || info.Analyzer == nil {
		panic("workload: Register requires a name and an analyzer")
	}
	if _, dup := registry[string(info.Name)]; dup {
		panic(fmt.Sprintf("workload: %q registered twice", info.Name))
	}
	if _, dup := byAlias[string(info.Name)]; dup {
		panic(fmt.Sprintf("workload: %q already registered as an alias", info.Name))
	}
	for _, a := range info.Aliases {
		if _, dup := byAlias[a]; dup {
			panic(fmt.Sprintf("workload: alias %q registered twice", a))
		}
	}
	registry[string(info.Name)] = info
	byAlias[string(info.Name)] = info.Name
	for _, a := range info.Aliases {
		byAlias[a] = info.Name
	}
}

// Lookup resolves a canonical name or alias to its registry entry.
func Lookup(name string) (Info, bool) {
	mu.RLock()
	defer mu.RUnlock()
	canonical, ok := byAlias[name]
	if !ok {
		return Info{}, false
	}
	return registry[string(canonical)], true
}

// All returns every registered workload, sorted by canonical name.
func All() []Info {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the canonical names of every registered workload,
// sorted — what the CLIs print when handed an unknown workload.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, info := range all {
		out[i] = string(info.Name)
	}
	return out
}

// NameList renders the registered names as one comma-separated string
// for error messages and flag help.
func NameList() string { return strings.Join(Names(), ", ") }
