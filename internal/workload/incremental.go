package workload

import (
	"errors"

	"repro/internal/anomaly"
	"repro/internal/history"
	"repro/internal/op"
)

// Delta is the outcome of one Feed: what the chunk made visible.
//
// Mid-stream anomalies are provisional findings: each one is evidence
// the final analysis will normally confirm (same Type on the same
// Key), though its exact witness may still grow — a duplicate write
// can gain a third writer, a version order can extend. Anomalies whose
// provability is not monotone under history extension (a garbage read's
// element may be appended later; a lost update needs the final version
// order) are never surfaced mid-stream.
//
// One caveat keeps the contract honest: a finding's evidence can
// itself be destroyed by a later chunk when the history is structurally
// broken. A provisional G1a leans on a value having a unique, aborted
// writer; if a later transaction writes the same supposedly-unique
// value, recoverability is gone, and the final report carries the
// duplicate-write anomaly instead of the G1a it superseded. Likewise a
// provisional cycle can lean on a version order a later incompatible
// read replaces. In those cases the finding is superseded by the
// structural anomaly that destroyed its evidence, not confirmed. The
// definitive set, in the definitive order, is always the one Finish
// returns.
type Delta struct {
	// Anomalies newly surfaced by this chunk, deduplicated against
	// everything surfaced by earlier feeds of the same session.
	Anomalies []anomaly.Anomaly
	// Ops is the total number of completion ops ingested so far.
	Ops int
}

// Session is one in-progress incremental analysis. Ops are fed in
// chunks, in ascending index order across all feeds; each feed
// validates the chunk, updates the session's per-key version orders,
// indices, and dependency edges rather than recomputing them from
// scratch, and reports the anomalies the chunk made provable. Finish
// completes the stream and returns the full Analysis — byte-identical
// to running the batch Analyzer over the concatenation of every chunk.
// History exposes the session's validated accumulation, so callers
// (core.Stream) need not keep — and re-validate — a second copy of the
// ops; call it once, after Finish.
//
// Sessions are single-goroutine: Feed and Finish must not be called
// concurrently. Internally they may fan work out across
// Opts.Parallelism workers, with the same determinism contract as the
// batch analyzers.
type Session interface {
	Feed(ops []op.Op) (Delta, error)
	Finish() (Analysis, error)
	History() *history.History
}

// Incremental is the optional extension a workload analyzer implements
// to support streaming: Begin opens a Session that ingests the history
// chunk by chunk. Analyzers that do not implement it are still
// streamable through BeginSession's buffer-then-batch adapter; they
// simply do all their work at Finish.
type Incremental interface {
	Begin(opts Opts) Session
}

// IncrementalFunc adapts a session constructor to Incremental.
type IncrementalFunc func(opts Opts) Session

// Begin calls f.
func (f IncrementalFunc) Begin(opts Opts) Session { return f(opts) }

// BeginSession opens a streaming session for a registered workload:
// the native incremental implementation when the registration carries
// one, and the generic buffer-then-batch adapter otherwise. Either way
// the Finish result is byte-identical to the batch Analyzer's.
func BeginSession(info Info, opts Opts) Session {
	if info.Incremental != nil {
		return info.Incremental.Begin(opts)
	}
	hs := history.NewStream()
	hs.SetBudget(StreamBudget(opts))
	return &batchSession{analyzer: info.Analyzer, opts: opts, hs: hs}
}

// ErrSessionFinished is returned by Feed after Finish.
var ErrSessionFinished = errors.New("workload: session already finished")

// batchSession is the generic fallback: it validates and buffers the
// stream, then runs the batch analyzer once at Finish. No mid-stream
// anomalies are surfaced — every Delta is empty but for the op count.
//
// Memory budgets apply only partially here — the documented "cannot
// retire" escape hatch. The adapter keeps no analyzer state to retire;
// what a budget bounds is the op buffer itself: settled prefixes are
// encoded into compact segments (a few bytes per op) and optionally
// spilled to disk, so feed-phase memory is O(window) with a spill dir
// and O(encoded history) without. Finish then rehydrates the whole
// history and pays the batch analyzer's full O(history) cost — the
// adapter has no way to analyze incrementally. Workloads that need a
// genuinely bounded finish must register a native Incremental.
type batchSession struct {
	analyzer Analyzer
	opts     Opts
	hs       *history.Stream
	done     bool
}

func (s *batchSession) Feed(ops []op.Op) (Delta, error) {
	if s.done {
		return Delta{}, ErrSessionFinished
	}
	if err := s.hs.AddAll(ops); err != nil {
		return Delta{}, err
	}
	return Delta{Ops: s.hs.Completions()}, nil
}

func (s *batchSession) Finish() (Analysis, error) {
	if s.done {
		return Analysis{}, ErrSessionFinished
	}
	s.done = true
	if err := s.hs.Err(); err != nil {
		// A chunk was rejected; finishing anyway would bless a history
		// the batch validator refuses.
		return Analysis{}, err
	}
	return s.analyzer.Analyze(s.hs.History(), s.opts), nil
}

func (s *batchSession) History() *history.History { return s.hs.History() }

// RetireStats implements Retirer: only the op stream retires here (see
// the type comment's escape hatch).
func (s *batchSession) RetireStats() RetireStats {
	return RetireStats{Stream: s.hs.RetireStats()}
}
