package workload

import (
	"repro/internal/binhist"
	"repro/internal/graph"
	"repro/internal/history"
)

// RetireStats reports how much of a budgeted streaming session has been
// retired: the history stream's own counters plus whatever analyzer
// state the session released (key caches, frozen graph segments).
type RetireStats struct {
	// Stream is the underlying op stream's retirement counters.
	Stream history.RetireStats
	// RetiredKeys counts keys whose per-key analyzer state (version
	// orders, clean-read caches) has been released. A key seen again
	// after retirement is treated as brand new and counted again.
	RetiredKeys int
	// FrozenSegments / FrozenNodes / FrozenEdges describe the settled
	// graph regions condensed into immutable CSR segments.
	FrozenSegments int
	FrozenNodes    int
	FrozenEdges    int
	// FrozenBytes is the encoded frozen-segment bytes held in memory;
	// FrozenSpilledBytes the encoded bytes written to the spill file.
	FrozenBytes        int
	FrozenSpilledBytes int64
}

// Retirer is the optional Session extension a budget-aware session
// implements so callers (core.Stream, the service's status endpoint)
// can report resident/retired progress without knowing the workload.
type Retirer interface {
	RetireStats() RetireStats
}

// StreamBudget translates Opts memory settings into a history.Budget
// over the production ellebin segment codec. A zero MemoryBudget yields
// the zero Budget, which disables retirement.
func StreamBudget(opts Opts) history.Budget {
	if opts.MemoryBudget <= 0 {
		return history.Budget{}
	}
	return history.Budget{
		Window:   opts.MemoryBudget,
		Codec:    binhist.Segments{},
		SpillDir: opts.SpillDir,
	}
}

// KeyTracker is the quiescence bookkeeping shared by the native
// budget-aware sessions: it timestamps every key's last touch in
// completion counts, refcounts which ops each live key pins, and sweeps
// out keys untouched for a full window. The session applies the sweep
// result to its own per-key caches and op indices; the tracker itself
// holds only ints. A retired key seen again is simply re-tracked from
// zero — sessions treat resurrected keys as brand new, which is sound
// for provisional findings (Finish re-analyzes the full history).
type KeyTracker struct {
	window    int
	comps     int
	lastSweep int
	lastTouch []int   // per KeyID: comps at last touch; 0 = unseen or retired
	opsOfKey  [][]int // per KeyID: op indices pinned by this key
	refs      map[int]int
	retired   int
}

// NewKeyTracker tracks quiescence over the given completion window.
func NewKeyTracker(window int) *KeyTracker {
	return &KeyTracker{window: window, refs: map[int]int{}}
}

// NoteOp records one completion op touching the given keys (duplicates
// tolerated; the op is pinned once per distinct key).
func (t *KeyTracker) NoteOp(index int, keys []history.KeyID) {
	t.comps++
	for i, k := range keys {
		dup := false
		for _, p := range keys[:i] {
			if p == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		t.lastTouch = history.GrowKeyed(t.lastTouch, k)
		t.opsOfKey = history.GrowKeyed(t.opsOfKey, k)
		t.lastTouch[k] = t.comps
		t.opsOfKey[k] = append(t.opsOfKey[k], index)
		t.refs[index]++
	}
}

// LiveOp reports whether any live key still pins op index — the keep
// predicate for graph retirement.
func (t *KeyTracker) LiveOp(index int) bool { return t.refs[index] > 0 }

// Sweep retires every key untouched for a full window, returning the
// retired keys and the ops no longer pinned by any live key (both nil
// when a window hasn't elapsed since the last sweep). The caller drops
// its own state for exactly those keys and ops.
func (t *KeyTracker) Sweep() (dead []history.KeyID, deadOps []int) {
	if t.comps-t.lastSweep < t.window {
		return nil, nil
	}
	t.lastSweep = t.comps
	horizon := t.comps - t.window
	for k, touch := range t.lastTouch {
		if touch == 0 || touch > horizon {
			continue
		}
		dead = append(dead, history.KeyID(k))
		t.lastTouch[k] = 0
		for _, i := range t.opsOfKey[k] {
			if t.refs[i]--; t.refs[i] == 0 {
				delete(t.refs, i)
				deadOps = append(deadOps, i)
			}
		}
		t.opsOfKey[k] = nil
	}
	t.retired += len(dead)
	return dead, deadOps
}

// RetiredKeys returns the total keys retired over the tracker's life.
func (t *KeyTracker) RetiredKeys() int { return t.retired }

// frozenSeg is one encoded graph.Frozen, in memory or spilled.
type frozenSeg struct {
	data    []byte
	ref     history.SpillRef
	spilled bool
}

// FrozenStore accumulates encoded frozen-graph segments, reusing the
// history spill machinery when a spill directory is configured. Like
// stream retirement it degrades rather than fails: spill trouble keeps
// segments in memory.
type FrozenStore struct {
	spillDir string
	segs     []frozenSeg
	spill    *history.Spill
	nodes    int
	edges    int
	bytes    int
}

// NewFrozenStore returns a store spilling to dir ("" keeps segments in
// memory).
func NewFrozenStore(dir string) *FrozenStore {
	return &FrozenStore{spillDir: dir}
}

// Add encodes and stores one frozen region.
func (f *FrozenStore) Add(fz *graph.Frozen) {
	f.nodes += fz.NumNodes()
	f.edges += fz.NumEdges()
	data := fz.Encode(nil)
	seg := frozenSeg{}
	if f.spillDir != "" {
		if f.spill == nil {
			sp, err := history.NewSpill(f.spillDir)
			if err != nil {
				f.spillDir = ""
			} else {
				f.spill = sp
			}
		}
		if f.spill != nil {
			if ref, err := f.spill.Append(data); err == nil {
				seg.ref, seg.spilled = ref, true
			} else {
				f.spillDir = ""
			}
		}
	}
	if !seg.spilled {
		seg.data = data
		f.bytes += len(data)
	}
	f.segs = append(f.segs, seg)
}

// Segments iterates the stored regions, decoding each in turn.
func (f *FrozenStore) Segments(fn func(*graph.Frozen) error) error {
	var buf []byte
	for _, seg := range f.segs {
		data := seg.data
		if seg.spilled {
			var err error
			buf, err = f.spill.Read(seg.ref, buf[:0])
			if err != nil {
				return err
			}
			data = buf
		}
		fz, err := graph.DecodeFrozen(data)
		if err != nil {
			return err
		}
		if err := fn(fz); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the spill file, if any.
func (f *FrozenStore) Close() {
	if f.spill != nil {
		f.spill.Close()
		f.spill = nil
	}
}

// AddTo folds the store's counters into st.
func (f *FrozenStore) AddTo(st *RetireStats) {
	st.FrozenSegments += len(f.segs)
	st.FrozenNodes += f.nodes
	st.FrozenEdges += f.edges
	st.FrozenBytes += f.bytes
	if f.spill != nil {
		st.FrozenSpilledBytes += f.spill.Size()
	}
}
