package workload_test

import (
	"testing"

	"repro/internal/history"
	"repro/internal/workload"

	_ "repro/internal/workload/all"
)

// TestBuiltinsRegistered: every built-in analyzer is present under its
// canonical name, and the canonical list is sorted.
func TestBuiltinsRegistered(t *testing.T) {
	want := []workload.Name{
		workload.ListAppend, workload.RWRegister, workload.SetAdd,
		workload.Counter, workload.Bank,
	}
	for _, n := range want {
		info, ok := workload.Lookup(string(n))
		if !ok {
			t.Fatalf("workload %q not registered", n)
		}
		if info.Name != n {
			t.Errorf("Lookup(%q).Name = %q", n, info.Name)
		}
		if info.Analyzer == nil {
			t.Errorf("workload %q has no analyzer", n)
		}
	}
	names := workload.Names()
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %d entries", names, len(want))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

// TestAliasesResolve: the CLI spellings map to canonical entries.
func TestAliasesResolve(t *testing.T) {
	cases := map[string]workload.Name{
		"list":     workload.ListAppend,
		"register": workload.RWRegister,
		"set":      workload.SetAdd,
		"counter":  workload.Counter,
		"bank":     workload.Bank,
	}
	for alias, want := range cases {
		info, ok := workload.Lookup(alias)
		if !ok || info.Name != want {
			t.Errorf("Lookup(%q) = (%q, %v), want %q", alias, info.Name, ok, want)
		}
	}
	if _, ok := workload.Lookup("bogus"); ok {
		t.Error("Lookup accepted an unregistered name")
	}
}

// TestRegisterRejectsDuplicates: re-registering a taken name or alias
// panics, as does registering without an analyzer.
func TestRegisterRejectsDuplicates(t *testing.T) {
	mustPanic := func(name string, info workload.Info) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		workload.Register(info)
	}
	noop := workload.AnalyzerFunc(func(h *history.History, opts workload.Opts) workload.Analysis {
		return workload.Analysis{}
	})
	mustPanic("dup name", workload.Info{Name: workload.Bank, Analyzer: noop})
	mustPanic("dup alias", workload.Info{Name: "fresh", Aliases: []string{"list"}, Analyzer: noop})
	mustPanic("nil analyzer", workload.Info{Name: "fresh2"})
}

// TestAnalyzersHonorTheContract: every registered analyzer accepts an
// empty history and returns a non-nil graph and explainer.
func TestAnalyzersHonorTheContract(t *testing.T) {
	h := history.MustNew(nil)
	for _, info := range workload.All() {
		an := info.Analyzer.Analyze(h, workload.DefaultOpts())
		if an.Graph == nil {
			t.Errorf("%s: nil graph on empty history", info.Name)
		}
		if an.Explainer == nil {
			t.Errorf("%s: nil explainer on empty history", info.Name)
		}
		if len(an.Anomalies) != 0 {
			t.Errorf("%s: anomalies on empty history: %v", info.Name, an.Anomalies)
		}
	}
}

// TestSessionsHonorTheContract: every registered workload opens a
// streaming session (native or adapter) whose empty run matches the
// batch contract, and sessions reject use after Finish.
func TestSessionsHonorTheContract(t *testing.T) {
	for _, info := range workload.All() {
		sess := workload.BeginSession(info, workload.DefaultOpts())
		if d, err := sess.Feed(nil); err != nil || d.Ops != 0 {
			t.Errorf("%s: empty feed: %+v, %v", info.Name, d, err)
		}
		an, err := sess.Finish()
		if err != nil {
			t.Errorf("%s: Finish: %v", info.Name, err)
			continue
		}
		if an.Graph == nil || an.Explainer == nil {
			t.Errorf("%s: session Finish returned nil graph or explainer", info.Name)
		}
		if len(an.Anomalies) != 0 {
			t.Errorf("%s: anomalies on empty stream: %v", info.Name, an.Anomalies)
		}
		if _, err := sess.Feed(nil); err == nil {
			t.Errorf("%s: Feed after Finish should fail", info.Name)
		}
		if _, err := sess.Finish(); err == nil {
			t.Errorf("%s: double Finish should fail", info.Name)
		}
	}
}
