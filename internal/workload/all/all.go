// Package all registers every built-in workload analyzer. Import it for
// side effects wherever the full registry must be populated — the core
// checker, the CLIs, and the test harnesses all do:
//
//	import _ "repro/internal/workload/all"
//
// A new workload package adds itself to this list and is immediately
// available to `elle -workload`, `ellegen -workload`, the facade, and
// the registry-driven tests.
package all

import (
	_ "repro/internal/bank"
	_ "repro/internal/counter"
	_ "repro/internal/katomic"
	_ "repro/internal/listappend"
	_ "repro/internal/rwregister"
	_ "repro/internal/setadd"
)
