package listappend

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/history"
	"repro/internal/op"
)

// keyModel tracks what a transaction must believe about one key.
type keyModel struct {
	// known is true once the transaction has read the key, fixing the
	// full expected value.
	known bool
	// value is the full expected value when known.
	value []int
	// appended holds the transaction's own appends since the last read
	// (or since the start, if it has never read the key). When !known,
	// any observed value must end with exactly these elements.
	appended []int
}

// internalAnomalies verifies one committed transaction against its own
// reads and writes (§6.1, "internal inconsistency"): within one
// transaction, a read of key k must equal the transaction's previously
// observed value of k extended by any of its own intervening appends;
// before the first read, an observed value must at least end with
// whatever the transaction has itself appended so far.
//
// FaunaDB's index bug (§7.3) — a transaction appending 6 to key 0 and then
// reading nil — is the canonical violation.
func (a *analyzer) internalAnomalies(o op.Op) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	models := map[history.KeyID]*keyModel{}
	model := func(k string) *keyModel {
		id := a.kid(k)
		m, ok := models[id]
		if !ok {
			m = &keyModel{}
			models[id] = m
		}
		return m
	}
	for _, mop := range o.Mops {
		m := model(mop.Key)
		switch mop.F {
		case op.FAppend:
			if m.known {
				m.value = append(m.value, mop.Arg)
			} else {
				m.appended = append(m.appended, mop.Arg)
			}
		case op.FRead:
			if !mop.ListKnown() {
				continue
			}
			observed := mop.List
			if m.known {
				if !equalInts(observed, m.value) {
					out = append(out, anomaly.Anomaly{
						Type: anomaly.Internal,
						Ops:  []op.Op{o},
						Key:  mop.Key,
						Explanation: fmt.Sprintf(
							"%s read key %s as %s, but its own prior reads and appends imply the value must be %s: an internal inconsistency",
							o.Name(), mop.Key, op.FormatList(observed), op.FormatList(m.value)),
					})
				}
			} else if !endsWith(observed, m.appended) {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.Internal,
					Ops:  []op.Op{o},
					Key:  mop.Key,
					Explanation: fmt.Sprintf(
						"%s read key %s as %s, which does not end with its own prior appends %s: an internal inconsistency",
						o.Name(), mop.Key, op.FormatList(observed), op.FormatList(m.appended)),
				})
			}
			// Whatever was observed is the transaction's view from here on.
			m.known = true
			m.value = append([]int(nil), observed...)
			m.appended = nil
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// endsWith reports whether v ends with suffix.
func endsWith(v, suffix []int) bool {
	if len(suffix) > len(v) {
		return false
	}
	off := len(v) - len(suffix)
	for i, e := range suffix {
		if v[off+i] != e {
			return false
		}
	}
	return true
}
