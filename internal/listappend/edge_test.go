package listappend

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

// Edge-case coverage for the list-append analyzer.

func TestEmptyHistory(t *testing.T) {
	a := Analyze(history.MustNew(nil), workload.Opts{})
	if len(a.Anomalies) != 0 || a.Graph.NumNodes() != 0 {
		t.Errorf("empty history produced output: %v", a.Anomalies)
	}
}

func TestWriteOnlyHistory(t *testing.T) {
	// No reads: no version orders, no edges, no anomalies.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
	)
	if len(a.Anomalies) != 0 {
		t.Errorf("anomalies: %v", a.Anomalies)
	}
	if a.Graph.NumEdges() != 0 {
		t.Error("write-only history should have no edges")
	}
	if len(a.VersionOrder("x")) != 0 {
		t.Error("no reads should mean no version order")
	}
}

func TestReadOnlyHistoryOfUnwrittenKey(t *testing.T) {
	// Reading [] from a key nobody wrote is fine.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.ReadList("ghost", []int{})),
	)
	if len(a.Anomalies) != 0 {
		t.Errorf("anomalies: %v", a.Anomalies)
	}
}

func TestInfoOnlyHistory(t *testing.T) {
	// All outcomes unknown: nothing to infer, nothing to report.
	a := analyze(t,
		op.Txn(0, 0, op.Info, op.Append("x", 1)),
		op.Txn(1, 1, op.Info, op.Append("x", 2), op.Read("x")),
	)
	if len(a.Anomalies) != 0 {
		t.Errorf("anomalies: %v", a.Anomalies)
	}
	if a.Graph.NumEdges() != 0 {
		t.Error("info-only history should have no edges")
	}
}

func TestSameTxnDuplicateAppendArgument(t *testing.T) {
	// One transaction appending the same element twice still breaks
	// recoverability.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("x", 1)),
	)
	if !hasAnomaly(a, anomaly.DuplicateAppends) {
		t.Fatalf("expected duplicate appends, got %v", a.Anomalies)
	}
}

func TestUnrecoverableElementBreaksChain(t *testing.T) {
	// Element 2 is written twice, so it is unrecoverable; ww chains
	// through it must break rather than guess.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
		op.Txn(2, 2, op.OK, op.Append("x", 2)),
		op.Txn(3, 3, op.OK, op.Append("x", 3)),
		op.Txn(4, 4, op.OK, op.ReadList("x", []int{1, 2, 3})),
	)
	if !hasAnomaly(a, anomaly.DuplicateAppends) {
		t.Fatal("duplicate appends not reported")
	}
	// No ww edge may touch the ambiguous element's writers.
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if a.Graph.Label(pair[0], pair[1]).Has(graph.WW) {
			t.Errorf("ww edge %d->%d built through unrecoverable element", pair[0], pair[1])
		}
	}
}

func TestLongestReadByFirstEncounter(t *testing.T) {
	// Two equally long, identical reads: either serves as the version
	// order; no incompatibility.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1})),
	)
	if hasAnomaly(a, anomaly.IncompatibleOrder) {
		t.Fatalf("identical reads reported incompatible: %v", a.Anomalies)
	}
}

func TestEqualLengthDivergentReads(t *testing.T) {
	// Two equally long reads that disagree: incompatible both ways.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1})),
		op.Txn(3, 3, op.OK, op.ReadList("x", []int{2})),
	)
	if !hasAnomaly(a, anomaly.IncompatibleOrder) {
		t.Fatalf("divergent reads not reported: %v", a.Anomalies)
	}
}

func TestChainedWWAcrossManyTxns(t *testing.T) {
	// A long committed chain yields exactly n-1 ww edges.
	const n = 10
	var ops []op.Op
	elems := make([]int, n)
	for i := 0; i < n; i++ {
		ops = append(ops, op.Txn(i, i, op.OK, op.Append("x", i+1)))
		elems[i] = i + 1
	}
	ops = append(ops, op.Txn(n, n, op.OK, op.ReadList("x", elems)))
	a := analyze(t, ops...)
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
	for i := 0; i+1 < n; i++ {
		if !a.Graph.Label(i, i+1).Has(graph.WW) {
			t.Errorf("missing ww edge %d -> %d", i, i+1)
		}
	}
	if a.Graph.Label(0, 2).Has(graph.WW) {
		t.Error("non-adjacent ww edge emitted")
	}
}

func TestReadsInsideWriterTxn(t *testing.T) {
	// A transaction reading its own final state generates no self edges.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.ReadList("x", []int{1})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
	if a.Graph.Label(0, 0) != 0 {
		t.Error("self edge emitted")
	}
}

func TestG1bOnlyForFinalElementOfRead(t *testing.T) {
	// A read passing *through* an intermediate element (not ending on it)
	// is not an intermediate read.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("x", 2)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1, 2})),
	)
	if hasAnomaly(a, anomaly.G1b) {
		t.Fatalf("complete read misreported as G1b: %v", a.Anomalies)
	}
}

func TestFailedWriteNeverObservedIsFine(t *testing.T) {
	// An aborted append nobody read: no anomaly (the rollback worked).
	a := analyze(t,
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{2})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
}

func TestMixedMopsIgnoredGracefully(t *testing.T) {
	// Register/set/counter mops inside a list-append history are ignored
	// rather than crashing the analyzer.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Write("r", 5), op.Increment("c", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1}), op.ReadReg("r", 5)),
	)
	if !a.Graph.Label(0, 1).Has(graph.WR) {
		t.Error("list edges should still be inferred")
	}
}
