package listappend

import (
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

// This file is the session's memory-budget half: with a budget
// configured (workload.Opts.MemoryBudget), per-key inference state is
// kept only for keys touched within the window, and the incremental
// graph's settled regions are condensed into immutable frozen segments.
// Mid-stream findings from a budgeted session are a subset of the
// unbudgeted session's — evidence that was retired cannot be cited —
// which the workload.Delta contract permits; the definitive analysis
// comes from Finish's full re-analysis of the rehydrated stream.

// note records one completion with the key tracker. Ops touching no
// keys are unpinned immediately: nothing can ever cite them.
func (s *session) note(o op.Op) {
	if s.rt == nil {
		return
	}
	keys := make([]history.KeyID, 0, len(o.Mops))
	for _, m := range o.Mops {
		keys = append(keys, s.a.kid(m.Key))
	}
	if len(keys) == 0 {
		delete(s.a.ops, o.Index)
		delete(s.a.spanOf, o.Index)
		return
	}
	s.rt.NoteOp(o.Index, keys)
}

// sweep retires every key quiescent for a full window: its version
// order, clean-read cache, element indices, and — once no live key pins
// them — its ops, then freezes the graph region those ops spanned. A
// retired key seen again is re-analyzed as brand new.
func (s *session) sweep() {
	dead, deadOps := s.rt.Sweep()
	if len(dead) == 0 && len(deadOps) == 0 {
		return
	}
	a := s.a
	deadSet := make(map[history.KeyID]bool, len(dead))
	for _, k := range dead {
		deadSet[k] = true
		if int(k) < len(s.keyst) {
			s.keyst[k] = nil
		}
		if int(k) < len(s.orders) {
			s.orders[k] = nil
		}
	}
	if len(dead) > 0 {
		live := s.keys[:0]
		for _, k := range s.keys {
			if !deadSet[k] {
				live = append(live, k)
			}
		}
		s.keys = live
		// The per-element maps are keyed by (key, element); one full
		// iteration per sweep frees every entry of every dead key.
		for ek := range a.attempts {
			if deadSet[ek.key] {
				delete(a.attempts, ek)
			}
		}
		for ek := range a.writer {
			if deadSet[ek.key] {
				delete(a.writer, ek)
			}
		}
		for ek := range a.failedWriter {
			if deadSet[ek.key] {
				delete(a.failedWriter, ek)
			}
		}
		for ek := range s.readersOf {
			if deadSet[ek.key] {
				delete(s.readersOf, ek)
			}
		}
	}
	for _, i := range deadOps {
		delete(a.ops, i)
		delete(a.spanOf, i)
	}
	// Freeze the settled graph region: nodes no live key pins can gain
	// no further edges from maintained state. The sweep runs right after
	// a scan, so their components' witnesses have already been searched
	// and surfaced.
	fz := s.incr.Retire(s.rt.LiveOp)
	if fz.NumNodes() > 0 {
		s.frozen.Add(fz)
	}
}

// RetireStats implements workload.Retirer.
func (s *session) RetireStats() workload.RetireStats {
	st := workload.RetireStats{Stream: s.hs.RetireStats()}
	if s.rt != nil {
		st.RetiredKeys = s.rt.RetiredKeys()
		s.frozen.AddTo(&st)
	}
	return st
}
