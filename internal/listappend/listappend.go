// Package listappend implements Elle's most powerful analysis (§3–§4 of
// the paper): inference of an Adya-style dependency graph from observed
// transactions over append-only lists.
//
// Lists are traceable: a read of [1 2 3] proves the object took on the
// versions [], [1], [1 2], [1 2 3] in exactly that order. When every
// appended element is unique, versions are also recoverable: each observed
// version maps to exactly one write in exactly one observed transaction.
// Together these let us reconstruct a prefix of the version order ≪x for
// every object from the longest committed read, and from it the
// write-write, write-read, and read-write dependencies of every
// transaction whose writes were observed.
//
// The analyzer also detects every non-cycle anomaly of §4.3.1 and §6.1:
// aborted reads (G1a), intermediate reads (G1b), dirty updates, garbage
// reads, duplicate writes, internal inconsistencies, and inconsistent
// observations (incompatible orders).
//
// Inference is embarrassingly parallel: version orders and dependency
// edges are per-key, and the per-transaction checks are independent per
// transaction. Analyze therefore fans both out across Opts.Parallelism
// workers, collecting results in index-addressed slots so the analysis —
// anomalies, their order, and the dependency graph — is byte-identical at
// every parallelism level.
package listappend

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/rel"
	"repro/internal/workload"
)

// Analysis is the result of dependency inference over one history.
type Analysis struct {
	// Graph holds the inferred ww, wr, and rw edges (the IDSG of §4.3.2,
	// before process/real-time augmentation).
	Graph *graph.Graph
	// Anomalies are the non-cycle anomalies discovered during inference.
	Anomalies []anomaly.Anomaly
	// Keys is the history's key interner; VersionOrders is indexed by
	// its KeyIDs.
	Keys *history.Interner
	// VersionOrders holds, per KeyID, the inferred order of the key's
	// elements: the trace of the longest committed read, a prefix of ≪x.
	// The initial (empty) version is implicit; keys without clean reads
	// have a nil entry.
	VersionOrders [][]int
	// Ops indexes every analyzed completion op by op index.
	Ops map[int]op.Op
}

// VersionOrder returns the inferred element order for key, or nil.
func (a *Analysis) VersionOrder(key string) []int {
	id, ok := a.Keys.ID(key)
	if !ok || int(id) >= len(a.VersionOrders) {
		return nil
	}
	return a.VersionOrders[id]
}

type elemKey struct {
	key  history.KeyID
	elem int
}

// cleanRead is one committed read of a well-formed (duplicate-free) list
// value, the unit of per-key inference.
type cleanRead struct {
	o    op.Op
	list []int
}

// analyzer carries the indices built over one history. Per-key state is
// keyed by the history interner's dense KeyIDs (see history.Interner),
// so the hot inference loops hash small fixed-size structs, never key
// strings.
type analyzer struct {
	opts workload.Opts
	h    *history.History
	in   *history.Interner

	ops      map[int]op.Op // completion ops by index
	oks      []op.Op
	fails    []op.Op
	infos    []op.Op
	spanOf   map[int][2]int // op index -> [invoke index, complete index]
	attempts map[elemKey][]int
	// writer maps each recoverable element to the op index of the unique
	// non-aborted attempt that wrote it. Aborted writers are tracked
	// separately for G1a / dirty-update detection.
	writer       map[elemKey]int
	failedWriter map[elemKey]int
	anomalies    []anomaly.Anomaly

	// failedIx indexes failed_append(key, elem, writer) tuples — the
	// aborted writers — for the relational G1a scan, which probes it
	// in one lookup join over the whole history. Built once by
	// finishAnomalies; immutable thereafter.
	failedIx *rel.Index

	// windowed marks a memory-budgeted streaming session: the oks /
	// fails / infos slices are not accumulated (they would grow with the
	// history, and the budgeted Finish re-analyzes the rehydrated
	// history from scratch instead of reading them).
	windowed bool
}

// newAnalyzer returns an analyzer with empty indices over the given
// interner (the history's in batch runs, the stream's in sessions); the
// history itself is attached by Analyze (batch) or at Finish (streaming
// sessions).
func newAnalyzer(opts workload.Opts, in *history.Interner) *analyzer {
	return &analyzer{
		opts:         opts,
		in:           in,
		ops:          map[int]op.Op{},
		spanOf:       map[int][2]int{},
		attempts:     map[elemKey][]int{},
		writer:       map[elemKey]int{},
		failedWriter: map[elemKey]int{},
	}
}

// kid resolves an interned key (see history.Interner.MustID).
func (a *analyzer) kid(k string) history.KeyID { return a.in.MustID(k) }

// Analyze infers the dependency graph and non-cycle anomalies for h.
// Of the shared options it consumes Parallelism and DetectLostUpdates
// (see workload.Opts).
func Analyze(h *history.History, opts workload.Opts) *Analysis {
	a := newAnalyzer(opts, h.Keys())
	a.h = h
	for pos, o := range h.Ops {
		if o.Type == op.Invoke {
			continue
		}
		inv, comp := h.Span(pos)
		a.addOp(o, [2]int{inv, comp})
	}
	p := opts.Parallelism
	a.anomalies = append(a.anomalies, a.duplicateAppendAnomalies()...)

	// Per-transaction checks: every committed op is validated against its
	// own reads and writes, and against the write indices, independently.
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.internalAnomalies(a.oks[i])
	}))
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.readStructureAnomalies(a.oks[i])
	}))

	// Per-key inference: version orders, then the dependency edges they
	// imply. Results are merged in sorted-key order.
	keys, byKey := a.cleanReadsByKey()
	perKey := par.Map(p, len(keys), func(i int) keyOrder {
		k := keys[i]
		longest := longestRead(byKey[k])
		return keyOrder{elems: longest.list, anoms: a.incompatAnomalies(k, byKey[k], longest)}
	})
	orders := make([][]int, a.in.Len())
	for i, k := range keys {
		orders[k] = perKey[i].elems
		a.anomalies = append(a.anomalies, perKey[i].anoms...)
	}
	g := a.buildGraph(keys, byKey, orders)

	a.finishAnomalies(keys, orders)
	return &Analysis{
		Graph:         g,
		Anomalies:     a.anomalies,
		Keys:          a.in,
		VersionOrders: orders,
		Ops:           a.ops,
	}
}

// orderAt reads a KeyID-indexed order slice that may be shorter than
// the key space (streaming sessions grow it on demand).
func orderAt(orders [][]int, k history.KeyID) []int {
	if int(k) < len(orders) {
		return orders[k]
	}
	return nil
}

// finishAnomalies runs the checks that need the final write indices and
// version orders — G1a/G1b, dirty updates, lost updates — shared by the
// batch Analyze and the streaming session's Finish.
func (a *analyzer) finishAnomalies(keys []history.KeyID, orders [][]int) {
	p := a.opts.Parallelism
	a.failedIx = rel.BuildIndex(a.failedAppends(), "key", "elem")
	a.anomalies = append(a.anomalies, a.abortedReadAnomalies()...)
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.intermediateReadAnomalies(a.oks[i])
	}))
	a.collect(par.Map(p, len(keys), func(i int) []anomaly.Anomaly {
		return a.dirtyUpdateAnomalies(keys[i], orderAt(orders, keys[i]))
	}))
	if a.opts.DetectLostUpdates {
		a.checkLostUpdates(orders)
	}
}

func (a *analyzer) collect(groups [][]anomaly.Anomaly) {
	a.anomalies = anomaly.AppendGroups(a.anomalies, groups)
}

// addOp indexes one completion op: the op and span indices every check
// reads, and the per-element attempt index with its recoverability
// transitions — the first attempt on an element claims the writer slot,
// a second attempt destroys recoverability (§4.2.3) and evicts it.
// Ops must be added in ascending index order.
func (a *analyzer) addOp(o op.Op, span [2]int) {
	a.ops[o.Index] = o
	a.spanOf[o.Index] = span
	if !a.windowed {
		switch o.Type {
		case op.OK:
			a.oks = append(a.oks, o)
		case op.Fail:
			a.fails = append(a.fails, o)
		case op.Info:
			a.infos = append(a.infos, o)
		}
	}
	for _, m := range o.Mops {
		if m.F != op.FAppend {
			continue
		}
		ek := elemKey{a.in.Intern(m.Key), m.Arg}
		a.attempts[ek] = append(a.attempts[ek], o.Index)
		switch len(a.attempts[ek]) {
		case 1:
			if o.Type == op.Fail {
				a.failedWriter[ek] = o.Index
			} else {
				a.writer[ek] = o.Index
			}
		case 2:
			delete(a.writer, ek)
			delete(a.failedWriter, ek)
		}
	}
}

// duplicateAppendAnomalies reports every element appended more than
// once, in sorted (key, element) order.
func (a *analyzer) duplicateAppendAnomalies() []anomaly.Anomaly {
	var keys []elemKey
	for ek, idxs := range a.attempts {
		if len(idxs) > 1 {
			keys = append(keys, ek)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return a.in.Less(keys[i].key, keys[j].key)
		}
		return keys[i].elem < keys[j].elem
	})
	var out []anomaly.Anomaly
	for _, ek := range keys {
		idxs := a.attempts[ek]
		sort.Ints(idxs)
		ops := make([]op.Op, len(idxs))
		for i, ix := range idxs {
			ops[i] = a.ops[ix]
		}
		kname := a.in.Key(ek.key)
		out = append(out, anomaly.Anomaly{
			Type: anomaly.DuplicateAppends,
			Ops:  ops,
			Key:  kname,
			Explanation: fmt.Sprintf(
				"element %d was appended to key %s by %d distinct transactions; appends must be unique for versions to be recoverable",
				ek.elem, kname, len(idxs)),
		})
	}
	return out
}

// readStructureAnomalies validates each committed read value of one
// transaction: no duplicate elements, and no garbage elements that were
// never appended by any attempted transaction.
func (a *analyzer) readStructureAnomalies(o op.Op) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	for _, m := range o.Mops {
		if !m.ListKnown() {
			continue
		}
		if dup, ok := duplicateElements(o, m); ok {
			out = append(out, dup)
		}
		k := a.kid(m.Key)
		for _, e := range m.List {
			if !a.attempted(elemKey{k, e}) {
				out = append(out, anomaly.Anomaly{
					Type: anomaly.GarbageRead,
					Ops:  []op.Op{o},
					Key:  m.Key,
					Explanation: fmt.Sprintf(
						"%s read key %s as %s, but element %d was never appended by any transaction",
						o.Name(), m.Key, op.FormatList(m.List), e),
				})
				break
			}
		}
	}
	return out
}

// duplicateElements reports a read value containing the same element
// more than once — shared by readStructureAnomalies and the streaming
// session, whose evidence for it is complete the moment the read is
// observed.
func duplicateElements(o op.Op, m op.Mop) (anomaly.Anomaly, bool) {
	seen := make(map[int]bool, len(m.List))
	for _, e := range m.List {
		if seen[e] {
			return anomaly.Anomaly{
				Type: anomaly.DuplicateElements,
				Ops:  []op.Op{o},
				Key:  m.Key,
				Explanation: fmt.Sprintf(
					"%s read key %s as %s, which contains element %d more than once: some append was applied multiple times",
					o.Name(), m.Key, op.FormatList(m.List), e),
			}, true
		}
		seen[e] = true
	}
	return anomaly.Anomaly{}, false
}

// attempted reports whether any op (including unpaired invocations from
// crashed clients) tried to append ek.elem to ek.key.
func (a *analyzer) attempted(ek elemKey) bool {
	if len(a.attempts[ek]) > 0 {
		return true
	}
	kname := a.in.Key(ek.key)
	// Crashed clients leave an invoke with no completion; their appends
	// may still have taken effect and are not garbage.
	for _, o := range a.h.Ops {
		if o.Type != op.Invoke {
			continue
		}
		if _, done := a.ops[o.Index]; done {
			continue
		}
		for _, m := range o.Mops {
			if m.F == op.FAppend && m.Key == kname && m.Arg == ek.elem {
				return true
			}
		}
	}
	return false
}

// cleanReadsByKey groups every committed duplicate-free list read by
// key — a dense KeyID-indexed slice, preserving op order within each
// key — and returns the name-sorted list of keys with clean reads, the
// per-key work items of version-order and edge inference.
func (a *analyzer) cleanReadsByKey() ([]history.KeyID, [][]cleanRead) {
	byKey := make([][]cleanRead, a.in.Len())
	var keys []history.KeyID
	for _, o := range a.oks {
		for _, m := range o.Mops {
			if !m.ListKnown() || hasDuplicates(m.List) {
				continue
			}
			k := a.kid(m.Key)
			if len(byKey[k]) == 0 {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], cleanRead{o, m.List})
		}
	}
	a.in.SortKeyIDs(keys)
	return keys, byKey
}

// keyOrder is one key's inferred version order plus the anomalies the
// inference surfaced.
type keyOrder struct {
	elems []int
	anoms []anomaly.Anomaly
}

// longestRead returns the first read of maximal length: its trace is
// the inferred version order ≪x of the key (§4.3.2). The streaming
// session maintains the same value across feeds by replacing only on a
// strictly longer read.
func longestRead(reads []cleanRead) cleanRead {
	longest := reads[0]
	for _, r := range reads[1:] {
		if len(r.list) > len(longest.list) {
			longest = r
		}
	}
	return longest
}

// incompatAnomalies reports incompatible orders against the longest
// read of key k: pairs of committed reads neither of which is a prefix
// of the other, which imply an aborted read in every interpretation
// (§4.3.1, "Inconsistent Observations").
func (a *analyzer) incompatAnomalies(k history.KeyID, reads []cleanRead, longest cleanRead) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	kname := a.in.Key(k)
	for _, r := range reads {
		if !op.IsPrefix(r.list, longest.list) {
			out = append(out, incompatAnomaly(kname, r, longest))
		}
	}
	return out
}

// incompatAnomaly renders one incompatible-order finding; the streaming
// session uses the same rendering for mid-stream surfacing.
func incompatAnomaly(k string, r, longest cleanRead) anomaly.Anomaly {
	return anomaly.Anomaly{
		Type: anomaly.IncompatibleOrder,
		Ops:  []op.Op{r.o, longest.o},
		Key:  k,
		Explanation: fmt.Sprintf(
			"%s read key %s as %s but %s read it as %s; neither is a prefix of the other, so at least one observed an aborted version",
			r.o.Name(), k, op.FormatList(r.list),
			longest.o.Name(), op.FormatList(longest.list)),
	}
}

// buildGraph emits the inferred serialization graph of §4.3.2: per-key
// workers produce edge lists from the version orders and the
// recoverable-writer index, which merge into one graph in key order.
func (a *analyzer) buildGraph(keys []history.KeyID, byKey [][]cleanRead, orders [][]int) *graph.Graph {
	g := graph.New()
	// Every transaction that may have committed is a vertex, even if it
	// has no edges; cycle search ignores isolated vertices.
	for _, o := range a.oks {
		g.Ensure(o.Index)
	}
	perKey := par.Map(a.opts.Parallelism, len(keys), func(i int) []graph.Edge {
		k := keys[i]
		return a.keyEdges(k, byKey[k], orders[k])
	})
	for _, edges := range perKey {
		g.AddEdges(edges)
	}
	return g
}

// keyEdges infers every dependency edge key k contributes.
func (a *analyzer) keyEdges(k history.KeyID, reads []cleanRead, elems []int) []graph.Edge {
	var out []graph.Edge
	// ww: consecutive recoverable writers along the version order.
	for i := 0; i+1 < len(elems); i++ {
		wi, oki := a.writer[elemKey{k, elems[i]}]
		wj, okj := a.writer[elemKey{k, elems[i+1]}]
		if oki && okj {
			out = append(out, graph.Edge{From: wi, To: wj, Kind: graph.WW})
		}
	}
	for _, r := range reads {
		if !op.IsPrefix(r.list, elems) {
			// Incompatible reads were already reported; don't let them
			// seed bogus edges.
			continue
		}
		// wr: the writer of the last element of the observed version
		// installed the version this read observed.
		if n := len(r.list); n > 0 {
			if w, ok := a.writer[elemKey{k, r.list[n-1]}]; ok {
				out = append(out, graph.Edge{From: w, To: r.o.Index, Kind: graph.WR})
			}
		}
		// rw: the writer of the next element in ≪x overwrote the
		// version this read observed.
		if len(r.list) < len(elems) {
			next := elems[len(r.list)]
			if w, ok := a.writer[elemKey{k, next}]; ok {
				out = append(out, graph.Edge{From: r.o.Index, To: w, Kind: graph.RW})
			}
		}
	}
	return out
}

// failedAppends is the relation failed_append(key, elem, writer): one
// tuple per recoverable element whose only writer aborted. Build order
// over the map is arbitrary, but every (key, elem) bucket holds exactly
// one tuple, so index probes are deterministic regardless.
func (a *analyzer) failedAppends() rel.Relation {
	fw := a.failedWriter
	return rel.NewRelation([]string{"key", "elem", "writer"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 3)
		for ek, w := range fw {
			t[0], t[1], t[2] = rel.Int(int(ek.key)), rel.Int(ek.elem), rel.Int(w)
			if !yield(t) {
				return
			}
		}
	})
}

// allReadElems is the relation read_elem(key, elem, txn, mop) over
// every committed transaction: every element of every known list read,
// in transaction, program, and list order — the probe side of the
// relational G1a scan. One relation spans the whole history so the
// join pipeline is constructed once per analysis, not once per
// transaction.
func (a *analyzer) allReadElems() rel.Relation {
	return rel.NewRelation([]string{"key", "elem", "txn", "mop"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 4)
		for oi, o := range a.oks {
			for pos, m := range o.Mops {
				if !m.ListKnown() {
					continue
				}
				k := rel.Int(int(a.kid(m.Key)))
				for _, e := range m.List {
					t[0], t[1], t[2], t[3] = k, rel.Int(e), rel.Int(oi), rel.Int(pos)
					if !yield(t) {
						return
					}
				}
			}
		}
	})
}

// abortedReadAnomalies finds G1a — reads of versions containing
// elements written by aborted transactions — in one relational pass
// over the whole history: read_elem(key, elem, txn, mop) ⋈ the
// prebuilt failed_append(key, elem, writer) index, each joined row one
// aborted read. The lookup join streams reads in
// transaction-then-program-and-list order, exactly the order the old
// per-transaction scans merged to, so the report is unchanged;
// evaluating the pipeline once instead of per transaction keeps its
// setup cost off the hot path.
func (a *analyzer) abortedReadAnomalies() []anomaly.Anomaly {
	if a.failedIx.Len() == 0 {
		// A lookup join against an empty failed_append index is empty
		// by definition.
		return nil
	}
	var out []anomaly.Anomaly
	a.allReadElems().LookupJoin(a.failedIx).Each(func(t rel.Tuple) bool {
		o := a.oks[t[2].Num()]
		m := o.Mops[t[3].Num()]
		out = append(out, g1aAnomaly(o, m.Key, m.List, int(t[1].Num()), a.ops[int(t[4].Num())]))
		return true
	})
	return out
}

// intermediateReadAnomalies finds G1b (reads whose final element was
// an intermediate write) for one committed transaction. Its sibling
// G1a scan runs once for the whole history in abortedReadAnomalies;
// the final report survives the split because classification
// stable-sorts by (severity, type), separating the two types however
// they interleave in the raw list.
func (a *analyzer) intermediateReadAnomalies(o op.Op) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	for _, m := range o.Mops {
		if !m.ListKnown() {
			continue
		}
		k := a.kid(m.Key)
		if n := len(m.List); n > 0 {
			last := m.List[n-1]
			if w, ok := a.writer[elemKey{k, last}]; ok && w != o.Index {
				wo := a.ops[w]
				if finalAppend(wo, m.Key) != last {
					out = append(out, anomaly.Anomaly{
						Type: anomaly.G1b,
						Ops:  []op.Op{o, wo},
						Key:  m.Key,
						Explanation: fmt.Sprintf(
							"%s read key %s as %s, whose final element %d was an intermediate append of %s (its final append to %s was %d): an intermediate read",
							o.Name(), m.Key, op.FormatList(m.List), last, wo.Name(), m.Key, finalAppend(wo, m.Key)),
					})
				}
			}
		}
	}
	return out
}

// dirtyUpdateAnomalies reports dirty updates along key k's trace: an
// element from an aborted transaction followed by an element from a
// committed one means committed state incorporates aborted state (§4.1.5,
// "Via Traces").
func (a *analyzer) dirtyUpdateAnomalies(k history.KeyID, elems []int) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	for i := 0; i+1 < len(elems); i++ {
		fw, failed := a.failedWriter[elemKey{k, elems[i]}]
		if !failed {
			continue
		}
		for j := i + 1; j < len(elems); j++ {
			if cw, ok := a.writer[elemKey{k, elems[j]}]; ok && a.ops[cw].Type == op.OK {
				kname := a.in.Key(k)
				out = append(out, anomaly.Anomaly{
					Type: anomaly.DirtyUpdate,
					Ops:  []op.Op{a.ops[fw], a.ops[cw]},
					Key:  kname,
					Explanation: fmt.Sprintf(
						"key %s's version history %s includes element %d from aborted %s, later built upon by committed %s: a dirty update",
						kname, op.FormatList(elems), elems[i], a.ops[fw].Name(), a.ops[cw].Name()),
				})
				break
			}
		}
	}
	return out
}

// checkLostUpdates reports committed appends that are absent from a
// longest read invoked strictly after the append's transaction
// completed. The per-key scan is relational: the key's committed
// appends, σ-filtered to those that completed before the long read was
// invoked, anti-joined (▷) against the elements the read observed —
// every surviving append is a lost update.
func (a *analyzer) checkLostUpdates(orders [][]int) {
	// Locate the longest read op per key (the one whose value is the
	// version order) and its invocation index. Both indices are dense
	// KeyID-indexed slices: by the time this runs (batch Analyze or a
	// session's Finish) the interner is complete.
	type longRead struct {
		o      op.Op
		invoke int
		elems  []int
		ok     bool
	}
	longReads := make([]longRead, a.in.Len())
	for _, o := range a.oks {
		for _, m := range o.Mops {
			if !m.ListKnown() {
				continue
			}
			k := a.kid(m.Key)
			elems := orderAt(orders, k)
			if elems == nil || len(m.List) != len(elems) || !op.IsPrefix(m.List, elems) {
				continue
			}
			if longReads[k].ok {
				continue
			}
			longReads[k] = longRead{o: o, invoke: a.spanOf[o.Index][0], elems: elems, ok: true}
		}
	}
	// Index committed appends by key once; scanning all transactions per
	// key would make this check quadratic in history length.
	type keyAppend struct {
		o         op.Op
		elem      int
		completed int
	}
	appendsByKey := make([][]keyAppend, a.in.Len())
	for _, w := range a.oks {
		for _, m := range w.Mops {
			if m.F == op.FAppend {
				k := a.kid(m.Key)
				appendsByKey[k] = append(appendsByKey[k],
					keyAppend{o: w, elem: m.Arg, completed: a.spanOf[w.Index][1]})
			}
		}
	}
	var keys []history.KeyID
	for k := range longReads {
		if longReads[k].ok {
			keys = append(keys, history.KeyID(k))
		}
	}
	a.in.SortKeyIDs(keys)
	a.collect(par.Map(a.opts.Parallelism, len(keys), func(i int) []anomaly.Anomaly {
		k := keys[i]
		kname := a.in.Key(k)
		lr := longReads[k]
		kas := appendsByKey[k]

		// observed(elem): the elements of the long read's value.
		observedIx := rel.BuildIndex(rel.NewRelation([]string{"elem"},
			func(yield func(rel.Tuple) bool) {
				t := make(rel.Tuple, 1)
				for _, e := range lr.elems {
					t[0] = rel.Int(e)
					if !yield(t) {
						return
					}
				}
			}), "elem")
		// committed_append(pos, elem, completed, txn) for this key, in
		// completion order.
		appends := rel.NewRelation([]string{"pos", "elem", "completed", "txn"},
			func(yield func(rel.Tuple) bool) {
				t := make(rel.Tuple, 4)
				for pos, ka := range kas {
					t[0], t[1], t[2], t[3] = rel.Int(pos), rel.Int(ka.elem), rel.Int(ka.completed), rel.Int(ka.o.Index)
					if !yield(t) {
						return
					}
				}
			})

		var out []anomaly.Anomaly
		appends.
			Select(func(t rel.Tuple) bool {
				return int(t[3].Num()) != lr.o.Index && int(t[2].Num()) < lr.invoke
			}).
			AntiJoin(observedIx).
			Each(func(t rel.Tuple) bool {
				ka := kas[t[0].Num()]
				out = append(out, anomaly.Anomaly{
					Type: anomaly.LostUpdate,
					Ops:  []op.Op{ka.o, lr.o},
					Key:  kname,
					Explanation: fmt.Sprintf(
						"%s committed an append of %d to key %s before %s began, yet %s read %s without it: the update was lost",
						ka.o.Name(), ka.elem, kname, lr.o.Name(), lr.o.Name(), op.FormatList(lr.o.Mops[readPos(lr.o, kname)].List)),
				})
				return true
			})
		return out
	}))
}

// g1aAnomaly renders one aborted-read finding: reader observed list for
// key, whose element e was appended by the aborted writer. The
// streaming session uses the same rendering for mid-stream surfacing.
func g1aAnomaly(reader op.Op, key string, list []int, e int, writer op.Op) anomaly.Anomaly {
	return anomaly.Anomaly{
		Type: anomaly.G1a,
		Ops:  []op.Op{reader, writer},
		Key:  key,
		Explanation: fmt.Sprintf(
			"%s read key %s as %s, but element %d was appended by %s, which aborted: an aborted read",
			reader.Name(), key, op.FormatList(list), e, writer.Name()),
	}
}

func readPos(o op.Op, key string) int {
	for i, m := range o.Mops {
		if m.F == op.FRead && m.Key == key && m.List != nil {
			return i
		}
	}
	return 0
}

// finalAppend returns the last element o appended to key, or the zero
// value if o never appended to key.
func finalAppend(o op.Op, key string) int {
	last := 0
	for _, m := range o.Mops {
		if m.F == op.FAppend && m.Key == key {
			last = m.Arg
		}
	}
	return last
}

func hasDuplicates(v []int) bool {
	seen := make(map[int]bool, len(v))
	for _, e := range v {
		if seen[e] {
			return true
		}
		seen[e] = true
	}
	return false
}
