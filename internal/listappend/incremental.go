package listappend

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/explain"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/rel"
	"repro/internal/workload"
)

// scanEvery is how many completions a session ingests between edge
// syncs and incremental cycle scans. Per-op anomalies (internal
// inconsistencies, duplicate elements, aborted reads, duplicate
// appends, incompatible orders) surface on the feed that proves them;
// cycle witnesses surface at the next scan point, so the per-feed cost
// of a hot key's edge rebuild is amortized over a batch of ops.
const scanEvery = 128

// session is the native incremental analysis for list-append histories
// (workload.Session). Across feeds it maintains every index the batch
// analyzer builds up front — the op/span maps, the per-element attempt
// and writer indices — plus the per-key version orders (the longest
// clean read, replaced only by a strictly longer one) and a per-key
// dependency-edge cache that is rebuilt only for keys the last chunk
// touched. A graph.Incr ingests the refreshed edges and yields the
// dirty components, which are re-searched for new cycle witnesses.
//
// Finish runs exactly the batch phase sequence over the maintained
// indices, so its Analysis is byte-identical to Analyze over the
// concatenated chunks.
type session struct {
	a  *analyzer
	hs *history.Stream

	keyst  []*keyState     // per-key maintained state, indexed by KeyID
	keys   []history.KeyID // keys with clean reads, insertion order (sorted on demand)
	orders [][]int         // current version orders: longest clean read per key

	readersOf map[elemKey][]int // committed readers of each element, for late-abort G1a

	incr      *graph.Incr
	touched   map[history.KeyID]bool // keys whose edge caches are stale
	emitted   map[string]bool        // mid-stream findings already surfaced
	poisoned  bool                   // evidence was retracted; rebuild incr at next scan
	sinceScan int
	done      bool

	// Memory-budget state (nil without a budget): quiescent-key tracking
	// and the store for frozen graph segments. See retire.go.
	rt     *workload.KeyTracker
	frozen *workload.FrozenStore
}

// keyState is one key's maintained inference state.
type keyState struct {
	reads   []cleanRead
	longest cleanRead
	has     bool
	edges   []graph.Edge
}

func beginSession(opts workload.Opts) workload.Session {
	hs := history.NewStream()
	s := &session{
		a:         newAnalyzer(opts, hs.Keys()),
		hs:        hs,
		readersOf: map[elemKey][]int{},
		incr:      graph.NewIncr(graph.KSDep),
		touched:   map[history.KeyID]bool{},
		emitted:   map[string]bool{},
	}
	if opts.MemoryBudget > 0 {
		hs.SetBudget(workload.StreamBudget(opts))
		s.rt = workload.NewKeyTracker(opts.MemoryBudget)
		s.frozen = workload.NewFrozenStore(opts.SpillDir)
		s.a.windowed = true
	}
	return s
}

// keystAt reads the KeyID-indexed state slice, which grows on demand as
// the stream interns new keys.
func (s *session) keystAt(k history.KeyID) *keyState {
	if int(k) < len(s.keyst) {
		return s.keyst[k]
	}
	return nil
}

// Feed ingests one chunk, updating every maintained index, and returns
// the anomalies the chunk made provable (see workload.Delta for the
// provisional-findings contract).
func (s *session) Feed(ops []op.Op) (workload.Delta, error) {
	if s.done {
		return workload.Delta{}, workload.ErrSessionFinished
	}
	var d workload.Delta
	for _, o := range ops {
		if err := s.hs.Add(o); err != nil {
			return workload.Delta{}, err
		}
		if o.Type == op.Invoke {
			continue
		}
		s.sinceScan++
		s.ingest(o, &d)
	}
	if s.sinceScan >= scanEvery {
		s.scan(&d)
		if s.rt != nil {
			// Sweep after the scan: the dirty components the retiring ops
			// participated in have been searched, so their witnesses are
			// out before the state backing them goes.
			s.sweep()
		}
	}
	d.Ops = s.hs.Completions()
	return d, nil
}

// ingest indexes one completion and surfaces its per-op findings.
func (s *session) ingest(o op.Op, d *workload.Delta) {
	a := s.a
	a.addOp(o, s.hs.SpanOf(o.Index))
	s.note(o)

	for _, m := range o.Mops {
		if m.F != op.FAppend {
			continue
		}
		k := a.kid(m.Key)
		s.touched[k] = true
		ek := elemKey{k, m.Arg}
		switch len(a.attempts[ek]) {
		case 1:
			if o.Type == op.Fail {
				// Readers that already observed this element read state
				// that is now known to be aborted.
				for _, r := range s.readersOf[ek] {
					ro := a.ops[r]
					s.emit(d, fmt.Sprintf("g1a|%d|%d|%d|%d", ek.key, ek.elem, r, o.Index),
						g1aAnomaly(ro, m.Key, readListOf(ro, m.Key, ek.elem), ek.elem, o))
				}
			}
		case 2:
			// The evicted writer's edges may already be in the
			// incremental graph; they are no longer evidence.
			s.poisoned = true
			s.emit(d, fmt.Sprintf("dup|%d|%d", ek.key, ek.elem), anomaly.Anomaly{
				Type: anomaly.DuplicateAppends,
				Ops:  []op.Op{a.ops[a.attempts[ek][0]], o},
				Key:  m.Key,
				Explanation: fmt.Sprintf(
					"element %d was appended to key %s by %d distinct transactions; appends must be unique for versions to be recoverable",
					ek.elem, m.Key, len(a.attempts[ek])),
			})
		}
	}
	if o.Type != op.OK {
		return
	}

	// Per-op checks whose evidence is already complete.
	d.Anomalies = append(d.Anomalies, a.internalAnomalies(o)...)
	for _, m := range o.Mops {
		if !m.ListKnown() {
			continue
		}
		if dup, ok := duplicateElements(o, m); ok {
			d.Anomalies = append(d.Anomalies, dup)
		}
		k := a.kid(m.Key)
		for _, e := range m.List {
			ek := elemKey{k, e}
			s.readersOf[ek] = append(s.readersOf[ek], o.Index)
			if w, ok := a.failedWriter[ek]; ok {
				s.emit(d, fmt.Sprintf("g1a|%d|%d|%d|%d", ek.key, e, o.Index, w),
					g1aAnomaly(o, m.Key, m.List, e, a.ops[w]))
			}
		}
		if hasDuplicates(m.List) {
			continue // not a clean read; contributes no version order
		}
		s.ingestCleanRead(o, m, d)
	}
}

// ingestCleanRead folds one clean committed read into the key's
// maintained version order, surfacing incompatible orders as they
// become provable.
func (s *session) ingestCleanRead(o op.Op, m op.Mop, d *workload.Delta) {
	k := s.a.kid(m.Key)
	s.touched[k] = true
	s.keyst = history.GrowKeyed(s.keyst, k)
	s.orders = history.GrowKeyed(s.orders, k)
	ks := s.keyst[k]
	if ks == nil {
		ks = &keyState{}
		s.keyst[k] = ks
		s.keys = append(s.keys, k)
	}
	r := cleanRead{o, m.List}
	ks.reads = append(ks.reads, r)
	switch {
	case !ks.has:
		ks.longest, ks.has = r, true
		s.orders[k] = m.List
	case len(m.List) > len(ks.longest.list):
		// The trace grows; the displaced read keeps its edges only if it
		// is a prefix of the new trace.
		if !op.IsPrefix(ks.longest.list, m.List) {
			// Replacing the trace retracts the edges inferred from it.
			s.poisoned = true
			old := ks.longest
			s.emit(d, fmt.Sprintf("incompat|%s|%d|%d", m.Key, old.o.Index, o.Index),
				incompatAnomaly(m.Key, old, r))
		}
		ks.longest = r
		s.orders[k] = m.List
	case !op.IsPrefix(m.List, ks.longest.list):
		s.emit(d, fmt.Sprintf("incompat|%s|%d|%d", m.Key, o.Index, ks.longest.o.Index),
			incompatAnomaly(m.Key, r, ks.longest))
	}
}

// scan syncs the edge caches of every touched key into the incremental
// graph and re-searches only the components the new edges dirtied.
func (s *session) scan(d *workload.Delta) {
	s.sinceScan = 0
	for _, k := range s.drainTouched() {
		ks := s.keystAt(k)
		if ks == nil {
			continue // appends without clean reads: no trace, no edges
		}
		ks.edges = s.a.keyEdges(k, ks.reads, s.orders[k])
		if !s.poisoned {
			s.incr.AddEdges(ks.edges)
		}
	}
	if s.poisoned {
		// Evidence was retracted since the last scan — a duplicate
		// append evicted a writer, or an incompatible read replaced a
		// trace — and the append-only graph would keep the stale edges
		// alive, seeding phantom provisional cycles. Rebuild it from
		// the current caches; only structurally broken histories pay
		// this, and the emitted-set keeps prior findings from
		// resurfacing.
		s.poisoned = false
		s.incr = graph.NewIncr(graph.KSDep)
		keys := append([]history.KeyID(nil), s.keys...)
		s.a.in.SortKeyIDs(keys)
		for _, k := range keys {
			s.incr.AddEdges(s.keyst[k].edges)
		}
	}
	dirty := s.incr.DirtySCCs()
	if len(dirty) == 0 {
		return
	}
	var nodes []int
	for _, scc := range dirty {
		nodes = append(nodes, scc...)
	}
	// The induced subgraph is σ_{from,to ∈ dirty}(dep) over the
	// incremental graph, seeded from the dirty node list so the cost is
	// O(edges incident to the dirty components), not O(graph).
	sub := rel.Subgraph(s.incr.Graph(), nodes)
	cycles := sub.AnomalousCycles(0, s.a.opts.Parallelism)
	if len(cycles) == 0 {
		return
	}
	expl := &explain.Explainer{Ops: s.a.ops, Keys: s.a.in, ListOrders: s.orders}
	for _, c := range cycles {
		s.emit(d, "cycle|"+graph.CycleKey(c), anomaly.Anomaly{
			Type:        anomaly.CycleType(c),
			Cycle:       c,
			Explanation: expl.Cycle(c),
		})
	}
}

func (s *session) drainTouched() []history.KeyID {
	keys := make([]history.KeyID, 0, len(s.touched))
	for k := range s.touched {
		keys = append(keys, k)
	}
	s.a.in.SortKeyIDs(keys)
	s.touched = map[history.KeyID]bool{}
	return keys
}

// emit surfaces one finding unless an earlier feed already did.
func (s *session) emit(d *workload.Delta, key string, an anomaly.Anomaly) {
	if s.emitted[key] {
		return
	}
	s.emitted[key] = true
	d.Anomalies = append(d.Anomalies, an)
}

// Finish completes the stream: it refreshes the edge caches of keys
// still pending since the last scan, then assembles the canonical
// analysis in the batch phase order over the maintained indices. Only
// the checks whose evidence is inherently global (garbage reads,
// G1a/G1b against the final writer index, dirty and lost updates) run
// over the whole history here; version orders and dependency edges are
// the maintained ones.
func (s *session) Finish() (workload.Analysis, error) {
	if s.done {
		return workload.Analysis{}, workload.ErrSessionFinished
	}
	s.done = true
	if err := s.hs.Err(); err != nil {
		// A chunk was rejected; finishing anyway would bless a history
		// the batch validator refuses.
		return workload.Analysis{}, err
	}
	if s.rt != nil {
		// Budgeted sessions retired analyzer state along the way, so the
		// maintained indices are windows, not the whole history. Rehydrate
		// the stream (History decodes every retired segment) and run the
		// batch analyzer over it — byte-identical to batch by
		// construction, at the documented O(history) finish cost.
		s.frozen.Close()
		an := Analyze(s.hs.History(), s.a.opts)
		return workload.Analysis{
			Graph:     an.Graph,
			Anomalies: an.Anomalies,
			Explainer: &explain.Explainer{Ops: an.Ops, Keys: an.Keys, ListOrders: an.VersionOrders},
		}, nil
	}
	a := s.a
	a.h = s.hs.History()
	p := a.opts.Parallelism

	for k := range s.touched {
		ks := s.keystAt(k)
		if ks == nil {
			continue
		}
		ks.edges = a.keyEdges(k, ks.reads, s.orders[k])
	}
	keys := append([]history.KeyID(nil), s.keys...)
	a.in.SortKeyIDs(keys)

	a.anomalies = append(a.anomalies, a.duplicateAppendAnomalies()...)
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.internalAnomalies(a.oks[i])
	}))
	a.collect(par.Map(p, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.readStructureAnomalies(a.oks[i])
	}))
	perKey := par.Map(p, len(keys), func(i int) []anomaly.Anomaly {
		ks := s.keyst[keys[i]]
		return a.incompatAnomalies(keys[i], ks.reads, ks.longest)
	})
	for _, anoms := range perKey {
		a.anomalies = append(a.anomalies, anoms...)
	}

	g := graph.New()
	for _, o := range a.oks {
		g.Ensure(o.Index)
	}
	for _, k := range keys {
		g.AddEdges(s.keyst[k].edges)
	}

	a.finishAnomalies(keys, s.orders)
	return workload.Analysis{
		Graph:     g,
		Anomalies: a.anomalies,
		Explainer: &explain.Explainer{Ops: a.ops, Keys: a.in, ListOrders: s.orders},
	}, nil
}

// History returns the session's validated accumulation; call after
// Finish (it aliases live state).
func (s *session) History() *history.History { return s.hs.History() }

// readListOf recovers the list value with which reader observed
// element elem of key — for the late-abort G1a path, where the read
// arrived before its writer's failure.
func readListOf(reader op.Op, key string, elem int) []int {
	for _, m := range reader.Mops {
		if !m.ListKnown() || m.Key != key {
			continue
		}
		for _, e := range m.List {
			if e == elem {
				return m.List
			}
		}
	}
	return nil
}
