package listappend

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

func analyze(t *testing.T, ops ...op.Op) *Analysis {
	t.Helper()
	return Analyze(history.MustNew(ops), workload.Opts{})
}

func hasAnomaly(a *Analysis, typ anomaly.Type) bool {
	for _, an := range a.Anomalies {
		if an.Type == typ {
			return true
		}
	}
	return false
}

func anomalyCount(a *Analysis, typ anomaly.Type) int {
	n := 0
	for _, an := range a.Anomalies {
		if an.Type == typ {
			n++
		}
	}
	return n
}

// TestCleanSequentialHistory: a perfectly serializable history yields no
// anomalies and the expected dependency edges.
func TestCleanSequentialHistory(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 0, op.OK, op.Append("x", 2)),
		op.Txn(2, 0, op.OK, op.ReadList("x", []int{1, 2})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies on clean history: %v", a.Anomalies)
	}
	if !a.Graph.Label(0, 1).Has(graph.WW) {
		t.Error("missing ww edge T0 -> T1")
	}
	if !a.Graph.Label(1, 2).Has(graph.WR) {
		t.Error("missing wr edge T1 -> T2")
	}
	if got := a.VersionOrder("x"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("version order = %v", got)
	}
}

// TestSection3SetExampleOnLists mirrors the paper's §3 progression with
// lists: a read of the empty list anti-depends on the first writer.
func TestEmptyReadAntiDependency(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.ReadList("x", []int{})),
		op.Txn(1, 1, op.OK, op.Append("x", 1)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	if !a.Graph.Label(0, 1).Has(graph.RW) {
		t.Error("read of [] should rw-depend on the first appender")
	}
	if !a.Graph.Label(1, 2).Has(graph.WR) {
		t.Error("reader of [1] should wr-depend on its writer")
	}
}

// TestTiDBGSingle reproduces the §7.1 TiDB read-skew trio (with a setup
// transaction providing the recoverable writers for elements 2 and 1).
//
//	T1: r(34, [2, 1]), append(36, 5), append(34, 4)
//	T2: append(34, 5)
//	T3: r(34, [2, 1, 5, 4])
//
// T1 did not observe T2's append of 5, so T2 rw-depends on T1; T3's read
// shows T1's 4 followed T2's 5, so T1 ww-depends on T2: G-single.
func TestTiDBGSingle(t *testing.T) {
	setup := op.Txn(0, 0, op.OK, op.Append("34", 2), op.Append("34", 1))
	t1 := op.Txn(1, 1, op.OK,
		op.ReadList("34", []int{2, 1}), op.Append("36", 5), op.Append("34", 4))
	t2 := op.Txn(2, 2, op.OK, op.Append("34", 5))
	t3 := op.Txn(3, 3, op.OK, op.ReadList("34", []int{2, 1, 5, 4}))

	a := analyze(t, setup, t1, t2, t3)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected non-cycle anomalies: %v", a.Anomalies)
	}
	if !a.Graph.Label(1, 2).Has(graph.RW) {
		t.Error("T1 should rw-depend-on T2 (missed append of 5)")
	}
	if !a.Graph.Label(2, 1).Has(graph.WW) {
		t.Error("T2 should ww-precede T1 (5 before 4 in [2 1 5 4])")
	}
	cycles := a.Graph.FindCyclesWithExactlyOne(graph.RW, graph.KSWWWR)
	if len(cycles) != 1 {
		t.Fatalf("expected one G-single cycle, got %d", len(cycles))
	}
}

// TestInternalInconsistencyFauna reproduces §7.3: a transaction appends 6
// to key 0 and then fails to read its own write.
func TestInternalInconsistencyFauna(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("0", 6), op.ReadList("0", []int{})),
	)
	if !hasAnomaly(a, anomaly.Internal) {
		t.Fatalf("expected internal anomaly, got %v", a.Anomalies)
	}
}

func TestInternalConsistencyOwnWritesVisible(t *testing.T) {
	// Reading your own appends in order is fine.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 0, op.OK,
			op.ReadList("x", []int{1}),
			op.Append("x", 2),
			op.ReadList("x", []int{1, 2})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("false positive: %v", a.Anomalies)
	}
}

func TestInternalAppendThenShorterRead(t *testing.T) {
	// Append 2 then read a value that doesn't end in 2: internal anomaly,
	// even with no prior read.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 0, op.OK, op.Append("x", 2), op.ReadList("x", []int{1})),
	)
	if !hasAnomaly(a, anomaly.Internal) {
		t.Fatalf("expected internal anomaly, got %v", a.Anomalies)
	}
}

func TestInternalRepeatedReadMustMatch(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("x", 2)),
		op.Txn(1, 1, op.OK,
			op.ReadList("x", []int{1}),
			op.ReadList("x", []int{1, 2})),
	)
	if !hasAnomaly(a, anomaly.Internal) {
		t.Fatalf("expected internal anomaly for changed repeated read, got %v", a.Anomalies)
	}
}

// TestG1aAbortedRead: reading an element appended by an aborted
// transaction.
func TestG1aAbortedRead(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
	)
	if !hasAnomaly(a, anomaly.G1a) {
		t.Fatalf("expected G1a, got %v", a.Anomalies)
	}
}

// TestG1bIntermediateRead: observing a version from the middle of another
// transaction.
func TestG1bIntermediateRead(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("x", 2)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
	)
	if !hasAnomaly(a, anomaly.G1b) {
		t.Fatalf("expected G1b, got %v", a.Anomalies)
	}
}

func TestOwnIntermediateReadIsFine(t *testing.T) {
	// A transaction may observe its own intermediate states.
	a := analyze(t,
		op.Txn(0, 0, op.OK,
			op.Append("x", 1), op.ReadList("x", []int{1}), op.Append("x", 2)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1, 2})),
	)
	if hasAnomaly(a, anomaly.G1b) {
		t.Fatalf("own intermediate read misreported: %v", a.Anomalies)
	}
}

// TestDirtyUpdate: committed state built on an aborted write (§4.1.5).
func TestDirtyUpdate(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1, 2})),
	)
	if !hasAnomaly(a, anomaly.DirtyUpdate) {
		t.Fatalf("expected dirty update, got %v", a.Anomalies)
	}
	// The read of the aborted element is also a G1a.
	if !hasAnomaly(a, anomaly.G1a) {
		t.Fatalf("expected G1a alongside dirty update, got %v", a.Anomalies)
	}
}

// TestGarbageRead: an element nobody ever appended.
func TestGarbageRead(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.ReadList("x", []int{99})),
	)
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("expected garbage read, got %v", a.Anomalies)
	}
}

func TestCrashedClientAppendIsNotGarbage(t *testing.T) {
	// A dangling invoke (client crashed) may still have taken effect.
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 1, Process: 1, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		{Index: 2, Process: 1, Type: op.OK, Mops: []op.Mop{op.ReadList("x", []int{1})}},
	})
	a := Analyze(h, workload.Opts{})
	if hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("crashed client's append misreported as garbage: %v", a.Anomalies)
	}
}

// TestDuplicateElements: the same element twice in one read.
func TestDuplicateElements(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1, 1})),
	)
	if !hasAnomaly(a, anomaly.DuplicateElements) {
		t.Fatalf("expected duplicate elements, got %v", a.Anomalies)
	}
}

// TestDuplicateAppends: two transactions appending the same element.
func TestDuplicateAppends(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 1)),
	)
	if !hasAnomaly(a, anomaly.DuplicateAppends) {
		t.Fatalf("expected duplicate appends, got %v", a.Anomalies)
	}
}

// TestIncompatibleOrder: two committed reads neither of which is a prefix
// of the other imply an aborted read in every interpretation.
func TestIncompatibleOrder(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1, 2})),
		op.Txn(3, 3, op.OK, op.ReadList("x", []int{2, 1})),
	)
	if !hasAnomaly(a, anomaly.IncompatibleOrder) {
		t.Fatalf("expected incompatible order, got %v", a.Anomalies)
	}
}

func TestPrefixReadsCompatible(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1})),
		op.Txn(3, 3, op.OK, op.ReadList("x", []int{1, 2})),
	)
	if hasAnomaly(a, anomaly.IncompatibleOrder) {
		t.Fatalf("prefix reads misreported: %v", a.Anomalies)
	}
}

// TestG0WriteCycle: pure write-write cycle across two keys.
func TestG0WriteCycle(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("y", 2)),
		op.Txn(1, 1, op.OK, op.Append("y", 1), op.Append("x", 2)),
		// Reads establish x = [1, 2] but y = [1, 2] too — so T0's append
		// to x preceded T1's, but T1's append to y preceded T0's.
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1, 2})),
		op.Txn(3, 3, op.OK, op.ReadList("y", []int{1, 2})),
	)
	cycles := a.Graph.FindCycles(graph.KSWW)
	if len(cycles) != 1 {
		t.Fatalf("expected G0 cycle, found %d", len(cycles))
	}
}

// TestG1cCycle: information flow cycle with ww and wr edges.
func TestG1cCycle(t *testing.T) {
	a := analyze(t,
		// T0 reads T1's append to y, and T1 reads T0's append to x.
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.ReadList("y", []int{1})),
		op.Txn(1, 1, op.OK, op.Append("y", 1), op.ReadList("x", []int{1})),
	)
	cycles := a.Graph.FindCycles(graph.KSWWWR)
	if len(cycles) != 1 {
		t.Fatalf("expected G1c cycle, found %d", len(cycles))
	}
	for _, s := range cycles[0].Steps {
		if s.Via != graph.WR {
			t.Errorf("expected wr steps, got %v", s.Via)
		}
	}
}

// TestWriteSkewG2: the classic SI write skew produces two rw edges and no
// shorter anomaly.
func TestWriteSkewG2(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.ReadList("x", []int{}), op.Append("y", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("y", []int{}), op.Append("x", 1)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1}), op.ReadList("y", []int{1})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	if cycles := a.Graph.FindCyclesWithExactlyOne(graph.RW, graph.KSWWWR); len(cycles) != 0 {
		t.Fatalf("write skew misclassified as G-single")
	}
	cycles := a.Graph.FindCyclesWithAtLeastOne(graph.RW, graph.KSDep)
	if len(cycles) != 1 {
		t.Fatalf("expected G2 cycle, found %d", len(cycles))
	}
	if cycles[0].CountVia(graph.RW) != 2 {
		t.Errorf("expected 2 rw edges, got %d", cycles[0].CountVia(graph.RW))
	}
}

// TestInfoWritesParticipate: an indeterminate transaction whose append is
// observed acts as a writer in the dependency graph (§4.3.2).
func TestInfoWritesParticipate(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.Info, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	if !a.Graph.Label(0, 1).Has(graph.WR) {
		t.Error("info writer should wr-precede its reader")
	}
}

// TestFailedReadsIgnored: reads inside aborted transactions produce no
// dependencies.
func TestFailedReadsIgnored(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.Fail, op.ReadList("x", []int{1})),
	)
	if a.Graph.Label(0, 1) != 0 {
		t.Error("aborted reader should have no incoming wr edge")
	}
}

// TestLostUpdateDetection: a committed append missing from a longest read
// that began after the append completed.
func TestLostUpdateDetection(t *testing.T) {
	b := history.NewBuilder()
	w1 := []op.Mop{op.Append("x", 1)}
	b.Invoke(0, w1)
	b.Complete(0, op.OK, w1)
	w2 := []op.Mop{op.Append("x", 2)}
	b.Invoke(1, w2)
	b.Complete(1, op.OK, w2)
	r := []op.Mop{op.ReadList("x", []int{2})}
	b.Invoke(2, []op.Mop{op.Read("x")})
	b.Complete(2, op.OK, r)
	h := b.MustHistory()

	a := Analyze(h, workload.Opts{DetectLostUpdates: true})
	if !hasAnomaly(a, anomaly.LostUpdate) {
		t.Fatalf("expected lost update, got %v", a.Anomalies)
	}
	// Without the option the inference must stay off.
	a2 := Analyze(h, workload.Opts{})
	if hasAnomaly(a2, anomaly.LostUpdate) {
		t.Fatal("lost update reported with detection disabled")
	}
}

func TestNoLostUpdateForConcurrentRead(t *testing.T) {
	// The read overlaps the append: its absence proves nothing.
	b := history.NewBuilder()
	b.Invoke(0, []op.Mop{op.Append("x", 1)})
	b.Invoke(1, []op.Mop{op.Read("x")})
	b.Complete(0, op.OK, []op.Mop{op.Append("x", 1)})
	b.Complete(1, op.OK, []op.Mop{op.ReadList("x", []int{})})
	h := b.MustHistory()
	a := Analyze(h, workload.Opts{DetectLostUpdates: true})
	if hasAnomaly(a, anomaly.LostUpdate) {
		t.Fatalf("concurrent read misreported as lost update: %v", a.Anomalies)
	}
}

// TestVersionOrderExcludesIncompatibleSeeds: incompatible reads must not
// seed edges.
func TestIncompatibleReadSeedsNoEdges(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1, 2})),
		op.Txn(3, 3, op.OK, op.ReadList("x", []int{2})),
	)
	if !hasAnomaly(a, anomaly.IncompatibleOrder) {
		t.Fatal("expected incompatible order")
	}
	// T3's read of [2] must not generate a wr edge from T1 claiming T3
	// observed version [1 2]'s predecessor, nor an rw edge.
	if a.Graph.Label(3, 0) != 0 || a.Graph.Label(3, 1) != 0 {
		t.Error("incompatible read seeded dependency edges")
	}
}

func TestMultipleKeysIndependentOrders(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("y", 10)),
		op.Txn(1, 1, op.OK, op.Append("x", 2), op.Append("y", 20)),
		op.Txn(2, 2, op.OK,
			op.ReadList("x", []int{1, 2}), op.ReadList("y", []int{10, 20})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("unexpected anomalies: %v", a.Anomalies)
	}
	if len(a.VersionOrder("x")) != 2 || len(a.VersionOrder("y")) != 2 {
		t.Errorf("expected 2-element version orders for x and y, got %v and %v",
			a.VersionOrder("x"), a.VersionOrder("y"))
	}
	if !a.Graph.Label(0, 1).Has(graph.WW) {
		t.Error("agreeing keys should still give ww edge")
	}
}

func TestAnomalyCountsAreDeduplicated(t *testing.T) {
	// A single aborted element read twice in the same transaction reports
	// one G1a per read mop, not per element occurrence beyond that.
	a := analyze(t,
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1}), op.ReadList("x", []int{1})),
	)
	if got := anomalyCount(a, anomaly.G1a); got != 2 {
		t.Errorf("G1a count = %d, want 2 (one per read)", got)
	}
}
