// Package service runs the checker as a long-lived HTTP job service —
// the engine behind cmd/elled. Where cmd/elle is one check per process,
// the service manages many concurrent checking jobs, each one a
// core.Stream session fed by chunked history uploads: a test harness
// (or a fleet of them) streams histories over HTTP as it produces them,
// polls provisional findings mid-run, and fetches a final report that
// is byte-identical to what `elle` prints for the same history and
// options — the stream/batch equivalence contract, exposed as a
// network service.
//
// Chunks are JSON lines by default, or ellebin (docs/FORMATS.md) when
// uploaded with Content-Type application/x-ellebin. A job's first chunk
// fixes its format; ellebin chunks may split records at arbitrary byte
// offsets — the per-job decoder carries the partial record (and the key
// dictionary) across uploads, and a job whose stream is still mid-record
// at report time fails rather than reporting on a silently truncated
// history.
//
// The HTTP surface (see docs/SERVICE.md for the full reference):
//
//	POST   /v1/jobs              create a job (workload, model, parallelism)
//	GET    /v1/jobs              list resident jobs
//	GET    /v1/jobs/{id}         status + provisional findings so far
//	POST   /v1/jobs/{id}/chunks  feed the next chunk of JSON-lines ops
//	GET    /v1/jobs/{id}/report  finalize (first call) and render the report
//	DELETE /v1/jobs/{id}         cancel and discard a job
//	GET    /v1/workloads         registered workload names
//	GET    /healthz              liveness probe
//
// Four limits bound the service (Config): a cap on resident jobs
// (creation beyond it is refused with 429 — backpressure, not
// queueing), a per-chunk body cap (413), an idle timeout after which
// jobs nobody has touched are reaped, and a finished-job TTL after
// which done and failed jobs are reaped even if clients keep polling
// them — finished jobs hold their histories and count against the job
// cap, so without the TTL a harness that never DELETEs its jobs would
// drive the service to permanent 429. Chunks of one job must be
// uploaded sequentially, in history index order — the same restriction
// core.Stream imposes on every caller; different jobs are fully
// independent and may be driven concurrently.
//
// A job created with "memory_budget": N checks with bounded resident
// memory: roughly the last N completions stay decoded, earlier settled
// history retires to compact segments spilled to disk, and analyzer
// caches for quiescent keys are released (see docs/STREAMING.md). The
// status endpoint then reports resident/retired counters, and the final
// report is still byte-identical to an unbudgeted check.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binhist"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/jsonhist"
	"repro/internal/op"
	"repro/internal/report"
	"repro/internal/workload"
)

// Config bounds a Service. The zero value means: 8 resident jobs, 8 MiB
// per chunk, 10 minute idle reaping, 1 minute finished-job reaping.
type Config struct {
	// MaxJobs caps resident jobs — accepting and finished alike, since a
	// finished job still holds its history until fetched and deleted (or
	// reaped). Creation beyond the cap returns 429.
	MaxJobs int
	// MaxChunkBytes caps one chunk upload's body. Oversized chunks are
	// refused with 413; split the history into smaller chunks instead.
	MaxChunkBytes int64
	// IdleTimeout reaps jobs that no request has touched for this long,
	// so abandoned streams cannot hold their histories forever.
	IdleTimeout time.Duration
	// FinishedTTL reaps done and failed jobs this long after they
	// finish, even when clients keep polling them. Finished jobs count
	// against MaxJobs — their histories are still resident — so without
	// this a harness that fetches reports but never DELETEs its jobs
	// drives the service to permanent 429; with it, capacity recovers on
	// its own. The report and error have already been delivered by the
	// time a job enters a finished state, so reaping loses nothing a
	// client has not had FinishedTTL to re-fetch.
	FinishedTTL time.Duration
	// SpillDir is the directory where jobs created with a memory budget
	// spill retired history segments (as unlinked temporary files).
	// Default: the OS temp dir.
	SpillDir string
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 8
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 8 << 20
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.FinishedTTL <= 0 {
		c.FinishedTTL = time.Minute
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	return c
}

// Service is the HTTP checking service: an http.Handler plus the job
// table behind it. Create one with New and Close it when done (Close
// stops the idle reaper; it does not wait for in-flight requests — the
// enclosing http.Server's Shutdown does that).
type Service struct {
	cfg  Config
	mux  *http.ServeMux
	done chan struct{}
	stop sync.Once

	mu   sync.Mutex
	jobs map[string]*job
	seq  int
}

// New builds a Service under cfg and starts its idle reaper.
func New(cfg Config) *Service {
	s := &Service{
		cfg:  cfg.withDefaults(),
		mux:  http.NewServeMux(),
		done: make(chan struct{}),
		jobs: make(map[string]*job),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/chunks", s.handleChunk)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	go s.reap()
	return s
}

// ServeHTTP dispatches to the service's routes.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the idle reaper. Safe to call more than once.
func (s *Service) Close() { s.stop.Do(func() { close(s.done) }) }

// Jobs returns the number of resident jobs, for monitoring and tests.
func (s *Service) Jobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// reap deletes jobs nobody has touched for IdleTimeout and finished
// jobs older than FinishedTTL, checking a few times per window.
func (s *Service) reap() {
	window := s.cfg.IdleTimeout
	if s.cfg.FinishedTTL < window {
		window = s.cfg.FinishedTTL
	}
	interval := window / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-t.C:
			s.mu.Lock()
			for id, j := range s.jobs {
				if now.Sub(j.touched()) > s.cfg.IdleTimeout {
					delete(s.jobs, id)
					continue
				}
				if fin := j.finishedAt(); !fin.IsZero() && now.Sub(fin) > s.cfg.FinishedTTL {
					delete(s.jobs, id)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Job lifecycle states.
const (
	stateAccepting = "accepting" // chunks may be fed
	stateDone      = "done"      // finalized; report available
	stateFailed    = "failed"    // a chunk was rejected; terminal
)

// job is one in-progress check: a core.Stream plus the bookkeeping the
// endpoints expose. Its mutex serializes stream access — core.Stream is
// single-goroutine — so concurrent requests against one job are safe,
// if pointless: chunk order across racing uploads is the client's
// responsibility.
type job struct {
	id     string
	seq    int
	info   workload.Info
	opts   core.Opts
	active atomic.Int64 // unix nanos of the last request that touched the job
	fin    atomic.Int64 // unix nanos of entering a finished state; 0 while accepting

	mu     sync.Mutex
	stream *core.Stream
	state  string
	ops    int
	anoms  []report.Anomaly // provisional findings, accumulated across chunks
	result *core.CheckResult
	errMsg string

	// format is fixed by the first chunk ("json" or "binary"); mixing
	// formats within one job is refused — an ellebin decoder mid-record
	// cannot make sense of JSON bytes, and vice versa.
	format string
	// bin carries ellebin decode state — the key dictionary and any
	// partial trailing record — across chunk uploads, which is what lets
	// clients split the stream at arbitrary byte offsets.
	bin *binhist.ChunkDecoder
}

func (j *job) touch()             { j.active.Store(time.Now().UnixNano()) }
func (j *job) touched() time.Time { return time.Unix(0, j.active.Load()) }

// finishedAt returns when the job entered a finished state (done or
// failed), or the zero time while it is still accepting.
func (j *job) finishedAt() time.Time {
	n := j.fin.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// fail records a terminal error; the job accepts no further chunks.
func (j *job) fail(err error) {
	j.state = stateFailed
	j.errMsg = err.Error()
	j.fin.Store(time.Now().UnixNano())
}

// jobJSON is the wire shape of a job's status.
type jobJSON struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Workload string `json:"workload"`
	Model    string `json:"model"`
	// Ops counts completion ops ingested so far.
	Ops int `json:"ops"`
	// Memory reports the bounded-memory session's resident/retired
	// counters; present only for jobs created with memory_budget > 0.
	Memory *memoryJSON `json:"memory,omitempty"`
	// Anomalies are the provisional mid-stream findings surfaced so far
	// (see workload.Delta for their contract); the report endpoint has
	// the definitive set.
	Anomalies []report.Anomaly `json:"anomalies,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// memoryJSON is the wire shape of a budgeted job's memory counters.
type memoryJSON struct {
	// Budget is the configured window, in completions.
	Budget int `json:"budget"`
	// ResidentOps is the live-tail length: ops still held decoded.
	ResidentOps int `json:"resident_ops"`
	// RetiredOps counts ops released into encoded segments, Segments the
	// segment count, RetiredBytes the encoded bytes held in memory, and
	// SpilledBytes the encoded bytes written to the spill file.
	RetiredOps   int   `json:"retired_ops"`
	Segments     int   `json:"segments"`
	RetiredBytes int   `json:"retired_bytes"`
	SpilledBytes int64 `json:"spilled_bytes"`
	// RetiredKeys counts keys whose analyzer caches were released after
	// a full window of quiescence; FrozenBytes the encoded size of the
	// dependency-graph regions condensed along with them.
	RetiredKeys int `json:"retired_keys"`
	FrozenBytes int `json:"frozen_bytes,omitempty"`
	// Degraded names any fallback taken (spill I/O failure, codec
	// failure); retirement degrades rather than corrupting.
	Degraded string `json:"degraded,omitempty"`
}

// statusLocked snapshots a job; callers hold j.mu.
func (j *job) statusLocked() jobJSON {
	st := jobJSON{
		ID:        j.id,
		State:     j.state,
		Workload:  string(j.info.Name),
		Model:     string(j.opts.Model),
		Ops:       j.ops,
		Anomalies: append([]report.Anomaly(nil), j.anoms...),
		Error:     j.errMsg,
	}
	if j.opts.MemoryBudget > 0 {
		if rs, ok := j.stream.RetireStats(); ok {
			st.Memory = &memoryJSON{
				Budget:       j.opts.MemoryBudget,
				ResidentOps:  rs.Stream.ResidentOps,
				RetiredOps:   rs.Stream.RetiredOps,
				Segments:     rs.Stream.Segments,
				RetiredBytes: rs.Stream.RetiredBytes,
				SpilledBytes: rs.Stream.SpilledBytes,
				RetiredKeys:  rs.RetiredKeys,
				FrozenBytes:  rs.FrozenBytes,
				Degraded:     rs.Stream.Degraded,
			}
		}
	}
	return st
}

// deltaJSON is the wire shape of one chunk's outcome.
type deltaJSON struct {
	Ops       int              `json:"ops"`
	Anomalies []report.Anomaly `json:"anomalies,omitempty"`
}

// createRequest is the body of POST /v1/jobs. Omitted fields default
// exactly as cmd/elle's flags do: list-append, strict-serializable,
// one decode/check worker per CPU.
type createRequest struct {
	Workload    string `json:"workload"`
	Model       string `json:"model"`
	Parallelism int    `json:"parallelism"`
	// MemoryBudget > 0 bounds the job's resident memory to roughly the
	// last MemoryBudget completions: settled history prefixes retire to
	// encoded segments spilled under Config.SpillDir, and analyzer caches
	// for quiescent keys are released. The final report is byte-identical
	// to an unbudgeted job's. 0 (the default) keeps everything resident.
	MemoryBudget int `json:"memory_budget"`
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	body := http.MaxBytesReader(w, r.Body, 4096)
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Workload == "" {
		req.Workload = string(workload.ListAppend)
	}
	info, ok := workload.Lookup(req.Workload)
	if !ok {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("unknown workload %q; choose from: %s", req.Workload, workload.NameList()))
		return
	}
	if req.Model == "" {
		req.Model = string(consistency.StrictSerializable)
	}
	model := consistency.Model(req.Model)
	if !consistency.Known(model) {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown model %q", req.Model))
		return
	}

	if req.MemoryBudget < 0 {
		writeErr(w, http.StatusBadRequest, "memory_budget must be >= 0")
		return
	}
	opts := core.OptsFor(core.Workload(info.Name), model)
	opts.Parallelism = req.Parallelism
	if req.MemoryBudget > 0 {
		opts.MemoryBudget = req.MemoryBudget
		opts.SpillDir = s.cfg.SpillDir
	}

	s.mu.Lock()
	if len(s.jobs) >= s.cfg.MaxJobs {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("at capacity: %d resident jobs; finish, delete, or wait for reaping", s.cfg.MaxJobs))
		return
	}
	s.seq++
	j := &job{
		id:     fmt.Sprintf("j%d", s.seq),
		seq:    s.seq,
		info:   info,
		opts:   opts,
		stream: core.CheckStream(opts),
		state:  stateAccepting,
	}
	j.touch()
	s.jobs[j.id] = j
	s.mu.Unlock()

	j.mu.Lock()
	st := j.statusLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Service) handleChunk(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	j.touch()
	defer j.touch()
	if r.ContentLength > s.cfg.MaxChunkBytes {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("chunk of %d bytes exceeds the %d-byte limit; split it", r.ContentLength, s.cfg.MaxChunkBytes))
		return
	}
	// Drain the (bounded) body before taking the job lock: a slow or
	// stalled uploader must not hold j.mu across a network read, which
	// would block the job's status and report — and the list endpoint
	// for everyone. It also means an oversized chunk is always refused
	// before the stream sees a byte, so the job survives and the client
	// can re-split and resend.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxChunkBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeErr(w, code, err.Error())
		return
	}

	format := chunkFormat(r.Header.Get("Content-Type"))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateAccepting {
		writeErr(w, http.StatusConflict, fmt.Sprintf("job is %s", j.state))
		return
	}
	if j.format == "" {
		j.format = format
	} else if j.format != format {
		// Not a job failure: the stream is intact, the chunk just never
		// reached it. The client can resend with the right Content-Type.
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("job is a %s stream; this chunk is %s — one job, one format", j.format, format))
		return
	}
	var delta deltaJSON
	if format == formatBinary {
		if j.bin == nil {
			j.bin = new(binhist.ChunkDecoder)
		}
		ops, err := j.bin.Feed(body)
		if err != nil {
			j.fail(err)
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := j.feedLocked(ops, &delta); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		delta.Ops = j.ops
		writeJSON(w, http.StatusOK, delta)
		return
	}
	dec := jsonhist.NewStreamDecoder(bytes.NewReader(body), jsonhist.DecodeOpts{
		Register:    j.info.RegisterReads,
		Parallelism: j.opts.Parallelism,
	})
	for {
		ops, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			j.fail(err)
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := j.feedLocked(ops, &delta); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	delta.Ops = j.ops
	writeJSON(w, http.StatusOK, delta)
}

// Chunk upload formats, fixed per job by its first chunk.
const (
	formatJSON   = "json"
	formatBinary = "binary"
)

// chunkFormat maps a chunk upload's Content-Type to its history format.
// Anything that is not ellebin's type — including absent or unparseable
// values — is read as JSON lines, the format every pre-ellebin client
// sends without a Content-Type.
func chunkFormat(contentType string) string {
	if mt, _, err := mime.ParseMediaType(contentType); err == nil && mt == binhist.ContentType {
		return formatBinary
	}
	return formatJSON
}

// feedLocked feeds one batch of decoded ops into the job's stream and
// accumulates the provisional findings it surfaces, failing the job on
// a stream error. Callers hold j.mu.
func (j *job) feedLocked(ops []op.Op, delta *deltaJSON) error {
	if len(ops) == 0 {
		return nil // a chunk may complete no record
	}
	d, err := j.stream.Feed(ops)
	if err != nil {
		j.fail(err)
		return err
	}
	j.ops = d.Ops
	for _, a := range d.Anomalies {
		ra := report.FromAnomaly(a)
		j.anoms = append(j.anoms, ra)
		delta.Anomalies = append(delta.Anomalies, ra)
	}
	return nil
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	j.touch()
	j.mu.Lock()
	st := j.statusLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	j.touch()
	defer j.touch()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == stateFailed {
		writeErr(w, http.StatusConflict, fmt.Sprintf("job failed: %s", j.errMsg))
		return
	}
	if j.state == stateAccepting {
		// An ellebin job whose uploads stopped mid-record must not report:
		// the tail of the history never arrived, and a report now would
		// silently cover a prefix. The framing error names the cut.
		if j.bin != nil {
			if err := j.bin.Close(); err != nil {
				j.fail(err)
				writeErr(w, http.StatusConflict, fmt.Sprintf("job failed: %s", j.errMsg))
				return
			}
		}
		res, err := j.stream.Finish()
		if err != nil {
			j.fail(err)
			writeErr(w, http.StatusConflict, fmt.Sprintf("job failed: %s", j.errMsg))
			return
		}
		j.state = stateDone
		j.result = res
		j.fin.Store(time.Now().UnixNano())
	}
	w.Header().Set("X-Elle-Valid", fmt.Sprintf("%t", j.result.Valid))
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := report.New(j.stream.History(), core.Workload(j.info.Name), j.result).Write(w); err != nil {
			return // mid-body; too late for a status code
		}
		return
	}
	// The default rendering is exactly cmd/elle's stdout for the same
	// history and options: same CheckResult (stream/batch equivalence),
	// same report.Prose.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	report.Prose(w, j.result, report.ProseOpts{})
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.jobs[id]
	delete(s.jobs, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	out := struct {
		Jobs []jobJSON `json:"jobs"`
	}{Jobs: make([]jobJSON, 0, len(jobs))}
	for _, j := range jobs {
		j.mu.Lock()
		out.Jobs = append(out.Jobs, j.statusLocked())
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workloads []string `json:"workloads"`
	}{Workloads: workload.Names()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}
