// Package service runs the checker as a long-lived HTTP job service —
// the engine behind cmd/elled. Where cmd/elle is one check per process,
// the service manages many concurrent checking jobs, each one a
// core.Stream session fed by chunked history uploads: a test harness
// (or a fleet of them) streams histories over HTTP as it produces them,
// polls provisional findings mid-run, and fetches a final report that
// is byte-identical to what `elle` prints for the same history and
// options — the stream/batch equivalence contract, exposed as a
// network service.
//
// Chunks are JSON lines by default, or ellebin (docs/FORMATS.md) when
// uploaded with Content-Type application/x-ellebin. A job's first chunk
// fixes its format; ellebin chunks may split records at arbitrary byte
// offsets — the per-job decoder carries the partial record (and the key
// dictionary) across uploads, and a job whose stream is still mid-record
// at report time fails rather than reporting on a silently truncated
// history.
//
// Three subsystems sit between the HTTP handlers and the sessions:
//
//   - Durability (internal/wal): with Config.WALDir set, every job's
//     create parameters and every accepted chunk are journaled to a
//     per-job WAL before the session sees a byte — acked ⇒ journaled.
//     On startup the service replays surviving journals, re-feeding each
//     job's chunks, so a killed elled comes back with its in-flight
//     streams resumable: clients compare their sent-chunk count against
//     the status endpoint's accepted count and re-send the difference
//     (the resume protocol in docs/SERVICE.md).
//
//   - Inference sharding (shards.go): chunk ingest runs on a pool of N
//     single-goroutine shard workers with bounded queues, decoupling
//     handler goroutines from decode/feed work. A job is pinned to one
//     shard — hashed from its first history key, the same keys the
//     history interner densifies — so its chunks stay FIFO and reports
//     are byte-identical to batch at any shard count; a full queue is
//     429 shard_busy, not an unbounded queue.
//
//   - Metrics (metrics.go, internal/promtext): GET /metrics serves
//     Prometheus text exposition — jobs by state, chunk/byte/op ingest
//     counters, refusals by code, WAL append volume and fsync latency,
//     shard queue depths, and the bounded-memory session counters.
//
// The HTTP surface (see docs/SERVICE.md for the full reference):
//
//	POST   /v1/jobs              create a job (workload, model, parallelism)
//	GET    /v1/jobs              list resident jobs (?state=, limit/next paging)
//	GET    /v1/jobs/{id}         status + provisional findings so far
//	POST   /v1/jobs/{id}/chunks  feed the next chunk of JSON-lines ops
//	GET    /v1/jobs/{id}/report  finalize (first call) and render the report
//	DELETE /v1/jobs/{id}         cancel a job and delete its WAL journal
//	GET    /v1/workloads         registered workload names
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness probe
//
// Every non-2xx response carries one machine-readable error envelope,
// {"error":{"code":...,"message":...,"retry_after_s":...}} — the codes
// are stable API (errors.go) and elleclient maps them to typed errors.
//
// Limits bound the service (Config): a cap on resident jobs (creation
// beyond it is refused with 429 at_capacity — backpressure, not
// queueing), a per-chunk body cap (413 chunk_too_large), bounded shard
// queues (429 shard_busy), an idle timeout after which jobs nobody has
// touched are reaped, and a finished-job TTL after which done and
// failed jobs are reaped even if clients keep polling them — finished
// jobs hold their histories and count against the job cap, so without
// the TTL a harness that never DELETEs its jobs would drive the service
// to permanent 429. Chunks of one job must be uploaded sequentially, in
// history index order — the same restriction core.Stream imposes on
// every caller; different jobs are fully independent and may be driven
// concurrently.
//
// A job created with "memory_budget": N checks with bounded resident
// memory: roughly the last N completions stay decoded, earlier settled
// history retires to compact segments spilled to disk, and analyzer
// caches for quiescent keys are released (see docs/STREAMING.md). The
// status endpoint then reports resident/retired counters, and the final
// report is still byte-identical to an unbudgeted check.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binhist"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/jsonhist"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Config bounds a Service. The zero value means: 8 resident jobs, 8 MiB
// per chunk, 10 minute idle reaping, 1 minute finished-job reaping, one
// inference shard per CPU with 32-deep queues, and no WAL.
type Config struct {
	// MaxJobs caps resident jobs — accepting and finished alike, since a
	// finished job still holds its history until fetched and deleted (or
	// reaped). Creation beyond the cap returns 429 at_capacity. Replayed
	// WAL jobs are always admitted, even past the cap: journaled work is
	// not dropped to honor a tuning knob.
	MaxJobs int
	// MaxChunkBytes caps one chunk upload's body. Oversized chunks are
	// refused with 413 chunk_too_large; split the history instead.
	MaxChunkBytes int64
	// IdleTimeout reaps jobs that no request has touched for this long,
	// so abandoned streams cannot hold their histories forever.
	IdleTimeout time.Duration
	// FinishedTTL reaps done and failed jobs this long after they
	// finish, even when clients keep polling them. Finished jobs count
	// against MaxJobs — their histories are still resident — so without
	// this a harness that fetches reports but never DELETEs its jobs
	// drives the service to permanent 429; with it, capacity recovers on
	// its own. The report and error have already been delivered by the
	// time a job enters a finished state, so reaping loses nothing a
	// client has not had FinishedTTL to re-fetch.
	FinishedTTL time.Duration
	// SpillDir is the directory where jobs created with a memory budget
	// spill retired history segments (as unlinked temporary files).
	// Default: the OS temp dir.
	SpillDir string

	// Shards is the inference pool's worker count — the bound on chunks
	// decoding and feeding concurrently, whatever the HTTP concurrency.
	// Any shard count yields byte-identical reports; it only changes how
	// much inference runs in parallel. Default: one per CPU.
	Shards int
	// ShardQueue is each shard's queue depth; a chunk arriving at a full
	// queue is refused with 429 shard_busy. Default 32.
	ShardQueue int

	// WALDir, when set, enables the job WAL: every job journals its
	// create parameters and accepted chunks to <WALDir>/<id>.wal before
	// feeding, and New replays surviving journals so jobs outlive
	// crashes. Empty (the default) disables journaling.
	WALDir string
	// WALSync selects fsync policy for the WAL: "always" (default —
	// every acked chunk survives any crash), "interval" (bounded
	// staleness), or "none" (the OS flushes; crashes lose more acked
	// chunks, which clients re-send via the resume protocol).
	WALSync string
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 8
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 8 << 20
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.FinishedTTL <= 0 {
		c.FinishedTTL = time.Minute
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	if c.Shards <= 0 {
		c.Shards = par.Procs(0)
	}
	if c.ShardQueue <= 0 {
		c.ShardQueue = 32
	}
	return c
}

// Service is the HTTP checking service: an http.Handler plus the job
// table, inference pool, and WAL behind it. Create one with New and
// Close it when done. Close stops the reaper and the shard workers and
// closes (but keeps) WAL journals; call it only after the enclosing
// http.Server has drained in-flight requests (its Shutdown does that).
type Service struct {
	cfg     Config
	mux     *http.ServeMux
	done    chan struct{}
	stop    sync.Once
	pool    *shardPool
	met     *metrics
	walOpts wal.Options

	mu      sync.Mutex
	jobs    map[string]*job
	seq     int
	skipped []string // WAL files present but not replayable
}

// New builds a Service under cfg, replays any WAL journals in
// cfg.WALDir, and starts the idle reaper and shard workers. It errors
// when the WAL directory cannot be created or listed, or cfg.WALSync is
// not a sync mode; individual unreadable journals are skipped (see
// SkippedWALs), not fatal.
func New(cfg Config) (*Service, error) {
	s := &Service{
		cfg:  cfg.withDefaults(),
		mux:  http.NewServeMux(),
		done: make(chan struct{}),
		jobs: make(map[string]*job),
	}
	s.pool = newShardPool(s.cfg.Shards, s.cfg.ShardQueue)
	s.met = newMetrics(s)
	mode, err := wal.ParseSyncMode(s.cfg.WALSync)
	if err != nil {
		return nil, err
	}
	s.walOpts = wal.Options{
		Mode:    mode,
		OnFsync: func(d time.Duration) { s.met.walFsync.Observe(d.Seconds()) },
	}
	if s.cfg.WALDir != "" {
		if err := os.MkdirAll(s.cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: wal dir: %w", err)
		}
		if err := s.replayWALs(); err != nil {
			return nil, err
		}
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/chunks", s.handleChunk)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	go s.reap()
	return s, nil
}

// ServeHTTP dispatches to the service's routes.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the reaper and shard workers and closes open WAL
// journals (leaving them on disk for the next start's replay). Call
// after the enclosing server has drained. Safe to call more than once.
func (s *Service) Close() {
	s.stop.Do(func() {
		close(s.done)
		s.pool.stop()
		for _, j := range s.snapshot() {
			j.mu.Lock()
			if j.wal != nil {
				j.wal.Close()
			}
			j.mu.Unlock()
		}
	})
}

// Jobs returns the number of resident jobs, for monitoring and tests.
func (s *Service) Jobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// SkippedWALs returns the paths of WAL files found at startup that were
// not replayable (corrupt, or naming an unknown workload or model).
// They are left on disk for inspection.
func (s *Service) SkippedWALs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.skipped...)
}

// replayWALs reconstructs jobs from the WAL directory: for each
// readable journal, a fresh session is created from the journaled
// create parameters and every journaled chunk is re-fed, in order —
// the same path a live upload takes, minus the re-journaling. A job
// whose replayed chunk fails to decode lands in the failed state, just
// as it would have before the crash. Torn trailing records were
// truncated by the journal reader; the client re-sends whatever it
// never got an ack for.
func (s *Service) replayWALs() error {
	replayed, skipped, err := wal.ReplayDir(s.cfg.WALDir)
	if err != nil {
		return fmt.Errorf("service: wal replay: %w", err)
	}
	s.skipped = skipped
	for _, r := range replayed {
		info, ok := workload.Lookup(r.Meta.Workload)
		if !ok || !consistency.Known(consistency.Model(r.Meta.Model)) || r.Meta.ID == "" {
			s.skipped = append(s.skipped, r.Path)
			continue
		}
		opts := core.OptsFor(core.Workload(info.Name), consistency.Model(r.Meta.Model))
		opts.Parallelism = r.Meta.Parallelism
		if r.Meta.MemoryBudget > 0 {
			opts.MemoryBudget = r.Meta.MemoryBudget
			opts.SpillDir = s.cfg.SpillDir
		}
		j := &job{
			id:        r.Meta.ID,
			seq:       r.Meta.Seq,
			info:      info,
			opts:      opts,
			stream:    core.CheckStream(opts),
			state:     stateAccepting,
			createdAt: r.Meta.CreatedAt,
			resumed:   true,
			nshards:   s.pool.size(),
		}
		j.shard.Store(int32(j.seq % s.pool.size()))
		j.touch()
		j.mu.Lock()
		for _, c := range r.Chunks {
			format := formatJSON
			if c.Format == wal.FormatBinary {
				format = formatBinary
			}
			if j.format == "" {
				j.format = format
			}
			var delta deltaJSON
			if err := j.ingestLocked(format, c.Body, &delta); err != nil {
				break // job is failed; it stays resident so the client learns why
			}
			j.chunks++
		}
		jw, err := r.OpenAppend(s.walOpts)
		if err != nil {
			// The job is resumed but its journal cannot reopen; keep it
			// resident (the fed history is real) without further journaling.
			s.skipped = append(s.skipped, r.Path)
		} else {
			j.wal = jw
		}
		j.mu.Unlock()
		s.jobs[j.id] = j
		if r.Meta.Seq > s.seq {
			s.seq = r.Meta.Seq
		}
		s.met.jobsResumed.Inc()
	}
	return nil
}

// reap deletes jobs nobody has touched for IdleTimeout and finished
// jobs older than FinishedTTL, checking a few times per window. A
// reaped job's WAL journal is deleted with it — there is nothing left
// to resume.
func (s *Service) reap() {
	window := s.cfg.IdleTimeout
	if s.cfg.FinishedTTL < window {
		window = s.cfg.FinishedTTL
	}
	interval := window / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-t.C:
			var victims []*job
			s.mu.Lock()
			for id, j := range s.jobs {
				idle := now.Sub(j.touched()) > s.cfg.IdleTimeout
				fin := j.finishedAt()
				expired := !fin.IsZero() && now.Sub(fin) > s.cfg.FinishedTTL
				if idle || expired {
					delete(s.jobs, id)
					victims = append(victims, j)
				}
			}
			s.mu.Unlock()
			for _, j := range victims {
				j.discardWAL()
				s.met.jobsReaped.Inc()
			}
		}
	}
}

// Job lifecycle states.
const (
	stateAccepting = "accepting" // chunks may be fed
	stateDone      = "done"      // finalized; report available
	stateFailed    = "failed"    // a chunk was rejected; terminal
)

// job is one in-progress check: a core.Stream plus the bookkeeping the
// endpoints expose. Its mutex serializes stream access — core.Stream is
// single-goroutine — so concurrent requests against one job are safe,
// if pointless: chunk order across racing uploads is the client's
// responsibility.
type job struct {
	id        string
	seq       int
	info      workload.Info
	opts      core.Opts
	createdAt time.Time
	resumed   bool
	nshards   int
	shard     atomic.Int32 // home inference shard
	active    atomic.Int64 // unix nanos of the last request that touched the job
	fin       atomic.Int64 // unix nanos of entering a finished state; 0 while accepting

	mu     sync.Mutex
	stream *core.Stream
	state  string
	ops    int
	chunks int // accepted chunk uploads — the resume protocol's cursor
	keyed  bool
	anoms  []report.Anomaly // provisional findings, accumulated across chunks
	result *core.CheckResult
	errMsg string
	wal    *wal.Journal // nil when the service runs without a WAL

	// format is fixed by the first chunk ("json" or "binary"); mixing
	// formats within one job is refused — an ellebin decoder mid-record
	// cannot make sense of JSON bytes, and vice versa.
	format string
	// bin carries ellebin decode state — the key dictionary and any
	// partial trailing record — across chunk uploads, which is what lets
	// clients split the stream at arbitrary byte offsets.
	bin *binhist.ChunkDecoder
}

func (j *job) touch()             { j.active.Store(time.Now().UnixNano()) }
func (j *job) touched() time.Time { return time.Unix(0, j.active.Load()) }

// homeShard is the shard the job's chunks run on: its creation sequence
// until the first keyed micro-op arrives, its data's hash after.
func (j *job) homeShard() int { return int(j.shard.Load()) }

// discardWAL removes the job's journal, if any: the job is gone and has
// nothing to resume.
func (j *job) discardWAL() {
	j.mu.Lock()
	if j.wal != nil {
		j.wal.Remove()
		j.wal = nil
	}
	j.mu.Unlock()
}

// finishedAt returns when the job entered a finished state (done or
// failed), or the zero time while it is still accepting.
func (j *job) finishedAt() time.Time {
	n := j.fin.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// fail records a terminal error; the job accepts no further chunks.
func (j *job) fail(err error) {
	j.state = stateFailed
	j.errMsg = err.Error()
	j.fin.Store(time.Now().UnixNano())
}

// jobJSON is the wire shape of a job's status.
type jobJSON struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Workload  string    `json:"workload"`
	Model     string    `json:"model"`
	CreatedAt time.Time `json:"created_at"`
	// Ops counts completion ops ingested so far.
	Ops int `json:"ops"`
	// Chunks counts accepted chunk uploads. After a crash and restart it
	// equals the journaled chunks that replayed — a resuming client
	// compares it against its own sent count and re-sends the difference.
	Chunks int `json:"chunks"`
	// WALBytes is the job's journal size on disk; 0 without a WAL.
	WALBytes int64 `json:"wal_bytes,omitempty"`
	// Resumed marks a job reconstructed from its journal at startup.
	Resumed bool `json:"resumed,omitempty"`
	// Memory reports the bounded-memory session's resident/retired
	// counters; present only for jobs created with memory_budget > 0.
	Memory *memoryJSON `json:"memory,omitempty"`
	// Anomalies are the provisional mid-stream findings surfaced so far
	// (see workload.Delta for their contract); the report endpoint has
	// the definitive set.
	Anomalies []report.Anomaly `json:"anomalies,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// memoryJSON is the wire shape of a budgeted job's memory counters.
type memoryJSON struct {
	// Budget is the configured window, in completions.
	Budget int `json:"budget"`
	// ResidentOps is the live-tail length: ops still held decoded.
	ResidentOps int `json:"resident_ops"`
	// RetiredOps counts ops released into encoded segments, Segments the
	// segment count, RetiredBytes the encoded bytes held in memory, and
	// SpilledBytes the encoded bytes written to the spill file.
	RetiredOps   int   `json:"retired_ops"`
	Segments     int   `json:"segments"`
	RetiredBytes int   `json:"retired_bytes"`
	SpilledBytes int64 `json:"spilled_bytes"`
	// RetiredKeys counts keys whose analyzer caches were released after
	// a full window of quiescence; FrozenBytes the encoded size of the
	// dependency-graph regions condensed along with them.
	RetiredKeys int `json:"retired_keys"`
	FrozenBytes int `json:"frozen_bytes,omitempty"`
	// Degraded names any fallback taken (spill I/O failure, codec
	// failure); retirement degrades rather than corrupting.
	Degraded string `json:"degraded,omitempty"`
}

// statusLocked snapshots a job; callers hold j.mu.
func (j *job) statusLocked() jobJSON {
	st := jobJSON{
		ID:        j.id,
		State:     j.state,
		Workload:  string(j.info.Name),
		Model:     string(j.opts.Model),
		CreatedAt: j.createdAt,
		Ops:       j.ops,
		Chunks:    j.chunks,
		Resumed:   j.resumed,
		Anomalies: append([]report.Anomaly(nil), j.anoms...),
		Error:     j.errMsg,
	}
	if j.wal != nil {
		st.WALBytes = j.wal.Size()
	}
	if j.opts.MemoryBudget > 0 {
		if rs, ok := j.stream.RetireStats(); ok {
			st.Memory = &memoryJSON{
				Budget:       j.opts.MemoryBudget,
				ResidentOps:  rs.Stream.ResidentOps,
				RetiredOps:   rs.Stream.RetiredOps,
				Segments:     rs.Stream.Segments,
				RetiredBytes: rs.Stream.RetiredBytes,
				SpilledBytes: rs.Stream.SpilledBytes,
				RetiredKeys:  rs.RetiredKeys,
				FrozenBytes:  rs.FrozenBytes,
				Degraded:     rs.Stream.Degraded,
			}
		}
	}
	return st
}

// deltaJSON is the wire shape of one chunk's outcome.
type deltaJSON struct {
	Ops       int              `json:"ops"`
	Chunks    int              `json:"chunks"`
	Anomalies []report.Anomaly `json:"anomalies,omitempty"`
}

// createRequest is the body of POST /v1/jobs. Omitted fields default
// exactly as cmd/elle's flags do: list-append, strict-serializable,
// one decode/check worker per CPU.
type createRequest struct {
	Workload    string `json:"workload"`
	Model       string `json:"model"`
	Parallelism int    `json:"parallelism"`
	// MemoryBudget > 0 bounds the job's resident memory to roughly the
	// last MemoryBudget completions: settled history prefixes retire to
	// encoded segments spilled under Config.SpillDir, and analyzer caches
	// for quiescent keys are released. The final report is byte-identical
	// to an unbudgeted job's. 0 (the default) keeps everything resident.
	MemoryBudget int `json:"memory_budget"`
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	body := http.MaxBytesReader(w, r.Body, 4096)
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Workload == "" {
		req.Workload = string(workload.ListAppend)
	}
	info, ok := workload.Lookup(req.Workload)
	if !ok {
		writeErr(w, http.StatusBadRequest, CodeUnknownWorkload,
			fmt.Sprintf("unknown workload %q; choose from: %s", req.Workload, workload.NameList()))
		return
	}
	if req.Model == "" {
		req.Model = string(consistency.StrictSerializable)
	}
	model := consistency.Model(req.Model)
	if !consistency.Known(model) {
		writeErr(w, http.StatusBadRequest, CodeUnknownModel, fmt.Sprintf("unknown model %q", req.Model))
		return
	}

	if req.MemoryBudget < 0 {
		writeErr(w, http.StatusBadRequest, CodeInvalidMemoryBudget, "memory_budget must be >= 0")
		return
	}
	opts := core.OptsFor(core.Workload(info.Name), model)
	opts.Parallelism = req.Parallelism
	if req.MemoryBudget > 0 {
		opts.MemoryBudget = req.MemoryBudget
		opts.SpillDir = s.cfg.SpillDir
	}

	s.mu.Lock()
	if len(s.jobs) >= s.cfg.MaxJobs {
		s.mu.Unlock()
		s.met.refused.With(CodeAtCapacity).Inc()
		writeErrRetry(w, http.StatusTooManyRequests, CodeAtCapacity,
			fmt.Sprintf("at capacity: %d resident jobs; finish, delete, or wait for reaping", s.cfg.MaxJobs), 1)
		return
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%d", s.seq),
		seq:       s.seq,
		info:      info,
		opts:      opts,
		stream:    core.CheckStream(opts),
		state:     stateAccepting,
		createdAt: time.Now().UTC(),
		nshards:   s.pool.size(),
	}
	j.shard.Store(int32(j.seq % s.pool.size()))
	j.touch()
	s.jobs[j.id] = j
	s.mu.Unlock()

	if s.cfg.WALDir != "" {
		jw, err := wal.Create(s.cfg.WALDir, s.walOpts, wal.Meta{
			ID: j.id, Seq: j.seq,
			Workload:     string(info.Name),
			Model:        string(model),
			Parallelism:  req.Parallelism,
			MemoryBudget: req.MemoryBudget,
			CreatedAt:    j.createdAt,
		})
		if err != nil {
			// No journal, no job: a create the WAL cannot record would
			// silently lose the job on restart — refuse instead.
			s.mu.Lock()
			delete(s.jobs, j.id)
			s.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, CodeWALWrite,
				fmt.Sprintf("journaling job failed: %v", err))
			return
		}
		j.mu.Lock()
		j.wal = jw
		j.mu.Unlock()
		s.met.walAppends.Inc() // header + meta record
		s.met.walBytes.Add(int(jw.Size()))
	}
	s.met.jobsCreated.Inc()

	j.mu.Lock()
	st := j.statusLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Service) handleChunk(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeJobNotFound, "no such job")
		return
	}
	j.touch()
	defer j.touch()
	if r.ContentLength > s.cfg.MaxChunkBytes {
		s.met.refused.With(CodeChunkTooLarge).Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, CodeChunkTooLarge,
			fmt.Sprintf("chunk of %d bytes exceeds the %d-byte limit; split it", r.ContentLength, s.cfg.MaxChunkBytes))
		return
	}
	// Drain the (bounded) body before dispatching to the job's shard: a
	// slow or stalled uploader must not occupy a shard worker — or hold
	// j.mu — across a network read. It also means an oversized chunk is
	// always refused before the stream sees a byte, so the job survives
	// and the client can re-split and resend.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxChunkBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.met.refused.With(CodeChunkTooLarge).Inc()
			writeErr(w, http.StatusRequestEntityTooLarge, CodeChunkTooLarge, err.Error())
			return
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}

	format := chunkFormat(r.Header.Get("Content-Type"))

	// The whole ingest — state check, WAL append, decode, feed — runs as
	// one task on the job's home shard; the handler just waits for the
	// verdict. One job, one shard, one worker goroutine: feed order is
	// upload order, whatever the shard count.
	var (
		status    int
		code, msg string
		delta     deltaJSON
	)
	if !s.pool.run(j.homeShard(), func() {
		status, code, msg = s.processChunk(j, format, body, &delta)
	}) {
		s.met.refused.With(CodeShardBusy).Inc()
		writeErrRetry(w, http.StatusTooManyRequests, CodeShardBusy,
			"inference shard queue is full; retry this chunk", 1)
		return
	}
	if status != http.StatusOK {
		writeErr(w, status, code, msg)
		return
	}
	writeJSON(w, http.StatusOK, delta)
}

// processChunk ingests one chunk body on the job's shard: journal
// first (acked ⇒ journaled), then decode and feed. It returns the HTTP
// status plus error code/message for non-200s.
func (s *Service) processChunk(j *job, format string, body []byte, delta *deltaJSON) (int, string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateAccepting {
		code := CodeJobDone
		if j.state == stateFailed {
			code = CodeJobFailed
		}
		return http.StatusConflict, code, fmt.Sprintf("job is %s", j.state)
	}
	if j.format != "" && j.format != format {
		// Not a job failure: the stream is intact, the chunk just never
		// reached it. The client can resend with the right Content-Type.
		return http.StatusBadRequest, CodeFormatMismatch,
			fmt.Sprintf("job is a %s stream; this chunk is %s — one job, one format", j.format, format)
	}
	if j.wal != nil {
		wf := wal.FormatJSON
		if format == formatBinary {
			wf = wal.FormatBinary
		}
		before := j.wal.Size()
		if err := j.wal.AppendChunk(wf, body); err != nil {
			// The chunk is not journaled, so it must not be fed: replay
			// would silently drop it. The job survives; the client retries.
			return http.StatusInternalServerError, CodeWALWrite,
				fmt.Sprintf("journaling chunk failed: %v", err)
		}
		s.met.walAppends.Inc()
		s.met.walBytes.Add(int(j.wal.Size() - before))
	}
	j.format = format
	prevOps := j.ops
	if err := j.ingestLocked(format, body, delta); err != nil {
		return http.StatusBadRequest, CodeChunkRejected, err.Error()
	}
	j.chunks++
	delta.Ops = j.ops
	delta.Chunks = j.chunks
	s.met.chunks.Inc()
	s.met.ingestBytes.Add(len(body))
	s.met.ingestOps.Add(j.ops - prevOps)
	return http.StatusOK, "", ""
}

// ingestLocked decodes one chunk body and feeds the results into the
// job's stream, failing the job on decode or stream errors. It is the
// shared ingest path: live uploads run it on the job's shard after the
// WAL append; startup replay runs it directly on already-journaled
// chunks. Callers hold j.mu.
func (j *job) ingestLocked(format string, body []byte, delta *deltaJSON) error {
	if format == formatBinary {
		if j.bin == nil {
			j.bin = new(binhist.ChunkDecoder)
		}
		ops, err := j.bin.Feed(body)
		if err != nil {
			j.fail(err)
			return err
		}
		if err := j.feedLocked(ops, delta); err != nil {
			return err
		}
		j.pinShard(ops)
		return nil
	}
	dec := jsonhist.NewStreamDecoder(bytes.NewReader(body), jsonhist.DecodeOpts{
		Register:    j.info.RegisterReads,
		Parallelism: j.opts.Parallelism,
	})
	for {
		ops, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			j.fail(err)
			return err
		}
		if err := j.feedLocked(ops, delta); err != nil {
			return err
		}
		j.pinShard(ops)
	}
	return nil
}

// pinShard fixes the job's home shard to the hash of its first history
// key, once one arrives — after that, placement is a function of the
// job's data, not its creation order. Chunks already dispatched keep
// running where they are; j.mu (held here) is what feed order actually
// hangs on, the shard is an affinity.
func (j *job) pinShard(ops []op.Op) {
	if j.keyed {
		return
	}
	if k, ok := firstKey(ops); ok {
		j.keyed = true
		j.shard.Store(int32(shardFor(k, j.nshards)))
	}
}

// Chunk upload formats, fixed per job by its first chunk.
const (
	formatJSON   = "json"
	formatBinary = "binary"
)

// chunkFormat maps a chunk upload's Content-Type to its history format.
// Anything that is not ellebin's type — including absent or unparseable
// values — is read as JSON lines, the format every pre-ellebin client
// sends without a Content-Type.
func chunkFormat(contentType string) string {
	if mt, _, err := mime.ParseMediaType(contentType); err == nil && mt == binhist.ContentType {
		return formatBinary
	}
	return formatJSON
}

// feedLocked feeds one batch of decoded ops into the job's stream and
// accumulates the provisional findings it surfaces, failing the job on
// a stream error. Callers hold j.mu.
func (j *job) feedLocked(ops []op.Op, delta *deltaJSON) error {
	if len(ops) == 0 {
		return nil // a chunk may complete no record
	}
	d, err := j.stream.Feed(ops)
	if err != nil {
		j.fail(err)
		return err
	}
	j.ops = d.Ops
	for _, a := range d.Anomalies {
		ra := report.FromAnomaly(a)
		j.anoms = append(j.anoms, ra)
		delta.Anomalies = append(delta.Anomalies, ra)
	}
	return nil
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeJobNotFound, "no such job")
		return
	}
	j.touch()
	j.mu.Lock()
	st := j.statusLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeJobNotFound, "no such job")
		return
	}
	j.touch()
	defer j.touch()
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.finalizeLocked(); err != nil {
		writeErr(w, http.StatusConflict, CodeJobFailed, err.Error())
		return
	}
	w.Header().Set("X-Elle-Valid", fmt.Sprintf("%t", j.result.Valid))
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := report.New(j.stream.History(), core.Workload(j.info.Name), j.result).Write(w); err != nil {
			return // mid-body; too late for a status code
		}
		return
	}
	// The default rendering is exactly cmd/elle's stdout for the same
	// history and options: same CheckResult (stream/batch equivalence),
	// same report.Prose.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	report.Prose(w, j.result, report.ProseOpts{})
}

// finalizeLocked drives an accepting job to its terminal state, shared
// by the report and query endpoints: close a pending ellebin decode,
// finish the stream, and store the result. An ellebin job whose
// uploads stopped mid-record must not finalize — the tail of the
// history never arrived, and a report or query now would silently
// cover a prefix; the framing error names the cut and fails the job.
// Callers hold j.mu. On nil return the job is done and j.result set.
func (j *job) finalizeLocked() error {
	if j.state == stateFailed {
		return fmt.Errorf("job failed: %s", j.errMsg)
	}
	if j.state != stateAccepting {
		return nil
	}
	if j.bin != nil {
		if err := j.bin.Close(); err != nil {
			j.fail(err)
			return fmt.Errorf("job failed: %s", j.errMsg)
		}
	}
	res, err := j.stream.Finish()
	if err != nil {
		j.fail(err)
		return fmt.Errorf("job failed: %s", j.errMsg)
	}
	j.state = stateDone
	j.result = res
	j.fin.Store(time.Now().UnixNano())
	return nil
}

// handleQuery evaluates a docs/QUERY.md pattern query against a job's
// finished analysis: GET /v1/jobs/{id}/query?q=PATTERN. Asking for a
// query finalizes an accepting job exactly as asking for its report
// does. The body is the query's canonical tab-separated row set —
// byte-identical to `elle -query` over the same history and options.
func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeJobNotFound, "no such job")
		return
	}
	j.touch()
	defer j.touch()
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, CodeBadQuery, "missing query parameter q")
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.finalizeLocked(); err != nil {
		writeErr(w, http.StatusConflict, CodeJobFailed, err.Error())
		return
	}
	res, err := j.result.Query(j.stream.History(), q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadQuery, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	res.WriteTo(w) //nolint:errcheck // mid-body write; too late for a status code
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	delete(s.jobs, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, CodeJobNotFound, "no such job")
		return
	}
	j.discardWAL()
	w.WriteHeader(http.StatusNoContent)
}

// listJSON is the wire shape of GET /v1/jobs: one status page plus the
// cursor for the next one (absent on the last page).
type listJSON struct {
	Jobs []jobJSON `json:"jobs"`
	Next string    `json:"next,omitempty"`
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stateFilter := q.Get("state")
	switch stateFilter {
	case "", stateAccepting, stateDone, stateFailed:
	default:
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown state %q (accepting, done, failed)", stateFilter))
		return
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	// The cursor is the last-seen job id; listing resumes strictly after
	// its sequence number. Jobs deleted between pages are simply skipped
	// — ids never reorder, so the cursor stays valid.
	afterSeq := 0
	if cur := q.Get("next"); cur != "" {
		n, err := strconv.Atoi(strings.TrimPrefix(cur, "j"))
		if !strings.HasPrefix(cur, "j") || err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, CodeBadCursor,
				fmt.Sprintf("cursor %q is not a job id this service issued", cur))
			return
		}
		afterSeq = n
	}

	jobs := s.snapshot()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	out := listJSON{Jobs: make([]jobJSON, 0, len(jobs))}
	for _, j := range jobs {
		if j.seq <= afterSeq {
			continue
		}
		j.mu.Lock()
		st := j.statusLocked()
		j.mu.Unlock()
		if stateFilter != "" && st.State != stateFilter {
			continue
		}
		if limit > 0 && len(out.Jobs) == limit {
			out.Next = out.Jobs[limit-1].ID
			break
		}
		out.Jobs = append(out.Jobs, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workloads []string `json:"workloads"`
	}{Workloads: workload.Names()})
}
