package service

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Stable machine-readable error codes, one per failure mode the API can
// express. Every non-2xx response carries exactly one of these in its
// envelope; the strings are part of the v1 wire contract and never
// change meaning (see docs/SERVICE.md for the full table). They are
// re-exported from the elle facade and mapped to typed errors by
// elleclient.
const (
	// CodeBadRequest: the request body or query string is malformed.
	CodeBadRequest = "bad_request"
	// CodeUnknownWorkload: the create request names an unregistered
	// workload.
	CodeUnknownWorkload = "unknown_workload"
	// CodeUnknownModel: the create request names an unknown consistency
	// model.
	CodeUnknownModel = "unknown_model"
	// CodeInvalidMemoryBudget: memory_budget is negative.
	CodeInvalidMemoryBudget = "invalid_memory_budget"
	// CodeAtCapacity: MaxJobs resident jobs exist; retry after a slot
	// frees (the envelope carries retry_after_s).
	CodeAtCapacity = "at_capacity"
	// CodeShardBusy: the job's inference shard has a full queue; the
	// chunk was not ingested — retry it (retry_after_s set).
	CodeShardBusy = "shard_busy"
	// CodeChunkTooLarge: one chunk body exceeds MaxChunkBytes; split it.
	CodeChunkTooLarge = "chunk_too_large"
	// CodeJobNotFound: no resident job has that id (never created,
	// deleted, or reaped).
	CodeJobNotFound = "job_not_found"
	// CodeJobDone: the job already finalized; it accepts no more chunks.
	CodeJobDone = "job_done"
	// CodeJobFailed: the job is in the terminal failed state (a chunk
	// was rejected, or finalizing found the stream cut mid-record).
	CodeJobFailed = "job_failed"
	// CodeFormatMismatch: the chunk's format differs from the format the
	// job's first chunk fixed. The job is intact; resend with the right
	// Content-Type.
	CodeFormatMismatch = "format_mismatch"
	// CodeChunkRejected: the chunk failed decoding or validation, and
	// the job is now failed — the same terminal outcome a malformed line
	// has in elle -follow.
	CodeChunkRejected = "chunk_rejected"
	// CodeBadCursor: the jobs listing's next cursor is not one this
	// service issued.
	CodeBadCursor = "bad_cursor"
	// CodeBadQuery: the query endpoint's q parameter is missing or not a
	// well-formed docs/QUERY.md pattern; the message carries the 1-based
	// position of the parse fault.
	CodeBadQuery = "bad_query"
	// CodeWALWrite: journaling the job or chunk to the WAL failed (disk
	// full, permissions). For chunks the job is intact and the chunk was
	// not ingested — nothing unjournaled ever reaches a session.
	CodeWALWrite = "wal_write"
)

// ErrorBody is the one machine-readable error shape every non-2xx
// response carries, wrapped in ErrorEnvelope. RetryAfterS mirrors the
// Retry-After header when the failure is transient (429s).
type ErrorBody struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// ErrorEnvelope is the wire frame: {"error":{...}}.
type ErrorEnvelope struct {
	Err ErrorBody `json:"error"`
}

// writeErr sends one enveloped error.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Err: ErrorBody{Code: code, Message: msg}})
}

// writeErrRetry sends an enveloped error with both the Retry-After
// header and its JSON mirror, for 429-style pushback.
func writeErrRetry(w http.ResponseWriter, status int, code, msg string, retryAfterS int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
	writeJSON(w, status, ErrorEnvelope{Err: ErrorBody{Code: code, Message: msg, RetryAfterS: retryAfterS}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
