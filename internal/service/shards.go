package service

import (
	"hash/fnv"

	"repro/internal/op"
)

// shardPool is the inference pool: N single-goroutine workers, each
// owning a bounded task queue. Chunk ingest — WAL append, decode, and
// session Feed — runs as a task on the job's home shard, which decouples
// HTTP handler goroutines (one per in-flight request, unbounded) from
// inference (at most N chunks decoding/feeding at once), while keeping
// every job's chunks strictly FIFO: one job always lands on one shard,
// and a shard is one goroutine, so feed order is upload order and the
// report stays byte-identical to batch at any shard count.
//
// A full queue refuses the task instead of blocking — the handler turns
// that into 429 shard_busy, the same backpressure-not-queueing stance
// MaxJobs takes.
type shardPool struct {
	queues []chan func()
	done   chan struct{}
}

func newShardPool(n, depth int) *shardPool {
	p := &shardPool{queues: make([]chan func(), n), done: make(chan struct{})}
	for i := range p.queues {
		q := make(chan func(), depth)
		p.queues[i] = q
		go p.work(q)
	}
	return p
}

func (p *shardPool) work(q chan func()) {
	for {
		select {
		case <-p.done:
			// Drain tasks already accepted — each has a handler blocked on
			// its completion — then exit.
			for {
				select {
				case f := <-q:
					f()
				default:
					return
				}
			}
		case f := <-q:
			f()
		}
	}
}

// run executes f on the given shard and waits for it to finish,
// returning false without running it when the shard's queue is full.
func (p *shardPool) run(shard int, f func()) bool {
	fin := make(chan struct{})
	task := func() {
		defer close(fin)
		f()
	}
	select {
	case p.queues[shard%len(p.queues)] <- task:
	default:
		return false
	}
	<-fin
	return true
}

func (p *shardPool) size() int       { return len(p.queues) }
func (p *shardPool) depth(i int) int { return len(p.queues[i]) }

// stop shuts the workers down after they drain accepted tasks. Call
// only after the enclosing HTTP server has stopped accepting requests;
// tasks enqueued concurrently with stop still run (the drain loop picks
// them up), but new run calls may spuriously report a full queue.
func (p *shardPool) stop() { close(p.done) }

// shardFor maps a key to its home shard. The hash is FNV-1a over the
// raw key bytes — the same keys the history interner densifies — so a
// job's placement is a pure function of its data, stable across
// restarts and shard-count-independent modulo n.
func shardFor(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % n
}

// firstKey returns the first keyed micro-op in ops, for pinning a job's
// home shard to its data rather than its creation order.
func firstKey(ops []op.Op) (string, bool) {
	for _, o := range ops {
		for _, m := range o.Mops {
			if m.Key != "" {
				return m.Key, true
			}
		}
	}
	return "", false
}
