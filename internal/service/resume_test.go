package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/binhist"
	"repro/internal/jsonhist"
	"repro/internal/wal"
	"repro/internal/workload"
)

// startServer is newTestServer without the shared cleanup assumptions:
// restart tests stop and re-create services mid-test. The returned
// stop func is idempotent.
func startServer(t *testing.T, cfg Config) (*Service, *httptest.Server, func()) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	stop := func() { srv.Close(); svc.Close() }
	t.Cleanup(stop)
	return svc, srv, stop
}

// walFile returns the path of a job's journal.
func walFile(cfg Config, id string) string { return filepath.Join(cfg.WALDir, id+".wal") }

// TestWALReplayTable is the replay acceptance table: each case mutates
// (or doesn't) the on-disk journals between a stop and a restart and
// pins what the reborn service must expose.
func TestWALReplayTable(t *testing.T) {
	g1aLines := strings.SplitAfter(strings.TrimSuffix(g1aHistory, "\n"), "\n")

	t.Run("clean-restart", func(t *testing.T) {
		cfg := Config{WALDir: t.TempDir()}
		_, srv, stop := startServer(t, cfg)
		id := createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)
		feedChunks(t, srv.Client(), srv.URL, id, g1aHistory, 1)
		stop()

		_, srv2, _ := startServer(t, cfg)
		var st jobJSON
		if code, raw := do(t, srv2.Client(), "GET", srv2.URL+"/v1/jobs/"+id, "", &st); code != http.StatusOK {
			t.Fatalf("status after restart: %d: %s", code, raw)
		}
		if !st.Resumed || st.State != stateAccepting || st.Chunks != len(g1aLines) || st.Ops != 2 {
			t.Fatalf("replayed status: %+v", st)
		}
		// The replayed session picked up the provisional findings too.
		if len(st.Anomalies) == 0 || st.Anomalies[0].Type != "G1a" {
			t.Fatalf("replay lost provisional anomalies: %+v", st.Anomalies)
		}
		// And it finalizes normally.
		if code, body := do(t, srv2.Client(), "GET", srv2.URL+"/v1/jobs/"+id+"/report", "", nil); code != http.StatusOK || !strings.Contains(body, "G1a") {
			t.Fatalf("report after restart: %d: %s", code, body)
		}
	})

	t.Run("torn-trailing-record", func(t *testing.T) {
		cfg := Config{WALDir: t.TempDir()}
		_, srv, stop := startServer(t, cfg)
		id := createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)
		feedChunks(t, srv.Client(), srv.URL, id, g1aHistory, 1)
		stop()

		raw, err := os.ReadFile(walFile(cfg, id))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walFile(cfg, id), raw[:len(raw)-2], 0o644); err != nil {
			t.Fatal(err)
		}

		_, srv2, _ := startServer(t, cfg)
		var st jobJSON
		do(t, srv2.Client(), "GET", srv2.URL+"/v1/jobs/"+id, "", &st)
		if st.Chunks != len(g1aLines)-1 || st.State != stateAccepting {
			t.Fatalf("after torn tail: %+v, want %d chunks", st, len(g1aLines)-1)
		}
		// Re-feeding the dropped chunk completes the stream on the frame
		// boundary.
		code, _ := do(t, srv2.Client(), "POST", srv2.URL+"/v1/jobs/"+id+"/chunks", g1aLines[len(g1aLines)-1], nil)
		if code != http.StatusOK {
			t.Fatalf("re-feed after tear: %d", code)
		}
		if code, body := do(t, srv2.Client(), "GET", srv2.URL+"/v1/jobs/"+id+"/report", "", nil); code != http.StatusOK || !strings.Contains(body, "G1a") {
			t.Fatalf("report after tear+resume: %d: %s", code, body)
		}
	})

	t.Run("truncated-header", func(t *testing.T) {
		cfg := Config{WALDir: t.TempDir()}
		_, srv, stop := startServer(t, cfg)
		id := createJob(t, srv.Client(), srv.URL, `{}`)
		stop()

		if err := os.Truncate(walFile(cfg, id), 4); err != nil {
			t.Fatal(err)
		}

		svc2, srv2, _ := startServer(t, cfg)
		if svc2.Jobs() != 0 {
			t.Fatalf("unreadable journal produced %d jobs", svc2.Jobs())
		}
		if sk := svc2.SkippedWALs(); len(sk) != 1 || sk[0] != walFile(cfg, id) {
			t.Fatalf("skipped = %v", sk)
		}
		if code, _ := do(t, srv2.Client(), "GET", srv2.URL+"/v1/jobs/"+id, "", nil); code != http.StatusNotFound {
			t.Fatalf("corrupt-journal job resolves: %d", code)
		}
	})

	t.Run("missing-dict-segment", func(t *testing.T) {
		// A binary job whose journal lost its first chunk — the one
		// carrying the ellebin header and key dictionary — must fail
		// loudly on replay, never silently report on a fragment.
		info, _ := workload.Lookup("list-append")
		h, err := jsonhist.DecodeWith(strings.NewReader(g1aHistory), jsonhist.DecodeOpts{Register: info.RegisterReads})
		if err != nil {
			t.Fatal(err)
		}
		var bin bytes.Buffer
		if err := binhist.Encode(&bin, h); err != nil {
			t.Fatal(err)
		}
		cfg := Config{WALDir: t.TempDir()}
		j, err := wal.Create(cfg.WALDir, wal.Options{}, wal.Meta{
			ID: "j1", Seq: 1, Workload: "list-append", Model: "read-committed",
			Parallelism: 1, CreatedAt: time.Now().UTC(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Journal only the tail half: the dict segment never made it.
		if err := j.AppendChunk(wal.FormatBinary, bin.Bytes()[bin.Len()/2:]); err != nil {
			t.Fatal(err)
		}
		j.Close()

		_, srv, _ := startServer(t, cfg)
		var st jobJSON
		if code, raw := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/j1", "", &st); code != http.StatusOK {
			t.Fatalf("status: %d: %s", code, raw)
		}
		if st.State != stateFailed || st.Error == "" {
			t.Fatalf("dict-less replay did not fail the job: %+v", st)
		}
	})

	t.Run("concurrent-jobs", func(t *testing.T) {
		cfg := Config{WALDir: t.TempDir()}
		_, srv, stop := startServer(t, cfg)
		ids := make([]string, 3)
		for i := range ids {
			ids[i] = createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)
			// Job i gets i+1 chunks of the two-line history (capped at 2).
			feedChunks(t, srv.Client(), srv.URL, ids[i], g1aLines[0], 1)
			if i > 0 {
				feedChunks(t, srv.Client(), srv.URL, ids[i], g1aLines[1], 1)
			}
		}
		stop()

		_, srv2, _ := startServer(t, cfg)
		for i, id := range ids {
			var st jobJSON
			if code, raw := do(t, srv2.Client(), "GET", srv2.URL+"/v1/jobs/"+id, "", &st); code != http.StatusOK {
				t.Fatalf("job %s lost in restart: %d: %s", id, code, raw)
			}
			want := 1
			if i > 0 {
				want = 2
			}
			if st.Chunks != want || !st.Resumed {
				t.Fatalf("job %s: %+v, want %d chunks", id, st, want)
			}
		}
		// The id allocator resumed past the survivors: no collisions.
		fresh := createJob(t, srv2.Client(), srv2.URL, `{}`)
		for _, id := range ids {
			if fresh == id {
				t.Fatalf("new job reused resumed id %s", id)
			}
		}
	})
}

// TestWALLifecycle: the journal lives exactly as long as its job —
// DELETE removes it, the reaper removes it, and a finished job keeps
// it (a crash after the report must not orphan the client).
func TestWALLifecycle(t *testing.T) {
	cfg := Config{WALDir: t.TempDir(), IdleTimeout: 80 * time.Millisecond}
	svc, srv, _ := startServer(t, cfg)

	// DELETE removes the journal file.
	id := createJob(t, srv.Client(), srv.URL, `{}`)
	if _, err := os.Stat(walFile(cfg, id)); err != nil {
		t.Fatalf("journal missing while job lives: %v", err)
	}
	if code, _ := do(t, srv.Client(), "DELETE", srv.URL+"/v1/jobs/"+id, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if _, err := os.Stat(walFile(cfg, id)); !os.IsNotExist(err) {
		t.Fatalf("journal survived DELETE: %v", err)
	}

	// The reaper removes the journal with the job.
	id2 := createJob(t, srv.Client(), srv.URL, `{}`)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Jobs() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle job was never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := os.Stat(walFile(cfg, id2)); !os.IsNotExist(err) {
		t.Fatalf("journal survived reaping: %v", err)
	}

	// A finished job's journal stays until the job goes: status shows
	// its size.
	id3 := createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)
	feedChunks(t, srv.Client(), srv.URL, id3, g1aHistory, 2)
	do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id3+"/report", "", nil)
	var st jobJSON
	do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id3, "", &st)
	if st.WALBytes == 0 {
		t.Fatalf("finished job lost its journal: %+v", st)
	}
	if _, err := os.Stat(walFile(cfg, id3)); err != nil {
		t.Fatalf("finished job's journal missing: %v", err)
	}
}

// TestErrorEnvelope pins the wire shape of every error path: one
// envelope, a stable code, and Retry-After mirrored into the body for
// 429s.
func TestErrorEnvelope(t *testing.T) {
	_, srv, _ := startServer(t, Config{MaxJobs: 1, MaxChunkBytes: 128})
	c := srv.Client()

	expect := func(method, url, body string, wantStatus int, wantCode string) ErrorBody {
		t.Helper()
		var env ErrorEnvelope
		code, raw := do(t, c, method, url, body, &env)
		if code != wantStatus || env.Err.Code != wantCode || env.Err.Message == "" {
			t.Fatalf("%s %s: status %d code %q, want %d %q: %s",
				method, url, code, env.Err.Code, wantStatus, wantCode, raw)
		}
		return env.Err
	}

	expect("POST", srv.URL+"/v1/jobs", `{"workload":"nope"}`, 400, CodeUnknownWorkload)
	expect("POST", srv.URL+"/v1/jobs", `{"model":"nope"}`, 400, CodeUnknownModel)
	expect("POST", srv.URL+"/v1/jobs", `{"memory_budget":-1}`, 400, CodeInvalidMemoryBudget)
	expect("POST", srv.URL+"/v1/jobs", `{bad json`, 400, CodeBadRequest)
	expect("GET", srv.URL+"/v1/jobs/j999", "", 404, CodeJobNotFound)
	expect("POST", srv.URL+"/v1/jobs/j999/chunks", "x", 404, CodeJobNotFound)
	expect("DELETE", srv.URL+"/v1/jobs/j999", "", 404, CodeJobNotFound)
	expect("GET", srv.URL+"/v1/jobs?state=bogus", "", 400, CodeBadRequest)
	expect("GET", srv.URL+"/v1/jobs?limit=-1", "", 400, CodeBadRequest)
	expect("GET", srv.URL+"/v1/jobs?next=zzz", "", 400, CodeBadCursor)

	id := createJob(t, c, srv.URL, `{"model":"read-committed","parallelism":1}`)
	// 429 carries retry_after_s in the body and the Retry-After header.
	env := expect("POST", srv.URL+"/v1/jobs", `{}`, 429, CodeAtCapacity)
	if env.RetryAfterS < 1 {
		t.Fatalf("429 envelope without retry_after_s: %+v", env)
	}
	req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs", strings.NewReader(`{}`))
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	expect("POST", srv.URL+"/v1/jobs/"+id+"/chunks",
		strings.Repeat("x", 300), 413, CodeChunkTooLarge)
	feedChunks(t, c, srv.URL, id, g1aHistory, 2)
	do(t, c, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil)
	expect("POST", srv.URL+"/v1/jobs/"+id+"/chunks", g1aHistory, 409, CodeJobDone)
}

// TestListFilterAndPagination: ?state= filters, limit/next pages in
// creation order, and the cursor survives deletions between pages.
func TestListFilterAndPagination(t *testing.T) {
	_, srv, _ := startServer(t, Config{MaxJobs: 10})
	c := srv.Client()

	ids := make([]string, 5)
	for i := range ids {
		ids[i] = createJob(t, c, srv.URL, `{"model":"read-committed","parallelism":1}`)
	}
	// Finish two so the state filter has something to split.
	for _, id := range ids[:2] {
		feedChunks(t, c, srv.URL, id, g1aHistory, 2)
		do(t, c, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil)
	}

	list := func(query string) listJSON {
		t.Helper()
		var page listJSON
		if code, raw := do(t, c, "GET", srv.URL+"/v1/jobs"+query, "", &page); code != http.StatusOK {
			t.Fatalf("list%s: %d: %s", query, code, raw)
		}
		return page
	}

	page := list("?limit=2")
	if len(page.Jobs) != 2 || page.Jobs[0].ID != ids[0] || page.Jobs[1].ID != ids[1] || page.Next != ids[1] {
		t.Fatalf("page 1: %+v", page)
	}
	page = list("?limit=2&next=" + page.Next)
	if len(page.Jobs) != 2 || page.Jobs[0].ID != ids[2] || page.Next != ids[3] {
		t.Fatalf("page 2: %+v", page)
	}
	page = list("?limit=2&next=" + page.Next)
	if len(page.Jobs) != 1 || page.Jobs[0].ID != ids[4] || page.Next != "" {
		t.Fatalf("page 3: %+v", page)
	}

	if page = list("?state=done"); len(page.Jobs) != 2 {
		t.Fatalf("state=done: %+v", page.Jobs)
	}
	if page = list("?state=accepting"); len(page.Jobs) != 3 {
		t.Fatalf("state=accepting: %+v", page.Jobs)
	}

	// Deleting a job between pages skips it without invalidating the
	// cursor.
	page = list("?limit=2")
	do(t, c, "DELETE", srv.URL+"/v1/jobs/"+ids[2], "", nil)
	page = list("?limit=2&next=" + page.Next)
	if len(page.Jobs) != 2 || page.Jobs[0].ID != ids[3] {
		t.Fatalf("page after deletion: %+v", page)
	}
}

// TestMetricsExposition: /metrics serves parseable Prometheus text
// with the families the catalog promises, and the hot counters track
// actual ingest.
func TestMetricsExposition(t *testing.T) {
	cfg := Config{WALDir: t.TempDir(), Shards: 2}
	_, srv, _ := startServer(t, cfg)
	c := srv.Client()

	id := createJob(t, c, srv.URL, `{"model":"read-committed","parallelism":1}`)
	feedChunks(t, c, srv.URL, id, g1aHistory, 1)
	do(t, c, "POST", srv.URL+"/v1/jobs/"+id+"/chunks", strings.Repeat("x", int(9<<20)), nil) // 413

	code, body := do(t, c, "GET", srv.URL+"/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, family := range []string{
		"elled_jobs{state=\"accepting\"} 1",
		"elled_jobs_created_total 1",
		"elled_chunks_total 2",
		"elled_ingest_ops_total 2",
		"elled_refused_total{code=\"chunk_too_large\"} 1",
		"elled_wal_fsync_seconds_count",
		"elled_wal_appends_total 3", // meta + 2 chunks
		"elled_shard_queue_depth{shard=\"0\"} 0",
		"elled_shard_queue_depth{shard=\"1\"} 0",
		"elled_memory_resident_ops 0",
		"elled_jobs_resumed_total 0",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
	// Every sample line matches the exposition grammar.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEInf]+$`)
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
	// Ingest bytes counted exactly the accepted bodies.
	var total int
	for _, ln := range strings.SplitAfter(strings.TrimSuffix(g1aHistory, "\n"), "\n") {
		total += len(ln)
	}
	if !strings.Contains(body, fmt.Sprintf("elled_ingest_bytes_total %d", total)) {
		t.Errorf("ingest bytes drifted from accepted bodies (%d):\n%s", total, grepLines(body, "ingest_bytes"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// TestShardBusy: a wedged shard queue refuses the chunk with 429
// shard_busy, and the job survives to accept the retry once the queue
// drains.
func TestShardBusy(t *testing.T) {
	svc, srv, _ := startServer(t, Config{Shards: 1, ShardQueue: 1})
	c := srv.Client()
	id := createJob(t, c, srv.URL, `{"model":"read-committed","parallelism":1}`)

	// Wedge the lone shard: one task holds the worker, a second fills
	// the single queue slot.
	block := make(chan struct{})
	started := make(chan struct{})
	go svc.pool.run(0, func() { close(started); <-block })
	<-started
	drained := make(chan struct{})
	go func() { svc.pool.run(0, func() {}); close(drained) }()
	deadline := time.Now().Add(2 * time.Second)
	for svc.pool.depth(0) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}

	line := strings.SplitAfter(g1aHistory, "\n")[0]
	req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs/"+id+"/chunks", strings.NewReader(line))
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || env.Err.Code != CodeShardBusy {
		t.Fatalf("wedged shard: %d %+v, want 429 %s", resp.StatusCode, env, CodeShardBusy)
	}
	if resp.Header.Get("Retry-After") == "" || env.Err.RetryAfterS < 1 {
		t.Fatalf("shard_busy without retry advice: header=%q body=%+v",
			resp.Header.Get("Retry-After"), env.Err)
	}

	// Drain and retry: the refused chunk was never journaled or fed, so
	// the stream continues exactly where it left off.
	close(block)
	<-drained
	feedChunks(t, c, srv.URL, id, g1aHistory, 1)
	if code, body := do(t, c, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil); code != http.StatusOK || !strings.Contains(body, "G1a") {
		t.Fatalf("report after shard_busy retry: %d: %s", code, body)
	}
}

// TestShardPool: the pool itself — FIFO per shard, refusal when full,
// drain on stop.
func TestShardPool(t *testing.T) {
	p := newShardPool(2, 4)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if p.run(0, func() {
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				}) {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if len(order) != 16 {
		t.Fatalf("ran %d tasks, want 16", len(order))
	}
	if p.size() != 2 || p.depth(0) != 0 {
		t.Fatalf("pool state: size %d depth %d", p.size(), p.depth(0))
	}
	p.stop()

	// A full queue refuses instead of blocking.
	p2 := newShardPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	go p2.run(0, func() { close(started); <-block })
	<-started // the lone worker is now wedged on the blocker
	filled := make(chan struct{})
	go func() { p2.run(0, func() {}); close(filled) }() // occupies the queue slot
	deadline := time.Now().Add(2 * time.Second)
	for p2.depth(0) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if p2.run(0, func() {}) {
		t.Fatal("full queue accepted a task")
	}
	close(block)
	<-filled
	p2.stop()
}

// TestJSONStatusFields: created_at/wal_bytes/resumed ride the status
// wire shape as documented.
func TestJSONStatusFields(t *testing.T) {
	cfg := Config{WALDir: t.TempDir()}
	_, srv, stop := startServer(t, cfg)
	id := createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)
	feedChunks(t, srv.Client(), srv.URL, id, g1aHistory, 2)

	var raw map[string]json.RawMessage
	do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id, "", &raw)
	for _, field := range []string{"created_at", "wal_bytes", "chunks"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("status missing %q: %v", field, raw)
		}
	}
	var before jobJSON
	do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id, "", &before)
	stop()

	_, srv2, _ := startServer(t, cfg)
	var after jobJSON
	do(t, srv2.Client(), "GET", srv2.URL+"/v1/jobs/"+id, "", &after)
	if !after.Resumed {
		t.Fatal("restarted job not marked resumed")
	}
	if !after.CreatedAt.Equal(before.CreatedAt) {
		t.Fatalf("created_at drifted across restart: %v → %v", before.CreatedAt, after.CreatedAt)
	}
}
