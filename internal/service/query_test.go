package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jsonhist"
)

// TestServiceQuery pins the query endpoint's contract: the body is
// byte-identical to evaluating the same pattern against a batch check
// of the same history, asking finalizes an accepting job exactly like
// /report, and malformed patterns surface the bad_query envelope with
// a parse position instead of a 500.
func TestServiceQuery(t *testing.T) {
	jsonl := faultedHistory(t, "list-append", 31, 150)
	h, err := jsonhist.DecodeWith(strings.NewReader(jsonl), jsonhist.DecodeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(h, core.OptsFor(core.ListAppend, "serializable"))
	const q = `(cycle ?c _ ?t _) (dep ?t ?u rw)`
	want := func(query string) string {
		r, err := res.Query(h, query)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	_, srv := newTestServer(t, Config{MaxJobs: 2})
	id := createJob(t, srv.Client(), srv.URL, `{"workload":"list-append","model":"serializable","parallelism":1}`)
	feedChunks(t, srv.Client(), srv.URL, id, jsonl, 40)

	code, got := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/query?q="+urlQuery(q), "", nil)
	if code != http.StatusOK {
		t.Fatalf("query: status %d: %s", code, got)
	}
	if got != want(q) {
		t.Fatalf("query body diverges from batch:\n--- batch ---\n%s\n--- service ---\n%s", want(q), got)
	}
	// The first query finalized the job; a second asks the done path and
	// must return the same bytes.
	if _, again := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/query?q="+urlQuery(q), "", nil); again != got {
		t.Fatal("query result changed after finalization")
	}
	var st jobJSON
	if code, raw := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id, "", &st); code != http.StatusOK || st.State != stateDone {
		t.Fatalf("status after query: %d %s", code, raw)
	}

	var env ErrorEnvelope
	code, raw := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/query?q="+urlQuery("(nope ?x"), "", &env)
	if code != http.StatusBadRequest || env.Err.Code != CodeBadQuery {
		t.Fatalf("bad query: status %d code %q: %s", code, env.Err.Code, raw)
	}
	if !strings.Contains(env.Err.Message, "query:") {
		t.Fatalf("bad query message lacks parse position: %q", env.Err.Message)
	}
	if code, _ = do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/query", "", &env); code != http.StatusBadRequest || env.Err.Code != CodeBadQuery {
		t.Fatalf("missing q: status %d code %q", code, env.Err.Code)
	}
	if code, _ = do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/j999/query?q="+urlQuery(q), "", &env); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
}

// urlQuery percent-encodes a pattern for the q parameter.
func urlQuery(q string) string {
	r := strings.NewReplacer("(", "%28", ")", "%29", " ", "%20", "?", "%3F", `"`, "%22")
	return r.Replace(q)
}
