package service

import (
	"net/http"
	"strconv"

	"repro/internal/promtext"
)

// metrics is elled's instrument panel, served as Prometheus text
// exposition on GET /metrics (docs/SERVICE.md lists the catalog). Hot
// counters are bumped inline on the ingest path; gauges that mirror the
// job table (jobs by state, shard queue depth, memory counters) are
// computed at scrape time so the ingest path never pays for them.
type metrics struct {
	reg *promtext.Registry

	jobsCreated *promtext.Counter
	jobsResumed *promtext.Counter
	jobsReaped  *promtext.Counter
	chunks      *promtext.Counter
	ingestBytes *promtext.Counter
	ingestOps   *promtext.Counter
	refused     *promtext.CounterVec
	walAppends  *promtext.Counter
	walBytes    *promtext.Counter
	walFsync    *promtext.Histogram
}

func newMetrics(s *Service) *metrics {
	r := promtext.NewRegistry()
	m := &metrics{reg: r}
	m.jobsCreated = r.Counter("elled_jobs_created_total",
		"Jobs created over the service's lifetime.")
	m.jobsResumed = r.Counter("elled_jobs_resumed_total",
		"Jobs reconstructed from WAL journals at startup.")
	m.jobsReaped = r.Counter("elled_jobs_reaped_total",
		"Jobs removed by the idle/finished reaper.")
	m.chunks = r.Counter("elled_chunks_total",
		"Chunk uploads accepted (journaled and fed).")
	m.ingestBytes = r.Counter("elled_ingest_bytes_total",
		"Chunk body bytes accepted.")
	m.ingestOps = r.Counter("elled_ingest_ops_total",
		"Completion ops ingested into sessions.")
	m.refused = r.CounterVec("elled_refused_total",
		"Requests refused, by error code (at_capacity, shard_busy, chunk_too_large).",
		"code")
	m.walAppends = r.Counter("elled_wal_appends_total",
		"Records appended to job WALs (meta and chunk records).")
	m.walBytes = r.Counter("elled_wal_bytes_total",
		"Bytes appended to job WALs.")
	m.walFsync = r.Histogram("elled_wal_fsync_seconds",
		"WAL fsync latency.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})

	r.GaugeVecFunc("elled_jobs", "Resident jobs by state.", []string{"state"},
		func(set func([]string, float64)) {
			counts := map[string]int{stateAccepting: 0, stateDone: 0, stateFailed: 0}
			for _, j := range s.snapshot() {
				j.mu.Lock()
				counts[j.state]++
				j.mu.Unlock()
			}
			for _, st := range []string{stateAccepting, stateDone, stateFailed} {
				set([]string{st}, float64(counts[st]))
			}
		})
	r.GaugeVecFunc("elled_shard_queue_depth",
		"Chunk tasks queued per inference shard.", []string{"shard"},
		func(set func([]string, float64)) {
			for i := 0; i < s.pool.size(); i++ {
				set([]string{strconv.Itoa(i)}, float64(s.pool.depth(i)))
			}
		})
	r.GaugeFunc("elled_memory_resident_ops",
		"Ops held decoded across budgeted jobs (PR 8 bounded-memory sessions).",
		func() float64 { res, _, _ := s.memStats(); return float64(res) })
	r.GaugeFunc("elled_memory_retired_ops",
		"Ops retired to encoded segments across budgeted jobs.",
		func() float64 { _, ret, _ := s.memStats(); return float64(ret) })
	r.GaugeFunc("elled_memory_spilled_bytes",
		"Encoded bytes spilled to disk across budgeted jobs.",
		func() float64 { _, _, sp := s.memStats(); return float64(sp) })
	r.GaugeFunc("elled_wal_resident_bytes",
		"Bytes currently held across resident jobs' WAL journals.",
		func() float64 {
			var total int64
			for _, j := range s.snapshot() {
				j.mu.Lock()
				if j.wal != nil {
					total += j.wal.Size()
				}
				j.mu.Unlock()
			}
			return float64(total)
		})
	return m
}

// snapshot copies the job table's values for lock-free iteration.
func (s *Service) snapshot() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	return jobs
}

// memStats sums the bounded-memory counters over budgeted jobs.
func (s *Service) memStats() (resident, retired int, spilled int64) {
	for _, j := range s.snapshot() {
		j.mu.Lock()
		if j.opts.MemoryBudget > 0 {
			if rs, ok := j.stream.RetireStats(); ok {
				resident += rs.Stream.ResidentOps
				retired += rs.Stream.RetiredOps
				spilled += rs.Stream.SpilledBytes
			}
		}
		j.mu.Unlock()
	}
	return resident, retired, spilled
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.Write(w)
}
