package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/binhist"
	"repro/internal/jsonhist"
)

// binHistory re-encodes a JSON-lines history as an ellebin stream.
func binHistory(t *testing.T, jsonl string) []byte {
	t.Helper()
	h, err := jsonhist.Decode(strings.NewReader(jsonl), false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := binhist.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doBin posts one ellebin chunk, returning the status and raw body.
func doBin(t *testing.T, client *http.Client, url string, body []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", binhist.ContentType)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestBinaryChunksMatchJSON is the elled leg of the cross-format parity
// contract: the same history streamed as JSON-lines chunks and as
// ellebin chunks — the latter split at arbitrary byte offsets, well
// inside records — produces byte-identical reports in both renderings.
func TestBinaryChunksMatchJSON(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	client := srv.Client()
	jsonl := faultedHistory(t, "list-append", 11, 300)
	bin := binHistory(t, jsonl)

	jid := createJob(t, client, srv.URL, `{"model":"serializable"}`)
	feedChunks(t, client, srv.URL, jid, jsonl, 50)

	bid := createJob(t, client, srv.URL, `{"model":"serializable"}`)
	var last deltaJSON
	for i := 0; i < len(bin); i += 997 {
		end := min(i+997, len(bin))
		code, raw := doBin(t, client, srv.URL+"/v1/jobs/"+bid+"/chunks", bin[i:end])
		if code != http.StatusOK {
			t.Fatalf("binary chunk [%d:%d): status %d: %s", i, end, code, raw)
		}
		if err := json.Unmarshal([]byte(raw), &last); err != nil {
			t.Fatal(err)
		}
	}

	var jst, bst jobJSON
	do(t, client, "GET", srv.URL+"/v1/jobs/"+jid, "", &jst)
	do(t, client, "GET", srv.URL+"/v1/jobs/"+bid, "", &bst)
	if jst.Ops != bst.Ops || bst.Ops == 0 {
		t.Fatalf("op counts diverge: json job %d, binary job %d", jst.Ops, bst.Ops)
	}
	if last.Ops != bst.Ops {
		t.Fatalf("final delta ops %d, status ops %d", last.Ops, bst.Ops)
	}

	for _, format := range []string{"", "?format=json"} {
		_, jrep := do(t, client, "GET", srv.URL+"/v1/jobs/"+jid+"/report"+format, "", nil)
		_, brep := do(t, client, "GET", srv.URL+"/v1/jobs/"+bid+"/report"+format, "", nil)
		if jrep != brep {
			t.Fatalf("reports diverge between formats (%q):\n--- json chunks ---\n%s\n--- ellebin chunks ---\n%s",
				format, jrep, brep)
		}
	}
}

// TestBinaryPendingFailsReport: a job whose ellebin uploads stop
// mid-record must refuse to report — the history's tail never arrived.
func TestBinaryPendingFailsReport(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	client := srv.Client()
	bin := binHistory(t, g1aHistory)

	// Find a cut that lands strictly inside a record.
	cut := len(bin) - 1
	for ; cut > 0; cut-- {
		var c binhist.ChunkDecoder
		if _, err := c.Feed(bin[:cut]); err == nil && c.Pending() > 0 {
			break
		}
	}
	if cut == 0 {
		t.Fatal("no mid-record cut found")
	}

	id := createJob(t, client, srv.URL, `{"model":"read-committed"}`)
	if code, raw := doBin(t, client, srv.URL+"/v1/jobs/"+id+"/chunks", bin[:cut]); code != http.StatusOK {
		t.Fatalf("chunk: status %d: %s", code, raw)
	}
	code, raw := do(t, client, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil)
	if code != http.StatusConflict {
		t.Fatalf("report on a mid-record stream: status %d, want 409: %s", code, raw)
	}
	if !strings.Contains(raw, "into a record") {
		t.Errorf("error does not name the cut: %s", raw)
	}
	var st jobJSON
	do(t, client, "GET", srv.URL+"/v1/jobs/"+id, "", &st)
	if st.State != stateFailed {
		t.Errorf("job state %q after refused report, want %q", st.State, stateFailed)
	}
}

// TestMixedFormatChunksRejected: one job, one format. A chunk in the
// other format is refused without failing the job, so the client can
// correct the Content-Type and continue.
func TestMixedFormatChunksRejected(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	client := srv.Client()
	bin := binHistory(t, g1aHistory)

	id := createJob(t, client, srv.URL, `{"model":"read-committed"}`)
	if code, raw := doBin(t, client, srv.URL+"/v1/jobs/"+id+"/chunks", bin[:len(bin)/2]); code != http.StatusOK {
		t.Fatalf("first chunk: status %d: %s", code, raw)
	}
	code, raw := do(t, client, "POST", srv.URL+"/v1/jobs/"+id+"/chunks", g1aHistory, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("JSON chunk on a binary job: status %d, want 400: %s", code, raw)
	}
	if !strings.Contains(raw, "one job, one format") {
		t.Errorf("rejection does not explain itself: %s", raw)
	}
	// The stream is intact: the rest of the binary upload completes the
	// job and the report covers the full history.
	if code, raw := doBin(t, client, srv.URL+"/v1/jobs/"+id+"/chunks", bin[len(bin)/2:]); code != http.StatusOK {
		t.Fatalf("resumed chunk: status %d: %s", code, raw)
	}
	code, raw = do(t, client, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil)
	if code != http.StatusOK {
		t.Fatalf("report: status %d: %s", code, raw)
	}
	if !strings.Contains(raw, "G1a") {
		t.Errorf("report missing the planted anomaly:\n%s", raw)
	}
}

// TestBinaryGarbageFailsJob: a structurally broken ellebin chunk fails
// the job with a framing error, like a malformed JSON line does.
func TestBinaryGarbageFailsJob(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	client := srv.Client()
	id := createJob(t, client, srv.URL, "")
	code, raw := doBin(t, client, srv.URL+"/v1/jobs/"+id+"/chunks", []byte("not ellebin at all"))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage chunk: status %d, want 400: %s", code, raw)
	}
	var st jobJSON
	do(t, client, "GET", srv.URL+"/v1/jobs/"+id, "", &st)
	if st.State != stateFailed {
		t.Errorf("job state %q, want %q", st.State, stateFailed)
	}
}
