package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/report"
	"repro/internal/workload"
)

// g1aHistory has a committed read of an aborted write: one provisional
// G1a, provable the moment the second line is fed.
const g1aHistory = `{"index":0,"type":"fail","process":0,"value":[["append","x",1]]}
{"index":1,"type":"ok","process":1,"value":[["r","x",[1]]]}
`

// faultedHistory generates a JSON-lines history with planted anomalies
// for the given workload.
func faultedHistory(t *testing.T, w string, seed int64, txns int) string {
	t.Helper()
	cfg := memdb.RunConfig{Clients: 10, Txns: txns, Isolation: memdb.SnapshotIsolation, Seed: seed}
	switch w {
	case "list-append":
		cfg.Source = gen.New(gen.Config{Workload: gen.ListAppend, ActiveKeys: 5, MaxWritesPerKey: 40}, seed)
		cfg.Workload = memdb.WorkloadList
		cfg.Faults = memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1}
	case "bank":
		cfg.Source = gen.New(gen.Config{Workload: gen.Bank, ActiveKeys: 5}, seed)
		cfg.Workload = memdb.WorkloadBank
		cfg.Faults = memdb.Faults{StaleReadProb: 0.3}
	default:
		t.Fatalf("faultedHistory: unsupported workload %q", w)
	}
	h := memdb.Run(cfg)
	var buf bytes.Buffer
	if err := jsonhist.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// do issues one request and decodes a JSON response into v (when v is
// non-nil and the body is JSON).
func do(t *testing.T, client *http.Client, method, url, body string, v any) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// createJob posts a job and returns its id.
func createJob(t *testing.T, client *http.Client, base, body string) string {
	t.Helper()
	var st jobJSON
	code, raw := do(t, client, "POST", base+"/v1/jobs", body, &st)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	if st.State != stateAccepting {
		t.Fatalf("create: state %q, want %q", st.State, stateAccepting)
	}
	return st.ID
}

// feedChunks uploads the history in chunks of n lines, sequentially.
func feedChunks(t *testing.T, client *http.Client, base, id, jsonl string, n int) []deltaJSON {
	t.Helper()
	lines := strings.SplitAfter(strings.TrimSuffix(jsonl, "\n"), "\n")
	var deltas []deltaJSON
	for i := 0; i < len(lines); i += n {
		end := min(i+n, len(lines))
		var d deltaJSON
		code, raw := do(t, client, "POST", base+"/v1/jobs/"+id+"/chunks",
			strings.Join(lines[i:end], ""), &d)
		if code != http.StatusOK {
			t.Fatalf("chunk: status %d: %s", code, raw)
		}
		deltas = append(deltas, d)
	}
	return deltas
}

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

// TestServiceConcurrentJobs drives N concurrent jobs — mixed workloads,
// chunked uploads — to completion and asserts every service report is
// byte-identical to its batch equivalent, at every inference shard
// count: sharding changes how much inference runs in parallel, never
// what a job reports. Run under -race this is the concurrency
// acceptance test for the job manager and the shard pool.
func TestServiceConcurrentJobs(t *testing.T) {
	const n = 6

	type tc struct {
		workload string
		jsonl    string
		batch    string
	}
	cases := make([]tc, n)
	for i := range cases {
		w := "list-append"
		if i%2 == 1 {
			w = "bank"
		}
		jsonl := faultedHistory(t, w, int64(20+i), 150)
		info, ok := workload.Lookup(w)
		if !ok {
			t.Fatalf("workload %q not registered", w)
		}
		h, err := jsonhist.DecodeWith(strings.NewReader(jsonl), jsonhist.DecodeOpts{Register: info.RegisterReads})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		report.Prose(&buf, core.Check(h, core.OptsFor(core.Workload(w), "serializable")), report.ProseOpts{})
		cases[i] = tc{workload: w, jsonl: jsonl, batch: buf.String()}
	}

	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, srv := newTestServer(t, Config{MaxJobs: n, Shards: shards})
			var wg sync.WaitGroup
			for i, c := range cases {
				wg.Add(1)
				go func(i int, c tc) {
					defer wg.Done()
					body := fmt.Sprintf(`{"workload":%q,"model":"serializable","parallelism":1}`, c.workload)
					id := createJob(t, srv.Client(), srv.URL, body)
					feedChunks(t, srv.Client(), srv.URL, id, c.jsonl, 40)
					code, got := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil)
					if code != http.StatusOK {
						t.Errorf("job %d: report status %d: %s", i, code, got)
						return
					}
					if got != c.batch {
						t.Errorf("job %d (%s): service report diverges from batch:\n--- batch ---\n%s\n--- service ---\n%s",
							i, c.workload, c.batch, got)
					}
				}(i, c)
			}
			wg.Wait()
		})
	}
}

// TestServiceProvisionalDeltas: a mid-stream-provable anomaly surfaces
// in the chunk's delta and on the status endpoint before the report is
// requested, and the final report confirms it.
func TestServiceProvisionalDeltas(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	id := createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)

	deltas := feedChunks(t, srv.Client(), srv.URL, id, g1aHistory, 1)
	found := false
	for _, d := range deltas {
		for _, a := range d.Anomalies {
			if a.Type == "G1a" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no provisional G1a in chunk deltas: %+v", deltas)
	}

	var st jobJSON
	if code, raw := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id, "", &st); code != http.StatusOK {
		t.Fatalf("status: %d: %s", code, raw)
	}
	if st.State != stateAccepting || len(st.Anomalies) == 0 {
		t.Fatalf("status before report: %+v", st)
	}

	code, body := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil)
	if code != http.StatusOK || !strings.Contains(body, "G1a") {
		t.Fatalf("report (status %d) does not confirm G1a:\n%s", code, body)
	}
}

// TestServiceReportJSON: the report endpoint's JSON format matches
// report.New over the stream's result.
func TestServiceReportJSON(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	id := createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)
	feedChunks(t, srv.Client(), srv.URL, id, g1aHistory, 1)

	var rep report.Report
	code, raw := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/report?format=json", "", &rep)
	if code != http.StatusOK {
		t.Fatalf("report: %d: %s", code, raw)
	}
	if rep.Valid || rep.Workload != "list-append" || len(rep.Anomalies) == 0 {
		t.Fatalf("unexpected JSON report: %s", raw)
	}
	// The second fetch re-renders the same finished job.
	if code, again := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/report?format=json", "", nil); code != http.StatusOK || again != raw {
		t.Fatalf("report not stable across fetches (status %d)", code)
	}
}

// TestServiceJobLimit: creation beyond MaxJobs is refused with 429
// until a slot frees up.
func TestServiceJobLimit(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxJobs: 1})
	id := createJob(t, srv.Client(), srv.URL, `{}`)

	if code, raw := do(t, srv.Client(), "POST", srv.URL+"/v1/jobs", `{}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429: %s", code, raw)
	}
	if code, _ := do(t, srv.Client(), "DELETE", srv.URL+"/v1/jobs/"+id, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete failed")
	}
	createJob(t, srv.Client(), srv.URL, `{}`)
}

// TestServiceFinishedReap is the regression test for finished jobs
// pinning the job table: a done job holds its slot, so at MaxJobs: 1 a
// harness that fetches its report but never DELETEs sees 429 on the
// next create — until FinishedTTL reaps the finished job and creation
// recovers without any client action.
func TestServiceFinishedReap(t *testing.T) {
	_, srv := newTestServer(t, Config{
		MaxJobs:     1,
		FinishedTTL: 60 * time.Millisecond,
		IdleTimeout: time.Hour, // isolate the finished-TTL path
	})
	c := srv.Client()

	id := createJob(t, c, srv.URL, `{"model":"read-committed"}`)
	feedChunks(t, c, srv.URL, id, g1aHistory, 2)
	if code, raw := do(t, c, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil); code != http.StatusOK {
		t.Fatalf("report: %d: %s", code, raw)
	}

	// The finished job still counts against MaxJobs: creation is refused.
	if code, raw := do(t, c, "POST", srv.URL+"/v1/jobs", `{}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("create while finished job resident: status %d, want 429: %s", code, raw)
	}

	// Polling must not keep the finished job alive past its TTL.
	deadline := time.Now().Add(5 * time.Second)
	for {
		do(t, c, "GET", srv.URL+"/v1/jobs/"+id, "", nil)
		if code, _ := do(t, c, "POST", srv.URL+"/v1/jobs", `{}`, nil); code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("creation never recovered after the finished job's TTL")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServiceMemoryBudget: a job created with memory_budget retires
// settled history while accepting, surfaces resident/retired counters
// on the status endpoint, and still reports byte-identically to an
// unbudgeted job over the same history.
func TestServiceMemoryBudget(t *testing.T) {
	_, srv := newTestServer(t, Config{SpillDir: t.TempDir()})
	c := srv.Client()
	jsonl := faultedHistory(t, "list-append", 33, 400)

	plain := createJob(t, c, srv.URL, `{"model":"serializable","parallelism":1}`)
	feedChunks(t, c, srv.URL, plain, jsonl, 50)
	code, want := do(t, c, "GET", srv.URL+"/v1/jobs/"+plain+"/report", "", nil)
	if code != http.StatusOK {
		t.Fatalf("unbudgeted report: %d: %s", code, want)
	}

	id := createJob(t, c, srv.URL, `{"model":"serializable","parallelism":1,"memory_budget":64}`)
	feedChunks(t, c, srv.URL, id, jsonl, 50)

	var st jobJSON
	if code, raw := do(t, c, "GET", srv.URL+"/v1/jobs/"+id, "", &st); code != http.StatusOK {
		t.Fatalf("status: %d: %s", code, raw)
	}
	if st.Memory == nil {
		t.Fatal("budgeted job's status has no memory counters")
	}
	if st.Memory.Budget != 64 || st.Memory.RetiredOps == 0 || st.Memory.SpilledBytes == 0 {
		t.Fatalf("memory counters show no retirement: %+v", *st.Memory)
	}
	if st.Memory.Degraded != "" {
		t.Fatalf("unexpected degradation: %s", st.Memory.Degraded)
	}

	code, got := do(t, c, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil)
	if code != http.StatusOK {
		t.Fatalf("budgeted report: %d: %s", code, got)
	}
	if got != want {
		t.Fatalf("budgeted report diverges from unbudgeted:\n--- unbudgeted ---\n%s\n--- budgeted ---\n%s", want, got)
	}

	// The unbudgeted job, by contrast, reports no memory counters.
	var pst jobJSON
	do(t, c, "GET", srv.URL+"/v1/jobs/"+plain, "", &pst)
	if pst.Memory != nil {
		t.Fatalf("unbudgeted job grew memory counters: %+v", *pst.Memory)
	}

	if code, raw := do(t, c, "POST", srv.URL+"/v1/jobs", `{"memory_budget":-1}`, nil); code != http.StatusBadRequest {
		t.Fatalf("negative memory_budget: status %d, want 400: %s", code, raw)
	}
}

// TestServiceChunkLimit: an oversized chunk with a declared length is
// refused with 413 and leaves the job intact.
func TestServiceChunkLimit(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxChunkBytes: 128})
	id := createJob(t, srv.Client(), srv.URL, `{"model":"read-committed","parallelism":1}`)

	big := strings.Repeat(`{"index":0,"type":"ok","process":0,"value":[["append","x",1]]}`+"\n", 10)
	code, raw := do(t, srv.Client(), "POST", srv.URL+"/v1/jobs/"+id+"/chunks", big, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized chunk: status %d, want 413: %s", code, raw)
	}
	// The job was untouched: small chunks still flow and the report works.
	feedChunks(t, srv.Client(), srv.URL, id, g1aHistory, 1)
	if code, raw := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil); code != http.StatusOK {
		t.Fatalf("report after refused chunk: %d: %s", code, raw)
	}
}

// TestServiceErrors covers the remaining failure modes: bad create
// requests, unknown jobs, malformed chunks, and feeding after the
// report.
func TestServiceErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	c := srv.Client()

	if code, _ := do(t, c, "POST", srv.URL+"/v1/jobs", `{"workload":"nope"}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown workload: %d, want 400", code)
	}
	if code, _ := do(t, c, "POST", srv.URL+"/v1/jobs", `{"model":"nope"}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown model: %d, want 400", code)
	}
	for _, u := range []string{"/v1/jobs/j999", "/v1/jobs/j999/report"} {
		if code, _ := do(t, c, "GET", srv.URL+u, "", nil); code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", u, code)
		}
	}
	if code, _ := do(t, c, "POST", srv.URL+"/v1/jobs/j999/chunks", "x", nil); code != http.StatusNotFound {
		t.Errorf("chunk to unknown job: want 404")
	}
	if code, _ := do(t, c, "DELETE", srv.URL+"/v1/jobs/j999", "", nil); code != http.StatusNotFound {
		t.Errorf("delete unknown job: want 404")
	}

	// A malformed chunk fails the job terminally.
	id := createJob(t, c, srv.URL, `{}`)
	if code, raw := do(t, c, "POST", srv.URL+"/v1/jobs/"+id+"/chunks", "not json\n", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed chunk: %d, want 400: %s", code, raw)
	}
	var st jobJSON
	do(t, c, "GET", srv.URL+"/v1/jobs/"+id, "", &st)
	if st.State != stateFailed {
		t.Errorf("state after malformed chunk = %q, want %q", st.State, stateFailed)
	}
	if code, _ := do(t, c, "GET", srv.URL+"/v1/jobs/"+id+"/report", "", nil); code != http.StatusConflict {
		t.Errorf("report of failed job: want 409")
	}
	if code, _ := do(t, c, "POST", srv.URL+"/v1/jobs/"+id+"/chunks", g1aHistory, nil); code != http.StatusConflict {
		t.Errorf("chunk to failed job: want 409")
	}

	// Feeding after the report has finalized the stream is refused.
	id2 := createJob(t, c, srv.URL, `{"model":"read-committed"}`)
	feedChunks(t, c, srv.URL, id2, g1aHistory, 2)
	do(t, c, "GET", srv.URL+"/v1/jobs/"+id2+"/report", "", nil)
	if code, _ := do(t, c, "POST", srv.URL+"/v1/jobs/"+id2+"/chunks", g1aHistory, nil); code != http.StatusConflict {
		t.Errorf("chunk after report: want 409")
	}
}

// TestServiceIdleReap: jobs nobody touches are reaped after the idle
// timeout, freeing their slot.
func TestServiceIdleReap(t *testing.T) {
	svc, srv := newTestServer(t, Config{IdleTimeout: 60 * time.Millisecond})
	id := createJob(t, srv.Client(), srv.URL, `{}`)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Jobs() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle job was never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs/"+id, "", nil); code != http.StatusNotFound {
		t.Errorf("reaped job still resolves: %d, want 404", code)
	}
}

// TestServiceListAndWorkloads: the listing endpoints report resident
// jobs in creation order and the registered workload names.
func TestServiceListAndWorkloads(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	a := createJob(t, srv.Client(), srv.URL, `{}`)
	b := createJob(t, srv.Client(), srv.URL, `{"workload":"bank"}`)

	var list struct {
		Jobs []jobJSON `json:"jobs"`
	}
	if code, raw := do(t, srv.Client(), "GET", srv.URL+"/v1/jobs", "", &list); code != http.StatusOK {
		t.Fatalf("list: %d: %s", code, raw)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a || list.Jobs[1].ID != b {
		t.Fatalf("list = %+v, want [%s %s]", list.Jobs, a, b)
	}

	var wl struct {
		Workloads []string `json:"workloads"`
	}
	do(t, srv.Client(), "GET", srv.URL+"/v1/workloads", "", &wl)
	found := false
	for _, w := range wl.Workloads {
		if w == "bank" {
			found = true
		}
	}
	if !found {
		t.Fatalf("workloads missing bank: %v", wl.Workloads)
	}

	if code, _ := do(t, srv.Client(), "GET", srv.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Errorf("healthz: want 200")
	}
}
