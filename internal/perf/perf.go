// Package perf regenerates the paper's Figure 4: runtime versus history
// length, for various client concurrencies, comparing Elle against the
// Knossos-style search baseline.
//
// Following §7.5, histories are composed of randomly generated
// transactions performing one to five operations each, over 100 possible
// objects with 100 appends per object, produced by simulated clients
// against the in-memory serializable-snapshot-isolated database. Baseline
// runs are capped (the paper used 100 seconds); capped runs report
// "unknown", which is how Knossos's timeouts appear in Figure 4.
package perf

import (
	"fmt"
	"io"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/serialcheck"
	"repro/internal/workload"

	// Populate the workload registry so Config.Workload resolves every
	// built-in analyzer.
	_ "repro/internal/workload/all"
)

// Point is one measurement.
type Point struct {
	Checker     string // "elle" or "knossos"
	Ops         int    // transactions in the history
	Concurrency int    // client threads
	Seconds     float64
	Outcome     string // "valid", "invalid", "serializable", "unknown", ...
	Anomalies   int    // elle only
	// Workload is the resolved workload the point measured — always the
	// registry's canonical name, so a fallback from an unknown
	// Config.Workload is visible in the output.
	Workload string
}

// Config parameterizes the sweep.
type Config struct {
	// Lengths is the series of history lengths (transactions).
	Lengths []int
	// Concurrencies is the series of client counts (the paper's c).
	Concurrencies []int
	// BaselineCap bounds each baseline search (paper: 100 s).
	BaselineCap time.Duration
	// BaselineMaxOps skips baseline runs longer than this; the paper's
	// Knossos plots stop well short of 100k ops for high concurrency.
	BaselineMaxOps int
	// Seed drives history generation.
	Seed int64
	// Elle and Baseline toggle the two checkers.
	Elle, Baseline bool
	// Parallelism is Elle's worker count per check (<= 0 one per CPU,
	// 1 sequential) — the knob the parallel-speedup sweeps vary.
	Parallelism int
	// Workload selects any registered workload by name or alias
	// (default list-append). The Knossos baseline only understands
	// list histories, so it is skipped for every other workload.
	Workload string
}

// DefaultConfig mirrors Figure 4's axes at a scale that completes on a
// laptop: lengths up to 100k ops, concurrencies 1–100.
func DefaultConfig() Config {
	return Config{
		Lengths:        []int{1000, 2000, 5000, 10000, 20000, 50000, 100000},
		Concurrencies:  []int{1, 5, 10, 20, 40, 100},
		BaselineCap:    10 * time.Second,
		BaselineMaxOps: 5000,
		Seed:           1,
		Elle:           true,
		Baseline:       true,
	}
}

// GenerateHistory builds one Figure 4 workload history: n list-append
// transactions at concurrency c against the serializable engine.
func GenerateHistory(n, c int, seed int64) *history.History {
	return GenerateWorkloadHistory(workload.Info{}, n, c, seed)
}

// GenerateWorkloadHistory is GenerateHistory for any registered
// workload: info carries the generator and engine semantics (the zero
// Info generates list-append).
func GenerateWorkloadHistory(info workload.Info, n, c int, seed int64) *history.History {
	g := gen.New(gen.Config{
		Workload:        info.Gen,
		ActiveKeys:      100,
		MaxWritesPerKey: 100,
		MinOps:          1,
		MaxOps:          5,
	}, seed)
	return memdb.Run(memdb.RunConfig{
		Clients:   c,
		Txns:      n,
		Isolation: memdb.StrictSerializable,
		Source:    g,
		Seed:      seed,
		Workload:  info.DB,
		// A small rate of lost commit acknowledgements, as fault-injection
		// tests produce: each one moves its client to a fresh logical
		// process, so logical concurrency grows over time — the paper
		// notes tens of thousands of logically concurrent transactions
		// are not uncommon, and this is what defeats the search baseline.
		InfoProb: 0.02,
	})
}

// Sweep runs the measurement grid, invoking report (if non-nil) after
// each point. An unknown Config.Workload falls back to list-append.
func Sweep(cfg Config, report func(Point)) []Point {
	name := cfg.Workload
	if name == "" {
		name = string(workload.ListAppend)
	}
	info, ok := workload.Lookup(name)
	if !ok {
		info, _ = workload.Lookup(string(workload.ListAppend))
	}
	var out []Point
	emit := func(p Point) {
		p.Workload = string(info.Name)
		out = append(out, p)
		if report != nil {
			report(p)
		}
	}
	baseline := cfg.Baseline && info.Name == workload.ListAppend
	for _, c := range cfg.Concurrencies {
		for _, n := range cfg.Lengths {
			h := GenerateWorkloadHistory(info, n, c, cfg.Seed)
			if cfg.Elle {
				opts := core.OptsFor(core.Workload(info.Name), consistency.StrictSerializable)
				opts.Parallelism = cfg.Parallelism
				start := time.Now()
				r := core.Check(h, opts)
				sec := time.Since(start).Seconds()
				outcome := "valid"
				if !r.Valid {
					outcome = "invalid"
				}
				emit(Point{
					Checker: "elle", Ops: n, Concurrency: c,
					Seconds: sec, Outcome: outcome, Anomalies: len(r.Anomalies),
				})
			}
			if baseline && (cfg.BaselineMaxOps == 0 || n <= cfg.BaselineMaxOps) {
				start := time.Now()
				r := serialcheck.Check(h, serialcheck.Opts{Timeout: cfg.BaselineCap})
				sec := time.Since(start).Seconds()
				emit(Point{
					Checker: "knossos", Ops: n, Concurrency: c,
					Seconds: sec, Outcome: r.Outcome.String(),
				})
			}
		}
	}
	return out
}

// WriteCSV renders points as CSV with a header, the format the paper's
// Figure 4 was plotted from.
func WriteCSV(w io.Writer, points []Point) error {
	if _, err := fmt.Fprintln(w, "checker,ops,concurrency,seconds,outcome,anomalies,workload"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.6f,%s,%d,%s\n",
			p.Checker, p.Ops, p.Concurrency, p.Seconds, p.Outcome, p.Anomalies, p.Workload); err != nil {
			return err
		}
	}
	return nil
}
