package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestGenerateHistorySizes(t *testing.T) {
	h := GenerateHistory(200, 5, 1)
	if got := len(h.Completions()); got != 200 {
		t.Errorf("completions = %d, want 200", got)
	}
	if h.Compact() {
		t.Error("perf histories must have invoke/completion structure")
	}
}

func TestSweepSmall(t *testing.T) {
	cfg := Config{
		Lengths:        []int{50, 100},
		Concurrencies:  []int{1, 4},
		BaselineCap:    5 * time.Second,
		BaselineMaxOps: 100,
		Seed:           1,
		Elle:           true,
		Baseline:       true,
	}
	var reported int
	points := Sweep(cfg, func(Point) { reported++ })
	// 2 lengths × 2 concurrencies × 2 checkers.
	if len(points) != 8 || reported != 8 {
		t.Fatalf("points = %d, reported = %d", len(points), reported)
	}
	for _, p := range points {
		switch p.Checker {
		case "elle":
			if p.Outcome != "valid" {
				t.Errorf("elle found anomalies on clean history: %+v", p)
			}
		case "knossos":
			if p.Outcome == "not-serializable" {
				t.Errorf("baseline rejected a clean history: %+v", p)
			}
		default:
			t.Errorf("unknown checker %q", p.Checker)
		}
		if p.Seconds < 0 {
			t.Errorf("negative runtime: %+v", p)
		}
	}
}

func TestBaselineMaxOpsSkips(t *testing.T) {
	cfg := Config{
		Lengths:        []int{50, 200},
		Concurrencies:  []int{2},
		BaselineCap:    time.Second,
		BaselineMaxOps: 100,
		Seed:           1,
		Baseline:       true,
	}
	points := Sweep(cfg, nil)
	for _, p := range points {
		if p.Checker == "knossos" && p.Ops > 100 {
			t.Errorf("baseline ran past its cap: %+v", p)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Point{
		{Checker: "elle", Ops: 10, Concurrency: 2, Seconds: 0.5, Outcome: "valid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "checker,ops") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "elle,10,2,0.5") {
		t.Errorf("row = %q", lines[1])
	}
}

// TestElleScalesLinearly is a smoke check of the Figure 4 claim at test
// scale: checking 8× more ops must not cost 100× more time (i.e. the
// checker is far from exponential).
func TestElleScalesNearLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := Config{
		Lengths:       []int{2000, 16000},
		Concurrencies: []int{10},
		Seed:          1,
		Elle:          true,
	}
	points := Sweep(cfg, nil)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, big := points[0], points[1]
	if big.Seconds > 0.01 && big.Seconds > small.Seconds*100 {
		t.Errorf("8× ops took %.1f× longer (%.4fs -> %.4fs)",
			big.Seconds/small.Seconds, small.Seconds, big.Seconds)
	}
}
