package consistency

import (
	"testing"

	"repro/internal/anomaly"
)

func TestImpliesReflexiveAndTransitive(t *testing.T) {
	for _, m := range All {
		if !Implies(m, m) {
			t.Errorf("%s should imply itself", m)
		}
	}
	if !Implies(StrictSerializable, ReadUncommitted) {
		t.Error("strict-serializable should imply read-uncommitted")
	}
	if !Implies(Serializable, SnapshotIsolation) {
		t.Error("serializable should imply snapshot isolation")
	}
	if !Implies(Serializable, RepeatableRead) {
		t.Error("serializable should imply repeatable read")
	}
	if Implies(SnapshotIsolation, RepeatableRead) {
		t.Error("SI must not imply repeatable read (they are incomparable)")
	}
	if Implies(RepeatableRead, SnapshotIsolation) {
		t.Error("repeatable read must not imply SI")
	}
	if Implies(Serializable, StrictSerializable) {
		t.Error("serializable must not imply strict serializability")
	}
}

func TestG0ViolatesEverything(t *testing.T) {
	v := Violated([]anomaly.Type{anomaly.G0})
	if len(v) != len(All) {
		t.Errorf("G0 should violate all %d models, violated %d: %v", len(All), len(v), v)
	}
}

func TestG1cViolations(t *testing.T) {
	types := []anomaly.Type{anomaly.G1c}
	if Holds(ReadUncommitted, types) == false {
		t.Error("G1c alone should not rule out read-uncommitted")
	}
	for _, m := range []Model{ReadCommitted, RepeatableRead, SnapshotIsolation, Serializable, StrictSerializable} {
		if Holds(m, types) {
			t.Errorf("G1c should rule out %s", m)
		}
	}
}

func TestGSingleViolations(t *testing.T) {
	types := []anomaly.Type{anomaly.GSingle}
	if !Holds(ReadCommitted, types) {
		t.Error("G-single should not rule out read committed")
	}
	if Holds(SnapshotIsolation, types) {
		t.Error("G-single (read skew) should rule out SI")
	}
	if Holds(RepeatableRead, types) {
		t.Error("G-single should rule out repeatable read")
	}
	if Holds(Serializable, types) {
		t.Error("G-single should rule out serializability")
	}
}

func TestG2ItemViolations(t *testing.T) {
	types := []anomaly.Type{anomaly.G2Item}
	// Write skew is legal under SI.
	if !Holds(SnapshotIsolation, types) {
		t.Error("G2-item alone should not rule out SI")
	}
	if Holds(Serializable, types) {
		t.Error("G2-item should rule out serializability")
	}
	if Holds(RepeatableRead, types) {
		t.Error("G2-item should rule out repeatable read")
	}
	if !Holds(ReadCommitted, types) {
		t.Error("G2-item should not rule out read committed")
	}
}

func TestRealtimeCycleViolatesOnlyStrict(t *testing.T) {
	types := []anomaly.Type{anomaly.G2ItemRealtime}
	if Holds(StrictSerializable, types) {
		t.Error("realtime G2 should rule out strict serializability")
	}
	if !Holds(Serializable, types) {
		t.Error("realtime G2 should not rule out plain serializability")
	}
	if !Holds(SnapshotIsolation, types) {
		t.Error("realtime G2 should not rule out SI")
	}
}

func TestProcessCycleViolatesStrongSession(t *testing.T) {
	types := []anomaly.Type{anomaly.GSingleProcess}
	if Holds(StrongSessionSI, types) {
		t.Error("process G-single should rule out strong-session SI")
	}
	if Holds(StrictSerializable, types) {
		t.Error("process G-single should rule out strict serializability")
	}
	if !Holds(SnapshotIsolation, types) {
		t.Error("process G-single should not rule out plain SI")
	}
}

func TestMaySatisfyAndStrongest(t *testing.T) {
	// With no anomalies everything may hold; the strongest is
	// strict-serializable alone.
	s := Strongest(nil)
	if len(s) != 1 || s[0] != StrictSerializable {
		t.Errorf("Strongest(nil) = %v", s)
	}
	// After G-single, RC survives but SI and RR do not.
	may := MaySatisfy([]anomaly.Type{anomaly.GSingle})
	for _, m := range may {
		if m == SnapshotIsolation || m == RepeatableRead || m == Serializable {
			t.Errorf("MaySatisfy contains violated model %s", m)
		}
	}
	st := Strongest([]anomaly.Type{anomaly.GSingle})
	if len(st) != 1 || st[0] != ReadCommitted {
		t.Errorf("Strongest after G-single = %v, want [read-committed]", st)
	}
}

func TestStrongestAfterG2Item(t *testing.T) {
	// Write skew leaves SI as the strongest surviving model (strong
	// session variants fall with their base? no: they imply SI only).
	st := Strongest([]anomaly.Type{anomaly.G2Item})
	// G2-item violates RR, serializable, and everything implying them,
	// leaving strong-session SI as the maximal survivor.
	if len(st) != 1 || st[0] != StrongSessionSI {
		t.Errorf("Strongest after G2-item = %v, want [strong-session-snapshot-isolation]", st)
	}
}

func TestViolatedIsMonotone(t *testing.T) {
	// Adding anomalies can only grow the violated set.
	a := Violated([]anomaly.Type{anomaly.G2Item})
	b := Violated([]anomaly.Type{anomaly.G2Item, anomaly.G1a})
	if len(b) < len(a) {
		t.Errorf("violated set shrank: %d -> %d", len(a), len(b))
	}
	inA := map[Model]bool{}
	for _, m := range a {
		inA[m] = true
	}
	for _, m := range a {
		found := false
		for _, n := range b {
			if n == m {
				found = true
			}
		}
		if !found {
			t.Errorf("model %s lost when adding anomalies", m)
		}
	}
	_ = inA
}

func TestEveryAnomalyTypeHasAMapping(t *testing.T) {
	types := []anomaly.Type{
		anomaly.G0, anomaly.G1a, anomaly.G1b, anomaly.G1c,
		anomaly.GSingle, anomaly.G2Item,
		anomaly.G0Process, anomaly.G1cProcess, anomaly.GSingleProcess, anomaly.G2ItemProcess,
		anomaly.G0Realtime, anomaly.G1cRealtime, anomaly.GSingleRealtime, anomaly.G2ItemRealtime,
		anomaly.G0Timestamp, anomaly.G1cTimestamp, anomaly.GSingleTimestamp, anomaly.G2ItemTimestamp,
		anomaly.DirtyUpdate, anomaly.LostUpdate, anomaly.GarbageRead,
		anomaly.DuplicateElements, anomaly.DuplicateAppends,
		anomaly.Internal, anomaly.IncompatibleOrder, anomaly.CyclicVersionOrder,
	}
	for _, typ := range types {
		if v := Violated([]anomaly.Type{typ}); len(v) == 0 {
			t.Errorf("anomaly %s rules out no models", typ)
		}
	}
}
