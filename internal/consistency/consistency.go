// Package consistency encodes the fragment of the isolation-model
// implication lattice Elle reports against: given the set of anomalies
// detected in an observation, it computes which models the history
// violates and which it may still satisfy.
//
// The lattice follows Adya's generalized isolation level definitions plus
// the session/real-time strengthenings of §5.1 of the Elle paper: an edge
// M → M' means "M is stronger than M'": every history satisfying M
// satisfies M', so an anomaly that violates M' also violates M.
//
// docs/ANOMALIES.md renders the lattice and the anomaly→model
// violates-relation below as one cross-referenced glossary.
package consistency

import (
	"sort"

	"repro/internal/anomaly"
)

// Model names an isolation / consistency model.
type Model string

// The models in the lattice, weakest to strongest (roughly).
const (
	ReadUncommitted     Model = "read-uncommitted"   // PL-1: proscribes G0
	ReadCommitted       Model = "read-committed"     // PL-2: + G1a, G1b, G1c
	RepeatableRead      Model = "repeatable-read"    // PL-2.99: + G2-item
	SnapshotIsolation   Model = "snapshot-isolation" // PL-SI: + G-single, lost update
	Serializable        Model = "serializable"       // PL-3
	StrongSessionSI     Model = "strong-session-snapshot-isolation"
	StrongSessionSerial Model = "strong-session-serializable"
	StrictSerializable  Model = "strict-serializable"
)

// All lists every model in the lattice, weakest first.
var All = []Model{
	ReadUncommitted,
	ReadCommitted,
	RepeatableRead,
	SnapshotIsolation,
	Serializable,
	StrongSessionSI,
	StrongSessionSerial,
	StrictSerializable,
}

// Known reports whether m names a model in the lattice — the one
// validity check every surface that accepts a model string (cmd/elle,
// the elled service) shares, so they cannot drift on the accepted set.
func Known(m Model) bool {
	for _, k := range All {
		if k == m {
			return true
		}
	}
	return false
}

// stronger maps each model to the models it directly implies.
var stronger = map[Model][]Model{
	ReadCommitted:       {ReadUncommitted},
	RepeatableRead:      {ReadCommitted},
	SnapshotIsolation:   {ReadCommitted},
	Serializable:        {RepeatableRead, SnapshotIsolation},
	StrongSessionSI:     {SnapshotIsolation},
	StrongSessionSerial: {Serializable, StrongSessionSI},
	StrictSerializable:  {StrongSessionSerial},
}

// Implies reports whether a history satisfying m necessarily satisfies n.
func Implies(m, n Model) bool {
	if m == n {
		return true
	}
	for _, d := range stronger[m] {
		if Implies(d, n) {
			return true
		}
	}
	return false
}

// violates maps each anomaly type to the weakest models it rules out
// directly. Violating a model transitively rules out every stronger model.
var violates = map[anomaly.Type][]Model{
	// A write cycle means even read uncommitted's sole guarantee is gone.
	anomaly.G0: {ReadUncommitted},

	// The G1 family is proscribed by read committed.
	anomaly.G1a: {ReadCommitted},
	anomaly.G1b: {ReadCommitted},
	anomaly.G1c: {ReadCommitted},
	// Dirty updates leak uncommitted state into committed versions; like
	// G1a they defeat read committed.
	anomaly.DirtyUpdate: {ReadCommitted},
	// Incompatible orders imply an aborted read in every interpretation.
	anomaly.IncompatibleOrder: {ReadCommitted},

	// A single anti-dependency cycle (read skew) is admitted by repeatable
	// read's weaker cousins but proscribed by both SI and repeatable read.
	anomaly.GSingle:    {SnapshotIsolation, RepeatableRead},
	anomaly.LostUpdate: {SnapshotIsolation, RepeatableRead},

	// Bank invariant violations are read-skew / lost-update signatures
	// observed through the total-balance invariant: a read-committed
	// history may legitimately observe a torn total (its reads need not
	// form a snapshot), but a snapshot- or repeatable-read history may
	// not.
	anomaly.TotalMismatch:   {SnapshotIsolation, RepeatableRead},
	anomaly.NegativeBalance: {SnapshotIsolation, RepeatableRead},

	// Multiple anti-dependencies (write skew) are legal under SI but not
	// under repeatable read or serializability.
	anomaly.G2Item: {RepeatableRead},

	// Session variants violate the strong-session strengthenings.
	anomaly.G0Process:      {StrongSessionSI, StrongSessionSerial},
	anomaly.G1cProcess:     {StrongSessionSI, StrongSessionSerial},
	anomaly.GSingleProcess: {StrongSessionSI, StrongSessionSerial},
	anomaly.G2ItemProcess:  {StrongSessionSerial},

	// Real-time variants violate only the strict models.
	anomaly.G0Realtime:      {StrictSerializable},
	anomaly.G1cRealtime:     {StrictSerializable},
	anomaly.GSingleRealtime: {StrictSerializable},
	anomaly.G2ItemRealtime:  {StrictSerializable},

	// Timestamp variants contradict the database's own claimed time-
	// precedes order — the order Adya's SI formalization is defined
	// over — so they refute snapshot isolation and everything stronger.
	anomaly.G0Timestamp:      {SnapshotIsolation},
	anomaly.G1cTimestamp:     {SnapshotIsolation},
	anomaly.GSingleTimestamp: {SnapshotIsolation},
	anomaly.G2ItemTimestamp:  {SnapshotIsolation},

	// A k-atomicity violation refutes real-time atomicity of a single
	// register. Its transactions are single operations, so any
	// transactional order is satisfiable — only the strict (real-time)
	// model is ruled out.
	anomaly.KAtomicViolation: {StrictSerializable},

	// Structural anomalies mean the database is not even a database of
	// the claimed objects; no model in the lattice tolerates them.
	anomaly.GarbageRead:        {ReadUncommitted},
	anomaly.DuplicateElements:  {ReadUncommitted},
	anomaly.DuplicateAppends:   {ReadUncommitted},
	anomaly.Internal:           {ReadUncommitted},
	anomaly.CyclicVersionOrder: {StrictSerializable},
}

// Violated returns every model ruled out by the given anomaly types,
// sorted by position in All. A model is ruled out if any anomaly violates
// it directly or violates a model it implies.
func Violated(types []anomaly.Type) []Model {
	out := map[Model]bool{}
	for _, t := range types {
		for _, weak := range violates[t] {
			for _, m := range All {
				if Implies(m, weak) {
					out[m] = true
				}
			}
		}
	}
	return sortModels(out)
}

// MaySatisfy returns the models not ruled out by the given anomalies,
// weakest first.
func MaySatisfy(types []anomaly.Type) []Model {
	bad := map[Model]bool{}
	for _, m := range Violated(types) {
		bad[m] = true
	}
	var out []Model
	for _, m := range All {
		if !bad[m] {
			out = append(out, m)
		}
	}
	return out
}

// Strongest returns the maximal models (none implied by another surviving
// model) a history with the given anomalies may still satisfy.
func Strongest(types []anomaly.Type) []Model {
	may := MaySatisfy(types)
	var out []Model
	for _, m := range may {
		dominated := false
		for _, n := range may {
			if n != m && Implies(n, m) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, m)
		}
	}
	return out
}

// Holds reports whether a history exhibiting the given anomaly types can
// still satisfy model m.
func Holds(m Model, types []anomaly.Type) bool {
	for _, v := range Violated(types) {
		if v == m {
			return false
		}
	}
	return true
}

func sortModels(set map[Model]bool) []Model {
	rank := map[Model]int{}
	for i, m := range All {
		rank[m] = i
	}
	var out []Model
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return rank[out[i]] < rank[out[j]] })
	return out
}
