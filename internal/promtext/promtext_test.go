package promtext

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_created_total", "Jobs created.")
	c.Add(3)
	g := r.Gauge("queue_depth", "Depth.")
	g.Set(2.5)
	cv := r.CounterVec("refused_total", "Refusals by code.", "code")
	cv.With("429").Add(2)
	cv.With("413").Inc()
	r.GaugeFunc("resident", "Computed at scrape.", func() float64 { return 7 })
	r.GaugeVecFunc("jobs", "Jobs by state.", []string{"state"}, func(set func([]string, float64)) {
		set([]string{"done"}, 1)
		set([]string{"accepting"}, 4)
	})
	h := r.Histogram("fsync_seconds", "Fsync latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	got := render(t, r)
	want := `# HELP fsync_seconds Fsync latency.
# TYPE fsync_seconds histogram
fsync_seconds_bucket{le="0.001"} 1
fsync_seconds_bucket{le="0.01"} 2
fsync_seconds_bucket{le="+Inf"} 3
fsync_seconds_sum 5.0055
fsync_seconds_count 3
# HELP jobs Jobs by state.
# TYPE jobs gauge
jobs{state="accepting"} 4
jobs{state="done"} 1
# HELP jobs_created_total Jobs created.
# TYPE jobs_created_total counter
jobs_created_total 3
# HELP queue_depth Depth.
# TYPE queue_depth gauge
queue_depth 2.5
# HELP refused_total Refusals by code.
# TYPE refused_total counter
refused_total{code="413"} 1
refused_total{code="429"} 2
# HELP resident Computed at scrape.
# TYPE resident gauge
resident 7
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Deterministic across scrapes.
	if again := render(t, r); again != got {
		t.Fatal("two scrapes of unchanged state differ")
	}
}

// TestExpositionShape: every non-comment line is `name{labels} value`
// per the exposition grammar, and every family has HELP before TYPE
// before samples.
func TestExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	r.GaugeVec("b", "B.", "x", "y").With(`quo"te`, "new\nline").Set(1)
	r.Histogram("h_seconds", "H.", []float64{0.5}).Observe(1)

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9.+eEInf]+$`)
	for _, line := range strings.Split(strings.TrimSuffix(render(t, r), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family did not panic")
		}
	}()
	r.Counter("dup_total", "two")
}

func TestCounterNegativePanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

// TestConcurrentObserve: bumps from many goroutines all land (run with
// -race this is the data-race check for the hot counters).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", []float64{1})
	cv := r.CounterVec("v_total", "v", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
				cv.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || cv.With("a").Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d v=%d", c.Value(), h.Count(), cv.With("a").Value())
	}
}
