// Package promtext is a hand-rolled Prometheus text-exposition
// registry: counters, gauges, and histograms rendered in the format
// prometheus.io/docs/instrumenting/exposition_formats defines, with no
// client-library dependency. It implements exactly what elled's
// /metrics endpoint needs — atomic counters hot-path-cheap enough to
// bump per chunk, label vectors for small fixed label sets, callback
// gauges for values computed at scrape time, and cumulative-bucket
// histograms for latency — and nothing else.
//
// Rendering is deterministic: families sort by name, samples by label
// value, so two scrapes of the same state are byte-identical and tests
// can pin output.
package promtext

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families and renders them as one exposition.
type Registry struct {
	mu  sync.Mutex
	fam []*family
}

// family is one metric name: help, type, and its samples.
type family struct {
	name, help, typ string
	labels          []string // label names for vec families; nil for plain

	mu      sync.Mutex
	metrics map[string]metric // keyed by joined label values
	collect func(set func(labels []string, v float64))
	hist    *Histogram
}

type metric interface{ value() float64 }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.fam {
		if have.name == f.name {
			panic("promtext: duplicate metric family " + f.name)
		}
	}
	r.fam = append(r.fam, f)
	return f
}

// A Counter only goes up. Safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics — counters are monotone.
func (c *Counter) Add(n int) {
	if n < 0 {
		panic("promtext: counter decrement")
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64  { return c.v.Load() }
func (c *Counter) value() float64 { return float64(c.v.Load()) }

// A Gauge goes up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
func (g *Gauge) value() float64 { return g.Value() }

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter",
		metrics: map[string]metric{"": c}})
	return c
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, typ: "gauge",
		metrics: map[string]metric{"": g}})
	return g
}

// CounterVec is a counter family with one or more labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.add(&family{name: name, help: help, typ: "counter",
		labels: labels, metrics: map[string]metric{}})
	return &CounterVec{f: f}
}

// With returns the counter for the given label values (in declaration
// order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with one or more labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.add(&family{name: name, help: help, typ: "gauge",
		labels: labels, metrics: map[string]metric{}})
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge",
		collect: func(set func([]string, float64)) { set(nil, fn()) }})
}

// GaugeVecFunc registers a labeled gauge family collected at scrape
// time: fn calls set once per (label values, value) sample.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func(set func(values []string, v float64))) {
	r.add(&family{name: name, help: help, typ: "gauge", labels: labels, collect: fn})
}

const labelSep = "\x1f"

func (f *family) with(values []string, make func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("promtext: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		m = make()
		f.metrics[key] = m
	}
	return m
}

// A Histogram observes a distribution into cumulative buckets — the
// exposition's classic le-labeled shape. Buckets are fixed at
// registration; observations are lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits accumulated via CAS
	count  atomic.Uint64
}

// Histogram registers a histogram with the given ascending upper
// bounds (seconds, bytes — caller's choice of unit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("promtext: histogram bounds must ascend")
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.add(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Write renders the exposition: every family in name order, samples in
// label order, one trailing newline per line, UTF-8 text/plain.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fam...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, k int) bool { return fams[i].name < fams[k].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.hist != nil:
			writeHistogram(&b, f.name, f.hist)
		case f.collect != nil:
			type sample struct {
				labels string
				v      float64
			}
			var samples []sample
			f.collect(func(values []string, v float64) {
				samples = append(samples, sample{labelString(f.labels, values), v})
			})
			sort.Slice(samples, func(i, k int) bool { return samples[i].labels < samples[k].labels })
			for _, s := range samples {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.v))
			}
		default:
			f.mu.Lock()
			keys := make([]string, 0, len(f.metrics))
			for k := range f.metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				var values []string
				if k != "" || len(f.labels) > 0 {
					values = strings.Split(k, labelSep)
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, values), formatValue(f.metrics[k].value()))
			}
			f.mu.Unlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatValue(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(b, "%s_count %d\n", name, h.count.Load())
}

// formatValue renders floats the way Prometheus expects: integers
// without a decimal point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// Go's %q escapes backslash, quote, and newline exactly as the
		// exposition format's label-value escaping defines.
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
