// Package setadd implements Elle's analysis for grow-only sets (§3 of the
// paper). Sets sit between counters and lists in inferential power:
// unique elements make versions recoverable — every observed element maps
// to the one transaction that added it — so write-read dependencies are
// exact, and a read that misses a committed element anti-depends on its
// writer. But sets are order-free, so write-write dependencies between
// two adds are unknowable (the paper's T1/T2 example), and no total
// version order exists.
//
// The paper's §3 example, reproduced by this analyzer:
//
//	T0: read(x, {0})
//	T1: add(x, 1)
//	T2: add(x, 2)
//	T3: read(x, {0, 1, 2})
//
// yields T1 <wr T3, T2 <wr T3 (their elements were visible to T3) and
// T0 <rw T1, T0 <rw T2 (T0's read of {0} did not include 1 or 2).
package setadd

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/par"
	"repro/internal/workload"
)

// Analysis is the result of set dependency inference.
type Analysis struct {
	// Graph holds wr and rw transaction dependencies.
	Graph *graph.Graph
	// Anomalies are the non-cycle anomalies found during inference.
	Anomalies []anomaly.Anomaly
	// Ops indexes analyzed completion ops by index.
	Ops map[int]op.Op
}

type elemKey struct {
	key  history.KeyID
	elem int
}

// Analyze infers dependencies and anomalies for a set-add history.
// Set reads are carried in Mop.List; element order is ignored. Of the
// shared options only Parallelism applies.
//
// Inference is independent per committed transaction once the element
// indices are built, so the per-transaction checks and edge emission fan
// out across opts.Parallelism workers with ordered collection.
func Analyze(h *history.History, opts workload.Opts) *Analysis {
	a := &analyzer{
		opts:         opts,
		in:           h.Keys(),
		ops:          map[int]op.Op{},
		writer:       map[elemKey]int{},
		failedWriter: map[elemKey]int{},
		attempts:     map[elemKey]int{},
	}
	for _, o := range h.Completions() {
		a.ops[o.Index] = o
		if o.Type == op.OK {
			a.oks = append(a.oks, o)
		}
	}
	a.indexAdds()
	a.collect(par.Map(opts.Parallelism, len(a.oks), func(i int) []anomaly.Anomaly {
		return a.internalAnomalies(a.oks[i])
	}))
	g := a.buildGraph()
	return &Analysis{Graph: g, Anomalies: a.anomalies, Ops: a.ops}
}

type analyzer struct {
	opts         workload.Opts
	in           *history.Interner
	ops          map[int]op.Op
	oks          []op.Op
	writer       map[elemKey]int
	failedWriter map[elemKey]int
	attempts     map[elemKey]int
	anomalies    []anomaly.Anomaly
}

func (a *analyzer) collect(groups [][]anomaly.Anomaly) {
	a.anomalies = anomaly.AppendGroups(a.anomalies, groups)
}

// kid resolves an interned key (see history.Interner.MustID).
func (a *analyzer) kid(k string) history.KeyID { return a.in.MustID(k) }

func (a *analyzer) indexAdds() {
	var dups []elemKey
	for _, o := range a.ops {
		for _, m := range o.Mops {
			if m.F != op.FAdd {
				continue
			}
			ek := elemKey{a.kid(m.Key), m.Arg}
			a.attempts[ek]++
			if a.attempts[ek] > 1 {
				if a.attempts[ek] == 2 {
					dups = append(dups, ek)
				}
				continue
			}
			if o.Type == op.Fail {
				a.failedWriter[ek] = o.Index
			} else {
				a.writer[ek] = o.Index
			}
		}
	}
	sort.Slice(dups, func(i, j int) bool {
		if dups[i].key != dups[j].key {
			return a.in.Less(dups[i].key, dups[j].key)
		}
		return dups[i].elem < dups[j].elem
	})
	for _, ek := range dups {
		delete(a.writer, ek)
		delete(a.failedWriter, ek)
		kname := a.in.Key(ek.key)
		a.anomalies = append(a.anomalies, anomaly.Anomaly{
			Type: anomaly.DuplicateAppends,
			Key:  kname,
			Explanation: fmt.Sprintf(
				"element %d was added to set %s by %d transactions; adds must be unique for versions to be recoverable",
				ek.elem, kname, a.attempts[ek]),
		})
	}
}

// internalAnomalies verifies grow-only set semantics within one committed
// transaction: reads must include every element the transaction itself
// added, and repeated reads must never shrink.
func (a *analyzer) internalAnomalies(o op.Op) []anomaly.Anomaly {
	var out []anomaly.Anomaly
	have := map[history.KeyID]map[int]bool{} // lower bound per key
	ensure := func(k string) map[int]bool {
		id := a.kid(k)
		s, ok := have[id]
		if !ok {
			s = map[int]bool{}
			have[id] = s
		}
		return s
	}
	for _, m := range o.Mops {
		switch m.F {
		case op.FAdd:
			ensure(m.Key)[m.Arg] = true
		case op.FRead:
			if m.List == nil {
				continue
			}
			got := map[int]bool{}
			for _, e := range m.List {
				got[e] = true
			}
			// Report the smallest missing element so the rendered
			// explanation is deterministic.
			for _, e := range sortedElems(ensure(m.Key)) {
				if !got[e] {
					out = append(out, anomaly.Anomaly{
						Type: anomaly.Internal,
						Ops:  []op.Op{o},
						Key:  m.Key,
						Explanation: fmt.Sprintf(
							"%s read set %s without element %d, which its own prior operations guarantee: an internal inconsistency",
							o.Name(), m.Key, e),
					})
					break
				}
			}
			// Everything observed is now a lower bound.
			for e := range got {
				ensure(m.Key)[e] = true
			}
		}
	}
	return out
}

func (a *analyzer) buildGraph() *graph.Graph {
	g := graph.New()
	for _, o := range a.oks {
		g.Ensure(o.Index)
	}
	// Committed elements per key: any element added by a committed
	// transaction is eventually in the set (grow-only), so a committed
	// read that misses it anti-depends on its writer. The index is a
	// dense KeyID-indexed slice.
	committed := make([][]elemKey, a.in.Len())
	var vks []elemKey
	for ek, w := range a.writer {
		if a.ops[w].Type == op.OK {
			vks = append(vks, ek)
		}
	}
	sort.Slice(vks, func(i, j int) bool {
		if vks[i].key != vks[j].key {
			return a.in.Less(vks[i].key, vks[j].key)
		}
		return vks[i].elem < vks[j].elem
	})
	for _, ek := range vks {
		committed[ek.key] = append(committed[ek.key], ek)
	}

	// Each committed transaction's reads are checked and exploded into
	// edges independently; results merge in index order.
	type okResult struct {
		anoms []anomaly.Anomaly
		edges []graph.Edge
	}
	perOK := par.Map(a.opts.Parallelism, len(a.oks), func(i int) okResult {
		o := a.oks[i]
		var r okResult
		for _, m := range o.Mops {
			if m.F != op.FRead || m.List == nil {
				continue
			}
			k := a.kid(m.Key)
			got := map[int]bool{}
			for _, e := range m.List {
				got[e] = true
			}
			ownAdds := map[int]bool{}
			for _, mm := range o.Mops {
				if mm.F == op.FAdd && mm.Key == m.Key {
					ownAdds[mm.Arg] = true
				}
			}
			for _, e := range m.List {
				ek := elemKey{k, e}
				if w, ok := a.failedWriter[ek]; ok {
					r.anoms = append(r.anoms, anomaly.Anomaly{
						Type: anomaly.G1a,
						Ops:  []op.Op{o, a.ops[w]},
						Key:  m.Key,
						Explanation: fmt.Sprintf(
							"%s read set %s containing element %d added by aborted %s: an aborted read",
							o.Name(), m.Key, e, a.ops[w].Name()),
					})
					continue
				}
				w, ok := a.writer[ek]
				if !ok {
					if a.attempts[ek] == 0 {
						r.anoms = append(r.anoms, anomaly.Anomaly{
							Type: anomaly.GarbageRead,
							Ops:  []op.Op{o},
							Key:  m.Key,
							Explanation: fmt.Sprintf(
								"%s read set %s containing element %d, which no transaction ever added",
								o.Name(), m.Key, e),
						})
					}
					continue
				}
				r.edges = append(r.edges, graph.Edge{From: w, To: o.Index, Kind: graph.WR})
			}
			// Anti-dependencies: committed elements missing from the
			// read. Skip the transaction's own adds: a read before its
			// own add is not an anti-dependency on itself.
			for _, ek := range committed[k] {
				if !got[ek.elem] && !ownAdds[ek.elem] {
					r.edges = append(r.edges, graph.Edge{From: o.Index, To: a.writer[ek], Kind: graph.RW})
				}
			}
		}
		return r
	})
	for _, r := range perOK {
		a.anomalies = append(a.anomalies, r.anoms...)
		g.AddEdges(r.edges)
	}
	return g
}

func sortedElems(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}
