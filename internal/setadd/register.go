package setadd

import (
	"repro/internal/explain"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/workload"
)

func init() {
	workload.Register(workload.Info{
		Name:    workload.SetAdd,
		Aliases: []string{"set"},
		Gen:     gen.Set,
		DB:      memdb.WorkloadSet,
		Analyzer: workload.AnalyzerFunc(func(h *history.History, opts workload.Opts) workload.Analysis {
			an := Analyze(h, opts)
			return workload.Analysis{
				Graph:     an.Graph,
				Anomalies: an.Anomalies,
				Explainer: &explain.Explainer{Ops: an.Ops},
			}
		}),
	})
}
