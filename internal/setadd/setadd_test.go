package setadd

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

func analyze(t *testing.T, ops ...op.Op) *Analysis {
	t.Helper()
	return Analyze(history.MustNew(ops), workload.Opts{})
}

func hasAnomaly(a *Analysis, typ anomaly.Type) bool {
	for _, an := range a.Anomalies {
		if an.Type == typ {
			return true
		}
	}
	return false
}

// TestSection3Example reproduces the paper's §3 set example exactly:
// wr edges T1 -> T3 and T2 -> T3, rw edges T0 -> T1 and T0 -> T2, and no
// ww edge between T1 and T2 (sets are order-free).
func TestSection3Example(t *testing.T) {
	a := analyze(t,
		op.Txn(9, 9, op.OK, op.Add("x", 0)), // writer of element 0
		op.Txn(0, 0, op.OK, op.ReadList("x", []int{0})),
		op.Txn(1, 1, op.OK, op.Add("x", 1)),
		op.Txn(2, 2, op.OK, op.Add("x", 2)),
		op.Txn(3, 3, op.OK, op.ReadList("x", []int{0, 1, 2})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
	if !a.Graph.Label(1, 3).Has(graph.WR) || !a.Graph.Label(2, 3).Has(graph.WR) {
		t.Error("missing wr edges into T3")
	}
	if !a.Graph.Label(0, 1).Has(graph.RW) || !a.Graph.Label(0, 2).Has(graph.RW) {
		t.Error("missing rw edges from T0")
	}
	if a.Graph.Label(1, 2) != 0 && a.Graph.Label(2, 1) != 0 {
		t.Error("sets must not yield ww edges between concurrent adds")
	}
}

func TestSetOrderFreeReads(t *testing.T) {
	// Reads report elements in any order; the analyzer must not care.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Add("x", 1)),
		op.Txn(1, 1, op.OK, op.Add("x", 2)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{2, 1})),
	)
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies on permuted read: %v", a.Anomalies)
	}
}

func TestG1aSet(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.Fail, op.Add("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
	)
	if !hasAnomaly(a, anomaly.G1a) {
		t.Fatalf("expected G1a, got %v", a.Anomalies)
	}
}

func TestGarbageSetRead(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.ReadList("x", []int{5})),
	)
	if !hasAnomaly(a, anomaly.GarbageRead) {
		t.Fatalf("expected garbage read, got %v", a.Anomalies)
	}
}

func TestDuplicateAdds(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Add("x", 1)),
		op.Txn(1, 1, op.OK, op.Add("x", 1)),
	)
	if !hasAnomaly(a, anomaly.DuplicateAppends) {
		t.Fatalf("expected duplicate adds, got %v", a.Anomalies)
	}
}

func TestInternalSetConsistency(t *testing.T) {
	// A transaction's read must include its own prior add.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Add("x", 1), op.ReadList("x", []int{})),
	)
	if !hasAnomaly(a, anomaly.Internal) {
		t.Fatalf("expected internal anomaly, got %v", a.Anomalies)
	}
	// Shrinking repeated reads are internal anomalies too.
	b := analyze(t,
		op.Txn(0, 0, op.OK, op.Add("x", 1)),
		op.Txn(1, 1, op.OK,
			op.ReadList("x", []int{1}), op.ReadList("x", []int{})),
	)
	if !hasAnomaly(b, anomaly.Internal) {
		t.Fatalf("expected internal anomaly for shrinking read, got %v", b.Anomalies)
	}
}

func TestOwnAddNotAntiDependency(t *testing.T) {
	// A read before the transaction's own add must not self-anti-depend.
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.ReadList("x", []int{}), op.Add("x", 1)),
	)
	if a.Graph.Label(0, 0) != 0 {
		t.Error("self rw edge emitted")
	}
	if len(a.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", a.Anomalies)
	}
}

// TestLongForkOverSets: the §1 long-fork shape is visible to the set
// analyzer as a G2 cycle (two reads each missing the other's element).
func TestLongForkOverSets(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Add("x", 1)),
		op.Txn(1, 1, op.OK, op.Add("y", 1)),
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1}), op.ReadList("y", []int{})),
		op.Txn(3, 3, op.OK, op.ReadList("y", []int{1}), op.ReadList("x", []int{})),
	)
	cycles := a.Graph.FindCyclesWithAtLeastOne(graph.RW, graph.KSDep)
	if len(cycles) != 1 {
		t.Fatalf("expected a G2 cycle, found %d", len(cycles))
	}
}

func TestFailedReadersIgnored(t *testing.T) {
	a := analyze(t,
		op.Txn(0, 0, op.OK, op.Add("x", 1)),
		op.Txn(1, 1, op.Fail, op.ReadList("x", []int{1})),
	)
	if a.Graph.Label(0, 1) != 0 {
		t.Error("aborted reader should have no edges")
	}
}
