package rel

import (
	"sort"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

// Source is everything one analysis exposes to the relational layer:
// the history, the final dependency graph, the classified anomalies,
// and the inferred version orders in the analyzers' compact
// KeyID-indexed form (the same shape explain.Explainer carries — rel
// takes the fields rather than the struct so explain can itself build
// on rel).
type Source struct {
	History *history.History
	Graph   *graph.Graph
	// Anomalies in report order; their positions are the ids the cycle
	// and anomaly relations expose.
	Anomalies []anomaly.Anomaly
	// Keys interns key names; may be nil when no version orders exist.
	Keys *history.Interner
	// ListOrders holds inferred list element orders, indexed by KeyID.
	ListOrders [][]int
	// RegOrders holds direct register version-order edges, indexed by
	// KeyID, as "u" -> "v" value strings with "nil" for the initial
	// version.
	RegOrders [][][2]string
}

// Relations is the minimal catalog surface the query engine evaluates
// against; tests and fuzz targets substitute map-backed fakes.
type Relations interface {
	// Relation returns the named relation, or false if unknown.
	Relation(name string) (Relation, bool)
	// Names lists the available relation names, sorted.
	Names() []string
}

// Catalog derives the standard relations lazily from one analysis.
// Building a Catalog does no work; each Relation call returns a
// streaming view over the source, evaluated only when iterated. The
// relations and their schemas are documented in docs/QUERY.md:
//
//	txn(id, process, index, ok)
//	mop(txn, key, fun, value)
//	dep(from, to, kind)
//	version_order(key, pos, value)
//	cycle(id, pos, txn, kind)
//	anomaly(id, code, severity, key, txn)
type Catalog struct {
	src Source
}

// NewCatalog returns a catalog over src.
func NewCatalog(src Source) *Catalog { return &Catalog{src: src} }

// catalogNames lists the standard relations, sorted.
var catalogNames = []string{"anomaly", "cycle", "dep", "mop", "txn", "version_order"}

// Names implements Relations.
func (c *Catalog) Names() []string { return append([]string(nil), catalogNames...) }

// Relation implements Relations.
func (c *Catalog) Relation(name string) (Relation, bool) {
	switch name {
	case "txn":
		return c.Txns(), true
	case "mop":
		return c.Mops(), true
	case "dep":
		return c.Deps(), true
	case "version_order":
		return c.VersionOrder(), true
	case "cycle":
		return c.Cycles(), true
	case "anomaly":
		return c.Anomalies(), true
	}
	return Relation{}, false
}

// AnomalyAt returns the anomaly a cycle/anomaly relation id refers to,
// for provenance rendering.
func (c *Catalog) AnomalyAt(id int) (anomaly.Anomaly, bool) {
	if id < 0 || id >= len(c.src.Anomalies) {
		return anomaly.Anomaly{}, false
	}
	return c.src.Anomalies[id], true
}

// Txns is txn(id, process, index, ok): one row per completion op —
// its history index (the transaction's identity everywhere else), the
// client process, its position in the completion sequence, and its
// completion type ("ok", "fail", "info").
func (c *Catalog) Txns() Relation {
	h := c.src.History
	return NewRelation([]string{"id", "process", "index", "ok"}, func(yield func(Tuple) bool) {
		if h == nil {
			return
		}
		t := make(Tuple, 4)
		for i, o := range h.Completions() {
			t[0], t[1], t[2], t[3] = Int(o.Index), Int(o.Process), Int(i), Str(o.Type.String())
			if !yield(t) {
				return
			}
		}
	})
}

// Mops is mop(txn, key, fun, value): one row per micro-op of every
// completion, in history and program order. The value column is typed:
// writes carry their integer argument, list reads their observed list
// rendered as "[1 2 3]", register reads the observed integer or the
// strings "nil" (observed initial version) and "?" (result unknown).
func (c *Catalog) Mops() Relation {
	h := c.src.History
	return NewRelation([]string{"txn", "key", "fun", "value"}, func(yield func(Tuple) bool) {
		if h == nil {
			return
		}
		t := make(Tuple, 4)
		for _, o := range h.Completions() {
			for _, m := range o.Mops {
				t[0], t[1], t[2], t[3] = Int(o.Index), Str(m.Key), Str(m.F.String()), mopValue(m)
				if !yield(t) {
					return
				}
			}
		}
	})
}

// mopValue renders a micro-op's result/argument as a typed value.
func mopValue(m op.Mop) Value {
	switch {
	case m.F != op.FRead:
		return Int(m.Arg)
	case m.List != nil:
		return Str(op.FormatList(m.List))
	case m.RegKnown && m.RegNil:
		return Str("nil")
	case m.RegKnown:
		return Int(m.Reg)
	default:
		return Str("?")
	}
}

// allKinds is the full edge-label mask.
var allKinds = graph.KSDep | graph.KSOrders | graph.Version.Mask() | graph.Timestamp.Mask()

// Deps is dep(from, to, kind): the dependency graph's edges, one row
// per (edge, kind) with kind as its short label ("ww", "wr", "rw",
// "process", "rt", "version", "ts"). Rows stream in node insertion
// order, per-node targets ascending, kinds in declaration order.
func (c *Catalog) Deps() Relation {
	g := c.src.Graph
	return NewRelation([]string{"from", "to", "kind"}, func(yield func(Tuple) bool) {
		if g == nil {
			return
		}
		t := make(Tuple, 3)
		stop := false
		for _, a := range g.Nodes() {
			if stop {
				return
			}
			g.OutSorted(a, allKinds, func(b int, label graph.KindSet) {
				if stop {
					return
				}
				for _, k := range label.Kinds() {
					t[0], t[1], t[2] = Int(a), Int(b), Str(k.String())
					if !yield(t) {
						stop = true
						return
					}
				}
			})
		}
	})
}

// VersionOrder is version_order(key, pos, value): the inferred version
// order of every key, keys sorted by name. For list keys, value is the
// element at position pos of the inferred total order. For register
// keys, each direct version-order edge is one row with value rendered
// "prev->next" ("nil" standing for the initial version) and pos its
// edge index.
func (c *Catalog) VersionOrder() Relation {
	src := c.src
	return NewRelation([]string{"key", "pos", "value"}, func(yield func(Tuple) bool) {
		if src.Keys == nil {
			return
		}
		t := make(Tuple, 3)
		for _, id := range src.Keys.SortedIDs() {
			name := Str(src.Keys.Key(id))
			if int(id) < len(src.ListOrders) {
				for pos, elem := range src.ListOrders[id] {
					t[0], t[1], t[2] = name, Int(pos), Int(elem)
					if !yield(t) {
						return
					}
				}
			}
			if int(id) < len(src.RegOrders) {
				for pos, edge := range src.RegOrders[id] {
					t[0], t[1], t[2] = name, Int(pos), Str(edge[0]+"->"+edge[1])
					if !yield(t) {
						return
					}
				}
			}
		}
	})
}

// Cycles is cycle(id, pos, txn, kind): the steps of every cycle
// witness. id is the anomaly's position in the report (joinable with
// anomaly.id), pos the step index, txn the step's source transaction,
// and kind the dependency kind the search traversed ("ww", "rw", ...).
func (c *Catalog) Cycles() Relation {
	anoms := c.src.Anomalies
	return NewRelation([]string{"id", "pos", "txn", "kind"}, func(yield func(Tuple) bool) {
		t := make(Tuple, 4)
		for i, a := range anoms {
			for pos, s := range a.Cycle.Steps {
				t[0], t[1], t[2], t[3] = Int(i), Int(pos), Int(s.From), Str(s.Via.String())
				if !yield(t) {
					return
				}
			}
		}
	})
}

// Anomalies is anomaly(id, code, severity, key, txn): one row per
// (anomaly, involved transaction). id is the anomaly's report
// position, code its type ("G-single", "lost-update", ...), severity
// its numeric severity bucket, key the object involved ("" when not
// key-local), and txn each transaction the witness names — the cycle's
// nodes for cycle anomalies, the Ops list otherwise, or a single row
// with txn = -1 when the witness names none.
func (c *Catalog) Anomalies() Relation {
	anoms := c.src.Anomalies
	return NewRelation([]string{"id", "code", "severity", "key", "txn"}, func(yield func(Tuple) bool) {
		t := make(Tuple, 5)
		for i, a := range anoms {
			t[0], t[1], t[2], t[3] = Int(i), Str(string(a.Type)), Int(int(a.Type.Severity())), Str(a.Key)
			switch {
			case len(a.Cycle.Steps) > 0:
				for _, s := range a.Cycle.Steps {
					t[4] = Int(s.From)
					if !yield(t) {
						return
					}
				}
			case len(a.Ops) > 0:
				for _, o := range a.Ops {
					t[4] = Int(o.Index)
					if !yield(t) {
						return
					}
				}
			default:
				t[4] = Int(-1)
				if !yield(t) {
					return
				}
			}
		}
	})
}

// MapCatalog is a Relations over an explicit name → Relation map, used
// by tests and available to callers composing ad-hoc relation sets.
type MapCatalog map[string]Relation

// Relation implements Relations.
func (m MapCatalog) Relation(name string) (Relation, bool) {
	r, ok := m[name]
	return r, ok
}

// Names implements Relations.
func (m MapCatalog) Names() []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
