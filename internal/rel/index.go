package rel

import (
	"sort"
	"strconv"
)

// appendKey encodes v into buf in a self-delimiting form usable as a
// map key: a type tag byte ('i' or 's'), the payload (decimal or
// quoted), and a \x01 field separator. Quoting makes the string form
// injective, so distinct tuples never collide.
func appendKey(buf []byte, v Value) []byte {
	if v.isStr {
		buf = append(buf, 's')
		buf = strconv.AppendQuote(buf, v.s)
	} else {
		buf = append(buf, 'i')
		buf = strconv.AppendInt(buf, v.n, 10)
	}
	return append(buf, 1)
}

// Index is a materialized hash index over a relation on a set of key
// columns. It is immutable once built, so the classifier refactors can
// build one in a single pass over the history and probe it from
// parallel per-key workers without locks. Per-key buckets preserve
// build order — the property that keeps lookup joins deterministic.
type Index struct {
	cols    []string // full schema of the indexed relation
	keyCols []string // the key columns, in index order
	keyIdx  []int    // positions of keyCols within cols
	buckets map[string][]Tuple
}

// BuildIndex materializes r into an index keyed on keyCols. Key
// columns missing from r's schema yield an empty index.
func BuildIndex(r Relation, keyCols ...string) *Index {
	idx := &Index{
		cols:    r.Cols(),
		keyCols: keyCols,
		keyIdx:  make([]int, len(keyCols)),
		buckets: map[string][]Tuple{},
	}
	for i, c := range keyCols {
		idx.keyIdx[i] = r.col(c)
		if idx.keyIdx[i] < 0 {
			return idx
		}
	}
	// Tuple copies and single-tuple buckets come from chunked slabs:
	// an index over n tuples costs O(n/chunk) allocations instead of
	// O(n), which keeps materialization cheap on the classifier hot
	// paths. Purely an allocation strategy — bucket contents and
	// build order are exactly those of per-tuple cloning.
	var key []byte
	var vslab []Value
	var bslab []Tuple
	r.Each(func(t Tuple) bool {
		key = key[:0]
		for _, j := range idx.keyIdx {
			key = appendKey(key, t[j])
		}
		if len(vslab) < len(t) {
			vslab = make([]Value, max(1024, len(t)))
		}
		n := copy(vslab, t)
		cp := Tuple(vslab[:n:n])
		vslab = vslab[n:]
		if b, ok := idx.buckets[string(key)]; ok {
			idx.buckets[string(key)] = append(b, cp)
		} else {
			if len(bslab) == 0 {
				bslab = make([]Tuple, 256)
			}
			b = bslab[0:0:1]
			bslab = bslab[1:]
			idx.buckets[string(key)] = append(b, cp)
		}
		return true
	})
	return idx
}

// Len returns the number of distinct keys in the index.
func (ix *Index) Len() int { return len(ix.buckets) }

// probe encodes vals into buf and returns the matching bucket. The
// map lookup via string(buf) does not allocate.
func (ix *Index) probe(buf []byte, vals ...Value) ([]Tuple, []byte) {
	buf = buf[:0]
	for _, v := range vals {
		buf = appendKey(buf, v)
	}
	return ix.buckets[string(buf)], buf
}

// Lookup returns the tuples whose key columns equal vals, in build
// order. The returned slice is shared — do not mutate.
func (ix *Index) Lookup(vals ...Value) []Tuple {
	b, _ := ix.probe(nil, vals...)
	return b
}

// Contains reports whether any tuple matches vals.
func (ix *Index) Contains(vals ...Value) bool {
	return len(ix.Lookup(vals...)) > 0
}

// LookupJoin joins r against a prebuilt index: for each tuple of r in
// order, the index is probed on r's columns matching ix's key columns
// and each match (in build order) is emitted as r's tuple extended
// with the indexed tuple's non-key columns. This is the ⋈
// implementation — Join is BuildIndex + LookupJoin — split out so the
// classifiers can reuse one index across many probe relations.
func (r Relation) LookupJoin(ix *Index) Relation {
	probeIdx := make([]int, len(ix.keyCols))
	for i, c := range ix.keyCols {
		probeIdx[i] = r.col(c)
		if probeIdx[i] < 0 {
			// No shared key: cross product with the indexed relation.
			return r.crossIndex(ix)
		}
	}
	// Positions of the indexed relation's non-key columns to append.
	var extraIdx []int
	var extraCols []string
	for j, c := range ix.cols {
		if !containsStr(ix.keyCols, c) {
			extraIdx = append(extraIdx, j)
			extraCols = append(extraCols, c)
		}
	}
	cols := append(append([]string(nil), r.cols...), extraCols...)
	return Relation{cols: cols, seq: func(yield func(Tuple) bool) {
		var key []byte
		out := make(Tuple, 0, len(cols))
		r.Each(func(t Tuple) bool {
			key = key[:0]
			for _, j := range probeIdx {
				key = appendKey(key, t[j])
			}
			for _, m := range ix.buckets[string(key)] {
				out = out[:0]
				out = append(out, t...)
				for _, j := range extraIdx {
					out = append(out, m[j])
				}
				if !yield(out) {
					return false
				}
			}
			return true
		})
	}}
}

// crossIndex is the no-shared-key degenerate case of LookupJoin.
func (r Relation) crossIndex(ix *Index) Relation {
	var rows []Tuple
	for _, key := range sortedKeys(ix.buckets) {
		rows = append(rows, ix.buckets[key]...)
	}
	cols := append(append([]string(nil), r.cols...), ix.cols...)
	return Relation{cols: cols, seq: func(yield func(Tuple) bool) {
		out := make(Tuple, 0, len(cols))
		r.Each(func(t Tuple) bool {
			for _, m := range rows {
				out = out[:0]
				out = append(out, t...)
				out = append(out, m...)
				if !yield(out) {
					return false
				}
			}
			return true
		})
	}}
}

// AntiJoin keeps the tuples of r with no match in the index (the ▷
// operator), in r's order.
func (r Relation) AntiJoin(ix *Index) Relation {
	probeIdx := make([]int, len(ix.keyCols))
	for i, c := range ix.keyCols {
		probeIdx[i] = r.col(c)
		if probeIdx[i] < 0 {
			return r
		}
	}
	return Relation{cols: r.cols, seq: func(yield func(Tuple) bool) {
		var key []byte
		r.Each(func(t Tuple) bool {
			key = key[:0]
			for _, j := range probeIdx {
				key = appendKey(key, t[j])
			}
			if len(ix.buckets[string(key)]) > 0 {
				return true
			}
			return yield(t)
		})
	}}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string][]Tuple) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
