package rel

import (
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

// queryCatalog builds a catalog with a G1a anomaly and a fake cycle
// anomaly so every relation is populated.
func queryCatalog(t *testing.T) *Catalog {
	t.Helper()
	h := testHistory(t)
	g := graph.New()
	g.AddEdge(0, 2, graph.WR)
	g.AddEdge(2, 0, graph.RW)
	keys := history.NewInterner()
	keys.Intern("x")
	cyc := graph.Cycle{Steps: []graph.Step{
		{From: 0, To: 2, Label: graph.WR.Mask(), Via: graph.WR},
		{From: 2, To: 0, Label: graph.RW.Mask(), Via: graph.RW},
	}}
	return NewCatalog(Source{
		History: h,
		Graph:   g,
		Keys:    keys,
		Anomalies: []anomaly.Anomaly{
			{Type: anomaly.G1a, Key: "x", Ops: []op.Op{
				op.Txn(2, 0, op.OK), op.Txn(1, 1, op.Fail),
			}},
			{Type: anomaly.GSingle, Cycle: cyc},
		},
		ListOrders: [][]int{{1, 2}},
	})
}

func evalString(t *testing.T, cat Relations, q string) string {
	t.Helper()
	res, err := Eval(cat, q)
	if err != nil {
		t.Fatalf("Eval(%q): %v", q, err)
	}
	var b strings.Builder
	if _, err := res.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestEvalSingleClause(t *testing.T) {
	cat := queryCatalog(t)
	got := evalString(t, cat, `(txn ?id ?p _ ok)`)
	want := "?id\t?p\n0\t0\n2\t0\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	// Quoted and bareword string constants are the same.
	if evalString(t, cat, `(txn ?id ?p _ "ok")`) != want {
		t.Fatal("quoted constant differs from bareword")
	}
}

func TestEvalJoin(t *testing.T) {
	cat := queryCatalog(t)
	// Transactions on a G-single cycle and the kind of their outgoing step.
	got := evalString(t, cat, `(anomaly ?a G-single _ _ ?t) (cycle ?a _ ?t ?k)`)
	want := "?a\t?t\t?k\n1\t0\twr\n1\t2\trw\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	// Same rows whatever the clause order (canonical Sort).
	if got2 := evalString(t, cat, `(cycle ?a _ ?t ?k) (anomaly ?a G-single _ _ ?t)`); got2 != want {
		t.Fatalf("clause order changed output: %q vs %q", got2, want)
	}
}

func TestEvalRepeatedVarAndWildcard(t *testing.T) {
	cat := queryCatalog(t)
	// Self-loop pattern: no dep edge has from == to.
	if got := evalString(t, cat, `(dep ?a ?a _)`); got != "?a\n" {
		t.Fatalf("repeated var: %q", got)
	}
}

func TestEvalBoolean(t *testing.T) {
	cat := queryCatalog(t)
	if got := evalString(t, cat, `(dep 0 2 wr)`); got != "true\n" {
		t.Fatalf("exists: %q", got)
	}
	if got := evalString(t, cat, `(dep 0 2 ww)`); got != "false\n" {
		t.Fatalf("not exists: %q", got)
	}
	// A failed existence clause empties the whole query.
	if got := evalString(t, cat, `(dep 0 2 ww) (txn ?id _ _ _)`); got != "?id\n" {
		t.Fatalf("existence filter: %q", got)
	}
}

func TestEvalTypedValues(t *testing.T) {
	cat := queryCatalog(t)
	// Keys are strings: a bareword integer never matches a key column.
	if got := evalString(t, cat, `(mop ?t x append ?v)`); got != "?t\t?v\n0\t1\n1\t2\n" {
		t.Fatalf("mop by key: %q", got)
	}
	if got := evalString(t, cat, `(version_order x ?pos ?e)`); got != "?pos\t?e\n0\t1\n1\t2\n" {
		t.Fatalf("version_order: %q", got)
	}
}

func TestEvalAnomalyVars(t *testing.T) {
	cat := queryCatalog(t)
	res, err := Eval(cat, `(cycle ?c _ ?t _) (txn ?t 0 _ _)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AnomalyVars) != 1 || res.AnomalyVars[0] != "?c" {
		t.Fatalf("AnomalyVars = %v", res.AnomalyVars)
	}
	if ids := res.AnomalyIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("AnomalyIDs = %v", ids)
	}
	if a, ok := cat.AnomalyAt(1); !ok || a.Type != anomaly.GSingle {
		t.Fatalf("AnomalyAt(1) = %v, %v", a, ok)
	}
}

func TestParseErrors(t *testing.T) {
	cat := queryCatalog(t)
	cases := []struct {
		q    string
		want string // substring of the error
	}{
		{"", "empty query"},
		{"   ", "empty query"},
		{"dep ?a", "expected '('"},
		{"(dep ?a ?b ww", "unterminated clause"},
		{"(", "unterminated clause"},
		{"()", "empty clause"},
		{"(?a ?b)", "expected a relation name"},
		{"(_ x)", "expected a relation name"},
		{"(dep (dep))", "nested '('"},
		{`(dep ?a ?b "ww)`, "unterminated string"},
		{`(dep ?a ?b "w\x")`, `bad escape`},
		{"(dep ? ?b ww)", "empty variable name"},
		{"(dep 99999999999999999999 ?b ww)", "bad integer"},
		{"(nope ?a)", "unknown relation"},
		{"(dep ?a ?b)", "3 columns"},
		{"(dep ?a ?b ww extra)", "3 columns"},
	}
	for _, tc := range cases {
		_, err := Eval(cat, tc.q)
		if err == nil {
			t.Errorf("Eval(%q): no error, want %q", tc.q, tc.want)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("Eval(%q): error %T, want *ParseError", tc.q, err)
			continue
		}
		if pe.Pos < 1 || pe.Pos > len(tc.q)+1 {
			t.Errorf("Eval(%q): position %d out of range", tc.q, pe.Pos)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Eval(%q) = %q, want substring %q", tc.q, err.Error(), tc.want)
		}
		if !strings.HasPrefix(err.Error(), "query:") {
			t.Errorf("Eval(%q) = %q, want query:<pos>: prefix", tc.q, err.Error())
		}
	}
}

func TestEvalDeterministic(t *testing.T) {
	cat := queryCatalog(t)
	q := `(dep ?a ?b ?k) (txn ?a ?p _ _) (mop ?b x _ _)`
	first := evalString(t, cat, q)
	for i := 0; i < 10; i++ {
		if got := evalString(t, cat, q); got != first {
			t.Fatalf("run %d differs:\n%q\n%q", i, got, first)
		}
	}
}

func TestMapCatalog(t *testing.T) {
	cat := MapCatalog{
		"edge": FromRows([]string{"a", "b"}, []Tuple{
			{Int(1), Int(2)}, {Int(2), Int(3)},
		}),
	}
	if got := evalString(t, cat, `(edge ?x ?y) (edge ?y ?z)`); got != "?x\t?y\t?z\n1\t2\t3\n" {
		t.Fatalf("transitive join: %q", got)
	}
	if got := cat.Names(); len(got) != 1 || got[0] != "edge" {
		t.Fatalf("Names: %v", got)
	}
}
