package rel

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The pattern query language (docs/QUERY.md): a query is one or more
// clauses, each a parenthesized relation name followed by one term per
// column —
//
//	(dep ?a ?b ww) (cycle ?c _ ?a _)
//
// Terms are variables (?a), wildcards (_), integers (42), quoted
// strings ("key 1"), or bareword strings (ww). Constants compile to σ,
// a variable shared between clauses compiles to ⋈ on that variable,
// and a variable repeated inside one clause to an equality σ. Output
// is one column per variable in first-appearance order, deduplicated
// and sorted canonically — the same rows for every join order, which
// is what lets the three query surfaces promise byte-identical output.

// ParseError is a query rejection with a 1-based byte position into
// the query string. Every invalid query — lexical, syntactic, unknown
// relation, arity mismatch — produces one; no input panics (pinned by
// FuzzQueryParse).
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("query:%d: %s", e.Pos, e.Msg) }

func errAt(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos + 1, Msg: fmt.Sprintf(format, args...)}
}

// term kinds.
const (
	termVar = iota
	termWild
	termConst
)

type term struct {
	kind int
	name string // variable name, including the '?'
	val  Value  // constant value
	pos  int    // byte offset in the query
}

type clause struct {
	name  string
	terms []term
	pos   int // byte offset of the relation name
}

// Query is a parsed pattern query.
type Query struct {
	clauses []clause
	// vars in first-appearance order, names including the '?'.
	vars []string
}

// Vars returns the output variables in first-appearance order.
func (q *Query) Vars() []string { return append([]string(nil), q.vars...) }

// Parse parses a pattern query. It does not consult a catalog: unknown
// relations and arity mismatches surface at Eval, with the same
// ParseError type and clause positions.
func Parse(input string) (*Query, error) {
	p := &parser{in: input}
	q := &Query{}
	p.skipSpace()
	for p.i < len(p.in) {
		cl, err := p.clause()
		if err != nil {
			return nil, err
		}
		q.clauses = append(q.clauses, cl)
		p.skipSpace()
	}
	if len(q.clauses) == 0 {
		return nil, errAt(0, "empty query: expected at least one (relation ...) clause")
	}
	seen := map[string]bool{}
	for _, cl := range q.clauses {
		for _, t := range cl.terms {
			if t.kind == termVar && !seen[t.name] {
				seen[t.name] = true
				q.vars = append(q.vars, t.name)
			}
		}
	}
	return q, nil
}

type parser struct {
	in string
	i  int
}

func (p *parser) skipSpace() {
	for p.i < len(p.in) {
		switch p.in[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// isBare reports whether c can appear in a bareword or variable name.
func isBare(c byte) bool {
	switch c {
	case '(', ')', '"', ' ', '\t', '\n', '\r':
		return false
	}
	return c > 0x20 && c < 0x7f
}

func (p *parser) bareword() (string, error) {
	start := p.i
	for p.i < len(p.in) && isBare(p.in[p.i]) {
		p.i++
	}
	if p.i == start {
		return "", errAt(start, "unexpected character %q", p.in[start])
	}
	return p.in[start:p.i], nil
}

func (p *parser) clause() (clause, error) {
	if p.in[p.i] != '(' {
		return clause{}, errAt(p.i, "expected '(' to open a clause, got %q", p.in[p.i])
	}
	p.i++
	p.skipSpace()
	if p.i >= len(p.in) {
		return clause{}, errAt(len(p.in), "unterminated clause: expected a relation name")
	}
	if p.in[p.i] == ')' {
		return clause{}, errAt(p.i, "empty clause: expected a relation name")
	}
	namePos := p.i
	name, err := p.bareword()
	if err != nil {
		return clause{}, err
	}
	if strings.HasPrefix(name, "?") || name == "_" {
		return clause{}, errAt(namePos, "expected a relation name, got %q", name)
	}
	cl := clause{name: name, pos: namePos}
	for {
		p.skipSpace()
		if p.i >= len(p.in) {
			return clause{}, errAt(len(p.in), "unterminated clause: expected ')'")
		}
		if p.in[p.i] == ')' {
			p.i++
			return cl, nil
		}
		t, err := p.term()
		if err != nil {
			return clause{}, err
		}
		cl.terms = append(cl.terms, t)
	}
}

func (p *parser) term() (term, error) {
	pos := p.i
	c := p.in[p.i]
	switch {
	case c == '"':
		s, err := p.quoted()
		if err != nil {
			return term{}, err
		}
		return term{kind: termConst, val: Str(s), pos: pos}, nil
	case c == '?':
		w, err := p.bareword()
		if err != nil {
			return term{}, err
		}
		if w == "?" {
			return term{}, errAt(pos, "empty variable name: expected ?name")
		}
		return term{kind: termVar, name: w, pos: pos}, nil
	case c == '(':
		return term{}, errAt(pos, "nested '(': clauses do not nest")
	default:
		w, err := p.bareword()
		if err != nil {
			return term{}, err
		}
		if w == "_" {
			return term{kind: termWild, pos: pos}, nil
		}
		if c == '-' || (c >= '0' && c <= '9') {
			n, err := strconv.ParseInt(w, 10, 64)
			if err != nil {
				return term{}, errAt(pos, "bad integer %q", w)
			}
			return term{kind: termConst, val: Int64(n), pos: pos}, nil
		}
		return term{kind: termConst, val: Str(w), pos: pos}, nil
	}
}

// quoted consumes a double-quoted string with \" and \\ escapes.
func (p *parser) quoted() (string, error) {
	start := p.i
	p.i++ // opening quote
	var b strings.Builder
	for p.i < len(p.in) {
		c := p.in[p.i]
		switch c {
		case '"':
			p.i++
			return b.String(), nil
		case '\\':
			if p.i+1 >= len(p.in) {
				return "", errAt(start, "unterminated string")
			}
			p.i++
			switch p.in[p.i] {
			case '"', '\\':
				b.WriteByte(p.in[p.i])
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", errAt(p.i-1, `bad escape \%c`, p.in[p.i])
			}
			p.i++
		default:
			b.WriteByte(c)
			p.i++
		}
	}
	return "", errAt(start, "unterminated string")
}

// Result is an evaluated query: the output variables and their rows in
// canonical (sorted, distinct) order, or a bare truth value for
// variable-free queries.
type Result struct {
	// Vars are the output column headers, including the '?'.
	Vars []string
	// Rows are the result tuples, sorted and deduplicated.
	Rows []Tuple
	// Exists is the query's truth value when Vars is empty (did every
	// clause match at least one tuple); true whenever Rows is non-empty.
	Exists bool
	// AnomalyVars are the output variables bound to an anomaly id (a
	// cycle.id or anomaly.id column) — the handles provenance rendering
	// resolves back to full witnesses via Catalog.AnomalyAt.
	AnomalyVars []string
}

// WriteTo renders the result: a tab-separated header of variable names
// and one tab-separated row per tuple, or "true\n"/"false\n" for a
// variable-free query. The bytes are identical for the same query and
// analysis wherever it is evaluated.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if len(r.Vars) == 0 {
		if r.Exists {
			b.WriteString("true\n")
		} else {
			b.WriteString("false\n")
		}
	} else {
		b.WriteString(strings.Join(r.Vars, "\t"))
		b.WriteByte('\n')
		for _, t := range r.Rows {
			for i, v := range t {
				if i > 0 {
					b.WriteByte('\t')
				}
				b.WriteString(v.String())
			}
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// AnomalyIDs returns the distinct anomaly ids bound to AnomalyVars
// across the result rows, ascending.
func (r *Result) AnomalyIDs() []int {
	cols := map[int]bool{}
	for i, v := range r.Vars {
		for _, av := range r.AnomalyVars {
			if v == av {
				cols[i] = true
			}
		}
	}
	seen := map[int]bool{}
	var out []int
	for _, t := range r.Rows {
		for i := range cols {
			v := t[i]
			if !v.IsStr() && !seen[int(v.Num())] {
				seen[int(v.Num())] = true
				out = append(out, int(v.Num()))
			}
		}
	}
	sort.Ints(out)
	return out
}

// Eval parses and evaluates a pattern query against a catalog. All
// errors are *ParseError with a position into the query string.
func Eval(cat Relations, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Eval(cat)
}

// planClause is one clause compiled against the catalog: its relation
// with constants selected and columns projected/renamed to variable
// names, plus planning metadata.
type planClause struct {
	rel    Relation
	vars   map[string]bool
	nconst int
	pos    int // textual order
}

// Eval evaluates the parsed query against cat.
func (q *Query) Eval(cat Relations) (*Result, error) {
	res := &Result{Vars: q.vars}
	var plans []planClause
	anomalyVars := map[string]bool{}
	for i, cl := range q.clauses {
		r, ok := cat.Relation(cl.name)
		if !ok {
			return nil, errAt(cl.pos, "unknown relation %q (have: %s)",
				cl.name, strings.Join(cat.Names(), ", "))
		}
		cols := r.Cols()
		if len(cl.terms) != len(cols) {
			return nil, errAt(cl.pos, "%s has %d columns (%s), clause has %d terms",
				cl.name, len(cols), strings.Join(cols, ", "), len(cl.terms))
		}
		pc := planClause{vars: map[string]bool{}, pos: i}
		// σ for constants; equality σ for a variable repeated in-clause.
		varAt := map[string]int{}
		var eqPairs [][2]int
		for j, t := range cl.terms {
			switch t.kind {
			case termConst:
				pc.nconst++
			case termVar:
				if k, dup := varAt[t.name]; dup {
					eqPairs = append(eqPairs, [2]int{k, j})
				} else {
					varAt[t.name] = j
					pc.vars[t.name] = true
				}
				if (cl.name == "cycle" || cl.name == "anomaly") && cols[j] == "id" {
					anomalyVars[t.name] = true
				}
			}
		}
		terms := cl.terms
		r = r.Select(func(t Tuple) bool {
			for j, tm := range terms {
				if tm.kind == termConst && !t[j].Equal(tm.val) {
					return false
				}
			}
			for _, pr := range eqPairs {
				if !t[pr[0]].Equal(t[pr[1]]) {
					return false
				}
			}
			return true
		})
		// π to this clause's variables, renamed to the variable names.
		pc.rel = projectVars(r, cl, varAt)
		plans = append(plans, pc)
	}

	// Variable-free clauses are existence filters: if any matches
	// nothing the whole query is empty; matching ones drop out of the
	// join entirely.
	joined := plans[:0]
	exists := true
	for _, pc := range plans {
		if len(pc.vars) > 0 {
			joined = append(joined, pc)
			continue
		}
		hit := false
		pc.rel.Each(func(Tuple) bool { hit = true; return false })
		if !hit {
			exists = false
		}
	}
	if !exists || len(joined) == 0 {
		res.Exists = exists
		res.AnomalyVars = sortedVarNames(anomalyVars)
		return res, nil
	}

	// Greedy join order: start with the most-constrained clause, then
	// repeatedly take the clause sharing the most bound variables
	// (most constants, then textual order, as tie-breaks). Cartesian
	// steps are allowed when no clause connects. The final Sort makes
	// the output independent of this order.
	order := planOrder(joined)
	out := joined[order[0]].rel
	for _, i := range order[1:] {
		out = out.Join(joined[i].rel)
	}
	out = out.Project(q.vars...).Distinct().Sort()
	res.Rows = out.Rows()
	res.Exists = len(res.Rows) > 0
	res.AnomalyVars = sortedVarNames(anomalyVars)
	return res, nil
}

// projectVars projects r to the clause's variables (first occurrence
// positions), renamed to the variable names.
func projectVars(r Relation, cl clause, varAt map[string]int) Relation {
	var names []string
	var idx []int
	for _, t := range cl.terms {
		if t.kind != termVar {
			continue
		}
		if j, ok := varAt[t.name]; ok {
			names = append(names, t.name)
			idx = append(idx, j)
			delete(varAt, t.name)
		}
	}
	return NewRelation(names, func(yield func(Tuple) bool) {
		out := make(Tuple, len(idx))
		r.Each(func(t Tuple) bool {
			for i, j := range idx {
				out[i] = t[j]
			}
			return yield(out)
		})
	})
}

// planOrder returns the greedy evaluation order of the clauses.
func planOrder(plans []planClause) []int {
	n := len(plans)
	used := make([]bool, n)
	bound := map[string]bool{}
	var order []int
	// Seed: most constants, then textual order.
	best := -1
	for i, pc := range plans {
		if best < 0 || pc.nconst > plans[best].nconst {
			best = i
		}
	}
	take := func(i int) {
		used[i] = true
		order = append(order, i)
		for v := range plans[i].vars {
			bound[v] = true
		}
	}
	take(best)
	for len(order) < n {
		best = -1
		bestShared := -1
		for i, pc := range plans {
			if used[i] {
				continue
			}
			shared := 0
			for v := range pc.vars {
				if bound[v] {
					shared++
				}
			}
			if shared > bestShared ||
				(shared == bestShared && best >= 0 && pc.nconst > plans[best].nconst) {
				best, bestShared = i, shared
			}
		}
		take(best)
	}
	return order
}

func sortedVarNames(set map[string]bool) []string {
	var out []string
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
