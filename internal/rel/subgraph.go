package rel

import "repro/internal/graph"

// DepsOf is the dependency relation restricted to a node set:
// σ_{from ∈ nodes ∧ to ∈ nodes}(dep), with the selection pushed into
// the graph's adjacency index — rows stream by probing each requested
// node's out-edges instead of scanning every edge, so the cost is
// O(edges incident to nodes), not O(graph). Rows follow the node list
// order, targets ascending, kinds in declaration order. Nodes absent
// from the graph contribute nothing.
func DepsOf(g *graph.Graph, nodes []int) Relation {
	return NewRelation([]string{"from", "to", "kind"}, func(yield func(Tuple) bool) {
		if g == nil {
			return
		}
		in := make(map[int]bool, len(nodes))
		for _, n := range nodes {
			if g.HasNode(n) {
				in[n] = true
			}
		}
		t := make(Tuple, 3)
		stop := false
		for _, a := range nodes {
			if stop {
				return
			}
			if !in[a] {
				continue
			}
			g.OutSorted(a, allKinds, func(b int, label graph.KindSet) {
				if stop || !in[b] {
					return
				}
				for _, k := range label.Kinds() {
					t[0], t[1], t[2] = Int(a), Int(b), Str(k.String())
					if !yield(t) {
						stop = true
						return
					}
				}
			})
		}
	})
}

// Subgraph materializes σ_{from ∈ nodes ∧ to ∈ nodes}(dep) back into a
// graph: the induced subgraph of g on nodes, with every present node
// ensured (in the given order, fixing dense ids) even if isolated.
// It replaces the streaming checker's bespoke subgraph walk — the
// filter is the DepsOf relation, and this function is just its sink.
func Subgraph(g *graph.Graph, nodes []int) *graph.Graph {
	out := graph.New()
	for _, n := range nodes {
		if g.HasNode(n) {
			out.Ensure(n)
		}
	}
	kinds := kindsByName()
	DepsOf(g, nodes).Each(func(t Tuple) bool {
		out.AddEdge(int(t[0].Num()), int(t[1].Num()), kinds[t[2].Text()])
		return true
	})
	return out
}

// kindsByName maps the short kind labels back to graph.Kind.
func kindsByName() map[string]graph.Kind {
	m := make(map[string]graph.Kind, 8)
	for _, k := range allKinds.Kinds() {
		m[k.String()] = k
	}
	return m
}
