// Package rel is the checker's relational layer: a small streaming
// relational-algebra core plus a catalog of relations derived lazily
// from one analysis (catalog.go) and a pattern query front-end over
// them (query.go). It is the shared substrate the anomaly classifiers
// and the explain witness scans run on, and the engine behind
// `elle -query`, elled's query endpoint, and explain provenance (see
// docs/QUERY.md).
//
// The design follows the "Datalog as pure relational algebra" pattern:
// a Relation is a column schema plus a lazy tuple generator, operators
// (σ selection, π projection, ⋈ natural join, γ grouping) compose
// functionally into new relations without evaluating anything, and a
// pattern query compiles to nothing but σ/⋈ over catalog relations —
// no specialized machinery.
//
// Determinism is a contract, not an accident: every operator is
// order-preserving over its (left) input, joins probe materialized
// indexes whose per-key buckets keep build order, and Sort/Distinct
// give query surfaces a canonical output order. Deterministic inputs
// therefore produce byte-identical output at any parallelism — the
// property the classifier refactors lean on.
package rel

import (
	"sort"
	"strconv"
	"strings"
)

// Value is one typed field of a tuple: an integer (transaction ids,
// elements, positions — the dense ids the catalog speaks) or a string
// (key names, dependency kinds, anomaly codes).
type Value struct {
	s     string
	n     int64
	isStr bool
}

// Int returns an integer value.
func Int(n int) Value { return Value{n: int64(n)} }

// Int64 returns an integer value from an int64.
func Int64(n int64) Value { return Value{n: n} }

// Str returns a string value.
func Str(s string) Value { return Value{s: s, isStr: true} }

// IsStr reports whether v holds a string.
func (v Value) IsStr() bool { return v.isStr }

// Num returns the integer payload (0 for strings).
func (v Value) Num() int64 { return v.n }

// Text returns the string payload ("" for integers).
func (v Value) Text() string { return v.s }

// String renders v for query output: integers in decimal, strings
// verbatim unless they contain whitespace, quotes, or control bytes —
// or are empty — in which case they are Go-quoted so rows stay
// unambiguous and one-per-line.
func (v Value) String() string {
	if !v.isStr {
		return strconv.FormatInt(v.n, 10)
	}
	if v.s == "" || strings.ContainsAny(v.s, " \t\n\r\"\\") {
		return strconv.Quote(v.s)
	}
	return v.s
}

// Equal reports whether v and w are the same value of the same type.
func (v Value) Equal(w Value) bool {
	return v.isStr == w.isStr && v.n == w.n && v.s == w.s
}

// Compare orders values canonically: integers before strings, integers
// numerically, strings bytewise.
func Compare(v, w Value) int {
	switch {
	case !v.isStr && w.isStr:
		return -1
	case v.isStr && !w.isStr:
		return 1
	case !v.isStr:
		switch {
		case v.n < w.n:
			return -1
		case v.n > w.n:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.s, w.s)
	}
}

// Tuple is one row. Streaming relations may yield a reused backing
// slice — a consumer that holds a tuple past the callback must Clone
// it; the materializing operators (Sort, Distinct, Index, GroupCount)
// do so themselves.
type Tuple []Value

// Clone returns a private copy of t.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// CompareTuples orders tuples lexicographically column by column;
// shorter tuples order first on a shared prefix.
func CompareTuples(a, b Tuple) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// Relation is a named-column schema plus a lazy tuple stream. Building
// one evaluates nothing; iteration (Each) drives the whole composed
// pipeline tuple by tuple.
type Relation struct {
	cols []string
	seq  func(yield func(Tuple) bool)
}

// NewRelation wraps a generator function as a relation over cols. The
// generator must stop when yield returns false.
func NewRelation(cols []string, seq func(yield func(Tuple) bool)) Relation {
	return Relation{cols: cols, seq: seq}
}

// FromRows returns a materialized relation over the given rows.
func FromRows(cols []string, rows []Tuple) Relation {
	return Relation{cols: cols, seq: func(yield func(Tuple) bool) {
		for _, t := range rows {
			if !yield(t) {
				return
			}
		}
	}}
}

// Cols returns the column names, in order.
func (r Relation) Cols() []string { return r.cols }

// col returns the position of name, or -1.
func (r Relation) col(name string) int {
	for i, c := range r.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Each drives the stream, calling f for every tuple until the relation
// is exhausted or f returns false.
func (r Relation) Each(f func(Tuple) bool) {
	if r.seq != nil {
		r.seq(f)
	}
}

// Rows materializes the relation, cloning each tuple.
func (r Relation) Rows() []Tuple {
	var out []Tuple
	r.Each(func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Select is σ: the tuples of r satisfying pred, in r's order.
func (r Relation) Select(pred func(Tuple) bool) Relation {
	return Relation{cols: r.cols, seq: func(yield func(Tuple) bool) {
		r.Each(func(t Tuple) bool {
			if pred(t) {
				return yield(t)
			}
			return true
		})
	}}
}

// Eq is the constant-selection shorthand σ_{col = v}(r).
func (r Relation) Eq(col string, v Value) Relation {
	i := r.col(col)
	if i < 0 {
		return FromRows(r.cols, nil)
	}
	return r.Select(func(t Tuple) bool { return t[i].Equal(v) })
}

// Project is π: keep exactly cols, in the given order, preserving row
// order (no implicit deduplication — compose with Distinct for set
// semantics). Unknown columns make the relation empty.
func (r Relation) Project(cols ...string) Relation {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.col(c)
		if idx[i] < 0 {
			return FromRows(cols, nil)
		}
	}
	return Relation{cols: cols, seq: func(yield func(Tuple) bool) {
		out := make(Tuple, len(idx))
		r.Each(func(t Tuple) bool {
			for i, j := range idx {
				out[i] = t[j]
			}
			return yield(out)
		})
	}}
}

// Rename returns r with column from renamed to to.
func (r Relation) Rename(from, to string) Relation {
	cols := append([]string(nil), r.cols...)
	for i, c := range cols {
		if c == from {
			cols[i] = to
		}
	}
	return Relation{cols: cols, seq: r.seq}
}

// Join is ⋈: the natural join of r and s on their shared column names,
// order-preserving over r — s is materialized into a hash index once
// (build side), then r streams through it in order (probe side), each
// probe emitting its matches in s's build order. With no shared
// columns it degenerates to the cross product. Deterministic inputs
// produce deterministic output.
func (r Relation) Join(s Relation) Relation {
	shared := sharedCols(r.cols, s.cols)
	idx := BuildIndex(s, shared...)
	return r.LookupJoin(idx)
}

// sharedCols returns the column names present in both schemas, in a's
// order.
func sharedCols(a, b []string) []string {
	var out []string
	for _, c := range a {
		for _, d := range b {
			if c == d {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// GroupCount is γ with a count aggregate: one row per distinct value
// of the `by` columns (in first-seen order) with an appended count
// column named `as`.
func (r Relation) GroupCount(by []string, as string) Relation {
	idx := make([]int, len(by))
	for i, c := range by {
		idx[i] = r.col(c)
		if idx[i] < 0 {
			return FromRows(append(append([]string(nil), by...), as), nil)
		}
	}
	cols := append(append([]string(nil), by...), as)
	return Relation{cols: cols, seq: func(yield func(Tuple) bool) {
		counts := map[string]int{}
		var order []Tuple
		var key []byte
		r.Each(func(t Tuple) bool {
			key = key[:0]
			g := make(Tuple, 0, len(idx))
			for _, j := range idx {
				key = appendKey(key, t[j])
				g = append(g, t[j])
			}
			if _, seen := counts[string(key)]; !seen {
				order = append(order, g.Clone())
			}
			counts[string(key)]++
			return true
		})
		key = key[:0]
		for _, g := range order {
			key = key[:0]
			for _, v := range g {
				key = appendKey(key, v)
			}
			if !yield(append(g, Int(counts[string(key)]))) {
				return
			}
		}
	}}
}

// Distinct deduplicates, keeping the first occurrence of each tuple in
// stream order.
func (r Relation) Distinct() Relation {
	return Relation{cols: r.cols, seq: func(yield func(Tuple) bool) {
		seen := map[string]bool{}
		var key []byte
		r.Each(func(t Tuple) bool {
			key = key[:0]
			for _, v := range t {
				key = appendKey(key, v)
			}
			if seen[string(key)] {
				return true
			}
			seen[string(key)] = true
			return yield(t.Clone())
		})
	}}
}

// Sort materializes and orders the relation canonically (CompareTuples
// over all columns) — the final step that makes query output
// independent of plan shape.
func (r Relation) Sort() Relation {
	return Relation{cols: r.cols, seq: func(yield func(Tuple) bool) {
		rows := r.Rows()
		sort.SliceStable(rows, func(i, j int) bool { return CompareTuples(rows[i], rows[j]) < 0 })
		for _, t := range rows {
			if !yield(t) {
				return
			}
		}
	}}
}
